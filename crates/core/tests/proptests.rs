//! Property-based tests of the SRAM layer's structural invariants.
//!
//! These run full transient simulations per case, so case counts are kept
//! deliberately small; each property still covers a meaningful slice of the
//! design space on every test run.

use proptest::prelude::*;
use tfet_sram::area::{cell_area, relative_area};
use tfet_sram::assist::{read_bias, write_bias, ASSIST_FRACTION};
use tfet_sram::metrics::read_metrics;
use tfet_sram::ops::{hold_setup, run_write};
use tfet_sram::prelude::*;
use tfet_sram::tech::{CellKind, CellSizing};

fn fast(params: CellParams) -> CellParams {
    let mut p = params;
    p.sim.dt = 4e-12;
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Hold is bistable at any workable sizing: the DC solve lands in the
    /// basin the guess selects, for both states.
    #[test]
    fn hold_respects_state_guess(beta in 0.4f64..2.5, vdd in 0.6f64..0.9) {
        let params = CellParams::tfet6t(AccessConfig::InwardP)
            .with_beta(beta)
            .with_vdd(vdd);
        let h = hold_setup(&params).unwrap();
        let op = h.circuit.dc_op_with_guess(&h.guess).unwrap();
        prop_assert!(op.voltage(h.nodes.q) > 0.8 * vdd);
        prop_assert!(op.voltage(h.nodes.qb) < 0.2 * vdd);
        // Mirrored guess lands in the mirrored state.
        let op2 = h
            .circuit
            .dc_op_with_guess(&[(h.nodes.q, 0.0), (h.nodes.qb, vdd)])
            .unwrap();
        prop_assert!(op2.voltage(h.nodes.qb) > 0.8 * vdd);
    }

    /// Storage nodes stay within the (assisted) rail envelope during writes.
    #[test]
    fn write_nodes_stay_in_envelope(beta in 0.4f64..1.2, width_ns in 0.2f64..2.0) {
        let params = fast(CellParams::tfet6t(AccessConfig::InwardP).with_beta(beta));
        let run = run_write(&params, None, width_ns * 1e-9).unwrap();
        // Miller overshoot can carry a floating node somewhat past the rail,
        // but never by more than a few hundred mV in a working cell.
        let hi = params.vdd + 0.35;
        let lo = -0.35;
        for node in [run.nodes.q, run.nodes.qb] {
            prop_assert!(run.result.max_voltage(node) < hi);
            prop_assert!(run.result.min_voltage(node) > lo);
        }
    }

    /// Longer wordline pulses never un-flip a write (monotone oracle — the
    /// property the WL_crit binary search relies on).
    #[test]
    fn write_oracle_is_monotone(beta in 0.4f64..0.9) {
        let params = fast(CellParams::tfet6t(AccessConfig::InwardP).with_beta(beta));
        let widths = [0.3e-9, 0.8e-9, 2.0e-9];
        let flips: Vec<bool> = widths
            .iter()
            .map(|&w| run_write(&params, None, w).unwrap().flipped())
            .collect();
        // Once true, stays true.
        for pair in flips.windows(2) {
            prop_assert!(!pair[0] || pair[1], "flip sequence not monotone: {flips:?}");
        }
    }

    /// DRNM is monotone non-decreasing in β (stronger pull-downs resist the
    /// read disturb better) — the backbone of Fig. 4(a)/7(e).
    #[test]
    fn drnm_monotone_in_beta(b1 in 0.4f64..2.0, delta in 0.3f64..1.0) {
        let base = fast(CellParams::tfet6t(AccessConfig::InwardP));
        let d1 = read_metrics(&base.clone().with_beta(b1), None).unwrap().drnm;
        let d2 = read_metrics(&base.clone().with_beta(b1 + delta), None)
            .unwrap()
            .drnm;
        prop_assert!(d2 >= d1 - 5e-3, "DRNM fell with beta: {d1} -> {d2}");
    }

    /// Every read assist improves (or at worst matches) the unassisted DRNM.
    #[test]
    fn read_assists_never_hurt(beta in 0.4f64..1.0) {
        let params = fast(CellParams::tfet6t(AccessConfig::InwardP).with_beta(beta));
        let plain = read_metrics(&params, None).unwrap().drnm;
        for ra in ReadAssist::ALL {
            let assisted = read_metrics(&params, Some(ra)).unwrap().drnm;
            prop_assert!(
                assisted >= plain - 5e-3,
                "{ra:?} hurt the read: {plain} -> {assisted}"
            );
        }
    }

    /// Bias computations respect the assist-level contract: each technique
    /// moves exactly one bias by exactly frac·VDD in the helpful direction.
    #[test]
    fn assist_bias_deltas_are_exact(vdd in 0.5f64..0.9, frac in 0.05f64..0.5) {
        let access = AccessConfig::InwardP;
        for wa in WriteAssist::ALL {
            let b = write_bias(Some(wa), vdd, access, frac);
            let n = write_bias(None, vdd, access, frac);
            let moved = [
                (b.vdd_level - n.vdd_level).abs(),
                (b.vss_level - n.vss_level).abs(),
                (b.wl_active - n.wl_active).abs(),
                (b.bl_high - n.bl_high).abs(),
            ];
            let nonzero: Vec<f64> = moved.iter().copied().filter(|&d| d > 1e-12).collect();
            prop_assert_eq!(nonzero.len(), 1, "{:?} must move exactly one bias", wa);
            prop_assert!((nonzero[0] - frac * vdd).abs() < 1e-12);
        }
        for ra in ReadAssist::ALL {
            let b = read_bias(Some(ra), vdd, access, frac);
            let n = read_bias(None, vdd, access, frac);
            let moved = [
                (b.vdd_level - n.vdd_level).abs(),
                (b.vss_level - n.vss_level).abs(),
                (b.wl_active - n.wl_active).abs(),
                (b.bl_precharge - n.bl_precharge).abs(),
            ];
            let nonzero: Vec<f64> = moved.iter().copied().filter(|&d| d > 1e-12).collect();
            prop_assert_eq!(nonzero.len(), 1, "{:?} must move exactly one bias", ra);
            prop_assert!((nonzero[0] - frac * vdd).abs() < 1e-12);
        }
    }

    /// The area model is monotone in every width and normalizes to 1.
    #[test]
    fn area_model_is_monotone(
        w_acc in 0.05f64..0.3,
        beta in 0.3f64..3.0,
        w_pu in 0.04f64..0.2,
        grow in 1.01f64..2.0,
    ) {
        let s1 = CellSizing { w_access_um: w_acc, beta, w_pullup_um: w_pu };
        for kind in [CellKind::Cmos6T, CellKind::Tfet7T] {
            let a1 = cell_area(kind, &s1);
            let mut bigger = s1;
            bigger.beta *= grow;
            prop_assert!(cell_area(kind, &bigger) > a1);
            let mut wider = s1;
            wider.w_access_um *= grow;
            prop_assert!(cell_area(kind, &wider) > a1);
        }
        let p = CellParams::tfet6t(AccessConfig::InwardP);
        prop_assert!((relative_area(&p, &p) - 1.0).abs() < 1e-12);
    }
}

/// Assist fraction default matches the paper's 30 %.
#[test]
fn default_assist_fraction_is_thirty_percent() {
    let p = CellParams::tfet6t(AccessConfig::InwardP);
    assert_eq!(p.sim.assist_fraction, ASSIST_FRACTION);
    assert_eq!(ASSIST_FRACTION, 0.3);
}
