//! Half-select disturb scenarios on the fast-SPICE array engine.
//!
//! A write asserts one row's wordline across every column: the addressed
//! cell sees driven bitlines, while each other cell on the row is
//! half-selected on its *floating, precharged* pair. These tests sweep that
//! exposure across the cell-ratio (β) and pulse-width design space and pin
//! the negative case — a deliberately destabilized cell must be *reported*
//! as disturbed, proving the detector is live and the retention results
//! above are not vacuous.

use tfet_sram::array_netlist::{ArrayNetlist, ArraySpec};
use tfet_sram::prelude::*;

fn cell_with(beta: f64) -> CellParams {
    let mut cell = CellParams::tfet6t(AccessConfig::InwardP).with_beta(beta);
    cell.sim.dt = 4e-12;
    cell
}

/// Written-row victims retain both polarities across a β × pulse-width
/// grid: the paper's robustness claim, exercised through real drivers.
/// β spans the writable range of this driver chain (β = 1.5 cannot be
/// written through the mux at any practical pulse — the write-margin
/// collapse the paper designs away from); each pulse clears the netlist's
/// critical width with margin, and the longer one doubles the half-select
/// exposure, covering every write this design would use.
#[test]
fn written_row_victims_retain_across_beta_and_pulse_grid() {
    for &beta in &[0.6, 0.8, 1.0] {
        for &pulse in &[3.0e-9, 5.0e-9] {
            let mut a = ArrayNetlist::build(ArraySpec::new(4, 4, cell_with(beta))).unwrap();
            // Mixed data on the written row, so victims of both polarities
            // face the precharged-high bitlines.
            a.set_bit(1, 0, true);
            a.set_bit(1, 2, true);
            let w = a.write_transient(1, 3, true, pulse).unwrap();
            assert!(
                w.success,
                "write must land (beta={beta}, pulse={pulse:.1e})"
            );
            assert!(
                w.disturbed.is_empty(),
                "no victim may flip at beta={beta}, pulse={pulse:.1e}: {:?}",
                w.disturbed
            );
            a.commit(&w.finals);
            assert_eq!(a.bit(1, 0), Some(true), "half-selected 1 retains");
            assert_eq!(a.bit(1, 1), Some(false), "half-selected 0 retains");
            assert_eq!(a.bit(1, 2), Some(true), "half-selected 1 retains");
            assert_eq!(a.bit(0, 3), Some(false), "unselected row retains");
        }
    }
}

/// The negative control: a victim rebuilt with 8× access exposure and a
/// starved pull-down *must* flip under the same half-select event — and be
/// flagged — while its nominal neighbours stay clean.
#[test]
fn weakened_cell_is_disturb_detected() {
    let mut a = ArrayNetlist::build(ArraySpec::new(4, 4, cell_with(0.6))).unwrap();
    a.resize_cell(1, 1, 8.0, 0.05);
    let w = a.write_transient(1, 3, true, 1.5e-9).unwrap();
    assert!(w.success, "the addressed write itself still lands");
    assert!(
        w.disturbed.contains(&(1, 1)),
        "the weakened victim must be reported disturbed, got {:?}",
        w.disturbed
    );
    assert!(
        !w.disturbed.contains(&(1, 0)) && !w.disturbed.contains(&(1, 2)),
        "nominal cells on the written row must not be flagged: {:?}",
        w.disturbed
    );
}
