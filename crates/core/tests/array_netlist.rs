//! Integration tests for the fast-SPICE array engine: functional
//! write/read through real peripherals, the ≥5× device-evaluation saving
//! of the latency tier, and the netlist-vs-analytic `WL_crit` regression.

use tfet_sram::array_netlist::{ArrayNetlist, ArraySpec};
use tfet_sram::prelude::*;

fn proposed_cell() -> CellParams {
    let mut cell = CellParams::tfet6t(AccessConfig::InwardP).with_beta(0.6);
    cell.sim.dt = 4e-12;
    cell
}

#[test]
fn write_and_read_through_peripherals_roundtrip() {
    let mut a = ArrayNetlist::build(ArraySpec::new(4, 4, proposed_cell())).unwrap();
    let w = a.write_transient(1, 2, true, 1.5e-9).unwrap();
    assert!(w.success, "write through driver chain and mux must land");
    assert!(
        w.disturbed.is_empty(),
        "no bystander may flip: {:?}",
        w.disturbed
    );
    a.commit(&w.finals);
    assert_eq!(a.bit(1, 2), Some(true));
    assert_eq!(a.bit(1, 1), Some(false), "half-selected neighbour retains");
    assert_eq!(a.bit(0, 2), Some(false), "unselected row retains");

    let r = a.read_transient(1, 2).unwrap();
    assert!(r.value, "read back the written 1");
    assert!(!r.destructive, "read must not corrupt the array");
    assert!(
        r.sense_margin > 0.02,
        "sense margin {:.3} V",
        r.sense_margin
    );
    a.commit(&r.finals);

    let r0 = a.read_transient(1, 1).unwrap();
    assert!(!r0.value, "neighbour still reads 0");
}

#[test]
fn latency_tier_saves_five_fold_and_preserves_the_outcome() {
    let spec = ArraySpec::new(16, 16, proposed_cell());
    let mut on = ArrayNetlist::build(spec.clone()).unwrap();
    let mut off = ArrayNetlist::build(spec.with_latency(DeviceLatency::Off)).unwrap();

    let w_on = on.write_transient(3, 7, true, 1.5e-9).unwrap();
    let w_off = off.write_transient(3, 7, true, 1.5e-9).unwrap();
    assert!(w_on.success && w_off.success);
    assert!(w_on.disturbed.is_empty() && w_off.disturbed.is_empty());

    // The tier's whole point: the quiescent bulk of the array stops being
    // evaluated. ≥5× is the acceptance floor; a 16×16 write already clears
    // it comfortably.
    let ratio = w_off.stats.device_evals as f64 / w_on.stats.device_evals as f64;
    assert!(
        ratio >= 5.0,
        "expected >=5x fewer device evals with the latency tier, got {ratio:.2}x \
         ({} vs {})",
        w_off.stats.device_evals,
        w_on.stats.device_evals
    );
    assert!(w_on.stats.devices_dormant > 0);
    assert_eq!(w_off.stats.devices_dormant, 0);

    // And the physics must not drift: every cell's final state agrees to
    // well under a millivolt.
    for (k, (&(q1, qb1), &(q0, qb0))) in w_on.finals.iter().zip(&w_off.finals).enumerate() {
        assert!(
            (q1 - q0).abs() < 1e-3 && (qb1 - qb0).abs() < 1e-3,
            "cell {k}: latency-on ({q1:.6}, {qb1:.6}) vs off ({q0:.6}, {qb0:.6})"
        );
    }
}

#[test]
fn netlist_wl_crit_tracks_the_analytic_model() {
    // The full-array WL_crit sees driver slew, mux discharge and
    // half-select loading that the single-cell model idealizes away. The
    // driver chain's turn-on delay (~0.25 ns at this geometry) plus the
    // reduced access overdrive (the held bitline sits tens of millivolts
    // below the rail) stretch the critical pulse to roughly 2-2.5x the
    // analytic value; 3x is the regression ceiling the `array` validation
    // figure visualizes.
    let mut cell = proposed_cell();
    cell.sim.pulse_tol = 8e-12;
    let mut a = ArrayNetlist::build(ArraySpec::new(4, 4, cell)).unwrap();
    let netlist = match a.wl_crit(0, 0).unwrap() {
        WlCrit::Finite(w) => w,
        other => panic!("array WL_crit must be finite, got {other:?}"),
    };
    let analytic = match a.analytic_wl_crit().unwrap() {
        WlCrit::Finite(w) => w,
        other => panic!("analytic WL_crit must be finite, got {other:?}"),
    };
    let rel = (netlist - analytic).abs() / analytic;
    assert!(
        netlist > analytic,
        "driver slew can only lengthen the critical pulse: \
         netlist {netlist:.3e} s vs analytic {analytic:.3e} s"
    );
    assert!(
        rel < 2.0,
        "netlist WL_crit {netlist:.3e} s vs analytic {analytic:.3e} s \
         (discrepancy {:.0} %)",
        100.0 * rel
    );
}

#[test]
fn spec_validation_rejects_bad_shapes() {
    assert!(ArrayNetlist::build(ArraySpec::new(0, 4, proposed_cell())).is_err());
    assert!(ArrayNetlist::build(ArraySpec::new(65, 4, proposed_cell())).is_err());
    let seven = CellParams::new(CellKind::Tfet7T);
    assert!(ArrayNetlist::build(ArraySpec::new(2, 2, seven)).is_err());
}

#[test]
fn bitline_load_scales_with_rows() {
    let cell = proposed_cell();
    let c64 = ArraySpec::new(64, 4, cell.clone()).c_bitline();
    let c8 = ArraySpec::new(8, 4, cell.clone()).c_bitline();
    assert!(
        (c64 - cell.c_bitline).abs() < 1e-24,
        "64 rows = full budget"
    );
    assert!((c8 - cell.c_bitline / 8.0).abs() < 1e-24, "8 rows = 1/8");
}
