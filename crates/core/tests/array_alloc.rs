//! Allocation accounting for the array engine with instrumentation off.
//!
//! The observability layer (PR 7) and the timeline trace / partition
//! telemetry (this PR) promise that a *disabled* instrumentation site costs
//! one relaxed atomic load and never allocates. The circuit-level guard in
//! `crates/circuit/tests/alloc.rs` proves the single-cell transient loop;
//! this one pins the promise at array scale: a warm 64-cell (8×8) array
//! write performs exactly the same number of allocations as the previous
//! identical write — no per-step, per-cell, or per-telemetry-site heap
//! traffic sneaks in when tracing is off.
//!
//! Lives in an integration test because it installs a counting global
//! allocator, which needs `unsafe` (the library itself forbids it).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use tfet_sram::prelude::*;

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn count(f: impl FnOnce()) -> usize {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

#[test]
fn warm_array_write_alloc_count_is_repeatable_with_tracing_off() {
    assert!(!tfet_obs::enabled(), "instrumentation must be opt-in");
    assert!(!tfet_obs::trace::enabled(), "timeline trace must be opt-in");

    let mut cell = CellParams::tfet6t(AccessConfig::InwardP).with_beta(0.6);
    cell.sim.dt = 4e-12;
    let mut array = ArrayNetlist::build(ArraySpec::new(8, 8, cell)).unwrap();

    // Warm-up: sizes the thread-local workspace, the sparse pattern, the
    // latency state and every waveform binding for this operation shape.
    array.set_bit(2, 3, false);
    let w = array.write_transient(2, 3, true, 1.5e-9).unwrap();
    assert!(w.success);

    // Two identical warm writes: with every instrumentation site disabled
    // (spans, counters, partition telemetry, timeline trace, forensics
    // context), the only allocations left are the per-run result buffers —
    // so the counts must match exactly. Any drift means a disabled-path
    // site started allocating.
    array.set_bit(2, 3, false);
    let first = count(|| {
        assert!(array.write_transient(2, 3, true, 1.5e-9).unwrap().success);
    });
    array.set_bit(2, 3, false);
    let second = count(|| {
        assert!(array.write_transient(2, 3, true, 1.5e-9).unwrap().success);
    });
    assert_eq!(
        first, second,
        "disabled-instrumentation array write must have a stable alloc count"
    );
}

#[test]
fn disabled_instrumentation_sites_do_not_allocate() {
    assert!(!tfet_obs::enabled());
    let allocs = count(|| {
        for i in 0..1024u64 {
            let _span = tfet_obs::span("array_alloc.guard");
            let _ctx = tfet_obs::forensics::context("cell", tfet_obs::Value::UInt(i));
            tfet_obs::counter("array_alloc.guard", 1);
            tfet_obs::partition_cell(
                "array_alloc",
                (i / 8) as u32,
                (i % 8) as u32,
                &[("decisions", 1)],
            );
        }
    });
    assert_eq!(
        allocs, 0,
        "disabled spans/context/partition telemetry must not allocate"
    );
}
