//! Deck-driven topologies through the compiled-experiment layer.
//!
//! The SPICE decks under `examples/decks/` are first-class cell
//! definitions: importing one must reproduce the built-in generator
//! bit-for-bit (6T, 7T), and a cell that exists *only* as a deck (the
//! 9T) must run write/read/WL_crit with no topology-specific Rust.
//!
//! `cell_6t.sp` is the canonical exporter output; regenerate it after an
//! intentional format change with
//! `BLESS_DECKS=1 cargo test -p tfet-sram --test deck_topology`.

use std::collections::HashMap;
use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use tfet_circuit::Deck;
use tfet_devices::model::DeviceModel;
use tfet_devices::standard_models;
use tfet_sram::metrics::{read_metrics, read_metrics_on, wl_crit, wl_crit_on};
use tfet_sram::prelude::*;

fn models() -> HashMap<String, Arc<dyn DeviceModel>> {
    standard_models()
}

fn deck_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/decks")
}

fn fast(params: CellParams) -> CellParams {
    let mut p = params;
    p.sim.dt = 2e-12;
    p.sim.pulse_tol = 8e-12;
    p
}

/// The paper's proposed operating point — the config behind the 430.8 ps
/// reference value in `check.sh`.
fn proposed() -> CellParams {
    fast(CellParams::tfet6t(AccessConfig::InwardP).with_beta(0.6))
}

fn load_topo(file: &str, cell: &str) -> CellTopology {
    let path = deck_dir().join(file);
    let text =
        fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
    let models = models();
    let deck =
        Deck::parse(&text, &models).unwrap_or_else(|e| panic!("parsing {}: {e}", path.display()));
    let sub = deck
        .find_subckt(cell)
        .unwrap_or_else(|| panic!("{file} has no .subckt `{cell}`"));
    CellTopology::from_subckt(sub, &deck.subckts, &models)
        .unwrap_or_else(|e| panic!("importing `{cell}` from {file}: {e}"))
}

/// The canonical 6T deck text: the builtin cell exported at the proposed
/// operating point, wrapped in a deck.
fn canonical_6t_text() -> String {
    let topo = CellTopology::builtin(CellKind::Tfet6T(AccessConfig::InwardP));
    let sub = topo.export_subckt(&proposed(), "cell_6t");
    let deck = Deck {
        title: Some("6t inward-p tfet sram cell, beta=0.6 (date'11 proposed)".into()),
        subckts: vec![sub],
        ..Deck::default()
    };
    deck.to_spice()
}

#[test]
fn cell_6t_deck_file_is_canonical_exporter_output() {
    let want = canonical_6t_text();
    let path = deck_dir().join("cell_6t.sp");
    if std::env::var_os("BLESS_DECKS").is_some() {
        fs::write(&path, &want).expect("blessing cell_6t.sp");
    }
    let got =
        fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
    assert_eq!(got, want, "cell_6t.sp drifted from the exporter output");
    // And the file round-trips byte-exactly through parse → to_spice.
    let deck = Deck::parse(&got, &models()).expect("cell_6t.sp parses");
    assert_eq!(
        deck.to_spice(),
        got,
        "cell_6t.sp is not a serializer fixed point"
    );
}

#[test]
fn every_example_deck_reaches_a_serializer_fixed_point() {
    // Hand-written decks (7T, 9T) need not be canonical text, but their
    // canonical form must round-trip byte-exactly: parse → export →
    // re-import → export is the identity.
    let models = models();
    let mut count = 0;
    let mut paths: Vec<PathBuf> = fs::read_dir(deck_dir())
        .expect("examples/decks exists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "sp"))
        .collect();
    paths.sort();
    for path in paths {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = fs::read_to_string(&path).expect("deck reads");
        let canon = Deck::parse(&text, &models)
            .unwrap_or_else(|e| panic!("{name} does not parse: {e}"))
            .to_spice();
        let again = Deck::parse(&canon, &models)
            .unwrap_or_else(|e| panic!("canonical {name} does not re-parse: {e}"))
            .to_spice();
        assert_eq!(again, canon, "{name} does not round-trip byte-exactly");
        count += 1;
    }
    assert!(count >= 3, "deck corpus went missing ({count} files)");
}

#[test]
fn deck_driven_6t_write_is_bit_identical_to_builtin() {
    let topo = load_topo("cell_6t.sp", "cell_6t");
    assert_eq!(topo.access(), AccessConfig::InwardP);
    assert_eq!(topo.device_count(), 6);
    assert!(!topo.has_read_port());

    let params = proposed();
    let from_deck = wl_crit_on(&topo, &params, None).expect("deck wl_crit");
    let builtin = wl_crit(&params, None).expect("builtin wl_crit");
    let (d, b) = (
        from_deck.as_finite().expect("deck WL_crit finite"),
        builtin.as_finite().expect("builtin WL_crit finite"),
    );
    assert_eq!(d.to_bits(), b.to_bits(), "deck {d:e} != builtin {b:e}");
    // The headline number the paper reproduction pins down.
    assert_eq!(format!("{:.1}", d * 1e12), "430.8");
}

#[test]
fn deck_driven_6t_read_is_bit_identical_to_builtin() {
    let topo = load_topo("cell_6t.sp", "cell_6t");
    let params = proposed();
    let from_deck =
        read_metrics_on(&topo, &params, Some(ReadAssist::GndLowering)).expect("deck read");
    let builtin = read_metrics(&params, Some(ReadAssist::GndLowering)).expect("builtin read");
    assert_eq!(from_deck.drnm.to_bits(), builtin.drnm.to_bits());
    assert_eq!(
        from_deck.read_delay.map(f64::to_bits),
        builtin.read_delay.map(f64::to_bits)
    );
}

#[test]
fn handwritten_7t_deck_matches_builtin_7t() {
    let topo = load_topo("cell_7t.sp", "cell_7t");
    assert_eq!(topo.access(), AccessConfig::OutwardN);
    assert!(topo.has_read_port());
    assert!(topo.bl_idle_low());
    assert_eq!(topo.device_count(), 7);

    // Despite scrambled card order and different instance names, the deck
    // places the same circuit, so metrics agree to the bit.
    let params = fast(CellParams::new(CellKind::Tfet7T));
    let from_deck = wl_crit_on(&topo, &params, None).expect("deck 7T wl_crit");
    let builtin = wl_crit(&params, None).expect("builtin 7T wl_crit");
    assert_eq!(
        from_deck.as_finite().map(f64::to_bits),
        builtin.as_finite().map(f64::to_bits)
    );
    let read_deck = read_metrics_on(&topo, &params, None).expect("deck 7T read");
    let read_builtin = read_metrics(&params, None).expect("builtin 7T read");
    assert_eq!(read_deck.drnm.to_bits(), read_builtin.drnm.to_bits());
}

#[test]
fn deck_only_9t_runs_write_read_wl_crit() {
    // The 9T exists only as a deck — no CellKind, no builder code. Its
    // inward-p write core reuses the proposed parameterization; the
    // 3-transistor read port (stacked buffer + keeper) rides the generic
    // read-port experiment path.
    let topo = load_topo("cell_9t.sp", "cell_9t");
    assert_eq!(topo.access(), AccessConfig::InwardP);
    assert!(topo.has_read_port());
    assert!(
        !topo.bl_idle_low(),
        "inward access keeps write bitlines high"
    );
    assert_eq!(topo.device_count(), 9);
    let aux: Vec<_> = topo
        .slots()
        .iter()
        .filter(|s| s.role == tfet_sram::tech::Role::ReadBuffer)
        .collect();
    assert_eq!(aux.len(), 3, "stacked read buffer + keeper");

    let params = proposed();
    let w = wl_crit_on(&topo, &params, None).expect("9T wl_crit");
    let w = w.as_finite().expect("9T write succeeds");
    assert!(w > 0.0 && w < params.sim.max_pulse);

    let read = read_metrics_on(&topo, &params, None).expect("9T read");
    assert!(
        read.drnm > 0.2 * params.vdd,
        "decoupled read port should leave storage nodes near-undisturbed, got {} V",
        read.drnm
    );
}

#[test]
fn array_accepts_deck_topology_and_matches_builtin() {
    let topo = load_topo("cell_6t.sp", "cell_6t");
    let mut cell = proposed();
    cell.sim.max_pulse = 2e-9;

    let mut from_deck = ArrayNetlist::build(ArraySpec::new(2, 2, cell.clone()).with_topology(topo))
        .expect("deck-topology array builds");
    let mut builtin = ArrayNetlist::build(ArraySpec::new(2, 2, cell)).expect("builtin array");

    // Array WL_crit runs 2-2.5x the single-cell value (driver slew, mux
    // discharge), so give the write a comfortable 1.5 ns pulse.
    let wd = from_deck
        .write_transient(1, 0, true, 1.5e-9)
        .expect("deck write");
    let wb = builtin
        .write_transient(1, 0, true, 1.5e-9)
        .expect("builtin write");
    assert!(wd.success && wb.success);
    assert_eq!(wd.disturbed, wb.disturbed);
    for (a, b) in wd.finals.iter().zip(wb.finals.iter()) {
        assert_eq!(a.0.to_bits(), b.0.to_bits());
        assert_eq!(a.1.to_bits(), b.1.to_bits());
    }

    let cd = from_deck.wl_crit(0, 1).expect("deck array wl_crit");
    let cb = builtin.wl_crit(0, 1).expect("builtin array wl_crit");
    assert_eq!(
        cd.as_finite().map(f64::to_bits),
        cb.as_finite().map(f64::to_bits)
    );
}

#[test]
fn array_rejects_read_port_topologies() {
    let topo = load_topo("cell_7t.sp", "cell_7t");
    let err = ArrayNetlist::build(
        ArraySpec::new(2, 2, fast(CellParams::new(CellKind::Tfet7T))).with_topology(topo),
    )
    .expect_err("no rbl/rwl columns in the array netlist");
    assert!(err.to_string().contains("read-port"));
}
