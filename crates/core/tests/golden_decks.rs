//! Generates and pins the golden deck corpus under
//! `crates/circuit/tests/golden/`.
//!
//! Each golden file is produced from the real cell stack (topology
//! placement, experiment-style stimulus) and committed; the circuit
//! crate's `golden` test then re-imports every file and asserts the
//! byte-exact export invariant without depending on this crate.
//!
//! Regenerate after an intentional format change with
//! `BLESS_GOLDEN=1 cargo test -p tfet-sram --test golden_decks`.

use std::fs;
use std::path::PathBuf;

use tfet_circuit::{Circuit, Deck, DeckAnalysis, Waveform};
use tfet_devices::standard_models;
use tfet_sram::prelude::*;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../circuit/tests/golden")
}

/// The paper's proposed 6T operating point (matches `examples/decks/`).
fn proposed() -> CellParams {
    let mut p = CellParams::tfet6t(AccessConfig::InwardP).with_beta(0.6);
    p.sim.dt = 2e-12;
    p.sim.pulse_tol = 8e-12;
    p
}

/// Hold harness: the exact `hold_setup` circuit, all lines at standby,
/// with the q=1 DC guess as `.nodeset` and a 2 ns transient.
fn hold_deck() -> String {
    let params = proposed();
    let hold = tfet_sram::ops::hold_setup(&params).expect("hold harness");
    let deck = Deck {
        title: Some("6t inward-p hold harness: lines at standby, q=1 guess".into()),
        nodeset: hold.guess,
        analyses: vec![DeckAnalysis::Tran {
            dt: params.sim.dt,
            t_stop: 2e-9,
        }],
        circuit: hold.circuit,
        ..Deck::default()
    };
    deck.to_spice()
}

/// Write harness: bitlines split to the 0/V_DD data levels, then a
/// wordline pulse at twice the nominal WL_crit. Mirrors the stimulus
/// `WriteExperiment` compiles for the unassisted inward-p cell.
fn write_deck() -> String {
    let params = proposed();
    let topo = CellTopology::builtin(params.kind);
    let (vdd, sim, access) = (params.vdd, params.sim, topo.access());
    let mut c = Circuit::new();
    let nodes = topo.place(&mut c, &params).nodes;
    c.vsource("VDD", nodes.vdd, Circuit::GND, Waveform::dc(vdd));
    c.vsource("VSS", nodes.vss, Circuit::GND, Waveform::dc(0.0));
    let wl_inactive = access.wl_inactive(vdd);
    let pulse = 2.0 * 430.8e-12;
    let t_on = sim.t_settle + 50e-12;
    c.vsource(
        "WL",
        nodes.wl,
        Circuit::GND,
        Waveform::pulse(wl_inactive, access.wl_active(vdd), t_on, pulse, sim.t_edge),
    );
    c.vsource(
        "BL",
        nodes.bl,
        Circuit::GND,
        Waveform::step(vdd, 0.0, sim.t_settle, sim.t_edge),
    );
    c.vsource("BLB", nodes.blb, Circuit::GND, Waveform::dc(vdd));
    let deck = Deck {
        title: Some("6t inward-p write harness: wl pulse at 2x nominal wl_crit".into()),
        ic: vec![
            (nodes.q, vdd),
            (nodes.qb, 0.0),
            (nodes.bl, vdd),
            (nodes.blb, vdd),
            (nodes.wl, wl_inactive),
            (nodes.vdd, vdd),
        ],
        analyses: vec![DeckAnalysis::Tran {
            dt: sim.dt,
            t_stop: t_on + pulse + 2.0 * sim.t_edge + sim.t_post_write,
        }],
        circuit: c,
        ..Deck::default()
    };
    deck.to_spice()
}

/// Read harness: bitlines float as precharged capacitors while the
/// wordline opens for the read window.
fn read_deck() -> String {
    let params = proposed();
    let topo = CellTopology::builtin(params.kind);
    let (vdd, sim, access) = (params.vdd, params.sim, topo.access());
    let mut c = Circuit::new();
    let nodes = topo.place(&mut c, &params).nodes;
    c.vsource("VDD", nodes.vdd, Circuit::GND, Waveform::dc(vdd));
    c.vsource("VSS", nodes.vss, Circuit::GND, Waveform::dc(0.0));
    let wl_inactive = access.wl_inactive(vdd);
    c.vsource(
        "WL",
        nodes.wl,
        Circuit::GND,
        Waveform::pulse(
            wl_inactive,
            access.wl_active(vdd),
            sim.t_settle,
            sim.t_read,
            sim.t_edge,
        ),
    );
    c.capacitor(nodes.bl, Circuit::GND, params.c_bitline);
    c.capacitor(nodes.blb, Circuit::GND, params.c_bitline);
    let deck = Deck {
        title: Some("6t inward-p read harness: floating precharged bitlines".into()),
        ic: vec![
            (nodes.q, vdd),
            (nodes.qb, 0.0),
            (nodes.bl, vdd),
            (nodes.blb, vdd),
            (nodes.wl, wl_inactive),
            (nodes.vdd, vdd),
        ],
        analyses: vec![DeckAnalysis::Tran {
            dt: sim.dt,
            t_stop: sim.t_settle + sim.t_read + 2.0 * sim.t_edge + 0.5e-9,
        }],
        circuit: c,
        ..Deck::default()
    };
    deck.to_spice()
}

/// 8x8 array as a *hierarchical* deck (64 `X` calls of one exported cell
/// subckt) plus its flattened re-export. The pair pins the flattener:
/// parse(hierarchical).to_spice() must equal the flat file byte-for-byte.
fn array_decks() -> (String, String) {
    let params = proposed();
    let topo = CellTopology::builtin(params.kind);
    let cell = topo.export_subckt(&params, "cell_6t");
    let lib = Deck {
        title: Some("8x8 6t array, hierarchical".into()),
        subckts: vec![cell],
        ..Deck::default()
    };
    let mut input = lib.to_spice();
    let end = input.rfind(".end").expect("deck ends with .end");
    input.truncate(end);
    let vdd = params.vdd;
    let wl_off = topo.access().wl_inactive(vdd);
    input.push_str(&format!("VVDD vdd 0 DC {vdd:.6e}\n"));
    input.push_str(&format!("VVSS vss 0 DC {:.6e}\n", 0.0));
    for r in 0..8 {
        input.push_str(&format!("VWL{r} wl{r} 0 DC {wl_off:.6e}\n"));
    }
    for col in 0..8 {
        input.push_str(&format!("VBL{col} bl{col} 0 DC {vdd:.6e}\n"));
        input.push_str(&format!("VBLB{col} blb{col} 0 DC {vdd:.6e}\n"));
    }
    for r in 0..8 {
        for col in 0..8 {
            input.push_str(&format!(
                "Xr{r}c{col} q{r}x{col} qb{r}x{col} bl{col} blb{col} wl{r} vdd vss cell_6t\n"
            ));
        }
    }
    input.push_str(".tran 2e-12 1e-9\n.end\n");

    let flat = Deck::parse(&input, &standard_models())
        .expect("hierarchical array parses")
        .to_spice();
    (input, flat)
}

fn check(name: &str, want: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("BLESS_GOLDEN").is_some() {
        fs::create_dir_all(golden_dir()).expect("golden dir");
        fs::write(&path, want).unwrap_or_else(|e| panic!("blessing {name}: {e}"));
    }
    let got = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "reading {}: {e} (regenerate with BLESS_GOLDEN=1)",
            path.display()
        )
    });
    assert_eq!(got, want, "{name} drifted from its generator");
}

#[test]
fn golden_corpus_matches_generators() {
    check("hold_6t.sp", &hold_deck());
    check("write_6t.sp", &write_deck());
    check("read_6t.sp", &read_deck());
    let (input, flat) = array_decks();
    check("array_8x8.sp", &input);
    check("array_8x8.flat.sp", &flat);
}
