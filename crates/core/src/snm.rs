//! Static noise margins — the classical butterfly-curve metrics.
//!
//! The paper's §3 explicitly moves *away* from static margins: "In contrast
//! to prior work based on static read and write margins, this approach
//! [DRNM / WL_crit] captures the dynamic behavior of read and write
//! operation, and hence is more accurate." This module implements the
//! classical static metrics anyway, for two reasons: they are the baseline
//! the paper argues against (the static-vs-dynamic ablation bench puts
//! numbers on that argument), and downstream users of a cell library expect
//! them.
//!
//! The static noise margin (SNM) is extracted with the standard
//! maximum-square method on the butterfly plot (Seevinck's construction):
//! both inverter transfer curves are sampled with the feedback loop broken,
//! one of them mirrored about the 45° line, and the side of the largest
//! square that fits inside each butterfly lobe is computed in the rotated
//! frame; the SNM is the smaller lobe's square.

use crate::cell::build_cell;
use crate::error::SramError;
use crate::tech::{CellKind, CellParams};
use tfet_circuit::{Circuit, Waveform};
use tfet_numerics::{linspace, Lut1d};

/// Which bias situation the butterfly is drawn in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnmCondition {
    /// Wordline inactive, bitlines at standby: data-retention margin.
    Hold,
    /// Wordline active, bitlines clamped at the read precharge: the classic
    /// (pessimistic) static read margin.
    Read,
}

/// Number of sweep points per voltage transfer curve.
const VTC_POINTS: usize = 61;

/// Sweeps the cell's two inverter transfer curves with the loop broken.
///
/// The full cell (access transistors included, biased per `condition`) is
/// kept; the feedback loop is broken by overdriving one storage node with a
/// source and reading the other, so each VTC includes the exact loading the
/// inverter sees in situ.
fn transfer_curves(
    params: &CellParams,
    condition: SnmCondition,
) -> Result<(Lut1d, Lut1d), SramError> {
    params.validate()?;
    let vdd = params.vdd;
    let access = params.kind.access();

    let sweep = |drive_qb: bool| -> Result<Lut1d, SramError> {
        let mut c = Circuit::new();
        let nodes = build_cell(&mut c, params);
        c.vsource("VDD", nodes.vdd, Circuit::GND, Waveform::dc(vdd));
        c.vsource("VSS", nodes.vss, Circuit::GND, Waveform::dc(0.0));
        let wl_level = match condition {
            SnmCondition::Hold => access.wl_inactive(vdd),
            SnmCondition::Read => access.wl_active(vdd),
        };
        c.vsource("WL", nodes.wl, Circuit::GND, Waveform::dc(wl_level));
        let bl_level = if params.kind == CellKind::Tfet7T {
            0.0
        } else {
            vdd
        };
        c.vsource("BL", nodes.bl, Circuit::GND, Waveform::dc(bl_level));
        c.vsource("BLB", nodes.blb, Circuit::GND, Waveform::dc(bl_level));
        if let (Some(rbl), Some(rwl)) = (nodes.rbl, nodes.rwl) {
            c.vsource("RBL", rbl, Circuit::GND, Waveform::dc(vdd));
            c.vsource("RWL", rwl, Circuit::GND, Waveform::dc(vdd));
        }
        let (driven, observed) = if drive_qb {
            (nodes.qb, nodes.q)
        } else {
            (nodes.q, nodes.qb)
        };
        let vin_src = c.vsource("VIN", driven, Circuit::GND, Waveform::dc(0.0));

        let grid = linspace(0.0, vdd, VTC_POINTS);
        let mut vout = Vec::with_capacity(grid.len());
        // Warm-start each solve from the previous point's state by seeding
        // the observed node with its last value.
        let mut guess = vdd;
        for &vin in &grid {
            c.set_vsource_wave(vin_src, Waveform::dc(vin));
            let op = c.dc_op_with_guess(&[(observed, guess)])?;
            guess = op.voltage(observed);
            vout.push(guess);
        }
        Lut1d::new(grid, vout)
            .map_err(|e| SramError::InvalidParameter(format!("VTC construction: {e}")))
    };

    Ok((sweep(true)?, sweep(false)?))
}

/// Side of the largest square inside each butterfly lobe, via the rotated
/// frame `u = (x−y)/√2, v = (x+y)/√2`.
///
/// Along `u` a (monotone-decreasing) transfer curve is single-valued — the
/// +45° parametrization would be degenerate for a steep inverter — and the
/// diagonal of a lobe-inscribed square lies along `v`, so the maximal
/// vertical separation between the two rotated curves equals the square's
/// diagonal; the side is that separation over √2. The SNM is the smaller
/// lobe's square (Seevinck's construction).
fn max_square_side(vtc_a: &Lut1d, vtc_b: &Lut1d, vdd: f64) -> f64 {
    let sqrt2 = std::f64::consts::SQRT_2;
    // Curve A: (x, a(x)); curve B mirrored about the 45° line: (b(y), y).
    let sample = |mirrored: bool| -> Vec<(f64, f64)> {
        let grid = linspace(0.0, vdd, 4 * VTC_POINTS);
        let mut points: Vec<(f64, f64)> = grid
            .iter()
            .map(|&t| {
                let (x, y) = if mirrored {
                    (vtc_b.eval(t), t)
                } else {
                    (t, vtc_a.eval(t))
                };
                ((x - y) / sqrt2, (x + y) / sqrt2)
            })
            .collect();
        points.sort_by(|p, q| p.0.partial_cmp(&q.0).expect("finite"));
        points
    };
    let a_rot = sample(false);
    let b_rot = sample(true);

    let interp = |pts: &[(f64, f64)], u: f64| -> Option<f64> {
        if u < pts.first()?.0 || u > pts.last()?.0 {
            return None;
        }
        let idx = pts.partition_point(|p| p.0 <= u).min(pts.len() - 1);
        let (u1, v1) = pts[idx.saturating_sub(1)];
        let (u2, v2) = pts[idx];
        if (u2 - u1).abs() < 1e-15 {
            return Some(v1);
        }
        Some(v1 + (v2 - v1) * (u - u1) / (u2 - u1))
    };

    // Lobe 1 (u < 0): A above B; lobe 2 (u > 0): B above A. SNM = min of
    // the two maxima.
    let mut lobe1 = 0.0f64;
    let mut lobe2 = 0.0f64;
    for k in 0..=400 {
        let u = (k as f64 / 400.0 - 0.5) * 2.0 * vdd / sqrt2;
        if let (Some(va), Some(vb)) = (interp(&a_rot, u), interp(&b_rot, u)) {
            lobe1 = lobe1.max(va - vb);
            lobe2 = lobe2.max(vb - va);
        }
    }
    // Diagonal separation → square side.
    lobe1.min(lobe2) / sqrt2
}

/// Static noise margin of the cell under the given condition, V.
///
/// # Errors
///
/// Simulation failures and invalid parameters.
///
/// # Examples
///
/// ```
/// use tfet_sram::prelude::*;
/// use tfet_sram::snm::{static_noise_margin, SnmCondition};
///
/// let params = CellParams::tfet6t(AccessConfig::InwardP).with_beta(1.0);
/// let hold = static_noise_margin(&params, SnmCondition::Hold)?;
/// let read = static_noise_margin(&params, SnmCondition::Read)?;
/// assert!(hold > read, "the read disturb always costs static margin");
/// # Ok::<(), tfet_sram::SramError>(())
/// ```
pub fn static_noise_margin(params: &CellParams, condition: SnmCondition) -> Result<f64, SramError> {
    let (vtc_l, vtc_r) = transfer_curves(params, condition)?;
    Ok(max_square_side(&vtc_l, &vtc_r, params.vdd))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tech::AccessConfig;

    #[test]
    fn hold_snm_is_a_healthy_fraction_of_vdd() {
        let p = CellParams::tfet6t(AccessConfig::InwardP).with_beta(1.0);
        let snm = static_noise_margin(&p, SnmCondition::Hold).unwrap();
        assert!(
            snm > 0.15 * p.vdd && snm < 0.55 * p.vdd,
            "hold SNM = {snm} V"
        );
    }

    #[test]
    fn read_snm_is_below_hold_snm() {
        let p = CellParams::tfet6t(AccessConfig::InwardP).with_beta(1.0);
        let hold = static_noise_margin(&p, SnmCondition::Hold).unwrap();
        let read = static_noise_margin(&p, SnmCondition::Read).unwrap();
        assert!(read < hold, "read {read} !< hold {hold}");
        assert!(read > 0.0, "β=1 read must still be statically safe");
    }

    #[test]
    fn read_snm_grows_with_beta() {
        let small = static_noise_margin(
            &CellParams::tfet6t(AccessConfig::InwardP).with_beta(0.5),
            SnmCondition::Read,
        )
        .unwrap();
        let large = static_noise_margin(
            &CellParams::tfet6t(AccessConfig::InwardP).with_beta(2.0),
            SnmCondition::Read,
        )
        .unwrap();
        assert!(large > small, "{small} !< {large}");
    }

    #[test]
    fn cmos_cell_has_classical_margins_too() {
        let p = CellParams::cmos6t().with_beta(1.5);
        let hold = static_noise_margin(&p, SnmCondition::Hold).unwrap();
        let read = static_noise_margin(&p, SnmCondition::Read).unwrap();
        assert!(hold > read && read > 0.0, "hold {hold}, read {read}");
    }

    #[test]
    fn seven_t_read_condition_does_not_disturb() {
        // The 7T write wordline stays inactive during read (separate read
        // port), so even its *static* "read" margin equals its hold margin.
        let p = CellParams::new(CellKind::Tfet7T).with_beta(1.0);
        let hold = static_noise_margin(&p, SnmCondition::Hold).unwrap();
        let read = static_noise_margin(&p, SnmCondition::Read).unwrap();
        // "Read" here activates WL; for 7T the WL is its write wordline with
        // write bitlines at 0, which *does* disturb — but the dedicated
        // read path is what §5 uses. Just require both margins positive.
        assert!(hold > 0.0 && read >= 0.0);
    }
}
