//! Write-assist and read-assist techniques (paper §4).
//!
//! Every technique is, electrically, a reshaped bias level applied during
//! the operation window — the paper fixes the reshaping at **30 % of V_DD**
//! for fair comparison (§4.1/§4.2), which [`ASSIST_FRACTION`] mirrors (and
//! the assist-level ablation bench sweeps).
//!
//! Polarity note: the paper's cell uses *p-type* access transistors, which
//! are active-low; "wordline lowering" therefore *strengthens* the access
//! device (gate driven below 0), where a CMOS cell with n-type access would
//! use wordline *raising* for the same effect. [`write_bias`]/[`read_bias`]
//! handle both polarities so the same code drives the CMOS baseline.

use crate::tech::AccessConfig;
use serde::{Deserialize, Serialize};

/// The paper's assist strength: 30 % of V_DD.
pub const ASSIST_FRACTION: f64 = 0.3;

/// The four leading write-assist techniques studied in §4.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WriteAssist {
    /// Lower the cell supply during the write window — weakens the
    /// cross-coupled inverters.
    VddLowering,
    /// Raise the cell ground during the write window — also weakens the
    /// inverters (and in particular the pull-down devices, the paper's
    /// "main obstacle during write" for inward access).
    GndRaising,
    /// Overdrive the wordline beyond its active level — strengthens the
    /// access transistors (lowering for p-type access, raising for n-type).
    WordlineLowering,
    /// Raise the high bitline above V_DD — increases the conducting access
    /// transistor's drive.
    BitlineRaising,
}

impl WriteAssist {
    /// All four techniques, in the paper's order.
    pub const ALL: [WriteAssist; 4] = [
        WriteAssist::VddLowering,
        WriteAssist::GndRaising,
        WriteAssist::WordlineLowering,
        WriteAssist::BitlineRaising,
    ];

    /// Display label matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            WriteAssist::VddLowering => "VDD lowering",
            WriteAssist::GndRaising => "GND raising",
            WriteAssist::WordlineLowering => "wordline lowering",
            WriteAssist::BitlineRaising => "bitline raising",
        }
    }
}

/// The four leading read-assist techniques studied in §4.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReadAssist {
    /// Raise the cell supply during the read window — strengthens the
    /// inverters.
    VddRaising,
    /// Lower the cell ground during the read window — strengthens the
    /// inverters; the technique the paper selects for its final design.
    GndLowering,
    /// Back off the wordline from its active level — weakens the access
    /// transistors (raising for p-type access, lowering for n-type).
    WordlineRaising,
    /// Precharge/clamp the bitlines below V_DD — reduces both the gate and
    /// drain drive of the access transistors.
    BitlineLowering,
}

impl ReadAssist {
    /// All four techniques, in the paper's order.
    pub const ALL: [ReadAssist; 4] = [
        ReadAssist::VddRaising,
        ReadAssist::GndLowering,
        ReadAssist::WordlineRaising,
        ReadAssist::BitlineLowering,
    ];

    /// Display label matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            ReadAssist::VddRaising => "VDD raising",
            ReadAssist::GndLowering => "GND lowering",
            ReadAssist::WordlineRaising => "wordline raising",
            ReadAssist::BitlineLowering => "bitline lowering",
        }
    }
}

/// Bias levels in force during a write operation's assist window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WriteBias {
    /// Cell supply rail level, V.
    pub vdd_level: f64,
    /// Cell ground rail level, V.
    pub vss_level: f64,
    /// Wordline active level, V.
    pub wl_active: f64,
    /// High-bitline drive level, V (the side pushing the new value in).
    pub bl_high: f64,
}

/// Computes the write-window bias levels for an optional assist at strength
/// `frac·vdd`.
pub fn write_bias(
    assist: Option<WriteAssist>,
    vdd: f64,
    access: AccessConfig,
    frac: f64,
) -> WriteBias {
    let delta = frac * vdd;
    let mut b = WriteBias {
        vdd_level: vdd,
        vss_level: 0.0,
        wl_active: access.wl_active(vdd),
        bl_high: vdd,
    };
    match assist {
        None => {}
        Some(WriteAssist::VddLowering) => b.vdd_level = vdd - delta,
        Some(WriteAssist::GndRaising) => b.vss_level = delta,
        Some(WriteAssist::WordlineLowering) => {
            // Overdrive in the activating direction.
            b.wl_active = if access.is_p_type() {
                -delta
            } else {
                vdd + delta
            };
        }
        Some(WriteAssist::BitlineRaising) => b.bl_high = vdd + delta,
    }
    b
}

/// Bias levels in force during a read operation's assist window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadBias {
    /// Cell supply rail level, V.
    pub vdd_level: f64,
    /// Cell ground rail level, V.
    pub vss_level: f64,
    /// Wordline active level, V.
    pub wl_active: f64,
    /// Bitline precharge level, V (for inward/CMOS cells; outward cells
    /// precharge low and are not part of the §4 assist study).
    pub bl_precharge: f64,
}

/// Computes the read-window bias levels for an optional assist at strength
/// `frac·vdd`.
pub fn read_bias(
    assist: Option<ReadAssist>,
    vdd: f64,
    access: AccessConfig,
    frac: f64,
) -> ReadBias {
    let delta = frac * vdd;
    let mut b = ReadBias {
        vdd_level: vdd,
        vss_level: 0.0,
        wl_active: access.wl_active(vdd),
        bl_precharge: vdd,
    };
    match assist {
        None => {}
        Some(ReadAssist::VddRaising) => b.vdd_level = vdd + delta,
        Some(ReadAssist::GndLowering) => b.vss_level = -delta,
        Some(ReadAssist::WordlineRaising) => {
            // Back off in the de-activating direction.
            b.wl_active = if access.is_p_type() {
                delta
            } else {
                vdd - delta
            };
        }
        Some(ReadAssist::BitlineLowering) => b.bl_precharge = vdd - delta,
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    const VDD: f64 = 0.8;

    #[test]
    fn no_assist_is_nominal() {
        let b = write_bias(None, VDD, AccessConfig::InwardP, ASSIST_FRACTION);
        assert_eq!(b.vdd_level, VDD);
        assert_eq!(b.vss_level, 0.0);
        assert_eq!(b.wl_active, 0.0, "p-access is active-low");
        assert_eq!(b.bl_high, VDD);
    }

    #[test]
    fn write_assists_move_the_right_rail() {
        let f = ASSIST_FRACTION;
        let b = write_bias(
            Some(WriteAssist::VddLowering),
            VDD,
            AccessConfig::InwardP,
            f,
        );
        assert!((b.vdd_level - 0.56).abs() < 1e-12);
        let b = write_bias(Some(WriteAssist::GndRaising), VDD, AccessConfig::InwardP, f);
        assert!((b.vss_level - 0.24).abs() < 1e-12);
        let b = write_bias(
            Some(WriteAssist::BitlineRaising),
            VDD,
            AccessConfig::InwardP,
            f,
        );
        assert!((b.bl_high - 1.04).abs() < 1e-12);
    }

    #[test]
    fn wordline_overdrive_follows_access_polarity() {
        let f = ASSIST_FRACTION;
        // p-access: active-low, overdrive goes below ground.
        let b = write_bias(
            Some(WriteAssist::WordlineLowering),
            VDD,
            AccessConfig::InwardP,
            f,
        );
        assert!((b.wl_active + 0.24).abs() < 1e-12);
        // n-access: active-high, overdrive goes above VDD.
        let b = write_bias(
            Some(WriteAssist::WordlineLowering),
            VDD,
            AccessConfig::InwardN,
            f,
        );
        assert!((b.wl_active - 1.04).abs() < 1e-12);
    }

    #[test]
    fn read_assists_move_the_right_rail() {
        let f = ASSIST_FRACTION;
        let b = read_bias(Some(ReadAssist::VddRaising), VDD, AccessConfig::InwardP, f);
        assert!((b.vdd_level - 1.04).abs() < 1e-12);
        let b = read_bias(Some(ReadAssist::GndLowering), VDD, AccessConfig::InwardP, f);
        assert!((b.vss_level + 0.24).abs() < 1e-12);
        let b = read_bias(
            Some(ReadAssist::BitlineLowering),
            VDD,
            AccessConfig::InwardP,
            f,
        );
        assert!((b.bl_precharge - 0.56).abs() < 1e-12);
    }

    #[test]
    fn wordline_backoff_follows_access_polarity() {
        let f = ASSIST_FRACTION;
        // p-access: active level 0, backed off to +0.24.
        let b = read_bias(
            Some(ReadAssist::WordlineRaising),
            VDD,
            AccessConfig::InwardP,
            f,
        );
        assert!((b.wl_active - 0.24).abs() < 1e-12);
        // n-access: active level VDD, backed off to 0.56.
        let b = read_bias(
            Some(ReadAssist::WordlineRaising),
            VDD,
            AccessConfig::InwardN,
            f,
        );
        assert!((b.wl_active - 0.56).abs() < 1e-12);
    }

    #[test]
    fn labels_and_all_lists() {
        assert_eq!(WriteAssist::ALL.len(), 4);
        assert_eq!(ReadAssist::ALL.len(), 4);
        for a in WriteAssist::ALL {
            assert!(!a.label().is_empty());
        }
        for a in ReadAssist::ALL {
            assert!(!a.label().is_empty());
        }
        assert_eq!(ReadAssist::GndLowering.label(), "GND lowering");
    }
}
