//! The paper's cell-quality metrics.
//!
//! * [`static_power`] — hold-state dissipation from a DC operating point
//!   (bitlines clamped, wordlines inactive);
//! * [`wl_crit`] — critical wordline pulse width: the shortest pulse that
//!   flips the cell, found by binary search over flip/no-flip transients
//!   (the paper's dynamic write metric, after [Wang, ISLPED'08]); may be
//!   [`WlCrit::Infinite`] — the paper's signature result for inward-n
//!   access and for inward-p at β > 1;
//! * [`read_metrics`] — DRNM (dynamic read noise margin) and read delay
//!   from a read transient;
//! * [`write_delay`] — wordline activation to storage-node crossing under a
//!   generous pulse.

use crate::assist::{ReadAssist, WriteAssist};
use crate::error::SramError;
use crate::ops::{hold_setup, run_write, ReadExperiment, WriteExperiment};
use crate::tech::{CellKind, CellParams};
use tfet_circuit::{CompiledCircuit, SolveStats};
use tfet_numerics::roots::{critical_threshold, critical_threshold_seeded_checked, Threshold};

/// Result of a critical-pulse-width search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WlCrit {
    /// The cell flips for pulses at least this wide, s.
    Finite(f64),
    /// No pulse up to the search limit flips the cell — a write failure
    /// (the paper plots these configurations as "infinite WL_crit").
    Infinite,
    /// The search could not be bracketed: a decisive transient (the
    /// endpoint probe, or the seeded ascent's probe at the search limit)
    /// failed to converge, so neither a finite value nor an infinite
    /// verdict can be certified. The underlying error is kept in
    /// [`WlCritRun::failure`]; sweeps and Monte-Carlo studies degrade this
    /// outcome (skipped point / quarantined sample) instead of aborting.
    Unbracketable,
}

impl WlCrit {
    /// The finite value, if any.
    pub fn as_finite(self) -> Option<f64> {
        match self {
            WlCrit::Finite(v) => Some(v),
            WlCrit::Infinite | WlCrit::Unbracketable => None,
        }
    }

    /// Whether the write fails outright.
    pub fn is_infinite(self) -> bool {
        matches!(self, WlCrit::Infinite)
    }

    /// Whether a solver failure left the search without a verdict.
    pub fn is_unbracketable(self) -> bool {
        matches!(self, WlCrit::Unbracketable)
    }
}

/// Hold-state static power, W.
///
/// The cell is placed in hold (`q = 1`), bitlines clamped at their standby
/// levels, and the summed source power of the DC operating point is
/// returned. For the 6T TFET cell this is set by the 1e-17 A/µm off
/// current — femtowatt scale — unless an outward access configuration puts
/// a reverse-biased (conducting!) p-i-n diode across a bitline, the §3
/// disqualifier.
///
/// # Errors
///
/// Simulation failures and invalid parameters.
pub fn static_power(params: &CellParams) -> Result<f64, SramError> {
    let _span = tfet_obs::span("static_power");
    let h = hold_setup(params)?;
    let mut compiled = CompiledCircuit::compile(h.circuit)?;
    let op = compiled.dc_op(&h.guess)?;
    // Sanity: the state must actually hold, otherwise the measurement is
    // meaningless.
    let vq = op.voltage(h.nodes.q);
    let vqb = op.voltage(h.nodes.qb);
    if vq - vqb < 0.5 * params.vdd {
        return Err(SramError::Undefined {
            metric: "static_power",
            reason: format!(
                "cell does not hold its state in standby (q = {vq:.3} V, qb = {vqb:.3} V)"
            ),
        });
    }
    Ok(op.total_power())
}

/// A completed `WL_crit` search with its solver-effort accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct WlCritRun {
    /// The search result.
    pub value: WlCrit,
    /// Number of write transients the search ran (oracle calls plus the
    /// endpoint probe).
    pub oracle_calls: u64,
    /// Solver effort accumulated over every transient of the search.
    pub effort: SolveStats,
    /// The structured error behind a [`WlCrit::Unbracketable`] outcome —
    /// the decisive transient's failure, kept so quarantine reports and
    /// forensics can name the cause. `None` for every other outcome
    /// (tolerated interior-probe failures are conservative, not fatal, and
    /// are not recorded here).
    pub failure: Option<SramError>,
}

/// Critical wordline pulse width for a successful write, searched on
/// `[5·dt, max_pulse]` to `pulse_tol` resolution.
///
/// # Errors
///
/// Returns [`SramError::Undefined`] for the asymmetric 6T TFET SRAM (its
/// ground-collapse write has no separatrix — paper §5). Simulation errors
/// inside the search oracle are treated as "did not flip" (conservative)
/// unless they strike a decisive probe, in which case the search reports
/// [`WlCrit::Unbracketable`] instead of an error.
pub fn wl_crit(params: &CellParams, assist: Option<WriteAssist>) -> Result<WlCrit, SramError> {
    Ok(wl_crit_seeded(params, assist, None)?.value)
}

/// [`wl_crit`] with a warm-start hint and effort accounting: `hint` is a
/// guess at the critical width — typically the result at the previous sweep
/// point or the nominal Monte-Carlo cell, both of which bracket the search
/// tightly (`WL_crit` is monotone in β and smooth in the process
/// variations). A good hint replaces the full-range bisection with a short
/// search around the hint; a bad or absent hint degrades gracefully to the
/// cold search. The returned value never depends on the hint, only the
/// number of transients run does.
///
/// # Errors
///
/// As [`wl_crit`].
pub fn wl_crit_seeded(
    params: &CellParams,
    assist: Option<WriteAssist>,
    hint: Option<f64>,
) -> Result<WlCritRun, SramError> {
    if params.kind == CellKind::TfetAsym6T {
        return Err(SramError::Undefined {
            metric: "WL_crit",
            reason: "the asymmetric 6T TFET SRAM's write has no separatrix".into(),
        });
    }
    params.validate()?;
    let mut exp = WriteExperiment::compile(params, assist)?;
    wl_crit_compiled(&mut exp, hint)
}

/// [`wl_crit`] for an explicit topology — the entry point for cells that
/// exist only as an imported `.subckt`. One-shot: compiles the write
/// experiment on `topo`, searches, discards the compiled form.
///
/// # Errors
///
/// As [`wl_crit`].
pub fn wl_crit_on(
    topo: &crate::topology::CellTopology,
    params: &CellParams,
    assist: Option<WriteAssist>,
) -> Result<WlCrit, SramError> {
    let mut exp = WriteExperiment::compile_on(topo, params, assist)?;
    Ok(wl_crit_compiled(&mut exp, None)?.value)
}

/// [`wl_crit_seeded`] against an already-compiled [`WriteExperiment`]:
/// every transient of the search rebinds the pulse width and re-runs the
/// frozen circuit, so a sweep or Monte-Carlo batch pays one compile for
/// the whole search (and, via
/// [`bind_cell`](WriteExperiment::bind_cell), for every subsequent
/// search on the same topology). The `effort` counters therefore report
/// `circuit_builds` far below `runs` — the build/bind/run ratio the
/// throughput bench pins.
///
/// # Errors
///
/// As [`wl_crit`]. The asymmetric 6T cell is rejected even here: its
/// compiled form always carries the built-in ground collapse, which has no
/// separatrix to search for.
pub fn wl_crit_compiled(
    exp: &mut WriteExperiment,
    hint: Option<f64>,
) -> Result<WlCritRun, SramError> {
    let _span = tfet_obs::span("wl_crit");
    if exp.kind() == CellKind::TfetAsym6T {
        return Err(SramError::Undefined {
            metric: "WL_crit",
            reason: "the asymmetric 6T TFET SRAM's write has no separatrix".into(),
        });
    }
    let lo = 5.0 * exp.sim().dt;
    let hi = exp.sim().max_pulse;
    let pulse_tol = exp.sim().pulse_tol;
    let mut effort = SolveStats::default();
    let mut oracle_calls = 0u64;
    let mut failure: Option<SramError> = None;
    // The endpoint probe decides Infinite outright; if its transient itself
    // fails, the search has no verdict — report a typed Unbracketable
    // outcome (with the cause) instead of propagating a raw solver error,
    // so sweeps and Monte-Carlo studies can degrade instead of aborting.
    let probe = match exp.run(hi) {
        Ok(probe) => probe,
        Err(e) => {
            oracle_calls += 1;
            if tfet_obs::enabled() {
                tfet_obs::counter("wl_crit.searches", 1);
                tfet_obs::counter("wl_crit.unbracketable", 1);
                tfet_obs::record_u64("wl_crit.oracle_calls", oracle_calls);
                tfet_obs::record_u64("wl_crit.newton_solves_per_search", effort.newton_solves);
            }
            return Ok(WlCritRun {
                value: WlCrit::Unbracketable,
                oracle_calls,
                effort,
                failure: Some(e),
            });
        }
    };
    oracle_calls += 1;
    effort.absorb(&probe.result.stats);
    if !probe.flipped() {
        if tfet_obs::enabled() {
            tfet_obs::counter("wl_crit.searches", 1);
            tfet_obs::counter("wl_crit.infinite", 1);
            tfet_obs::record_u64("wl_crit.oracle_calls", oracle_calls);
            tfet_obs::record_u64("wl_crit.newton_solves_per_search", effort.newton_solves);
        }
        return Ok(WlCritRun {
            value: WlCrit::Infinite,
            oracle_calls,
            effort,
            failure: None,
        });
    }
    let th = critical_threshold_seeded_checked(lo, hi, pulse_tol, hint, |w| {
        oracle_calls += 1;
        match exp.run(w) {
            Ok(r) => {
                effort.absorb(&r.result.stats);
                Some(r.flipped())
            }
            Err(e) => {
                // Interior failures are tolerated as "did not flip"
                // (conservative); a failure at a decisive probe turns the
                // whole search Unbracketable and this error names why.
                failure = Some(e);
                None
            }
        }
    });
    let value = match th {
        Threshold::Critical(w) => WlCrit::Finite(w),
        Threshold::AlwaysTrue => WlCrit::Finite(lo),
        Threshold::NeverTrue => WlCrit::Infinite,
        Threshold::Unbracketable => WlCrit::Unbracketable,
    };
    if tfet_obs::enabled() {
        tfet_obs::counter("wl_crit.searches", 1);
        tfet_obs::record_u64("wl_crit.oracle_calls", oracle_calls);
        tfet_obs::record_u64("wl_crit.newton_solves_per_search", effort.newton_solves);
        match value {
            WlCrit::Finite(w) => tfet_obs::record_f64("wl_crit.value_s", w),
            WlCrit::Infinite => tfet_obs::counter("wl_crit.infinite", 1),
            WlCrit::Unbracketable => tfet_obs::counter("wl_crit.unbracketable", 1),
        }
    }
    Ok(WlCritRun {
        value,
        oracle_calls,
        effort,
        failure: if value.is_unbracketable() {
            failure
        } else {
            None
        },
    })
}

/// Read-stability measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadMetrics {
    /// Dynamic read noise margin, V. Non-positive = destructive read.
    pub drnm: f64,
    /// Wordline activation → 50 mV of sense signal, s; `None` if the signal
    /// never develops inside the read window.
    pub read_delay: Option<f64>,
}

/// Sense threshold used for read delay, V.
pub const SENSE_DV: f64 = 0.05;

/// Runs a read and extracts [`ReadMetrics`].
///
/// # Errors
///
/// Simulation failures and invalid parameters.
pub fn read_metrics(
    params: &CellParams,
    assist: Option<ReadAssist>,
) -> Result<ReadMetrics, SramError> {
    let mut exp = ReadExperiment::compile(params, assist)?;
    read_metrics_compiled(&mut exp)
}

/// [`read_metrics`] for an explicit topology — the entry point for cells
/// that exist only as an imported `.subckt`.
///
/// # Errors
///
/// As [`read_metrics`].
pub fn read_metrics_on(
    topo: &crate::topology::CellTopology,
    params: &CellParams,
    assist: Option<ReadAssist>,
) -> Result<ReadMetrics, SramError> {
    let mut exp = ReadExperiment::compile_on(topo, params, assist)?;
    read_metrics_compiled(&mut exp)
}

/// [`read_metrics`] against an already-compiled [`ReadExperiment`]: the
/// frozen read circuit re-runs as-is, so batches that retarget it through
/// [`bind_cell`](ReadExperiment::bind_cell) pay one compile for the whole
/// sweep.
///
/// # Errors
///
/// Simulation failures.
pub fn read_metrics_compiled(exp: &mut ReadExperiment) -> Result<ReadMetrics, SramError> {
    let _span = tfet_obs::span("read_metrics");
    let run = exp.run()?;
    let metrics = ReadMetrics {
        drnm: run.drnm(),
        read_delay: run.read_delay(SENSE_DV),
    };
    tfet_obs::record_f64("read.drnm_v", metrics.drnm);
    Ok(metrics)
}

/// Write delay under a generous (`max_pulse`) wordline pulse: activation →
/// rising storage node crosses V_DD/2. `None` means the write fails.
///
/// # Errors
///
/// Simulation failures and invalid parameters.
pub fn write_delay(
    params: &CellParams,
    assist: Option<WriteAssist>,
) -> Result<Option<f64>, SramError> {
    let run = run_write(params, assist, params.sim.max_pulse)?;
    if !run.flipped() {
        return Ok(None);
    }
    Ok(run.write_delay())
}

/// Per-transistor leakage at the hold operating point.
#[derive(Debug, Clone, PartialEq)]
pub struct LeakageBreakdown {
    /// `(instance name, |drain current| in A)`, sorted descending.
    pub per_device: Vec<(String, f64)>,
    /// Total supply power, W (matches [`static_power`]).
    pub total_power: f64,
}

impl LeakageBreakdown {
    /// The dominant leaker.
    ///
    /// # Panics
    ///
    /// Panics if the cell has no transistors (never for in-tree cells).
    pub fn worst(&self) -> &(String, f64) {
        self.per_device.first().expect("cells have transistors")
    }
}

/// Resolves the hold-state leakage into per-transistor currents — which
/// device is responsible for the standby power. For an inward-access cell
/// every device sits at its off-current floor; for an outward-access cell
/// this report names the reverse-biased access transistor carrying the §3
/// catastrophic p-i-n diode current.
///
/// # Errors
///
/// Simulation failures and invalid parameters.
pub fn leakage_breakdown(params: &CellParams) -> Result<LeakageBreakdown, SramError> {
    let h = hold_setup(params)?;
    let op = h.circuit.dc_op_with_guess(&h.guess)?;
    let mut per_device: Vec<(String, f64)> = h
        .circuit
        .transistors()
        .iter()
        .map(|t| {
            let i = t.ids(op.voltage(t.g), op.voltage(t.d), op.voltage(t.s));
            (t.name.clone(), i.abs())
        })
        .collect();
    per_device.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite currents"));
    Ok(LeakageBreakdown {
        per_device,
        total_power: op.total_power(),
    })
}

/// Data-retention voltage (DRV): the lowest supply at which the cell still
/// holds both states in standby, found by bisection on a DC hold-stability
/// oracle over `[v_lo, params.vdd]`. Returns `None` if the cell holds even
/// at `v_lo` (the search floor, 50 mV).
///
/// DRV is the classic bound on standby V_DD scaling — the knob that
/// multiplies the paper's static-power savings, since hold power falls
/// superlinearly with the standby supply.
///
/// # Errors
///
/// Simulation failures and invalid parameters.
pub fn data_retention_voltage(params: &CellParams) -> Result<Option<f64>, SramError> {
    let _span = tfet_obs::span("drv");
    params.validate()?;
    let v_lo = 0.05;
    let holds = |vdd: f64| -> bool {
        let mut p = params.clone();
        p.vdd = vdd;
        let Ok(h) = hold_setup(&p) else { return false };
        let Ok(op) = h.circuit.dc_op_with_guess(&h.guess) else {
            return false;
        };
        // Both states must be stable and well separated at this supply.
        let sep1 = op.voltage(h.nodes.q) - op.voltage(h.nodes.qb);
        let Ok(op2) = h
            .circuit
            .dc_op_with_guess(&[(h.nodes.q, 0.0), (h.nodes.qb, vdd)])
        else {
            return false;
        };
        let sep2 = op2.voltage(h.nodes.qb) - op2.voltage(h.nodes.q);
        sep1 > 0.7 * vdd && sep2 > 0.7 * vdd
    };
    if holds(v_lo) {
        return Ok(None);
    }
    if !holds(params.vdd) {
        return Err(SramError::Undefined {
            metric: "DRV",
            reason: format!("cell does not even hold at its nominal {} V", params.vdd),
        });
    }
    let th = critical_threshold(v_lo, params.vdd, 1e-3, holds);
    Ok(match th {
        Threshold::Critical(v) => Some(v),
        Threshold::AlwaysTrue => None,
        Threshold::NeverTrue => unreachable!("endpoint checked above"),
        Threshold::Unbracketable => unreachable!("infallible bool oracle"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tech::{AccessConfig, SteppingMode};

    fn fast(params: CellParams) -> CellParams {
        let mut p = params;
        p.sim.dt = 2e-12;
        p.sim.pulse_tol = 4e-12;
        p
    }

    #[test]
    fn adaptive_engine_cuts_newton_effort() {
        // The PR's headline claim: adaptive stepping plus event-driven early
        // exit spends at least 3× fewer Newton solves per WL_crit
        // extraction than the fixed-step engine, at an unchanged answer.
        // Iterations shrink less (larger steps start farther from the
        // solution), so they get a 2× floor. Both searches run unseeded so
        // the ratio isolates the transient engine, not the bracket seeding.
        let adaptive = fast(CellParams::tfet6t(AccessConfig::InwardP).with_beta(0.6));
        let mut fixed = adaptive.clone();
        fixed.sim.stepping = SteppingMode::Fixed;
        fixed.sim.early_exit = false;
        let a = wl_crit_seeded(&adaptive, None, None).unwrap();
        let f = wl_crit_seeded(&fixed, None, None).unwrap();
        let (wa, wf) = match (a.value, f.value) {
            (WlCrit::Finite(wa), WlCrit::Finite(wf)) => (wa, wf),
            other => panic!("both engines must find a finite WL_crit: {other:?}"),
        };
        assert!(
            (wa - wf).abs() <= 2.0 * adaptive.sim.pulse_tol,
            "engines disagree: adaptive {wa:e} vs fixed {wf:e}"
        );
        assert!(
            f.effort.newton_solves >= 3 * a.effort.newton_solves,
            "solves: fixed {} vs adaptive {}",
            f.effort.newton_solves,
            a.effort.newton_solves
        );
        assert!(
            f.effort.newton_iters >= 2 * a.effort.newton_iters,
            "iters: fixed {} vs adaptive {}",
            f.effort.newton_iters,
            a.effort.newton_iters
        );
    }

    #[test]
    fn seeded_wl_crit_cuts_oracle_calls() {
        // Sweep/MC seeding: a hint from a neighbouring design point must
        // reduce the number of write transients (oracle calls) without
        // moving the answer by more than the bisection tolerance.
        let p = fast(CellParams::tfet6t(AccessConfig::InwardP).with_beta(0.6));
        let cold = wl_crit_seeded(&p, None, None).unwrap();
        let w0 = cold.value.as_finite().expect("β=0.6 is writable");
        let seeded = wl_crit_seeded(&p, None, Some(w0)).unwrap();
        let w1 = seeded.value.as_finite().expect("seeded search agrees");
        assert!(
            (w1 - w0).abs() <= 2.0 * p.sim.pulse_tol,
            "seeded {w1:e} vs cold {w0:e}"
        );
        assert!(
            seeded.oracle_calls < cold.oracle_calls,
            "oracle calls: seeded {} vs cold {}",
            seeded.oracle_calls,
            cold.oracle_calls
        );
    }

    #[test]
    fn tfet_inward_hold_power_is_femtowatt_scale() {
        let p = CellParams::tfet6t(AccessConfig::InwardP);
        let power = static_power(&p).unwrap();
        // 6 mostly-off 0.1 µm devices at ~1e-18 A each, 0.8 V rails.
        assert!(power > 0.0 && power < 1e-15, "power = {power:e} W");
    }

    #[test]
    fn cmos_hold_power_is_six_orders_higher() {
        let tfet = static_power(&CellParams::tfet6t(AccessConfig::InwardP)).unwrap();
        let cmos = static_power(&CellParams::cmos6t()).unwrap();
        let orders = (cmos / tfet).log10();
        assert!(
            (5.0..8.5).contains(&orders),
            "CMOS/TFET static power gap = {orders} orders"
        );
    }

    #[test]
    fn outward_access_pays_orders_of_magnitude_in_hold_power() {
        // Paper §3: 5 / 9 orders at 0.6 / 0.8 V versus inward access.
        for (vdd, min_orders, max_orders) in [(0.6, 3.5, 7.0), (0.8, 6.5, 11.0)] {
            let inward =
                static_power(&CellParams::tfet6t(AccessConfig::InwardP).with_vdd(vdd)).unwrap();
            let outward =
                static_power(&CellParams::tfet6t(AccessConfig::OutwardN).with_vdd(vdd)).unwrap();
            let orders = (outward / inward).log10();
            assert!(
                (min_orders..max_orders).contains(&orders),
                "at {vdd} V: outward/inward = {orders} orders"
            );
        }
    }

    #[test]
    fn wl_crit_finite_for_writable_cell() {
        let p = fast(CellParams::tfet6t(AccessConfig::InwardP).with_beta(0.6));
        match wl_crit(&p, None).unwrap() {
            WlCrit::Finite(w) => {
                assert!(w > 1e-12 && w < 2e-9, "WL_crit = {w:e} s");
            }
            WlCrit::Infinite | WlCrit::Unbracketable => {
                panic!("β=0.6 inward-p must be writable")
            }
        }
    }

    #[test]
    fn wl_crit_infinite_for_inward_n() {
        let p = fast(CellParams::tfet6t(AccessConfig::InwardN).with_beta(0.6));
        assert!(wl_crit(&p, None).unwrap().is_infinite());
    }

    #[test]
    fn wl_crit_infinite_for_inward_p_at_high_beta() {
        // Paper Fig. 4(b): inward-p write fails for β > 1.
        let p = fast(CellParams::tfet6t(AccessConfig::InwardP).with_beta(2.5));
        assert!(wl_crit(&p, None).unwrap().is_infinite());
    }

    #[test]
    fn write_assist_rescues_high_beta_cell() {
        // At β = 2.5 the plain cell fails, but GND raising (which guts the
        // pull-downs, the real obstacle during an inward-access write)
        // recovers it — the crux of paper Fig. 6(e).
        let p = fast(CellParams::tfet6t(AccessConfig::InwardP).with_beta(2.5));
        let rescued = wl_crit(&p, Some(WriteAssist::GndRaising)).unwrap();
        assert!(!rescued.is_infinite(), "GND-raising WA must rescue β=2.5");
    }

    #[test]
    fn vdd_lowering_rescues_moderate_beta_with_long_pulse() {
        // VDD lowering acts on the stored-1 node only through the cell's
        // reverse (ambipolar/diode) conduction — slow in a unidirectional
        // technology — so it needs a longer pulse budget than GND raising.
        let mut p = fast(CellParams::tfet6t(AccessConfig::InwardP).with_beta(1.5));
        p.sim.max_pulse = 10e-9;
        let rescued = wl_crit(&p, Some(WriteAssist::VddLowering)).unwrap();
        assert!(!rescued.is_infinite(), "VDD-lowering WA must rescue β=1.5");
    }

    #[test]
    fn wl_crit_grows_with_beta() {
        let w1 = wl_crit(
            &fast(CellParams::tfet6t(AccessConfig::InwardP).with_beta(0.4)),
            None,
        )
        .unwrap()
        .as_finite()
        .unwrap();
        let w2 = wl_crit(
            &fast(CellParams::tfet6t(AccessConfig::InwardP).with_beta(0.8)),
            None,
        )
        .unwrap()
        .as_finite()
        .unwrap();
        assert!(w2 > w1, "WL_crit must grow with β: {w1:e} !< {w2:e}");
    }

    #[test]
    fn asym_wl_crit_is_undefined() {
        let p = CellParams::new(CellKind::TfetAsym6T);
        assert!(matches!(
            wl_crit(&p, None),
            Err(SramError::Undefined {
                metric: "WL_crit",
                ..
            })
        ));
    }

    #[test]
    fn drnm_grows_with_beta() {
        let p_small = fast(CellParams::tfet6t(AccessConfig::InwardP).with_beta(0.6));
        let p_large = fast(CellParams::tfet6t(AccessConfig::InwardP).with_beta(2.0));
        let d_small = read_metrics(&p_small, None).unwrap().drnm;
        let d_large = read_metrics(&p_large, None).unwrap().drnm;
        assert!(
            d_large > d_small,
            "DRNM must grow with β: {d_small} !< {d_large}"
        );
    }

    #[test]
    fn write_delay_reported_for_working_cell() {
        let p = fast(CellParams::tfet6t(AccessConfig::InwardP).with_beta(0.6));
        let d = write_delay(&p, None).unwrap().expect("writable");
        assert!(d > 1e-12 && d < 2e-9, "write delay = {d:e}");
    }

    #[test]
    fn write_delay_none_for_unwritable_cell() {
        let p = fast(CellParams::tfet6t(AccessConfig::InwardN).with_beta(1.0));
        assert_eq!(write_delay(&p, None).unwrap(), None);
    }

    #[test]
    fn leakage_breakdown_names_the_reverse_biased_access() {
        // Outward cell: the access transistor on the 0-storing side carries
        // the §3 diode current and dominates everything else by orders.
        let p = CellParams::tfet6t(AccessConfig::OutwardN);
        let b = leakage_breakdown(&p).unwrap();
        // The diode current flows in series: reverse-biased access into the
        // storage node, pull-down out of it — so the top two leakers are
        // that access transistor and its pull-down, far above everyone else.
        let top2: Vec<&str> = b.per_device[..2].iter().map(|d| d.0.as_str()).collect();
        assert!(
            top2.iter().any(|n| n.starts_with("MA")),
            "an access device must be in the top two, got {top2:?}"
        );
        assert!(
            b.worst().1 > 100.0 * b.per_device[2].1,
            "dominance by orders: {:?}",
            b.per_device
        );
        assert!(b.total_power > 0.0);
    }

    #[test]
    fn leakage_breakdown_is_flat_for_inward_cell() {
        let p = CellParams::tfet6t(AccessConfig::InwardP);
        let b = leakage_breakdown(&p).unwrap();
        // No device leaks more than ~3 orders above the smallest: everyone
        // sits near the off floor. (Zero-V_DS devices can carry ~0 A.)
        let worst = b.worst().1;
        assert!(worst < 1e-15, "worst inward leaker = {worst:e} A");
    }

    #[test]
    fn drv_is_well_below_operating_supply() {
        let p = CellParams::tfet6t(AccessConfig::InwardP).with_beta(0.6);
        let drv = data_retention_voltage(&p).unwrap();
        match drv {
            Some(v) => assert!(
                v < 0.5 * p.vdd,
                "TFET cell must retain well below VDD: DRV = {v} V"
            ),
            None => { /* holds at the 50 mV floor: even better */ }
        }
    }

    #[test]
    fn cmos_cell_has_a_drv_too() {
        let p = CellParams::cmos6t().with_beta(1.5);
        let drv = data_retention_voltage(&p).unwrap();
        if let Some(v) = drv {
            assert!(v < p.vdd && v > 0.0);
        }
    }

    #[test]
    fn wl_crit_exceeds_cmos_for_tfet_cell() {
        // Paper: unidirectional conduction ⇒ only one access conducts
        // during a TFET write, so WL_crit is longer than CMOS at equal β.
        let beta = 0.8;
        let t = wl_crit(
            &fast(CellParams::tfet6t(AccessConfig::InwardP).with_beta(beta)),
            None,
        )
        .unwrap()
        .as_finite()
        .unwrap();
        let c = wl_crit(&fast(CellParams::cmos6t().with_beta(beta)), None)
            .unwrap()
            .as_finite()
            .unwrap();
        assert!(t > c, "TFET WL_crit {t:e} must exceed CMOS {c:e}");
    }
}
