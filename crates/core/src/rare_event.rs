//! Rare-event yield estimation: scaled-sigma importance sampling with
//! likelihood-ratio re-weighting (ROADMAP item 2).
//!
//! The paper's §4.3 robustness claim is evaluated with brute-force
//! Monte-Carlo, which cannot see bit-cell failure probabilities at the
//! 5–6σ depths a memory product must guarantee: at p = 1e-8, brute force
//! needs ~1e8 transient solves for a single significant digit. This module
//! estimates the same tail mass with ~1e3 solves by *widening the proposal*:
//! every process factor is drawn from its truncated Gaussian with the
//! standard deviation inflated by [`YieldConfig::sigma_scale`], and each
//! sample carries the exact likelihood ratio
//!
//! ```text
//! w(x) = ∏_d  (σ′_d Z′_d)/(σ_d Z_d) · exp(x_d²/2 · (1/σ′_d² − 1/σ_d²))
//! ```
//!
//! where `Z(σ, b) = erf(b/(σ√2))` is the analytic truncation constant —
//! the proposal keeps the *prior's* truncation bound, so the supports are
//! equal and no sample ever has zero prior density. The weighted failure
//! indicator `w·I` is then an unbiased estimator of the true tail
//! probability, with the effective sample size `(Σw)²/Σw²` diagnosing how
//! much the widening cost in weight spread. At `sigma_scale == 1` the
//! weights are exactly 1.0 and the estimator *is* brute force — the
//! cross-check path.
//!
//! # The factor variation model
//!
//! [`VariationModel`] generalizes the paper's t_ox-only model with the
//! factors the CMOS SRAM variability literature treats as dominant
//! (Torrens'17, Pasandi'14): per-transistor Vth mismatch, geometry
//! (drive-strength) mismatch, and chip-global t_ox / Vth / supply terms.
//! Global factors draw once per sample and shift every transistor together;
//! local factors draw per [`Role`]. A global supply droop is mapped onto a
//! common-mode threshold shift `−V_DD·s` — its first-order image on device
//! drive — so the compiled experiment's waveforms (which depend on the
//! shared supply) never vary per sample and stay reusable across binds.
//! [`VariationModel::paper`] keeps every new factor off; that default is
//! what keeps all existing figures bit-identical.
//!
//! # Determinism and degradation
//!
//! The sampling inherits the Monte-Carlo layer's discipline: counter-based
//! per-sample RNG streams, outcomes folded in sample order, so estimate,
//! standard error and ESS are bit-identical at any worker-thread count.
//! A draw outside a factor's perturbative validity bound — expected when
//! `sigma_scale` pushes a wide-bound factor past the device model's range —
//! surfaces as a typed [`VariationError`](tfet_devices::VariationError),
//! and the sample is quarantined through the same per-sample path as
//! simulation failures, never a panicking worker.

use crate::assist::{ReadAssist, WriteAssist};
use crate::error::SramError;
use crate::metrics::{read_metrics_compiled, wl_crit_compiled, WlCrit};
use crate::montecarlo::{check_yield, draw_truncated_normal, McConfig, TOX_BOUND, TOX_SIGMA};
use crate::ops::{ReadExperiment, WriteExperiment};
use crate::tech::{CellParams, CellProcess, Role};
use crate::topology::CellTopology;
use rand::rngs::StdRng;
use tfet_devices::ProcessPoint;
use tfet_numerics::parallel::par_map_with;
use tfet_numerics::{gaussian_mass_within, WeightedSummary};

/// One independent variation factor: a centered Gaussian with standard
/// deviation `sigma`, truncated to `[-bound, bound]`. A factor with
/// `sigma == 0` is off: it draws nothing (consuming no RNG words, so
/// enabling a factor never perturbs the draws of the others' streams) and
/// contributes weight 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Factor {
    /// Standard deviation of the underlying Gaussian (0 = factor off).
    pub sigma: f64,
    /// Symmetric truncation bound (also the proposal's bound under scaling).
    pub bound: f64,
}

impl Factor {
    /// A disabled factor.
    pub const OFF: Factor = Factor {
        sigma: 0.0,
        bound: 0.0,
    };

    /// An active factor with the given spread and truncation bound.
    pub fn new(sigma: f64, bound: f64) -> Self {
        Factor { sigma, bound }
    }

    /// Whether the factor draws at all.
    pub fn active(&self) -> bool {
        self.sigma > 0.0
    }

    fn validate(&self, name: &'static str) -> Result<(), SramError> {
        if !(self.sigma.is_finite() && self.sigma >= 0.0) {
            return Err(SramError::InvalidParameter(format!(
                "factor {name}: sigma {} must be finite and nonnegative",
                self.sigma
            )));
        }
        if self.active() && !(self.bound.is_finite() && self.bound > 0.0) {
            return Err(SramError::InvalidParameter(format!(
                "factor {name}: active factor needs a positive bound, got {}",
                self.bound
            )));
        }
        Ok(())
    }

    /// Draws from the σ-scaled proposal and multiplies the sample's
    /// likelihood ratio into `weight`.
    fn draw(&self, rng: &mut StdRng, scale: f64, weight: &mut f64) -> f64 {
        if !self.active() {
            return 0.0;
        }
        let sigma_q = self.sigma * scale;
        let x = draw_truncated_normal(rng, sigma_q, self.bound);
        if scale != 1.0 {
            // w = p(x)/q(x) with equal supports; see the module docs.
            let z_p = gaussian_mass_within(self.sigma, self.bound);
            let z_q = gaussian_mass_within(sigma_q, self.bound);
            let coef = (sigma_q * z_q) / (self.sigma * z_p);
            let expo = 0.5 * (1.0 / (sigma_q * sigma_q) - 1.0 / (self.sigma * self.sigma));
            *weight *= coef * (expo * x * x).exp();
        }
        x
    }
}

/// The factor variation model of a yield study: which process factors draw,
/// with what spread. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationModel {
    /// Per-transistor t_ox mismatch (the paper's §4.3 factor).
    pub tox: Factor,
    /// Chip-global t_ox term, shared by every transistor of the cell.
    pub tox_global: Factor,
    /// Per-transistor Vth mismatch, volts.
    pub vth: Factor,
    /// Chip-global Vth term, volts.
    pub vth_global: Factor,
    /// Per-transistor drive-strength (W/L) mismatch, relative.
    pub drive: Factor,
    /// Chip-global relative supply deviation, mapped onto a common-mode
    /// threshold shift `−V_DD·s` (first-order image of a supply droop on
    /// device drive; keeps compiled-experiment waveforms sample-invariant).
    pub supply: Factor,
}

impl VariationModel {
    /// The paper-faithful model: ±5 % t_ox per transistor (σ = 2.5 %,
    /// truncated at 2σ), every other factor off. With this model and
    /// `sigma_scale == 1`, a yield study samples exactly the process space
    /// of [`crate::montecarlo`].
    pub fn paper() -> Self {
        VariationModel {
            tox: Factor::new(TOX_SIGMA, TOX_BOUND),
            tox_global: Factor::OFF,
            vth: Factor::OFF,
            vth_global: Factor::OFF,
            drive: Factor::OFF,
            supply: Factor::OFF,
        }
    }

    /// Enables per-transistor Vth mismatch (builder style).
    pub fn with_vth(mut self, sigma: f64, bound: f64) -> Self {
        self.vth = Factor::new(sigma, bound);
        self
    }

    /// Enables the chip-global Vth term (builder style).
    pub fn with_vth_global(mut self, sigma: f64, bound: f64) -> Self {
        self.vth_global = Factor::new(sigma, bound);
        self
    }

    /// Enables per-transistor drive-strength mismatch (builder style).
    pub fn with_drive(mut self, sigma: f64, bound: f64) -> Self {
        self.drive = Factor::new(sigma, bound);
        self
    }

    /// Enables the chip-global t_ox term (builder style).
    pub fn with_tox_global(mut self, sigma: f64, bound: f64) -> Self {
        self.tox_global = Factor::new(sigma, bound);
        self
    }

    /// Enables the chip-global supply factor (builder style).
    pub fn with_supply(mut self, sigma: f64, bound: f64) -> Self {
        self.supply = Factor::new(sigma, bound);
        self
    }

    /// Number of independent scalar draws per sample.
    pub fn dimensions(&self) -> usize {
        let globals = [&self.tox_global, &self.vth_global, &self.supply]
            .iter()
            .filter(|f| f.active())
            .count();
        let locals = [&self.tox, &self.vth, &self.drive]
            .iter()
            .filter(|f| f.active())
            .count();
        globals + locals * Role::ALL.len()
    }

    fn validate(&self) -> Result<(), SramError> {
        self.tox.validate("tox")?;
        self.tox_global.validate("tox_global")?;
        self.vth.validate("vth")?;
        self.vth_global.validate("vth_global")?;
        self.drive.validate("drive")?;
        self.supply.validate("supply")
    }

    /// Draws one sample's full factor set from the σ-scaled proposal.
    /// Globals draw first, then per-role locals in [`Role::ALL`] order; a
    /// disabled factor consumes no RNG words. The draw *always* runs to
    /// completion — the stream position after a sample is independent of
    /// whether its values are valid.
    fn draw_raw(&self, rng: &mut StdRng, scale: f64) -> RawDraws {
        let mut weight = 1.0;
        let globals = [
            self.tox_global.draw(rng, scale, &mut weight),
            self.vth_global.draw(rng, scale, &mut weight),
            self.supply.draw(rng, scale, &mut weight),
        ];
        let mut locals = [[0.0; 3]; 7];
        for slot in &mut locals {
            *slot = [
                self.tox.draw(rng, scale, &mut weight),
                self.vth.draw(rng, scale, &mut weight),
                self.drive.draw(rng, scale, &mut weight),
            ];
        }
        RawDraws {
            globals,
            locals,
            weight,
        }
    }

    /// Assembles the per-transistor process points from raw draws,
    /// validating every factor combination against the device model's
    /// perturbative bounds. The *first* out-of-range role fails the sample.
    fn build_process(&self, raw: &RawDraws, vdd: f64) -> Result<CellProcess, SramError> {
        // Supply droop → common-mode threshold shift (see the field docs).
        let supply_vth = -vdd * raw.globals[2];
        let mut process = CellProcess::nominal();
        for (i, role) in Role::ALL.into_iter().enumerate() {
            let [l_tox, l_vth, l_drive] = raw.locals[i];
            let point = ProcessPoint::try_new(
                raw.globals[0] + l_tox,
                raw.globals[1] + l_vth + supply_vth,
                l_drive,
            )?;
            process = process.with(role, point);
        }
        Ok(process)
    }

    /// The labeled draw list of a sample, for quarantine records — active
    /// factors only, in draw order.
    fn labeled_params(&self, raw: &RawDraws) -> Vec<(String, f64)> {
        let mut params = Vec::new();
        for (name, factor, value) in [
            ("global.tox", &self.tox_global, raw.globals[0]),
            ("global.vth", &self.vth_global, raw.globals[1]),
            ("global.supply", &self.supply, raw.globals[2]),
        ] {
            if factor.active() {
                params.push((name.to_string(), value));
            }
        }
        for (i, role) in Role::ALL.into_iter().enumerate() {
            for (suffix, factor, value) in [
                ("tox", &self.tox, raw.locals[i][0]),
                ("vth", &self.vth, raw.locals[i][1]),
                ("drive", &self.drive, raw.locals[i][2]),
            ] {
                if factor.active() {
                    params.push((format!("{}.{suffix}", role.label()), value));
                }
            }
        }
        params
    }
}

/// One sample's raw factor draws plus its importance weight.
struct RawDraws {
    /// `[tox_global, vth_global, supply]`.
    globals: [f64; 3],
    /// Per role (in [`Role::ALL`] order): `[tox, vth, drive]`.
    locals: [[f64; 3]; 7],
    weight: f64,
}

/// The failure event a yield study estimates the probability of.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum YieldMetric {
    /// Write failure: `WL_crit` exceeds the wordline pulse budget the
    /// array's timing grants (an infinite `WL_crit` — an unwritable cell —
    /// always fails).
    WriteMargin {
        /// Longest wordline pulse the timing budget allows, s.
        budget: f64,
    },
    /// Read disturb: DRNM below the threshold (the classical stability
    /// criterion is `DRNM < 0`).
    Drnm {
        /// Failure threshold, V.
        threshold: f64,
    },
}

impl YieldMetric {
    /// Stable metric label used in run reports.
    pub fn name(self) -> &'static str {
        match self {
            YieldMetric::WriteMargin { .. } => "write_margin",
            YieldMetric::Drnm { .. } => "drnm",
        }
    }
}

/// Configuration of a rare-event yield study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct YieldConfig {
    /// Execution controls (seed, threads, minimum survivor fraction),
    /// shared with the brute-force Monte-Carlo layer.
    pub mc: McConfig,
    /// Samples to draw.
    pub n: usize,
    /// Proposal-widening factor σ′/σ applied to every active factor.
    /// `1.0` (the default) is brute force — weights are exactly 1.
    pub sigma_scale: f64,
    /// The factor variation model to sample.
    pub model: VariationModel,
}

impl YieldConfig {
    /// A brute-force (unscaled) study of the paper's t_ox-only model.
    pub fn new(n: usize, seed: u64) -> Self {
        YieldConfig {
            mc: McConfig::new(seed),
            n,
            sigma_scale: 1.0,
            model: VariationModel::paper(),
        }
    }

    /// Sets the proposal-widening factor (builder style).
    pub fn with_sigma_scale(mut self, scale: f64) -> Self {
        self.sigma_scale = scale;
        self
    }

    /// Sets the factor variation model (builder style).
    pub fn with_model(mut self, model: VariationModel) -> Self {
        self.model = model;
        self
    }

    /// Sets an explicit worker-thread count (builder style).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.mc.threads = Some(threads);
        self
    }

    fn validate(&self) -> Result<(), SramError> {
        if !(self.sigma_scale.is_finite() && self.sigma_scale >= 1.0) {
            return Err(SramError::InvalidParameter(format!(
                "sigma_scale {} must be finite and >= 1 (1 = brute force)",
                self.sigma_scale
            )));
        }
        if self.model.dimensions() == 0 {
            return Err(SramError::InvalidParameter(
                "variation model has no active factor".into(),
            ));
        }
        self.model.validate()
    }
}

/// One quarantined yield sample: its index, the labeled factor draws it
/// took (replayed from its RNG stream), and the structured cause.
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantinedYieldSample {
    /// Sample index within the study.
    pub index: usize,
    /// Labeled factor draws, in draw order (active factors only).
    pub params: Vec<(String, f64)>,
    /// Why the sample was excluded: an out-of-validity-range draw or a
    /// failed simulation.
    pub error: SramError,
}

/// Result of a rare-event yield study.
#[derive(Debug, Clone, PartialEq)]
pub struct YieldStudy {
    /// The failure event estimated.
    pub metric: YieldMetric,
    /// The proposal-widening factor the study ran at.
    pub sigma_scale: f64,
    /// Samples attempted.
    pub samples: usize,
    /// Samples that produced a verdict.
    pub survivors: usize,
    /// Raw (unweighted) count of failing survivors.
    pub failures: usize,
    /// Likelihood-ratio-weighted failure mass `Σ wᵢIᵢ`.
    pub weighted_failures: f64,
    /// Estimated tail failure probability `Σ wᵢIᵢ / survivors`; `None` when
    /// no sample survived.
    pub p_fail: Option<f64>,
    /// Standard error of the estimate (sample std of `wᵢIᵢ` over
    /// `√survivors`); `None` for fewer than two survivors.
    pub std_error: Option<f64>,
    /// Kish effective sample size `(Σw)²/Σw²` of the survivor weights;
    /// 0 when no sample survived.
    pub ess: f64,
    /// Weighted summary of the finite metric values (WL_crit in s, DRNM in
    /// V) over survivors; `None` when none is finite.
    pub metric_summary: Option<WeightedSummary>,
    /// Samples excluded from the estimate.
    pub quarantined: Vec<QuarantinedYieldSample>,
}

impl YieldStudy {
    /// Array-level failure probability of `cells` independent cells under
    /// the estimated per-cell tail probability (binomial composition
    /// `1 − (1−p)^cells`, computed in log space for tiny `p`).
    pub fn array_fail_prob(&self, cells: u64) -> Option<f64> {
        self.p_fail.map(|p| array_fail_prob(p, cells))
    }
}

/// Binomial composition of a per-cell failure probability to an array of
/// `cells` independent cells: `1 − (1−p)^cells`, computed in log space so
/// p = 1e-9 over 64 kb does not round to zero.
pub fn array_fail_prob(p_cell: f64, cells: u64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&p_cell),
        "per-cell failure probability {p_cell} outside [0, 1]"
    );
    if p_cell == 1.0 {
        return 1.0;
    }
    -(cells as f64 * (-p_cell).ln_1p()).exp_m1()
}

/// Array-level yield (probability every one of `cells` cells works).
pub fn array_yield(p_cell: f64, cells: u64) -> f64 {
    1.0 - array_fail_prob(p_cell, cells)
}

/// One sample's verdict inside a worker.
struct SampleOutcome {
    /// Importance weight of the draw.
    weight: f64,
    /// Whether the sample fails the metric.
    fail: bool,
    /// Finite metric value (WL_crit s / DRNM V), when one exists.
    value: Option<f64>,
}

/// Estimates the write-failure tail probability: the fraction of process
/// space where `WL_crit` exceeds `budget` seconds (or the write fails
/// outright), under the study's variation model and proposal scaling.
///
/// # Errors
///
/// Per-sample failures (out-of-validity draws, simulation failures) are
/// quarantined, not propagated. Returns [`SramError::InvalidParameter`] for
/// a malformed configuration and [`SramError::LowYield`] when survivors
/// fall below [`McConfig::min_yield`].
pub fn yield_write(
    base: &CellParams,
    assist: Option<WriteAssist>,
    budget: f64,
    cfg: &YieldConfig,
) -> Result<YieldStudy, SramError> {
    cfg.validate()?;
    if !(budget > 0.0 && budget.is_finite()) {
        return Err(SramError::InvalidParameter(format!(
            "write budget {budget} must be positive and finite"
        )));
    }
    let _span = tfet_obs::span("yield_write");
    let topo = CellTopology::builtin(base.kind);
    // Nominal bisection hint, as in `mc_wl_crit_topo`: computed once before
    // the fan-out, shared by every sample.
    let hint = WriteExperiment::compile_on(&topo, base, assist)
        .ok()
        .and_then(|mut exp| wl_crit_compiled(&mut exp, None).ok())
        .and_then(|run| run.value.as_finite());
    let metric = YieldMetric::WriteMargin { budget };
    let outcomes = par_map_with(
        cfg.n,
        cfg.mc.threads,
        || None,
        |slot: &mut Option<WriteExperiment>, i| {
            let _span = tfet_obs::root_span("yield_sample_write");
            let result = (|| {
                let mut rng = cfg.mc.sample_rng(i);
                let raw = cfg.model.draw_raw(&mut rng, cfg.sigma_scale);
                let process = cfg.model.build_process(&raw, base.vdd)?;
                let params = base.clone().with_process(process);
                match slot {
                    Some(exp) => exp.bind_cell(&params)?,
                    None => *slot = Some(WriteExperiment::compile_on(&topo, &params, assist)?),
                }
                let exp = slot.as_mut().expect("compiled above");
                let run = wl_crit_compiled(exp, hint)?;
                tfet_obs::record_u64("yield.sample_newton_solves", run.effort.newton_solves);
                match run.value {
                    WlCrit::Finite(w) => Ok(SampleOutcome {
                        weight: raw.weight,
                        fail: w > budget,
                        value: Some(w),
                    }),
                    WlCrit::Infinite => Ok(SampleOutcome {
                        weight: raw.weight,
                        fail: true,
                        value: None,
                    }),
                    WlCrit::Unbracketable => {
                        Err(run.failure.unwrap_or_else(|| SramError::Undefined {
                            metric: "WL_crit",
                            reason: "unbracketable search with no recorded cause".into(),
                        }))
                    }
                }
            })();
            if result.is_err() {
                *slot = None;
            }
            result
        },
    );
    fold_study("yield_write", metric, cfg, outcomes)
}

/// Estimates the read-disturb tail probability: the fraction of process
/// space where the DRNM falls below `threshold` volts, under the study's
/// variation model and proposal scaling.
///
/// # Errors
///
/// As [`yield_write`].
pub fn yield_read(
    base: &CellParams,
    assist: Option<ReadAssist>,
    threshold: f64,
    cfg: &YieldConfig,
) -> Result<YieldStudy, SramError> {
    cfg.validate()?;
    if !threshold.is_finite() {
        return Err(SramError::InvalidParameter(format!(
            "DRNM threshold {threshold} must be finite"
        )));
    }
    let _span = tfet_obs::span("yield_read");
    let topo = CellTopology::builtin(base.kind);
    let metric = YieldMetric::Drnm { threshold };
    let outcomes = par_map_with(
        cfg.n,
        cfg.mc.threads,
        || None,
        |slot: &mut Option<ReadExperiment>, i| {
            let _span = tfet_obs::root_span("yield_sample_read");
            let result = (|| {
                let mut rng = cfg.mc.sample_rng(i);
                let raw = cfg.model.draw_raw(&mut rng, cfg.sigma_scale);
                let process = cfg.model.build_process(&raw, base.vdd)?;
                let params = base.clone().with_process(process);
                match slot {
                    Some(exp) => exp.bind_cell(&params)?,
                    None => *slot = Some(ReadExperiment::compile_on(&topo, &params, assist)?),
                }
                let exp = slot.as_mut().expect("compiled above");
                let drnm = read_metrics_compiled(exp)?.drnm;
                Ok(SampleOutcome {
                    weight: raw.weight,
                    fail: drnm < threshold,
                    value: Some(drnm),
                })
            })();
            if result.is_err() {
                *slot = None;
            }
            result
        },
    );
    fold_study("yield_read", metric, cfg, outcomes)
}

/// Folds per-sample outcomes (in index order) into the study estimate and
/// publishes it into the observability layer.
fn fold_study(
    study: &'static str,
    metric: YieldMetric,
    cfg: &YieldConfig,
    outcomes: Vec<Result<SampleOutcome, SramError>>,
) -> Result<YieldStudy, SramError> {
    let n = outcomes.len();
    let mut weights = Vec::with_capacity(n);
    let mut weighted_indicators = Vec::with_capacity(n);
    let mut metric_values = Vec::with_capacity(n);
    let mut metric_weights = Vec::with_capacity(n);
    let mut failures = 0usize;
    let mut quarantined = Vec::new();
    for (i, outcome) in outcomes.into_iter().enumerate() {
        match outcome {
            Ok(s) => {
                weights.push(s.weight);
                weighted_indicators.push(if s.fail { s.weight } else { 0.0 });
                if s.fail {
                    failures += 1;
                }
                if let Some(v) = s.value {
                    metric_values.push(v);
                    metric_weights.push(s.weight);
                }
            }
            Err(error) => {
                // Replay the sample's private stream to recover its draws.
                let mut rng = cfg.mc.sample_rng(i);
                let raw = cfg.model.draw_raw(&mut rng, cfg.sigma_scale);
                quarantined.push(QuarantinedYieldSample {
                    index: i,
                    params: cfg.model.labeled_params(&raw),
                    error,
                });
            }
        }
    }
    let survivors = weights.len();
    let weighted_failures: f64 = weighted_indicators.iter().sum();
    let p_fail = (survivors > 0).then(|| weighted_failures / survivors as f64);
    let std_error = p_fail.filter(|_| survivors > 1).map(|p| {
        let var = weighted_indicators
            .iter()
            .map(|wi| (wi - p) * (wi - p))
            .sum::<f64>()
            / (survivors - 1) as f64;
        (var / survivors as f64).sqrt()
    });
    let ess = if survivors == 0 {
        0.0
    } else {
        let sum: f64 = weights.iter().sum();
        let sum_sq: f64 = weights.iter().map(|w| w * w).sum();
        sum * sum / sum_sq
    };
    let result = YieldStudy {
        metric,
        sigma_scale: cfg.sigma_scale,
        samples: n,
        survivors,
        failures,
        weighted_failures,
        p_fail,
        std_error,
        ess,
        metric_summary: WeightedSummary::try_of(&metric_values, &metric_weights),
        quarantined,
    };
    publish_study(study, cfg, &result);
    check_yield(survivors, n, &cfg.mc)?;
    Ok(result)
}

/// Publishes the study into the observability layer: counters, the
/// run-report `yield` record, and one quarantine record per excluded
/// sample — all from the coordinating thread, in deterministic order.
fn publish_study(study: &'static str, cfg: &YieldConfig, result: &YieldStudy) {
    if !tfet_obs::enabled() {
        return;
    }
    tfet_obs::counter("yield.samples", result.samples as u64);
    tfet_obs::counter("yield.failures", result.failures as u64);
    if !result.quarantined.is_empty() {
        tfet_obs::counter("yield.quarantined", result.quarantined.len() as u64);
    }
    tfet_obs::yield_study(tfet_obs::YieldStudyRecord {
        study,
        metric: result.metric.name(),
        seed: cfg.mc.seed,
        sigma_scale: result.sigma_scale,
        samples: result.samples as u64,
        survivors: result.survivors as u64,
        failures: result.failures as u64,
        quarantined: result.quarantined.len() as u64,
        p_fail: result.p_fail.unwrap_or(f64::NAN),
        std_error: result.std_error.unwrap_or(f64::NAN),
        ess: result.ess,
    });
    for q in &result.quarantined {
        tfet_obs::quarantine(tfet_obs::QuarantineRecord {
            study,
            index: q.index as u64,
            seed: cfg.mc.seed,
            params: q.params.clone(),
            error: q.error.to_string(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::montecarlo::mc_drnm_topo;
    use crate::tech::AccessConfig;
    use tfet_numerics::Summary;

    /// The paper's proposed cell with coarsened solver settings (the same
    /// trade the Monte-Carlo tests make: statistics over resolution).
    fn base() -> CellParams {
        let mut p = CellParams::tfet6t(AccessConfig::InwardP)
            .with_beta(0.6)
            .with_vdd(0.8);
        p.sim.dt = 2e-12;
        p.sim.pulse_tol = 8e-12;
        p
    }

    /// Mismatch model used by the statistical tests: the paper's t_ox
    /// factor plus per-transistor Vth mismatch.
    fn vth_model(sigma: f64) -> VariationModel {
        VariationModel::paper().with_vth(sigma, 8.0 * sigma)
    }

    #[test]
    fn array_composition_is_stable_for_tiny_p() {
        assert_eq!(array_fail_prob(0.0, 65536), 0.0);
        assert_eq!(array_fail_prob(1.0, 65536), 1.0);
        let p = array_fail_prob(1e-9, 65536);
        // 1 - (1-1e-9)^65536 ~= 6.55e-5; naive arithmetic would lose it.
        assert!((p - 6.5534e-5).abs() < 1e-8, "p = {p:e}");
        assert!((array_yield(1e-9, 65536) - (1.0 - p)).abs() < 1e-18);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn array_composition_rejects_bad_probability() {
        let _ = array_fail_prob(1.5, 64);
    }

    #[test]
    fn model_dimensions_count_active_factors() {
        assert_eq!(VariationModel::paper().dimensions(), 7);
        assert_eq!(vth_model(0.01).dimensions(), 14);
        assert_eq!(
            vth_model(0.01).with_supply(0.05, 0.2).dimensions(),
            15,
            "supply is one global dimension"
        );
    }

    #[test]
    fn config_validation_rejects_bad_setups() {
        let base = base();
        let narrow = YieldConfig::new(4, 1).with_sigma_scale(0.5);
        assert!(matches!(
            yield_read(&base, None, 0.0, &narrow),
            Err(SramError::InvalidParameter(_))
        ));
        let empty = YieldConfig::new(4, 1).with_model(VariationModel {
            tox: Factor::OFF,
            tox_global: Factor::OFF,
            vth: Factor::OFF,
            vth_global: Factor::OFF,
            drive: Factor::OFF,
            supply: Factor::OFF,
        });
        assert!(matches!(
            yield_read(&base, None, 0.0, &empty),
            Err(SramError::InvalidParameter(_))
        ));
        assert!(matches!(
            yield_write(&base, None, -1.0, &YieldConfig::new(4, 1)),
            Err(SramError::InvalidParameter(_))
        ));
    }

    #[test]
    fn brute_force_samples_the_montecarlo_process_space() {
        // At sigma_scale 1 with the paper model, a yield study draws the
        // exact per-role t_ox deviations of `montecarlo` (same per-sample
        // streams, same draw order) and evaluates them identically.
        let base = base();
        let n = 6;
        let cfg = YieldConfig::new(n, 77);
        let study = yield_read(&base, None, -1.0, &cfg).expect("study runs");
        let topo = CellTopology::builtin(base.kind);
        let mc = mc_drnm_topo(&topo, &base, None, n, cfg.mc).expect("mc runs");
        let summary = study.metric_summary.expect("all samples finite");
        let reference = Summary::of(&mc.values);
        assert_eq!(summary.n, n);
        assert_eq!(summary.min, reference.min, "same draws, same values");
        assert_eq!(summary.max, reference.max);
        assert!((summary.mean - reference.mean).abs() < 1e-12);
    }

    #[test]
    fn scale_one_weights_are_exactly_unit() {
        let study = yield_read(&base(), None, 0.38, &YieldConfig::new(8, 3)).expect("study runs");
        assert_eq!(study.survivors, 8);
        assert_eq!(study.ess, 8.0, "unit weights make ESS == n exactly");
        assert_eq!(study.weighted_failures, study.failures as f64);
        assert_eq!(
            study.p_fail,
            Some(study.failures as f64 / study.survivors as f64)
        );
    }

    #[test]
    fn estimate_is_thread_invariant() {
        let cfg = YieldConfig::new(16, 2011)
            .with_model(vth_model(0.007))
            .with_sigma_scale(2.5);
        let serial = yield_read(&base(), None, 0.2, &cfg.with_threads(1)).expect("serial");
        let parallel = yield_read(&base(), None, 0.2, &cfg.with_threads(8)).expect("parallel");
        assert_eq!(serial, parallel, "estimate, SE and ESS are bit-identical");
    }

    #[test]
    fn importance_sampling_agrees_with_brute_force_at_two_sigma() {
        // The cross-check of the ISSUE: at a moderately rare event
        // (P ~ 6 % under t_ox + 7 mV Vth mismatch), the re-weighted
        // 2x-scaled estimator and plain Monte-Carlo must agree within
        // three combined standard errors.
        let base = base();
        let model = vth_model(0.007);
        let brute_cfg = YieldConfig::new(128, 2011).with_model(model);
        let is_cfg = YieldConfig::new(128, 2012)
            .with_model(model)
            .with_sigma_scale(2.0);
        let brute = yield_read(&base, None, 0.2, &brute_cfg).expect("brute");
        let is = yield_read(&base, None, 0.2, &is_cfg).expect("is");
        let (pb, pi) = (brute.p_fail.unwrap(), is.p_fail.unwrap());
        let (seb, sei) = (brute.std_error.unwrap(), is.std_error.unwrap());
        assert!(brute.failures > 0, "event must be visible to brute force");
        assert!(is.failures > brute.failures, "widening multiplies hits");
        let combined = (seb * seb + sei * sei).sqrt();
        assert!(
            (pb - pi).abs() <= 3.0 * combined,
            "brute {pb:.4e} (se {seb:.1e}) vs IS {pi:.4e} (se {sei:.1e})"
        );
        assert_eq!(brute.ess, 128.0);
        assert!(is.ess < 128.0, "weight spread must show in the ESS");
    }

    #[test]
    fn six_sigma_scaling_quarantines_out_of_validity_draws() {
        // A model whose truncation bound (0.36 V) deliberately exceeds the
        // device model's perturbative range (0.3 V): under sigma_scale 6
        // the proposal regularly lands in the gap. The study must complete
        // with those samples quarantined — typed error, labeled draws —
        // not panic.
        let cfg = YieldConfig::new(32, 9)
            .with_model(VariationModel::paper().with_vth(0.03, 0.36))
            .with_sigma_scale(6.0);
        let study = yield_read(&base(), None, 0.2, &cfg).expect("study completes");
        assert!(!study.quarantined.is_empty(), "some draws must exceed 0.3");
        assert!(study.survivors > 0, "most samples stay in range");
        assert_eq!(study.survivors + study.quarantined.len(), 32);
        assert!(study.p_fail.is_some());
        for q in &study.quarantined {
            assert!(q.index < 32);
            assert_eq!(q.params.len(), 14, "one draw per active dimension");
            assert!(
                q.params
                    .iter()
                    .any(|(name, v)| { name.ends_with(".vth") && v.abs() >= 0.3 }),
                "quarantine must carry the offending draw: {:?}",
                q.params
            );
            assert!(matches!(q.error, SramError::InvalidParameter(_)));
        }
    }
}
