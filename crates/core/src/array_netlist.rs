//! Fast-SPICE bitcell-array engine: real R×C transients with peripherals.
//!
//! [`crate::array`] simulates small arrays (≤ 64 cells) with ideal voltage
//! sources on every line — the right tool for functional march tests, but
//! it cannot say anything about *driver* effects (wordline slew through a
//! real driver chain, bitline discharge through a column mux) and it
//! recompiles one circuit per operation shape. This module is the
//! array-scale engine: one [`ArrayNetlist`] composes R rows × C columns of
//! the existing 6T cell with
//!
//! * **shared wordlines and bitlines** — each cell placed on its row/column
//!   lines via [`build_cell_on_lines`](crate::cell::build_cell_on_lines), so half-selection on the written
//!   row is physical, not modeled;
//! * **sram22-style peripherals** — a per-row wordline driver (2-input
//!   NAND of `row-select · wl_en`, plus an output inverter when the access
//!   polarity needs an active-high wordline), per-column precharge
//!   devices, and a discharge-only column write mux off global write-data
//!   lines;
//! * **per-column bitline capacitance scaling with R** — the wire load
//!   grows with the number of cells hanging off the line
//!   ([`ArraySpec::c_bitline`]);
//!
//! all compiled **once** into a single [`CompiledCircuit`]. Every
//! operation (any row, any column, any data, any pulse width) rebinds
//! control-source waveforms on the frozen netlist and re-runs it — no
//! per-operation compilation, and the per-cell storage state enters
//! through the initial conditions exactly as in [`crate::array`].
//!
//! The engine registers one [`CellPartition`] per bitcell, so the circuit
//! crate's quiescent-partition latency tier skips device evaluation for
//! the thousands of cells far from the action; [`ArraySpec::latency`]
//! selects the tier ([`DeviceLatency::Off`] is the full-evaluation
//! baseline the identity gates diff against). A 64×64 write transient runs
//! in seconds because >90 % of its device evaluations never happen.

use crate::cell::{CellLines, CellNodes};
use crate::error::SramError;
use crate::metrics::{self, WlCrit};
use crate::tech::{CellKind, CellParams, Role};
use crate::topology::CellTopology;
use tfet_circuit::transient::InitialState;
use tfet_circuit::{
    CellPartition, Circuit, CompiledCircuit, DeviceLatency, GuardKind, NodeId, SolveStats,
    SourceId, TransientResult, TransientSpec, Waveform,
};
use tfet_numerics::roots::{critical_threshold_checked, Threshold};

/// Reference row count for the bitline-capacitance wire model: the cell's
/// `c_bitline` parameter is calibrated for a 64-row column.
const C_BITLINE_REF_ROWS: f64 = 64.0;

/// Delay from bitline-driver engagement to the wordline-enable edge, s.
/// Matches the [`crate::array`] operation schedule.
const T_WL_DELAY: f64 = 50e-12;

/// Lead time of the row-select lines over everything else, s — the decoder
/// output must be stable at the NAND input before `wl_en` fires.
const T_SEL: f64 = 20e-12;

/// Dimensions, cell design and solver tier of an array netlist.
#[derive(Debug, Clone)]
pub struct ArraySpec {
    /// Number of rows (wordlines).
    pub rows: usize,
    /// Number of columns (bitline pairs).
    pub cols: usize,
    /// The cell replicated at every (row, column).
    pub cell: CellParams,
    /// Device-evaluation latency tier for every transient run on this
    /// netlist. Defaults to the process-wide default (`On` unless
    /// overridden, e.g. by the `figures --latency-off` identity gate);
    /// `Off` is the full-evaluation baseline the gates and the throughput
    /// bench compare against.
    pub latency: DeviceLatency,
    /// Optional explicit cell topology. `None` replicates the built-in
    /// generator for `cell.kind`; `Some` replicates an imported `.subckt`
    /// cell at every (row, column) instead — same peripherals, same latency
    /// partitions, same operation schedule.
    pub topology: Option<CellTopology>,
}

impl ArraySpec {
    /// An R×C array of the given cell under the process-default latency
    /// tier.
    pub fn new(rows: usize, cols: usize, cell: CellParams) -> Self {
        ArraySpec {
            rows,
            cols,
            cell,
            latency: DeviceLatency::default(),
            topology: None,
        }
    }

    /// Selects the device-evaluation latency tier (builder style).
    pub fn with_latency(mut self, latency: DeviceLatency) -> Self {
        self.latency = latency;
        self
    }

    /// Replicates an explicit (typically deck-imported) cell topology
    /// instead of the built-in generator (builder style).
    pub fn with_topology(mut self, topology: CellTopology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Per-column bitline capacitance, F: the cell's `c_bitline` wire
    /// budget scaled by `rows / 64` — a column with fewer cells presents a
    /// proportionally lighter line.
    pub fn c_bitline(&self) -> f64 {
        self.cell.c_bitline * self.rows as f64 / C_BITLINE_REF_ROWS
    }

    fn validate(&self) -> Result<(), SramError> {
        self.cell.validate()?;
        if self.rows == 0 || self.cols == 0 {
            return Err(SramError::InvalidParameter(
                "array must have at least one row and one column".into(),
            ));
        }
        if self.rows > 64 || self.cols > 64 {
            return Err(SramError::InvalidParameter(format!(
                "array netlist supports up to 64x64, got {}x{}",
                self.rows, self.cols
            )));
        }
        if let Some(topo) = &self.topology {
            if topo.has_read_port() {
                return Err(SramError::InvalidParameter(
                    "array netlist has no rbl/rwl columns; read-port topologies \
                     are not supported"
                        .into(),
                ));
            }
        }
        match self.cell.kind {
            CellKind::Cmos6T | CellKind::Tfet6T(_) => Ok(()),
            other => Err(SramError::InvalidParameter(format!(
                "array netlist supports the 6T topologies, not {other:?}"
            ))),
        }
    }

    /// The effective cell topology: the explicit override, or the built-in
    /// generator for `cell.kind`.
    fn cell_topology(&self) -> CellTopology {
        self.topology
            .clone()
            .unwrap_or_else(|| CellTopology::builtin(self.cell.kind))
    }
}

/// Outcome of one array write transient.
#[derive(Debug, Clone)]
pub struct ArrayWrite {
    /// Whether the addressed cell ends the transient holding the intended
    /// value.
    pub success: bool,
    /// Cells (row, col) whose decoded bit changed although they were not
    /// addressed — half-select or row-disturb victims.
    pub disturbed: Vec<(usize, usize)>,
    /// Final `(v_q, v_qb)` per cell, row-major. Fold into the carried
    /// state with [`ArrayNetlist::commit`].
    pub finals: Vec<(f64, f64)>,
    /// Solver-effort counters for this transient (`device_evals`,
    /// `devices_dormant`, `cells_refreshed`, …).
    pub stats: SolveStats,
    /// The full transient, for waveform inspection.
    pub result: TransientResult,
}

/// Outcome of one array read transient.
#[derive(Debug, Clone)]
pub struct ArrayRead {
    /// The sensed value (sign of the addressed column's bitline
    /// differential at wordline close).
    pub value: bool,
    /// Magnitude of that differential, V.
    pub sense_margin: f64,
    /// Whether the read corrupted any cell.
    pub destructive: bool,
    /// Final `(v_q, v_qb)` per cell, row-major.
    pub finals: Vec<(f64, f64)>,
    /// Solver-effort counters for this transient.
    pub stats: SolveStats,
    /// The full transient, for waveform inspection.
    pub result: TransientResult,
}

/// An R×C bitcell array with peripherals, compiled once and re-run under
/// rebound control waveforms.
///
/// # Examples
///
/// ```no_run
/// use tfet_sram::array_netlist::{ArrayNetlist, ArraySpec};
/// use tfet_sram::prelude::*;
///
/// let cell = CellParams::tfet6t(AccessConfig::InwardP).with_beta(0.6);
/// let mut array = ArrayNetlist::build(ArraySpec::new(8, 8, cell))?;
/// let w = array.write_transient(3, 5, true, 1.5e-9)?;
/// assert!(w.success && w.disturbed.is_empty());
/// array.commit(&w.finals);
/// let r = array.read_transient(3, 5)?;
/// assert!(r.value);
/// # Ok::<(), tfet_sram::SramError>(())
/// ```
#[derive(Debug)]
pub struct ArrayNetlist {
    spec: ArraySpec,
    topo: CellTopology,
    compiled: CompiledCircuit,
    /// Per-cell node handles, row-major.
    cells: Vec<CellNodes>,
    /// Row wordline nodes (driver outputs).
    wls: Vec<NodeId>,
    /// Column bitline pairs.
    bitlines: Vec<(NodeId, NodeId)>,
    /// Per-row decoder (row-select) sources.
    sel_srcs: Vec<SourceId>,
    /// Per-column write-mux select sources (and their complements for the
    /// p legs).
    csel_srcs: Vec<SourceId>,
    cselb_srcs: Vec<SourceId>,
    wl_en_src: SourceId,
    wd_src: SourceId,
    wdb_src: SourceId,
    /// State-independent initial conditions: rails, driver internals,
    /// bitlines at precharge. Per-cell storage voltages are appended per
    /// run.
    base_uic: Vec<(NodeId, f64)>,
    /// `(v_q, v_qb)` per cell, row-major — the carried storage state.
    state: Vec<(f64, f64)>,
    /// Control sources bound by the previous operation, reset lazily.
    bound: Option<(usize, usize)>,
}

impl ArrayNetlist {
    /// Assembles and compiles the full array: cells, wordline-driver
    /// chain, precharge, column mux. Every cell starts holding `false`
    /// (q = 0).
    ///
    /// # Errors
    ///
    /// Invalid parameters (zero or oversized dimensions, unsupported
    /// topology) or compile-time circuit errors.
    pub fn build(spec: ArraySpec) -> Result<Self, SramError> {
        let _span = tfet_obs::span("array_netlist_build");
        spec.validate()?;
        let topo = spec.cell_topology();
        let cell = &spec.cell;
        let vdd = cell.vdd;
        let access = topo.access();
        let sim = &cell.sim;
        let c_bl = spec.c_bitline();
        // Driver sized to swing a full row of access gates plus the
        // wordline wire within a small fraction of the pulse: scales with
        // the column count it drives, floored at 8 cells' worth of drive.
        let w_drv = cell.sizing.w_access_um * 2.0 * (spec.cols as f64).max(8.0);
        // Write path sized like a real driver: it must hold the high
        // bitline within a few tens of millivolts of the rail while the
        // addressed cell draws write current (TFET drive collapses at low
        // drain bias, so the headroom costs real width).
        let w_periph = 16.0 * cell.sizing.w_access_um;

        let mut c = Circuit::new();
        let vdd_rail = c.node("vdd_rail");
        let vss_rail = c.node("vss_rail");
        c.vsource("VDD", vdd_rail, Circuit::GND, Waveform::dc(vdd));
        c.vsource("VSS", vss_rail, Circuit::GND, Waveform::dc(0.0));
        let mut base_uic: Vec<(NodeId, f64)> = vec![(vdd_rail, vdd), (vss_rail, 0.0)];

        // Global wordline enable, shared by every row driver.
        let wl_en = c.node("wl_en");
        let wl_en_src = c.vsource("WLEN", wl_en, Circuit::GND, Waveform::dc(0.0));
        base_uic.push((wl_en, 0.0));

        // Per-row wordline driver: NAND(sel, wl_en) plus, for active-high
        // wordlines, an output inverter (the sram22 AND2 idiom). For
        // p-type access the wordline is active-low and idles at V_DD,
        // which is exactly the NAND output — the inverter is elided.
        let active_low = access.is_p_type();
        let mut wls = Vec::with_capacity(spec.rows);
        let mut sel_srcs = Vec::with_capacity(spec.rows);
        for r in 0..spec.rows {
            let sel = c.node(&format!("sel{r}"));
            sel_srcs.push(c.vsource(&format!("SEL{r}"), sel, Circuit::GND, Waveform::dc(0.0)));
            base_uic.push((sel, 0.0));

            let nand = if active_low {
                c.node(&format!("wl{r}"))
            } else {
                c.node(&format!("nand{r}"))
            };
            let mid = c.node(&format!("nmid{r}"));
            c.transistor(
                &format!("XWD{r}PA"),
                cell.periph_model(false),
                nand,
                sel,
                vdd_rail,
                w_drv,
            );
            c.transistor(
                &format!("XWD{r}PB"),
                cell.periph_model(false),
                nand,
                wl_en,
                vdd_rail,
                w_drv,
            );
            c.transistor(
                &format!("XWD{r}NA"),
                cell.periph_model(true),
                nand,
                sel,
                mid,
                w_drv,
            );
            c.transistor(
                &format!("XWD{r}NB"),
                cell.periph_model(true),
                mid,
                wl_en,
                vss_rail,
                w_drv,
            );
            c.capacitor(mid, Circuit::GND, cell.c_node);
            base_uic.push((mid, 0.0));

            let wl = if active_low {
                base_uic.push((nand, vdd));
                nand
            } else {
                c.capacitor(nand, Circuit::GND, cell.c_node);
                base_uic.push((nand, vdd));
                let wl = c.node(&format!("wl{r}"));
                c.transistor(
                    &format!("XWI{r}P"),
                    cell.periph_model(false),
                    wl,
                    nand,
                    vdd_rail,
                    w_drv,
                );
                c.transistor(
                    &format!("XWI{r}N"),
                    cell.periph_model(true),
                    wl,
                    nand,
                    vss_rail,
                    w_drv,
                );
                base_uic.push((wl, 0.0));
                wl
            };
            // Wordline wire load: one cell's node parasitic per column.
            c.capacitor(wl, Circuit::GND, cell.c_node * spec.cols as f64);
            wls.push(wl);
        }

        // Global precharge control (active low) and write-data lines.
        let prech_b = c.node("prech_b");
        let t_bl = sim.t_settle;
        let t_prech_off = (t_bl - 2.0 * sim.t_edge).max(0.5 * t_bl);
        c.vsource(
            "PRECH",
            prech_b,
            Circuit::GND,
            Waveform::step(0.0, vdd, t_prech_off, sim.t_edge),
        );
        base_uic.push((prech_b, 0.0));
        let wd = c.node("wd");
        let wdb = c.node("wdb");
        let wd_src = c.vsource("WD", wd, Circuit::GND, Waveform::dc(vdd));
        let wdb_src = c.vsource("WDB", wdb, Circuit::GND, Waveform::dc(vdd));
        base_uic.push((wd, vdd));
        base_uic.push((wdb, vdd));

        // Per-column bitline pair with wire load, precharge pull-ups and a
        // discharge-only write mux off the shared write-data lines.
        let mut bitlines = Vec::with_capacity(spec.cols);
        let mut csel_srcs = Vec::with_capacity(spec.cols);
        let mut cselb_srcs = Vec::with_capacity(spec.cols);
        for col in 0..spec.cols {
            let bl = c.node(&format!("bl{col}"));
            let blb = c.node(&format!("blb{col}"));
            c.capacitor(bl, Circuit::GND, c_bl);
            c.capacitor(blb, Circuit::GND, c_bl);
            c.transistor(
                &format!("XPC{col}A"),
                cell.periph_model(false),
                bl,
                prech_b,
                vdd_rail,
                w_periph,
            );
            c.transistor(
                &format!("XPC{col}B"),
                cell.periph_model(false),
                blb,
                prech_b,
                vdd_rail,
                w_periph,
            );
            let csel = c.node(&format!("csel{col}"));
            csel_srcs.push(c.vsource(&format!("CSEL{col}"), csel, Circuit::GND, Waveform::dc(0.0)));
            base_uic.push((csel, 0.0));
            let csel_b = c.node(&format!("cselb{col}"));
            cselb_srcs.push(c.vsource(
                &format!("CSELB{col}"),
                csel_b,
                Circuit::GND,
                Waveform::dc(vdd),
            ));
            base_uic.push((csel_b, vdd));
            // Complementary pass through the mux: the n legs sink the low
            // bitline into its write-data line, the p legs hold the high
            // bitline at the driver level (an n leg alone cannot — its
            // gate-source headroom vanishes at the top rail).
            c.transistor(
                &format!("XWM{col}NA"),
                cell.periph_model(true),
                bl,
                csel,
                wd,
                w_periph,
            );
            c.transistor(
                &format!("XWM{col}NB"),
                cell.periph_model(true),
                blb,
                csel,
                wdb,
                w_periph,
            );
            c.transistor(
                &format!("XWM{col}PA"),
                cell.periph_model(false),
                bl,
                csel_b,
                wd,
                w_periph,
            );
            c.transistor(
                &format!("XWM{col}PB"),
                cell.periph_model(false),
                blb,
                csel_b,
                wdb,
                w_periph,
            );
            base_uic.push((bl, vdd));
            base_uic.push((blb, vdd));
            bitlines.push((bl, blb));
        }

        // Cells, row-major, each on its row/column lines, each registered
        // as one latency partition: its six transistors, storage nodes
        // watched, adjacent shared lines guarded.
        let mut cells = Vec::with_capacity(spec.rows * spec.cols);
        let mut partitions = Vec::with_capacity(spec.rows * spec.cols);
        for (r, &wl) in wls.iter().enumerate() {
            for (col, &(bl, blb)) in bitlines.iter().enumerate() {
                let lines = CellLines {
                    bl,
                    blb,
                    wl,
                    vdd: vdd_rail,
                    vss: vss_rail,
                    rbl: None,
                    rwl: None,
                };
                let d0 = c.transistors().len();
                let placed = topo.place_on_lines(&mut c, cell, &format!("r{r}c{col}_"), &lines);
                // An imported cell may carry internal nodes beyond q/qb
                // (read-stack midpoints, RC taps) — the partition must
                // watch them too, or the latency tier would treat a moving
                // internal node as quiescent.
                let mut watch = vec![placed.nodes.q, placed.nodes.qb];
                watch.extend(placed.internal);
                partitions.push(CellPartition {
                    devices: (d0..c.transistors().len()).collect(),
                    watch,
                    guard: vec![wl, bl, blb, vdd_rail],
                    guard_kinds: vec![
                        GuardKind::Wordline,
                        GuardKind::Bitline,
                        GuardKind::Bitline,
                        GuardKind::Rail,
                    ],
                });
                cells.push(placed.nodes);
            }
        }
        c.set_latency_partitions(partitions);

        let vdd0 = vdd;
        let compiled = CompiledCircuit::compile(c)?;
        let state = vec![(0.0, vdd0); spec.rows * spec.cols];
        Ok(ArrayNetlist {
            spec,
            topo,
            compiled,
            cells,
            wls,
            bitlines,
            sel_srcs,
            csel_srcs,
            cselb_srcs,
            wl_en_src,
            wd_src,
            wdb_src,
            base_uic,
            state,
            bound: None,
        })
    }

    /// The array specification.
    pub fn spec(&self) -> &ArraySpec {
        &self.spec
    }

    /// The compiled full-array circuit (topology inspection).
    pub fn compiled(&self) -> &CompiledCircuit {
        &self.compiled
    }

    fn idx(&self, row: usize, col: usize) -> usize {
        assert!(
            row < self.spec.rows && col < self.spec.cols,
            "address out of range"
        );
        row * self.spec.cols + col
    }

    /// Decodes a cell's carried bit; `None` if degraded.
    pub fn bit(&self, row: usize, col: usize) -> Option<bool> {
        let (vq, vqb) = self.state[self.idx(row, col)];
        decode(vq, vqb, self.spec.cell.vdd)
    }

    /// Overwrites one cell's carried storage voltages with clean rails —
    /// test scaffolding for preparing patterns without simulating writes.
    pub fn set_bit(&mut self, row: usize, col: usize, value: bool) {
        let vdd = self.spec.cell.vdd;
        let k = self.idx(row, col);
        self.state[k] = if value { (vdd, 0.0) } else { (0.0, vdd) };
    }

    /// Folds a transient's final cell voltages into the carried state.
    ///
    /// # Panics
    ///
    /// Panics if `finals` is not one entry per cell.
    pub fn commit(&mut self, finals: &[(f64, f64)]) {
        assert_eq!(finals.len(), self.state.len(), "one entry per cell");
        self.state.copy_from_slice(finals);
    }

    /// Rebinds the control sources for an operation on `(row, col)`:
    /// row-select leads, wordline-enable pulses, and (for writes) the
    /// addressed column's mux opens onto the write-data lines.
    fn bind_op(&mut self, row: usize, col: usize, write: Option<bool>, pulse: f64) {
        let vdd = self.spec.cell.vdd;
        let sim = self.spec.cell.sim;
        let t_bl = sim.t_settle;
        let t_wl_on = t_bl + T_WL_DELAY;
        // Reset the previously bound row/column to idle.
        if let Some((r, c)) = self.bound.take() {
            let sel = self.compiled.param(self.sel_srcs[r]);
            self.compiled.bind_wave(sel, Waveform::dc(0.0));
            let csel = self.compiled.param(self.csel_srcs[c]);
            self.compiled.bind_wave(csel, Waveform::dc(0.0));
            let cselb = self.compiled.param(self.cselb_srcs[c]);
            self.compiled.bind_wave(cselb, Waveform::dc(vdd));
        }
        let sel = self.compiled.param(self.sel_srcs[row]);
        self.compiled
            .bind_wave(sel, Waveform::step(0.0, vdd, T_SEL, sim.t_edge));
        let wl_en = self.compiled.param(self.wl_en_src);
        self.compiled.bind_wave(
            wl_en,
            Waveform::pulse(0.0, vdd, t_wl_on, pulse, sim.t_edge.min(pulse / 4.0)),
        );
        let (wd_wave, wdb_wave, csel_wave, cselb_wave) = match write {
            Some(value) => {
                // The write-data line carrying the target low level steps
                // down as the mux opens; the high side holds the rail.
                let low = |hold: bool| {
                    if hold {
                        Waveform::dc(vdd)
                    } else {
                        Waveform::step(vdd, 0.0, t_bl, sim.t_edge)
                    }
                };
                (
                    low(value),
                    low(!value),
                    Waveform::step(0.0, vdd, t_bl, sim.t_edge),
                    Waveform::step(vdd, 0.0, t_bl, sim.t_edge),
                )
            }
            None => (
                Waveform::dc(vdd),
                Waveform::dc(vdd),
                Waveform::dc(0.0),
                Waveform::dc(vdd),
            ),
        };
        let wd = self.compiled.param(self.wd_src);
        self.compiled.bind_wave(wd, wd_wave);
        let wdb = self.compiled.param(self.wdb_src);
        self.compiled.bind_wave(wdb, wdb_wave);
        let csel = self.compiled.param(self.csel_srcs[col]);
        self.compiled.bind_wave(csel, csel_wave);
        let cselb = self.compiled.param(self.cselb_srcs[col]);
        self.compiled.bind_wave(cselb, cselb_wave);
        self.bound = Some((row, col));
    }

    /// Runs one operation transient from the carried state (which is NOT
    /// mutated — fold the returned finals back with [`commit`](Self::commit)).
    fn run_op(
        &mut self,
        row: usize,
        col: usize,
        write: Option<bool>,
        pulse: f64,
    ) -> Result<TransientResult, SramError> {
        let _span = tfet_obs::span("array_netlist_op");
        self.idx(row, col); // bounds check
                            // Annotate any forensics bundle submitted below this frame with the
                            // addressed cell: a convergence failure deep in the Newton loop
                            // surfaces with the failing operation's (row, col) attached.
        let _fctx = tfet_obs::forensics::context(
            "array_op",
            tfet_obs::Value::Obj(vec![
                (
                    "kind".into(),
                    tfet_obs::Value::text(match write {
                        Some(true) => "write1",
                        Some(false) => "write0",
                        None => "read",
                    }),
                ),
                ("row".into(), tfet_obs::Value::UInt(row as u64)),
                ("col".into(), tfet_obs::Value::UInt(col as u64)),
            ]),
        );
        self.bind_op(row, col, write, pulse);
        let sim = &self.spec.cell.sim;
        let t_end = sim.t_settle + T_WL_DELAY + pulse + sim.t_post_write;
        // Fixed uniform grid, deliberately: adaptive step-doubling solves
        // every step at two different dt's, which changes the companion
        // conductances between consecutive solves and forces a sparse
        // refactorization per step — ruinous at array scale (the LU is the
        // single most expensive object in a 25k-device netlist). A
        // constant dt lets the modified-Newton tier reuse one
        // factorization across hundreds of steps, and makes the time grid
        // identical across latency modes and thread counts.
        let spec = TransientSpec::fixed(t_end, sim.dt).with_device_latency(self.spec.latency);
        let mut uic = self.base_uic.clone();
        for (k, n) in self.cells.iter().enumerate() {
            let (vq, vqb) = self.state[k];
            uic.push((n.q, vq));
            uic.push((n.qb, vqb));
        }
        Ok(self.compiled.run(&spec, &InitialState::Uic(uic), &[])?)
    }

    fn finals(&self, result: &TransientResult) -> Vec<(f64, f64)> {
        self.cells
            .iter()
            .map(|n| (result.final_voltage(n.q), result.final_voltage(n.qb)))
            .collect()
    }

    /// Publishes the run's per-cell dormancy telemetry into the
    /// observability registry under `study`, keyed by array `(row, col)`.
    ///
    /// `decisions` and `dormant` (the replay count — every dormant decision
    /// replays the whole cell from cache) are always recorded so the
    /// exported heatmap covers the full grid; refresh causes and per-kind
    /// guard trips are recorded only when non-zero, which is still
    /// thread-count-invariant because the telemetry itself is. A no-op when
    /// observability is disabled or the run carried no partitions
    /// (latency tier off).
    fn record_partition_telemetry(&self, study: &'static str, result: &TransientResult) {
        if !tfet_obs::enabled() || result.partitions.is_empty() {
            return;
        }
        for (k, t) in result.partitions.iter().enumerate() {
            let mut metrics: Vec<(&'static str, u64)> =
                vec![("decisions", t.decisions), ("dormant", t.dormant)];
            if t.refreshes > 0 {
                metrics.push(("refreshes", t.refreshes));
            }
            if t.cold_refreshes > 0 {
                metrics.push(("refresh.cold", t.cold_refreshes));
            }
            if t.watch_refreshes > 0 {
                metrics.push(("refresh.watch", t.watch_refreshes));
            }
            for kind in GuardKind::ALL {
                let trips = t.trips(kind);
                if trips > 0 {
                    let name = match kind {
                        GuardKind::Wordline => "guard_trip.wordline",
                        GuardKind::Bitline => "guard_trip.bitline",
                        GuardKind::Rail => "guard_trip.rail",
                        GuardKind::Other => "guard_trip.other",
                    };
                    metrics.push((name, trips));
                }
            }
            tfet_obs::partition_cell(
                study,
                (k / self.spec.cols) as u32,
                (k % self.spec.cols) as u32,
                &metrics,
            );
        }
    }

    /// Simulates a write of `value` into the addressed cell with the given
    /// wordline-enable pulse width: the addressed row's driver fires, the
    /// addressed column's mux discharges one bitline, every other cell on
    /// the row is half-selected on floating precharged bitlines.
    ///
    /// # Errors
    ///
    /// Simulation failures.
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range or the pulse is not positive.
    pub fn write_transient(
        &mut self,
        row: usize,
        col: usize,
        value: bool,
        pulse: f64,
    ) -> Result<ArrayWrite, SramError> {
        assert!(pulse > 0.0, "pulse width must be positive");
        tfet_obs::counter("array_netlist.writes", 1);
        let vdd = self.spec.cell.vdd;
        let result = self.run_op(row, col, Some(value), pulse)?;
        self.record_partition_telemetry("array_write", &result);
        let finals = self.finals(&result);
        let victim = self.idx(row, col);
        let mut disturbed = Vec::new();
        for (k, &(vq, vqb)) in finals.iter().enumerate() {
            if k == victim {
                continue;
            }
            let (v0, v0b) = self.state[k];
            if decode(vq, vqb, vdd) != decode(v0, v0b, vdd) {
                disturbed.push((k / self.spec.cols, k % self.spec.cols));
            }
        }
        let (vq, vqb) = finals[victim];
        Ok(ArrayWrite {
            success: decode(vq, vqb, vdd) == Some(value),
            disturbed,
            finals,
            stats: result.stats,
            result,
        })
    }

    /// Simulates a read of the addressed cell: the row's driver fires for
    /// the cell's read window, all columns float at precharge, and the
    /// addressed column's differential is sensed at wordline close.
    ///
    /// # Errors
    ///
    /// Simulation failures.
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range.
    pub fn read_transient(&mut self, row: usize, col: usize) -> Result<ArrayRead, SramError> {
        tfet_obs::counter("array_netlist.reads", 1);
        let vdd = self.spec.cell.vdd;
        let sim = self.spec.cell.sim;
        let pulse = sim.t_read;
        let result = self.run_op(row, col, None, pulse)?;
        self.record_partition_telemetry("array_read", &result);
        let t_sense = sim.t_settle + T_WL_DELAY + pulse;
        let (bl, blb) = self.bitlines[col];
        let diff = result.voltage_at(bl, t_sense) - result.voltage_at(blb, t_sense);
        let finals = self.finals(&result);
        let destructive = finals
            .iter()
            .zip(&self.state)
            .any(|(&(vq, vqb), &(v0, v0b))| decode(vq, vqb, vdd) != decode(v0, v0b, vdd));
        Ok(ArrayRead {
            value: diff > 0.0,
            sense_margin: diff.abs(),
            destructive,
            finals,
            stats: result.stats,
            result,
        })
    }

    /// Critical wordline-enable pulse width for writing the opposite of
    /// the addressed cell's current bit, searched through the full array
    /// netlist (driver slew, mux discharge and half-select loading all
    /// physical). Searched on `[5·dt, max_pulse]` to `pulse_tol`
    /// resolution, exactly like the single-cell
    /// [`metrics::wl_crit`] — the analytic counterpart this engine is
    /// validated against ([`analytic_wl_crit`](Self::analytic_wl_crit)).
    ///
    /// # Errors
    ///
    /// Simulation failures on a decisive probe surface as
    /// [`WlCrit::Unbracketable`]; parameter errors propagate.
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range or the addressed cell's state
    /// is degraded.
    pub fn wl_crit(&mut self, row: usize, col: usize) -> Result<WlCrit, SramError> {
        let _span = tfet_obs::span("array_wl_crit");
        let target = !self
            .bit(row, col)
            .expect("the addressed cell must hold a clean bit");
        let sim = self.spec.cell.sim;
        let lo = 5.0 * sim.dt;
        let hi = sim.max_pulse;
        let th = critical_threshold_checked(lo, hi, sim.pulse_tol, |w| {
            match self.write_transient(row, col, target, w) {
                Ok(out) => Some(out.success),
                Err(_) => None,
            }
        });
        Ok(match th {
            Threshold::Critical(w) => WlCrit::Finite(w),
            Threshold::AlwaysTrue => WlCrit::Finite(lo),
            Threshold::NeverTrue => WlCrit::Infinite,
            Threshold::Unbracketable => WlCrit::Unbracketable,
        })
    }

    /// The analytic single-cell `WL_crit` prediction for this array's
    /// cell with the column's scaled bitline load — the model the
    /// netlist-level [`wl_crit`](Self::wl_crit) is compared against in the
    /// `array` validation figure.
    ///
    /// # Errors
    ///
    /// As [`metrics::wl_crit`].
    pub fn analytic_wl_crit(&self) -> Result<WlCrit, SramError> {
        let mut cell = self.spec.cell.clone();
        cell.c_bitline = self.spec.c_bitline();
        metrics::wl_crit(&cell, None)
    }

    /// Wordline node of a row (waveform inspection in tests).
    pub fn wordline(&self, row: usize) -> NodeId {
        self.wls[row]
    }

    /// Bitline pair of a column.
    pub fn bitline(&self, col: usize) -> (NodeId, NodeId) {
        self.bitlines[col]
    }

    /// Storage-node handles of a cell.
    pub fn cell_nodes(&self, row: usize, col: usize) -> &CellNodes {
        &self.cells[self.idx(row, col)]
    }

    /// Rescales one cell's transistor widths in place — fault-injection
    /// scaffolding for disturb studies. A deliberately weakened cell
    /// (oversized access devices, starved pull-downs) flips under the
    /// half-select exposure a nominal cell shrugs off, giving the disturb
    /// detectors a guaranteed positive to latch onto. Scales multiply the
    /// nominal sizing; models are rebuilt per role, so per-role process
    /// variation is preserved. Binds never touch topology, so the compiled
    /// MNA pattern and the latency partitions stay frozen.
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range or a scale is not positive.
    pub fn resize_cell(&mut self, row: usize, col: usize, access_scale: f64, pulldown_scale: f64) {
        assert!(
            access_scale > 0.0 && pulldown_scale > 0.0,
            "width scales must be positive"
        );
        let k = self.idx(row, col);
        let cell = self.spec.cell.clone();
        let s = &cell.sizing;
        // The partition's device list is in topology slot (stamp) order, so
        // slot indices address the cell's devices whatever the topology.
        let d = self.compiled.circuit().latency_partitions()[k]
            .devices
            .clone();
        let w_pd = s.w_pulldown_um() * pulldown_scale;
        let w_ax = s.w_access_um * access_scale;
        for slot in self.topo.slots() {
            let w = match slot.role {
                Role::PullDownLeft | Role::PullDownRight => w_pd,
                Role::AccessLeft | Role::AccessRight => w_ax,
                _ => continue,
            };
            self.compiled
                .bind_device(d[slot.index], cell.model(slot.role, slot.n_type), w);
        }
    }
}

/// Decodes a storage-node pair into a bit; `None` if the separation is
/// below half the supply (degraded).
fn decode(vq: f64, vqb: f64, vdd: f64) -> Option<bool> {
    let sep = vq - vqb;
    if sep > 0.5 * vdd {
        Some(true)
    } else if sep < -0.5 * vdd {
        Some(false)
    } else {
        None
    }
}
