//! Monte-Carlo process-variation analysis (paper §4.3).
//!
//! The paper restricts variation to the gate-insulator thickness,
//! "controlled to within 5 % using novel fabrication techniques", and runs
//! Monte-Carlo over the cell to obtain `WL_crit` and DRNM distributions.
//! [`sample_variations`] draws an independent truncated-Gaussian thickness
//! deviation for every transistor in the cell; [`mc_wl_crit`] /
//! [`mc_drnm`] run the metric per sample.
//!
//! # Parallelism and determinism
//!
//! Samples are independent, so the study fans out over worker threads
//! ([`McConfig::threads`]). Each sample owns a *counter-based RNG stream* —
//! `StdRng` seeded from a mix of the study seed and the sample index — so
//! sample `i` draws the same variations no matter which worker runs it or
//! how many workers exist. Results are collected in sample order: a study is
//! bit-identical at any thread count, including the serial path.

use crate::assist::{ReadAssist, WriteAssist};
use crate::error::SramError;
use crate::metrics::{read_metrics_compiled, wl_crit, wl_crit_compiled, WlCrit};
use crate::ops::{ReadExperiment, WriteExperiment};
use crate::tech::{CellParams, CellVariations, Role};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tfet_devices::ProcessVariation;
use tfet_numerics::parallel::par_try_map_with;

/// The paper's fabrication-control bound: ±5 % gate-oxide thickness.
pub const TOX_BOUND: f64 = 0.05;

/// Standard deviation of the thickness draw before truncation. With
/// σ = 2.5 % and truncation at ±5 % (2σ), most mass is Gaussian with the
/// fabrication bound enforced — the natural reading of "controlled to
/// within 5 %".
pub const TOX_SIGMA: f64 = 0.025;

/// Draws a truncated-Gaussian deviation in `[-TOX_BOUND, TOX_BOUND]`.
fn draw_deviation(rng: &mut StdRng) -> f64 {
    loop {
        // Box–Muller from two uniforms (avoids a rand_distr dependency).
        let u1: f64 = rng.random::<f64>().max(1e-12);
        let u2: f64 = rng.random::<f64>();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let dev = z * TOX_SIGMA;
        if dev.abs() <= TOX_BOUND {
            return dev;
        }
    }
}

/// Draws an independent process point for every transistor role.
pub fn sample_variations(rng: &mut StdRng) -> CellVariations {
    let mut v = CellVariations::nominal();
    for role in Role::ALL {
        v = v.with(role, ProcessVariation::from_deviation(draw_deviation(rng)));
    }
    v
}

/// Execution controls for a Monte-Carlo study.
///
/// ```
/// use tfet_sram::montecarlo::McConfig;
///
/// let cfg = McConfig::new(42).with_threads(4);
/// assert_eq!(cfg.seed, 42);
/// assert_eq!(cfg.threads, Some(4));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McConfig {
    /// Worker-thread count; `None` uses the machine default (respecting the
    /// `RAYON_NUM_THREADS` environment variable). Results are identical for
    /// every setting.
    pub threads: Option<usize>,
    /// Study seed. Sample `i` derives its private RNG stream from
    /// `(seed, i)`, so the seed pins the entire study.
    pub seed: u64,
}

impl McConfig {
    /// A configuration with the given seed and default threading.
    pub fn new(seed: u64) -> Self {
        McConfig {
            threads: None,
            seed,
        }
    }

    /// Sets an explicit worker-thread count (builder style).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// The RNG for one sample: an independent stream derived from the study
    /// seed and the sample index with a SplitMix64-style mix, so adjacent
    /// indices land far apart in state space.
    pub fn sample_rng(&self, index: usize) -> StdRng {
        let mut z = self
            .seed
            .wrapping_add((index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        StdRng::seed_from_u64(z ^ (z >> 31))
    }
}

impl Default for McConfig {
    fn default() -> Self {
        McConfig::new(0)
    }
}

/// Outcome counts of a Monte-Carlo `WL_crit` study.
#[derive(Debug, Clone, PartialEq)]
pub struct McWlCrit {
    /// Finite critical pulse widths, s (one per non-failing sample).
    pub values: Vec<f64>,
    /// Samples whose write failed outright (infinite `WL_crit`) — the
    /// paper's verdict against wordline-lowering WA under variation.
    pub failures: usize,
}

impl McWlCrit {
    /// Fraction of failing samples.
    pub fn failure_rate(&self) -> f64 {
        let n = self.values.len() + self.failures;
        if n == 0 {
            0.0
        } else {
            self.failures as f64 / n as f64
        }
    }
}

/// Runs an `n`-sample Monte-Carlo of `WL_crit` with the given assist.
/// Deterministic for a fixed `seed`; equivalent to [`mc_wl_crit_with`] with
/// default threading.
///
/// # Errors
///
/// Propagates simulation failures (an *infinite* `WL_crit` is a data point,
/// not an error).
pub fn mc_wl_crit(
    base: &CellParams,
    assist: Option<WriteAssist>,
    n: usize,
    seed: u64,
) -> Result<McWlCrit, SramError> {
    mc_wl_crit_with(base, assist, n, McConfig::new(seed))
}

/// Runs an `n`-sample Monte-Carlo of `WL_crit` under explicit execution
/// controls. Samples fan out over [`McConfig::threads`] workers; the result
/// is bit-identical at any thread count (see the module docs).
///
/// # Errors
///
/// Propagates simulation failures, reporting the lowest-index failing sample
/// regardless of scheduling.
pub fn mc_wl_crit_with(
    base: &CellParams,
    assist: Option<WriteAssist>,
    n: usize,
    config: McConfig,
) -> Result<McWlCrit, SramError> {
    let _span = tfet_obs::span("mc_wl_crit");
    // Seed every sample's bisection from the *nominal* cell's answer: ±5 %
    // t_ox perturbs WL_crit by a few percent, so the nominal value lands each
    // sample's search in a narrow bracket. The hint is computed once, before
    // the fan-out, and shared by all samples — never chained sample to
    // sample — so results stay bit-identical at any thread count. A failing
    // nominal cell yields no hint and samples fall back to the cold search.
    let hint = wl_crit(base, assist).ok().and_then(|w| w.as_finite());
    // Each worker compiles the write experiment once on its first sample and
    // retargets it per sample through device binds — the compiled circuit is
    // a pure cache (waveforms and initial conditions depend only on the
    // shared supply/timing, never on the variations), so values stay
    // bit-identical to a build-per-sample loop at any thread count.
    let outcomes = par_try_map_with(
        n,
        config.threads,
        || None,
        |slot: &mut Option<WriteExperiment>, i| {
            // A *root* span: at one worker the sample runs inline on the
            // caller's thread (under the "mc_wl_crit" span), at many it runs
            // on a fresh thread — pinning the path keeps the span tree
            // thread-count invariant.
            let _span = tfet_obs::root_span("mc_sample_wl_crit");
            let mut rng = config.sample_rng(i);
            let params = base.clone().with_variations(sample_variations(&mut rng));
            match slot {
                Some(exp) => exp.bind_cell(&params)?,
                None => *slot = Some(WriteExperiment::compile(&params, assist)?),
            }
            let exp = slot.as_mut().expect("compiled above");
            let run = wl_crit_compiled(exp, hint)?;
            // Per-sample solve cost: how much Newton effort one MC sample
            // charges, as a histogram so outlier samples stand out.
            tfet_obs::record_u64("mc.sample_newton_solves", run.effort.newton_solves);
            tfet_obs::record_u64("mc.sample_newton_iters", run.effort.newton_iters);
            Ok::<_, SramError>(run.value)
        },
    )?;
    let mut values = Vec::with_capacity(n);
    let mut failures = 0;
    for outcome in outcomes {
        match outcome {
            WlCrit::Finite(w) => values.push(w),
            WlCrit::Infinite => failures += 1,
        }
    }
    Ok(McWlCrit { values, failures })
}

/// Runs an `n`-sample Monte-Carlo of the DRNM with the given assist.
/// Deterministic for a fixed `seed`; equivalent to [`mc_drnm_with`] with
/// default threading.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn mc_drnm(
    base: &CellParams,
    assist: Option<ReadAssist>,
    n: usize,
    seed: u64,
) -> Result<Vec<f64>, SramError> {
    mc_drnm_with(base, assist, n, McConfig::new(seed))
}

/// Runs an `n`-sample Monte-Carlo of the DRNM under explicit execution
/// controls. Bit-identical at any thread count.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn mc_drnm_with(
    base: &CellParams,
    assist: Option<ReadAssist>,
    n: usize,
    config: McConfig,
) -> Result<Vec<f64>, SramError> {
    let _span = tfet_obs::span("mc_drnm");
    // Per-worker compiled read experiment, retargeted per sample via device
    // binds — see `mc_wl_crit_with` for why this cannot change the values.
    par_try_map_with(
        n,
        config.threads,
        || None,
        |slot: &mut Option<ReadExperiment>, i| {
            // Root span for thread-count-invariant paths; see
            // `mc_wl_crit_with`.
            let _span = tfet_obs::root_span("mc_sample_drnm");
            let mut rng = config.sample_rng(i);
            let params = base.clone().with_variations(sample_variations(&mut rng));
            match slot {
                Some(exp) => exp.bind_cell(&params)?,
                None => *slot = Some(ReadExperiment::compile(&params, assist)?),
            }
            let exp = slot.as_mut().expect("compiled above");
            read_metrics_compiled(exp).map(|m| m.drnm)
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tech::AccessConfig;
    use tfet_numerics::Summary;

    fn fast(params: CellParams) -> CellParams {
        let mut p = params;
        p.sim.dt = 2e-12;
        p.sim.pulse_tol = 8e-12;
        p
    }

    #[test]
    fn deviations_respect_bound() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            let d = draw_deviation(&mut rng);
            assert!(d.abs() <= TOX_BOUND);
        }
    }

    #[test]
    fn deviations_have_expected_spread() {
        let mut rng = StdRng::seed_from_u64(11);
        let draws: Vec<f64> = (0..4000).map(|_| draw_deviation(&mut rng)).collect();
        let s = Summary::of(&draws);
        assert!(s.mean.abs() < 0.003, "mean = {}", s.mean);
        assert!((s.std_dev - TOX_SIGMA).abs() < 0.005, "std = {}", s.std_dev);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let va = sample_variations(&mut a);
        let vb = sample_variations(&mut b);
        for role in Role::ALL {
            assert_eq!(va.of(role), vb.of(role));
        }
    }

    #[test]
    fn samples_differ_across_roles() {
        let mut rng = StdRng::seed_from_u64(1);
        let v = sample_variations(&mut rng);
        let devs: Vec<f64> = Role::ALL.iter().map(|&r| v.of(r).deviation()).collect();
        let distinct = devs
            .iter()
            .filter(|&&d| (d - devs[0]).abs() > 1e-12)
            .count();
        assert!(distinct > 0, "per-transistor draws must be independent");
    }

    #[test]
    fn sample_rng_streams_are_independent_and_stable() {
        let cfg = McConfig::new(123);
        // Same (seed, index) → same stream.
        let a: f64 = cfg.sample_rng(5).random();
        let b: f64 = cfg.sample_rng(5).random();
        assert_eq!(a, b);
        // Adjacent indices and different seeds → different streams.
        let c: f64 = cfg.sample_rng(6).random();
        let d: f64 = McConfig::new(124).sample_rng(5).random();
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn mc_wl_crit_is_thread_count_invariant() {
        let p = fast(CellParams::tfet6t(AccessConfig::InwardP).with_beta(0.6));
        let serial = mc_wl_crit_with(&p, None, 4, McConfig::new(9).with_threads(1)).unwrap();
        let parallel = mc_wl_crit_with(&p, None, 4, McConfig::new(9).with_threads(8)).unwrap();
        assert_eq!(serial, parallel, "results must not depend on scheduling");
    }

    #[test]
    fn mc_drnm_spreads_but_stays_positive() {
        // Paper Fig. 10: DRNM under RA sizing is minimally impacted.
        let p = fast(CellParams::tfet6t(AccessConfig::InwardP).with_beta(0.6));
        let vals = mc_drnm(&p, Some(ReadAssist::GndLowering), 12, 3).unwrap();
        assert_eq!(vals.len(), 12);
        let s = Summary::of(&vals);
        assert!(s.min > 0.0, "all samples must read safely");
        assert!(
            s.cv() < 0.3,
            "DRNM spread under RA must be modest: cv = {}",
            s.cv()
        );
    }

    #[test]
    fn mc_wl_crit_produces_finite_values_for_writable_cell() {
        let p = fast(CellParams::tfet6t(AccessConfig::InwardP).with_beta(0.6));
        let mc = mc_wl_crit(&p, None, 8, 5).unwrap();
        assert_eq!(mc.values.len() + mc.failures, 8);
        assert_eq!(mc.failures, 0, "β=0.6 writes must survive ±5% t_ox");
        assert!(mc.failure_rate() == 0.0);
    }
}
