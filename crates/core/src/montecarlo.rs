//! Monte-Carlo process-variation analysis (paper §4.3).
//!
//! The paper restricts variation to the gate-insulator thickness,
//! "controlled to within 5 % using novel fabrication techniques", and runs
//! Monte-Carlo over the cell to obtain `WL_crit` and DRNM distributions.
//! [`sample_variations`] draws an independent truncated-Gaussian thickness
//! deviation for every transistor in the cell; [`mc_wl_crit`] /
//! [`mc_drnm`] run the metric per sample.
//!
//! # Parallelism and determinism
//!
//! Samples are independent, so the study fans out over worker threads
//! ([`McConfig::threads`]). Each sample owns a *counter-based RNG stream* —
//! `StdRng` seeded from a mix of the study seed and the sample index — so
//! sample `i` draws the same variations no matter which worker runs it or
//! how many workers exist. Results are collected in sample order: a study is
//! bit-identical at any thread count, including the serial path.
//!
//! # Graceful degradation
//!
//! A sample whose simulation fails no longer aborts the study. It is
//! *quarantined*: excluded from the survivor statistics and recorded — with
//! its index, the exact process point it drew, and the structured error —
//! in [`McWlCrit::quarantined`] / [`McDrnm::quarantined`], in the run
//! report's `quarantined` section, and (when tracing is on) as a
//! `mc_quarantine` forensics bundle. The quarantine set is deterministic:
//! outcomes are folded in sample order on the caller's thread, so it is
//! bit-identical at any worker count and the RNG streams of surviving
//! samples are untouched. [`McConfig::min_yield`] converts excessive
//! quarantine into a typed [`SramError::LowYield`] error.

use crate::assist::{ReadAssist, WriteAssist};
use crate::error::SramError;
use crate::metrics::{read_metrics_compiled, wl_crit_compiled, WlCrit};
use crate::ops::{ReadExperiment, WriteExperiment};
use crate::tech::{CellParams, CellVariations, Role};
use crate::topology::CellTopology;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tfet_devices::ProcessVariation;
use tfet_numerics::parallel::par_map_with;

/// The paper's fabrication-control bound: ±5 % gate-oxide thickness.
pub const TOX_BOUND: f64 = 0.05;

/// Standard deviation of the thickness draw before truncation. With
/// σ = 2.5 % and truncation at ±5 % (2σ), most mass is Gaussian with the
/// fabrication bound enforced — the natural reading of "controlled to
/// within 5 %".
pub const TOX_SIGMA: f64 = 0.025;

/// Retry budget of the accept-reject stage in [`draw_truncated_normal`].
/// At the default σ = 2.5 % / bound = 5 % (2σ truncation) a single draw is
/// rejected with probability ≈ 0.0455, so exhausting 64 retries has
/// probability ≈ 1e-86 — the analytic fallback is unreachable in practice
/// and exists to make the worst case bounded, not to change the
/// distribution.
pub const DRAW_RETRIES: usize = 64;

/// Draws from a centered Gaussian with standard deviation `sigma`,
/// truncated to `[-bound, bound]`.
///
/// The fast path is bounded accept-reject (Box–Muller from two uniforms,
/// avoiding a `rand_distr` dependency); after [`DRAW_RETRIES`] rejections it
/// falls back to exact inverse-CDF sampling through the analytic truncated
/// mass — every call consumes a bounded number of RNG words and the sampled
/// law is the truncated normal either way. The truncation constant the
/// importance-sampling layer must carry in its likelihood ratios is
/// [`tfet_numerics::gaussian_mass_within`]`(sigma, bound)`.
pub fn draw_truncated_normal(rng: &mut StdRng, sigma: f64, bound: f64) -> f64 {
    for _ in 0..DRAW_RETRIES {
        let u1: f64 = rng.random::<f64>().max(1e-12);
        let u2: f64 = rng.random::<f64>();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let dev = z * sigma;
        if dev.abs() <= bound {
            return dev;
        }
    }
    // Exact fallback: map one uniform through the truncated CDF
    // F⁻¹(Φ(−b/σ) + u·Z). The clamp only guards the last-ulp rounding of
    // the inverse CDF at the interval ends.
    let u: f64 = rng.random::<f64>();
    let mass = tfet_numerics::gaussian_mass_within(sigma, bound);
    let lo = tfet_numerics::norm_cdf(-bound / sigma);
    (sigma * tfet_numerics::inv_norm_cdf(lo + u * mass)).clamp(-bound, bound)
}

/// Draws a truncated-Gaussian deviation in `[-TOX_BOUND, TOX_BOUND]`.
fn draw_deviation(rng: &mut StdRng) -> f64 {
    draw_truncated_normal(rng, TOX_SIGMA, TOX_BOUND)
}

/// Draws an independent process point for every transistor role.
pub fn sample_variations(rng: &mut StdRng) -> CellVariations {
    let mut v = CellVariations::nominal();
    for role in Role::ALL {
        v = v.with(role, ProcessVariation::from_deviation(draw_deviation(rng)));
    }
    v
}

/// Execution controls for a Monte-Carlo study.
///
/// ```
/// use tfet_sram::montecarlo::McConfig;
///
/// let cfg = McConfig::new(42).with_threads(4).with_min_yield(0.9);
/// assert_eq!(cfg.seed, 42);
/// assert_eq!(cfg.threads, Some(4));
/// assert_eq!(cfg.min_yield, 0.9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McConfig {
    /// Worker-thread count; `None` uses the machine default (respecting the
    /// `RAYON_NUM_THREADS` environment variable). Results are identical for
    /// every setting.
    pub threads: Option<usize>,
    /// Study seed. Sample `i` derives its private RNG stream from
    /// `(seed, i)`, so the seed pins the entire study.
    pub seed: u64,
    /// Minimum acceptable survivor fraction. A study whose yield (samples
    /// that produced a result, over samples attempted) falls strictly below
    /// this returns [`SramError::LowYield`] instead of silently summarizing
    /// a biased remnant. The default `0.0` never rejects.
    pub min_yield: f64,
}

impl McConfig {
    /// A configuration with the given seed and default threading.
    pub fn new(seed: u64) -> Self {
        McConfig {
            threads: None,
            seed,
            min_yield: 0.0,
        }
    }

    /// Sets an explicit worker-thread count (builder style).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Sets the minimum acceptable survivor fraction (builder style).
    pub fn with_min_yield(mut self, min_yield: f64) -> Self {
        self.min_yield = min_yield;
        self
    }

    /// The RNG for one sample: an independent stream derived from the study
    /// seed and the sample index with a SplitMix64-style mix, so adjacent
    /// indices land far apart in state space.
    pub fn sample_rng(&self, index: usize) -> StdRng {
        let mut z = self
            .seed
            .wrapping_add((index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        StdRng::seed_from_u64(z ^ (z >> 31))
    }
}

impl Default for McConfig {
    fn default() -> Self {
        McConfig::new(0)
    }
}

/// One quarantined Monte-Carlo sample: a sample whose simulation failed and
/// was excluded from the survivor statistics instead of aborting the study.
///
/// The `(study seed, index)` pair replays the sample's private RNG stream,
/// so `variations` is the *exact* process point the failing simulation saw —
/// enough to re-run it in isolation.
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantinedSample {
    /// Sample index within the study.
    pub index: usize,
    /// The per-transistor process point the sample drew.
    pub variations: CellVariations,
    /// Why the sample was excluded.
    pub error: SramError,
}

/// Outcome counts of a Monte-Carlo `WL_crit` study.
#[derive(Debug, Clone, PartialEq)]
pub struct McWlCrit {
    /// Finite critical pulse widths, s (one per non-failing sample).
    pub values: Vec<f64>,
    /// Samples whose write failed outright (infinite `WL_crit`) — the
    /// paper's verdict against wordline-lowering WA under variation.
    pub failures: usize,
    /// Samples that produced no verdict at all: their simulation failed
    /// (see the module docs on graceful degradation). An infinite `WL_crit`
    /// is a *verdict*, counted in `failures`, not here.
    pub quarantined: Vec<QuarantinedSample>,
}

impl McWlCrit {
    /// Fraction of failing samples among those that produced a verdict.
    pub fn failure_rate(&self) -> f64 {
        let n = self.values.len() + self.failures;
        if n == 0 {
            0.0
        } else {
            self.failures as f64 / n as f64
        }
    }

    /// Fraction of samples that produced a verdict (finite or infinite
    /// `WL_crit`); `1.0` for an empty study.
    pub fn yield_fraction(&self) -> f64 {
        yield_fraction(
            self.values.len() + self.failures,
            self.values.len() + self.failures + self.quarantined.len(),
        )
    }
}

/// Outcome of a Monte-Carlo DRNM study: survivor margins plus the
/// quarantined samples (see the module docs on graceful degradation).
#[derive(Debug, Clone, PartialEq)]
pub struct McDrnm {
    /// DRNM of each surviving sample, V.
    pub values: Vec<f64>,
    /// Samples whose simulation failed.
    pub quarantined: Vec<QuarantinedSample>,
}

impl McDrnm {
    /// Fraction of samples that produced a margin; `1.0` for an empty study.
    pub fn yield_fraction(&self) -> f64 {
        yield_fraction(
            self.values.len(),
            self.values.len() + self.quarantined.len(),
        )
    }
}

fn yield_fraction(survivors: usize, total: usize) -> f64 {
    if total == 0 {
        1.0
    } else {
        survivors as f64 / total as f64
    }
}

/// Replays a failed sample's RNG stream to recover the exact process point
/// it drew — cheaper than shipping the draw back from the worker, and
/// identical because the stream depends only on `(seed, index)`.
fn quarantined_sample(config: &McConfig, index: usize, error: SramError) -> QuarantinedSample {
    let mut rng = config.sample_rng(index);
    QuarantinedSample {
        index,
        variations: sample_variations(&mut rng),
        error,
    }
}

/// Splits per-sample outcomes (already in index order) into survivors and
/// quarantined samples.
fn split_outcomes<T>(
    config: &McConfig,
    outcomes: Vec<Result<T, SramError>>,
) -> (Vec<T>, Vec<QuarantinedSample>) {
    let mut survivors = Vec::with_capacity(outcomes.len());
    let mut quarantined = Vec::new();
    for (i, outcome) in outcomes.into_iter().enumerate() {
        match outcome {
            Ok(v) => survivors.push(v),
            Err(e) => quarantined.push(quarantined_sample(config, i, e)),
        }
    }
    (survivors, quarantined)
}

/// Publishes quarantined samples into the observability layer: the
/// `mc.quarantined` counter, one run-report quarantine record and one
/// `mc_quarantine` forensics bundle per sample — emitted on the caller's
/// thread in index order, so traces are bit-identical at any worker count.
fn publish_quarantine(study: &'static str, config: &McConfig, quarantined: &[QuarantinedSample]) {
    if quarantined.is_empty() || !tfet_obs::enabled() {
        return;
    }
    tfet_obs::counter("mc.quarantined", quarantined.len() as u64);
    for q in quarantined {
        let params: Vec<(String, f64)> = Role::ALL
            .iter()
            .map(|&role| (role.label().to_string(), q.variations.of(role).deviation()))
            .collect();
        tfet_obs::quarantine(tfet_obs::QuarantineRecord {
            study,
            index: q.index as u64,
            seed: config.seed,
            params: params.clone(),
            error: q.error.to_string(),
        });
        tfet_obs::forensics::submit(
            &tfet_obs::forensics::Bundle::new("mc_quarantine")
                .text("study", study)
                .int("sample_index", q.index as u64)
                .int("seed", config.seed)
                .text("error", q.error.to_string())
                .named_nums("tox_deviations", &params),
        );
    }
}

/// Converts excessive quarantine into a typed error: with `min_yield > 0`,
/// a survivor fraction strictly below it aborts the study.
pub(crate) fn check_yield(
    survivors: usize,
    total: usize,
    config: &McConfig,
) -> Result<(), SramError> {
    if total > 0 && (survivors as f64) < config.min_yield * total as f64 {
        return Err(SramError::LowYield {
            survivors,
            total,
            min_yield: config.min_yield,
        });
    }
    Ok(())
}

/// Runs an `n`-sample Monte-Carlo of `WL_crit` with the given assist.
/// Deterministic for a fixed `seed`; equivalent to [`mc_wl_crit_with`] with
/// default threading.
///
/// # Errors
///
/// Never errors on per-sample simulation failures — those samples are
/// quarantined (an *infinite* `WL_crit` is a data point, not an error, and
/// not a quarantine either). The default configuration has `min_yield = 0`,
/// so [`SramError::LowYield`] cannot occur here.
pub fn mc_wl_crit(
    base: &CellParams,
    assist: Option<WriteAssist>,
    n: usize,
    seed: u64,
) -> Result<McWlCrit, SramError> {
    mc_wl_crit_with(base, assist, n, McConfig::new(seed))
}

/// Runs an `n`-sample Monte-Carlo of `WL_crit` under explicit execution
/// controls. Samples fan out over [`McConfig::threads`] workers; the result
/// is bit-identical at any thread count (see the module docs).
///
/// # Errors
///
/// Per-sample simulation failures are quarantined, not propagated. Returns
/// [`SramError::LowYield`] when the fraction of samples producing a verdict
/// falls below [`McConfig::min_yield`].
pub fn mc_wl_crit_with(
    base: &CellParams,
    assist: Option<WriteAssist>,
    n: usize,
    config: McConfig,
) -> Result<McWlCrit, SramError> {
    mc_wl_crit_topo(&CellTopology::builtin(base.kind), base, assist, n, config)
}

/// [`mc_wl_crit_with`] for an explicit topology — Monte-Carlo `WL_crit` on
/// a cell that exists only as an imported `.subckt`. Variations bind to
/// devices by [`Role`], so an imported 6T sees exactly the process space a
/// generated one does.
///
/// # Errors
///
/// As [`mc_wl_crit_with`].
pub fn mc_wl_crit_topo(
    topo: &CellTopology,
    base: &CellParams,
    assist: Option<WriteAssist>,
    n: usize,
    config: McConfig,
) -> Result<McWlCrit, SramError> {
    let _span = tfet_obs::span("mc_wl_crit");
    // Seed every sample's bisection from the *nominal* cell's answer: ±5 %
    // t_ox perturbs WL_crit by a few percent, so the nominal value lands each
    // sample's search in a narrow bracket. The hint is computed once, before
    // the fan-out, and shared by all samples — never chained sample to
    // sample — so results stay bit-identical at any thread count. A failing
    // or unbracketable nominal cell yields no hint and samples fall back to
    // the cold search.
    let hint = WriteExperiment::compile_on(topo, base, assist)
        .ok()
        .and_then(|mut exp| wl_crit_compiled(&mut exp, None).ok())
        .and_then(|run| run.value.as_finite());
    // Each worker compiles the write experiment once on its first sample and
    // retargets it per sample through device binds — the compiled circuit is
    // a pure cache (waveforms and initial conditions depend only on the
    // shared supply/timing, never on the variations), so values stay
    // bit-identical to a build-per-sample loop at any thread count.
    let outcomes = par_map_with(
        n,
        config.threads,
        || None,
        |slot: &mut Option<WriteExperiment>, i| {
            // A *root* span: at one worker the sample runs inline on the
            // caller's thread (under the "mc_wl_crit" span), at many it runs
            // on a fresh thread — pinning the path keeps the span tree
            // thread-count invariant.
            let _span = tfet_obs::root_span("mc_sample_wl_crit");
            let result = (|| {
                let mut rng = config.sample_rng(i);
                let params = base.clone().with_variations(sample_variations(&mut rng));
                match slot {
                    Some(exp) => exp.bind_cell(&params)?,
                    None => *slot = Some(WriteExperiment::compile_on(topo, &params, assist)?),
                }
                let exp = slot.as_mut().expect("compiled above");
                let run = wl_crit_compiled(exp, hint)?;
                // Per-sample solve cost: how much Newton effort one MC sample
                // charges, as a histogram so outlier samples stand out.
                tfet_obs::record_u64("mc.sample_newton_solves", run.effort.newton_solves);
                tfet_obs::record_u64("mc.sample_newton_iters", run.effort.newton_iters);
                match run.value {
                    // An unbracketable search is a failed sample, not a
                    // verdict — surface its recorded cause for quarantine.
                    WlCrit::Unbracketable => {
                        Err(run.failure.unwrap_or_else(|| SramError::Undefined {
                            metric: "WL_crit",
                            reason: "unbracketable search with no recorded cause".into(),
                        }))
                    }
                    value => Ok(value),
                }
            })();
            if result.is_err() {
                // A failed sample must not poison the worker's compiled
                // cache: later samples have to behave exactly as they would
                // on a fresh worker, whatever the scheduling.
                *slot = None;
            }
            result
        },
    );
    let (verdicts, quarantined) = split_outcomes(&config, outcomes);
    let mut values = Vec::with_capacity(verdicts.len());
    let mut failures = 0;
    for verdict in verdicts {
        match verdict {
            WlCrit::Finite(w) => values.push(w),
            WlCrit::Infinite => failures += 1,
            WlCrit::Unbracketable => unreachable!("mapped to Err in the sample closure"),
        }
    }
    publish_quarantine("mc_wl_crit", &config, &quarantined);
    check_yield(values.len() + failures, n, &config)?;
    Ok(McWlCrit {
        values,
        failures,
        quarantined,
    })
}

/// Runs an `n`-sample Monte-Carlo of the DRNM with the given assist.
/// Deterministic for a fixed `seed`; equivalent to [`mc_drnm_with`] with
/// default threading.
///
/// # Errors
///
/// Never errors on per-sample simulation failures — those samples are
/// quarantined. The default configuration has `min_yield = 0`, so
/// [`SramError::LowYield`] cannot occur here.
pub fn mc_drnm(
    base: &CellParams,
    assist: Option<ReadAssist>,
    n: usize,
    seed: u64,
) -> Result<McDrnm, SramError> {
    mc_drnm_with(base, assist, n, McConfig::new(seed))
}

/// Runs an `n`-sample Monte-Carlo of the DRNM under explicit execution
/// controls. Bit-identical at any thread count.
///
/// # Errors
///
/// Per-sample simulation failures are quarantined, not propagated. Returns
/// [`SramError::LowYield`] when the survivor fraction falls below
/// [`McConfig::min_yield`].
pub fn mc_drnm_with(
    base: &CellParams,
    assist: Option<ReadAssist>,
    n: usize,
    config: McConfig,
) -> Result<McDrnm, SramError> {
    mc_drnm_topo(&CellTopology::builtin(base.kind), base, assist, n, config)
}

/// [`mc_drnm_with`] for an explicit topology — Monte-Carlo DRNM on a cell
/// that exists only as an imported `.subckt`.
///
/// # Errors
///
/// As [`mc_drnm_with`].
pub fn mc_drnm_topo(
    topo: &CellTopology,
    base: &CellParams,
    assist: Option<ReadAssist>,
    n: usize,
    config: McConfig,
) -> Result<McDrnm, SramError> {
    let _span = tfet_obs::span("mc_drnm");
    // Per-worker compiled read experiment, retargeted per sample via device
    // binds — see `mc_wl_crit_with` for why this cannot change the values.
    let outcomes = par_map_with(
        n,
        config.threads,
        || None,
        |slot: &mut Option<ReadExperiment>, i| {
            // Root span for thread-count-invariant paths; see
            // `mc_wl_crit_with`.
            let _span = tfet_obs::root_span("mc_sample_drnm");
            let result = (|| {
                let mut rng = config.sample_rng(i);
                let params = base.clone().with_variations(sample_variations(&mut rng));
                match slot {
                    Some(exp) => exp.bind_cell(&params)?,
                    None => *slot = Some(ReadExperiment::compile_on(topo, &params, assist)?),
                }
                let exp = slot.as_mut().expect("compiled above");
                read_metrics_compiled(exp).map(|m| m.drnm)
            })();
            if result.is_err() {
                // See `mc_wl_crit_with`: never reuse a cache a failed
                // sample may have left half-bound.
                *slot = None;
            }
            result
        },
    );
    let (values, quarantined) = split_outcomes(&config, outcomes);
    publish_quarantine("mc_drnm", &config, &quarantined);
    check_yield(values.len(), n, &config)?;
    Ok(McDrnm {
        values,
        quarantined,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tech::{AccessConfig, CellKind};
    use tfet_numerics::Summary;

    fn fast(params: CellParams) -> CellParams {
        let mut p = params;
        p.sim.dt = 2e-12;
        p.sim.pulse_tol = 8e-12;
        p
    }

    #[test]
    fn deviations_respect_bound() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            let d = draw_deviation(&mut rng);
            assert!(d.abs() <= TOX_BOUND);
        }
    }

    #[test]
    fn deviations_have_expected_spread() {
        let mut rng = StdRng::seed_from_u64(11);
        let draws: Vec<f64> = (0..4000).map(|_| draw_deviation(&mut rng)).collect();
        let s = Summary::of(&draws);
        assert!(s.mean.abs() < 0.003, "mean = {}", s.mean);
        assert!((s.std_dev - TOX_SIGMA).abs() < 0.005, "std = {}", s.std_dev);
    }

    #[test]
    fn truncated_sampler_fallback_respects_bound() {
        // sigma >> bound starves the accept-reject phase (acceptance
        // ~ 0.2 % per try), forcing the inverse-CDF fallback on most
        // draws; every draw must still land inside the bound.
        let mut rng = StdRng::seed_from_u64(5);
        let draws: Vec<f64> = (0..500)
            .map(|_| draw_truncated_normal(&mut rng, 5.0, 0.01))
            .collect();
        assert!(draws.iter().all(|d| d.abs() <= 0.01));
        // A heavily truncated Gaussian is near-uniform on the bound: the
        // spread must reflect the truncation, not the nominal sigma.
        let s = Summary::of(&draws);
        assert!(s.std_dev < 0.01, "std = {}", s.std_dev);
        assert!(s.std_dev > 0.004, "std = {}", s.std_dev);
    }

    #[test]
    fn truncated_sampler_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(21);
        let mut b = StdRng::seed_from_u64(21);
        for _ in 0..200 {
            // Both the Box-Muller accept path and (with the wide sigma)
            // the fallback path must replay bit-identically.
            assert_eq!(
                draw_truncated_normal(&mut a, TOX_SIGMA, TOX_BOUND),
                draw_truncated_normal(&mut b, TOX_SIGMA, TOX_BOUND)
            );
            assert_eq!(
                draw_truncated_normal(&mut a, 2.0, 0.05),
                draw_truncated_normal(&mut b, 2.0, 0.05)
            );
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let va = sample_variations(&mut a);
        let vb = sample_variations(&mut b);
        for role in Role::ALL {
            assert_eq!(va.of(role), vb.of(role));
        }
    }

    #[test]
    fn samples_differ_across_roles() {
        let mut rng = StdRng::seed_from_u64(1);
        let v = sample_variations(&mut rng);
        let devs: Vec<f64> = Role::ALL.iter().map(|&r| v.of(r).deviation()).collect();
        let distinct = devs
            .iter()
            .filter(|&&d| (d - devs[0]).abs() > 1e-12)
            .count();
        assert!(distinct > 0, "per-transistor draws must be independent");
    }

    #[test]
    fn sample_rng_streams_are_independent_and_stable() {
        let cfg = McConfig::new(123);
        // Same (seed, index) → same stream.
        let a: f64 = cfg.sample_rng(5).random();
        let b: f64 = cfg.sample_rng(5).random();
        assert_eq!(a, b);
        // Adjacent indices and different seeds → different streams.
        let c: f64 = cfg.sample_rng(6).random();
        let d: f64 = McConfig::new(124).sample_rng(5).random();
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn mc_wl_crit_is_thread_count_invariant() {
        let p = fast(CellParams::tfet6t(AccessConfig::InwardP).with_beta(0.6));
        let serial = mc_wl_crit_with(&p, None, 4, McConfig::new(9).with_threads(1)).unwrap();
        let parallel = mc_wl_crit_with(&p, None, 4, McConfig::new(9).with_threads(8)).unwrap();
        assert_eq!(serial, parallel, "results must not depend on scheduling");
    }

    #[test]
    fn mc_drnm_spreads_but_stays_positive() {
        // Paper Fig. 10: DRNM under RA sizing is minimally impacted.
        let p = fast(CellParams::tfet6t(AccessConfig::InwardP).with_beta(0.6));
        let mc = mc_drnm(&p, Some(ReadAssist::GndLowering), 12, 3).unwrap();
        assert_eq!(mc.values.len(), 12);
        assert!(
            mc.quarantined.is_empty(),
            "healthy cells quarantine nothing"
        );
        assert_eq!(mc.yield_fraction(), 1.0);
        let s = Summary::of(&mc.values);
        assert!(s.min > 0.0, "all samples must read safely");
        assert!(
            s.cv() < 0.3,
            "DRNM spread under RA must be modest: cv = {}",
            s.cv()
        );
    }

    #[test]
    fn mc_wl_crit_produces_finite_values_for_writable_cell() {
        let p = fast(CellParams::tfet6t(AccessConfig::InwardP).with_beta(0.6));
        let mc = mc_wl_crit(&p, None, 8, 5).unwrap();
        assert_eq!(mc.values.len() + mc.failures, 8);
        assert_eq!(mc.failures, 0, "β=0.6 writes must survive ±5% t_ox");
        assert!(mc.failure_rate() == 0.0);
        assert!(
            mc.quarantined.is_empty(),
            "healthy cells quarantine nothing"
        );
        assert_eq!(mc.yield_fraction(), 1.0);
    }

    #[test]
    fn mc_quarantines_samples_that_cannot_be_measured() {
        // The asymmetric cell rejects WL_crit per sample, and its failing
        // nominal cell also yields no bisection hint — the study must
        // degrade to a complete, structured quarantine instead of aborting
        // (it used to return the first sample's error).
        let p = fast(CellParams::new(CellKind::TfetAsym6T));
        let mc = mc_wl_crit(&p, None, 3, 5).unwrap();
        assert!(mc.values.is_empty());
        assert_eq!(mc.failures, 0);
        assert_eq!(mc.quarantined.len(), 3);
        assert_eq!(mc.yield_fraction(), 0.0);
        for (i, q) in mc.quarantined.iter().enumerate() {
            assert_eq!(q.index, i, "quarantine is in sample order");
            assert!(
                matches!(
                    q.error,
                    SramError::Undefined {
                        metric: "WL_crit",
                        ..
                    }
                ),
                "structured cause, got {:?}",
                q.error
            );
            // The recorded process point replays the sample's RNG stream.
            let mut rng = McConfig::new(5).sample_rng(i);
            assert_eq!(q.variations, sample_variations(&mut rng));
        }
        // Survivor statistics degrade cleanly to "no data", not a panic.
        assert!(Summary::try_of(&mc.values).is_none());
    }

    #[test]
    fn mc_quarantine_is_thread_count_invariant() {
        let p = fast(CellParams::new(CellKind::TfetAsym6T));
        let serial = mc_wl_crit_with(&p, None, 4, McConfig::new(9).with_threads(1)).unwrap();
        let parallel = mc_wl_crit_with(&p, None, 4, McConfig::new(9).with_threads(8)).unwrap();
        assert_eq!(
            serial, parallel,
            "quarantine sets must not depend on scheduling"
        );
    }

    #[test]
    fn min_yield_converts_excessive_quarantine_into_a_typed_error() {
        let p = fast(CellParams::new(CellKind::TfetAsym6T));
        let err = mc_wl_crit_with(&p, None, 3, McConfig::new(5).with_min_yield(0.5)).unwrap_err();
        assert_eq!(
            err,
            SramError::LowYield {
                survivors: 0,
                total: 3,
                min_yield: 0.5
            }
        );
        assert!(err.to_string().contains("yield too low"), "{err}");
    }

    #[test]
    fn mixed_outcomes_split_into_survivors_and_quarantine() {
        // The fold itself, on synthetic outcomes: survivors keep their order,
        // failures quarantine at their own index with their own draw.
        let config = McConfig::new(7);
        let outcomes: Vec<Result<f64, SramError>> = vec![
            Ok(1.0),
            Err(SramError::InvalidParameter("boom".into())),
            Ok(2.0),
        ];
        let (survivors, quarantined) = split_outcomes(&config, outcomes);
        assert_eq!(survivors, vec![1.0, 2.0]);
        assert_eq!(quarantined.len(), 1);
        assert_eq!(quarantined[0].index, 1);
        let mut rng = config.sample_rng(1);
        assert_eq!(quarantined[0].variations, sample_variations(&mut rng));
        assert!(check_yield(2, 3, &config).is_ok());
        assert!(check_yield(2, 3, &config.with_min_yield(2.0 / 3.0)).is_ok());
        assert!(check_yield(2, 3, &config.with_min_yield(0.9)).is_err());
    }
}
