//! Topology-as-data: the [`CellTopology`] abstraction.
//!
//! Every experiment in this crate — write, read, `WL_crit`, Monte-Carlo,
//! the array engine — needs the same facts about a cell: which ports it
//! exposes, which transistor plays which [`Role`] (so process variation and
//! β-sizing bind to the right device), how its access transistors are
//! oriented, and whether it has a decoupled read port. Historically those
//! facts were hard-coded against the built-in generators in [`crate::cell`];
//! a cell that existed only as a SPICE `.subckt` could not run any
//! experiment.
//!
//! [`CellTopology`] reifies them as data. It is constructed either
//!
//! * from a built-in [`CellKind`] ([`CellTopology::builtin`]) — placement
//!   delegates to [`build_cell_on_lines`], so every number produced through
//!   a builtin topology is bit-identical to the historical path; or
//! * from a parsed [`Subckt`] ([`CellTopology::from_subckt`]) — the port
//!   list is canonicalized, every device is classified into a [`Role`] by
//!   its connectivity, and the access configuration is inferred from the
//!   access transistors' polarity and orientation. A 7T/9T-style cell whose
//!   extra devices hang off dedicated `rbl`/`rwl` ports is recognized as a
//!   read-port topology and runs the decoupled-read experiment.
//!
//! # The port contract for imported cells
//!
//! A `.subckt` must expose (case-insensitively) the seven core ports
//! `q qb bl blb wl vdd vss`, plus the optional pair `rbl rwl` for a
//! decoupled read port. Exactly one device must match each core role:
//!
//! | Role        | gate | channel touches |
//! |-------------|------|-----------------|
//! | pull-up L   | `qb` | `q` and `vdd`   |
//! | pull-down L | `qb` | `q` and `vss`   |
//! | pull-up R   | `q`  | `qb` and `vdd`  |
//! | pull-down R | `q`  | `qb` and `vss`  |
//! | access L    | `wl` | `bl` and `q`    |
//! | access R    | `wl` | `blb` and `qb`  |
//!
//! Every other device is a [`Role::ReadBuffer`] auxiliary (read stacks,
//! keepers); auxiliaries keep their deck orientation and bind the access
//! width. Capacitors from `q`/`qb` to ground are *absorbed*: storage-node
//! parasitics always come from [`CellParams::c_node`], so an imported cell
//! sees exactly the same parasitic model as a generated one. All other
//! resistors and capacitors are kept verbatim.
//!
//! # Width and variation binding
//!
//! Devices never keep their deck widths or models: placement and
//! [`bind_devices`](CellTopology::bind_devices) derive both from
//! [`CellParams`] by role (pull-ups bind `w_pullup_um`, pull-downs
//! `β·w_access_um`, access and auxiliaries `w_access_um`), which is what
//! lets one compiled experiment sweep β and Monte-Carlo variations on an
//! imported cell exactly as on a generated one.

use crate::cell::{build_cell_on_lines, CellLines, CellNodes};
use crate::error::SramError;
use crate::tech::{AccessConfig, CellKind, CellParams, Role};
use std::collections::HashMap;
use std::sync::Arc;
use tfet_circuit::spice::FlatDevice;
use tfet_circuit::{Circuit, CompiledCircuit, NodeId, Subckt, SubcktCard};
use tfet_devices::{DeviceModel, Polarity};

/// One transistor slot of a topology: its instance name, its electrical
/// [`Role`] (which selects the variation stream and the width rule), its
/// polarity, and its index in the placed circuit's device vector (the
/// stamp order, which is also the bind order).
#[derive(Debug, Clone)]
pub struct DeviceSlot {
    /// Instance name (builder name for builtin cells, deck name for
    /// imported ones).
    pub name: String,
    /// Electrical role — keys the per-device process variation and the
    /// width rule.
    pub role: Role,
    /// Whether the device is n-type.
    pub n_type: bool,
    /// Device index in stamp order (the index
    /// [`CompiledCircuit::bind_device`] expects).
    pub index: usize,
}

/// A canonical node reference inside an imported cell: one of the contract
/// ports, global ground, or a cell-internal node.
#[derive(Debug, Clone, PartialEq, Eq)]
enum NodeRef {
    Q,
    Qb,
    Bl,
    Blb,
    Wl,
    Vdd,
    Vss,
    Rbl,
    Rwl,
    Gnd,
    Internal(String),
}

/// A device of an imported cell with its terminals resolved to canonical
/// references. Stored in slot order; the instance name lives on the
/// matching [`DeviceSlot`].
#[derive(Debug, Clone)]
struct DeckDevice {
    d: NodeRef,
    g: NodeRef,
    s: NodeRef,
}

/// A kept (non-absorbed) resistor or capacitor of an imported cell.
#[derive(Debug, Clone)]
struct DeckTwoTerminal {
    a: NodeRef,
    b: NodeRef,
    value: f64,
}

/// The placement recipe of an imported cell.
#[derive(Debug, Clone)]
struct DeckCell {
    /// The original definition (kept for re-export).
    subckt: Subckt,
    /// Devices in slot order (core roles first, auxiliaries after).
    devices: Vec<DeckDevice>,
    /// Extra resistors, in deck order.
    resistors: Vec<DeckTwoTerminal>,
    /// Extra capacitors (storage-node caps absorbed), in deck order.
    capacitors: Vec<DeckTwoTerminal>,
}

/// Where a topology came from — and therefore how it places.
#[derive(Debug, Clone)]
enum TopoSource {
    /// A built-in generator; placement delegates to [`crate::cell`].
    Builtin(CellKind),
    /// An imported `.subckt`; placement stamps the classified recipe.
    Deck(Box<DeckCell>),
}

/// A cell topology as data: ports, device slots with roles, access
/// orientation, read-port flag. See the module docs.
#[derive(Debug, Clone)]
pub struct CellTopology {
    source: TopoSource,
    name: String,
    access: AccessConfig,
    has_read_port: bool,
    slots: Vec<DeviceSlot>,
}

/// A cell placed into a circuit: its contract nodes plus any cell-internal
/// nodes an imported topology created (read-stack midpoints and the like —
/// an array partition must watch these too).
#[derive(Debug, Clone)]
pub struct PlacedCell {
    /// The contract nodes.
    pub nodes: CellNodes,
    /// Cell-internal nodes beyond `q`/`qb` (always empty for builtin
    /// topologies).
    pub internal: Vec<NodeId>,
}

impl CellTopology {
    /// The topology of a built-in cell kind. Placement and binding through
    /// this value are bit-identical to the historical
    /// [`build_cell`](crate::cell::build_cell) path.
    pub fn builtin(kind: CellKind) -> Self {
        let n_access = !kind.access().is_p_type();
        let mut specs = vec![
            ("MPU_L", Role::PullUpLeft, false),
            ("MPD_L", Role::PullDownLeft, true),
            ("MPU_R", Role::PullUpRight, false),
            ("MPD_R", Role::PullDownRight, true),
            ("MAL", Role::AccessLeft, n_access),
            ("MAR", Role::AccessRight, n_access),
        ];
        let has_read_port = kind == CellKind::Tfet7T;
        if has_read_port {
            specs.push(("MRD", Role::ReadBuffer, true));
        }
        let slots = specs
            .into_iter()
            .enumerate()
            .map(|(index, (name, role, n_type))| DeviceSlot {
                name: name.to_string(),
                role,
                n_type,
                index,
            })
            .collect();
        CellTopology {
            source: TopoSource::Builtin(kind),
            name: format!("{kind:?}"),
            access: kind.access(),
            has_read_port,
            slots,
        }
    }

    /// Builds a topology from a parsed `.subckt` definition. `all` resolves
    /// nested subcircuit calls; `models` resolves device model names to
    /// polarities (use [`tfet_devices::standard_models`]).
    ///
    /// # Errors
    ///
    /// [`SramError::InvalidParameter`] when the port contract is violated,
    /// a core role is missing or duplicated, a model name is unknown, or
    /// the two access devices disagree on polarity/orientation;
    /// [`SramError::Sim`] when flattening fails (unknown or recursive
    /// subcircuit).
    pub fn from_subckt(
        sub: &Subckt,
        all: &[Subckt],
        models: &HashMap<String, Arc<dyn DeviceModel>>,
    ) -> Result<Self, SramError> {
        let flat = sub.flatten(all)?;
        let bad =
            |msg: String| SramError::InvalidParameter(format!("subckt `{}`: {msg}", sub.name));

        // Canonicalize the port list.
        let mut port_map: HashMap<String, NodeRef> = HashMap::new();
        for port in &sub.ports {
            let canon = match port.to_ascii_lowercase().as_str() {
                "q" => NodeRef::Q,
                "qb" => NodeRef::Qb,
                "bl" => NodeRef::Bl,
                "blb" => NodeRef::Blb,
                "wl" => NodeRef::Wl,
                "vdd" => NodeRef::Vdd,
                "vss" => NodeRef::Vss,
                "rbl" => NodeRef::Rbl,
                "rwl" => NodeRef::Rwl,
                other => {
                    return Err(bad(format!(
                        "port `{other}` is not in the cell port contract \
                         (q qb bl blb wl vdd vss [rbl rwl])"
                    )))
                }
            };
            if port_map.values().any(|v| *v == canon) {
                return Err(bad(format!("duplicate port `{port}`")));
            }
            port_map.insert(port.clone(), canon);
        }
        for required in ["q", "qb", "bl", "blb", "wl", "vdd", "vss"] {
            if !sub.ports.iter().any(|p| p.eq_ignore_ascii_case(required)) {
                return Err(bad(format!("missing required port `{required}`")));
            }
        }
        let has_rbl = sub.ports.iter().any(|p| p.eq_ignore_ascii_case("rbl"));
        let has_rwl = sub.ports.iter().any(|p| p.eq_ignore_ascii_case("rwl"));
        if has_rbl != has_rwl {
            return Err(bad("ports rbl and rwl must be declared together".into()));
        }
        let has_read_port = has_rbl && has_rwl;

        let noderef = |n: &str| -> NodeRef {
            if n == "0" || n.eq_ignore_ascii_case("gnd") {
                NodeRef::Gnd
            } else if let Some(r) = port_map.get(n) {
                r.clone()
            } else {
                NodeRef::Internal(n.to_string())
            }
        };

        // Classify every device into a role by connectivity.
        let core_role = |d: &FlatDevice| -> Option<Role> {
            let dr = noderef(&d.d);
            let g = noderef(&d.g);
            let sr = noderef(&d.s);
            let touches = |r: NodeRef| dr == r || sr == r;
            if g == NodeRef::Qb && touches(NodeRef::Q) && touches(NodeRef::Vdd) {
                Some(Role::PullUpLeft)
            } else if g == NodeRef::Qb && touches(NodeRef::Q) && touches(NodeRef::Vss) {
                Some(Role::PullDownLeft)
            } else if g == NodeRef::Q && touches(NodeRef::Qb) && touches(NodeRef::Vdd) {
                Some(Role::PullUpRight)
            } else if g == NodeRef::Q && touches(NodeRef::Qb) && touches(NodeRef::Vss) {
                Some(Role::PullDownRight)
            } else if g == NodeRef::Wl && touches(NodeRef::Bl) && touches(NodeRef::Q) {
                Some(Role::AccessLeft)
            } else if g == NodeRef::Wl && touches(NodeRef::Blb) && touches(NodeRef::Qb) {
                Some(Role::AccessRight)
            } else {
                None
            }
        };

        const CORE: [Role; 6] = [
            Role::PullUpLeft,
            Role::PullDownLeft,
            Role::PullUpRight,
            Role::PullDownRight,
            Role::AccessLeft,
            Role::AccessRight,
        ];
        let mut by_role: HashMap<Role, Vec<usize>> = HashMap::new();
        let mut auxiliaries: Vec<usize> = Vec::new();
        for (k, dev) in flat.devices.iter().enumerate() {
            match core_role(dev) {
                Some(role) => by_role.entry(role).or_default().push(k),
                None => auxiliaries.push(k),
            }
        }
        let mut ordered: Vec<(usize, Role)> = Vec::with_capacity(flat.devices.len());
        for role in CORE {
            match by_role.get(&role).map(Vec::as_slice) {
                Some([k]) => ordered.push((*k, role)),
                Some(many) => {
                    let names: Vec<&str> = many
                        .iter()
                        .map(|&k| flat.devices[k].name.as_str())
                        .collect();
                    return Err(bad(format!(
                        "{} devices match role {role:?}: {names:?}",
                        many.len()
                    )));
                }
                None => return Err(bad(format!("no device matches role {role:?}"))),
            }
        }
        ordered.extend(auxiliaries.iter().map(|&k| (k, Role::ReadBuffer)));

        // Polarity from the model registry.
        let polarity = |k: usize| -> Result<bool, SramError> {
            let dev = &flat.devices[k];
            let model = models.get(&dev.model).ok_or_else(|| {
                bad(format!(
                    "unknown model `{}` on device `{}`",
                    dev.model, dev.name
                ))
            })?;
            Ok(model.polarity() == Polarity::N)
        };

        // Access configuration from the access transistors' polarity and
        // bitline terminal (see the orientation table in `crate::cell`).
        let access_of = |k: usize, bitline: NodeRef| -> Result<AccessConfig, SramError> {
            let dev = &flat.devices[k];
            let n = polarity(k)?;
            let at_drain = noderef(&dev.d) == bitline;
            Ok(match (n, at_drain) {
                (true, true) => AccessConfig::InwardN,
                (true, false) => AccessConfig::OutwardN,
                (false, false) => AccessConfig::InwardP,
                (false, true) => AccessConfig::OutwardP,
            })
        };
        let (al, _) = ordered[4];
        let (ar, _) = ordered[5];
        let access = access_of(al, NodeRef::Bl)?;
        let access_r = access_of(ar, NodeRef::Blb)?;
        if access != access_r {
            return Err(bad(format!(
                "access devices disagree: left is {access:?}, right is {access_r:?}"
            )));
        }

        let mut slots = Vec::with_capacity(ordered.len());
        let mut devices = Vec::with_capacity(ordered.len());
        for (index, &(k, role)) in ordered.iter().enumerate() {
            let dev = &flat.devices[k];
            slots.push(DeviceSlot {
                name: dev.name.clone(),
                role,
                n_type: polarity(k)?,
                index,
            });
            devices.push(DeckDevice {
                d: noderef(&dev.d),
                g: noderef(&dev.g),
                s: noderef(&dev.s),
            });
        }

        // Absorb storage-node parasitics; keep everything else.
        let is_storage_cap = |a: &NodeRef, b: &NodeRef| {
            let pair = |x: &NodeRef, y: &NodeRef| {
                (*x == NodeRef::Q || *x == NodeRef::Qb) && *y == NodeRef::Gnd
            };
            pair(a, b) || pair(b, a)
        };
        let two_terminal = |t: &tfet_circuit::spice::FlatTwoTerminal| DeckTwoTerminal {
            a: noderef(&t.a),
            b: noderef(&t.b),
            value: t.value,
        };
        let resistors: Vec<DeckTwoTerminal> = flat.resistors.iter().map(two_terminal).collect();
        let capacitors: Vec<DeckTwoTerminal> = flat
            .capacitors
            .iter()
            .map(two_terminal)
            .filter(|c| !is_storage_cap(&c.a, &c.b))
            .collect();

        Ok(CellTopology {
            source: TopoSource::Deck(Box::new(DeckCell {
                subckt: sub.clone(),
                devices,
                resistors,
                capacitors,
            })),
            name: sub.name.clone(),
            access,
            has_read_port,
            slots,
        })
    }

    /// The topology's name: the `CellKind` debug form for builtin cells,
    /// the `.subckt` name for imported ones.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The built-in kind, if this topology came from one.
    pub fn kind(&self) -> Option<CellKind> {
        match self.source {
            TopoSource::Builtin(kind) => Some(kind),
            TopoSource::Deck(_) => None,
        }
    }

    /// The access-transistor configuration (orientation × polarity).
    pub fn access(&self) -> AccessConfig {
        self.access
    }

    /// Whether the cell has a decoupled read port (`rbl`/`rwl`).
    pub fn has_read_port(&self) -> bool {
        self.has_read_port
    }

    /// Whether the write bitlines idle at 0 V instead of V_DD. True for
    /// read-port cells with outward access (the 7T trick: dedicated write
    /// bitlines held low avoid reverse-bias leakage through the outward
    /// access devices); all other cells clamp their bitlines high in
    /// standby.
    pub fn bl_idle_low(&self) -> bool {
        self.has_read_port && !self.access.is_inward()
    }

    /// The device slots, in stamp/bind order.
    pub fn slots(&self) -> &[DeviceSlot] {
        &self.slots
    }

    /// Number of transistors in the cell.
    pub fn device_count(&self) -> usize {
        self.slots.len()
    }

    /// The width rule for a role, µm.
    fn width_for(&self, role: Role, params: &CellParams) -> f64 {
        match role {
            Role::PullUpLeft | Role::PullUpRight => params.sizing.w_pullup_um,
            Role::PullDownLeft | Role::PullDownRight => params.sizing.w_pulldown_um(),
            Role::AccessLeft | Role::AccessRight | Role::ReadBuffer => params.sizing.w_access_um,
        }
    }

    /// Places the cell into `c` with fresh (unshared) lines and no prefix —
    /// the single-cell experiment form.
    pub fn place(&self, c: &mut Circuit, params: &CellParams) -> PlacedCell {
        self.place_named(c, params, "")
    }

    /// Places the cell with every node and instance name prefixed, creating
    /// its own line nodes.
    pub fn place_named(&self, c: &mut Circuit, params: &CellParams, prefix: &str) -> PlacedCell {
        let name = |n: &str| format!("{prefix}{n}");
        let lines = CellLines {
            bl: c.node(&name("bl")),
            blb: c.node(&name("blb")),
            wl: c.node(&name("wl")),
            vdd: c.node(&name("vdd_cell")),
            vss: c.node(&name("vss_cell")),
            rbl: if self.has_read_port {
                Some(c.node(&name("rbl")))
            } else {
                None
            },
            rwl: if self.has_read_port {
                Some(c.node(&name("rwl")))
            } else {
                None
            },
        };
        self.place_on_lines(c, params, prefix, &lines)
    }

    /// Places the cell on the given (possibly shared) lines — the array
    /// building block. Builtin topologies delegate to
    /// [`build_cell_on_lines`] and are bit-identical to it.
    ///
    /// # Panics
    ///
    /// Panics if a read-port cell is placed on lines without `rbl`/`rwl`.
    pub fn place_on_lines(
        &self,
        c: &mut Circuit,
        params: &CellParams,
        prefix: &str,
        lines: &CellLines,
    ) -> PlacedCell {
        match &self.source {
            TopoSource::Builtin(_) => PlacedCell {
                nodes: build_cell_on_lines(c, params, prefix, lines),
                internal: Vec::new(),
            },
            TopoSource::Deck(cell) => self.place_deck(cell, c, params, prefix, lines),
        }
    }

    /// Stamps an imported cell: storage nodes, then the core devices and
    /// storage caps in the builder's canonical order, then auxiliaries and
    /// kept extras. For a builder-exported 6T deck this reproduces the
    /// builder's circuit node-for-node and element-for-element.
    fn place_deck(
        &self,
        cell: &DeckCell,
        c: &mut Circuit,
        params: &CellParams,
        prefix: &str,
        lines: &CellLines,
    ) -> PlacedCell {
        let name = |n: &str| format!("{prefix}{n}");
        let q = c.node(&name("q"));
        let qb = c.node(&name("qb"));
        let mut internal: Vec<NodeId> = Vec::new();
        let mut interned: HashMap<String, NodeId> = HashMap::new();
        let mut resolve = |c: &mut Circuit, r: &NodeRef| -> NodeId {
            match r {
                NodeRef::Q => q,
                NodeRef::Qb => qb,
                NodeRef::Bl => lines.bl,
                NodeRef::Blb => lines.blb,
                NodeRef::Wl => lines.wl,
                NodeRef::Vdd => lines.vdd,
                NodeRef::Vss => lines.vss,
                NodeRef::Rbl => lines.rbl.expect("read-port cell requires an rbl line"),
                NodeRef::Rwl => lines.rwl.expect("read-port cell requires an rwl line"),
                NodeRef::Gnd => Circuit::GND,
                NodeRef::Internal(n) => {
                    if let Some(&id) = interned.get(n) {
                        id
                    } else {
                        let id = c.node(&name(n));
                        interned.insert(n.clone(), id);
                        internal.push(id);
                        id
                    }
                }
            }
        };

        for (k, slot) in self.slots.iter().enumerate() {
            if k == 4 {
                // Storage-node parasitics between the inverter pair and the
                // access devices — the builder's stamp order.
                c.capacitor(q, Circuit::GND, params.c_node);
                c.capacitor(qb, Circuit::GND, params.c_node);
            }
            let dev = &cell.devices[k];
            let d = resolve(c, &dev.d);
            let g = resolve(c, &dev.g);
            let s = resolve(c, &dev.s);
            c.transistor(
                &name(&slot.name),
                params.model(slot.role, slot.n_type),
                d,
                g,
                s,
                self.width_for(slot.role, params),
            );
        }
        for r in &cell.resistors {
            let a = resolve(c, &r.a);
            let b = resolve(c, &r.b);
            c.resistor(a, b, r.value);
        }
        for cap in &cell.capacitors {
            let a = resolve(c, &cap.a);
            let b = resolve(c, &cap.b);
            c.capacitor(a, b, cap.value);
        }

        let (rbl, rwl) = if self.has_read_port {
            (
                Some(lines.rbl.expect("read-port cell requires an rbl line")),
                Some(lines.rwl.expect("read-port cell requires an rwl line")),
            )
        } else {
            (None, None)
        };
        PlacedCell {
            nodes: CellNodes {
                q,
                qb,
                bl: lines.bl,
                blb: lines.blb,
                wl: lines.wl,
                vdd: lines.vdd,
                vss: lines.vss,
                rbl,
                rwl,
            },
            internal,
        }
    }

    /// Rebinds every device slot of a compiled single-cell experiment to
    /// the models and widths `params` implies, keyed by role. `base` is the
    /// device index the cell's first slot was stamped at (0 for single-cell
    /// experiments; a partition offset inside an array).
    pub fn bind_devices_at(
        &self,
        compiled: &mut CompiledCircuit,
        params: &CellParams,
        base: usize,
    ) {
        for slot in &self.slots {
            compiled.bind_device(
                base + slot.index,
                params.model(slot.role, slot.n_type),
                self.width_for(slot.role, params),
            );
        }
    }

    /// [`bind_devices_at`](Self::bind_devices_at) with the cell at device
    /// index 0 — the single-cell experiment form.
    pub fn bind_devices(&self, compiled: &mut CompiledCircuit, params: &CellParams) {
        self.bind_devices_at(compiled, params, 0);
    }

    /// Exports the cell as a `.subckt` definition with the canonical port
    /// list, sized by `params`. An imported topology returns its original
    /// definition (renamed); a builtin topology is built once in a scratch
    /// circuit and serialized. Round-trips through
    /// [`CellTopology::from_subckt`] to an equivalent topology.
    pub fn export_subckt(&self, params: &CellParams, name: &str) -> Subckt {
        if let TopoSource::Deck(cell) = &self.source {
            let mut sub = cell.subckt.clone();
            sub.name = name.to_string();
            return sub;
        }
        let mut scratch = Circuit::new();
        let _ = crate::cell::build_cell(&mut scratch, params);
        let canon = |id: NodeId| -> String {
            match scratch.node_name(id) {
                "vdd_cell" => "vdd".to_string(),
                "vss_cell" => "vss".to_string(),
                other => other.to_string(),
            }
        };
        let mut ports: Vec<String> = ["q", "qb", "bl", "blb", "wl", "vdd", "vss"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        if self.has_read_port {
            ports.push("rbl".to_string());
            ports.push("rwl".to_string());
        }
        let mut cards = Vec::new();
        for (k, t) in scratch.transistors().iter().enumerate() {
            if k == 4 {
                cards.push(SubcktCard::Capacitor {
                    name: "Q".to_string(),
                    a: "q".to_string(),
                    b: "0".to_string(),
                    farads: params.c_node,
                });
                cards.push(SubcktCard::Capacitor {
                    name: "QB".to_string(),
                    a: "qb".to_string(),
                    b: "0".to_string(),
                    farads: params.c_node,
                });
            }
            cards.push(SubcktCard::Device {
                name: t.name.clone(),
                d: canon(t.d),
                g: canon(t.g),
                s: canon(t.s),
                model: t.model.name().to_string(),
                width_um: t.width_um,
            });
        }
        Subckt {
            name: name.to_string(),
            ports,
            cards,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfet_devices::standard_models;

    fn models() -> HashMap<String, Arc<dyn DeviceModel>> {
        standard_models()
    }

    fn roundtrip(kind: CellKind, params: &CellParams) -> CellTopology {
        let topo = CellTopology::builtin(kind);
        let sub = topo.export_subckt(params, "cell");
        CellTopology::from_subckt(&sub, &[], &models()).expect("exported cell re-imports")
    }

    #[test]
    fn builtin_slots_match_stamp_order() {
        let topo = CellTopology::builtin(CellKind::Tfet6T(AccessConfig::InwardP));
        assert_eq!(topo.device_count(), 6);
        assert_eq!(topo.slots()[0].role, Role::PullUpLeft);
        assert_eq!(topo.slots()[5].role, Role::AccessRight);
        assert!(!topo.slots()[4].n_type, "inward-p access is p-type");
        assert_eq!(topo.access(), AccessConfig::InwardP);
        assert!(!topo.has_read_port());
        assert!(!topo.bl_idle_low());
        let t7 = CellTopology::builtin(CellKind::Tfet7T);
        assert_eq!(t7.device_count(), 7);
        assert_eq!(t7.slots()[6].role, Role::ReadBuffer);
        assert!(t7.has_read_port());
        assert!(t7.bl_idle_low(), "7T write bitlines idle low");
    }

    #[test]
    fn exported_6t_reimports_with_identical_roles() {
        let params = CellParams::tfet6t(AccessConfig::InwardP).with_beta(0.6);
        let topo = roundtrip(params.kind, &params);
        assert_eq!(topo.device_count(), 6);
        assert_eq!(topo.access(), AccessConfig::InwardP);
        let builtin = CellTopology::builtin(params.kind);
        for (a, b) in topo.slots().iter().zip(builtin.slots()) {
            assert_eq!(a.role, b.role, "{} vs {}", a.name, b.name);
            assert_eq!(a.n_type, b.n_type);
            assert_eq!(a.name, b.name);
        }
    }

    #[test]
    fn exported_deck_places_byte_identically_to_builder() {
        // The heart of the PR: a builder-exported 6T deck, re-imported and
        // placed, must reproduce the builder's circuit exactly — node
        // names, stamp order, models, widths.
        let params = CellParams::tfet6t(AccessConfig::InwardP).with_beta(0.6);
        let topo = roundtrip(params.kind, &params);
        let mut from_deck = Circuit::new();
        topo.place(&mut from_deck, &params);
        let mut from_builder = Circuit::new();
        crate::cell::build_cell(&mut from_builder, &params);
        assert_eq!(
            from_deck.to_spice("cell"),
            from_builder.to_spice("cell"),
            "deck placement must be byte-identical to the builder"
        );
    }

    #[test]
    fn every_builtin_kind_roundtrips_access_and_ports() {
        for kind in [
            CellKind::Cmos6T,
            CellKind::Tfet6T(AccessConfig::InwardN),
            CellKind::Tfet6T(AccessConfig::InwardP),
            CellKind::Tfet6T(AccessConfig::OutwardN),
            CellKind::Tfet6T(AccessConfig::OutwardP),
            CellKind::Tfet7T,
        ] {
            let params = CellParams::new(kind);
            let topo = roundtrip(kind, &params);
            assert_eq!(topo.access(), kind.access(), "{kind:?}");
            assert_eq!(topo.has_read_port(), kind == CellKind::Tfet7T, "{kind:?}");
        }
    }

    #[test]
    fn missing_port_is_rejected() {
        let params = CellParams::tfet6t(AccessConfig::InwardP);
        let topo = CellTopology::builtin(params.kind);
        let mut sub = topo.export_subckt(&params, "cell");
        sub.ports.retain(|p| p != "wl");
        let err = CellTopology::from_subckt(&sub, &[], &models()).unwrap_err();
        assert!(err.to_string().contains("wl"), "{err}");
    }

    #[test]
    fn duplicated_role_is_rejected() {
        let params = CellParams::tfet6t(AccessConfig::InwardP);
        let topo = CellTopology::builtin(params.kind);
        let mut sub = topo.export_subckt(&params, "cell");
        let dup = sub.cards[0].clone();
        sub.cards.push(dup);
        let err = CellTopology::from_subckt(&sub, &[], &models()).unwrap_err();
        assert!(err.to_string().contains("PullUpLeft"), "{err}");
    }

    #[test]
    fn unknown_model_is_rejected() {
        let params = CellParams::tfet6t(AccessConfig::InwardP);
        let topo = CellTopology::builtin(params.kind);
        let mut sub = topo.export_subckt(&params, "cell");
        if let SubcktCard::Device { model, .. } = &mut sub.cards[0] {
            *model = "mystery".to_string();
        }
        let err = CellTopology::from_subckt(&sub, &[], &models()).unwrap_err();
        assert!(err.to_string().contains("mystery"), "{err}");
    }

    #[test]
    fn storage_caps_are_absorbed_not_duplicated() {
        let params = CellParams::tfet6t(AccessConfig::InwardP);
        let topo = roundtrip(params.kind, &params);
        let mut c = Circuit::new();
        topo.place(&mut c, &params);
        // Exactly the two canonical storage caps, no extras.
        let deck_text = c.to_spice("cell");
        let cap_lines = deck_text.lines().filter(|l| l.starts_with('C')).count();
        assert_eq!(cap_lines, 2, "{deck_text}");
    }

    #[test]
    fn read_port_ports_must_come_in_pairs() {
        let params = CellParams::new(CellKind::Tfet7T);
        let topo = CellTopology::builtin(params.kind);
        let mut sub = topo.export_subckt(&params, "cell");
        sub.ports.retain(|p| p != "rwl");
        let err = CellTopology::from_subckt(&sub, &[], &models()).unwrap_err();
        assert!(err.to_string().contains("rbl"), "{err}");
    }
}
