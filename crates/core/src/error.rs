//! Error type of the SRAM analysis layer.

use std::fmt;
use tfet_circuit::SimError;

/// Errors raised while building or measuring SRAM cells.
#[derive(Debug, Clone, PartialEq)]
pub enum SramError {
    /// The underlying circuit simulation failed.
    Sim(SimError),
    /// The requested measurement is undefined for this cell (e.g. `WL_crit`
    /// of the asymmetric 6T TFET SRAM, which has no write separatrix —
    /// paper §5).
    Undefined {
        /// The metric that was requested.
        metric: &'static str,
        /// Why it is undefined for this cell.
        reason: String,
    },
    /// A parameter is out of its valid range.
    InvalidParameter(String),
    /// Too many Monte-Carlo samples were quarantined: the survivor fraction
    /// fell below the study's configured
    /// [`McConfig::min_yield`](crate::montecarlo::McConfig::min_yield).
    LowYield {
        /// Samples that produced a result.
        survivors: usize,
        /// Samples attempted.
        total: usize,
        /// The configured minimum survivor fraction.
        min_yield: f64,
    },
}

impl fmt::Display for SramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SramError::Sim(e) => write!(f, "simulation failed: {e}"),
            SramError::Undefined { metric, reason } => {
                write!(f, "{metric} is undefined for this cell: {reason}")
            }
            SramError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            SramError::LowYield {
                survivors,
                total,
                min_yield,
            } => write!(
                f,
                "Monte-Carlo yield too low: {survivors}/{total} samples survived \
                 (min_yield = {min_yield})"
            ),
        }
    }
}

impl std::error::Error for SramError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SramError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for SramError {
    fn from(e: SimError) -> Self {
        SramError::Sim(e)
    }
}

impl From<tfet_devices::VariationError> for SramError {
    fn from(e: tfet_devices::VariationError) -> Self {
        SramError::InvalidParameter(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = SramError::Sim(SimError::InvalidCircuit("x".into()));
        assert!(e.to_string().contains("simulation failed"));
        assert!(e.source().is_some());

        let e = SramError::Undefined {
            metric: "WL_crit",
            reason: "no separatrix".into(),
        };
        assert!(e.to_string().contains("WL_crit"));
        assert!(e.source().is_none());

        let e = SramError::InvalidParameter("beta".into());
        assert!(e.to_string().contains("beta"));
    }
}
