//! Array-level functional simulation.
//!
//! The paper characterizes a single cell; a downstream user builds *arrays*.
//! This module assembles an R×C array of cells sharing row wordlines and
//! column bitlines and runs full-array transients for each write or read
//! operation, carrying the storage state between operations. Every array
//! effect the paper alludes to is therefore captured physically:
//!
//! * **half-selection** — during a write, every other cell on the active row
//!   sees the wordline pulse with its column's bitlines floating at
//!   precharge (the §4.3 hazard and its standard architectural mitigation);
//! * **read disturb** — reads pulse the whole row; all cells on the row are
//!   disturbed, not just the addressed one;
//! * **destructive reads / disturbs are detected**, not assumed away: after
//!   every operation the stored state of *all* cells is re-decoded and
//!   compared.
//!
//! Operations are simulated one at a time: each assembles the bias circuit
//! for that operation (selected column driven, unselected columns floating
//! on their column capacitance), runs a transient from the carried cell
//! voltages, and folds the final voltages back into the array state — the
//! array-scale analogue of how a memory controller sequences a real part.
//!
//! Operation circuits are **compiled and cached**: the first write to
//! `(row 0, col 1)` freezes that operation's full-array topology as a
//! [`CompiledCircuit`], and every repeat of the same operation shape
//! (active row, column modes, pulse width) re-runs the frozen form with
//! only the per-cell initial conditions swapped — the carried state enters
//! through the UIC vector, never through the netlist, so reuse is
//! bit-identical to rebuilding per operation. A march test over an R×C
//! array compiles at most `R·(C+1)` distinct operation circuits and then
//! runs from cache.

use crate::cell::{build_cell_on_lines, CellLines, CellNodes};
use crate::error::SramError;
use crate::metrics::{wl_crit, WlCrit};
use crate::tech::{CellKind, CellParams, SimOptions};
use tfet_circuit::transient::InitialState;
use tfet_circuit::{Circuit, CompiledCircuit, NodeId, TransientResult, TransientSpec, Waveform};

/// Array dimensions and the cell they are built from.
#[derive(Debug, Clone)]
pub struct ArrayParams {
    /// Number of rows (wordlines).
    pub rows: usize,
    /// Number of columns (bitline pairs).
    pub cols: usize,
    /// The cell design replicated at every (row, column).
    pub cell: CellParams,
    /// Wordline pulse width used for array writes, s. Must exceed the
    /// cell's `WL_crit` with margin; [`ArrayParams::new`] derives it from
    /// the 1.5 ns reference budget scaled for the cell's supply.
    pub write_pulse: f64,
}

/// Reference array write-pulse budget at the 0.8 V supply, s. Sized for
/// the paper's proposed β = 0.6 cell with ~3× margin over its `WL_crit`.
const WRITE_PULSE_REF: f64 = 1.5e-9;

/// Minimum acceptable `write_pulse / WL_crit` ratio for
/// [`ArrayParams::check_write_margin`].
const WRITE_MARGIN: f64 = 1.5;

impl ArrayParams {
    /// An R×C array of the given cell with default operation timing. The
    /// write pulse is the 1.5 ns reference budget stretched by the same
    /// exponential supply factor the cell's own time budgets use
    /// ([`SimOptions::supply_factor`]) — exactly 1.5 ns at 0.8 V, and an
    /// exponentially longer pulse as the supply (and the cell's drive
    /// current) drops.
    pub fn new(rows: usize, cols: usize, cell: CellParams) -> Self {
        let write_pulse = WRITE_PULSE_REF * SimOptions::supply_factor(cell.vdd);
        ArrayParams {
            rows,
            cols,
            cell,
            write_pulse,
        }
    }

    /// Validates the pulse budget against the cell's measured `WL_crit`:
    /// returns the `write_pulse / WL_crit` ratio, which must be at least
    /// 1.5.
    ///
    /// # Errors
    ///
    /// [`SramError::InvalidParameter`] when the cell cannot be written at
    /// all (infinite `WL_crit`) or the margin is below 1.5×; propagates
    /// simulation failures from the `WL_crit` search.
    pub fn check_write_margin(&self) -> Result<f64, SramError> {
        self.validate()?;
        let w = match wl_crit(&self.cell, None)? {
            WlCrit::Finite(w) => w,
            WlCrit::Infinite => {
                return Err(SramError::InvalidParameter(
                    "array cell has infinite WL_crit: no pulse budget can write it".into(),
                ))
            }
            WlCrit::Unbracketable => {
                return Err(SramError::InvalidParameter(
                    "array cell WL_crit is unbracketable: its decisive write transient \
                     does not converge, so no margin can be certified"
                        .into(),
                ))
            }
        };
        let ratio = self.write_pulse / w;
        if ratio < WRITE_MARGIN {
            return Err(SramError::InvalidParameter(format!(
                "write pulse {:.3e} s is only {ratio:.2}x the cell's WL_crit {w:.3e} s \
                 (need >= {WRITE_MARGIN}x)",
                self.write_pulse
            )));
        }
        Ok(ratio)
    }

    fn validate(&self) -> Result<(), SramError> {
        self.cell.validate()?;
        if self.rows == 0 || self.cols == 0 {
            return Err(SramError::InvalidParameter(
                "array must have at least one row and one column".into(),
            ));
        }
        if self.write_pulse <= 0.0 {
            return Err(SramError::InvalidParameter(format!(
                "array write pulse must be positive, got {}",
                self.write_pulse
            )));
        }
        if self.rows * self.cols > 64 {
            return Err(SramError::InvalidParameter(format!(
                "array of {}x{} cells exceeds the 64-cell transient budget",
                self.rows, self.cols
            )));
        }
        match self.cell.kind {
            CellKind::Cmos6T | CellKind::Tfet6T(_) => Ok(()),
            other => Err(SramError::InvalidParameter(format!(
                "array simulation supports the 6T topologies, not {other:?}"
            ))),
        }
    }
}

/// Outcome of an array write.
#[derive(Debug, Clone)]
pub struct WriteReport {
    /// Whether the addressed cell holds the intended value afterwards.
    pub success: bool,
    /// Cells (row, col) whose stored bit changed although they were not
    /// addressed — half-select or row-disturb victims.
    pub disturbed: Vec<(usize, usize)>,
}

/// Outcome of an array read.
#[derive(Debug, Clone)]
pub struct ReadReport {
    /// The sensed value (sign of the bitline differential).
    pub value: bool,
    /// Magnitude of the bitline differential at the end of the wordline
    /// pulse, V.
    pub sense_margin: f64,
    /// Whether the read corrupted any cell on the row (destructive read).
    pub destructive: bool,
}

/// Artifacts of one array-operation transient.
struct OpRun {
    result: TransientResult,
    bitlines: Vec<(NodeId, NodeId)>,
    t_sense: f64,
}

/// How a column behaves during one operation.
#[derive(Debug, Clone, Copy, PartialEq)]
enum ColumnMode {
    /// Bitlines driven to write `true`/`false` into the active row.
    Drive(bool),
    /// Bitlines floating at the precharge level on the column capacitance.
    Float,
}

/// Identity of one operation circuit: everything that shapes its topology
/// or stimuli. Two operations with equal keys share a compiled circuit.
#[derive(Debug, Clone, PartialEq)]
struct OpKey {
    active_row: usize,
    modes: Vec<ColumnMode>,
    /// Pulse width as raw bits, so the key is `Eq`-style exact.
    pulse_bits: u64,
}

/// One cached operation circuit: the compiled full-array netlist plus the
/// state-independent prefix of its initial conditions. The carried cell
/// voltages are appended per run.
#[derive(Debug)]
struct CompiledOp {
    key: OpKey,
    compiled: CompiledCircuit,
    bitlines: Vec<(NodeId, NodeId)>,
    /// Per-cell node handles, row-major — the fold-back targets.
    nodes: Vec<CellNodes>,
    /// Rail/wordline/bitline initial conditions (state-independent).
    base_uic: Vec<(NodeId, f64)>,
    t_end: f64,
    t_sense: f64,
}

/// An R×C SRAM array with persistent cell state.
///
/// # Examples
///
/// ```no_run
/// use tfet_sram::array::{ArrayParams, SramArray};
/// use tfet_sram::prelude::*;
///
/// let cell = CellParams::tfet6t(AccessConfig::InwardP).with_beta(0.6);
/// let mut array = SramArray::new(ArrayParams::new(2, 2, cell))?;
/// array.write(0, 1, true)?;
/// let read = array.read(0, 1)?;
/// assert!(read.value);
/// # Ok::<(), tfet_sram::SramError>(())
/// ```
#[derive(Debug)]
pub struct SramArray {
    params: ArrayParams,
    /// `(v_q, v_qb)` per cell, row-major.
    state: Vec<(f64, f64)>,
    /// Compiled operation circuits, keyed by operation shape. Purely a
    /// cache: cleared by `clone`, never consulted for values.
    ops: Vec<CompiledOp>,
}

impl Clone for SramArray {
    /// Clones the array *state*; the compiled-operation cache starts empty
    /// in the clone (it is rebuilt on demand and never affects values).
    fn clone(&self) -> Self {
        SramArray {
            params: self.params.clone(),
            state: self.state.clone(),
            ops: Vec::new(),
        }
    }
}

impl SramArray {
    /// Creates an array with every cell initialized to `false` (q = 0).
    ///
    /// # Errors
    ///
    /// Invalid parameters (zero dimension, unsupported topology, > 64
    /// cells).
    pub fn new(params: ArrayParams) -> Result<Self, SramError> {
        params.validate()?;
        let vdd = params.cell.vdd;
        let state = vec![(0.0, vdd); params.rows * params.cols];
        Ok(SramArray {
            params,
            state,
            ops: Vec::new(),
        })
    }

    /// The array parameters.
    pub fn params(&self) -> &ArrayParams {
        &self.params
    }

    fn idx(&self, row: usize, col: usize) -> usize {
        assert!(
            row < self.params.rows && col < self.params.cols,
            "address out of range"
        );
        row * self.params.cols + col
    }

    /// Decodes a cell's stored bit; `None` if the state is degraded
    /// (storage nodes not separated by at least half the supply).
    pub fn bit(&self, row: usize, col: usize) -> Option<bool> {
        let (vq, vqb) = self.state[self.idx(row, col)];
        let sep = vq - vqb;
        if sep > 0.5 * self.params.cell.vdd {
            Some(true)
        } else if sep < -0.5 * self.params.cell.vdd {
            Some(false)
        } else {
            None
        }
    }

    /// The full decoded data pattern, row-major.
    pub fn data(&self) -> Vec<Vec<Option<bool>>> {
        (0..self.params.rows)
            .map(|r| (0..self.params.cols).map(|c| self.bit(r, c)).collect())
            .collect()
    }

    /// Raw storage-node voltages of a cell, V.
    pub fn cell_voltages(&self, row: usize, col: usize) -> (f64, f64) {
        self.state[self.idx(row, col)]
    }

    /// Runs one operation's transient against the cached compiled circuit
    /// for that operation shape (compiling it on first use), injecting the
    /// carried cell voltages through the initial conditions and folding the
    /// final voltages back into the state.
    fn run_op(
        &mut self,
        active_row: usize,
        modes: &[ColumnMode],
        pulse: f64,
    ) -> Result<OpRun, SramError> {
        let _span = tfet_obs::span("array_op");
        let key = OpKey {
            active_row,
            modes: modes.to_vec(),
            pulse_bits: pulse.to_bits(),
        };
        // Linear scan: a march test touches at most R·(C+1) distinct shapes
        // and arrays are ≤ 64 cells, so the cache stays tiny.
        let idx = match self.ops.iter().position(|op| op.key == key) {
            Some(idx) => {
                tfet_obs::counter("array.op_cache_hits", 1);
                idx
            }
            None => {
                tfet_obs::counter("array.op_compiles", 1);
                let op = self.compile_op(key)?;
                self.ops.push(op);
                self.ops.len() - 1
            }
        };
        let dt = self.params.cell.sim.dt;
        let op = &mut self.ops[idx];

        let mut uic = op.base_uic.clone();
        for (k, n) in op.nodes.iter().enumerate() {
            let (vq, vqb) = self.state[k];
            uic.push((n.q, vq));
            uic.push((n.qb, vqb));
        }

        let result = op.compiled.run(
            &TransientSpec::new(op.t_end, dt),
            &InitialState::Uic(uic),
            &[],
        )?;

        // Fold final voltages back into the array state.
        for (k, n) in op.nodes.iter().enumerate() {
            self.state[k] = (result.final_voltage(n.q), result.final_voltage(n.qb));
        }
        Ok(OpRun {
            result,
            bitlines: op.bitlines.clone(),
            t_sense: op.t_sense,
        })
    }

    /// Assembles and compiles the full-array circuit for one operation
    /// shape. Only state-independent initial conditions (rails, wordlines,
    /// bitline precharge) go into `base_uic`; the per-cell storage voltages
    /// are appended at run time, in the same cell order, so a cached run is
    /// bit-identical to a fresh build.
    fn compile_op(&self, key: OpKey) -> Result<CompiledOp, SramError> {
        let p = &self.params;
        let cell = &p.cell;
        let vdd = cell.vdd;
        let sim = &cell.sim;
        let access = cell.kind.access();
        let pulse = f64::from_bits(key.pulse_bits);

        let t_bl = sim.t_settle;
        let t_wl_on = t_bl + 50e-12;
        let t_wl_off = t_wl_on + pulse;
        let t_end = t_wl_off + sim.t_post_write;

        let mut c = Circuit::new();
        let vdd_rail = c.node("vdd_rail");
        let vss_rail = c.node("vss_rail");
        c.vsource("VDD", vdd_rail, Circuit::GND, Waveform::dc(vdd));
        c.vsource("VSS", vss_rail, Circuit::GND, Waveform::dc(0.0));

        let mut base_uic: Vec<(NodeId, f64)> = vec![(vdd_rail, vdd)];

        // Row wordlines.
        let mut wls = Vec::with_capacity(p.rows);
        for r in 0..p.rows {
            let wl = c.node(&format!("wl{r}"));
            let wave = if r == key.active_row {
                Waveform::pulse(
                    access.wl_inactive(vdd),
                    access.wl_active(vdd),
                    t_wl_on,
                    pulse,
                    sim.t_edge.min(pulse / 4.0),
                )
            } else {
                Waveform::dc(access.wl_inactive(vdd))
            };
            c.vsource(&format!("WL{r}"), wl, Circuit::GND, wave);
            base_uic.push((wl, access.wl_inactive(vdd)));
            wls.push(wl);
        }

        // Column bitlines.
        let mut bitlines = Vec::with_capacity(p.cols);
        for (col, &mode) in key.modes.iter().enumerate() {
            let bl = c.node(&format!("bl{col}"));
            let blb = c.node(&format!("blb{col}"));
            match mode {
                ColumnMode::Drive(value) => {
                    // Write `value` into q: BL carries the target q level.
                    let (v_bl, v_blb) = if value { (vdd, 0.0) } else { (0.0, vdd) };
                    let drive = |target: f64| {
                        if (target - vdd).abs() < 1e-12 {
                            Waveform::dc(vdd)
                        } else {
                            Waveform::step(vdd, target, t_bl, sim.t_edge)
                        }
                    };
                    c.vsource(&format!("BL{col}"), bl, Circuit::GND, drive(v_bl));
                    c.vsource(&format!("BLB{col}"), blb, Circuit::GND, drive(v_blb));
                }
                ColumnMode::Float => {
                    c.capacitor(bl, Circuit::GND, cell.c_bitline);
                    c.capacitor(blb, Circuit::GND, cell.c_bitline);
                }
            }
            base_uic.push((bl, vdd));
            base_uic.push((blb, vdd));
            bitlines.push((bl, blb));
        }

        // Cells. Storage-node initial conditions are appended per run.
        let mut nodes = Vec::with_capacity(p.rows * p.cols);
        for (r, &wl) in wls.iter().enumerate() {
            for (col, &(bl, blb)) in bitlines.iter().enumerate() {
                let lines = CellLines {
                    bl,
                    blb,
                    wl,
                    vdd: vdd_rail,
                    vss: vss_rail,
                    rbl: None,
                    rwl: None,
                };
                let n = build_cell_on_lines(&mut c, cell, &format!("r{r}c{col}_"), &lines);
                nodes.push(n);
            }
        }

        let compiled = CompiledCircuit::compile(c)?;
        Ok(CompiledOp {
            key,
            compiled,
            bitlines,
            nodes,
            base_uic,
            t_end,
            t_sense: t_wl_off,
        })
    }

    /// Writes `value` into the addressed cell: the addressed column is
    /// driven, all other columns float at precharge, the addressed row's
    /// wordline is pulsed.
    ///
    /// # Errors
    ///
    /// Simulation failures.
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range.
    pub fn write(&mut self, row: usize, col: usize, value: bool) -> Result<WriteReport, SramError> {
        tfet_obs::counter("array.writes", 1);
        self.idx(row, col); // bounds check
        let before: Vec<Option<bool>> = (0..self.params.rows * self.params.cols)
            .map(|k| self.bit(k / self.params.cols, k % self.params.cols))
            .collect();
        let modes: Vec<ColumnMode> = (0..self.params.cols)
            .map(|c| {
                if c == col {
                    ColumnMode::Drive(value)
                } else {
                    ColumnMode::Float
                }
            })
            .collect();
        let pulse = self.params.write_pulse;
        self.run_op(row, &modes, pulse)?;

        let mut disturbed = Vec::new();
        for r in 0..self.params.rows {
            for cc in 0..self.params.cols {
                if (r, cc) == (row, col) {
                    continue;
                }
                let k = r * self.params.cols + cc;
                if self.bit(r, cc) != before[k] {
                    disturbed.push((r, cc));
                }
            }
        }
        Ok(WriteReport {
            success: self.bit(row, col) == Some(value),
            disturbed,
        })
    }

    /// Reads the addressed cell: every column floats at precharge, the
    /// addressed row's wordline is pulsed for the cell's read window, and
    /// the addressed column's bitline differential is sensed at wordline
    /// close.
    ///
    /// # Errors
    ///
    /// Simulation failures.
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range.
    pub fn read(&mut self, row: usize, col: usize) -> Result<ReadReport, SramError> {
        tfet_obs::counter("array.reads", 1);
        self.idx(row, col); // bounds check
        let before: Vec<Option<bool>> = (0..self.params.rows * self.params.cols)
            .map(|k| self.bit(k / self.params.cols, k % self.params.cols))
            .collect();
        let modes = vec![ColumnMode::Float; self.params.cols];
        let pulse = self.params.cell.sim.t_read;
        let run = self.run_op(row, &modes, pulse)?;

        let (bl, blb) = run.bitlines[col];
        let diff = run.result.voltage_at(bl, run.t_sense) - run.result.voltage_at(blb, run.t_sense);
        let destructive = (0..self.params.rows * self.params.cols)
            .any(|k| self.bit(k / self.params.cols, k % self.params.cols) != before[k]);
        Ok(ReadReport {
            value: diff > 0.0,
            sense_margin: diff.abs(),
            destructive,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tech::AccessConfig;

    fn proposed_cell() -> CellParams {
        let mut cell = CellParams::tfet6t(AccessConfig::InwardP).with_beta(0.6);
        cell.sim.dt = 4e-12;
        cell
    }

    #[test]
    fn array_initializes_to_zeros() {
        let a = SramArray::new(ArrayParams::new(2, 2, proposed_cell())).unwrap();
        assert_eq!(
            a.data(),
            vec![
                vec![Some(false), Some(false)],
                vec![Some(false), Some(false)]
            ]
        );
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut a = SramArray::new(ArrayParams::new(2, 2, proposed_cell())).unwrap();
        let w = a.write(0, 1, true).unwrap();
        assert!(w.success, "write must land");
        assert!(
            w.disturbed.is_empty(),
            "no other cell may flip: {:?}",
            w.disturbed
        );
        assert_eq!(a.bit(0, 1), Some(true));
        assert_eq!(a.bit(0, 0), Some(false), "half-selected neighbour retains");
        assert_eq!(a.bit(1, 1), Some(false), "unselected row retains");

        let r = a.read(0, 1).unwrap();
        assert!(r.value, "read back the written 1");
        assert!(!r.destructive, "read must not corrupt the row");
        assert!(
            r.sense_margin > 0.02,
            "sense margin {:.3} V",
            r.sense_margin
        );

        let r0 = a.read(0, 0).unwrap();
        assert!(!r0.value, "neighbour still reads 0");
    }

    #[test]
    fn checkerboard_pattern_survives() {
        let mut a = SramArray::new(ArrayParams::new(2, 2, proposed_cell())).unwrap();
        for r in 0..2 {
            for c in 0..2 {
                let bit = (r + c) % 2 == 0;
                let report = a.write(r, c, bit).unwrap();
                assert!(report.success, "write ({r},{c})={bit}");
                assert!(
                    report.disturbed.is_empty(),
                    "disturbs at ({r},{c}): {:?}",
                    report.disturbed
                );
            }
        }
        for r in 0..2 {
            for c in 0..2 {
                let expect = (r + c) % 2 == 0;
                assert_eq!(a.bit(r, c), Some(expect), "cell ({r},{c})");
                let read = a.read(r, c).unwrap();
                assert_eq!(read.value, expect, "read ({r},{c})");
                assert!(!read.destructive);
            }
        }
    }

    #[test]
    fn overwrite_both_directions() {
        let mut a = SramArray::new(ArrayParams::new(1, 1, proposed_cell())).unwrap();
        for &bit in &[true, false, true, true, false] {
            let w = a.write(0, 0, bit).unwrap();
            assert!(w.success, "write {bit}");
            assert_eq!(a.bit(0, 0), Some(bit));
        }
    }

    #[test]
    fn cmos_array_works_too() {
        let mut cell = CellParams::cmos6t().with_beta(1.5);
        cell.sim.dt = 4e-12;
        let mut a = SramArray::new(ArrayParams::new(2, 1, cell)).unwrap();
        assert!(a.write(1, 0, true).unwrap().success);
        let r = a.read(1, 0).unwrap();
        assert!(r.value && !r.destructive);
    }

    #[test]
    fn rejects_unsupported_topologies_and_sizes() {
        let seven = CellParams::new(CellKind::Tfet7T);
        assert!(SramArray::new(ArrayParams::new(1, 1, seven)).is_err());
        assert!(SramArray::new(ArrayParams::new(0, 4, proposed_cell())).is_err());
        assert!(SramArray::new(ArrayParams::new(9, 8, proposed_cell())).is_err());
    }

    #[test]
    #[should_panic(expected = "address out of range")]
    fn out_of_range_address_panics() {
        let a = SramArray::new(ArrayParams::new(2, 2, proposed_cell())).unwrap();
        a.cell_voltages(2, 0);
    }

    #[test]
    fn write_pulse_tracks_supply() {
        // At the 0.8 V reference the factor is exactly 1, so the budget is
        // bit-identical to the historical 1.5 ns constant.
        let p8 = ArrayParams::new(2, 2, proposed_cell());
        assert_eq!(p8.write_pulse, 1.5e-9);
        // Below the reference the budget stretches by exp(10·(0.8 − vdd)).
        let cell6 = proposed_cell().with_vdd(0.6);
        let p6 = ArrayParams::new(2, 2, cell6);
        let expect = 1.5e-9 * (2.0f64).exp();
        assert!(
            (p6.write_pulse - expect).abs() < 1e-21,
            "0.6 V pulse = {:e}, expected {expect:e}",
            p6.write_pulse
        );
        // And the stretch is clamped at 32×.
        let cell3 = proposed_cell().with_vdd(0.3);
        let p3 = ArrayParams::new(2, 2, cell3);
        assert_eq!(p3.write_pulse, 1.5e-9 * 32.0);
    }

    #[test]
    fn write_margin_accepts_default_and_rejects_tight_budget() {
        let mut cell = proposed_cell();
        cell.sim.pulse_tol = 8e-12;
        let p = ArrayParams::new(2, 2, cell);
        // The default budget carries ~3.5× margin over the β = 0.6 cell's
        // ~430 ps WL_crit.
        let ratio = p.check_write_margin().unwrap();
        assert!(ratio > 1.5, "default margin = {ratio:.2}x");
        // A budget that barely exceeds WL_crit is rejected.
        let mut tight = p.clone();
        tight.write_pulse = 0.5e-9;
        assert!(matches!(
            tight.check_write_margin(),
            Err(SramError::InvalidParameter(_))
        ));
        // A zero budget never validates.
        let mut zero = p;
        zero.write_pulse = 0.0;
        assert!(matches!(
            zero.check_write_margin(),
            Err(SramError::InvalidParameter(_))
        ));
    }

    #[test]
    fn cached_op_reuse_is_bit_identical_to_fresh_compile() {
        // Array `a` repeats an operation shape (second read hits the cached
        // compiled circuit); array `b` is cloned right before that repeat,
        // so its cache is empty and it must compile afresh. Same state +
        // same operation ⇒ identical voltages and sense margins, bitwise.
        let mut a = SramArray::new(ArrayParams::new(2, 2, proposed_cell())).unwrap();
        a.write(0, 1, true).unwrap();
        a.read(0, 1).unwrap(); // populate the cache
        let mut b = a.clone();
        let ra = a.read(0, 1).unwrap(); // cached compiled op
        let rb = b.read(0, 1).unwrap(); // fresh compile
        assert_eq!(ra.sense_margin, rb.sense_margin);
        assert_eq!(ra.value, rb.value);
        for r in 0..2 {
            for c in 0..2 {
                assert_eq!(a.cell_voltages(r, c), b.cell_voltages(r, c), "({r},{c})");
            }
        }
    }
}
