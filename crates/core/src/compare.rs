//! The §5 four-design comparison harness (Figs. 11–12 and the prose
//! static-power / area tables).
//!
//! Competitors, exactly as in the paper:
//!
//! 1. **Proposed** — 6T TFET, inward p-type access, β = 0.6, GND-lowering
//!    read assist;
//! 2. **6T CMOS** — the 32 nm baseline (β = 1.5, conventional sizing, no
//!    assists);
//! 3. **Asymmetric 6T TFET** \[Singh, ASP-DAC'10\] — outward access with
//!    built-in ground-raise write; `WL_crit` undefined;
//! 4. **7T TFET** \[Kim, ISLPED'09\] — separate read port, +10–15 % area.

use crate::area::area_of;
use crate::assist::ReadAssist;
use crate::error::SramError;
use crate::metrics::{read_metrics, static_power, wl_crit_compiled, write_delay, WlCrit};
use crate::ops::WriteExperiment;
use crate::tech::{AccessConfig, CellKind, CellParams};

/// The four §5 designs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Design {
    /// 6T inward-p TFET, β = 0.6, GND-lowering RA (this paper's proposal).
    Proposed,
    /// 6T CMOS baseline.
    Cmos,
    /// Asymmetric 6T TFET SRAM.
    Asym6T,
    /// 7T TFET SRAM with separate read port.
    Tfet7T,
}

impl Design {
    /// All four designs in the paper's presentation order.
    pub const ALL: [Design; 4] = [
        Design::Proposed,
        Design::Cmos,
        Design::Asym6T,
        Design::Tfet7T,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Design::Proposed => "6T inpTFET SRAM with GND lowering",
            Design::Cmos => "6T CMOS SRAM",
            Design::Asym6T => "asymmetric 6T TFET SRAM",
            Design::Tfet7T => "7T TFET SRAM",
        }
    }

    /// The cell parameters this design uses at the given supply. Time
    /// budgets are rescaled for the supply (cell dynamics slow down
    /// exponentially below the 0.8 V reference).
    pub fn params(self, vdd: f64) -> CellParams {
        let mut params = match self {
            // Paper's conclusion: size for write (β ≈ 0.6), RA for read.
            Design::Proposed => CellParams::tfet6t(AccessConfig::InwardP)
                .with_beta(0.6)
                .with_vdd(vdd),
            // Conventional CMOS cell ratio.
            Design::Cmos => CellParams::cmos6t().with_beta(1.5).with_vdd(vdd),
            Design::Asym6T => CellParams::new(CellKind::TfetAsym6T)
                .with_beta(1.0)
                .with_vdd(vdd),
            // Read is decoupled, so the 7T is sized for hold/write balance.
            Design::Tfet7T => CellParams::new(CellKind::Tfet7T)
                .with_beta(1.0)
                .with_vdd(vdd),
        };
        params.sim.rescale_for_supply(vdd);
        params
    }

    /// The read assist this design deploys.
    pub fn read_assist(self) -> Option<ReadAssist> {
        match self {
            Design::Proposed => Some(ReadAssist::GndLowering),
            _ => None,
        }
    }
}

/// One design's full scorecard at one supply voltage.
#[derive(Debug, Clone)]
pub struct Scorecard {
    /// Which design.
    pub design: Design,
    /// Supply voltage, V.
    pub vdd: f64,
    /// Write delay, s (`None` = write fails at this V_DD).
    pub write_delay: Option<f64>,
    /// Read delay to 50 mV of sense signal, s.
    pub read_delay: Option<f64>,
    /// `WL_crit` (`None` = undefined for this design).
    pub wl_crit: Option<WlCrit>,
    /// DRNM, V.
    pub drnm: f64,
    /// Hold static power, W.
    pub static_power: f64,
    /// Cell area, arbitrary units.
    pub area: f64,
}

/// Measures a design's scorecard at one supply voltage.
///
/// # Errors
///
/// Propagates simulation failures (an undefined `WL_crit` for the
/// asymmetric cell is reported as `None`, not an error; a `WL_crit` search
/// whose decisive transient fails to converge is carried as
/// [`WlCrit::Unbracketable`] with the write delay reported missing).
pub fn scorecard(design: Design, vdd: f64) -> Result<Scorecard, SramError> {
    // A root span: `full_comparison` dispatches scorecards to a pool, so
    // the path must not depend on whether this call ran inline or on a
    // worker thread.
    let _span = tfet_obs::root_span("scorecard");
    let params = design.params(vdd);
    let ra = design.read_assist();
    let read = read_metrics(&params, ra)?;
    // The asymmetric cell has no WL_crit; every other design shares one
    // compiled write experiment between the WL_crit search and the
    // write-delay measurement (a generous max_pulse run) — the same circuit,
    // so the values match the historical separate builds exactly.
    let (wl, wd) = if params.kind == CellKind::TfetAsym6T {
        (None, write_delay(&params, None)?)
    } else {
        let mut wexp = WriteExperiment::compile(&params, None)?;
        let wl = wl_crit_compiled(&mut wexp, None)?.value;
        let wd = if wl.is_unbracketable() {
            // The max_pulse write transient itself does not converge (that
            // is what made the search unbracketable), so the write delay is
            // equally unmeasurable — report it missing rather than re-run
            // the same failing transient and abort the scorecard.
            None
        } else {
            let run = wexp.run(params.sim.max_pulse)?;
            if run.flipped() {
                run.write_delay()
            } else {
                None
            }
        };
        (Some(wl), wd)
    };
    Ok(Scorecard {
        design,
        vdd,
        write_delay: wd,
        read_delay: read.read_delay,
        wl_crit: wl,
        drnm: read.drnm,
        static_power: static_power(&params)?,
        area: area_of(&params),
    })
}

/// Measures all four designs across a supply sweep — the full §5 dataset.
///
/// The `vdds × designs` grid is flattened and fanned out over worker
/// threads; the returned order (supply-major, paper design order within each
/// supply) is independent of the thread count.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn full_comparison(vdds: &[f64]) -> Result<Vec<Scorecard>, SramError> {
    let designs = Design::ALL;
    tfet_numerics::par_try_map(vdds.len() * designs.len(), None, |i| {
        scorecard(designs[i % designs.len()], vdds[i / designs.len()])
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::wl_crit;

    fn fast_scorecard(design: Design, vdd: f64) -> Scorecard {
        let mut params = design.params(vdd);
        params.sim.dt = 2e-12;
        params.sim.pulse_tol = 8e-12;
        let ra = design.read_assist();
        let read = read_metrics(&params, ra).unwrap();
        let wl = match wl_crit(&params, None) {
            Ok(w) => Some(w),
            Err(SramError::Undefined { .. }) => None,
            Err(e) => panic!("{e}"),
        };
        Scorecard {
            design,
            vdd,
            write_delay: write_delay(&params, None).unwrap(),
            read_delay: read.read_delay,
            wl_crit: wl,
            drnm: read.drnm,
            static_power: static_power(&params).unwrap(),
            area: area_of(&params),
        }
    }

    #[test]
    fn proposed_design_is_fully_functional() {
        let s = fast_scorecard(Design::Proposed, 0.8);
        assert!(s.write_delay.is_some(), "write works");
        assert!(s.read_delay.is_some(), "read works");
        assert!(s.drnm > 0.0, "read is non-destructive");
        assert!(matches!(s.wl_crit, Some(WlCrit::Finite(_))));
        assert!(s.static_power < 1e-15);
    }

    #[test]
    fn asym_wl_crit_is_reported_as_none() {
        let s = fast_scorecard(Design::Asym6T, 0.8);
        assert_eq!(s.wl_crit, None);
    }

    #[test]
    fn proposed_and_7t_share_minimal_static_power_cmos_pays_orders() {
        // Paper §5: proposed ≈ 7T ≪ CMOS (6–7 orders); asym pays ~4 orders
        // over proposed at low V_DD.
        let p = fast_scorecard(Design::Proposed, 0.8);
        let c = fast_scorecard(Design::Cmos, 0.8);
        let t7 = fast_scorecard(Design::Tfet7T, 0.8);
        let same = (t7.static_power / p.static_power).log10().abs();
        assert!(same < 1.0, "proposed ≈ 7T: {same} orders apart");
        let gap = (c.static_power / p.static_power).log10();
        assert!((5.0..8.5).contains(&gap), "CMOS gap = {gap} orders");
    }

    #[test]
    fn asym_pays_orders_of_static_power_at_low_vdd() {
        let p = fast_scorecard(Design::Proposed, 0.5);
        let a = fast_scorecard(Design::Asym6T, 0.5);
        let gap = (a.static_power / p.static_power).log10();
        assert!(gap > 2.0, "asym must pay ≫ static power: {gap} orders");
    }

    #[test]
    fn seven_t_has_largest_area() {
        let areas: Vec<f64> = Design::ALL
            .iter()
            .map(|&d| fast_scorecard(d, 0.8).area)
            .collect();
        let a7 = fast_scorecard(Design::Tfet7T, 0.8).area;
        assert!(areas.iter().all(|&a| a <= a7));
    }

    #[test]
    fn cmos_writes_faster_than_proposed() {
        // Paper Fig. 11(a): bidirectional conduction gives CMOS the write
        // edge over most of the V_DD range.
        let p = fast_scorecard(Design::Proposed, 0.8);
        let c = fast_scorecard(Design::Cmos, 0.8);
        let (wp, wc) = (p.write_delay.unwrap(), c.write_delay.unwrap());
        assert!(wc < wp, "CMOS write {wc:e} must beat proposed {wp:e}");
    }

    #[test]
    fn seven_t_drnm_is_near_full_rail() {
        let s = fast_scorecard(Design::Tfet7T, 0.8);
        assert!(s.drnm > 0.7, "decoupled read: DRNM = {}", s.drnm);
    }
}
