//! SRAM cell netlist generators.
//!
//! [`build_cell`] places the transistors and storage-node parasitics of the
//! selected topology into a [`Circuit`] and returns the named nodes. It does
//! *not* attach sources or bitline loads — each operation (hold, write,
//! read) wires those differently, which is exactly the job of [`crate::ops`].
//!
//! # Orientation rules (the heart of the paper's §3)
//!
//! A TFET conducts only from drain to source (n-type) or source to drain
//! (p-type). For an access transistor between bitline `B` and storage node
//! `Q`:
//!
//! | Config   | Conducts | n/p | Terminal at bitline |
//! |----------|----------|-----|---------------------|
//! | inward n | B → Q    | n   | drain               |
//! | inward p | B → Q    | p   | source              |
//! | outward n| Q → B    | n   | source              |
//! | outward p| Q → B    | p   | drain               |
//!
//! The cross-coupled inverter devices always conduct in a fixed direction
//! (pull-up: V_DD → output, pull-down: output → V_SS), so their orientation
//! is unambiguous.

use crate::tech::{AccessConfig, CellKind, CellParams, Role};
use tfet_circuit::{Circuit, NodeId};

/// The named nodes of a placed SRAM cell.
#[derive(Debug, Clone, Copy)]
pub struct CellNodes {
    /// Storage node (left).
    pub q: NodeId,
    /// Complementary storage node (right).
    pub qb: NodeId,
    /// Bitline on the `q` side (write bitline for the 7T cell).
    pub bl: NodeId,
    /// Bitline on the `qb` side.
    pub blb: NodeId,
    /// Wordline (write wordline for the 7T cell).
    pub wl: NodeId,
    /// Cell supply rail (a distinct node so V_DD assists can reshape it).
    pub vdd: NodeId,
    /// Cell ground rail (a distinct node so GND assists can reshape it).
    pub vss: NodeId,
    /// 7T only: read bitline.
    pub rbl: Option<NodeId>,
    /// 7T only: read wordline (source line of the read buffer).
    pub rwl: Option<NodeId>,
}

/// Places an access transistor between `bitline` and `cell` with the given
/// orientation, gated by `wl`.
#[allow(clippy::too_many_arguments)] // netlist placement reads best as a terminal list
fn place_access(
    c: &mut Circuit,
    params: &CellParams,
    role: Role,
    name: &str,
    access: AccessConfig,
    bitline: NodeId,
    cell: NodeId,
    wl: NodeId,
) {
    let w = params.sizing.w_access_um;
    let model = params.model(role, !access.is_p_type());
    let (d, s) = match access {
        AccessConfig::InwardN => (bitline, cell),
        AccessConfig::InwardP => (cell, bitline),
        AccessConfig::OutwardN => (cell, bitline),
        AccessConfig::OutwardP => (bitline, cell),
    };
    c.transistor(name, model, d, wl, s, w);
}

/// Places one inverter (input `inp`, output `out`) between the cell rails.
#[allow(clippy::too_many_arguments)] // netlist placement reads best as a terminal list
fn place_inverter(
    c: &mut Circuit,
    params: &CellParams,
    pu_role: Role,
    pd_role: Role,
    label: &str,
    inp: NodeId,
    out: NodeId,
    vdd: NodeId,
    vss: NodeId,
) {
    c.transistor(
        &format!("MPU_{label}"),
        params.model(pu_role, false),
        out,
        inp,
        vdd,
        params.sizing.w_pullup_um,
    );
    c.transistor(
        &format!("MPD_{label}"),
        params.model(pd_role, true),
        out,
        inp,
        vss,
        params.sizing.w_pulldown_um(),
    );
}

/// Places the selected cell topology into `c` and returns its nodes.
///
/// The CMOS cell uses (bidirectional) n-MOS access devices wired like
/// inward-n TFETs; the distinction is immaterial for a symmetric device.
///
/// # Examples
///
/// ```
/// use tfet_circuit::Circuit;
/// use tfet_sram::cell::build_cell;
/// use tfet_sram::prelude::*;
///
/// let params = CellParams::tfet6t(AccessConfig::InwardP);
/// let mut c = Circuit::new();
/// let nodes = build_cell(&mut c, &params);
/// assert_eq!(c.transistors().len(), 6);
/// assert_ne!(nodes.q, nodes.qb);
/// ```
pub fn build_cell(c: &mut Circuit, params: &CellParams) -> CellNodes {
    build_cell_named(c, params, "")
}

/// The shared lines a cell connects to: its column's bitlines, its row's
/// wordline, and the rails. [`build_cell_on_lines`] lets many cells share
/// these nodes, which is how arrays are assembled.
#[derive(Debug, Clone, Copy)]
pub struct CellLines {
    /// Bitline (write bitline for the 7T cell).
    pub bl: NodeId,
    /// Complement bitline.
    pub blb: NodeId,
    /// Wordline.
    pub wl: NodeId,
    /// Supply rail.
    pub vdd: NodeId,
    /// Ground rail.
    pub vss: NodeId,
    /// 7T only: read bitline.
    pub rbl: Option<NodeId>,
    /// 7T only: read wordline.
    pub rwl: Option<NodeId>,
}

/// Places a cell with every node and instance name prefixed — the building
/// block for multi-cell circuits (shared wordlines/bitlines for half-select
/// studies, small arrays). Each cell gets its own line nodes; to share
/// lines between cells use [`build_cell_on_lines`].
pub fn build_cell_named(c: &mut Circuit, params: &CellParams, prefix: &str) -> CellNodes {
    let name = |n: &str| format!("{prefix}{n}");
    let lines = CellLines {
        bl: c.node(&name("bl")),
        blb: c.node(&name("blb")),
        wl: c.node(&name("wl")),
        vdd: c.node(&name("vdd_cell")),
        vss: c.node(&name("vss_cell")),
        rbl: if params.kind == CellKind::Tfet7T {
            Some(c.node(&name("rbl")))
        } else {
            None
        },
        rwl: if params.kind == CellKind::Tfet7T {
            Some(c.node(&name("rwl")))
        } else {
            None
        },
    };
    build_cell_on_lines(c, params, prefix, &lines)
}

/// Places a cell whose bitlines, wordline and rails are the given (possibly
/// shared) nodes. Storage nodes and instance names are prefixed.
///
/// # Panics
///
/// Panics if a 7T cell is placed on lines without `rbl`/`rwl`.
pub fn build_cell_on_lines(
    c: &mut Circuit,
    params: &CellParams,
    prefix: &str,
    lines: &CellLines,
) -> CellNodes {
    let name = |n: &str| format!("{prefix}{n}");
    let q = c.node(&name("q"));
    let qb = c.node(&name("qb"));
    let bl = lines.bl;
    let blb = lines.blb;
    let wl = lines.wl;
    let vdd = lines.vdd;
    let vss = lines.vss;

    // Cross-coupled inverters (identical for every topology).
    place_inverter(
        c,
        params,
        Role::PullUpLeft,
        Role::PullDownLeft,
        &name("L"),
        qb,
        q,
        vdd,
        vss,
    );
    place_inverter(
        c,
        params,
        Role::PullUpRight,
        Role::PullDownRight,
        &name("R"),
        q,
        qb,
        vdd,
        vss,
    );

    // Storage-node wiring parasitics.
    c.capacitor(q, Circuit::GND, params.c_node);
    c.capacitor(qb, Circuit::GND, params.c_node);

    let access = params.kind.access();
    place_access(c, params, Role::AccessLeft, &name("MAL"), access, bl, q, wl);
    place_access(
        c,
        params,
        Role::AccessRight,
        &name("MAR"),
        access,
        blb,
        qb,
        wl,
    );

    // 7T: single-transistor read buffer — gate on qb, drain on the read
    // bitline, source on the read wordline (active-low source line).
    let (rbl, rwl) = if params.kind == CellKind::Tfet7T {
        let rbl = lines.rbl.expect("7T cell requires an rbl line");
        let rwl = lines.rwl.expect("7T cell requires an rwl line");
        c.transistor(
            &name("MRD"),
            params.model(Role::ReadBuffer, true),
            rbl,
            qb,
            rwl,
            params.sizing.w_access_um,
        );
        (Some(rbl), Some(rwl))
    } else {
        (None, None)
    };

    CellNodes {
        q,
        qb,
        bl,
        blb,
        wl,
        vdd,
        vss,
        rbl,
        rwl,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tech::CellSizing;

    fn place(kind: CellKind) -> (Circuit, CellNodes, CellParams) {
        let mut params = CellParams::new(kind);
        params.sizing = CellSizing::with_beta(1.5);
        let mut c = Circuit::new();
        let nodes = build_cell(&mut c, &params);
        (c, nodes, params)
    }

    #[test]
    fn six_transistor_cells_have_six_transistors() {
        for kind in [
            CellKind::Cmos6T,
            CellKind::Tfet6T(AccessConfig::InwardP),
            CellKind::TfetAsym6T,
        ] {
            let (c, _, _) = place(kind);
            assert_eq!(c.transistors().len(), 6, "{kind:?}");
        }
    }

    #[test]
    fn seven_t_has_read_port() {
        let (c, nodes, _) = place(CellKind::Tfet7T);
        assert_eq!(c.transistors().len(), 7);
        assert!(nodes.rbl.is_some() && nodes.rwl.is_some());
    }

    #[test]
    fn six_t_has_no_read_port() {
        let (_, nodes, _) = place(CellKind::Cmos6T);
        assert!(nodes.rbl.is_none() && nodes.rwl.is_none());
    }

    #[test]
    fn pulldown_width_follows_beta() {
        let (c, _, params) = place(CellKind::Tfet6T(AccessConfig::InwardP));
        let pd = c
            .transistors()
            .iter()
            .find(|t| t.name == "MPD_L")
            .expect("left pull-down");
        assert!((pd.width_um - params.sizing.w_pulldown_um()).abs() < 1e-12);
        assert!((pd.width_um - 0.15).abs() < 1e-12);
    }

    #[test]
    fn inward_p_access_has_source_at_bitline() {
        let (c, nodes, _) = place(CellKind::Tfet6T(AccessConfig::InwardP));
        let mal = c
            .transistors()
            .iter()
            .find(|t| t.name == "MAL")
            .expect("left access");
        assert_eq!(mal.s, nodes.bl, "inward-p source at bitline");
        assert_eq!(mal.d, nodes.q);
        assert_eq!(mal.g, nodes.wl);
        assert_eq!(mal.model.name(), "ptfet");
    }

    #[test]
    fn outward_n_access_has_source_at_bitline() {
        let (c, nodes, _) = place(CellKind::Tfet6T(AccessConfig::OutwardN));
        let mar = c
            .transistors()
            .iter()
            .find(|t| t.name == "MAR")
            .expect("right access");
        assert_eq!(mar.d, nodes.qb, "outward-n drain at cell node");
        assert_eq!(mar.s, nodes.blb);
        assert_eq!(mar.model.name(), "ntfet");
    }

    #[test]
    fn inward_n_access_has_drain_at_bitline() {
        let (c, nodes, _) = place(CellKind::Tfet6T(AccessConfig::InwardN));
        let mal = c.transistors().iter().find(|t| t.name == "MAL").unwrap();
        assert_eq!(mal.d, nodes.bl);
        assert_eq!(mal.s, nodes.q);
        assert_eq!(mal.model.name(), "ntfet");
    }

    #[test]
    fn outward_p_access_has_drain_at_bitline() {
        let (c, nodes, _) = place(CellKind::Tfet6T(AccessConfig::OutwardP));
        let mal = c.transistors().iter().find(|t| t.name == "MAL").unwrap();
        assert_eq!(mal.d, nodes.bl);
        assert_eq!(mal.s, nodes.q);
        assert_eq!(mal.model.name(), "ptfet");
    }

    #[test]
    fn inverters_are_cross_coupled() {
        let (c, nodes, _) = place(CellKind::Cmos6T);
        let pu_l = c.transistors().iter().find(|t| t.name == "MPU_L").unwrap();
        assert_eq!(pu_l.g, nodes.qb, "left inverter input is qb");
        assert_eq!(pu_l.d, nodes.q, "left inverter output is q");
        assert_eq!(pu_l.s, nodes.vdd, "pull-up source at the supply rail");
        let pd_r = c.transistors().iter().find(|t| t.name == "MPD_R").unwrap();
        assert_eq!(pd_r.g, nodes.q);
        assert_eq!(pd_r.d, nodes.qb);
        assert_eq!(pd_r.s, nodes.vss, "pull-down source at the ground rail");
    }

    #[test]
    fn seven_t_read_buffer_wiring() {
        let (c, nodes, _) = place(CellKind::Tfet7T);
        let rd = c.transistors().iter().find(|t| t.name == "MRD").unwrap();
        assert_eq!(rd.g, nodes.qb, "read buffer gated by qb");
        assert_eq!(rd.d, nodes.rbl.unwrap());
        assert_eq!(rd.s, nodes.rwl.unwrap());
    }

    #[test]
    fn cmos_access_uses_nmos() {
        let (c, _, _) = place(CellKind::Cmos6T);
        let mal = c.transistors().iter().find(|t| t.name == "MAL").unwrap();
        assert_eq!(mal.model.name(), "nmos");
    }
}
