//! Cell parameterization: technology, access configuration, sizing,
//! supply, and per-transistor process variation.
//!
//! The paper's §3 design space is the access-transistor configuration of the
//! 6T TFET cell: TFETs conduct in one direction only, so each access device
//! is either *inward* (conducts bitline → cell) or *outward* (cell →
//! bitline), in n-type or p-type flavor — four combinations, of which only
//! inward p-type survives the static-power and writeability screens.

use crate::error::SramError;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use tfet_devices::model::{DeviceKind, DeviceModel};
use tfet_devices::{
    MosfetParams, NTfet, Nmos, PTfet, Pmos, ProcessPoint, ProcessVariation, TfetParams,
};

/// How transistor I-V characteristics are evaluated during simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DeviceEval {
    /// Evaluate the analytic model directly (the original behaviour; exact).
    #[default]
    Analytic,
    /// Serve a compiled lookup table from the process-wide corner cache
    /// ([`tfet_devices::shared_lut`]): each quantized process corner is
    /// tabulated once and shared by every cell instance and every thread.
    /// This is the fast path for Monte-Carlo and sweeps, at the cost of the
    /// LUT's interpolation error (≲ a few percent in the on region).
    CachedLut,
}

/// Orientation × polarity of a TFET access transistor (paper Fig. 3(b)–(e)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessConfig {
    /// n-type, conducting bitline → cell (drain at the bitline).
    InwardN,
    /// p-type, conducting bitline → cell (source at the bitline) — the
    /// paper's winning configuration.
    InwardP,
    /// n-type, conducting cell → bitline.
    OutwardN,
    /// p-type, conducting cell → bitline.
    OutwardP,
}

impl AccessConfig {
    /// All four configurations, in the paper's order.
    pub const ALL: [AccessConfig; 4] = [
        AccessConfig::OutwardN,
        AccessConfig::OutwardP,
        AccessConfig::InwardN,
        AccessConfig::InwardP,
    ];

    /// Whether the access device is p-type.
    pub fn is_p_type(self) -> bool {
        matches!(self, AccessConfig::InwardP | AccessConfig::OutwardP)
    }

    /// Whether the device conducts from the bitline into the cell.
    pub fn is_inward(self) -> bool {
        matches!(self, AccessConfig::InwardN | AccessConfig::InwardP)
    }

    /// The wordline level that turns the access transistor on. p-type
    /// access devices are active-low.
    pub fn wl_active(self, vdd: f64) -> f64 {
        if self.is_p_type() {
            0.0
        } else {
            vdd
        }
    }

    /// The wordline level that keeps the access transistor off.
    pub fn wl_inactive(self, vdd: f64) -> f64 {
        if self.is_p_type() {
            vdd
        } else {
            0.0
        }
    }
}

/// Cell topology under study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellKind {
    /// The 6T CMOS baseline (32 nm LP PTM-class devices).
    Cmos6T,
    /// The 6T TFET cell with the given access configuration.
    Tfet6T(AccessConfig),
    /// The 7T TFET SRAM with separate write port (outward access, write
    /// bitlines clamped to 0 in hold) and a single-transistor read buffer
    /// \[Kim, ISLPED'09\].
    Tfet7T,
    /// The asymmetric 6T TFET SRAM \[Singh, ASP-DAC'10\]: outward n-type
    /// access devices with a built-in ground-raising write mechanism. Its
    /// `WL_crit` is undefined (no separatrix); its static power depends
    /// critically on whether the architecture clamps bitlines to V_DD in
    /// hold.
    TfetAsym6T,
}

impl CellKind {
    /// Number of transistors in the cell (drives the area model).
    pub fn transistor_count(self) -> usize {
        match self {
            CellKind::Tfet7T => 7,
            _ => 6,
        }
    }

    /// Whether this is a TFET-based cell.
    pub fn is_tfet(self) -> bool {
        !matches!(self, CellKind::Cmos6T)
    }

    /// The access configuration used by this cell for wordline polarity
    /// purposes.
    pub fn access(self) -> AccessConfig {
        match self {
            CellKind::Cmos6T => AccessConfig::InwardN, // n-type, active-high WL
            CellKind::Tfet6T(a) => a,
            // 7T write port and asymmetric cell use outward n-type devices.
            CellKind::Tfet7T | CellKind::TfetAsym6T => AccessConfig::OutwardN,
        }
    }
}

/// Transistor widths. The paper's design variable is the **cell ratio β**:
/// the ratio of the inverter pull-down width to the access width.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellSizing {
    /// Access transistor width, µm.
    pub w_access_um: f64,
    /// Cell ratio β = W_pulldown / W_access.
    pub beta: f64,
    /// Pull-up width, µm (held fixed as β varies, as in the paper).
    pub w_pullup_um: f64,
}

impl CellSizing {
    /// Default sizing: 0.1 µm access devices with minimum-width (0.06 µm)
    /// pull-ups — the standard 6T discipline of keeping the pull-up the
    /// weakest device in the cell.
    pub fn with_beta(beta: f64) -> Self {
        CellSizing {
            w_access_um: 0.1,
            beta,
            w_pullup_um: 0.06,
        }
    }

    /// Pull-down width, µm.
    pub fn w_pulldown_um(&self) -> f64 {
        self.beta * self.w_access_um
    }

    /// Validates the sizing.
    pub(crate) fn validate(&self) -> Result<(), SramError> {
        if !(self.w_access_um > 0.0 && self.w_pullup_um > 0.0) {
            return Err(SramError::InvalidParameter(
                "transistor widths must be positive".into(),
            ));
        }
        if !(self.beta > 0.0 && self.beta.is_finite()) {
            return Err(SramError::InvalidParameter(format!(
                "cell ratio beta must be positive and finite, got {}",
                self.beta
            )));
        }
        Ok(())
    }
}

impl Default for CellSizing {
    fn default() -> Self {
        CellSizing::with_beta(1.0)
    }
}

/// Transistor roles within a cell, used to address per-device process
/// variation. Left = the `q` side, right = the `qb` side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// Left inverter pull-up (drives `q`).
    PullUpLeft,
    /// Left inverter pull-down.
    PullDownLeft,
    /// Right inverter pull-up (drives `qb`).
    PullUpRight,
    /// Right inverter pull-down.
    PullDownRight,
    /// Left access transistor (bitline BL ↔ `q`).
    AccessLeft,
    /// Right access transistor (bitline BLB ↔ `qb`).
    AccessRight,
    /// 7T read-buffer transistor.
    ReadBuffer,
}

impl Role {
    /// All roles, in stamp order.
    pub const ALL: [Role; 7] = [
        Role::PullUpLeft,
        Role::PullDownLeft,
        Role::PullUpRight,
        Role::PullDownRight,
        Role::AccessLeft,
        Role::AccessRight,
        Role::ReadBuffer,
    ];

    pub(crate) fn index(self) -> usize {
        match self {
            Role::PullUpLeft => 0,
            Role::PullDownLeft => 1,
            Role::PullUpRight => 2,
            Role::PullDownRight => 3,
            Role::AccessLeft => 4,
            Role::AccessRight => 5,
            Role::ReadBuffer => 6,
        }
    }

    /// Stable snake_case label — the key this role's drawn parameters use
    /// in run-report quarantine records and forensics bundles.
    pub fn label(self) -> &'static str {
        match self {
            Role::PullUpLeft => "pull_up_left",
            Role::PullDownLeft => "pull_down_left",
            Role::PullUpRight => "pull_up_right",
            Role::PullDownRight => "pull_down_right",
            Role::AccessLeft => "access_left",
            Role::AccessRight => "access_right",
            Role::ReadBuffer => "read_buffer",
        }
    }
}

/// Per-transistor process variation assignment (±5 % gate-oxide thickness,
/// paper §4.3). Defaults to the nominal process for every device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellVariations {
    deviations: [ProcessVariation; 7],
}

impl CellVariations {
    /// The nominal process for every transistor.
    pub fn nominal() -> Self {
        CellVariations {
            deviations: [ProcessVariation::nominal(); 7],
        }
    }

    /// Sets one transistor's variation (builder style).
    pub fn with(mut self, role: Role, v: ProcessVariation) -> Self {
        self.deviations[role.index()] = v;
        self
    }

    /// The variation assigned to a role.
    pub fn of(&self, role: Role) -> ProcessVariation {
        self.deviations[role.index()]
    }
}

impl Default for CellVariations {
    fn default() -> Self {
        CellVariations::nominal()
    }
}

/// Per-transistor multi-factor process assignment (t_ox + Vth mismatch +
/// drive strength) for rare-event yield studies. The paper-faithful default
/// path keeps using [`CellVariations`]; a cell only carries a `CellProcess`
/// when the factor variation model is explicitly enabled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellProcess {
    points: [ProcessPoint; 7],
}

impl CellProcess {
    /// The nominal process for every transistor.
    pub fn nominal() -> Self {
        CellProcess {
            points: [ProcessPoint::nominal(); 7],
        }
    }

    /// Sets one transistor's process point (builder style).
    pub fn with(mut self, role: Role, p: ProcessPoint) -> Self {
        self.points[role.index()] = p;
        self
    }

    /// The process point assigned to a role.
    pub fn of(&self, role: Role) -> ProcessPoint {
        self.points[role.index()]
    }
}

impl Default for CellProcess {
    fn default() -> Self {
        CellProcess::nominal()
    }
}

/// Transient step-control policy selector for experiment drivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SteppingMode {
    /// Adaptive LTE-controlled stepping seeded at `dt` (the default): the
    /// engine lands on source edges exactly and grows its step across the
    /// flat digital plateaus that dominate SRAM metric transients.
    #[default]
    Adaptive,
    /// The uniform `dt` grid — the reference path for accuracy regressions
    /// and for benches that sweep `dt` itself.
    Fixed,
}

/// Simulation timing controls. The defaults trade accuracy for speed at the
/// point where metric values change by well under 1 % with further
/// refinement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimOptions {
    /// Transient time step, s — the fixed grid under
    /// [`SteppingMode::Fixed`], the initial/seed step under
    /// [`SteppingMode::Adaptive`].
    pub dt: f64,
    /// Initial settle window before any stimulus, s.
    pub t_settle: f64,
    /// Wordline-active window during read, s.
    pub t_read: f64,
    /// Post-pulse settle window used to decide whether a write flipped the
    /// cell, s.
    pub t_post_write: f64,
    /// Largest wordline pulse width probed by the `WL_crit` search, s.
    pub max_pulse: f64,
    /// Absolute `WL_crit` search tolerance, s.
    pub pulse_tol: f64,
    /// Stimulus edge time, s.
    pub t_edge: f64,
    /// Assist strength as a fraction of V_DD. The paper fixes 30 % for its
    /// §4 comparison; the assist-level ablation bench sweeps this.
    pub assist_fraction: f64,
    /// Transient step-control policy.
    pub stepping: SteppingMode,
    /// Whether `run_write`/`run_read` may terminate a transient as soon as
    /// the storage-node outcome is decided instead of running to `t_stop`.
    pub early_exit: bool,
    /// Linear-solve engine for every Newton iteration of this experiment.
    /// Defaults to the process-wide default
    /// ([`tfet_circuit::SolverStrategy::process_default`], normally
    /// `Sparse`); set [`tfet_circuit::SolverStrategy::Dense`] to
    /// cross-check a run against the dense reference path.
    pub solver: tfet_circuit::SolverStrategy,
}

impl SimOptions {
    /// The transient spec implementing this option set for a run of
    /// `t_stop` seconds.
    pub fn spec(&self, t_stop: f64) -> tfet_circuit::TransientSpec {
        match self.stepping {
            SteppingMode::Adaptive => tfet_circuit::TransientSpec::new(t_stop, self.dt),
            SteppingMode::Fixed => tfet_circuit::TransientSpec::fixed(t_stop, self.dt),
        }
        .with_solver(self.solver)
    }
    /// Stretches every time budget by `factor` (windows, pulse search range
    /// and tolerance) and coarsens the step by `√factor` (capped at 8 ps).
    /// Used when cell dynamics slow down, e.g. at reduced supply.
    pub fn rescale(&mut self, factor: f64) {
        assert!(factor >= 1.0, "rescale factor must be ≥ 1");
        self.t_read *= factor;
        self.t_post_write *= factor;
        self.max_pulse *= factor;
        self.pulse_tol *= factor;
        self.dt = (self.dt * factor.sqrt()).min(8e-12);
    }

    /// The time-budget stretch factor for operation at the given supply:
    /// `exp(10·(0.8 − v_dd))`, clamped to `[1, 32]` — exactly 1 at the
    /// 0.8 V reference. TFET (and subthreshold CMOS) drive currents
    /// collapse exponentially below the reference, and this factor tracks
    /// the Kane-current ratio of the nominal device across the paper's
    /// 0.5–0.9 V range.
    pub fn supply_factor(vdd: f64) -> f64 {
        (10.0 * (0.8 - vdd)).exp().clamp(1.0, 32.0)
    }

    /// Rescales the time budgets for operation at the given supply by
    /// [`supply_factor`](SimOptions::supply_factor).
    pub fn rescale_for_supply(&mut self, vdd: f64) {
        let factor = Self::supply_factor(vdd);
        if factor > 1.0 {
            self.rescale(factor);
        }
    }
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            dt: 1e-12,
            t_settle: 0.2e-9,
            t_read: 2.0e-9,
            t_post_write: 1.5e-9,
            max_pulse: 4.0e-9,
            pulse_tol: 2e-12,
            t_edge: 10e-12,
            assist_fraction: crate::assist::ASSIST_FRACTION,
            stepping: SteppingMode::default(),
            early_exit: true,
            solver: tfet_circuit::SolverStrategy::default(),
        }
    }
}

/// Complete description of a cell experiment: topology, sizing, supply,
/// parasitics, process point, and simulation controls.
#[derive(Debug, Clone)]
pub struct CellParams {
    /// Cell topology.
    pub kind: CellKind,
    /// Transistor sizing.
    pub sizing: CellSizing,
    /// Supply voltage, V.
    pub vdd: f64,
    /// Bitline capacitance (per bitline), F — the column load the cell must
    /// discharge during a read.
    pub c_bitline: f64,
    /// Extra wiring capacitance on each storage node, F.
    pub c_node: f64,
    /// Per-transistor process variation.
    pub variations: CellVariations,
    /// Per-transistor multi-factor process points. `None` (the default, and
    /// the paper-faithful configuration) routes device construction through
    /// [`CellVariations`] exactly as before; `Some` takes precedence and
    /// always evaluates analytically — the compiled-LUT corner cache is
    /// keyed on t_ox alone and cannot represent the extra factors.
    pub process: Option<CellProcess>,
    /// Operating temperature, K (applied to every device model).
    pub temp_k: f64,
    /// Device evaluation strategy (analytic vs. cached LUT).
    pub eval: DeviceEval,
    /// Simulation timing controls.
    pub sim: SimOptions,
}

impl CellParams {
    /// A 6T TFET cell with the given access configuration, β = 1,
    /// V_DD = 0.8 V (the paper's default supply).
    pub fn tfet6t(access: AccessConfig) -> Self {
        CellParams::new(CellKind::Tfet6T(access))
    }

    /// The 6T CMOS baseline at β = 1, V_DD = 0.8 V.
    pub fn cmos6t() -> Self {
        CellParams::new(CellKind::Cmos6T)
    }

    /// A cell of the given topology with default parameters.
    pub fn new(kind: CellKind) -> Self {
        CellParams {
            kind,
            sizing: CellSizing::default(),
            vdd: 0.8,
            c_bitline: 20e-15,
            c_node: 0.15e-15,
            variations: CellVariations::nominal(),
            process: None,
            temp_k: 300.0,
            eval: DeviceEval::default(),
            sim: SimOptions::default(),
        }
    }

    /// Sets the cell ratio β (builder style).
    pub fn with_beta(mut self, beta: f64) -> Self {
        self.sizing.beta = beta;
        self
    }

    /// Sets the supply voltage (builder style).
    pub fn with_vdd(mut self, vdd: f64) -> Self {
        self.vdd = vdd;
        self
    }

    /// Sets the per-transistor process variations (builder style).
    pub fn with_variations(mut self, v: CellVariations) -> Self {
        self.variations = v;
        self
    }

    /// Sets the per-transistor multi-factor process points (builder style),
    /// switching device construction to the factor variation model. See
    /// [`CellParams::process`].
    pub fn with_process(mut self, p: CellProcess) -> Self {
        self.process = Some(p);
        self
    }

    /// Sets the operating temperature (builder style).
    pub fn with_temperature(mut self, temp_k: f64) -> Self {
        self.temp_k = temp_k;
        self
    }

    /// Sets the simulation controls (builder style).
    pub fn with_sim(mut self, sim: SimOptions) -> Self {
        self.sim = sim;
        self
    }

    /// Serves devices from the shared compiled-LUT corner cache instead of
    /// evaluating the analytic models directly (builder style). See
    /// [`DeviceEval::CachedLut`].
    pub fn with_lut_devices(mut self) -> Self {
        self.eval = DeviceEval::CachedLut;
        self
    }

    /// Validates parameter ranges.
    pub fn validate(&self) -> Result<(), SramError> {
        self.sizing.validate()?;
        if !(0.1..=1.5).contains(&self.vdd) {
            return Err(SramError::InvalidParameter(format!(
                "vdd {} outside the supported 0.1–1.5 V range",
                self.vdd
            )));
        }
        if self.c_bitline <= 0.0 || self.c_node <= 0.0 {
            return Err(SramError::InvalidParameter(
                "parasitic capacitances must be positive".into(),
            ));
        }
        Ok(())
    }

    /// Builds the device model for a role, applying that transistor's
    /// process variation. `n_type` selects the polarity within the
    /// technology.
    pub(crate) fn model(&self, role: Role, n_type: bool) -> Arc<dyn DeviceModel> {
        if let Some(process) = &self.process {
            return self.model_with_point(process.of(role), n_type);
        }
        self.model_with(self.variations.of(role), n_type)
    }

    /// Builds an unvaried device model in the cell's technology — the
    /// peripheral transistors of an array netlist (wordline drivers,
    /// precharge, write mux) sit outside the cell's per-role variation
    /// model and always use the nominal process.
    pub(crate) fn periph_model(&self, n_type: bool) -> Arc<dyn DeviceModel> {
        self.model_with(ProcessVariation::nominal(), n_type)
    }

    /// Builds a device model from a multi-factor process point. Always
    /// analytic: the shared LUT corner cache is keyed on
    /// [`ProcessVariation`] (t_ox only) and would silently drop the Vth and
    /// drive factors.
    fn model_with_point(&self, point: ProcessPoint, n_type: bool) -> Arc<dyn DeviceModel> {
        if self.kind.is_tfet() {
            let p = point
                .apply_tfet(&TfetParams::nominal())
                .at_temperature(self.temp_k);
            if n_type {
                Arc::new(NTfet::new(p))
            } else {
                Arc::new(PTfet::new(p))
            }
        } else {
            let p = point
                .apply_mosfet(&MosfetParams::nominal_32nm_lp())
                .at_temperature(self.temp_k);
            if n_type {
                Arc::new(Nmos::new(p))
            } else {
                Arc::new(Pmos::new(p))
            }
        }
    }

    fn model_with(&self, var: ProcessVariation, n_type: bool) -> Arc<dyn DeviceModel> {
        if self.eval == DeviceEval::CachedLut {
            let kind = if self.kind.is_tfet() {
                DeviceKind::Tfet
            } else {
                DeviceKind::Mosfet
            };
            return tfet_devices::shared_lut(kind, n_type, var, self.temp_k);
        }
        if self.kind.is_tfet() {
            let p = var
                .apply_tfet(&TfetParams::nominal())
                .at_temperature(self.temp_k);
            if n_type {
                Arc::new(NTfet::new(p))
            } else {
                Arc::new(PTfet::new(p))
            }
        } else {
            let p = var
                .apply_mosfet(&MosfetParams::nominal_32nm_lp())
                .at_temperature(self.temp_k);
            if n_type {
                Arc::new(Nmos::new(p))
            } else {
                Arc::new(Pmos::new(p))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_config_properties() {
        assert!(AccessConfig::InwardP.is_p_type());
        assert!(AccessConfig::InwardP.is_inward());
        assert!(!AccessConfig::OutwardN.is_p_type());
        assert!(!AccessConfig::OutwardN.is_inward());
        assert_eq!(AccessConfig::ALL.len(), 4);
    }

    #[test]
    fn wordline_polarity() {
        // p-type access: active low.
        assert_eq!(AccessConfig::InwardP.wl_active(0.8), 0.0);
        assert_eq!(AccessConfig::InwardP.wl_inactive(0.8), 0.8);
        // n-type access: active high.
        assert_eq!(AccessConfig::InwardN.wl_active(0.8), 0.8);
        assert_eq!(AccessConfig::InwardN.wl_inactive(0.8), 0.0);
    }

    #[test]
    fn sizing_beta_controls_pulldown() {
        let s = CellSizing::with_beta(2.0);
        assert!((s.w_pulldown_um() - 0.2).abs() < 1e-12);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn sizing_rejects_nonpositive_beta() {
        let s = CellSizing::with_beta(0.0);
        assert!(s.validate().is_err());
    }

    #[test]
    fn params_builder_chain() {
        let p = CellParams::tfet6t(AccessConfig::InwardP)
            .with_beta(0.6)
            .with_vdd(0.7);
        assert_eq!(p.kind, CellKind::Tfet6T(AccessConfig::InwardP));
        assert!((p.sizing.beta - 0.6).abs() < 1e-12);
        assert!((p.vdd - 0.7).abs() < 1e-12);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn params_validation_catches_bad_vdd() {
        let p = CellParams::cmos6t().with_vdd(3.3);
        assert!(p.validate().is_err());
    }

    #[test]
    fn variations_address_individual_transistors() {
        let v = CellVariations::nominal()
            .with(Role::AccessLeft, ProcessVariation::from_deviation(0.05));
        assert!((v.of(Role::AccessLeft).deviation() - 0.05).abs() < 1e-12);
        assert_eq!(v.of(Role::AccessRight).deviation(), 0.0);
    }

    #[test]
    fn models_reflect_technology() {
        let tfet = CellParams::tfet6t(AccessConfig::InwardP);
        assert_eq!(tfet.model(Role::PullDownLeft, true).name(), "ntfet");
        assert_eq!(tfet.model(Role::PullUpLeft, false).name(), "ptfet");
        let cmos = CellParams::cmos6t();
        assert_eq!(cmos.model(Role::PullDownLeft, true).name(), "nmos");
        assert_eq!(cmos.model(Role::AccessLeft, true).name(), "nmos");
    }

    #[test]
    fn cached_lut_models_are_shared_across_requests() {
        let p = CellParams::tfet6t(AccessConfig::InwardP).with_lut_devices();
        assert_eq!(p.eval, DeviceEval::CachedLut);
        let a = p.model(Role::PullDownLeft, true);
        let b = p.model(Role::PullDownRight, true);
        assert!(
            Arc::ptr_eq(&a, &b),
            "same-corner devices must share one compiled table"
        );
        assert_eq!(a.name(), "ntfet-lut");
        // The analytic default is untouched.
        let q = CellParams::tfet6t(AccessConfig::InwardP);
        assert_eq!(q.eval, DeviceEval::Analytic);
        assert_eq!(q.model(Role::PullDownLeft, true).name(), "ntfet");
    }

    #[test]
    fn process_points_take_precedence_and_stay_analytic() {
        let point = ProcessPoint::try_new(0.0, 0.05, 0.0).unwrap();
        let p = CellParams::tfet6t(AccessConfig::InwardP)
            .with_lut_devices()
            .with_process(CellProcess::nominal().with(Role::PullDownLeft, point));
        // Factor-model devices never come from the LUT corner cache.
        assert_eq!(p.model(Role::PullDownLeft, true).name(), "ntfet");
        // A nominal process assignment reproduces the nominal analytic model.
        let nominal =
            CellParams::tfet6t(AccessConfig::InwardP).with_process(CellProcess::nominal());
        assert_eq!(nominal.model(Role::AccessLeft, true).name(), "ntfet");
    }

    #[test]
    fn kind_metadata() {
        assert_eq!(CellKind::Tfet7T.transistor_count(), 7);
        assert_eq!(CellKind::Cmos6T.transistor_count(), 6);
        assert!(CellKind::Tfet7T.is_tfet());
        assert!(!CellKind::Cmos6T.is_tfet());
        assert_eq!(CellKind::Cmos6T.access(), AccessConfig::InwardN);
        assert_eq!(CellKind::TfetAsym6T.access(), AccessConfig::OutwardN);
    }
}
