//! 6T tunneling-FET SRAM design study — the core library of this workspace.
//!
//! This crate reproduces the system of *Robust 6T Si tunneling transistor
//! SRAM design* (Yang & Mohanram, DATE 2011) on top of the
//! `tfet-devices` compact models and the `tfet-circuit` simulator:
//!
//! * [`tech`] — cell parameterization: technology, access-transistor
//!   configuration (inward/outward × n/p — the paper's §3 design space),
//!   cell-ratio β sizing, supply voltage, per-transistor process variation;
//! * [`cell`] — netlist generators for the 6T cell (CMOS or TFET),
//!   plus the comparison topologies of §5: the 7T TFET SRAM with a separate
//!   read port \[Kim, ISLPED'09\] and the asymmetric 6T TFET SRAM
//!   \[Singh, ASP-DAC'10\];
//! * [`assist`] — the four write-assist and four read-assist techniques of
//!   §4, each expressed as a reshaped bias waveform at 30 % of V_DD;
//! * [`ops`] — hold / write / read operation drivers (timing schedules,
//!   stimulus construction), each also available as a *compiled
//!   experiment* ([`ops::WriteExperiment`], [`ops::ReadExperiment`]) that
//!   builds its circuit once and re-runs it under rebound pulse widths and
//!   device variations — the engine behind every sweep, search and
//!   Monte-Carlo batch in the crate;
//! * [`metrics`] — the paper's measurements: hold static power, dynamic
//!   read noise margin (DRNM), critical wordline pulse width (WL_crit),
//!   and write/read delays;
//! * [`montecarlo`] — §4.3's ±5 % gate-oxide-thickness Monte-Carlo;
//! * [`rare_event`] — scaled-sigma importance sampling over a correlated
//!   multi-factor process model: tail failure probabilities (write failure
//!   past the pulse budget, DRNM below threshold) at 5–6σ depths that
//!   brute force cannot reach;
//! * [`snm`] — classical static noise margins (Seevinck butterfly), the
//!   baseline metric family the paper's dynamic approach replaces;
//! * [`array`](mod@array) — array-level functional simulation: shared wordlines and
//!   bitlines, half-select physics, disturb detection;
//! * [`array_netlist`] — the fast-SPICE array engine: R×C cells with
//!   wordline-driver, precharge and write-mux peripherals compiled once
//!   into a single circuit, re-run under rebound control waveforms, and
//!   accelerated by the circuit crate's quiescent-partition latency tier;
//! * [`explore`] — β sweeps and assist-technique comparisons (Figs. 4–8);
//! * [`compare`] — the §5 four-design comparison across V_DD (Figs. 11–12
//!   and the static-power/area tables);
//! * [`area`] — the relative cell-area model.
//!
//! # Quickstart
//!
//! ```
//! use tfet_sram::prelude::*;
//!
//! // The paper's proposed design: 6T, inward p-TFET access, β = 0.6,
//! // GND-lowering read assist.
//! let params = CellParams::tfet6t(AccessConfig::InwardP)
//!     .with_beta(0.6)
//!     .with_vdd(0.8);
//! let power = metrics::static_power(&params)?;
//! assert!(power < 1e-15, "TFET hold power is femtowatt-scale: {power:e}");
//!
//! let read = metrics::read_metrics(&params, Some(ReadAssist::GndLowering))?;
//! assert!(read.drnm > 0.0, "read must not destroy the cell");
//! # Ok::<(), tfet_sram::SramError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod array;
pub mod array_netlist;
pub mod assist;
pub mod cell;
pub mod compare;
pub mod error;
pub mod explore;
pub mod metrics;
pub mod montecarlo;
pub mod ops;
pub mod rare_event;
pub mod snm;
pub mod tech;
pub mod topology;

pub use error::SramError;

/// Convenient glob-import surface for examples and tests.
pub mod prelude {
    pub use crate::array_netlist::{ArrayNetlist, ArraySpec};
    pub use crate::assist::{ReadAssist, WriteAssist};
    pub use crate::error::SramError;
    pub use crate::metrics::{self, WlCrit, WlCritRun};
    pub use crate::montecarlo::{McConfig, McDrnm, McWlCrit, QuarantinedSample};
    pub use crate::ops::{ReadExperiment, WriteExperiment};
    pub use crate::rare_event::{
        yield_read, yield_write, Factor, QuarantinedYieldSample, VariationModel, YieldConfig,
        YieldMetric, YieldStudy,
    };
    pub use crate::tech::{
        AccessConfig, CellKind, CellParams, CellSizing, DeviceEval, SimOptions, SteppingMode,
    };
    pub use crate::topology::{CellTopology, DeviceSlot, PlacedCell};
    pub use tfet_circuit::{DeviceLatency, SolverStrategy};
}
