//! Design-space exploration sweeps (the engines behind Figs. 4, 6, 7, 8).
//!
//! Each function returns plain data series so the bench harness and the
//! figure binaries can print them in the paper's own coordinates. Sweep
//! points are independent simulations, so every sweep fans out over worker
//! threads ([`tfet_numerics::parallel::par_try_map_with`]) while returning
//! points in grid order — identical output at any thread count. Each worker
//! compiles its experiment circuits once and retargets them per β through
//! device binds ([`WriteExperiment::bind_cell`] and friends); the compiled
//! circuit is a cache, so values never depend on which worker evaluated a
//! point.

use crate::assist::{ReadAssist, WriteAssist};
use crate::error::SramError;
use crate::metrics::{
    read_metrics_compiled, read_metrics_on, wl_crit_compiled, wl_crit_on, WlCrit,
};
use crate::ops::{ReadExperiment, WriteExperiment};
use crate::tech::CellParams;
use crate::topology::CellTopology;
use tfet_numerics::parallel::par_try_map_with;

/// Evaluates the first grid point cold (serially) and returns its finite
/// `WL_crit` — if any — as the bracket seed for the remaining points.
///
/// `WL_crit` varies smoothly (and monotonically) in β, so the first point's
/// answer lands the seeded search of every later point inside a narrow
/// bracket. The hint is computed once and shared, never chained point to
/// point, so the fanned-out points stay independent and the sweep output is
/// identical at any thread count.
fn first_point_hint(first: WlCrit) -> Option<f64> {
    first.as_finite()
}

/// One point of a β sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BetaPoint {
    /// Cell ratio β.
    pub beta: f64,
    /// DRNM at this β, V.
    pub drnm: f64,
    /// `WL_crit` at this β.
    pub wl_crit: WlCrit,
}

/// Sweeps β for a cell (no assists): the Fig. 4 study.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn beta_sweep(base: &CellParams, betas: &[f64]) -> Result<Vec<BetaPoint>, SramError> {
    beta_sweep_topo(&CellTopology::builtin(base.kind), base, betas)
}

/// [`beta_sweep`] for an explicit topology — the entry point for cells that
/// exist only as an imported `.subckt`.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn beta_sweep_topo(
    topo: &CellTopology,
    base: &CellParams,
    betas: &[f64],
) -> Result<Vec<BetaPoint>, SramError> {
    let Some((&beta0, rest)) = betas.split_first() else {
        return Ok(Vec::new());
    };
    let params0 = base.clone().with_beta(beta0);
    let first = BetaPoint {
        beta: beta0,
        drnm: read_metrics_on(topo, &params0, None)?.drnm,
        wl_crit: wl_crit_on(topo, &params0, None)?,
    };
    let hint = first_point_hint(first.wl_crit);
    let tail = par_try_map_with(
        rest.len(),
        None,
        || None,
        |slot: &mut Option<(ReadExperiment, WriteExperiment)>, i| -> Result<_, SramError> {
            let beta = rest[i];
            let params = base.clone().with_beta(beta);
            match slot {
                Some((read, write)) => {
                    read.bind_cell(&params)?;
                    write.bind_cell(&params)?;
                }
                None => {
                    *slot = Some((
                        ReadExperiment::compile_on(topo, &params, None)?,
                        WriteExperiment::compile_on(topo, &params, None)?,
                    ));
                }
            }
            let (read, write) = slot.as_mut().expect("compiled above");
            Ok(BetaPoint {
                beta,
                drnm: read_metrics_compiled(read)?.drnm,
                wl_crit: wl_crit_compiled(write, hint)?.value,
            })
        },
    )?;
    let mut pts = Vec::with_capacity(betas.len());
    pts.push(first);
    pts.extend(tail);
    Ok(pts)
}

/// One point of a write-assist sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaPoint {
    /// Cell ratio β.
    pub beta: f64,
    /// `WL_crit` with the assist in force.
    pub wl_crit: WlCrit,
}

/// Sweeps β for one write-assist technique (Fig. 6(e)). WA techniques are
/// deployed at β > 1 (the cell is sized for reliable *read*, the assist
/// recovers the write).
///
/// # Errors
///
/// Propagates simulation failures.
pub fn write_assist_sweep(
    base: &CellParams,
    assist: WriteAssist,
    betas: &[f64],
) -> Result<Vec<WaPoint>, SramError> {
    write_assist_sweep_topo(&CellTopology::builtin(base.kind), base, assist, betas)
}

/// [`write_assist_sweep`] for an explicit topology.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn write_assist_sweep_topo(
    topo: &CellTopology,
    base: &CellParams,
    assist: WriteAssist,
    betas: &[f64],
) -> Result<Vec<WaPoint>, SramError> {
    let Some((&beta0, rest)) = betas.split_first() else {
        return Ok(Vec::new());
    };
    let first = WaPoint {
        beta: beta0,
        wl_crit: wl_crit_on(topo, &base.clone().with_beta(beta0), Some(assist))?,
    };
    let hint = first_point_hint(first.wl_crit);
    let tail = par_try_map_with(
        rest.len(),
        None,
        || None,
        |slot: &mut Option<WriteExperiment>, i| -> Result<_, SramError> {
            let beta = rest[i];
            let params = base.clone().with_beta(beta);
            match slot {
                Some(exp) => exp.bind_cell(&params)?,
                None => *slot = Some(WriteExperiment::compile_on(topo, &params, Some(assist))?),
            }
            let exp = slot.as_mut().expect("compiled above");
            Ok(WaPoint {
                beta,
                wl_crit: wl_crit_compiled(exp, hint)?.value,
            })
        },
    )?;
    let mut pts = Vec::with_capacity(betas.len());
    pts.push(first);
    pts.extend(tail);
    Ok(pts)
}

/// One point of a read-assist sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RaPoint {
    /// Cell ratio β.
    pub beta: f64,
    /// DRNM with the assist in force, V.
    pub drnm: f64,
}

/// Sweeps β for one read-assist technique (Fig. 7(e)). RA techniques are
/// deployed at β < 1 (the cell is sized for reliable *write*, the assist
/// recovers the read).
///
/// # Errors
///
/// Propagates simulation failures.
pub fn read_assist_sweep(
    base: &CellParams,
    assist: ReadAssist,
    betas: &[f64],
) -> Result<Vec<RaPoint>, SramError> {
    read_assist_sweep_topo(&CellTopology::builtin(base.kind), base, assist, betas)
}

/// [`read_assist_sweep`] for an explicit topology.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn read_assist_sweep_topo(
    topo: &CellTopology,
    base: &CellParams,
    assist: ReadAssist,
    betas: &[f64],
) -> Result<Vec<RaPoint>, SramError> {
    par_try_map_with(
        betas.len(),
        None,
        || None,
        |slot: &mut Option<ReadExperiment>, i| -> Result<_, SramError> {
            let beta = betas[i];
            let params = base.clone().with_beta(beta);
            match slot {
                Some(exp) => exp.bind_cell(&params)?,
                None => *slot = Some(ReadExperiment::compile_on(topo, &params, Some(assist))?),
            }
            let exp = slot.as_mut().expect("compiled above");
            Ok(RaPoint {
                beta,
                drnm: read_metrics_compiled(exp)?.drnm,
            })
        },
    )
}

/// A technique's operating curve in the (DRNM, `WL_crit`) plane — one point
/// per β (Fig. 8). For WA techniques the *read* runs unassisted and the
/// *write* assisted; for RA techniques vice versa. The paper seeks the
/// curve closest to the lower-right corner (large DRNM, small `WL_crit`).
#[derive(Debug, Clone)]
pub struct TradeoffCurve {
    /// Technique label (paper legend).
    pub label: String,
    /// `(drnm, wl_crit)` pairs; write-failing points are omitted.
    pub points: Vec<(f64, f64)>,
}

/// Builds the Fig. 8 tradeoff curve for one write-assist technique.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn wa_tradeoff(
    base: &CellParams,
    assist: WriteAssist,
    betas: &[f64],
) -> Result<TradeoffCurve, SramError> {
    wa_tradeoff_topo(&CellTopology::builtin(base.kind), base, assist, betas)
}

/// [`wa_tradeoff`] for an explicit topology.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn wa_tradeoff_topo(
    topo: &CellTopology,
    base: &CellParams,
    assist: WriteAssist,
    betas: &[f64],
) -> Result<TradeoffCurve, SramError> {
    let mut points = Vec::with_capacity(betas.len());
    if let Some((&beta0, rest)) = betas.split_first() {
        let params0 = base.clone().with_beta(beta0);
        let drnm0 = read_metrics_on(topo, &params0, None)?.drnm;
        let wl0 = wl_crit_on(topo, &params0, Some(assist))?;
        let hint = first_point_hint(wl0);
        points.push(wl0.as_finite().map(|w| (drnm0, w)));
        let tail = par_try_map_with(
            rest.len(),
            None,
            || None,
            |slot: &mut Option<(ReadExperiment, WriteExperiment)>, i| -> Result<_, SramError> {
                let params = base.clone().with_beta(rest[i]);
                match slot {
                    Some((read, write)) => {
                        read.bind_cell(&params)?;
                        write.bind_cell(&params)?;
                    }
                    None => {
                        *slot = Some((
                            ReadExperiment::compile_on(topo, &params, None)?,
                            WriteExperiment::compile_on(topo, &params, Some(assist))?,
                        ));
                    }
                }
                let (read, write) = slot.as_mut().expect("compiled above");
                let drnm = read_metrics_compiled(read)?.drnm;
                Ok(match wl_crit_compiled(write, hint)?.value {
                    WlCrit::Finite(w) => Some((drnm, w)),
                    // Unbracketable: the search's decisive transient failed
                    // to converge — the point is unmeasurable, not a curve
                    // killer; skip it like an unwritable one.
                    WlCrit::Infinite | WlCrit::Unbracketable => None,
                })
            },
        )?;
        points.extend(tail);
    }
    Ok(TradeoffCurve {
        label: format!("{} WA", assist.label()),
        points: points.into_iter().flatten().collect(),
    })
}

/// Builds the Fig. 8 tradeoff curve for one read-assist technique.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn ra_tradeoff(
    base: &CellParams,
    assist: ReadAssist,
    betas: &[f64],
) -> Result<TradeoffCurve, SramError> {
    ra_tradeoff_topo(&CellTopology::builtin(base.kind), base, assist, betas)
}

/// [`ra_tradeoff`] for an explicit topology.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn ra_tradeoff_topo(
    topo: &CellTopology,
    base: &CellParams,
    assist: ReadAssist,
    betas: &[f64],
) -> Result<TradeoffCurve, SramError> {
    let mut points = Vec::with_capacity(betas.len());
    if let Some((&beta0, rest)) = betas.split_first() {
        let params0 = base.clone().with_beta(beta0);
        let drnm0 = read_metrics_on(topo, &params0, Some(assist))?.drnm;
        let wl0 = wl_crit_on(topo, &params0, None)?;
        let hint = first_point_hint(wl0);
        points.push(wl0.as_finite().map(|w| (drnm0, w)));
        let tail = par_try_map_with(
            rest.len(),
            None,
            || None,
            |slot: &mut Option<(ReadExperiment, WriteExperiment)>, i| -> Result<_, SramError> {
                let params = base.clone().with_beta(rest[i]);
                match slot {
                    Some((read, write)) => {
                        read.bind_cell(&params)?;
                        write.bind_cell(&params)?;
                    }
                    None => {
                        *slot = Some((
                            ReadExperiment::compile_on(topo, &params, Some(assist))?,
                            WriteExperiment::compile_on(topo, &params, None)?,
                        ));
                    }
                }
                let (read, write) = slot.as_mut().expect("compiled above");
                let drnm = read_metrics_compiled(read)?.drnm;
                Ok(match wl_crit_compiled(write, hint)?.value {
                    WlCrit::Finite(w) => Some((drnm, w)),
                    // Skip unmeasurable points — see `wa_tradeoff`.
                    WlCrit::Infinite | WlCrit::Unbracketable => None,
                })
            },
        )?;
        points.extend(tail);
    }
    Ok(TradeoffCurve {
        label: format!("{} RA", assist.label()),
        points: points.into_iter().flatten().collect(),
    })
}

/// Scores a tradeoff curve by its best proximity to the "lower-right
/// corner": for each point, `WL_crit` (s) is traded against DRNM (V); lower
/// is better. The score is the minimum over the curve of
/// `wl_crit / wl_scale − drnm / drnm_scale`.
pub fn corner_score(curve: &TradeoffCurve, wl_scale: f64, drnm_scale: f64) -> Option<f64> {
    curve
        .points
        .iter()
        .map(|&(drnm, wl)| wl / wl_scale - drnm / drnm_scale)
        .min_by(|a, b| a.partial_cmp(b).expect("finite scores"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tech::AccessConfig;

    fn fast(params: CellParams) -> CellParams {
        let mut p = params;
        p.sim.dt = 2e-12;
        p.sim.pulse_tol = 8e-12;
        p
    }

    #[test]
    fn beta_sweep_reproduces_fig4_shape() {
        let base = fast(CellParams::tfet6t(AccessConfig::InwardP));
        let pts = beta_sweep(&base, &[0.5, 1.0, 2.0]).unwrap();
        assert_eq!(pts.len(), 3);
        // DRNM grows with β…
        assert!(pts[2].drnm > pts[0].drnm);
        // …writes succeed at small β and fail at large β.
        assert!(!pts[0].wl_crit.is_infinite());
        assert!(pts[2].wl_crit.is_infinite());
    }

    #[test]
    fn gnd_raising_keeps_working_at_high_beta() {
        // Fig. 6(e): rail-based assist keeps enabling writes as β grows.
        let base = fast(CellParams::tfet6t(AccessConfig::InwardP));
        let pts = write_assist_sweep(&base, WriteAssist::GndRaising, &[1.5, 2.5, 3.5]).unwrap();
        assert!(
            pts.iter().all(|p| !p.wl_crit.is_infinite()),
            "GND raising must enable writes: {pts:?}"
        );
    }

    #[test]
    fn access_assists_beat_rail_assists_at_low_beta() {
        // Fig. 6(e): at low β, strengthening the access transistor
        // (wordline lowering / bitline raising) yields a much smaller
        // WL_crit than weakening the inverters (GND raising).
        let base = fast(CellParams::tfet6t(AccessConfig::InwardP));
        let beta = [1.2];
        let wll = write_assist_sweep(&base, WriteAssist::WordlineLowering, &beta).unwrap()[0]
            .wl_crit
            .as_finite()
            .expect("WLL writes at low β");
        let gndr = write_assist_sweep(&base, WriteAssist::GndRaising, &beta).unwrap()[0]
            .wl_crit
            .as_finite()
            .expect("GNDR writes at low β");
        assert!(wll < 0.5 * gndr, "WLL {wll:e} must beat GNDR {gndr:e}");
    }

    #[test]
    fn read_assist_sweep_improves_on_unassisted() {
        let base = fast(CellParams::tfet6t(AccessConfig::InwardP));
        let betas = [0.6];
        let plain = beta_sweep(&base, &betas).unwrap()[0].drnm;
        let assisted = read_assist_sweep(&base, ReadAssist::GndLowering, &betas).unwrap()[0].drnm;
        assert!(assisted > plain);
    }

    #[test]
    fn tradeoff_curves_have_labels_and_points() {
        let base = fast(CellParams::tfet6t(AccessConfig::InwardP));
        let curve = ra_tradeoff(&base, ReadAssist::GndLowering, &[0.6]).unwrap();
        assert_eq!(curve.label, "GND lowering RA");
        assert_eq!(curve.points.len(), 1);
        assert!(corner_score(&curve, 1e-9, 0.1).is_some());
    }

    #[test]
    fn corner_score_of_empty_curve_is_none() {
        let curve = TradeoffCurve {
            label: "x".into(),
            points: vec![],
        };
        assert_eq!(corner_score(&curve, 1e-9, 0.1), None);
    }
}
