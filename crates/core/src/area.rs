//! Relative cell-area model.
//!
//! The paper reports area only comparatively: the three 6T designs (CMOS,
//! proposed, asymmetric) "have the minimum number of transistors and hence
//! occupy the least area", while the 7T's extra read port costs "an
//! unavoidable area increase of 10–15 %". Absolute layout is out of scope
//! for a circuit-level study, so this model charges each transistor its
//! width plus a fixed pitch overhead (contacts, isolation) — enough to
//! reproduce the ranking and the 10–15 % delta, which is all the paper
//! claims.

use crate::tech::{CellKind, CellParams, CellSizing};

/// Fixed per-transistor overhead expressed in µm of equivalent width
/// (diffusion contacts, gate pitch, isolation).
const PITCH_OVERHEAD_UM: f64 = 0.14;

/// Area of a cell in arbitrary units (µm of width-equivalent).
pub fn cell_area(kind: CellKind, sizing: &CellSizing) -> f64 {
    let w_acc = sizing.w_access_um;
    let w_pd = sizing.w_pulldown_um();
    let w_pu = sizing.w_pullup_um;
    // 2 pull-ups + 2 pull-downs + 2 access…
    let mut area = 2.0 * (w_pu + w_pd + w_acc) + 6.0 * PITCH_OVERHEAD_UM;
    // …plus the 7T read buffer, which shares diffusion with the cell and
    // therefore pays only half a pitch of extra overhead.
    if kind == CellKind::Tfet7T {
        area += w_acc + 0.5 * PITCH_OVERHEAD_UM;
    }
    area
}

/// Area of a parameterized cell.
pub fn area_of(params: &CellParams) -> f64 {
    cell_area(params.kind, &params.sizing)
}

/// Area relative to a reference cell (e.g. the proposed design), as a ratio.
pub fn relative_area(params: &CellParams, reference: &CellParams) -> f64 {
    area_of(params) / area_of(reference)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tech::AccessConfig;

    #[test]
    fn six_t_cells_have_equal_area_at_equal_sizing() {
        let s = CellSizing::with_beta(0.6);
        let a_cmos = cell_area(CellKind::Cmos6T, &s);
        let a_tfet = cell_area(CellKind::Tfet6T(AccessConfig::InwardP), &s);
        let a_asym = cell_area(CellKind::TfetAsym6T, &s);
        assert_eq!(a_cmos, a_tfet);
        assert_eq!(a_tfet, a_asym);
    }

    #[test]
    fn seven_t_costs_ten_to_fifteen_percent() {
        // Paper §5: the 7T's extra transistor costs 10–15 % area.
        let s = CellSizing::with_beta(0.6);
        let six = cell_area(CellKind::Tfet6T(AccessConfig::InwardP), &s);
        let seven = cell_area(CellKind::Tfet7T, &s);
        let overhead = seven / six - 1.0;
        assert!(
            (0.10..=0.20).contains(&overhead),
            "7T overhead = {:.1} %",
            overhead * 100.0
        );
    }

    #[test]
    fn area_grows_with_beta() {
        let small = cell_area(CellKind::Cmos6T, &CellSizing::with_beta(0.6));
        let large = cell_area(CellKind::Cmos6T, &CellSizing::with_beta(2.0));
        assert!(large > small);
    }

    #[test]
    fn relative_area_of_reference_is_one() {
        let p = CellParams::tfet6t(AccessConfig::InwardP).with_beta(0.6);
        assert!((relative_area(&p, &p) - 1.0).abs() < 1e-12);
    }
}
