//! Operation drivers: hold, write, and read.
//!
//! Each driver assembles a complete experiment circuit around the cell —
//! rails, wordline pulse, driven or floating bitlines, assist windows — and
//! runs the appropriate analysis. The timing scheme (all relative to
//! [`SimOptions`]):
//!
//! ```text
//! t = 0 ············ t_settle ·· +50 ps ········ +width ········· t_end
//! |  state settles  | bitlines  | WL pulse      | WL off,        |
//! |  under hold     | driven    | (assist       | cell settles   |
//! |  bias           | to data   |  bracketing)  |                |
//! ```
//!
//! Reads keep the wordline active for the whole `t_read` window with the
//! bitlines *floating* on their column capacitance (precharged via initial
//! conditions), which is what lets the cell develop a sense differential.
//!
//! # Compiled experiments
//!
//! Every metric in the pipeline re-runs one of these drivers many times
//! with only a stimulus or a device binding changed: a WL_crit bisection
//! sweeps the pulse width, a Monte-Carlo batch sweeps device variations, a
//! β-sweep sweeps gate widths. [`WriteExperiment`] and [`ReadExperiment`]
//! therefore split each driver into the circuit crate's compile/bind/run
//! stages: `compile` builds and freezes the experiment circuit once,
//! [`WriteExperiment::run`] binds the per-run stimuli (pulse width, assist
//! windows) through typed [`ParamHandle`]s and executes against the frozen
//! form, and [`bind_cell`](WriteExperiment::bind_cell) swaps the six (or
//! seven) transistor bindings for a varied or re-sized cell without
//! re-tessellating anything. The legacy one-shot entry points
//! ([`run_write`], [`run_read`]) are thin wrappers that compile and run
//! once, so their numbers — and the numbers of every reused compiled
//! experiment — are bit-identical to the historical build-per-run path.

use crate::assist::{read_bias, write_bias, ReadAssist, WriteAssist, WriteBias};
use crate::cell::CellNodes;
use crate::error::SramError;
use crate::tech::{CellKind, CellParams, SimOptions};
use crate::topology::CellTopology;
use tfet_circuit::transient::InitialState;
use tfet_circuit::{
    Circuit, CompiledCircuit, NodeId, ParamHandle, SolveStats, SourceId, StopEvent,
    TransientResult, Waveform,
};

/// Assist windows open this long *before* the wordline pulse (paper
/// Figs. 6–7 timing diagrams assert the assist first). The lead matters
/// physically for rail-based write assists in a unidirectional cell: the
/// stored-1 node can only follow a lowered supply through the pull-up's
/// weak reverse (ambipolar) conduction, which takes time.
const ASSIST_LEAD: f64 = 200e-12;

/// Assist windows close this long after the wordline pulse.
const ASSIST_LAG: f64 = 20e-12;

/// Delay between the bitlines switching to write data and the wordline
/// pulse, so the lines are quiet when the cell opens.
const BL_TO_WL_DELAY: f64 = 50e-12;

/// A waveform that rests at `base` and holds `level` over `[t0, t1]`
/// (with `t_edge` ramps), or plain DC when no excursion is needed.
fn windowed(base: f64, level: f64, t0: f64, t1: f64, t_edge: f64) -> Waveform {
    if (level - base).abs() < 1e-15 {
        Waveform::dc(base)
    } else {
        Waveform::pulse(base, level, t0, t1 - t0, t_edge)
    }
}

/// Wires the two cell rails to ground-referenced sources, in the canonical
/// VDD-then-VSS order every driver uses. Returns `(vdd, vss)` source ids.
fn wire_rails(
    c: &mut Circuit,
    nodes: &CellNodes,
    vdd_wave: Waveform,
    vss_wave: Waveform,
) -> (SourceId, SourceId) {
    let vdd_id = c.vsource("VDD", nodes.vdd, Circuit::GND, vdd_wave);
    let vss_id = c.vsource("VSS", nodes.vss, Circuit::GND, vss_wave);
    (vdd_id, vss_id)
}

/// The rail excursion waveforms for an assist window `[t0, t1]`: VDD rests
/// at `vdd`, VSS at 0 V, and each visits its bias level only if the assist
/// actually moves it (DC otherwise).
fn rail_waves(
    vdd: f64,
    vdd_level: f64,
    vss_level: f64,
    t0: f64,
    t1: f64,
    t_edge: f64,
) -> (Waveform, Waveform) {
    (
        windowed(vdd, vdd_level, t0, t1, t_edge),
        windowed(0.0, vss_level, t0, t1, t_edge),
    )
}

/// Checks that `params` describes a cell a compiled experiment can absorb
/// through device binds alone: same topology, supply, timing and fixed
/// capacitances. Everything else (models, widths, variations, temperature)
/// is bindable.
fn check_bindable(
    params: &CellParams,
    kind: CellKind,
    vdd: f64,
    sim: &SimOptions,
    c_bitline: f64,
    c_node: f64,
) -> Result<(), SramError> {
    params.validate()?;
    if params.kind != kind {
        return Err(SramError::InvalidParameter(format!(
            "compiled experiment is for {kind:?}, cannot bind {:?}",
            params.kind
        )));
    }
    if (params.vdd - vdd).abs() > 1e-15 {
        return Err(SramError::InvalidParameter(format!(
            "compiled experiment waveforms are frozen at vdd = {vdd} V, cannot bind {} V",
            params.vdd
        )));
    }
    if params.sim != *sim {
        return Err(SramError::InvalidParameter(
            "compiled experiment timing is frozen; sim options must match".into(),
        ));
    }
    if params.c_bitline != c_bitline || params.c_node != c_node {
        return Err(SramError::InvalidParameter(
            "compiled experiment capacitors are frozen; c_bitline/c_node must match".into(),
        ));
    }
    Ok(())
}

/// A hold-configured cell: all lines at their standby levels.
#[derive(Debug)]
pub struct HoldSetup {
    /// The assembled circuit.
    pub circuit: Circuit,
    /// Cell nodes.
    pub nodes: CellNodes,
    /// Every source in the circuit (for power accounting).
    pub sources: Vec<SourceId>,
    /// DC guess that selects the `q = 1` state.
    pub guess: Vec<(NodeId, f64)>,
}

/// Builds the hold configuration: wordline(s) inactive, bitlines clamped at
/// their standby levels — V_DD for the 6T cells (the paper's "traditionally
/// clamped at V_DD"), 0 V for the 7T cell's dedicated write bitlines (the
/// trick that lets it use outward access devices without paying reverse-bias
/// leakage).
///
/// # Errors
///
/// Returns [`SramError::InvalidParameter`] for invalid parameters.
pub fn hold_setup(params: &CellParams) -> Result<HoldSetup, SramError> {
    hold_setup_on(&CellTopology::builtin(params.kind), params)
}

/// [`hold_setup`] for an explicit topology — the entry point for cells that
/// exist only as an imported `.subckt`.
///
/// # Errors
///
/// Returns [`SramError::InvalidParameter`] for invalid parameters.
pub fn hold_setup_on(topo: &CellTopology, params: &CellParams) -> Result<HoldSetup, SramError> {
    params.validate()?;
    let vdd = params.vdd;
    let mut c = Circuit::new();
    let nodes = topo.place(&mut c, params).nodes;
    let mut sources = Vec::new();

    let (vdd_id, vss_id) = wire_rails(&mut c, &nodes, Waveform::dc(vdd), Waveform::dc(0.0));
    sources.push(vdd_id);
    sources.push(vss_id);
    let access = topo.access();
    sources.push(c.vsource(
        "WL",
        nodes.wl,
        Circuit::GND,
        Waveform::dc(access.wl_inactive(vdd)),
    ));

    let bl_hold = if topo.bl_idle_low() { 0.0 } else { vdd };
    sources.push(c.vsource("BL", nodes.bl, Circuit::GND, Waveform::dc(bl_hold)));
    sources.push(c.vsource("BLB", nodes.blb, Circuit::GND, Waveform::dc(bl_hold)));

    if let (Some(rbl), Some(rwl)) = (nodes.rbl, nodes.rwl) {
        sources.push(c.vsource("RBL", rbl, Circuit::GND, Waveform::dc(vdd)));
        sources.push(c.vsource("RWL", rwl, Circuit::GND, Waveform::dc(vdd)));
    }

    let guess = vec![(nodes.q, vdd), (nodes.qb, 0.0)];
    Ok(HoldSetup {
        circuit: c,
        nodes,
        sources,
        guess,
    })
}

/// A completed write transient.
#[derive(Debug)]
pub struct WriteRun {
    /// Recorded waveforms.
    pub result: TransientResult,
    /// Cell nodes.
    pub nodes: CellNodes,
    /// Wordline pulse start, s.
    pub t_wl_on: f64,
    /// Wordline pulse end, s.
    pub t_wl_off: f64,
    /// End of the recorded run, s.
    pub t_end: f64,
    /// Supply voltage, V.
    pub vdd: f64,
}

impl WriteRun {
    /// Whether the write succeeded: the cell, initially `q = 1`, must hold
    /// `q = 0` after the pulse and the post-write settle.
    pub fn flipped(&self) -> bool {
        let dq = self.result.final_voltage(self.nodes.qb) - self.result.final_voltage(self.nodes.q);
        dq > 0.3 * self.vdd
    }

    /// Write delay: wordline activation → the storage nodes cross the
    /// separatrix (`V(qb)` overtakes `V(q)`), `None` if they never do
    /// (failed write). This is where CMOS's bidirectional access devices
    /// shine — both sides of the cell are driven — while a TFET cell must
    /// wait for the inverter feedback to bring the second node along.
    pub fn write_delay(&self) -> Option<f64> {
        let times = self.result.times();
        let q = self.result.trace(self.nodes.q);
        let qb = self.result.trace(self.nodes.qb);
        for (k, &t) in times.iter().enumerate() {
            if t >= self.t_wl_on && qb[k] >= q[k] {
                return Some(t - self.t_wl_on);
            }
        }
        None
    }
}

/// A write experiment compiled for repeated execution.
///
/// [`compile`](WriteExperiment::compile) assembles the `q: 1 → 0` write
/// circuit once — cell, rails, wordline, data bitlines, read-port clamps —
/// and freezes it as a [`CompiledCircuit`]. Each
/// [`run`](WriteExperiment::run) then binds only what a new pulse width
/// changes (the wordline pulse and, for assisted cells, the rail windows)
/// and re-executes against the frozen form with the reused Newton
/// workspace. [`bind_cell`](WriteExperiment::bind_cell) retargets the
/// experiment at a varied or re-sized cell of the same topology, which is
/// how Monte-Carlo samples and β-sweeps avoid rebuilding per point.
#[derive(Debug)]
pub struct WriteExperiment {
    compiled: CompiledCircuit,
    nodes: CellNodes,
    vdd_h: ParamHandle,
    vss_h: ParamHandle,
    wl_h: ParamHandle,
    topo: CellTopology,
    kind: CellKind,
    vdd: f64,
    wl_inactive: f64,
    bias: WriteBias,
    sim: SimOptions,
    c_bitline: f64,
    c_node: f64,
    initial: InitialState,
}

impl WriteExperiment {
    /// Compiles the write experiment for `params`.
    ///
    /// The asymmetric 6T cell always runs with its built-in (modified)
    /// ground raising; other cells use `assist` as given. Data bitline
    /// waveforms and the initial condition are pulse-width-independent, so
    /// they are frozen here; the wordline and assist windows are bound per
    /// [`run`](WriteExperiment::run).
    ///
    /// # Errors
    ///
    /// Invalid parameters and structurally bad netlists.
    pub fn compile(params: &CellParams, assist: Option<WriteAssist>) -> Result<Self, SramError> {
        Self::compile_on(&CellTopology::builtin(params.kind), params, assist)
    }

    /// [`compile`](Self::compile) for an explicit topology — the entry
    /// point for cells that exist only as an imported `.subckt`. The
    /// stimulus schedule is derived entirely from the topology's data
    /// (access configuration, read-port flag, bitline idle level), so any
    /// cell satisfying the port contract runs the same write protocol.
    ///
    /// # Errors
    ///
    /// Invalid parameters and structurally bad netlists.
    pub fn compile_on(
        topo: &CellTopology,
        params: &CellParams,
        assist: Option<WriteAssist>,
    ) -> Result<Self, SramError> {
        params.validate()?;
        let vdd = params.vdd;
        let sim = params.sim;
        // The asymmetric 6T TFET SRAM's write mechanism *is* a modified
        // ground raising (paper §4 intro / [Singh, ASP-DAC'10]).
        let assist = if params.kind == CellKind::TfetAsym6T {
            Some(WriteAssist::GndRaising)
        } else {
            assist
        };
        let access = topo.access();
        let bias = write_bias(assist, vdd, access, sim.assist_fraction);
        let t_bl = sim.t_settle;

        let mut c = Circuit::new();
        let nodes = topo.place(&mut c, params).nodes;

        // Rails start at their DC hold levels; an assisted run rebinds them
        // to the windowed excursion once the window timing is known.
        let (vdd_id, vss_id) = wire_rails(&mut c, &nodes, Waveform::dc(vdd), Waveform::dc(0.0));
        let wl_inactive = access.wl_inactive(vdd);
        // Wordline placeholder: every run binds the actual pulse.
        let wl_id = c.vsource("WL", nodes.wl, Circuit::GND, Waveform::dc(wl_inactive));

        // Bitline data: BL (q side) driven toward 0, BLB toward the
        // (possibly raised) high level. Read-port cells with outward access
        // idle their write bitlines at 0, so only BLB moves. Both waveforms
        // are final at compile.
        let bl_hold = if topo.bl_idle_low() { 0.0 } else { vdd };
        let bl_wave = if bl_hold == 0.0 {
            Waveform::dc(0.0)
        } else {
            Waveform::step(bl_hold, 0.0, t_bl, sim.t_edge)
        };
        c.vsource("BL", nodes.bl, Circuit::GND, bl_wave);
        let blb_wave = if (bias.bl_high - bl_hold).abs() < 1e-15 {
            Waveform::dc(bl_hold)
        } else {
            Waveform::step(bl_hold, bias.bl_high, t_bl, sim.t_edge)
        };
        c.vsource("BLB", nodes.blb, Circuit::GND, blb_wave);

        let mut uic = vec![
            (nodes.q, vdd),
            (nodes.qb, 0.0),
            (nodes.bl, bl_hold),
            (nodes.blb, bl_hold),
            (nodes.wl, wl_inactive),
            (nodes.vdd, vdd),
        ];
        if let (Some(rbl), Some(rwl)) = (nodes.rbl, nodes.rwl) {
            c.vsource("RBL", rbl, Circuit::GND, Waveform::dc(vdd));
            c.vsource("RWL", rwl, Circuit::GND, Waveform::dc(vdd));
            uic.push((rbl, vdd));
            uic.push((rwl, vdd));
        }

        let compiled = CompiledCircuit::compile(c)?;
        let vdd_h = compiled.param(vdd_id);
        let vss_h = compiled.param(vss_id);
        let wl_h = compiled.param(wl_id);
        Ok(WriteExperiment {
            compiled,
            nodes,
            vdd_h,
            vss_h,
            wl_h,
            topo: topo.clone(),
            kind: params.kind,
            vdd,
            wl_inactive,
            bias,
            sim,
            c_bitline: params.c_bitline,
            c_node: params.c_node,
            initial: InitialState::Uic(uic),
        })
    }

    /// The cell kind this experiment's parameters were compiled with. For
    /// a deck-imported cell this is the *parameterization* kind (model
    /// family, β rules), not the wiring — see
    /// [`topology`](Self::topology) for the wiring.
    pub fn kind(&self) -> CellKind {
        self.kind
    }

    /// The cell topology this experiment was compiled on.
    pub fn topology(&self) -> &CellTopology {
        &self.topo
    }

    /// The frozen simulation options (timing, tolerances).
    pub fn sim(&self) -> &SimOptions {
        &self.sim
    }

    /// Cumulative solver effort across every run of this experiment — the
    /// **lifetime** view, as opposed to the per-run
    /// [`TransientResult::stats`] each [`run`](WriteExperiment::run)
    /// returns. See the [`SolveStats`] docs for the two semantics.
    pub fn lifetime_stats(&self) -> &SolveStats {
        self.compiled.lifetime_stats()
    }

    /// Retargets the compiled experiment at a different cell of the same
    /// topology: rebinds every transistor model and width from `params`
    /// (sizing, variations, temperature, device mode). The frozen supply,
    /// timing and capacitances must match, because the compile-time
    /// waveforms and initial conditions depend on them.
    ///
    /// # Errors
    ///
    /// [`SramError::InvalidParameter`] for invalid parameters or a cell the
    /// frozen circuit cannot represent.
    pub fn bind_cell(&mut self, params: &CellParams) -> Result<(), SramError> {
        check_bindable(
            params,
            self.kind,
            self.vdd,
            &self.sim,
            self.c_bitline,
            self.c_node,
        )?;
        self.topo.bind_devices(&mut self.compiled, params);
        Ok(())
    }

    /// Runs the write with a wordline pulse of the given width, binding
    /// the per-run stimuli and executing against the compiled form.
    ///
    /// # Errors
    ///
    /// Simulation failures and non-positive pulse widths.
    pub fn run(&mut self, pulse_width: f64) -> Result<WriteRun, SramError> {
        let _span = tfet_obs::span("write");
        if pulse_width <= 0.0 {
            return Err(SramError::InvalidParameter(format!(
                "pulse width must be positive, got {pulse_width}"
            )));
        }
        let sim = self.sim;
        let vdd = self.vdd;
        let t_bl = sim.t_settle;
        let t_wl_on = t_bl + BL_TO_WL_DELAY;
        let t_wl_off = t_wl_on + pulse_width;
        let t_end = t_wl_off + sim.t_post_write;
        let t_a0 = (t_wl_on - ASSIST_LEAD).max(0.3 * sim.t_settle);
        let t_a1 = t_wl_off + ASSIST_LAG;
        // Narrow pulses get proportionally faster edges.
        let edge_wl = sim.t_edge.min(pulse_width / 4.0);

        let (vdd_wave, vss_wave) = rail_waves(
            vdd,
            self.bias.vdd_level,
            self.bias.vss_level,
            t_a0,
            t_a1,
            sim.t_edge,
        );
        // Unassisted rails stay DC at every pulse width — exactly the
        // compile-time placeholder — so only assisted windows rebind.
        if !vdd_wave.is_dc() {
            self.compiled.bind_wave(self.vdd_h, vdd_wave);
        }
        if !vss_wave.is_dc() {
            self.compiled.bind_wave(self.vss_h, vss_wave);
        }
        self.compiled.bind_wave(
            self.wl_h,
            Waveform::pulse(
                self.wl_inactive,
                self.bias.wl_active,
                t_wl_on,
                pulse_width,
                edge_wl,
            ),
        );

        // Early exit: once the wordline and every assist rail are back at
        // their hold levels, a storage-node differential beyond the
        // regeneration margin has committed the cell either way — the
        // flip/no-flip verdict (`flipped()` tests ±0.3·V_DD at t_end) can
        // no longer change, so the rest of the post-write settle carries no
        // information. The 0.35·V_DD margin keeps a safety band over the
        // verdict threshold: borderline trajectories that hover inside it
        // run to completion.
        let events = [StopEvent::decided(
            self.nodes.qb,
            self.nodes.q,
            0.35 * vdd,
            t_a1 + 2.0 * sim.t_edge,
        )];
        let result = self.compiled.run(
            &sim.spec(t_end),
            &self.initial,
            if sim.early_exit { &events } else { &[] },
        )?;
        Ok(WriteRun {
            result,
            nodes: self.nodes,
            t_wl_on,
            t_wl_off,
            t_end,
            vdd,
        })
    }
}

/// Runs a write of `q: 1 → 0` with a wordline pulse of the given width.
///
/// The asymmetric 6T cell always runs with its built-in (modified) ground
/// raising; other cells use `assist` as given. One-shot wrapper around
/// [`WriteExperiment`]: compiles, runs once, discards the compiled form.
///
/// # Errors
///
/// Simulation failures and invalid parameters.
pub fn run_write(
    params: &CellParams,
    assist: Option<WriteAssist>,
    pulse_width: f64,
) -> Result<WriteRun, SramError> {
    WriteExperiment::compile(params, assist)?.run(pulse_width)
}

/// How a read develops its sense signal.
#[derive(Debug, Clone, Copy)]
enum SenseMode {
    /// Differential bitlines: sense when `V(plus) − V(minus)` reaches the
    /// threshold.
    Differential {
        /// The line that stays high (or charges up).
        plus: NodeId,
        /// The line the cell discharges (or that stays low).
        minus: NodeId,
    },
    /// Single-ended droop from a precharged level (7T read bitline).
    Droop {
        /// The sensed line.
        node: NodeId,
        /// Its precharge level, V.
        from: f64,
    },
}

/// A completed read transient.
#[derive(Debug)]
pub struct ReadRun {
    /// Recorded waveforms.
    pub result: TransientResult,
    /// Cell nodes.
    pub nodes: CellNodes,
    /// Wordline activation time, s.
    pub t_wl_on: f64,
    /// Wordline deactivation time, s.
    pub t_wl_off: f64,
    sense: SenseMode,
}

impl ReadRun {
    /// Dynamic read noise margin: the minimum of `V(q_high) − V(q_low)` over
    /// the wordline-active window (paper's DRNM, after [Dehaene,
    /// ESSCIRC'07]). Non-positive means the read flipped the cell.
    ///
    /// The cell is read in the `q = 0` state, so this is
    /// `min(V(qb) − V(q))`.
    pub fn drnm(&self) -> f64 {
        self.result
            .min_difference(self.nodes.qb, self.nodes.q, self.t_wl_on, self.t_wl_off)
    }

    /// Read delay: wordline activation → `dv_sense` of signal on the sense
    /// line(s); `None` if the signal never develops within the window.
    pub fn read_delay(&self, dv_sense: f64) -> Option<f64> {
        let times = self.result.times();
        for (k, &t) in times.iter().enumerate() {
            if t < self.t_wl_on || t > self.t_wl_off {
                continue;
            }
            let sig = match self.sense {
                SenseMode::Differential { plus, minus } => {
                    self.result.trace(plus)[k] - self.result.trace(minus)[k]
                }
                SenseMode::Droop { node, from } => from - self.result.trace(node)[k],
            };
            if sig >= dv_sense {
                return Some(t - self.t_wl_on);
            }
        }
        None
    }
}

/// A read experiment compiled for repeated execution.
///
/// Read timing never varies per run — the wordline is active for the whole
/// `t_read` window — so everything (stimuli, precharge initial conditions,
/// stop events) is frozen at [`compile`](ReadExperiment::compile) time and
/// [`run`](ReadExperiment::run) takes no arguments.
/// [`bind_cell`](ReadExperiment::bind_cell) swaps the transistor bindings
/// for a varied or re-sized cell, which is how Monte-Carlo DRNM batches and
/// β-sweeps reuse one compiled circuit.
#[derive(Debug)]
pub struct ReadExperiment {
    compiled: CompiledCircuit,
    nodes: CellNodes,
    topo: CellTopology,
    kind: CellKind,
    vdd: f64,
    sim: SimOptions,
    c_bitline: f64,
    c_node: f64,
    t_wl_on: f64,
    t_wl_off: f64,
    t_end: f64,
    sense: SenseMode,
    initial: InitialState,
    events: [StopEvent; 1],
}

impl ReadExperiment {
    /// Compiles the `q = 0` read experiment for `params`.
    ///
    /// Bitlines float on `c_bitline` from their precharge level;
    /// inward/CMOS cells precharge high (the cell discharges the `q`-side
    /// line), outward cells precharge low (the cell charges the `qb`-side
    /// line), and the 7T cell senses its dedicated read bitline through the
    /// read buffer without touching the storage nodes.
    ///
    /// # Errors
    ///
    /// Invalid parameters and structurally bad netlists.
    pub fn compile(params: &CellParams, assist: Option<ReadAssist>) -> Result<Self, SramError> {
        Self::compile_on(&CellTopology::builtin(params.kind), params, assist)
    }

    /// [`compile`](Self::compile) for an explicit topology — the entry
    /// point for cells that exist only as an imported `.subckt`. A
    /// read-port topology reads through its `rbl`/`rwl` buffer with the
    /// write port quiescent; everything else reads differentially on
    /// floating bitlines.
    ///
    /// # Errors
    ///
    /// Invalid parameters and structurally bad netlists.
    pub fn compile_on(
        topo: &CellTopology,
        params: &CellParams,
        assist: Option<ReadAssist>,
    ) -> Result<Self, SramError> {
        params.validate()?;
        let vdd = params.vdd;
        let sim = params.sim;
        let access = topo.access();
        let bias = read_bias(assist, vdd, access, sim.assist_fraction);

        let t_wl_on = sim.t_settle;
        let t_wl_off = t_wl_on + sim.t_read;
        let t_end = t_wl_off + 0.3e-9;

        let mut c = Circuit::new();
        let nodes = topo.place(&mut c, params).nodes;

        let t_ra0 = (t_wl_on - ASSIST_LEAD).max(0.3 * sim.t_settle);
        let (vdd_wave, vss_wave) = rail_waves(
            vdd,
            bias.vdd_level,
            bias.vss_level,
            t_ra0,
            t_wl_off,
            sim.t_edge,
        );
        wire_rails(&mut c, &nodes, vdd_wave, vss_wave);

        let mut uic = vec![
            (nodes.q, 0.0),
            (nodes.qb, vdd),
            (nodes.vdd, vdd),
            (nodes.wl, access.wl_inactive(vdd)),
        ];

        let sense = if topo.has_read_port() {
            // Write port quiescent at its idle level; read through the
            // buffer on RBL/RWL.
            let idle = if topo.bl_idle_low() { 0.0 } else { vdd };
            c.vsource("BL", nodes.bl, Circuit::GND, Waveform::dc(idle));
            c.vsource("BLB", nodes.blb, Circuit::GND, Waveform::dc(idle));
            c.vsource(
                "WL",
                nodes.wl,
                Circuit::GND,
                Waveform::dc(access.wl_inactive(vdd)),
            );
            let rbl = nodes.rbl.expect("read-port cell has rbl");
            let rwl = nodes.rwl.expect("read-port cell has rwl");
            c.capacitor(rbl, Circuit::GND, params.c_bitline);
            c.vsource(
                "RWL",
                rwl,
                Circuit::GND,
                Waveform::pulse(vdd, 0.0, t_wl_on, sim.t_read, sim.t_edge),
            );
            if idle != 0.0 {
                uic.push((nodes.bl, idle));
                uic.push((nodes.blb, idle));
            }
            uic.push((rbl, vdd));
            uic.push((rwl, vdd));
            SenseMode::Droop {
                node: rbl,
                from: vdd,
            }
        } else {
            // 6T cells: wordline pulse, floating bitlines on their column
            // caps.
            c.vsource(
                "WL",
                nodes.wl,
                Circuit::GND,
                Waveform::pulse(
                    access.wl_inactive(vdd),
                    bias.wl_active,
                    t_wl_on,
                    sim.t_read,
                    sim.t_edge,
                ),
            );
            c.capacitor(nodes.bl, Circuit::GND, params.c_bitline);
            c.capacitor(nodes.blb, Circuit::GND, params.c_bitline);
            // CMOS access is inward-n, so this one predicate covers both
            // the CMOS baseline and inward TFET cells.
            let precharge = if access.is_inward() {
                bias.bl_precharge
            } else {
                // Outward cells read by charging a low-precharged line.
                0.0
            };
            uic.push((nodes.bl, precharge));
            uic.push((nodes.blb, precharge));
            // Either polarity senses the same differential: precharged-high
            // columns droop on the q = 0 side, precharged-low columns
            // charge on the qb = 1 side — both make V(blb) − V(bl) grow
            // positive.
            SenseMode::Differential {
                plus: nodes.blb,
                minus: nodes.bl,
            }
        };

        // Early exit for the post-window tail only: the DRNM window
        // [t_wl_on, t_wl_off] is always recorded in full; once the wordline
        // (and any assist) has closed, a storage differential committed
        // past ±0.75·V_DD means the cell has settled back (or irrecoverably
        // flipped) and the remaining tail is quiescent.
        let events = [StopEvent::decided(
            nodes.qb,
            nodes.q,
            0.75 * vdd,
            t_wl_off + 2.0 * sim.t_edge,
        )];
        let compiled = CompiledCircuit::compile(c)?;
        Ok(ReadExperiment {
            compiled,
            nodes,
            topo: topo.clone(),
            kind: params.kind,
            vdd,
            sim,
            c_bitline: params.c_bitline,
            c_node: params.c_node,
            t_wl_on,
            t_wl_off,
            t_end,
            sense,
            initial: InitialState::Uic(uic),
            events,
        })
    }

    /// The cell kind this experiment's parameters were compiled with. For
    /// a deck-imported cell this is the *parameterization* kind (model
    /// family, β rules), not the wiring — see
    /// [`topology`](Self::topology) for the wiring.
    pub fn kind(&self) -> CellKind {
        self.kind
    }

    /// The cell topology this experiment was compiled on.
    pub fn topology(&self) -> &CellTopology {
        &self.topo
    }

    /// The frozen simulation options (timing, tolerances).
    pub fn sim(&self) -> &SimOptions {
        &self.sim
    }

    /// Cumulative solver effort across every run of this experiment — the
    /// **lifetime** view, as opposed to the per-run
    /// [`TransientResult::stats`] each [`run`](ReadExperiment::run)
    /// returns. See the [`SolveStats`] docs for the two semantics.
    pub fn lifetime_stats(&self) -> &SolveStats {
        self.compiled.lifetime_stats()
    }

    /// Retargets the compiled experiment at a different cell of the same
    /// topology: rebinds every transistor model and width from `params`.
    /// The frozen supply, timing and capacitances must match.
    ///
    /// # Errors
    ///
    /// [`SramError::InvalidParameter`] for invalid parameters or a cell the
    /// frozen circuit cannot represent.
    pub fn bind_cell(&mut self, params: &CellParams) -> Result<(), SramError> {
        check_bindable(
            params,
            self.kind,
            self.vdd,
            &self.sim,
            self.c_bitline,
            self.c_node,
        )?;
        self.topo.bind_devices(&mut self.compiled, params);
        Ok(())
    }

    /// Runs the read against the compiled form.
    ///
    /// # Errors
    ///
    /// Simulation failures.
    pub fn run(&mut self) -> Result<ReadRun, SramError> {
        let _span = tfet_obs::span("read");
        let result = self.compiled.run(
            &self.sim.spec(self.t_end),
            &self.initial,
            if self.sim.early_exit {
                &self.events
            } else {
                &[]
            },
        )?;
        Ok(ReadRun {
            result,
            nodes: self.nodes,
            t_wl_on: self.t_wl_on,
            t_wl_off: self.t_wl_off,
            sense: self.sense,
        })
    }
}

/// Runs a read of the `q = 0` state.
///
/// One-shot wrapper around [`ReadExperiment`]: compiles, runs once,
/// discards the compiled form.
///
/// # Errors
///
/// Simulation failures and invalid parameters.
pub fn run_read(params: &CellParams, assist: Option<ReadAssist>) -> Result<ReadRun, SramError> {
    ReadExperiment::compile(params, assist)?.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tech::AccessConfig;

    fn fast(params: CellParams) -> CellParams {
        // Coarser step for unit tests; metric tests live in `metrics`.
        let mut p = params;
        p.sim.dt = 2e-12;
        p
    }

    #[test]
    fn hold_setup_has_expected_sources() {
        let p = CellParams::tfet6t(AccessConfig::InwardP);
        let h = hold_setup(&p).unwrap();
        assert_eq!(h.sources.len(), 5);
        assert_eq!(h.guess.len(), 2);
        let p7 = CellParams::new(CellKind::Tfet7T);
        let h7 = hold_setup(&p7).unwrap();
        assert_eq!(h7.sources.len(), 7);
    }

    #[test]
    fn hold_dc_converges_to_selected_state() {
        let p = CellParams::tfet6t(AccessConfig::InwardP);
        let h = hold_setup(&p).unwrap();
        let op = h.circuit.dc_op_with_guess(&h.guess).unwrap();
        assert!(op.voltage(h.nodes.q) > 0.75 * p.vdd);
        assert!(op.voltage(h.nodes.qb) < 0.05 * p.vdd);
    }

    #[test]
    fn write_with_long_pulse_flips_inward_p_cell() {
        let p = fast(CellParams::tfet6t(AccessConfig::InwardP).with_beta(0.6));
        let run = run_write(&p, None, 2e-9).unwrap();
        assert!(run.flipped(), "β=0.6 inward-p must write");
        assert!(run.write_delay().is_some());
    }

    #[test]
    fn write_with_tiny_pulse_does_not_flip() {
        let p = fast(CellParams::tfet6t(AccessConfig::InwardP).with_beta(0.6));
        let run = run_write(&p, None, 20e-12).unwrap();
        assert!(!run.flipped(), "20 ps pulse must be too short");
    }

    #[test]
    fn inward_n_write_fails_even_with_long_pulse() {
        // Paper Fig. 4: infinite WL_crit for inward-n at any β.
        let p = fast(CellParams::tfet6t(AccessConfig::InwardN).with_beta(0.6));
        let run = run_write(&p, None, 4e-9).unwrap();
        assert!(!run.flipped(), "inward-n cannot write");
    }

    #[test]
    fn cmos_write_flips_quickly() {
        let p = fast(CellParams::cmos6t().with_beta(1.5));
        let run = run_write(&p, None, 1e-9).unwrap();
        assert!(run.flipped());
    }

    #[test]
    fn adaptive_write_transient_matches_fixed_reference() {
        // Accuracy regression for the adaptive engine on the full 6T write:
        // the adaptive trace must track a fine fixed-step reference at both
        // storage nodes over the whole run. Early exit is disabled so the
        // two runs cover the same horizon.
        let mut p = fast(CellParams::tfet6t(AccessConfig::InwardP).with_beta(0.6));
        p.sim.early_exit = false;
        let adaptive = run_write(&p, None, 1e-9).unwrap();
        let mut pf = p.clone();
        pf.sim.stepping = crate::tech::SteppingMode::Fixed;
        pf.sim.dt = 0.5e-12;
        let fixed = run_write(&pf, None, 1e-9).unwrap();
        assert_eq!(adaptive.flipped(), fixed.flipped());
        let t_end = *fixed.result.times().last().unwrap();
        let mut worst = 0.0f64;
        for k in 0..=400 {
            let t = t_end * k as f64 / 400.0;
            for node in [adaptive.nodes.q, adaptive.nodes.qb] {
                let dv = adaptive.result.voltage_at(node, t) - fixed.result.voltage_at(node, t);
                worst = worst.max(dv.abs());
            }
        }
        assert!(worst < 0.03, "max |adaptive − fixed| = {worst} V");
        // And the adaptive run must be doing meaningfully less work.
        assert!(adaptive.result.stats.accepted_steps * 3 < fixed.result.stats.accepted_steps);
    }

    #[test]
    fn read_preserves_state_at_high_beta() {
        let p = fast(CellParams::tfet6t(AccessConfig::InwardP).with_beta(2.0));
        let run = run_read(&p, None).unwrap();
        assert!(
            run.drnm() > 0.0,
            "β=2 read must be stable, DRNM={}",
            run.drnm()
        );
        // Cell still holds q=0 at the end.
        assert!(run.result.final_voltage(run.nodes.qb) > 0.7 * p.vdd);
    }

    #[test]
    fn read_develops_bitline_differential() {
        let p = fast(CellParams::tfet6t(AccessConfig::InwardP).with_beta(2.0));
        let run = run_read(&p, None).unwrap();
        let delay = run.read_delay(0.05);
        assert!(delay.is_some(), "50 mV must develop within the window");
        assert!(delay.unwrap() > 0.0);
    }

    #[test]
    fn gnd_lowering_improves_drnm() {
        let p = fast(CellParams::tfet6t(AccessConfig::InwardP).with_beta(0.6));
        let plain = run_read(&p, None).unwrap().drnm();
        let assisted = run_read(&p, Some(ReadAssist::GndLowering)).unwrap().drnm();
        assert!(
            assisted > plain,
            "GND lowering must help: {assisted} !> {plain}"
        );
    }

    #[test]
    fn seven_t_read_does_not_disturb_cell() {
        let p = fast(CellParams::new(CellKind::Tfet7T).with_beta(2.0));
        let run = run_read(&p, None).unwrap();
        // Decoupled read: margin stays ≈ VDD.
        assert!(run.drnm() > 0.9 * p.vdd, "DRNM = {}", run.drnm());
        // And the read bitline droops.
        assert!(run.read_delay(0.05).is_some());
    }

    #[test]
    fn write_rejects_bad_pulse() {
        let p = CellParams::cmos6t();
        assert!(matches!(
            run_write(&p, None, -1.0),
            Err(SramError::InvalidParameter(_))
        ));
    }

    #[test]
    fn compiled_write_reuse_matches_fresh_builds() {
        let p = fast(CellParams::tfet6t(AccessConfig::InwardP).with_beta(0.6));
        let mut exp = WriteExperiment::compile(&p, None).unwrap();
        for width in [2e-9, 0.4e-9, 2e-9] {
            let reused = exp.run(width).unwrap();
            let fresh = run_write(&p, None, width).unwrap();
            assert_eq!(reused.result.times(), fresh.result.times(), "w = {width}");
            assert_eq!(
                reused.result.trace(reused.nodes.q),
                fresh.result.trace(fresh.nodes.q),
                "w = {width}"
            );
            assert_eq!(reused.flipped(), fresh.flipped(), "w = {width}");
        }
    }

    #[test]
    fn compiled_write_counts_builds_and_runs() {
        let p = fast(CellParams::tfet6t(AccessConfig::InwardP).with_beta(0.6));
        let mut exp = WriteExperiment::compile(&p, None).unwrap();
        let first = exp.run(1e-9).unwrap();
        assert_eq!(first.result.stats.circuit_builds, 1);
        let second = exp.run(0.5e-9).unwrap();
        assert_eq!(second.result.stats.circuit_builds, 0, "no rebuild");
        assert_eq!(second.result.stats.runs, 1);
        // Only the wordline rebinds on an unassisted cell.
        assert_eq!(second.result.stats.param_binds, 1);
    }

    #[test]
    fn compiled_read_bind_cell_matches_fresh_builds() {
        let p = fast(CellParams::tfet6t(AccessConfig::InwardP).with_beta(2.0));
        let mut exp = ReadExperiment::compile(&p, None).unwrap();
        for beta in [2.0, 0.8, 2.0] {
            let pb = fast(CellParams::tfet6t(AccessConfig::InwardP).with_beta(beta));
            exp.bind_cell(&pb).unwrap();
            let reused = exp.run().unwrap();
            let fresh = run_read(&pb, None).unwrap();
            assert_eq!(reused.result.times(), fresh.result.times(), "β = {beta}");
            assert_eq!(reused.drnm(), fresh.drnm(), "β = {beta}");
        }
    }

    #[test]
    fn bind_cell_rejects_incompatible_params() {
        let p = fast(CellParams::tfet6t(AccessConfig::InwardP).with_beta(0.6));
        let mut exp = WriteExperiment::compile(&p, None).unwrap();
        let mut other_vdd = p.clone();
        other_vdd.vdd = 0.6;
        assert!(matches!(
            exp.bind_cell(&other_vdd),
            Err(SramError::InvalidParameter(_))
        ));
        let other_kind = fast(CellParams::cmos6t());
        assert!(matches!(
            exp.bind_cell(&other_kind),
            Err(SramError::InvalidParameter(_))
        ));
    }
}
