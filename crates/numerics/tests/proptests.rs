//! Property-based tests for the numerics substrate.

use proptest::prelude::*;
use tfet_numerics::matrix::Matrix;
use tfet_numerics::roots::{critical_threshold, Threshold};
use tfet_numerics::{bisect, linspace, Lut1d, Lut2d, Summary};

/// Strategy: a well-conditioned diagonally dominant n×n matrix plus rhs.
fn dominant_system(n: usize) -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<f64>)> {
    let entry = -1.0f64..1.0f64;
    (
        prop::collection::vec(prop::collection::vec(entry.clone(), n), n),
        prop::collection::vec(-10.0f64..10.0f64, n),
    )
        .prop_map(move |(mut rows, b)| {
            for (i, row) in rows.iter_mut().enumerate() {
                let off: f64 = row.iter().map(|x| x.abs()).sum();
                row[i] = off + 1.0; // strict diagonal dominance => nonsingular
            }
            (rows, b)
        })
}

proptest! {
    #[test]
    fn lu_solve_satisfies_system((rows, b) in dominant_system(6)) {
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let a = Matrix::from_rows(&refs);
        let x = a.solve(&b).unwrap();
        let back = a.mul_vec(&x);
        for (bi, yi) in b.iter().zip(&back) {
            prop_assert!((bi - yi).abs() < 1e-8, "residual too large");
        }
    }

    #[test]
    fn lut1d_is_exact_at_nodes(vals in prop::collection::vec(-100.0f64..100.0, 2..20)) {
        let n = vals.len();
        let axis = linspace(0.0, 1.0, n);
        let lut = Lut1d::new(axis.clone(), vals.clone()).unwrap();
        for (x, v) in axis.iter().zip(&vals) {
            prop_assert!((lut.eval(*x) - v).abs() < 1e-12);
        }
    }

    #[test]
    fn lut1d_interpolation_is_bounded_by_neighbors(
        vals in prop::collection::vec(-100.0f64..100.0, 2..20),
        t in 0.0f64..1.0,
    ) {
        let n = vals.len();
        let axis = linspace(0.0, 1.0, n);
        let lut = Lut1d::new(axis, vals.clone()).unwrap();
        let x = t; // inside [0,1]
        let y = lut.eval(x);
        let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(y >= lo - 1e-12 && y <= hi + 1e-12);
    }

    #[test]
    fn lut1d_preserves_monotonicity(
        deltas in prop::collection::vec(0.0f64..10.0, 2..20),
        a in 0.0f64..1.0,
        b in 0.0f64..1.0,
    ) {
        // Build a non-decreasing value sequence.
        let mut vals = vec![0.0];
        for d in &deltas {
            vals.push(vals.last().unwrap() + d);
        }
        let axis = linspace(0.0, 1.0, vals.len());
        let lut = Lut1d::new(axis, vals).unwrap();
        let (x1, x2) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(lut.eval(x1) <= lut.eval(x2) + 1e-12);
    }

    #[test]
    fn lut2d_matches_bilinear_functions(
        c0 in -5.0f64..5.0, cx in -5.0f64..5.0,
        cy in -5.0f64..5.0, cxy in -5.0f64..5.0,
        px in 0.0f64..1.0, py in 0.0f64..1.0,
    ) {
        let f = move |x: f64, y: f64| c0 + cx * x + cy * y + cxy * x * y;
        let lut = Lut2d::tabulate((0.0, 1.0), 7, (0.0, 1.0), 5, f);
        prop_assert!((lut.eval(px, py) - f(px, py)).abs() < 1e-9);
    }

    #[test]
    fn bisect_root_has_small_residual(shift in -0.9f64..0.9) {
        let f = move |x: f64| x.tanh() - shift;
        let r = bisect(-5.0, 5.0, 1e-12, f).unwrap();
        prop_assert!(f(r).abs() < 1e-9);
    }

    #[test]
    fn critical_threshold_matches_known_step(step in 0.0001f64..0.9999) {
        match critical_threshold(0.0, 1.0, 1e-9, |x| x >= step) {
            Threshold::Critical(v) => prop_assert!((v - step).abs() < 1e-6),
            other => prop_assert!(false, "unexpected {other:?}"),
        }
    }

    #[test]
    fn summary_mean_within_minmax(data in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let s = Summary::of(&data);
        prop_assert!(s.min <= s.mean + 1e-9 && s.mean <= s.max + 1e-9);
        prop_assert!(s.min <= s.median && s.median <= s.max);
        prop_assert!(s.std_dev >= 0.0);
    }

    #[test]
    fn linspace_is_sorted_and_exact_at_ends(lo in -100.0f64..0.0, span in 0.1f64..100.0, n in 2usize..50) {
        let hi = lo + span;
        let pts = linspace(lo, hi, n);
        prop_assert_eq!(pts.len(), n);
        prop_assert_eq!(pts[0], lo);
        prop_assert_eq!(pts[n-1], hi);
        for w in pts.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }
}
