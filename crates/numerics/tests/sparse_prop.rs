//! Property tests: the sparse LU engine agrees with the dense reference on
//! random MNA-shaped systems — solutions to 1e-12 and `SolveError` parity on
//! singular/mismatched inputs.

use proptest::prelude::*;
use tfet_numerics::matrix::SolveError;
use tfet_numerics::{SparseLu, SparseMatrix, SparsityPattern};

/// An MNA-shaped random system: `n_v` node rows stamped with random
/// two-terminal conductance branches (made strictly diagonally dominant, so
/// the node block is well conditioned) plus `n_b` voltage-source-style branch
/// rows carrying ±1 incidence entries and a structurally *zero* diagonal —
/// the shape that forces the sparse engine to pivot.
#[derive(Debug, Clone)]
struct MnaSystem {
    n: usize,
    entries: Vec<(usize, usize, f64)>,
    b: Vec<f64>,
}

fn mna_system() -> impl Strategy<Value = MnaSystem> {
    (2usize..7, 0usize..3)
        .prop_flat_map(|(n_v, n_b)| {
            let n = n_v + n_b;
            let branches = prop::collection::vec((0..n_v, 0..n_v, 1e-4f64..1e-1), n_v..3 * n_v);
            let sources = prop::collection::vec(0..n_v, n_b);
            let rhs = prop::collection::vec(-1.0f64..1.0, n);
            (Just((n_v, n_b, n)), branches, sources, rhs)
        })
        .prop_map(|((n_v, _n_b, n), branches, sources, rhs)| {
            let mut entries: Vec<(usize, usize, f64)> = Vec::new();
            // Conductance branches between node rows.
            for (a, b, g) in branches {
                entries.push((a, a, g));
                entries.push((b, b, g));
                if a != b {
                    entries.push((a, b, -g));
                    entries.push((b, a, -g));
                }
            }
            // Diagonal padding keeps the node block strictly dominant even
            // after cancellation between branches.
            for i in 0..n_v {
                entries.push((i, i, 1.0));
            }
            // Voltage-source branch rows: ±1 incidence, zero (bi, bi) slot.
            for (k, &node) in sources.iter().enumerate() {
                let bi = n_v + k;
                entries.push((node, bi, 1.0));
                entries.push((bi, node, 1.0));
            }
            MnaSystem { n, entries, b: rhs }
        })
}

fn build_sparse(sys: &MnaSystem) -> SparseMatrix {
    let coords: Vec<(usize, usize)> = sys.entries.iter().map(|&(r, c, _)| (r, c)).collect();
    let mut a = SparseMatrix::new(SparsityPattern::from_entries(sys.n, &coords));
    for &(r, c, v) in &sys.entries {
        a.add(r, c, v);
    }
    a
}

proptest! {
    #[test]
    fn sparse_solution_matches_dense(sys in mna_system()) {
        let a = build_sparse(&sys);
        let dense = a.to_dense();
        match (a.solve(&sys.b), dense.solve(&sys.b)) {
            (Ok(xs), Ok(xd)) => {
                for (s, d) in xs.iter().zip(&xd) {
                    prop_assert!((s - d).abs() < 1e-12, "sparse {xs:?} vs dense {xd:?}");
                }
            }
            // Error parity: both paths must agree that the system is singular
            // (a branch row whose source node has no other connection can be).
            (Err(SolveError::Singular { .. }), Err(SolveError::Singular { .. })) => {}
            (s, d) => prop_assert!(false, "verdict mismatch: sparse {s:?}, dense {d:?}"),
        }
    }

    #[test]
    fn refactorize_matches_dense_on_rescaled_values(sys in mna_system(), scale in 0.1f64..10.0) {
        let mut a = build_sparse(&sys);
        let mut lu = SparseLu::new();
        if lu.analyze(&a).is_err() {
            // Singular draw — covered by the parity test above.
            return Ok(());
        }
        // Same pattern, drifted values: the modified-Newton refactorization
        // path. Scaling preserves nonsingularity.
        let scaled: Vec<(usize, usize, f64)> =
            sys.entries.iter().map(|&(r, c, v)| (r, c, v * scale)).collect();
        a.clear();
        for &(r, c, v) in &scaled {
            a.add(r, c, v);
        }
        lu.refactorize(&a).unwrap();
        let mut xs = vec![0.0; sys.n];
        lu.solve_into(&sys.b, &mut xs);
        let xd = a.to_dense().solve(&sys.b).unwrap();
        for (s, d) in xs.iter().zip(&xd) {
            prop_assert!((s - d).abs() < 1e-12, "sparse {xs:?} vs dense {xd:?}");
        }
    }

    #[test]
    fn singular_error_parity(sys in mna_system(), row in 0usize..6) {
        // Zero out one node row's values (pattern unchanged): both solvers
        // must report Singular, not produce garbage.
        let row = row % sys.n;
        let mut zeroed = sys.clone();
        for e in &mut zeroed.entries {
            if e.0 == row {
                e.2 = 0.0;
            }
        }
        let a = build_sparse(&zeroed);
        let sparse_verdict = a.solve(&zeroed.b);
        let dense_verdict = a.to_dense().solve(&zeroed.b);
        prop_assert_eq!(
            matches!(sparse_verdict, Err(SolveError::Singular { .. })),
            matches!(dense_verdict, Err(SolveError::Singular { .. })),
            "sparse {:?} vs dense {:?}", sparse_verdict, dense_verdict
        );
    }

    #[test]
    fn dimension_mismatch_parity(sys in mna_system(), extra in 1usize..4) {
        let a = build_sparse(&sys);
        let long_b = vec![1.0; sys.n + extra];
        prop_assert_eq!(
            a.solve(&long_b),
            Err(SolveError::DimensionMismatch { expected: sys.n, got: sys.n + extra })
        );
        prop_assert_eq!(
            a.to_dense().solve(&long_b),
            Err(SolveError::DimensionMismatch { expected: sys.n, got: sys.n + extra })
        );
    }
}
