//! Pattern-aware item grouping for partitioned workloads.
//!
//! The quiescent-partition latency tier in the circuit solver needs to ask
//! two questions very quickly on every Newton iteration: *which group does
//! item `i` belong to?* and *which items make up group `g`?*
//! [`GroupedIndices`] answers both with flat CSR-style storage built once
//! from an explicit grouping — no hashing, no per-query allocation.
//!
//! Groups need not cover the whole domain: items left out of every group
//! are "ungrouped" and report [`GroupedIndices::UNGROUPED`] as their owner.
//! The builder validates that indices are in range and that no item is
//! claimed by two groups, so downstream code can treat membership as a
//! bijection onto `grouped ∪ ungrouped`.

/// A fixed partition of the indices `0..n_items` into disjoint groups,
/// stored CSR-style for allocation-free queries in both directions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GroupedIndices {
    /// `offsets[g]..offsets[g + 1]` indexes `members` for group `g`.
    offsets: Vec<usize>,
    /// Concatenated member lists, each group's members in the order given.
    members: Vec<usize>,
    /// `owner[i]` is the group owning item `i`, or [`Self::UNGROUPED`].
    owner: Vec<usize>,
}

impl GroupedIndices {
    /// Owner value reported for items not claimed by any group.
    pub const UNGROUPED: usize = usize::MAX;

    /// Builds a grouping of `0..n_items` from explicit member lists.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= n_items` or appears in more than one
    /// group (or twice in the same group) — a malformed partition would
    /// silently corrupt latency bookkeeping downstream, so it is rejected
    /// loudly at construction.
    pub fn from_groups(n_items: usize, groups: &[Vec<usize>]) -> Self {
        let mut offsets = Vec::with_capacity(groups.len() + 1);
        let mut members = Vec::with_capacity(groups.iter().map(Vec::len).sum());
        let mut owner = vec![Self::UNGROUPED; n_items];
        offsets.push(0);
        for (g, group) in groups.iter().enumerate() {
            for &item in group {
                assert!(
                    item < n_items,
                    "group {g} references item {item}, but only {n_items} items exist"
                );
                assert!(
                    owner[item] == Self::UNGROUPED,
                    "item {item} claimed by both group {} and group {g}",
                    owner[item]
                );
                owner[item] = g;
                members.push(item);
            }
            offsets.push(members.len());
        }
        GroupedIndices {
            offsets,
            members,
            owner,
        }
    }

    /// Number of groups.
    pub fn group_count(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Number of items in the underlying domain (grouped or not).
    pub fn item_count(&self) -> usize {
        self.owner.len()
    }

    /// The members of group `g`, in the order given at construction.
    pub fn group(&self, g: usize) -> &[usize] {
        &self.members[self.offsets[g]..self.offsets[g + 1]]
    }

    /// The group owning item `i`, or [`Self::UNGROUPED`].
    pub fn owner_of(&self, i: usize) -> usize {
        self.owner[i]
    }

    /// True when item `i` belongs to some group.
    pub fn is_grouped(&self, i: usize) -> bool {
        self.owner[i] != Self::UNGROUPED
    }

    /// Total number of grouped items across all groups.
    pub fn grouped_count(&self) -> usize {
        self.members.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_groups_and_owners() {
        let g = GroupedIndices::from_groups(8, &[vec![0, 3, 5], vec![2, 7]]);
        assert_eq!(g.group_count(), 2);
        assert_eq!(g.item_count(), 8);
        assert_eq!(g.group(0), &[0, 3, 5]);
        assert_eq!(g.group(1), &[2, 7]);
        assert_eq!(g.owner_of(3), 0);
        assert_eq!(g.owner_of(7), 1);
        assert_eq!(g.owner_of(1), GroupedIndices::UNGROUPED);
        assert!(g.is_grouped(5));
        assert!(!g.is_grouped(6));
        assert_eq!(g.grouped_count(), 5);
    }

    #[test]
    fn empty_grouping_leaves_everything_ungrouped() {
        let g = GroupedIndices::from_groups(4, &[]);
        assert_eq!(g.group_count(), 0);
        assert_eq!(g.grouped_count(), 0);
        assert!((0..4).all(|i| !g.is_grouped(i)));
    }

    #[test]
    fn empty_groups_are_allowed() {
        let g = GroupedIndices::from_groups(3, &[vec![], vec![1]]);
        assert_eq!(g.group(0), &[] as &[usize]);
        assert_eq!(g.group(1), &[1]);
    }

    #[test]
    #[should_panic(expected = "only 3 items exist")]
    fn out_of_range_member_panics() {
        GroupedIndices::from_groups(3, &[vec![0, 3]]);
    }

    #[test]
    #[should_panic(expected = "claimed by both")]
    fn double_membership_panics() {
        GroupedIndices::from_groups(5, &[vec![0, 1], vec![1, 2]]);
    }

    #[test]
    #[should_panic(expected = "claimed by both")]
    fn duplicate_within_one_group_panics() {
        GroupedIndices::from_groups(5, &[vec![2, 2]]);
    }
}
