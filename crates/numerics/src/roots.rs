//! Bracketing root finders and monotone threshold search.
//!
//! The SRAM analysis layer extracts the *critical wordline pulse width*
//! (`WL_crit`, the paper's dynamic write metric) by binary search over a
//! flip / no-flip transient oracle — [`critical_threshold`] implements that
//! search. [`bisect`] and [`brent`] serve continuous root-finding needs such
//! as locating voltage crossings and calibrating device parameters.

use std::fmt;

/// Error returned by the continuous root finders.
#[derive(Debug, Clone, PartialEq)]
pub enum RootError {
    /// `f(lo)` and `f(hi)` have the same sign, so no root is bracketed.
    NotBracketed {
        /// Function value at the lower bound.
        f_lo: f64,
        /// Function value at the upper bound.
        f_hi: f64,
    },
    /// The iteration limit was exhausted before reaching tolerance.
    MaxIterations {
        /// Best estimate of the root when iteration stopped.
        best: f64,
    },
    /// The function returned NaN during the search.
    NonFinite {
        /// Argument at which the function returned NaN.
        at: f64,
    },
}

impl fmt::Display for RootError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RootError::NotBracketed { f_lo, f_hi } => {
                write!(f, "root not bracketed: f(lo)={f_lo:e}, f(hi)={f_hi:e}")
            }
            RootError::MaxIterations { best } => {
                write!(f, "iteration limit reached, best estimate {best:e}")
            }
            RootError::NonFinite { at } => write!(f, "function returned NaN at {at:e}"),
        }
    }
}

impl std::error::Error for RootError {}

/// Finds a root of `f` on `[lo, hi]` by bisection.
///
/// Runs until the interval shrinks below `xtol` (absolute) or 100 iterations.
///
/// # Errors
///
/// Returns [`RootError::NotBracketed`] if `f(lo)` and `f(hi)` do not differ
/// in sign, or [`RootError::NonFinite`] on NaN.
///
/// # Examples
///
/// ```
/// use tfet_numerics::bisect;
/// let root = bisect(0.0, 2.0, 1e-12, |x| x * x - 2.0).unwrap();
/// assert!((root - std::f64::consts::SQRT_2).abs() < 1e-10);
/// ```
pub fn bisect(lo: f64, hi: f64, xtol: f64, f: impl Fn(f64) -> f64) -> Result<f64, RootError> {
    let (mut lo, mut hi) = (lo, hi);
    let mut f_lo = f(lo);
    let f_hi = f(hi);
    if f_lo.is_nan() {
        return Err(RootError::NonFinite { at: lo });
    }
    if f_hi.is_nan() {
        return Err(RootError::NonFinite { at: hi });
    }
    if f_lo == 0.0 {
        return Ok(lo);
    }
    if f_hi == 0.0 {
        return Ok(hi);
    }
    if f_lo.signum() == f_hi.signum() {
        return Err(RootError::NotBracketed { f_lo, f_hi });
    }
    for _ in 0..100 {
        let mid = 0.5 * (lo + hi);
        if (hi - lo).abs() < xtol {
            return Ok(mid);
        }
        let f_mid = f(mid);
        if f_mid.is_nan() {
            return Err(RootError::NonFinite { at: mid });
        }
        if f_mid == 0.0 {
            return Ok(mid);
        }
        if f_mid.signum() == f_lo.signum() {
            lo = mid;
            f_lo = f_mid;
        } else {
            hi = mid;
        }
    }
    Ok(0.5 * (lo + hi))
}

/// Finds a root of `f` on `[lo, hi]` with Brent's method (inverse quadratic
/// interpolation with a bisection safeguard).
///
/// Converges superlinearly on smooth functions; used for device-model
/// calibration where the target functions are expensive.
///
/// # Errors
///
/// Same bracket and NaN conditions as [`bisect`], plus
/// [`RootError::MaxIterations`] after 200 iterations.
pub fn brent(lo: f64, hi: f64, xtol: f64, f: impl Fn(f64) -> f64) -> Result<f64, RootError> {
    let mut a = lo;
    let mut b = hi;
    let mut fa = f(a);
    let mut fb = f(b);
    if fa.is_nan() {
        return Err(RootError::NonFinite { at: a });
    }
    if fb.is_nan() {
        return Err(RootError::NonFinite { at: b });
    }
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa.signum() == fb.signum() {
        return Err(RootError::NotBracketed { f_lo: fa, f_hi: fb });
    }
    if fa.abs() < fb.abs() {
        std::mem::swap(&mut a, &mut b);
        std::mem::swap(&mut fa, &mut fb);
    }
    let mut c = a;
    let mut fc = fa;
    let mut d = b - a;
    let mut mflag = true;

    for _ in 0..200 {
        if fb == 0.0 || (b - a).abs() < xtol {
            return Ok(b);
        }
        let mut s = if fa != fc && fb != fc {
            // Inverse quadratic interpolation.
            a * fb * fc / ((fa - fb) * (fa - fc))
                + b * fa * fc / ((fb - fa) * (fb - fc))
                + c * fa * fb / ((fc - fa) * (fc - fb))
        } else {
            // Secant.
            b - fb * (b - a) / (fb - fa)
        };

        let lo_bound = (3.0 * a + b) / 4.0;
        let cond1 = !((s > lo_bound.min(b) && s < lo_bound.max(b))
            || (s > b.min(lo_bound) && s < b.max(lo_bound)));
        let cond2 = mflag && (s - b).abs() >= (b - c).abs() / 2.0;
        let cond3 = !mflag && (s - b).abs() >= (c - d).abs() / 2.0;
        let cond4 = mflag && (b - c).abs() < xtol;
        let cond5 = !mflag && (c - d).abs() < xtol;
        if cond1 || cond2 || cond3 || cond4 || cond5 {
            s = 0.5 * (a + b);
            mflag = true;
        } else {
            mflag = false;
        }

        let fs = f(s);
        if fs.is_nan() {
            return Err(RootError::NonFinite { at: s });
        }
        d = c;
        c = b;
        fc = fb;
        if fa.signum() != fs.signum() {
            b = s;
            fb = fs;
        } else {
            a = s;
            fa = fs;
        }
        if fa.abs() < fb.abs() {
            std::mem::swap(&mut a, &mut b);
            std::mem::swap(&mut fa, &mut fb);
        }
    }
    Err(RootError::MaxIterations { best: b })
}

/// Result of a [`critical_threshold`] search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Threshold {
    /// The predicate flips from `false` to `true` within the search range;
    /// the contained value is the smallest argument (to within tolerance)
    /// for which it holds.
    Critical(f64),
    /// The predicate already holds at the lower bound.
    AlwaysTrue,
    /// The predicate does not hold even at the upper bound — e.g. an SRAM
    /// write that fails no matter how long the wordline pulse (the paper's
    /// "infinite `WL_crit`").
    NeverTrue,
    /// A *decisive* oracle probe failed (returned `None` in the checked
    /// searches), so neither a bracket nor a `NeverTrue`/`AlwaysTrue`
    /// verdict can be certified. Only the `_checked` entry points produce
    /// this variant; a plain `bool` predicate never does.
    Unbracketable,
}

impl Threshold {
    /// The critical value, if one exists in range.
    pub fn value(self) -> Option<f64> {
        match self {
            Threshold::Critical(v) => Some(v),
            _ => None,
        }
    }

    /// Whether the predicate never became true (infinite critical value).
    pub fn is_never(self) -> bool {
        matches!(self, Threshold::NeverTrue)
    }

    /// Whether a decisive oracle failure left the search without a verdict.
    pub fn is_unbracketable(self) -> bool {
        matches!(self, Threshold::Unbracketable)
    }
}

/// Per-search observability: probe count plus the probed-point trajectory.
///
/// The trajectory Vec is only populated when tracing is enabled, so the
/// disabled path allocates nothing; each probed `x` is the next bracket
/// boundary the search commits to, which makes the recorded series exactly
/// the bisection's bracket trajectory.
struct SearchObs {
    enabled: bool,
    probes: u64,
    points: Vec<f64>,
}

impl SearchObs {
    fn start() -> SearchObs {
        SearchObs {
            enabled: tfet_obs::enabled(),
            probes: 0,
            points: Vec::new(),
        }
    }

    /// Wraps one oracle probe: tallies it and keeps the probed point.
    /// `None` means the oracle itself failed at `x` (checked searches).
    fn probe(&mut self, x: f64, held: Option<bool>) -> Option<bool> {
        self.probes += 1;
        if self.enabled {
            self.points.push(x);
        }
        held
    }

    /// Flushes the search's metrics into the registry.
    fn finish(&self, series: &'static str) {
        if self.enabled {
            tfet_obs::counter("bisection.searches", 1);
            tfet_obs::record_u64("bisection.probes_per_search", self.probes);
            tfet_obs::record_series(series, &self.points);
        }
    }
}

/// Core cold bisection shared by the public entry points.
///
/// The predicate returns `None` when the oracle itself fails at a point.
/// A failure at a *decisive* probe — either endpoint, whose verdict alone
/// classifies the whole range — yields [`Threshold::Unbracketable`]; a
/// failure at an interior bisection probe is treated as `false`, which is
/// conservative for the `WL_crit` use (the search keeps the upper half, so
/// a tolerated failure can only overestimate the critical value, never
/// fabricate a flip).
fn cold_search(
    lo: f64,
    hi: f64,
    xtol: f64,
    pred: &mut impl FnMut(f64) -> Option<bool>,
) -> Threshold {
    match pred(lo) {
        Some(true) => return Threshold::AlwaysTrue,
        Some(false) => {}
        None => return Threshold::Unbracketable,
    }
    match pred(hi) {
        Some(true) => {}
        Some(false) => return Threshold::NeverTrue,
        None => return Threshold::Unbracketable,
    }
    let (mut lo, mut hi) = (lo, hi);
    while hi - lo > xtol {
        let mid = 0.5 * (lo + hi);
        if pred(mid) == Some(true) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Threshold::Critical(hi)
}

/// Binary-searches the smallest `x ∈ [lo, hi]` for which the monotone
/// predicate `pred(x)` holds, to absolute tolerance `xtol`.
///
/// `pred` must be monotone (false … false, true … true) over the range; the
/// canonical use is "does a wordline pulse of width `x` flip the SRAM cell?".
///
/// With tracing enabled (`tfet_obs::enable`), every search records a
/// `bisection` span, the probe count into the
/// `bisection.probes_per_search` histogram, and its probed-point trajectory
/// as the `bisection.bracket` series.
///
/// # Examples
///
/// ```
/// use tfet_numerics::roots::{critical_threshold, Threshold};
/// let th = critical_threshold(0.0, 10.0, 1e-9, |x| x >= 3.0);
/// match th {
///     Threshold::Critical(v) => assert!((v - 3.0).abs() < 1e-6),
///     _ => panic!("expected a critical value"),
/// }
/// ```
pub fn critical_threshold(
    lo: f64,
    hi: f64,
    xtol: f64,
    mut pred: impl FnMut(f64) -> bool,
) -> Threshold {
    critical_threshold_checked(lo, hi, xtol, move |x| Some(pred(x)))
}

/// [`critical_threshold`] over a *fallible* oracle: the predicate returns
/// `None` when it cannot be evaluated at a point (e.g. the transient solver
/// fails to converge there).
///
/// A failed probe at a decisive point — an endpoint whose verdict alone
/// would classify the whole range — returns [`Threshold::Unbracketable`]
/// instead of inventing a `NeverTrue`/`AlwaysTrue` verdict. A failed probe
/// at an interior bisection point is tolerated as `false` (conservative:
/// the reported critical value can only grow). The infallible wrapper never
/// produces `Unbracketable`.
pub fn critical_threshold_checked(
    lo: f64,
    hi: f64,
    xtol: f64,
    mut pred: impl FnMut(f64) -> Option<bool>,
) -> Threshold {
    let _span = tfet_obs::span("bisection");
    let mut obs = SearchObs::start();
    let th = cold_search(lo, hi, xtol, &mut |x| {
        let held = pred(x);
        obs.probe(x, held)
    });
    obs.finish("bisection.bracket");
    th
}

/// [`critical_threshold`] with a warm-start hint: a guess at the critical
/// value (e.g. the result at the previous sweep point or the nominal
/// Monte-Carlo cell).
///
/// A good hint replaces the full-range bisection with two confirming probes
/// around the hint plus a short bisection of the confirmed bracket; a bad
/// hint costs a few geometric bracket expansions and degrades gracefully to
/// the cold search. The result is always a valid threshold for the monotone
/// predicate — only the number of `pred` evaluations (each a full transient
/// for the `WL_crit` oracle) depends on hint quality.
///
/// `hint: None`, a non-finite hint, or a hint outside `(lo, hi)` fall back
/// to the cold [`critical_threshold`].
///
/// Tracing records the same span/metrics as [`critical_threshold`], with
/// the trajectory under the `bisection.bracket_seeded` series instead so
/// the geometric expansion phase stays distinguishable in reports.
pub fn critical_threshold_seeded(
    lo: f64,
    hi: f64,
    xtol: f64,
    hint: Option<f64>,
    mut pred: impl FnMut(f64) -> bool,
) -> Threshold {
    critical_threshold_seeded_checked(lo, hi, xtol, hint, move |x| Some(pred(x)))
}

/// [`critical_threshold_seeded`] over a fallible oracle — the seeded
/// counterpart of [`critical_threshold_checked`], with the same decisive /
/// tolerated probe-failure semantics.
pub fn critical_threshold_seeded_checked(
    lo: f64,
    hi: f64,
    xtol: f64,
    hint: Option<f64>,
    mut pred: impl FnMut(f64) -> Option<bool>,
) -> Threshold {
    let _span = tfet_obs::span("bisection");
    let mut obs = SearchObs::start();
    let th = seeded_search(lo, hi, xtol, hint, &mut |x| {
        let held = pred(x);
        obs.probe(x, held)
    });
    let seeded = hint.is_some_and(|h| h.is_finite() && h > lo && h < hi);
    obs.finish(if seeded {
        "bisection.bracket_seeded"
    } else {
        "bisection.bracket"
    });
    th
}

/// Core hint-seeded search shared by the public entry point. Probe-failure
/// (`None`) semantics follow [`cold_search`]: the one decisive probe — an
/// ascending probe that has reached `hi`, whose verdict alone separates
/// `Critical` from `NeverTrue` — returns [`Threshold::Unbracketable`] on
/// failure; every other probe tolerates it as `false` (which only shrinks
/// the descent or keeps the upper bisection half — conservative).
fn seeded_search(
    lo: f64,
    hi: f64,
    xtol: f64,
    hint: Option<f64>,
    pred: &mut impl FnMut(f64) -> Option<bool>,
) -> Threshold {
    let Some(h) = hint else {
        return cold_search(lo, hi, xtol, pred);
    };
    if !h.is_finite() || h <= lo || h >= hi {
        return cold_search(lo, hi, xtol, pred);
    }
    // Initial bracket half-width: 10% of the hint — tight enough to pay off
    // for the near-exact hints of Monte-Carlo sampling (a few % around the
    // nominal cell), while a sweep-grade hint that misses by more costs only
    // a couple of geometric expansion probes.
    let w0 = (0.1 * h).max(4.0 * xtol);

    // Ascend from the hint until the predicate holds.
    let mut b_lo = lo;
    let mut b_hi;
    let mut w = w0;
    let mut probe = (h + w).min(hi);
    loop {
        match pred(probe) {
            Some(true) => {
                b_hi = probe;
                break;
            }
            Some(false) if probe >= hi => return Threshold::NeverTrue,
            None if probe >= hi => return Threshold::Unbracketable,
            Some(false) | None => {}
        }
        b_lo = probe;
        w *= 2.0;
        probe = (probe + w).min(hi);
    }
    // If the first upward probe already held, the threshold may sit below
    // the hint: descend until the predicate fails.
    if b_lo == lo {
        let mut w = w0;
        let mut probe = (h - w).max(lo);
        loop {
            if pred(probe) != Some(true) {
                b_lo = probe;
                break;
            }
            b_hi = probe;
            if probe <= lo {
                return Threshold::AlwaysTrue;
            }
            w *= 2.0;
            probe = (probe - w).max(lo);
        }
    }
    // Bisect the confirmed bracket.
    while b_hi - b_lo > xtol {
        let mid = 0.5 * (b_lo + b_hi);
        if pred(mid) == Some(true) {
            b_hi = mid;
        } else {
            b_lo = mid;
        }
    }
    Threshold::Critical(b_hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_finds_sqrt2() {
        let r = bisect(0.0, 2.0, 1e-13, |x| x * x - 2.0).unwrap();
        assert!((r - std::f64::consts::SQRT_2).abs() < 1e-10);
    }

    #[test]
    fn bisect_exact_root_at_endpoint() {
        assert_eq!(bisect(0.0, 1.0, 1e-12, |x| x).unwrap(), 0.0);
        assert_eq!(bisect(-1.0, 0.0, 1e-12, |x| x).unwrap(), 0.0);
    }

    #[test]
    fn bisect_rejects_unbracketed() {
        assert!(matches!(
            bisect(1.0, 2.0, 1e-12, |x| x),
            Err(RootError::NotBracketed { .. })
        ));
    }

    #[test]
    fn bisect_reports_nan() {
        assert!(matches!(
            bisect(0.0, 1.0, 1e-12, |_| f64::NAN),
            Err(RootError::NonFinite { .. })
        ));
    }

    #[test]
    fn brent_finds_cubic_root() {
        let r = brent(0.0, 4.0, 1e-14, |x| (x - 3.0) * (x * x + 1.0)).unwrap();
        assert!((r - 3.0).abs() < 1e-10);
    }

    #[test]
    fn brent_matches_bisect_on_exponential() {
        // Exponential crossing typical of device-calibration targets.
        let f = |x: f64| (x / 0.06).exp() - 1e6;
        let rb = brent(0.0, 2.0, 1e-13, f).unwrap();
        let ri = bisect(0.0, 2.0, 1e-13, f).unwrap();
        assert!((rb - ri).abs() < 1e-9);
    }

    #[test]
    fn brent_rejects_unbracketed() {
        assert!(matches!(
            brent(1.0, 2.0, 1e-12, |x| x),
            Err(RootError::NotBracketed { .. })
        ));
    }

    #[test]
    fn critical_threshold_finds_step() {
        match critical_threshold(0.0, 100.0, 1e-6, |x| x >= 42.0) {
            Threshold::Critical(v) => assert!((v - 42.0).abs() < 1e-4),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn critical_threshold_detects_never() {
        let th = critical_threshold(0.0, 10.0, 1e-6, |_| false);
        assert!(th.is_never());
        assert_eq!(th.value(), None);
    }

    #[test]
    fn critical_threshold_detects_always() {
        assert_eq!(
            critical_threshold(0.0, 10.0, 1e-6, |_| true),
            Threshold::AlwaysTrue
        );
    }

    #[test]
    fn critical_threshold_counts_oracle_calls_logarithmically() {
        let mut calls = 0;
        let th = critical_threshold(0.0, 1.0, 1e-9, |x| {
            calls += 1;
            x >= 0.123456
        });
        assert!(matches!(th, Threshold::Critical(_)));
        // log2(1e9) ≈ 30 plus the two endpoint probes.
        assert!(calls <= 35, "too many oracle calls: {calls}");
    }

    #[test]
    fn seeded_threshold_matches_cold_search() {
        let pred = |x: f64| x >= 0.123456;
        for hint in [None, Some(0.12), Some(0.5), Some(0.0001), Some(0.999)] {
            match critical_threshold_seeded(0.0, 1.0, 1e-9, hint, pred) {
                Threshold::Critical(v) => {
                    assert!((v - 0.123456).abs() < 1e-7, "hint {hint:?} gave {v}")
                }
                other => panic!("hint {hint:?} gave {other:?}"),
            }
        }
    }

    #[test]
    fn seeded_threshold_handles_degenerate_predicates() {
        let th = critical_threshold_seeded(0.0, 10.0, 1e-6, Some(5.0), |_| false);
        assert!(th.is_never());
        assert_eq!(
            critical_threshold_seeded(0.0, 10.0, 1e-6, Some(5.0), |_| true),
            Threshold::AlwaysTrue
        );
    }

    #[test]
    fn seeded_threshold_ignores_out_of_range_hints() {
        for hint in [Some(-1.0), Some(2.0), Some(f64::NAN), Some(f64::INFINITY)] {
            match critical_threshold_seeded(0.0, 1.0, 1e-9, hint, |x| x >= 0.25) {
                Threshold::Critical(v) => assert!((v - 0.25).abs() < 1e-7),
                other => panic!("hint {hint:?} gave {other:?}"),
            }
        }
    }

    #[test]
    fn good_hint_beats_cold_search_on_oracle_calls() {
        // Metrics-like regime: tolerance is coarse relative to the range
        // (pulse_tol vs max_pulse ≈ 1e-3) and the hint is within ~5% — the
        // shape of a Monte-Carlo sample seeded from the nominal cell.
        let target = 0.123456;
        let count_calls = |hint: Option<f64>| {
            let mut calls = 0;
            let th = critical_threshold_seeded(0.0, 1.0, 1e-3, hint, |x| {
                calls += 1;
                x >= target
            });
            assert!(matches!(th, Threshold::Critical(_)));
            calls
        };
        let cold = count_calls(None);
        let seeded = count_calls(Some(0.12));
        assert!(
            2 * seeded <= cold + 2,
            "seeded {seeded} calls vs cold {cold}: a near-exact hint must \
             roughly halve the search"
        );
        assert!(seeded < cold);
    }

    #[test]
    fn traced_search_records_probes_and_bracket() {
        tfet_obs::reset();
        tfet_obs::enable();
        let th = critical_threshold(0.0, 1.0, 1e-3, |x| x >= 0.25);
        let seeded = critical_threshold_seeded(0.0, 1.0, 1e-3, Some(0.24), |x| x >= 0.25);
        tfet_obs::disable();
        assert!(matches!(th, Threshold::Critical(_)));
        assert!(matches!(seeded, Threshold::Critical(_)));
        let report = tfet_obs::RunReport::capture();
        assert!(*report.counters.get("bisection.searches").unwrap() >= 2);
        assert!(report.spans.contains_key("bisection"));
        let hist = &report.histograms["bisection.probes_per_search"];
        assert!(hist.count >= 2 && hist.min >= 2);
        assert!(!report.series["bisection.bracket"].values.is_empty());
        assert!(!report.series["bisection.bracket_seeded"].values.is_empty());
    }

    #[test]
    fn checked_search_flags_decisive_endpoint_failure() {
        // A failing oracle at either endpoint denies the search its verdict.
        let th = critical_threshold_checked(0.0, 1.0, 1e-9, |x| {
            if x >= 1.0 {
                None
            } else {
                Some(x >= 0.25)
            }
        });
        assert!(th.is_unbracketable());
        assert_eq!(th.value(), None);
        assert!(!th.is_never());
        assert!(critical_threshold_checked(0.0, 1.0, 1e-9, |x| {
            if x <= 0.0 {
                None
            } else {
                Some(x >= 0.25)
            }
        })
        .is_unbracketable());
    }

    #[test]
    fn checked_search_tolerates_interior_failures_conservatively() {
        // Interior oracle failures read as "false": the answer can only move
        // up, never below the true threshold, and stays within the widened
        // uncertainty of the poisoned band.
        let th = critical_threshold_checked(0.0, 1.0, 1e-9, |x| {
            if (0.3..0.4).contains(&x) {
                None
            } else {
                Some(x >= 0.25)
            }
        });
        match th {
            Threshold::Critical(v) => assert!((0.25..=0.4 + 1e-9).contains(&v), "got {v}"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn checked_seeded_search_flags_failure_at_the_upper_bound() {
        // The ascent's probe at `hi` is the NeverTrue/Critical decider; an
        // oracle failure there must not masquerade as NeverTrue.
        let th = critical_threshold_seeded_checked(0.0, 1.0, 1e-9, Some(0.5), |x| {
            if x >= 1.0 {
                None
            } else {
                Some(false)
            }
        });
        assert!(th.is_unbracketable());
    }

    #[test]
    fn checked_seeded_search_matches_bool_oracle_when_infallible() {
        let pred = |x: f64| Some(x >= 0.123456);
        for hint in [None, Some(0.12), Some(0.5)] {
            match critical_threshold_seeded_checked(0.0, 1.0, 1e-9, hint, pred) {
                Threshold::Critical(v) => assert!((v - 0.123456).abs() < 1e-7),
                other => panic!("hint {hint:?} gave {other:?}"),
            }
        }
    }

    #[test]
    fn error_display_nonempty() {
        assert!(!RootError::MaxIterations { best: 1.0 }
            .to_string()
            .is_empty());
    }
}
