//! Lookup tables with linear and bilinear interpolation.
//!
//! The reproduced paper models TFETs for circuit simulation by storing
//! TCAD-extracted I-V and C-V surfaces in two-dimensional lookup tables read
//! by a Verilog-A wrapper. [`Lut2d`] is the Rust equivalent: a rectilinear
//! grid of samples with bilinear interpolation and analytic partial
//! derivatives (needed for Newton-Raphson device stamps). [`Lut1d`] is the
//! one-dimensional counterpart used for waveform sampling and C-V slices.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Error raised when constructing a lookup table from invalid data.
#[derive(Debug, Clone, PartialEq)]
pub enum LutError {
    /// An axis has fewer than two points.
    AxisTooShort {
        /// Name of the offending axis (`"x"` or `"y"`).
        axis: &'static str,
        /// Number of points supplied.
        len: usize,
    },
    /// An axis is not strictly increasing at the reported index.
    AxisNotIncreasing {
        /// Name of the offending axis.
        axis: &'static str,
        /// Index `i` such that `axis[i] >= axis[i+1]`.
        index: usize,
    },
    /// The value grid size does not equal `x.len() * y.len()` (or `x.len()`
    /// for a 1-D table).
    ValueShapeMismatch {
        /// Expected number of values.
        expected: usize,
        /// Number of values supplied.
        got: usize,
    },
    /// A value is NaN or infinite.
    NonFiniteValue {
        /// Flat index of the first non-finite value.
        index: usize,
    },
}

impl fmt::Display for LutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LutError::AxisTooShort { axis, len } => {
                write!(f, "axis {axis} has {len} points, need at least 2")
            }
            LutError::AxisNotIncreasing { axis, index } => {
                write!(f, "axis {axis} is not strictly increasing at index {index}")
            }
            LutError::ValueShapeMismatch { expected, got } => {
                write!(f, "value grid has {got} entries, expected {expected}")
            }
            LutError::NonFiniteValue { index } => {
                write!(f, "non-finite value at flat index {index}")
            }
        }
    }
}

impl std::error::Error for LutError {}

fn check_axis(axis: &'static str, pts: &[f64]) -> Result<(), LutError> {
    if pts.len() < 2 {
        return Err(LutError::AxisTooShort {
            axis,
            len: pts.len(),
        });
    }
    for i in 0..pts.len() - 1 {
        if pts[i] >= pts[i + 1] {
            return Err(LutError::AxisNotIncreasing { axis, index: i });
        }
    }
    Ok(())
}

/// Locates the interval `[pts[i], pts[i+1]]` containing `v` (clamped), and
/// the normalized coordinate `t ∈ [0, 1]` within it.
///
/// Out-of-range inputs clamp to the end intervals, i.e. the table
/// extrapolates by continuing the edge segment's linear trend truncated at
/// `t ∈ [0,1]` — flat extrapolation of the *interval*, matching the usual
/// simulator behaviour of clamping table inputs.
fn locate(pts: &[f64], v: f64) -> (usize, f64) {
    let n = pts.len();
    if v <= pts[0] {
        return (0, 0.0);
    }
    if v >= pts[n - 1] {
        return (n - 2, 1.0);
    }
    // Binary search for the containing interval.
    let mut lo = 0;
    let mut hi = n - 1;
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        if pts[mid] <= v {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let t = (v - pts[lo]) / (pts[lo + 1] - pts[lo]);
    (lo, t)
}

/// A one-dimensional lookup table with linear interpolation.
///
/// # Examples
///
/// ```
/// use tfet_numerics::Lut1d;
///
/// let lut = Lut1d::new(vec![0.0, 1.0, 2.0], vec![0.0, 10.0, 40.0])?;
/// assert_eq!(lut.eval(0.5), 5.0);
/// assert_eq!(lut.eval(1.5), 25.0);
/// # Ok::<(), tfet_numerics::interp::LutError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lut1d {
    x: Vec<f64>,
    v: Vec<f64>,
}

impl Lut1d {
    /// Creates a table from a strictly increasing axis and matching values.
    ///
    /// # Errors
    ///
    /// Returns a [`LutError`] if the axis is too short or not strictly
    /// increasing, if the value count differs from the axis length, or if a
    /// value is non-finite.
    pub fn new(x: Vec<f64>, v: Vec<f64>) -> Result<Self, LutError> {
        check_axis("x", &x)?;
        if v.len() != x.len() {
            return Err(LutError::ValueShapeMismatch {
                expected: x.len(),
                got: v.len(),
            });
        }
        if let Some(index) = v.iter().position(|val| !val.is_finite()) {
            return Err(LutError::NonFiniteValue { index });
        }
        Ok(Lut1d { x, v })
    }

    /// Builds a table by sampling `f` at `n` evenly spaced points on
    /// `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `lo >= hi` or `f` returns a non-finite value.
    pub fn tabulate(lo: f64, hi: f64, n: usize, f: impl Fn(f64) -> f64) -> Self {
        let x = crate::sweep::linspace(lo, hi, n);
        let v: Vec<f64> = x.iter().map(|&xi| f(xi)).collect();
        Lut1d::new(x, v).expect("tabulate produced an invalid table")
    }

    /// The axis sample points.
    pub fn axis(&self) -> &[f64] {
        &self.x
    }

    /// The stored values.
    pub fn values(&self) -> &[f64] {
        &self.v
    }

    /// Linearly interpolated value at `x` (clamped to the table range).
    pub fn eval(&self, x: f64) -> f64 {
        let (i, t) = locate(&self.x, x);
        self.v[i] * (1.0 - t) + self.v[i + 1] * t
    }

    /// Slope of the containing segment at `x` (piecewise constant).
    pub fn derivative(&self, x: f64) -> f64 {
        let (i, _) = locate(&self.x, x);
        (self.v[i + 1] - self.v[i]) / (self.x[i + 1] - self.x[i])
    }
}

/// A two-dimensional rectilinear lookup table with bilinear interpolation.
///
/// Values are stored row-major: `value(ix, iy) = values[ix * ny + iy]`.
/// In device-model use, `x` is the gate-source voltage axis and `y` the
/// drain-source voltage axis.
///
/// # Examples
///
/// ```
/// use tfet_numerics::Lut2d;
///
/// // f(x, y) = x + 2 y, sampled on a 2×2 grid, is reproduced exactly.
/// let lut = Lut2d::new(
///     vec![0.0, 1.0],
///     vec![0.0, 1.0],
///     vec![0.0, 2.0, 1.0, 3.0],
/// )?;
/// assert!((lut.eval(0.25, 0.75) - 1.75).abs() < 1e-15);
/// # Ok::<(), tfet_numerics::interp::LutError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lut2d {
    x: Vec<f64>,
    y: Vec<f64>,
    /// Row-major values, `x.len() * y.len()` entries.
    v: Vec<f64>,
}

impl Lut2d {
    /// Creates a table from strictly increasing axes and a row-major value
    /// grid of shape `x.len() × y.len()`.
    ///
    /// # Errors
    ///
    /// Returns a [`LutError`] if an axis is invalid, the grid shape is wrong,
    /// or any value is non-finite.
    pub fn new(x: Vec<f64>, y: Vec<f64>, v: Vec<f64>) -> Result<Self, LutError> {
        check_axis("x", &x)?;
        check_axis("y", &y)?;
        if v.len() != x.len() * y.len() {
            return Err(LutError::ValueShapeMismatch {
                expected: x.len() * y.len(),
                got: v.len(),
            });
        }
        if let Some(index) = v.iter().position(|val| !val.is_finite()) {
            return Err(LutError::NonFiniteValue { index });
        }
        Ok(Lut2d { x, y, v })
    }

    /// Builds a table by sampling `f(x, y)` on an `nx × ny` uniform grid.
    ///
    /// # Panics
    ///
    /// Panics if either axis has fewer than 2 points, a range is empty, or
    /// `f` returns a non-finite value.
    pub fn tabulate(
        x_range: (f64, f64),
        nx: usize,
        y_range: (f64, f64),
        ny: usize,
        f: impl Fn(f64, f64) -> f64,
    ) -> Self {
        let x = crate::sweep::linspace(x_range.0, x_range.1, nx);
        let y = crate::sweep::linspace(y_range.0, y_range.1, ny);
        let mut v = Vec::with_capacity(nx * ny);
        for &xi in &x {
            for &yi in &y {
                v.push(f(xi, yi));
            }
        }
        Lut2d::new(x, y, v).expect("tabulate produced an invalid table")
    }

    /// The first (row) axis.
    pub fn x_axis(&self) -> &[f64] {
        &self.x
    }

    /// The second (column) axis.
    pub fn y_axis(&self) -> &[f64] {
        &self.y
    }

    #[inline]
    fn at(&self, ix: usize, iy: usize) -> f64 {
        self.v[ix * self.y.len() + iy]
    }

    /// Bilinearly interpolated value at `(x, y)`, clamped to the grid.
    pub fn eval(&self, x: f64, y: f64) -> f64 {
        let (ix, tx) = locate(&self.x, x);
        let (iy, ty) = locate(&self.y, y);
        let v00 = self.at(ix, iy);
        let v01 = self.at(ix, iy + 1);
        let v10 = self.at(ix + 1, iy);
        let v11 = self.at(ix + 1, iy + 1);
        v00 * (1.0 - tx) * (1.0 - ty)
            + v10 * tx * (1.0 - ty)
            + v01 * (1.0 - tx) * ty
            + v11 * tx * ty
    }

    /// Partial derivative `∂v/∂x` of the bilinear patch at `(x, y)`.
    pub fn d_dx(&self, x: f64, y: f64) -> f64 {
        let (ix, _) = locate(&self.x, x);
        let (iy, ty) = locate(&self.y, y);
        let dx = self.x[ix + 1] - self.x[ix];
        let lo = (self.at(ix + 1, iy) - self.at(ix, iy)) / dx;
        let hi = (self.at(ix + 1, iy + 1) - self.at(ix, iy + 1)) / dx;
        lo * (1.0 - ty) + hi * ty
    }

    /// Partial derivative `∂v/∂y` of the bilinear patch at `(x, y)`.
    pub fn d_dy(&self, x: f64, y: f64) -> f64 {
        let (ix, tx) = locate(&self.x, x);
        let (iy, _) = locate(&self.y, y);
        let dy = self.y[iy + 1] - self.y[iy];
        let lo = (self.at(ix, iy + 1) - self.at(ix, iy)) / dy;
        let hi = (self.at(ix + 1, iy + 1) - self.at(ix + 1, iy)) / dy;
        lo * (1.0 - tx) + hi * tx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lut1d_exact_at_nodes() {
        let lut = Lut1d::new(vec![0.0, 0.5, 2.0], vec![1.0, -1.0, 4.0]).unwrap();
        assert_eq!(lut.eval(0.0), 1.0);
        assert_eq!(lut.eval(0.5), -1.0);
        assert_eq!(lut.eval(2.0), 4.0);
    }

    #[test]
    fn lut1d_midpoint_interpolation() {
        let lut = Lut1d::new(vec![0.0, 1.0], vec![0.0, 10.0]).unwrap();
        assert!((lut.eval(0.3) - 3.0).abs() < 1e-15);
        assert!((lut.derivative(0.3) - 10.0).abs() < 1e-15);
    }

    #[test]
    fn lut1d_clamps_out_of_range() {
        let lut = Lut1d::new(vec![0.0, 1.0], vec![2.0, 3.0]).unwrap();
        assert_eq!(lut.eval(-5.0), 2.0);
        assert_eq!(lut.eval(5.0), 3.0);
    }

    #[test]
    fn lut1d_rejects_bad_axes() {
        assert!(matches!(
            Lut1d::new(vec![0.0], vec![1.0]),
            Err(LutError::AxisTooShort { .. })
        ));
        assert!(matches!(
            Lut1d::new(vec![0.0, 0.0], vec![1.0, 2.0]),
            Err(LutError::AxisNotIncreasing { .. })
        ));
        assert!(matches!(
            Lut1d::new(vec![0.0, 1.0], vec![1.0]),
            Err(LutError::ValueShapeMismatch { .. })
        ));
        assert!(matches!(
            Lut1d::new(vec![0.0, 1.0], vec![1.0, f64::NAN]),
            Err(LutError::NonFiniteValue { .. })
        ));
    }

    #[test]
    fn lut2d_reproduces_bilinear_function_exactly() {
        // f(x,y) = 2 + 3x - y + 0.5xy is bilinear, so interpolation is exact
        // everywhere inside the grid.
        let f = |x: f64, y: f64| 2.0 + 3.0 * x - y + 0.5 * x * y;
        let lut = Lut2d::tabulate((-1.0, 1.0), 5, (0.0, 2.0), 4, f);
        for &(x, y) in &[(0.0, 0.0), (-0.7, 1.3), (0.99, 1.99), (0.123, 0.456)] {
            assert!((lut.eval(x, y) - f(x, y)).abs() < 1e-12, "({x},{y})");
        }
    }

    #[test]
    fn lut2d_derivatives_match_bilinear_function() {
        let f = |x: f64, y: f64| 2.0 + 3.0 * x - y + 0.5 * x * y;
        let lut = Lut2d::tabulate((-1.0, 1.0), 5, (0.0, 2.0), 4, f);
        let (x, y) = (0.3, 0.9);
        assert!((lut.d_dx(x, y) - (3.0 + 0.5 * y)).abs() < 1e-12);
        assert!((lut.d_dy(x, y) - (-1.0 + 0.5 * x)).abs() < 1e-12);
    }

    #[test]
    fn lut2d_clamps_out_of_range() {
        let lut = Lut2d::tabulate((0.0, 1.0), 3, (0.0, 1.0), 3, |x, y| x + y);
        assert!((lut.eval(-10.0, -10.0) - 0.0).abs() < 1e-15);
        assert!((lut.eval(10.0, 10.0) - 2.0).abs() < 1e-15);
    }

    #[test]
    fn lut2d_rejects_shape_mismatch() {
        assert!(matches!(
            Lut2d::new(vec![0.0, 1.0], vec![0.0, 1.0], vec![0.0; 3]),
            Err(LutError::ValueShapeMismatch {
                expected: 4,
                got: 3
            })
        ));
    }

    #[test]
    fn locate_handles_interior_points() {
        let pts = [0.0, 1.0, 2.0, 4.0];
        assert_eq!(locate(&pts, 0.5), (0, 0.5));
        let (i, t) = locate(&pts, 3.0);
        assert_eq!(i, 2);
        assert!((t - 0.5).abs() < 1e-15);
    }

    #[test]
    fn error_display_nonempty() {
        let e = LutError::AxisTooShort { axis: "x", len: 1 };
        assert!(!e.to_string().is_empty());
    }
}
