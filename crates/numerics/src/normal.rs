//! Standard-normal special functions: `erf`, the normal CDF and its
//! inverse, and the mass of a centered Gaussian inside a symmetric
//! interval.
//!
//! These back the truncated-Gaussian process sampling of the Monte-Carlo
//! layer and the analytic truncation constants that scaled-sigma
//! importance sampling must carry in its likelihood ratios: a draw
//! truncated to `[-b, b]` has density `φ(x/σ) / (σ · Z)` with
//! `Z = 2Φ(b/σ) − 1 = erf(b/(σ√2))`, and dropping `Z` silently biases the
//! re-weighted tail mass.

/// The error function `erf(x) = (2/√π) ∫₀ˣ e^(−t²) dt`.
///
/// Rational Chebyshev approximation of the complementary error function
/// (Numerical Recipes `erfcc` form), accurate to ≈ 1.2e-7 everywhere —
/// far inside the statistical error of any study that consumes it.
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// The complementary error function `erfc(x) = 1 − erf(x)`.
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.265_512_23
            + t * (1.000_023_68
                + t * (0.374_091_96
                    + t * (0.096_784_18
                        + t * (-0.186_288_06
                            + t * (0.278_868_07
                                + t * (-1.135_203_98
                                    + t * (1.488_515_87
                                        + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// The standard-normal CDF `Φ(x)`.
pub fn norm_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// The inverse standard-normal CDF `Φ⁻¹(p)` for `p ∈ (0, 1)`.
///
/// Acklam's rational approximation (relative error ≈ 1.15e-9), refined by
/// one Halley step against [`norm_cdf`].
///
/// # Panics
///
/// Panics if `p` is not strictly inside `(0, 1)`.
// The coefficient tables keep Acklam's published digits verbatim, one digit
// past f64 resolution.
#[allow(clippy::excessive_precision)]
pub fn inv_norm_cdf(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "inv_norm_cdf needs p in (0, 1), got {p}"
    );
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_690e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;
    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // One Halley refinement against the forward CDF tightens the tails to
    // the accuracy of `erfc` itself.
    let e = norm_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Probability that a centered Gaussian with standard deviation `sigma`
/// falls inside `[-bound, bound]` — the analytic truncation constant `Z`
/// of a symmetric truncated normal.
///
/// # Panics
///
/// Panics if `sigma` or `bound` is not positive.
pub fn gaussian_mass_within(sigma: f64, bound: f64) -> f64 {
    assert!(
        sigma > 0.0 && bound > 0.0,
        "gaussian_mass_within needs positive sigma and bound"
    );
    erf(bound / (sigma * std::f64::consts::SQRT_2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_matches_reference_values() {
        // Reference values from standard tables.
        for (x, want) in [
            (0.0, 0.0),
            (0.5, 0.520_499_877_8),
            (1.0, 0.842_700_792_9),
            (2.0, 0.995_322_265_0),
            (-1.0, -0.842_700_792_9),
        ] {
            assert!((erf(x) - want).abs() < 2e-7, "erf({x}) = {}", erf(x));
        }
    }

    #[test]
    fn cdf_is_symmetric_and_monotone() {
        // The rational erfc approximation is ~1e-7 accurate; the identities
        // below hold to that accuracy, not to machine precision.
        assert!((norm_cdf(0.0) - 0.5).abs() < 1e-7);
        for x in [-3.0, -1.0, -0.2, 0.7, 2.5] {
            assert!((norm_cdf(x) + norm_cdf(-x) - 1.0).abs() < 1e-9);
        }
        assert!(norm_cdf(-1.0) < norm_cdf(0.0));
        assert!(norm_cdf(0.0) < norm_cdf(1.0));
    }

    #[test]
    fn inverse_cdf_round_trips() {
        for p in [1e-6, 0.01, 0.3, 0.5, 0.84, 0.999, 1.0 - 1e-6] {
            let x = inv_norm_cdf(p);
            assert!(
                (norm_cdf(x) - p).abs() < 1e-7,
                "round trip p={p}: x={x}, cdf={}",
                norm_cdf(x)
            );
        }
        assert!((inv_norm_cdf(0.5)).abs() < 1e-6);
        // 2σ quantile.
        assert!((inv_norm_cdf(0.977_249_868) - 2.0).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "inv_norm_cdf")]
    fn inverse_cdf_rejects_degenerate_p() {
        inv_norm_cdf(1.0);
    }

    #[test]
    fn truncation_mass_matches_two_sigma_rule() {
        // ±2σ holds ≈ 95.45 % of the mass.
        let z = gaussian_mass_within(0.025, 0.05);
        assert!((z - 0.954_499_736).abs() < 1e-6, "Z = {z}");
        // Widening the proposal at a fixed bound sheds mass.
        assert!(gaussian_mass_within(0.075, 0.05) < z);
    }
}
