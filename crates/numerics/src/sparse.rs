//! Sparse (CSC) matrices with LU factorization split into one-time symbolic
//! analysis and cheap repeated numeric refactorization.
//!
//! Circuit Jacobians have a topology-fixed sparsity pattern: the nonzero
//! positions are decided by the netlist, only the *values* change between
//! Newton iterations. This module exploits that split:
//!
//! * [`SparsityPattern`] — an immutable CSC skeleton (column pointers + row
//!   indices), built once from the circuit topology.
//! * [`SparseMatrix`] — values laid over a pattern. Stamping writes into
//!   pre-resolved slots; [`SparseMatrix::clear`] + repeated
//!   [`SparseMatrix::add`] mirror the dense [`Matrix`] stamping
//!   API so MNA assembly is target-generic.
//! * [`SparseLu`] — the factorization engine. [`SparseLu::analyze`] runs once
//!   per pattern: it picks a fill-reducing column ordering (greedy minimum
//!   degree on the symmetrized pattern), pins a partial-pivot row order with
//!   a sparse Gilbert–Peierls left-looking factorization (O(flops), no dense
//!   scratch), computes the no-cancellation fill-in pattern of
//!   `P·A·Q = L·U`, and compiles a flat *replay script* (scatter map +
//!   per-column update/divide slot lists). [`SparseLu::refactorize`] then
//!   replays that script over new values with zero allocation and zero
//!   index arithmetic beyond array reads — the cheap per-iteration path.
//!
//! Pivoting is *static*: the row order chosen at analysis time is reused by
//! every refactorization. This is the standard circuit-simulator trade
//! (Jacobian values drift slowly, so a once-good pivot order stays good);
//! a refactorization that does hit a degenerate pivot reports
//! [`SolveError::Singular`] and callers can re-run [`SparseLu::analyze`] to
//! refresh the pivot order before giving up.
//!
//! Error taxonomy and workspace conventions (zero allocation after warmup,
//! `solve_into` with caller-owned buffers) follow `matrix.rs`.

use crate::matrix::{Matrix, SolveError, PIVOT_EPS};

/// Immutable CSC sparsity skeleton: which `(row, col)` slots exist.
///
/// Built once from a coordinate list (duplicates are merged); value storage
/// lives in [`SparseMatrix`]. Row indices are sorted within each column so
/// slot lookup is a binary search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparsityPattern {
    n: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
}

impl SparsityPattern {
    /// Builds an `n x n` pattern from `(row, col)` coordinates.
    ///
    /// Duplicates are merged. Panics if any coordinate is out of range —
    /// patterns come from topology enumeration, so an out-of-range entry is
    /// a caller bug, not a data condition.
    pub fn from_entries(n: usize, entries: &[(usize, usize)]) -> Self {
        let mut coords: Vec<(usize, usize)> = Vec::with_capacity(entries.len());
        for &(r, c) in entries {
            assert!(
                r < n && c < n,
                "pattern entry ({r},{c}) out of range for n={n}"
            );
            coords.push((c, r)); // column-major sort key
        }
        coords.sort_unstable();
        coords.dedup();
        let mut col_ptr = vec![0usize; n + 1];
        let mut row_idx = Vec::with_capacity(coords.len());
        for &(c, r) in &coords {
            col_ptr[c + 1] += 1;
            row_idx.push(r);
        }
        for c in 0..n {
            col_ptr[c + 1] += col_ptr[c];
        }
        SparsityPattern {
            n,
            col_ptr,
            row_idx,
        }
    }

    /// Matrix dimension (patterns are square).
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of structural nonzeros.
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// Flat slot index of `(row, col)`, or `None` if outside the pattern.
    #[inline]
    pub fn slot(&self, row: usize, col: usize) -> Option<usize> {
        let lo = self.col_ptr[col];
        let hi = self.col_ptr[col + 1];
        self.row_idx[lo..hi]
            .binary_search(&row)
            .ok()
            .map(|i| lo + i)
    }

    /// Iterates `(row, col)` coordinates in column-major order.
    pub fn coords(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.n).flat_map(move |c| {
            self.row_idx[self.col_ptr[c]..self.col_ptr[c + 1]]
                .iter()
                .map(move |&r| (r, c))
        })
    }
}

/// Values laid over a [`SparsityPattern`]; the sparse analogue of
/// [`Matrix`] for stamping.
#[derive(Debug, Clone)]
pub struct SparseMatrix {
    pattern: SparsityPattern,
    values: Vec<f64>,
}

impl SparseMatrix {
    /// Zero matrix over `pattern`.
    pub fn new(pattern: SparsityPattern) -> Self {
        let values = vec![0.0; pattern.nnz()];
        SparseMatrix { pattern, values }
    }

    /// The underlying pattern.
    pub fn pattern(&self) -> &SparsityPattern {
        &self.pattern
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.pattern.n
    }

    /// Zeroes every stored value (the pattern is untouched).
    pub fn clear(&mut self) {
        self.values.fill(0.0);
    }

    /// Adds `v` at `(row, col)`. Panics if the slot is not in the pattern —
    /// stamping outside the pre-declared topology is a caller bug.
    #[inline]
    pub fn add(&mut self, row: usize, col: usize, v: f64) {
        let slot = self
            .pattern
            .slot(row, col)
            .unwrap_or_else(|| panic!("stamp at ({row},{col}) outside sparsity pattern"));
        self.values[slot] += v;
    }

    /// Stored value at `(row, col)`; zero for slots outside the pattern.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        self.pattern.slot(row, col).map_or(0.0, |s| self.values[s])
    }

    /// Flat value storage, in pattern (column-major) order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable flat value storage, in pattern (column-major) order — for
    /// callers that maintain the values incrementally (e.g. composing a
    /// rarely-changing linear part with per-device deltas) instead of
    /// re-stamping through [`SparseMatrix::add`].
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// `y = A·x` (column-oriented, allocation-free).
    ///
    /// Panics if `x` or `y` has the wrong length.
    pub fn mul_vec(&self, x: &[f64], y: &mut [f64]) {
        let n = self.pattern.n;
        assert_eq!(x.len(), n, "mul_vec x length");
        assert_eq!(y.len(), n, "mul_vec y length");
        y.fill(0.0);
        for (c, &xc) in x.iter().enumerate() {
            if xc == 0.0 {
                continue;
            }
            for k in self.pattern.col_ptr[c]..self.pattern.col_ptr[c + 1] {
                y[self.pattern.row_idx[k]] += self.values[k] * xc;
            }
        }
    }

    /// Densifies into a [`Matrix`] (tests and cross-checks).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.pattern.n, self.pattern.n);
        for (k, (r, c)) in self.pattern.coords().enumerate() {
            m.add(r, c, self.values[k]);
        }
        m
    }

    /// One-shot solve of `A x = b` (analysis + factorization + solve).
    ///
    /// Convenience for tests and cross-checks; hot paths hold a [`SparseLu`]
    /// and reuse its analysis. Error taxonomy matches
    /// [`Matrix::solve`](crate::Matrix::solve): [`SolveError::DimensionMismatch`]
    /// when `b` has the wrong length, [`SolveError::Singular`] from the
    /// factorization.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, SolveError> {
        if b.len() != self.pattern.n {
            return Err(SolveError::DimensionMismatch {
                expected: self.pattern.n,
                got: b.len(),
            });
        }
        let mut lu = SparseLu::new();
        lu.analyze(self)?;
        let mut x = vec![0.0; self.pattern.n];
        lu.solve_into(b, &mut x);
        Ok(x)
    }
}

/// Sparse LU engine: one-time symbolic analysis + zero-alloc refactorization.
///
/// Lifecycle: [`analyze`](SparseLu::analyze) once per pattern (allocates,
/// chooses orderings, compiles the replay script, and factorizes the given
/// values), then [`refactorize`](SparseLu::refactorize) per value change and
/// [`solve_into`](SparseLu::solve_into) per right-hand side — both
/// allocation-free.
#[derive(Debug, Clone, Default)]
pub struct SparseLu {
    n: usize,
    /// Permuted column `j` is original column `col_perm[j]`.
    col_perm: Vec<usize>,
    /// Permuted row `i` is original row `row_perm[i]`.
    row_perm: Vec<usize>,
    /// Factor storage: CSC over the fill-in pattern of `P·A·Q`, rows sorted.
    fcol_ptr: Vec<usize>,
    frow_idx: Vec<usize>,
    fvals: Vec<f64>,
    /// Factor slot of the diagonal `(j, j)` per column.
    diag_slot: Vec<usize>,
    /// A-slot (pattern order) -> factor slot.
    scatter: Vec<usize>,
    /// Replay script: `fvals[dest] -= fvals[l] * fvals[u]`, grouped per column.
    upd: Vec<(usize, usize, usize)>,
    col_upd: Vec<usize>,
    /// Sub-diagonal slots divided by the column pivot, grouped per column.
    div: Vec<usize>,
    col_div: Vec<usize>,
    /// Solve scratch (permuted frame).
    work: Vec<f64>,
    analyzed_nnz: usize,
    analyzed: bool,
    factored: bool,
    /// Pattern of the last analysis: a re-analysis over the *same* pattern
    /// (the pivot-order-refresh path) reuses the fill-reducing column order
    /// instead of re-running minimum degree — the column order depends only
    /// on the pattern, never on values.
    analyzed_pattern: Option<SparsityPattern>,
}

impl SparseLu {
    /// An empty engine; call [`analyze`](SparseLu::analyze) before use.
    pub fn new() -> Self {
        SparseLu::default()
    }

    /// True once a pattern has been analyzed.
    pub fn is_analyzed(&self) -> bool {
        self.analyzed
    }

    /// True when the stored factors are usable by [`solve_into`](SparseLu::solve_into).
    pub fn is_factored(&self) -> bool {
        self.factored
    }

    /// Symbolic analysis + first factorization.
    ///
    /// Chooses a fill-reducing column order (greedy minimum degree on the
    /// symmetrized pattern, ties to the lowest index — deterministic), pins
    /// the partial-pivot row order with a sparse Gilbert–Peierls left-looking
    /// factorization of the given values (O(flops) — no dense scratch),
    /// computes the no-cancellation fill-in pattern, compiles
    /// the refactorization replay script, and factorizes. Allocates; every
    /// later [`refactorize`](SparseLu::refactorize)/[`solve_into`](SparseLu::solve_into)
    /// over the same pattern is allocation-free.
    ///
    /// Returns [`SolveError::Singular`] (with the failing elimination step)
    /// if the values are numerically singular.
    pub fn analyze(&mut self, a: &SparseMatrix) -> Result<(), SolveError> {
        let n = a.pattern.n;
        self.analyzed = false;
        self.factored = false;
        self.n = n;
        self.analyzed_nnz = a.pattern.nnz();
        let same_pattern = self
            .analyzed_pattern
            .as_ref()
            .is_some_and(|p| *p == a.pattern);
        if !same_pattern {
            self.col_perm = min_degree_order(&a.pattern);
            self.analyzed_pattern = Some(a.pattern.clone());
        }

        // Pin the row order with a Gilbert–Peierls left-looking LU over the
        // permuted columns: per column, a sparse triangular solve against the
        // already-factored columns (DFS reach in the L pattern, processed in
        // topological order), then partial pivoting over the not-yet-pivotal
        // reached rows. Everything — pivot order, no-cancellation fill
        // pattern, and the numeric factors — falls out of one O(flops) pass;
        // there is no dense scratch, so analysis stays cheap at any circuit
        // size (a dense pinning pass would be O(n³) time and O(n²) memory,
        // which dominates wall-clock for array-scale netlists).
        //
        // The reach is structural: entries are kept even when their value
        // works out to exactly zero, so the recorded pattern is the
        // no-cancellation fill-in of `P·A·Q = L·U` for the chosen pivot
        // order — later refactorizations over different values need no new
        // slots.
        let none = usize::MAX;
        // Original row -> pivotal (permuted) position, `none` while unpivoted.
        let mut pinv = vec![none; n];
        // L columns in original-row space: strictly-sub-pivotal rows and
        // their multipliers, in the order the solve produced them.
        let mut lrows: Vec<Vec<usize>> = Vec::with_capacity(n);
        let mut lvals: Vec<Vec<f64>> = Vec::with_capacity(n);
        // U rows per column, as pivotal positions `k < j` (values are not
        // kept — the replay script recomputes them).
        let mut urows: Vec<Vec<usize>> = Vec::with_capacity(n);
        let mut x = vec![0.0f64; n]; // dense accumulator, original-row space
        let mut reached = vec![false; n];
        let mut reach: Vec<usize> = Vec::with_capacity(64); // topological order
        let mut stack: Vec<(usize, usize)> = Vec::with_capacity(64);
        for j in 0..n {
            let oc = self.col_perm[j];
            // DFS from A(:,oc)'s rows through pivoted rows' L columns;
            // reverse postorder = topological order for the solve.
            reach.clear();
            for &r0 in &a.pattern.row_idx[a.pattern.col_ptr[oc]..a.pattern.col_ptr[oc + 1]] {
                if reached[r0] {
                    continue;
                }
                stack.push((r0, 0));
                reached[r0] = true;
                while let Some(&(r, next)) = stack.last() {
                    let kids: &[usize] = match pinv[r] {
                        k if k != none => &lrows[k],
                        _ => &[],
                    };
                    let mut child = None;
                    let mut adv = next;
                    while adv < kids.len() {
                        let rr = kids[adv];
                        adv += 1;
                        if !reached[rr] {
                            child = Some(rr);
                            break;
                        }
                    }
                    stack.last_mut().expect("stack non-empty").1 = adv;
                    match child {
                        Some(c) => {
                            reached[c] = true;
                            stack.push((c, 0));
                        }
                        None => {
                            stack.pop();
                            reach.push(r); // postorder
                        }
                    }
                }
            }
            reach.reverse();
            // Scatter A(:,oc) and run the sparse triangular solve.
            for k in a.pattern.col_ptr[oc]..a.pattern.col_ptr[oc + 1] {
                x[a.pattern.row_idx[k]] = a.values[k];
            }
            for &r in &reach {
                let k = pinv[r];
                if k == none {
                    continue;
                }
                let xr = x[r];
                for (&rr, &lv) in lrows[k].iter().zip(&lvals[k]) {
                    x[rr] -= lv * xr;
                }
            }
            // Partial pivot over the rows this column can eliminate.
            let mut piv_row = none;
            let mut piv_mag = 0.0f64;
            for &r in &reach {
                if pinv[r] == none {
                    let mag = x[r].abs();
                    if mag > piv_mag {
                        piv_mag = mag;
                        piv_row = r;
                    }
                }
            }
            if piv_row == none || piv_mag < PIVOT_EPS {
                for &r in &reach {
                    reached[r] = false;
                    x[r] = 0.0;
                }
                return Err(SolveError::Singular { step: j });
            }
            pinv[piv_row] = j;
            let inv_piv = 1.0 / x[piv_row];
            let mut lr = Vec::new();
            let mut lv = Vec::new();
            let mut ur = Vec::new();
            for &r in &reach {
                match pinv[r] {
                    k if k == j => {}
                    k if k != none => ur.push(k),
                    _ => {
                        lr.push(r);
                        lv.push(x[r] * inv_piv);
                    }
                }
                reached[r] = false;
                x[r] = 0.0;
            }
            lrows.push(lr);
            lvals.push(lv);
            urows.push(ur);
        }

        self.row_perm = vec![0usize; n];
        for (r, &k) in pinv.iter().enumerate() {
            self.row_perm[k] = r;
        }
        let mut inv_row = vec![0usize; n];
        let mut inv_col = vec![0usize; n];
        for i in 0..n {
            inv_row[self.row_perm[i]] = i;
            inv_col[self.col_perm[i]] = i;
        }

        // Per-column factor rows in permuted space: U's pivotal positions,
        // the diagonal, and L's sub-pivotal rows mapped through the (now
        // complete) row permutation.
        let mut fcols: Vec<Vec<usize>> = Vec::with_capacity(n);
        for j in 0..n {
            let mut rows: Vec<usize> = urows[j]
                .iter()
                .copied()
                .chain(std::iter::once(j))
                .chain(lrows[j].iter().map(|&r| pinv[r]))
                .collect();
            rows.sort_unstable();
            fcols.push(rows);
        }

        // Flatten the factor pattern.
        self.fcol_ptr = vec![0usize; n + 1];
        self.frow_idx.clear();
        self.diag_slot = vec![0usize; n];
        for (j, rows) in fcols.iter().enumerate() {
            for &r in rows {
                if r == j {
                    self.diag_slot[j] = self.frow_idx.len();
                }
                self.frow_idx.push(r);
            }
            self.fcol_ptr[j + 1] = self.frow_idx.len();
        }
        self.fvals = vec![0.0; self.frow_idx.len()];

        fn fslot(fcol_ptr: &[usize], frow_idx: &[usize], row: usize, col: usize) -> usize {
            let lo = fcol_ptr[col];
            let hi = fcol_ptr[col + 1];
            lo + frow_idx[lo..hi]
                .binary_search(&row)
                .expect("factor pattern covers A and all fill-in")
        }

        // Scatter map: A slot (pattern order) -> factor slot.
        self.scatter.clear();
        self.scatter.reserve(a.pattern.nnz());
        for (r, c) in a.pattern.coords() {
            self.scatter.push(fslot(
                &self.fcol_ptr,
                &self.frow_idx,
                inv_row[r],
                inv_col[c],
            ));
        }

        // Replay script. For column j, ascending k over its super-diagonal
        // rows (the U entries): fvals[(r,j)] -= fvals[(r,k)] * fvals[(k,j)]
        // for every sub-diagonal row r of column k; then divide column j's
        // sub-diagonal slots by the pivot.
        self.upd.clear();
        self.div.clear();
        self.col_upd = vec![0usize; n + 1];
        self.col_div = vec![0usize; n + 1];
        for j in 0..n {
            for s in self.fcol_ptr[j]..self.fcol_ptr[j + 1] {
                let k = self.frow_idx[s];
                if k >= j {
                    break; // rows sorted: super-diagonal entries come first
                }
                for ls in self.fcol_ptr[k]..self.fcol_ptr[k + 1] {
                    let r = self.frow_idx[ls];
                    if r > k {
                        let dest = fslot(&self.fcol_ptr, &self.frow_idx, r, j);
                        self.upd.push((dest, ls, s));
                    }
                }
            }
            self.col_upd[j + 1] = self.upd.len();
            for s in self.fcol_ptr[j]..self.fcol_ptr[j + 1] {
                if self.frow_idx[s] > j {
                    self.div.push(s);
                }
            }
            self.col_div[j + 1] = self.div.len();
        }

        self.work = vec![0.0; n];
        self.analyzed = true;
        self.refactorize(a)
    }

    /// Numeric refactorization over new values, reusing the frozen orderings
    /// and fill-in pattern. Allocation-free.
    ///
    /// Returns [`SolveError::Singular`] if a pivot underflows
    /// (`PIVOT_EPS`-degenerate) under the frozen pivot order — callers may
    /// then [`analyze`](SparseLu::analyze) again to refresh the ordering.
    ///
    /// Panics if `a`'s pattern differs from the analyzed one (slot-count
    /// check): mixing patterns is a caller bug.
    pub fn refactorize(&mut self, a: &SparseMatrix) -> Result<(), SolveError> {
        assert!(self.analyzed, "refactorize before analyze");
        assert_eq!(
            a.pattern.nnz(),
            self.analyzed_nnz,
            "sparsity pattern changed since analyze"
        );
        assert_eq!(a.pattern.n, self.n, "dimension changed since analyze");
        self.factored = false;
        self.fvals.fill(0.0);
        for (k, &s) in self.scatter.iter().enumerate() {
            self.fvals[s] += a.values[k];
        }
        for j in 0..self.n {
            for &(dest, l, u) in &self.upd[self.col_upd[j]..self.col_upd[j + 1]] {
                self.fvals[dest] -= self.fvals[l] * self.fvals[u];
            }
            let p = self.fvals[self.diag_slot[j]];
            if p.abs() < PIVOT_EPS {
                return Err(SolveError::Singular { step: j });
            }
            let inv = 1.0 / p;
            for &s in &self.div[self.col_div[j]..self.col_div[j + 1]] {
                self.fvals[s] *= inv;
            }
        }
        self.factored = true;
        Ok(())
    }

    /// Solves `A x = b` using the stored factors. Allocation-free.
    ///
    /// Panics unless factored and `b`/`x` have length `n` — the hot path
    /// owns its buffers, so mismatches are caller bugs.
    pub fn solve_into(&mut self, b: &[f64], x: &mut [f64]) {
        assert!(
            self.factored,
            "solve_into before a successful factorization"
        );
        assert_eq!(b.len(), self.n, "rhs length mismatch");
        assert_eq!(x.len(), self.n, "solution length mismatch");
        let n = self.n;
        for i in 0..n {
            self.work[i] = b[self.row_perm[i]];
        }
        // Forward: L y = P b (unit diagonal), column-oriented.
        for j in 0..n {
            let yj = self.work[j];
            if yj != 0.0 {
                for &s in &self.div[self.col_div[j]..self.col_div[j + 1]] {
                    self.work[self.frow_idx[s]] -= self.fvals[s] * yj;
                }
            }
        }
        // Backward: U w = y, column-oriented.
        for j in (0..n).rev() {
            self.work[j] /= self.fvals[self.diag_slot[j]];
            let wj = self.work[j];
            if wj != 0.0 {
                for s in self.fcol_ptr[j]..self.fcol_ptr[j + 1] {
                    let r = self.frow_idx[s];
                    if r >= j {
                        break;
                    }
                    self.work[r] -= self.fvals[s] * wj;
                }
            }
        }
        // Undo the column permutation: unknown j in the permuted frame is
        // original unknown col_perm[j].
        for j in 0..n {
            x[self.col_perm[j]] = self.work[j];
        }
    }
}

/// Greedy minimum-degree ordering on the symmetrized pattern.
///
/// Classic fill-reducing heuristic: repeatedly eliminate the vertex of
/// minimum degree in the (undirected) graph of `A + Aᵀ`, connecting its
/// neighbours into a clique. Ties break to the lowest index, so the order is
/// deterministic. O(n³) worst case — fine at circuit sizes.
fn min_degree_order(p: &SparsityPattern) -> Vec<usize> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let n = p.n;
    // Sorted adjacency lists over *alive* vertices only — the invariant that
    // makes `adj[v].len()` the elimination-graph degree. A dense n×n bitmap
    // with full rescans would be O(n²) memory and O(n³) time, which is the
    // dominant analysis cost at array-scale circuits; the list + lazy-heap
    // formulation below produces the *identical* order (same greedy rule,
    // same lowest-index tie break) in roughly O(fill · log n).
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (r, c) in p.coords() {
        if r != c {
            adj[r].push(c);
            adj[c].push(r);
        }
    }
    for l in &mut adj {
        l.sort_unstable();
        l.dedup();
    }
    let mut alive = vec![true; n];
    // Lazy min-heap of (degree, vertex): stale entries are skipped on pop
    // (degree mismatch or dead vertex); every degree change pushes a fresh
    // entry, so the true minimum — lowest index on ties — is always present.
    let mut heap: BinaryHeap<Reverse<(usize, usize)>> = BinaryHeap::with_capacity(2 * n);
    for (v, l) in adj.iter().enumerate() {
        heap.push(Reverse((l.len(), v)));
    }
    let mut order = Vec::with_capacity(n);
    let mut merged: Vec<usize> = Vec::new();
    while order.len() < n {
        let Reverse((d, v)) = heap.pop().expect("heap holds every alive vertex");
        if !alive[v] || adj[v].len() != d {
            continue;
        }
        alive[v] = false;
        order.push(v);
        let nbrs = std::mem::take(&mut adj[v]);
        // Connect the eliminated vertex's neighbours into a clique: each
        // neighbour drops `v` and gains the other members (sorted merge).
        for &u in &nbrs {
            merged.clear();
            let mut it_a = adj[u].iter().copied().filter(|&w| w != v).peekable();
            let mut it_b = nbrs.iter().copied().filter(|&w| w != u).peekable();
            loop {
                match (it_a.peek(), it_b.peek()) {
                    (Some(&a), Some(&b)) => {
                        let w = if a <= b { it_a.next() } else { it_b.next() };
                        if a == b {
                            it_b.next();
                        }
                        merged.push(w.expect("peeked"));
                    }
                    (Some(_), None) => merged.push(it_a.next().expect("peeked")),
                    (None, Some(_)) => merged.push(it_b.next().expect("peeked")),
                    (None, None) => break,
                }
            }
            adj[u].clear();
            adj[u].extend_from_slice(&merged);
            heap.push(Reverse((adj[u].len(), u)));
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_pattern(n: usize) -> Vec<(usize, usize)> {
        (0..n).flat_map(|r| (0..n).map(move |c| (r, c))).collect()
    }

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn identity_solve() {
        let p = SparsityPattern::from_entries(3, &[(0, 0), (1, 1), (2, 2)]);
        let mut a = SparseMatrix::new(p);
        for i in 0..3 {
            a.add(i, i, 2.0);
        }
        let x = a.solve(&[2.0, 4.0, 6.0]).unwrap();
        assert_close(&x, &[1.0, 2.0, 3.0], 1e-14);
    }

    #[test]
    fn zero_diagonal_needs_pivoting() {
        // Voltage-source-like branch row: structurally zero diagonal.
        let p = SparsityPattern::from_entries(2, &dense_pattern(2));
        let mut a = SparseMatrix::new(p);
        a.add(0, 1, 1.0);
        a.add(1, 0, 1.0);
        let x = a.solve(&[3.0, 5.0]).unwrap();
        assert_close(&x, &[5.0, 3.0], 1e-14);
    }

    #[test]
    fn arrow_matrix_fill_in() {
        // Arrow pattern: elimination in natural order fills the whole matrix;
        // min-degree should keep the hub last. Either way, results match dense.
        let n = 5;
        let mut entries = vec![(n - 1, n - 1)];
        for i in 0..n - 1 {
            entries.push((i, i));
            entries.push((i, n - 1));
            entries.push((n - 1, i));
        }
        let p = SparsityPattern::from_entries(n, &entries);
        let mut a = SparseMatrix::new(p);
        for i in 0..n - 1 {
            a.add(i, i, 4.0 + i as f64);
            a.add(i, n - 1, 1.0);
            a.add(n - 1, i, -1.0);
        }
        a.add(n - 1, n - 1, 6.0);
        let b: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
        let sparse_x = a.solve(&b).unwrap();
        let dense_x = a.to_dense().solve(&b).unwrap();
        assert_close(&sparse_x, &dense_x, 1e-12);
    }

    #[test]
    fn refactorize_tracks_new_values() {
        let p = SparsityPattern::from_entries(3, &[(0, 0), (1, 1), (2, 2), (0, 2), (2, 0)]);
        let mut a = SparseMatrix::new(p);
        a.add(0, 0, 2.0);
        a.add(1, 1, 3.0);
        a.add(2, 2, 4.0);
        a.add(0, 2, 1.0);
        a.add(2, 0, -1.0);
        let mut lu = SparseLu::new();
        lu.analyze(&a).unwrap();
        let b = [1.0, 2.0, 3.0];
        let mut x = vec![0.0; 3];
        lu.solve_into(&b, &mut x);
        assert_close(&x, &a.to_dense().solve(&b).unwrap(), 1e-12);

        a.clear();
        a.add(0, 0, 5.0);
        a.add(1, 1, -2.0);
        a.add(2, 2, 7.0);
        a.add(0, 2, 0.5);
        a.add(2, 0, 2.0);
        lu.refactorize(&a).unwrap();
        lu.solve_into(&b, &mut x);
        assert_close(&x, &a.to_dense().solve(&b).unwrap(), 1e-12);
    }

    #[test]
    fn singular_reported_at_analysis() {
        let p = SparsityPattern::from_entries(2, &dense_pattern(2));
        let mut a = SparseMatrix::new(p);
        a.add(0, 0, 1.0);
        a.add(0, 1, 2.0);
        a.add(1, 0, 2.0);
        a.add(1, 1, 4.0);
        assert!(matches!(
            a.solve(&[1.0, 1.0]),
            Err(SolveError::Singular { .. })
        ));
    }

    #[test]
    fn singular_reported_at_refactorization() {
        let p = SparsityPattern::from_entries(2, &dense_pattern(2));
        let mut a = SparseMatrix::new(p);
        a.add(0, 0, 1.0);
        a.add(1, 1, 1.0);
        let mut lu = SparseLu::new();
        lu.analyze(&a).unwrap();
        a.clear();
        a.add(0, 0, 1.0);
        a.add(0, 1, 2.0);
        a.add(1, 0, 2.0);
        a.add(1, 1, 4.0);
        let err = lu.refactorize(&a).unwrap_err();
        assert!(matches!(err, SolveError::Singular { .. }));
        assert!(!lu.is_factored());
    }

    #[test]
    fn dimension_mismatch_parity_with_dense() {
        let p = SparsityPattern::from_entries(2, &[(0, 0), (1, 1)]);
        let mut a = SparseMatrix::new(p);
        a.add(0, 0, 1.0);
        a.add(1, 1, 1.0);
        assert_eq!(
            a.solve(&[1.0, 2.0, 3.0]),
            Err(SolveError::DimensionMismatch {
                expected: 2,
                got: 3
            })
        );
    }

    #[test]
    fn mna_shaped_system_matches_dense() {
        // 2 nodes + 1 vsource branch: G-stamped node block plus ±1 branch
        // rows with a structurally zero (branch, branch) diagonal.
        let n = 3;
        let entries = vec![
            (0, 0),
            (0, 1),
            (1, 0),
            (1, 1),
            (0, 2),
            (2, 0),
            (1, 1),
            (2, 2),
        ];
        let p = SparsityPattern::from_entries(n, &entries);
        let mut a = SparseMatrix::new(p);
        a.add(0, 0, 1e-3);
        a.add(0, 1, -1e-3);
        a.add(1, 0, -1e-3);
        a.add(1, 1, 2e-3);
        a.add(0, 2, 1.0);
        a.add(2, 0, 1.0);
        let b = [0.0, 1e-4, 0.8];
        let sparse_x = a.solve(&b).unwrap();
        let dense_x = a.to_dense().solve(&b).unwrap();
        assert_close(&sparse_x, &dense_x, 1e-12);
    }

    #[test]
    fn mul_vec_matches_dense_product() {
        let entries = vec![(0, 0), (0, 2), (1, 1), (2, 0), (2, 2)];
        let p = SparsityPattern::from_entries(3, &entries);
        let mut a = SparseMatrix::new(p);
        a.add(0, 0, 2.0);
        a.add(0, 2, -1.0);
        a.add(1, 1, 3.0);
        a.add(2, 0, 0.5);
        a.add(2, 2, 4.0);
        let x = [1.0, -2.0, 3.0];
        let mut y = [f64::NAN; 3];
        a.mul_vec(&x, &mut y);
        assert_close(&y, &[-1.0, -6.0, 12.5], 1e-15);
    }
}
