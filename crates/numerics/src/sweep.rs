//! Parameter-sweep grid constructors.
//!
//! Every experiment in the reproduced paper is a sweep — over gate voltage,
//! cell ratio β, or supply voltage — so uniform and logarithmic grids are
//! used throughout the workspace.

/// `n` evenly spaced points covering `[lo, hi]` inclusive.
///
/// # Panics
///
/// Panics if `n < 2` or `lo >= hi`.
///
/// # Examples
///
/// ```
/// use tfet_numerics::linspace;
/// assert_eq!(linspace(0.0, 1.0, 3), vec![0.0, 0.5, 1.0]);
/// ```
pub fn linspace(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2, "linspace needs at least 2 points");
    assert!(lo < hi, "linspace needs lo < hi");
    let step = (hi - lo) / (n - 1) as f64;
    (0..n)
        .map(|i| {
            if i == n - 1 {
                hi // exact endpoint, no accumulated rounding
            } else {
                lo + step * i as f64
            }
        })
        .collect()
}

/// `n` logarithmically spaced points covering `[10^lo_exp, 10^hi_exp]`.
///
/// # Panics
///
/// Panics if `n < 2` or `lo_exp >= hi_exp`.
///
/// # Examples
///
/// ```
/// use tfet_numerics::logspace;
/// let pts = logspace(0.0, 2.0, 3);
/// assert!((pts[1] - 10.0).abs() < 1e-12);
/// ```
pub fn logspace(lo_exp: f64, hi_exp: f64, n: usize) -> Vec<f64> {
    linspace(lo_exp, hi_exp, n)
        .into_iter()
        .map(|e| 10f64.powf(e))
        .collect()
}

/// `n` geometrically spaced points covering `[lo, hi]` (both positive).
///
/// # Panics
///
/// Panics if `n < 2`, either bound is non-positive, or `lo >= hi`.
///
/// # Examples
///
/// ```
/// use tfet_numerics::geomspace;
/// let pts = geomspace(1.0, 100.0, 3);
/// assert!((pts[1] - 10.0).abs() < 1e-12);
/// ```
pub fn geomspace(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(lo > 0.0 && hi > 0.0, "geomspace needs positive bounds");
    logspace(lo.log10(), hi.log10(), n)
}

/// Evaluates `f` at every grid point on the default worker pool, returning
/// `(point, f(point))` pairs in grid order.
///
/// Each point is an independent simulation, so sweeps parallelize with the
/// same determinism guarantee as [`par_map`](crate::parallel::par_map):
/// values are identical to a serial loop at any thread count.
///
/// # Examples
///
/// ```
/// use tfet_numerics::{linspace, par_grid};
///
/// let curve = par_grid(&linspace(0.0, 1.0, 3), |x| x * x);
/// assert_eq!(curve, vec![(0.0, 0.0), (0.5, 0.25), (1.0, 1.0)]);
/// ```
pub fn par_grid<T, F>(points: &[f64], f: F) -> Vec<(f64, T)>
where
    T: Send,
    F: Fn(f64) -> T + Sync,
{
    crate::parallel::par_map(points.len(), None, |i| (points[i], f(points[i])))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_grid_preserves_grid_order() {
        let grid = linspace(0.0, 2.0, 9);
        let curve = par_grid(&grid, |x| 3.0 * x + 1.0);
        assert_eq!(curve.len(), 9);
        for (i, (x, y)) in curve.iter().enumerate() {
            assert_eq!(*x, grid[i]);
            assert_eq!(*y, 3.0 * grid[i] + 1.0);
        }
    }

    #[test]
    fn linspace_endpoints_are_exact() {
        let pts = linspace(0.1, 0.9, 17);
        assert_eq!(pts.len(), 17);
        assert_eq!(pts[0], 0.1);
        assert_eq!(pts[16], 0.9);
    }

    #[test]
    fn linspace_is_uniform() {
        let pts = linspace(-1.0, 1.0, 5);
        for w in pts.windows(2) {
            assert!((w[1] - w[0] - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn linspace_rejects_single_point() {
        linspace(0.0, 1.0, 1);
    }

    #[test]
    #[should_panic(expected = "lo < hi")]
    fn linspace_rejects_inverted_range() {
        linspace(1.0, 0.0, 3);
    }

    #[test]
    fn logspace_covers_decades() {
        let pts = logspace(-17.0, -4.0, 14);
        assert!((pts[0] - 1e-17).abs() < 1e-29);
        assert!((pts[13] - 1e-4).abs() < 1e-16);
    }

    #[test]
    fn geomspace_is_geometric() {
        let pts = geomspace(2.0, 32.0, 5);
        for w in pts.windows(2) {
            assert!((w[1] / w[0] - 2.0).abs() < 1e-10);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomspace_rejects_nonpositive() {
        geomspace(0.0, 1.0, 3);
    }
}
