//! Deterministic thread-pool fan-out for embarrassingly parallel workloads.
//!
//! Monte-Carlo sampling, β-sweeps and benchmark grids all evaluate an
//! independent function at each index of a known-size domain. [`par_map`]
//! runs such a function across a scoped worker pool and returns results in
//! index order, so output is **bit-identical to a serial loop at any thread
//! count** — parallelism changes only wall-clock time, never values. This is
//! what lets Monte-Carlo yield curves from different machines (or thread
//! counts) be compared point-by-point.
//!
//! Workers pull indices from a shared atomic counter (work stealing in its
//! simplest form), so uneven per-item cost — e.g. Newton solves that hit the
//! gmin ladder on hard samples — balances automatically.
//!
//! The worker count defaults to available parallelism, clamped by the
//! `RAYON_NUM_THREADS` environment variable (the de-facto convention for
//! Rust numeric code; honoring it means job schedulers that already set it
//! keep working).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads [`par_map`] uses when `threads` is `None`:
/// available parallelism, clamped by `RAYON_NUM_THREADS` when set to a
/// positive integer.
pub fn default_threads() -> usize {
    let available = std::thread::available_parallelism().map_or(1, |n| n.get());
    match std::env::var("RAYON_NUM_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => n.min(64),
            _ => available,
        },
        Err(_) => available,
    }
}

/// Maps `f` over `0..n` on a scoped worker pool, returning results in index
/// order.
///
/// `threads` picks the worker count; `None` means [`default_threads`]. With
/// one worker (or `n <= 1`) the map degenerates to a plain serial loop, and
/// because `f` receives only the item index — never worker identity or
/// completion order — the output `Vec` is identical across all thread
/// counts.
///
/// # Panics
///
/// Propagates a panic from `f` (the scope joins all workers first).
///
/// # Examples
///
/// ```
/// use tfet_numerics::parallel::par_map;
///
/// let squares = par_map(5, Some(2), |i| (i * i) as f64);
/// assert_eq!(squares, vec![0.0, 1.0, 4.0, 9.0, 16.0]);
/// ```
pub fn par_map<T, F>(n: usize, threads: Option<usize>, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    par_map_with(n, threads, || (), |(), i| f(i))
}

/// [`par_map`] with per-worker scratch state: each worker calls `init`
/// once, then threads `&mut state` through every item it pulls.
///
/// The state is a *cache*, not an input: `f(state, i)` must return the same
/// value whatever state it receives, because which worker (and therefore
/// which state instance, warmed by which prior items) evaluates an item
/// depends on scheduling. Compiled-experiment reuse is the canonical use —
/// a worker compiles a circuit once and rebinds parameters per item, which
/// changes wall-clock only, never values. Under that contract the output is
/// bit-identical to a serial loop at any thread count, like [`par_map`].
///
/// # Panics
///
/// Propagates a panic from `init` or `f` (the scope joins all workers
/// first).
pub fn par_map_with<S, T, I, F>(n: usize, threads: Option<usize>, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let workers = threads.unwrap_or_else(default_threads).max(1).min(n.max(1));
    if workers <= 1 || n <= 1 {
        let mut state = init();
        return (0..n).map(|i| f(&mut state, i)).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut state = init();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let value = f(&mut state, i);
                    slots.lock().unwrap()[i] = Some(value);
                }
            });
        }
    });
    slots
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|slot| slot.expect("worker pool left an index uncomputed"))
        .collect()
}

/// Applies `f(index, item)` to every element of `items` in place across a
/// scoped worker pool, splitting the slice into contiguous blocks.
///
/// Each worker owns a disjoint sub-slice, so no locking is needed and — as
/// with [`par_map`] — the result is **bit-identical to a serial loop at any
/// thread count**: `f` sees only the global item index and the item itself,
/// never worker identity. `threads` picks the worker count; `None` means
/// [`default_threads`]. With one worker (or fewer than two items) this is a
/// plain serial loop.
///
/// Unlike [`par_map`]'s work-stealing counter, blocks are static: this is
/// intended for workloads whose per-item cost is roughly uniform, such as
/// device-model evaluation during circuit assembly.
///
/// # Panics
///
/// Propagates a panic from `f` (the scope joins all workers first).
///
/// # Examples
///
/// ```
/// use tfet_numerics::parallel::par_for_each_mut;
///
/// let mut xs = vec![0.0f64; 5];
/// par_for_each_mut(&mut xs, Some(2), |i, x| *x = (i * i) as f64);
/// assert_eq!(xs, vec![0.0, 1.0, 4.0, 9.0, 16.0]);
/// ```
pub fn par_for_each_mut<T, F>(items: &mut [T], threads: Option<usize>, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let n = items.len();
    let workers = threads.unwrap_or_else(default_threads).max(1).min(n.max(1));
    if workers <= 1 || n <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }

    let block = n.div_ceil(workers);
    std::thread::scope(|scope| {
        for (b, chunk) in items.chunks_mut(block).enumerate() {
            let f = &f;
            scope.spawn(move || {
                let base = b * block;
                for (off, item) in chunk.iter_mut().enumerate() {
                    f(base + off, item);
                }
            });
        }
    });
}

/// Fallible [`par_map_with`]: per-worker scratch state, with either every
/// success in index order or the error from the **lowest failing index** —
/// evaluated fully before the scan, so the reported error is
/// scheduling-independent.
///
/// # Errors
///
/// Returns the `Err` produced at the smallest index for which `f` failed.
pub fn par_try_map_with<S, T, E, I, F>(
    n: usize,
    threads: Option<usize>,
    init: I,
    f: F,
) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> Result<T, E> + Sync,
{
    let mut out = Vec::with_capacity(n);
    for result in par_map_with(n, threads, init, f) {
        out.push(result?);
    }
    Ok(out)
}

/// Fallible [`par_map`]: maps `f` over `0..n` and returns either every
/// success in index order or the error from the **lowest failing index**.
///
/// All items are evaluated before the scan, so the reported error does not
/// depend on scheduling — like [`par_map`], the result is identical at any
/// thread count.
///
/// # Errors
///
/// Returns the `Err` produced at the smallest index for which `f` failed.
pub fn par_try_map<T, E, F>(n: usize, threads: Option<usize>, f: F) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    let mut out = Vec::with_capacity(n);
    for result in par_map(n, threads, f) {
        out.push(result?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order() {
        let out = par_map(100, Some(4), |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn thread_count_does_not_change_values() {
        let f = |i: usize| {
            // A value that would differ if worker identity leaked in.
            let x = (i as f64).sin() * 1e3;
            x - x.floor()
        };
        let serial: Vec<f64> = (0..64).map(f).collect();
        for threads in [1, 2, 3, 8, 17] {
            assert_eq!(par_map(64, Some(threads), f), serial, "threads = {threads}");
        }
    }

    #[test]
    fn empty_and_single_domains_work() {
        assert_eq!(par_map(0, Some(4), |i| i), Vec::<usize>::new());
        assert_eq!(par_map(1, Some(4), |i| i + 7), vec![7]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        assert_eq!(par_map(3, Some(16), |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn try_map_reports_lowest_failing_index() {
        let result: Result<Vec<usize>, String> = par_try_map(50, Some(4), |i| {
            if i % 7 == 5 {
                Err(format!("bad {i}"))
            } else {
                Ok(i)
            }
        });
        assert_eq!(result, Err("bad 5".to_string()));
    }

    #[test]
    fn try_map_collects_successes() {
        let result: Result<Vec<usize>, String> = par_try_map(10, Some(2), Ok);
        assert_eq!(result, Ok((0..10).collect()));
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn map_with_state_matches_stateless_at_any_thread_count() {
        // State used purely as a cache (call counter) must not leak into
        // the values.
        let f = |calls: &mut usize, i: usize| {
            *calls += 1;
            (i * i) as f64
        };
        let serial: Vec<f64> = (0..40).map(|i| (i * i) as f64).collect();
        for threads in [1, 2, 5] {
            assert_eq!(par_map_with(40, Some(threads), || 0usize, f), serial);
        }
    }

    #[test]
    fn try_map_with_reports_lowest_failing_index() {
        let result: Result<Vec<usize>, String> = par_try_map_with(
            50,
            Some(4),
            || (),
            |(), i| {
                if i % 9 == 4 {
                    Err(format!("bad {i}"))
                } else {
                    Ok(i)
                }
            },
        );
        assert_eq!(result, Err("bad 4".to_string()));
    }

    #[test]
    fn for_each_mut_matches_serial_at_any_thread_count() {
        let f = |i: usize, x: &mut f64| *x = (i as f64).cos() * 1e3 + i as f64;
        let mut serial = vec![0.0f64; 97];
        for (i, x) in serial.iter_mut().enumerate() {
            f(i, x);
        }
        for threads in [1, 2, 3, 8, 16] {
            let mut xs = vec![0.0f64; 97];
            par_for_each_mut(&mut xs, Some(threads), f);
            assert_eq!(xs, serial, "threads = {threads}");
        }
    }

    #[test]
    fn for_each_mut_handles_empty_and_tiny_slices() {
        let mut empty: Vec<u32> = vec![];
        par_for_each_mut(&mut empty, Some(4), |_, _| unreachable!());
        let mut one = vec![5u32];
        par_for_each_mut(&mut one, Some(4), |i, x| *x += i as u32 + 1);
        assert_eq!(one, vec![6]);
    }

    #[test]
    fn init_runs_once_per_worker_serially() {
        use std::sync::atomic::AtomicUsize;
        let inits = AtomicUsize::new(0);
        let out = par_map_with(
            10,
            Some(1),
            || inits.fetch_add(1, Ordering::Relaxed),
            |_, i| i,
        );
        assert_eq!(out, (0..10).collect::<Vec<_>>());
        assert_eq!(inits.load(Ordering::Relaxed), 1, "serial path: one init");
    }
}
