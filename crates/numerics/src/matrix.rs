//! Dense row-major matrices and LU-based linear solves.
//!
//! Circuit matrices produced by modified nodal analysis of SRAM cells are
//! small (≤ ~20 unknowns), so a dense LU factorization with partial pivoting
//! is both the simplest and the fastest practical choice — sparse machinery
//! would cost more in overhead than it saves.

use std::fmt;

/// Error returned when a linear solve cannot be completed.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// The matrix is (numerically) singular; the pivot magnitude fell below
    /// the stability threshold at the reported elimination step.
    Singular {
        /// Elimination step (column) at which the zero pivot was met.
        step: usize,
    },
    /// The right-hand side length does not match the matrix dimension.
    DimensionMismatch {
        /// Number of rows in the matrix.
        expected: usize,
        /// Length of the supplied right-hand side.
        got: usize,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Singular { step } => {
                write!(f, "matrix is singular at elimination step {step}")
            }
            SolveError::DimensionMismatch { expected, got } => {
                write!(f, "right-hand side has length {got}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for SolveError {}

/// A dense, row-major, square-or-rectangular matrix of `f64`.
///
/// # Examples
///
/// ```
/// use tfet_numerics::matrix::Matrix;
///
/// let mut m = Matrix::zeros(2, 2);
/// m[(0, 0)] = 4.0;
/// m[(1, 1)] = 2.0;
/// let x = m.solve(&[8.0, 2.0]).unwrap();
/// assert_eq!(x, vec![2.0, 1.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates an `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows are not all the same length.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "all rows must have equal length");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Resets every entry to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.fill(0.0);
    }

    /// Adds `value` to the entry at `(row, col)` — the "stamping" primitive
    /// used by modified nodal analysis.
    #[inline]
    pub fn add(&mut self, row: usize, col: usize, value: f64) {
        self[(row, col)] += value;
    }

    /// Matrix–vector product `A · x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "vector length must match column count");
        let mut y = vec![0.0; self.rows];
        for (i, yi) in y.iter_mut().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            *yi = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        y
    }

    /// Solves `A · x = b` via LU factorization with partial pivoting.
    ///
    /// The matrix itself is not modified. Each call allocates a working copy
    /// of the factors plus the solution vector (routed through
    /// [`LuWorkspace`]); hot paths that solve repeatedly at a fixed size
    /// should hold their own [`LuWorkspace`] and amortize those allocations.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Singular`] when a pivot is smaller than
    /// `~1e-300` in magnitude, and [`SolveError::DimensionMismatch`] when
    /// `b.len() != self.rows()`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, SolveError> {
        assert_eq!(self.rows, self.cols, "solve requires a square matrix");
        if b.len() != self.rows {
            return Err(SolveError::DimensionMismatch {
                expected: self.rows,
                got: b.len(),
            });
        }
        let mut ws = LuWorkspace::new(self.rows);
        ws.factorize(self)?;
        let mut x = vec![0.0; self.rows];
        ws.solve_into(b, &mut x);
        Ok(x)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:>12.5e}", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// An LU factorization (with partial pivoting) of a square matrix.
///
/// Factorize once, then solve against many right-hand sides — the pattern the
/// transient simulator uses inside a Newton iteration when the Jacobian is
/// frozen.
#[derive(Debug, Clone)]
pub struct Lu {
    n: usize,
    /// Combined L (unit lower, below diagonal) and U (upper incl. diagonal).
    lu: Vec<f64>,
    /// Row permutation: `perm[i]` is the original row now in position `i`.
    perm: Vec<usize>,
}

/// Pivot magnitudes below this are treated as exact zeros (singularity).
pub(crate) const PIVOT_EPS: f64 = 1e-300;

/// In-place LU elimination with partial pivoting over a packed row-major
/// buffer. Shared by [`Lu`], [`LuWorkspace`], and the sparse engine's
/// analysis-time pivot-order selection (`sparse.rs`).
pub(crate) fn factorize_in_place(
    n: usize,
    lu: &mut [f64],
    perm: &mut [usize],
) -> Result<(), SolveError> {
    debug_assert_eq!(lu.len(), n * n);
    debug_assert_eq!(perm.len(), n);
    for (i, p) in perm.iter_mut().enumerate() {
        *p = i;
    }
    for k in 0..n {
        // Partial pivot: find the largest magnitude in column k at/below row k.
        let mut pivot_row = k;
        let mut pivot_mag = lu[k * n + k].abs();
        for r in (k + 1)..n {
            let mag = lu[r * n + k].abs();
            if mag > pivot_mag {
                pivot_mag = mag;
                pivot_row = r;
            }
        }
        if pivot_mag < PIVOT_EPS {
            return Err(SolveError::Singular { step: k });
        }
        if pivot_row != k {
            for c in 0..n {
                lu.swap(k * n + c, pivot_row * n + c);
            }
            perm.swap(k, pivot_row);
        }
        let pivot = lu[k * n + k];
        for r in (k + 1)..n {
            let factor = lu[r * n + k] / pivot;
            lu[r * n + k] = factor;
            for c in (k + 1)..n {
                lu[r * n + c] -= factor * lu[k * n + c];
            }
        }
    }
    Ok(())
}

/// Permuted forward/back substitution: writes `A⁻¹ b` into `x`.
///
/// `b` and `x` must be distinct buffers of length `n`.
fn solve_with_factors(n: usize, lu: &[f64], perm: &[usize], b: &[f64], x: &mut [f64]) {
    debug_assert_eq!(b.len(), n);
    debug_assert_eq!(x.len(), n);
    // Apply permutation.
    for (xi, &p) in x.iter_mut().zip(perm) {
        *xi = b[p];
    }
    // Forward substitution with unit lower-triangular L.
    for r in 1..n {
        let mut sum = x[r];
        for c in 0..r {
            sum -= lu[r * n + c] * x[c];
        }
        x[r] = sum;
    }
    // Back substitution with U.
    for r in (0..n).rev() {
        let mut sum = x[r];
        for c in (r + 1)..n {
            sum -= lu[r * n + c] * x[c];
        }
        x[r] = sum / lu[r * n + r];
    }
}

impl Lu {
    /// Factorizes `a` (which must be square).
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Singular`] if a pivot underflows the stability
    /// threshold.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not square.
    pub fn factorize(a: &Matrix) -> Result<Self, SolveError> {
        assert_eq!(a.rows, a.cols, "LU factorization requires a square matrix");
        let n = a.rows;
        let mut lu = a.data.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        factorize_in_place(n, &mut lu, &mut perm)?;
        Ok(Lu { n, lu, perm })
    }

    /// Solves `A · x = b` using the stored factorization, consuming `b` as
    /// workspace and returning the solution.
    pub fn solve_in_place(&mut self, b: Vec<f64>) -> Vec<f64> {
        let n = self.n;
        debug_assert_eq!(b.len(), n);
        let mut x = vec![0.0; n];
        solve_with_factors(n, &self.lu, &self.perm, &b, &mut x);
        x
    }

    /// Solves for a borrowed right-hand side.
    pub fn solve(&mut self, b: &[f64]) -> Vec<f64> {
        self.solve_in_place(b.to_vec())
    }
}

/// Reusable LU factorization buffers for repeated solves of same-size
/// systems.
///
/// [`Matrix::solve`] and [`Lu::factorize`] allocate on every call, which is
/// fine for one-off solves but dominates the profile inside a Newton loop
/// that factorizes thousands of Jacobians of identical dimension. A
/// `LuWorkspace` owns the factor and permutation buffers and reuses them
/// across calls, so a factorize + solve cycle performs no heap allocation
/// after the first use at a given size.
///
/// # Examples
///
/// ```
/// use tfet_numerics::matrix::{LuWorkspace, Matrix};
///
/// let a = Matrix::from_rows(&[&[4.0, 1.0], &[2.0, 3.0]]);
/// let mut ws = LuWorkspace::new(2);
/// ws.factorize(&a).unwrap();
/// let mut x = [0.0; 2];
/// ws.solve_into(&[5.0, 5.0], &mut x);
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LuWorkspace {
    n: usize,
    lu: Vec<f64>,
    perm: Vec<usize>,
    factored: bool,
}

impl LuWorkspace {
    /// Creates a workspace pre-sized for `n × n` systems.
    pub fn new(n: usize) -> Self {
        LuWorkspace {
            n,
            lu: vec![0.0; n * n],
            perm: vec![0; n],
            factored: false,
        }
    }

    /// Dimension the workspace is currently sized for.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Factorizes `a` into the workspace buffers, growing them if the
    /// dimension changed. Steady-state calls at a fixed size do not allocate.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Singular`] if a pivot underflows the stability
    /// threshold; the workspace is left unfactored.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not square.
    pub fn factorize(&mut self, a: &Matrix) -> Result<(), SolveError> {
        assert_eq!(a.rows, a.cols, "LU factorization requires a square matrix");
        let n = a.rows;
        if n != self.n {
            self.n = n;
            self.lu.resize(n * n, 0.0);
            self.perm.resize(n, 0);
        }
        self.lu.copy_from_slice(&a.data);
        self.factored = false;
        factorize_in_place(n, &mut self.lu, &mut self.perm)?;
        self.factored = true;
        Ok(())
    }

    /// Solves `A · x = b` against the last successful [`factorize`] call,
    /// writing the solution into `x` without allocating.
    ///
    /// [`factorize`]: LuWorkspace::factorize
    ///
    /// # Panics
    ///
    /// Panics if no factorization is stored or the buffer lengths don't
    /// match the factored dimension.
    pub fn solve_into(&self, b: &[f64], x: &mut [f64]) {
        assert!(self.factored, "solve_into called before factorize");
        assert_eq!(b.len(), self.n, "rhs length must match factored dimension");
        assert_eq!(
            x.len(),
            self.n,
            "solution length must match factored dimension"
        );
        solve_with_factors(self.n, &self.lu, &self.perm, b, x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{a:?} !~ {b:?}");
        }
    }

    #[test]
    fn identity_solve_returns_rhs() {
        let m = Matrix::identity(4);
        let b = [1.0, -2.0, 3.5, 0.25];
        let x = m.solve(&b).unwrap();
        assert_close(&x, &b, 1e-15);
    }

    #[test]
    fn solves_2x2_system() {
        let a = Matrix::from_rows(&[&[3.0, 2.0], &[1.0, 4.0]]);
        let x = a.solve(&[7.0, 9.0]).unwrap();
        assert_close(&x, &[1.0, 2.0], 1e-12);
    }

    #[test]
    fn solves_system_requiring_pivoting() {
        // Zero on the leading diagonal forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert_close(&x, &[3.0, 2.0], 1e-15);
    }

    #[test]
    fn singular_matrix_is_reported() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        match a.solve(&[1.0, 2.0]) {
            Err(SolveError::Singular { step }) => assert_eq!(step, 1),
            other => panic!("expected singular error, got {other:?}"),
        }
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let a = Matrix::identity(3);
        let err = a.solve(&[1.0]).unwrap_err();
        assert_eq!(
            err,
            SolveError::DimensionMismatch {
                expected: 3,
                got: 1
            }
        );
    }

    #[test]
    fn mul_vec_matches_manual_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let y = a.mul_vec(&[1.0, 0.0, -1.0]);
        assert_close(&y, &[-2.0, -2.0], 1e-15);
    }

    #[test]
    fn stamping_accumulates() {
        let mut m = Matrix::zeros(2, 2);
        m.add(0, 0, 1.5);
        m.add(0, 0, 2.5);
        assert_eq!(m[(0, 0)], 4.0);
    }

    #[test]
    fn lu_reuse_across_rhs() {
        let a = Matrix::from_rows(&[&[4.0, 1.0], &[2.0, 3.0]]);
        let mut lu = Lu::factorize(&a).unwrap();
        let x1 = lu.solve(&[5.0, 5.0]);
        let x2 = lu.solve(&[9.0, 13.0]);
        assert_close(&a.mul_vec(&x1), &[5.0, 5.0], 1e-12);
        assert_close(&a.mul_vec(&x2), &[9.0, 13.0], 1e-12);
    }

    #[test]
    fn solve_roundtrip_random_5x5() {
        // Fixed "random-looking" well-conditioned matrix.
        let a = Matrix::from_rows(&[
            &[5.0, 1.0, 0.2, 0.0, 0.5],
            &[1.0, 6.0, 1.5, 0.3, 0.0],
            &[0.2, 1.5, 7.0, 1.0, 0.4],
            &[0.0, 0.3, 1.0, 4.0, 1.2],
            &[0.5, 0.0, 0.4, 1.2, 9.0],
        ]);
        let b = [1.0, -2.0, 3.0, -4.0, 5.0];
        let x = a.solve(&b).unwrap();
        assert_close(&a.mul_vec(&x), &b, 1e-10);
    }

    #[test]
    fn workspace_matches_one_shot_solve() {
        let a = Matrix::from_rows(&[&[5.0, 1.0, 0.2], &[1.0, 6.0, 1.5], &[0.2, 1.5, 7.0]]);
        let b = [1.0, -2.0, 3.0];
        let mut ws = LuWorkspace::new(3);
        ws.factorize(&a).unwrap();
        let mut x = [0.0; 3];
        ws.solve_into(&b, &mut x);
        assert_close(&x, &a.solve(&b).unwrap(), 1e-14);
    }

    #[test]
    fn workspace_is_reusable_across_dimensions() {
        let mut ws = LuWorkspace::new(2);
        let a2 = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        ws.factorize(&a2).unwrap();
        let mut x2 = [0.0; 2];
        ws.solve_into(&[2.0, 3.0], &mut x2);
        assert_close(&x2, &[3.0, 2.0], 1e-15);

        let a4 = Matrix::identity(4);
        ws.factorize(&a4).unwrap();
        assert_eq!(ws.dim(), 4);
        let b4 = [1.0, -2.0, 3.5, 0.25];
        let mut x4 = [0.0; 4];
        ws.solve_into(&b4, &mut x4);
        assert_close(&x4, &b4, 1e-15);
    }

    #[test]
    fn workspace_reports_singularity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        let mut ws = LuWorkspace::new(2);
        assert_eq!(ws.factorize(&a), Err(SolveError::Singular { step: 1 }));
    }

    #[test]
    #[should_panic(expected = "before factorize")]
    fn workspace_solve_before_factorize_panics() {
        let ws = LuWorkspace::new(2);
        let mut x = [0.0; 2];
        ws.solve_into(&[1.0, 2.0], &mut x);
    }

    #[test]
    fn display_is_nonempty() {
        let m = Matrix::identity(2);
        assert!(!format!("{m}").is_empty());
        assert!(!format!("{m:?}").is_empty());
    }
}
