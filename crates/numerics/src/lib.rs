//! Numerical substrate for the `tfet-sram` workspace.
//!
//! This crate collects the small, dependency-free numerical building blocks
//! that the device models, the circuit simulator and the SRAM analysis layers
//! share:
//!
//! * [`matrix`] — dense row-major matrices with LU factorization and linear
//!   solves (the reference path, and the cross-check for the sparse engine);
//! * [`sparse`] — CSC sparse matrices whose LU factorization is split into a
//!   one-time symbolic analysis (fill-reducing ordering + frozen fill-in
//!   pattern) and a cheap, allocation-free numeric refactorization — the
//!   topology of a circuit Jacobian is fixed, only its values change per
//!   Newton iteration;
//! * [`interp`] — one- and two-dimensional lookup tables with linear /
//!   bilinear interpolation, mirroring the Verilog-A lookup-table device
//!   modeling methodology of the reproduced paper;
//! * [`roots`] — bracketing root finders (bisection, Brent) and a monotone
//!   boolean binary search used for critical-pulse-width extraction;
//! * [`sweep`] — parameter-sweep grid constructors (`linspace`, `logspace`)
//!   and a parallel grid evaluator;
//! * [`stats`] — summary statistics and histograms for Monte-Carlo studies,
//!   including the weighted summaries importance sampling needs;
//! * [`normal`] — standard-normal special functions (`erf`, CDF, inverse
//!   CDF) backing truncated-Gaussian sampling and likelihood ratios;
//! * [`parallel`] — deterministic scoped-thread fan-out (`par_map`,
//!   `par_for_each_mut`) whose results are bit-identical to a serial loop at
//!   any thread count;
//! * [`partition`] — CSR-style index grouping used by the solver's
//!   quiescent-partition latency tier to map devices ↔ cells without
//!   per-query allocation.
//!
//! # Examples
//!
//! Solving a small linear system:
//!
//! ```
//! use tfet_numerics::matrix::Matrix;
//!
//! let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
//! let x = a.solve(&[3.0, 5.0]).unwrap();
//! assert!((x[0] - 0.8).abs() < 1e-12);
//! assert!((x[1] - 1.4).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod interp;
pub mod matrix;
pub mod normal;
pub mod parallel;
pub mod partition;
pub mod roots;
pub mod sparse;
pub mod stats;
pub mod sweep;

pub use interp::{Lut1d, Lut2d};
pub use matrix::{LuWorkspace, Matrix};
pub use normal::{erf, erfc, gaussian_mass_within, inv_norm_cdf, norm_cdf};
pub use parallel::{par_for_each_mut, par_map, par_try_map};
pub use partition::GroupedIndices;
pub use roots::{
    bisect, brent, critical_threshold, critical_threshold_checked, critical_threshold_seeded,
    critical_threshold_seeded_checked,
};
pub use sparse::{SparseLu, SparseMatrix, SparsityPattern};
pub use stats::{Histogram, Summary, WeightedSummary};
pub use sweep::{geomspace, linspace, logspace, par_grid};
