//! Summary statistics and histograms for Monte-Carlo studies.
//!
//! The paper's §4.3 presents process-variation results as histograms of
//! `WL_crit` and normalized DRNM over Monte-Carlo samples; [`Histogram`] and
//! [`Summary`] regenerate those panels.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub std_dev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Median (interpolated).
    pub median: f64,
}

impl Summary {
    /// Computes summary statistics over `data`.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or contains a non-finite value.
    pub fn of(data: &[f64]) -> Self {
        Summary::try_of(data).expect("cannot summarize an empty sample")
    }

    /// Computes summary statistics over `data`, or `None` when the sample
    /// is empty — the graceful path for studies whose samples may all have
    /// been quarantined (an empty survivor set is a reportable outcome, not
    /// a crash).
    ///
    /// # Panics
    ///
    /// Panics if `data` contains a non-finite value: that is a bug in the
    /// producer (metrics never emit NaN/inf as data points), not a
    /// degradation mode.
    pub fn try_of(data: &[f64]) -> Option<Self> {
        if data.is_empty() {
            return None;
        }
        assert!(
            data.iter().all(|x| x.is_finite()),
            "sample contains non-finite values"
        );
        let n = data.len();
        let mean = data.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        Some(Summary {
            n,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            median: percentile_sorted(&sorted, 50.0),
        })
    }

    /// Coefficient of variation `σ / |µ|`, the spread measure the paper uses
    /// implicitly when it calls a distribution "tight" or "varies greatly".
    ///
    /// Degenerate cases are defined so the result is never NaN: a
    /// zero-spread sample has `cv() == 0.0` whatever its mean (a point mass
    /// has no relative variation, even at zero), and a spread sample
    /// centered exactly on zero has `cv() == f64::INFINITY` (relative
    /// variation is meaningless there, and infinity — unlike NaN — orders
    /// and compares predictably in thresholds like `cv() < 0.3`).
    pub fn cv(&self) -> f64 {
        if self.std_dev == 0.0 {
            0.0
        } else if self.mean == 0.0 {
            f64::INFINITY
        } else {
            self.std_dev / self.mean.abs()
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4e} std={:.4e} min={:.4e} median={:.4e} max={:.4e}",
            self.n, self.mean, self.std_dev, self.min, self.median, self.max
        )
    }
}

/// Summary statistics of a weighted sample — the diagnostic companion of
/// importance-sampled Monte-Carlo studies, where each observation carries a
/// likelihood-ratio weight and the *effective* sample size, not the raw
/// count, governs the statistical error.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeightedSummary {
    /// Number of (value, weight) pairs, including zero-weight pairs.
    pub n: usize,
    /// Sum of the weights.
    pub total_weight: f64,
    /// Weighted mean `Σ wᵢxᵢ / Σ wᵢ`.
    pub mean: f64,
    /// Kish effective sample size `(Σ wᵢ)² / Σ wᵢ²` — equals `n` for uniform
    /// weights and collapses toward 1 as the weight mass concentrates on a
    /// single sample.
    pub ess: f64,
    /// Smallest value with nonzero weight.
    pub min: f64,
    /// Largest value with nonzero weight.
    pub max: f64,
}

impl WeightedSummary {
    /// Computes weighted summary statistics, or `None` when the sample is
    /// empty or carries zero total weight — both are reportable outcomes of
    /// a rare-event study (no survivors, or every survivor weightless), not
    /// crashes.
    ///
    /// # Panics
    ///
    /// Panics if `values` and `weights` differ in length, or if any value is
    /// non-finite, or if any weight is negative or non-finite — those are
    /// producer bugs (a likelihood ratio is finite and nonnegative by
    /// construction).
    pub fn try_of(values: &[f64], weights: &[f64]) -> Option<Self> {
        assert_eq!(
            values.len(),
            weights.len(),
            "weighted sample needs one weight per value"
        );
        assert!(
            values.iter().all(|x| x.is_finite()),
            "sample contains non-finite values"
        );
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be finite and nonnegative"
        );
        if values.is_empty() {
            return None;
        }
        let total_weight: f64 = weights.iter().sum();
        if total_weight == 0.0 {
            return None;
        }
        let mean = values.iter().zip(weights).map(|(x, w)| w * x).sum::<f64>() / total_weight;
        let sum_sq: f64 = weights.iter().map(|w| w * w).sum();
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        for (&x, &w) in values.iter().zip(weights) {
            if w > 0.0 {
                min = min.min(x);
                max = max.max(x);
            }
        }
        Some(WeightedSummary {
            n: values.len(),
            total_weight,
            mean,
            ess: total_weight * total_weight / sum_sq,
            min,
            max,
        })
    }
}

impl fmt::Display for WeightedSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} w={:.4e} mean={:.4e} ess={:.1} min={:.4e} max={:.4e}",
            self.n, self.total_weight, self.mean, self.ess, self.min, self.max
        )
    }
}

/// Interpolated percentile of pre-sorted data, `p ∈ [0, 100]`.
fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (n - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let t = rank - lo as f64;
    sorted[lo] * (1.0 - t) + sorted[hi] * t
}

/// Interpolated percentile of arbitrary data, `p ∈ [0, 100]`.
///
/// # Panics
///
/// Panics if `data` is empty, contains non-finite values, or `p` is outside
/// `[0, 100]`.
pub fn percentile(data: &[f64], p: f64) -> f64 {
    try_percentile(data, p).expect("cannot take percentile of empty sample")
}

/// Interpolated percentile of arbitrary data, or `None` when `data` is
/// empty — the graceful counterpart of [`percentile`] for survivor sets
/// that may have been quarantined down to nothing.
///
/// # Panics
///
/// Panics if `data` contains non-finite values or `p` is outside
/// `[0, 100]` (both are producer bugs, not degradation modes).
pub fn try_percentile(data: &[f64], p: f64) -> Option<f64> {
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    if data.is_empty() {
        return None;
    }
    assert!(
        data.iter().all(|x| x.is_finite()),
        "sample contains non-finite values"
    );
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
    Some(percentile_sorted(&sorted, p))
}

/// A fixed-range, uniform-bin histogram.
///
/// # Examples
///
/// ```
/// use tfet_numerics::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 5);
/// for x in [1.0, 1.5, 9.9, 5.0] {
///     h.add(x);
/// }
/// assert_eq!(h.counts()[0], 2);
/// assert_eq!(h.total(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    /// Samples below `lo`.
    underflow: u64,
    /// Samples at/above `hi`. The top bin is half-open, so `hi` itself lands
    /// here except it is folded into the last bin for convenience.
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` uniform bins on `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram needs lo < hi");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Creates a histogram spanning the data range and fills it.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or all values are identical (zero-width
    /// range) or any value is non-finite.
    pub fn from_data(data: &[f64], bins: usize) -> Self {
        let s = Summary::of(data);
        assert!(
            s.min < s.max,
            "all samples identical; histogram range empty"
        );
        let mut h = Histogram::new(s.min, s.max, bins);
        for &x in data {
            h.add(x);
        }
        h
    }

    /// Adds a sample.
    pub fn add(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x > self.hi {
            self.overflow += 1;
        } else if x == self.hi {
            // Fold the exact upper bound into the last bin.
            *self.counts.last_mut().expect("bins > 0") += 1;
        } else {
            let bins = self.counts.len();
            let idx = ((x - self.lo) / (self.hi - self.lo) * bins as f64) as usize;
            self.counts[idx.min(bins - 1)] += 1;
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of samples added (including under/overflow).
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Center of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len(), "bin index out of range");
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }

    /// Renders the histogram as `center count` rows, plus a text bar chart —
    /// the form the figure-regeneration binaries print.
    pub fn to_rows(&self) -> Vec<(f64, u64)> {
        (0..self.counts.len())
            .map(|i| (self.bin_center(i), self.counts[i]))
            .collect()
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        for (center, count) in self.to_rows() {
            let bar = "#".repeat((count * 40 / max) as usize);
            writeln!(f, "{center:>12.4e} {count:>6} {bar}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-15);
        assert!((s.std_dev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.median - 2.5).abs() < 1e-15);
    }

    #[test]
    fn summary_single_sample() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 7.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn summary_rejects_empty() {
        Summary::of(&[]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn summary_rejects_nan() {
        Summary::of(&[1.0, f64::NAN]);
    }

    #[test]
    fn cv_handles_zero_mean() {
        let s = Summary::of(&[-1.0, 1.0]);
        assert!(s.cv().is_infinite());
    }

    #[test]
    fn cv_of_zero_spread_sample_is_zero() {
        // A point mass has no relative variation — even a point mass at 0,
        // where σ/|µ| would otherwise be 0/0 = NaN.
        assert_eq!(Summary::of(&[5.0, 5.0, 5.0]).cv(), 0.0);
        assert_eq!(Summary::of(&[0.0, 0.0]).cv(), 0.0);
        assert_eq!(Summary::of(&[7.0]).cv(), 0.0);
    }

    #[test]
    fn cv_is_never_nan() {
        for data in [
            vec![0.0, 0.0],
            vec![-1.0, 1.0],
            vec![1e-300, -1e-300],
            vec![3.0, 4.0],
        ] {
            assert!(!Summary::of(&data).cv().is_nan(), "data {data:?}");
        }
    }

    #[test]
    fn try_of_reports_empty_as_none() {
        assert_eq!(Summary::try_of(&[]), None);
        let s = Summary::try_of(&[1.0, 2.0]).unwrap();
        assert_eq!(s, Summary::of(&[1.0, 2.0]));
    }

    #[test]
    fn try_percentile_reports_empty_as_none() {
        assert_eq!(try_percentile(&[], 50.0), None);
        assert_eq!(try_percentile(&[10.0, 20.0], 50.0), Some(15.0));
    }

    #[test]
    fn percentile_interpolates() {
        let data = [10.0, 20.0, 30.0, 40.0];
        assert!((percentile(&data, 0.0) - 10.0).abs() < 1e-15);
        assert!((percentile(&data, 100.0) - 40.0).abs() < 1e-15);
        assert!((percentile(&data, 50.0) - 25.0).abs() < 1e-15);
    }

    #[test]
    fn histogram_bins_correctly() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.add(0.0); // bin 0
        h.add(0.999); // bin 0
        h.add(9.5); // bin 9
        h.add(10.0); // folded into bin 9
        h.add(-1.0); // underflow
        h.add(11.0); // overflow
        assert_eq!(h.counts()[0], 2);
        assert_eq!(h.counts()[9], 2);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn histogram_from_data_covers_range() {
        let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let h = Histogram::from_data(&data, 10);
        assert_eq!(h.total(), 100);
        assert_eq!(h.counts().iter().sum::<u64>(), 100);
    }

    #[test]
    fn histogram_bin_centers_are_uniform() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert!((h.bin_center(0) - 0.125).abs() < 1e-15);
        assert!((h.bin_center(3) - 0.875).abs() < 1e-15);
    }

    #[test]
    fn weighted_summary_uniform_weights_match_summary() {
        let values = [1.0, 2.0, 3.0, 4.0];
        let w = WeightedSummary::try_of(&values, &[1.0; 4]).unwrap();
        let s = Summary::of(&values);
        assert!((w.mean - s.mean).abs() < 1e-15);
        assert_eq!(w.min, s.min);
        assert_eq!(w.max, s.max);
        // Uniform weights: ESS equals the raw count.
        assert!((w.ess - 4.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_summary_all_weight_on_one_sample() {
        let w = WeightedSummary::try_of(&[10.0, 20.0, 30.0], &[0.0, 5.0, 0.0]).unwrap();
        assert_eq!(w.n, 3);
        assert!((w.mean - 20.0).abs() < 1e-15);
        assert!((w.ess - 1.0).abs() < 1e-12);
        // Zero-weight values never contribute to the range.
        assert_eq!(w.min, 20.0);
        assert_eq!(w.max, 20.0);
    }

    #[test]
    fn weighted_summary_degenerate_sets_are_none() {
        assert_eq!(WeightedSummary::try_of(&[], &[]), None);
        assert_eq!(WeightedSummary::try_of(&[1.0, 2.0], &[0.0, 0.0]), None);
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn weighted_summary_rejects_negative_weight() {
        WeightedSummary::try_of(&[1.0], &[-0.5]);
    }

    #[test]
    #[should_panic(expected = "one weight per value")]
    fn weighted_summary_rejects_length_mismatch() {
        WeightedSummary::try_of(&[1.0, 2.0], &[1.0]);
    }

    #[test]
    fn histogram_display_nonempty() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.add(0.25);
        assert!(format!("{h}").contains('#'));
    }
}
