//! Analytic-vs-finite-difference derivative verification.
//!
//! The in-tree models override `conductances_per_um` with closed forms;
//! every Newton stamp in the simulator rides on them, so they must match
//! the finite-difference reference everywhere in (and beyond) the
//! operating region.

use proptest::prelude::*;
use tfet_devices::model::{derivative_step, DeviceModel};
use tfet_devices::{NTfet, Nmos, PTfet, Pmos};

/// Central-difference reference for one conductance.
fn fd<M: DeviceModel>(m: &M, vg: f64, vd: f64, vs: f64, which: usize) -> f64 {
    let h = derivative_step();
    let eval = |vg: f64, vd: f64, vs: f64| m.ids_per_um(vg, vd, vs);
    match which {
        0 => (eval(vg + h, vd, vs) - eval(vg - h, vd, vs)) / (2.0 * h),
        1 => (eval(vg, vd + h, vs) - eval(vg, vd - h, vs)) / (2.0 * h),
        _ => (eval(vg, vd, vs + h) - eval(vg, vd, vs - h)) / (2.0 * h),
    }
}

/// Asserts analytic ≈ FD with a combined relative/absolute tolerance.
///
/// FD itself carries O(h²·|I'''|) error, which is non-negligible on the
/// exponential branches, so the relative tolerance is a few percent; the
/// absolute floor covers the deep-off region where both are ~0.
fn check<M: DeviceModel>(m: &M, vg: f64, vd: f64, vs: f64) -> Result<(), TestCaseError> {
    // Skip the branch seam: FD straddles v_ds = 0 where the model is only
    // C¹ to within the seam's smoothing, and the central difference mixes
    // the two branches.
    if (vd - vs).abs() < 2.5 * derivative_step() {
        return Ok(());
    }
    let (gm, gds, gs) = m.conductances_per_um(vg, vd, vs);
    // The FD reference is noise-limited by cancellation: differencing two
    // currents of magnitude |I| at step h leaves ~|I|·ε/h of rounding noise
    // (≈ |I|·2e-13 S at the 0.5 mV step) — dominant wherever a huge diode
    // current coexists with a small gate sensitivity.
    let fd_noise = m.ids_per_um(vg, vd, vs).abs() * 1e-12;
    for (which, analytic) in [(0, gm), (1, gds), (2, gs)] {
        let reference = fd(m, vg, vd, vs, which);
        let tol = 0.03 * reference.abs().max(analytic.abs()) + 1e-15 + fd_noise;
        prop_assert!(
            (analytic - reference).abs() <= tol,
            "{} conductance {which} at ({vg:.3},{vd:.3},{vs:.3}): analytic {analytic:e} vs FD {reference:e}",
            m.name()
        );
    }
    // Shift invariance: the three conductances of a three-terminal device
    // with no bulk must sum to zero.
    prop_assert!(
        (gm + gds + gs).abs() <= 1e-9 * (gm.abs() + gds.abs() + gs.abs()) + 1e-18,
        "conductances must sum to zero: {gm:e} + {gds:e} + {gs:e}"
    );
    Ok(())
}

proptest! {
    #[test]
    fn ntfet_conductances_match_fd(vg in -1.2f64..1.2, vd in -1.2f64..1.2, vs in -1.2f64..1.2) {
        check(&NTfet::nominal(), vg, vd, vs)?;
    }

    #[test]
    fn ptfet_conductances_match_fd(vg in -1.2f64..1.2, vd in -1.2f64..1.2, vs in -1.2f64..1.2) {
        check(&PTfet::nominal(), vg, vd, vs)?;
    }

    #[test]
    fn nmos_conductances_match_fd(vg in -1.2f64..1.2, vd in -1.2f64..1.2, vs in -1.2f64..1.2) {
        check(&Nmos::nominal(), vg, vd, vs)?;
    }

    #[test]
    fn pmos_conductances_match_fd(vg in -1.2f64..1.2, vd in -1.2f64..1.2, vs in -1.2f64..1.2) {
        check(&Pmos::nominal(), vg, vd, vs)?;
    }
}

/// Spot checks at the exact biases the SRAM experiments live at.
#[test]
fn conductances_at_sram_operating_points() {
    let n = NTfet::nominal();
    for &(vg, vd, vs) in &[
        (0.8, 0.8, 0.0),  // on, saturated
        (0.8, 0.05, 0.0), // on, output onset
        (0.0, 0.8, 0.0),  // off
        (0.0, -0.8, 0.0), // reverse diode
        (0.8, -0.4, 0.0), // reverse ambipolar
    ] {
        check(&n, vg, vd, vs).unwrap();
    }
}
