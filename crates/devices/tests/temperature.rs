//! Temperature-behaviour tests: the TFET's second headline advantage.
//!
//! The paper's introduction frames TFETs against the MOSFET's thermionic
//! 60 mV/dec limit, which is a *temperature-proportional* limit. These
//! tests pin the corresponding model behaviour: MOSFET leakage explodes
//! with temperature while TFET forward leakage stays nearly flat (only the
//! p-i-n diode branch, relevant to reverse-biased outward devices, carries
//! a strong temperature dependence).

use tfet_devices::calibration::characterize;
use tfet_devices::model::DeviceModel;
use tfet_devices::{MosfetParams, NTfet, Nmos, TfetParams};

#[test]
fn mosfet_leakage_explodes_with_temperature() {
    let cold = Nmos::new(MosfetParams::nominal_32nm_lp());
    let hot = Nmos::new(MosfetParams::nominal_32nm_lp().at_temperature(400.0));
    let i_cold = cold.ids_per_um(0.0, 1.0, 0.0);
    let i_hot = hot.ids_per_um(0.0, 1.0, 0.0);
    let orders = (i_hot / i_cold).log10();
    // 100 K of heating on a ~95 mV/dec subthreshold device with Vth
    // temperature coefficient: several orders of magnitude.
    assert!(
        (1.5..5.0).contains(&orders),
        "MOSFET leakage grew {orders:.2} orders from 300 K to 400 K"
    );
}

#[test]
fn tfet_forward_leakage_is_nearly_flat_with_temperature() {
    let cold = NTfet::new(TfetParams::nominal());
    let hot = NTfet::new(TfetParams::nominal().at_temperature(400.0));
    let i_cold = cold.ids_per_um(0.0, 1.0, 0.0);
    let i_hot = hot.ids_per_um(0.0, 1.0, 0.0);
    let ratio = i_hot / i_cold;
    assert!(
        (0.9..1.5).contains(&ratio),
        "TFET off-current moved {ratio}x from 300 K to 400 K"
    );
}

#[test]
fn tfet_on_current_barely_moves_with_temperature() {
    let cold = NTfet::new(TfetParams::nominal());
    let hot = NTfet::new(TfetParams::nominal().at_temperature(400.0));
    let ratio = hot.ids_per_um(0.8, 0.8, 0.0) / cold.ids_per_um(0.8, 0.8, 0.0);
    assert!((0.95..1.1).contains(&ratio), "on-current ratio {ratio}");
}

#[test]
fn leakage_gap_widens_at_high_temperature() {
    // At 400 K the TFET's advantage over the MOSFET is *larger* than the
    // 300 K gap the paper reports — the natural extension of its argument.
    let t_cold = characterize(&NTfet::new(TfetParams::nominal()), 1.0);
    let m_cold = characterize(&Nmos::new(MosfetParams::nominal_32nm_lp()), 1.0);
    let t_hot = characterize(
        &NTfet::new(TfetParams::nominal().at_temperature(400.0)),
        1.0,
    );
    let m_hot = characterize(
        &Nmos::new(MosfetParams::nominal_32nm_lp().at_temperature(400.0)),
        1.0,
    );
    let gap_cold = (m_cold.i_off / t_cold.i_off).log10();
    let gap_hot = (m_hot.i_off / t_hot.i_off).log10();
    assert!(
        gap_hot > gap_cold + 1.0,
        "gap must widen: {gap_cold:.1} -> {gap_hot:.1} orders"
    );
}

#[test]
fn mosfet_subthreshold_swing_scales_with_temperature() {
    let cold = characterize(&Nmos::new(MosfetParams::nominal_32nm_lp()), 1.0);
    let hot = characterize(
        &Nmos::new(MosfetParams::nominal_32nm_lp().at_temperature(400.0)),
        1.0,
    );
    let ratio = hot.ss_min / cold.ss_min;
    // Thermionic swing ∝ T: expect ≈ 400/300 = 1.33.
    assert!((1.2..1.5).contains(&ratio), "swing ratio {ratio}");
}

#[test]
fn diode_branch_carries_the_tfet_temperature_dependence() {
    // Reverse-biased (outward-access) leakage DOES grow with temperature —
    // the body diode is a junction like any other. At |V_DS| = 1 V the
    // diode dominates every other branch; a forward-biased junction at
    // fixed voltage gains roughly e^{E_g/k·ΔT/T²}·e^{−V·Δ(1/v_t)} ≈ 3× per
    // 50 K. Only the *inward* cell inherits the flat tunneling behaviour.
    let cold = NTfet::new(TfetParams::nominal());
    let hot = NTfet::new(TfetParams::nominal().at_temperature(350.0));
    let i_cold = -cold.ids_per_um(0.0, -1.0, 0.0);
    let i_hot = -hot.ids_per_um(0.0, -1.0, 0.0);
    let ratio = i_hot / i_cold;
    assert!(
        (1.5..20.0).contains(&ratio),
        "diode leakage must grow with T: {i_cold:e} -> {i_hot:e} ({ratio:.1}x)"
    );
}

#[test]
#[should_panic(expected = "validated range")]
fn absurd_temperature_rejected() {
    let _ = TfetParams::nominal().at_temperature(77.0);
}
