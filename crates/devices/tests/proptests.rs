//! Property-based tests for the device models.
//!
//! These pin the *structural* invariants every compact model must satisfy
//! regardless of calibration: finiteness, continuity, polarity duality,
//! source-reference invariance, and the TFET's unidirectionality.

use proptest::prelude::*;
use tfet_devices::model::DeviceModel;
use tfet_devices::{LutDevice, NTfet, Nmos, PTfet, Pmos, ProcessVariation, TfetParams};

fn voltage() -> impl Strategy<Value = f64> {
    -1.5f64..1.5f64
}

proptest! {
    #[test]
    fn ntfet_current_is_finite(vg in voltage(), vd in voltage(), vs in voltage()) {
        let t = NTfet::nominal();
        prop_assert!(t.ids_per_um(vg, vd, vs).is_finite());
    }

    #[test]
    fn nmos_current_is_finite(vg in voltage(), vd in voltage(), vs in voltage()) {
        let m = Nmos::nominal();
        prop_assert!(m.ids_per_um(vg, vd, vs).is_finite());
    }

    #[test]
    fn ntfet_shift_invariance(vg in voltage(), vd in voltage(), dv in -0.5f64..0.5) {
        // Current depends only on terminal differences.
        let t = NTfet::nominal();
        let a = t.ids_per_um(vg, vd, 0.0);
        let b = t.ids_per_um(vg + dv, vd + dv, dv);
        prop_assert!((a - b).abs() <= 1e-20 + 1e-9 * a.abs());
    }

    #[test]
    fn ptfet_duality(vg in voltage(), vd in voltage(), vs in voltage()) {
        let n = NTfet::nominal();
        let p = PTfet::nominal();
        let i_p = p.ids_per_um(vg, vd, vs);
        let i_n = n.ids_per_um(-vg, -vd, -vs);
        prop_assert!((i_p + i_n).abs() <= 1e-20 + 1e-9 * i_n.abs());
    }

    #[test]
    fn pmos_duality(vg in voltage(), vd in voltage(), vs in voltage()) {
        let n = Nmos::nominal();
        let p = Pmos::nominal();
        let i_p = p.ids_per_um(vg, vd, vs);
        let i_n = n.ids_per_um(-vg, -vd, -vs);
        prop_assert!((i_p + i_n).abs() <= 1e-20 + 1e-9 * i_n.abs());
    }

    #[test]
    fn mosfet_terminal_exchange_antisymmetry(vg in voltage(), va in voltage(), vb in voltage()) {
        // A MOSFET is symmetric: swapping source and drain negates the
        // current. (A TFET deliberately violates this.)
        let m = Nmos::nominal();
        let fwd = m.ids_per_um(vg, va, vb);
        let rev = m.ids_per_um(vg, vb, va);
        prop_assert!((fwd + rev).abs() <= 1e-20 + 1e-9 * fwd.abs());
    }

    #[test]
    fn tfet_forward_current_sign(vg in 0.0f64..1.2, vds in 0.0f64..1.2) {
        let t = NTfet::nominal();
        prop_assert!(t.ids_per_um(vg, vds, 0.0) >= 0.0);
    }

    #[test]
    fn tfet_reverse_current_sign(vg in 0.0f64..1.2, vds in 0.001f64..1.2) {
        let t = NTfet::nominal();
        prop_assert!(t.ids_per_um(vg, -vds, 0.0) <= 0.0);
    }

    #[test]
    fn tfet_monotone_in_vgs_forward(vg in 0.0f64..1.1, dv in 0.001f64..0.1, vds in 0.05f64..1.0) {
        let t = NTfet::nominal();
        let i1 = t.ids_per_um(vg, vds, 0.0);
        let i2 = t.ids_per_um(vg + dv, vds, 0.0);
        prop_assert!(i2 >= i1 * (1.0 - 1e-12));
    }

    #[test]
    fn tfet_monotone_in_vds_forward(vg in 0.2f64..1.2, vd in 0.0f64..1.0, dv in 0.001f64..0.2) {
        let t = NTfet::nominal();
        let i1 = t.ids_per_um(vg, vd, 0.0);
        let i2 = t.ids_per_um(vg, vd + dv, 0.0);
        prop_assert!(i2 >= i1 * (1.0 - 1e-12));
    }

    #[test]
    fn tfet_caps_positive_and_bounded(vg in voltage(), vd in voltage(), vs in voltage()) {
        let t = NTfet::nominal();
        let c = t.caps_per_um(vg, vd, vs);
        for v in [c.cgs, c.cgd, c.cdb, c.csb] {
            prop_assert!(v > 0.0 && v < 1e-13, "cap out of range: {v:e}");
        }
    }

    #[test]
    fn variation_is_monotone_in_tox(dev1 in -0.05f64..0.05, dev2 in -0.05f64..0.05) {
        // Thicker oxide never increases the on-current.
        let (lo, hi) = if dev1 <= dev2 { (dev1, dev2) } else { (dev2, dev1) };
        let thin = NTfet::new(ProcessVariation::from_deviation(lo).apply_tfet(&TfetParams::nominal()));
        let thick = NTfet::new(ProcessVariation::from_deviation(hi).apply_tfet(&TfetParams::nominal()));
        prop_assert!(thick.ids_per_um(0.8, 0.8, 0.0) <= thin.ids_per_um(0.8, 0.8, 0.0) * (1.0 + 1e-12));
    }

    #[test]
    fn lut_tracks_analytic_within_order_of_magnitude(
        vg in -1.0f64..1.0,
        vd in -1.0f64..1.0,
    ) {
        // The asinh (log-like) transform makes bilinear interpolation exact
        // for exponential I(V), but log I diverges in the output-onset strip
        // |v_ds| → 0 where I ∝ v_ds², so no table density fixes that corner
        // in *relative* terms (the absolute error there is negligible —
        // currents are near zero). The order-of-magnitude guarantee applies
        // outside the onset strip; the LUT ablation bench quantifies both.
        prop_assume!(vd.abs() > 0.06);
        let analytic = NTfet::nominal();
        let lut = LutDevice::compile(analytic.clone(), (-1.2, 1.2), 121, (-1.2, 1.2), 121);
        let a = analytic.ids_per_um(vg, vd, 0.0);
        let l = lut.ids_per_um(vg, vd, 0.0);
        // Same sign (or both negligible)...
        prop_assert!(a * l >= 0.0 || a.abs().max(l.abs()) < 1e-16);
        // ...and same order of magnitude when measurable.
        if a.abs() > 1e-16 {
            prop_assert!((a / l).abs().log10().abs() < 1.0, "{a:e} vs {l:e} at ({vg},{vd})");
        }
    }

    #[test]
    fn finite_difference_conductances_are_finite(vg in voltage(), vd in voltage(), vs in voltage()) {
        let t = NTfet::nominal();
        prop_assert!(t.gm_per_um(vg, vd, vs).is_finite());
        prop_assert!(t.gds_per_um(vg, vd, vs).is_finite());
        prop_assert!(t.gs_per_um(vg, vd, vs).is_finite());
    }
}
