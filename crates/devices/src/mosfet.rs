//! EKV-style all-region MOSFET model calibrated to 32 nm low-power PTM
//! headline figures — the paper's 6T CMOS SRAM baseline.
//!
//! The paper simulates its CMOS comparison cell with the 32 nm low-power PTM
//! cards in a commercial SPICE. The comparisons it draws are *relative*
//! (orders of magnitude of leakage, delay/margin orderings), so a compact
//! all-region analytical model with the right headline numbers — threshold
//! ≈ ±0.45 V, subthreshold swing ≈ 95 mV/dec, I_off ≈ 1e-11 A/µm — preserves
//! every conclusion. Crucially the model is **symmetric in source and
//! drain** (bidirectional conduction), the property the paper contrasts
//! against the TFET's unidirectionality.

use crate::consts::{softplus, softplus_deriv, C_GATE_PER_UM, K_B, Q, TEMPERATURE};
use crate::model::{Caps, DeviceKind, DeviceModel, DualOf, Polarity};
use serde::{Deserialize, Serialize};

/// Parameter set for the EKV-style MOSFET (n-channel reference frame).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MosfetParams {
    /// Threshold voltage, V.
    pub v_th: f64,
    /// Subthreshold slope factor `n` (swing = n·V_T·ln 10).
    pub n_factor: f64,
    /// Specific current, A/µm: sets the absolute current scale.
    pub i_spec: f64,
    /// Drain-induced barrier lowering coefficient, V/V.
    pub dibl: f64,
    /// Channel-length modulation coefficient, 1/V.
    pub lambda_clm: f64,
    /// Junction/overlap capacitance per terminal, F/µm.
    pub c_junction: f64,
    /// Device temperature, K. The calibration values are referenced to
    /// 300 K; temperature enters through the thermal voltage (subthreshold
    /// swing ∝ T — the thermionic mechanism the paper's introduction pits
    /// TFETs against), a −1 mV/K threshold shift, and a mild mobility/
    /// thermal-velocity factor on the specific current.
    pub temp_k: f64,
}

impl MosfetParams {
    /// 32 nm low-power PTM-like calibration: V_th = 0.48 V,
    /// SS ≈ 95 mV/dec, I_off ≈ 1e-11 A/µm (six orders above the TFET's
    /// 1e-17, exactly the gap the paper reports), I_on(0.8 V) ≈ 3e-5 A/µm
    /// (comparable to the TFET on-current, giving the "comparable
    /// performance" the paper observes).
    pub fn nominal_32nm_lp() -> Self {
        MosfetParams {
            v_th: 0.48,
            n_factor: 1.55,
            i_spec: 1.2e-6,
            dibl: 0.08,
            lambda_clm: 0.05,
            c_junction: 0.12 * C_GATE_PER_UM,
            temp_k: TEMPERATURE,
        }
    }

    /// The same calibration evaluated at a different temperature (builder
    /// style).
    pub fn at_temperature(mut self, temp_k: f64) -> Self {
        assert!(
            (200.0..=450.0).contains(&temp_k),
            "temperature {temp_k} K outside the model's validated range"
        );
        self.temp_k = temp_k;
        self
    }

    /// Thermal voltage kT/q at the device temperature, V.
    pub fn v_t(&self) -> f64 {
        K_B * self.temp_k / Q
    }

    /// Temperature-corrected threshold voltage, V (−1 mV/K from 300 K).
    pub fn v_th_eff_t(&self) -> f64 {
        self.v_th - 1.0e-3 * (self.temp_k - TEMPERATURE)
    }

    /// Temperature-corrected specific current, A/µm: `i_spec ∝ µ(T)·V_T²`
    /// nets out to roughly `√(T/300)`.
    pub fn i_spec_t(&self) -> f64 {
        self.i_spec * (self.temp_k / TEMPERATURE).sqrt()
    }

    /// The EKV forward/reverse normalized current:
    /// `F(u) = ln²(1 + exp(u / 2))`.
    fn ekv_f(u: f64) -> f64 {
        // softplus(u, 2) = 2·ln(1+exp(u/2)); square of half of it.
        let half = softplus(u, 2.0) * 0.5;
        half * half
    }

    /// Derivative of [`MosfetParams::ekv_f`]:
    /// `F'(u) = ln(1 + exp(u/2)) · sigmoid(u/2)`.
    fn ekv_f_deriv(u: f64) -> f64 {
        softplus(u, 2.0) * 0.5 * softplus_deriv(u, 2.0)
    }
}

impl Default for MosfetParams {
    fn default() -> Self {
        MosfetParams::nominal_32nm_lp()
    }
}

/// n-channel MOSFET.
///
/// # Examples
///
/// ```
/// use tfet_devices::{Nmos, DeviceModel};
///
/// let n = Nmos::nominal();
/// // Bidirectional: forward and (terminal-swapped) reverse conduction are
/// // symmetric, unlike a TFET.
/// let fwd = n.ids_per_um(0.8, 0.8, 0.0);
/// let rev = n.ids_per_um(0.8, -0.8, 0.0);
/// assert!(fwd > 0.0 && rev < 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Nmos {
    params: MosfetParams,
}

impl Nmos {
    /// Creates an NMOS with the given parameters.
    pub fn new(params: MosfetParams) -> Self {
        Nmos { params }
    }

    /// The 32 nm LP nominal device.
    pub fn nominal() -> Self {
        Nmos::new(MosfetParams::nominal_32nm_lp())
    }

    /// The parameter record.
    pub fn params(&self) -> &MosfetParams {
        &self.params
    }

    /// Source-referenced current for `v_ds ≥ 0` (symmetry handles the rest).
    fn forward(&self, v_gs: f64, v_ds: f64) -> f64 {
        let p = &self.params;
        let vt = p.v_t();
        let v_th_eff = p.v_th_eff_t() - p.dibl * v_ds;
        let v_p = (v_gs - v_th_eff) / p.n_factor;
        let i_f = MosfetParams::ekv_f(v_p / vt);
        let i_r = MosfetParams::ekv_f((v_p - v_ds) / vt);
        p.i_spec_t() * (i_f - i_r) * (1.0 + p.lambda_clm * v_ds)
    }

    /// Analytic partials of [`Nmos::forward`] with respect to `(v_gs, v_ds)`.
    fn forward_derivs(&self, v_gs: f64, v_ds: f64) -> (f64, f64) {
        let p = &self.params;
        let vt = p.v_t();
        let v_th_eff = p.v_th_eff_t() - p.dibl * v_ds;
        let v_p = (v_gs - v_th_eff) / p.n_factor;
        let u_f = v_p / vt;
        let u_r = (v_p - v_ds) / vt;
        let i_f = MosfetParams::ekv_f(u_f);
        let i_r = MosfetParams::ekv_f(u_r);
        let d_f = MosfetParams::ekv_f_deriv(u_f);
        let d_r = MosfetParams::ekv_f_deriv(u_r);
        let scale = p.i_spec_t();
        let clm = 1.0 + p.lambda_clm * v_ds;
        // ∂v_p/∂v_gs = 1/n; ∂v_p/∂v_ds = dibl/n (through the DIBL-shifted
        // threshold); u_r carries an extra −v_ds/vt term.
        let di_dvgs = scale * (d_f - d_r) / (p.n_factor * vt) * clm;
        let di_dvds = scale * ((d_f - d_r) * p.dibl / (p.n_factor * vt) + d_r / vt) * clm
            + scale * (i_f - i_r) * p.lambda_clm;
        (di_dvgs, di_dvds)
    }
}

impl DeviceModel for Nmos {
    fn name(&self) -> &str {
        "nmos"
    }

    fn polarity(&self) -> Polarity {
        Polarity::N
    }

    fn kind(&self) -> DeviceKind {
        DeviceKind::Mosfet
    }

    fn ids_per_um(&self, vg: f64, vd: f64, vs: f64) -> f64 {
        // The MOSFET is physically symmetric: when vd < vs the terminals
        // exchange roles. Evaluating the swapped device and negating keeps
        // one code path and exact symmetry.
        if vd >= vs {
            self.forward(vg - vs, vd - vs)
        } else {
            -self.forward(vg - vd, vs - vd)
        }
    }

    fn conductances_per_um(&self, vg: f64, vd: f64, vs: f64) -> (f64, f64, f64) {
        if vd >= vs {
            let (f_gs, f_ds) = self.forward_derivs(vg - vs, vd - vs);
            (f_gs, f_ds, -(f_gs + f_ds))
        } else {
            // I(vg, vd, vs) = −forward(vg − vd, vs − vd): chain rule swaps
            // the drain/source roles.
            let (f_gs, f_ds) = self.forward_derivs(vg - vd, vs - vd);
            (-f_gs, f_gs + f_ds, -f_ds)
        }
    }

    fn caps_per_um(&self, vg: f64, vd: f64, vs: f64) -> Caps {
        let p = &self.params;
        let (v_lo, v_hi) = if vd >= vs { (vs, vd) } else { (vd, vs) };
        let v_gs = vg - v_lo;
        let v_ds = v_hi - v_lo;
        let v_ov = softplus(v_gs - p.v_th, 0.05);
        let occupancy = v_ov / (v_ov + 0.15);
        let c_ch = C_GATE_PER_UM * (0.2 + 0.8 * occupancy);
        // Saturation check: in saturation the channel pinches off at the
        // drain, so the channel charge connects mostly to the source — the
        // opposite skew of the TFET.
        let saturated = v_ds > v_ov.max(0.05);
        let (f_src, f_drn) = if saturated { (0.67, 0.13) } else { (0.4, 0.4) };
        let (cgs_ch, cgd_ch) = (c_ch * f_src, c_ch * f_drn);
        // Map channel-referenced source/drain back to terminal order.
        let (cgs, cgd) = if vd >= vs {
            (cgs_ch, cgd_ch)
        } else {
            (cgd_ch, cgs_ch)
        };
        Caps {
            cgs: cgs + p.c_junction,
            cgd: cgd + p.c_junction,
            cdb: p.c_junction,
            csb: p.c_junction,
        }
    }
}

/// p-channel MOSFET: the exact dual of [`Nmos`].
///
/// # Examples
///
/// ```
/// use tfet_devices::{Pmos, DeviceModel};
///
/// let p = Pmos::nominal();
/// // On with source at 0.8 V and gate at 0: pulls the drain up.
/// assert!(p.ids_per_um(0.0, 0.0, 0.8) < 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Pmos {
    dual: DualOf<Nmos>,
}

impl Pmos {
    /// Creates a PMOS as the dual of an NMOS parameter set.
    pub fn new(params: MosfetParams) -> Self {
        Pmos {
            dual: DualOf::new(Nmos::new(params), "pmos"),
        }
    }

    /// The 32 nm LP nominal device.
    pub fn nominal() -> Self {
        Pmos::new(MosfetParams::nominal_32nm_lp())
    }

    /// The underlying n-frame parameter record.
    pub fn params(&self) -> &MosfetParams {
        self.dual.inner().params()
    }
}

impl DeviceModel for Pmos {
    fn name(&self) -> &str {
        self.dual.name()
    }
    fn polarity(&self) -> Polarity {
        self.dual.polarity()
    }
    fn kind(&self) -> DeviceKind {
        self.dual.kind()
    }
    fn ids_per_um(&self, vg: f64, vd: f64, vs: f64) -> f64 {
        self.dual.ids_per_um(vg, vd, vs)
    }
    fn caps_per_um(&self, vg: f64, vd: f64, vs: f64) -> Caps {
        self.dual.caps_per_um(vg, vd, vs)
    }
    fn conductances_per_um(&self, vg: f64, vd: f64, vs: f64) -> (f64, f64, f64) {
        self.dual.conductances_per_um(vg, vd, vs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const VDD: f64 = 0.8;

    #[test]
    fn off_current_is_six_orders_above_tfet() {
        let n = Nmos::nominal();
        let i_off = n.ids_per_um(0.0, 1.0, 0.0);
        // Target ≈ 1e-11 A/µm: the 6-order gap over the TFET's 1e-17.
        assert!((1e-12..1e-10).contains(&i_off), "I_off = {i_off:e}");
    }

    #[test]
    fn on_current_comparable_to_tfet() {
        let n = Nmos::nominal();
        let i_on = n.ids_per_um(VDD, VDD, 0.0);
        assert!((5e-6..1e-4).contains(&i_on), "I_on = {i_on:e}");
    }

    #[test]
    fn conduction_is_bidirectional_and_symmetric() {
        let n = Nmos::nominal();
        // Gate overdrive referenced to the lower terminal in both cases.
        let fwd = n.ids_per_um(VDD, VDD, 0.0);
        let rev = n.ids_per_um(VDD, 0.0, VDD);
        assert!((fwd + rev).abs() < 1e-18, "fwd={fwd:e} rev={rev:e}");
    }

    #[test]
    fn zero_vds_zero_current() {
        let n = Nmos::nominal();
        for vg in [0.0, 0.4, 0.8] {
            assert_eq!(n.ids_per_um(vg, 0.3, 0.3), 0.0);
        }
    }

    #[test]
    fn continuous_through_vds_zero() {
        let n = Nmos::nominal();
        let below = n.ids_per_um(0.8, -1e-9, 0.0);
        let above = n.ids_per_um(0.8, 1e-9, 0.0);
        assert!((above - below).abs() < 1e-12);
    }

    #[test]
    fn subthreshold_swing_near_target() {
        let n = Nmos::nominal();
        let i1 = n.ids_per_um(0.10, VDD, 0.0);
        let i2 = n.ids_per_um(0.20, VDD, 0.0);
        let ss = 0.1 / (i2 / i1).log10();
        // n = 1.55 → ≈ 95 mV/dec; must respect the 60 mV/dec thermionic
        // floor the paper's introduction cites.
        assert!(ss > 0.0599, "MOSFET cannot beat the thermionic limit: {ss}");
        assert!((0.07..0.12).contains(&ss), "SS = {ss} V/dec");
    }

    #[test]
    fn saturation_region_is_flat() {
        let n = Nmos::nominal();
        let i1 = n.ids_per_um(VDD, 0.6, 0.0);
        let i2 = n.ids_per_um(VDD, 0.8, 0.0);
        // Only CLM + DIBL slope in saturation.
        assert!((i2 - i1) / i1 < 0.15, "not saturated: {i1:e} -> {i2:e}");
    }

    #[test]
    fn monotone_in_gate_voltage() {
        let n = Nmos::nominal();
        let mut prev = n.ids_per_um(0.0, VDD, 0.0);
        for i in 1..=24 {
            let vg = i as f64 * 0.05;
            let cur = n.ids_per_um(vg, VDD, 0.0);
            assert!(cur > prev);
            prev = cur;
        }
    }

    #[test]
    fn pmos_mirrors_nmos() {
        let n = Nmos::nominal();
        let p = Pmos::nominal();
        let i_p = p.ids_per_um(0.0, 0.0, VDD);
        let i_n = n.ids_per_um(VDD, VDD, 0.0);
        assert!((i_p + i_n).abs() < 1e-18);
    }

    #[test]
    fn finite_at_extremes() {
        let n = Nmos::nominal();
        for &(vg, vd, vs) in &[(100.0, 100.0, 0.0), (-100.0, -100.0, 0.0), (0.0, 1e3, -1e3)] {
            assert!(n.ids_per_um(vg, vd, vs).is_finite());
        }
    }

    #[test]
    fn caps_source_skewed_in_saturation() {
        let n = Nmos::nominal();
        let c = n.caps_per_um(VDD, VDD, 0.0);
        assert!(c.cgs > c.cgd, "MOSFET saturation cap must be source-skewed");
    }

    #[test]
    fn ekv_f_asymptotes() {
        // Strong inversion: F(u) → (u/2)².
        let u = 40.0;
        assert!(
            (MosfetParams::ekv_f(u) - (u / 2.0) * (u / 2.0)).abs() / ((u / 2.0) * (u / 2.0)) < 1e-6
        );
        // Weak inversion: F(u) → exp(u).
        let u = -20.0;
        assert!((MosfetParams::ekv_f(u) - u.exp()).abs() / u.exp() < 1e-3);
    }
}
