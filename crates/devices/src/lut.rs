//! Lookup-table compiled devices — the paper's own modeling methodology.
//!
//! The paper extracts I-V and C-V surfaces from TCAD into two-dimensional
//! lookup tables consumed by a Verilog-A wrapper, "an efficient and accurate
//! way to model emerging devices" in the absence of a compact model.
//! [`LutDevice`] reproduces that flow: it samples any [`DeviceModel`] on a
//! `(v_gs, v_ds)` grid and serves bilinear-interpolated currents.
//!
//! Currents span 13+ decades, so raw bilinear interpolation would be wildly
//! inaccurate near the off state. The table therefore stores
//! `asinh(I / I_SCALE)` — logarithmic for large magnitudes, linear (and
//! sign-preserving) through zero — and inverts with `sinh` on lookup. The
//! LUT-resolution ablation bench quantifies the residual error.

use crate::model::{Caps, DeviceKind, DeviceModel, Polarity};
use tfet_numerics::Lut2d;

/// Current scale of the `asinh` transform, A/µm. Chosen at the model's
/// numerical noise floor so sub-femtoampere structure still interpolates
/// smoothly.
const I_SCALE: f64 = 1e-18;

/// A device model compiled to a two-dimensional I-V lookup table.
///
/// Capacitances and metadata are forwarded to the source model (the paper
/// stores C-V in tables as well; capacitances here are smooth and cheap, so
/// tabulating them would only add error).
///
/// # Examples
///
/// ```
/// use tfet_devices::{LutDevice, NTfet, DeviceModel};
///
/// let analytic = NTfet::nominal();
/// let lut = LutDevice::compile(analytic.clone(), (-0.2, 1.2), 141, (-1.2, 1.2), 241);
/// let (va, vl) = (
///     analytic.ids_per_um(0.8, 0.8, 0.0),
///     lut.ids_per_um(0.8, 0.8, 0.0),
/// );
/// assert!((va - vl).abs() / va < 0.05);
/// ```
#[derive(Debug, Clone)]
pub struct LutDevice<M> {
    source: M,
    table: Lut2d,
    name: String,
}

impl<M: DeviceModel> LutDevice<M> {
    /// Samples `source` on an `n_gs × n_ds` grid over the given `v_gs` and
    /// `v_ds` ranges and builds the interpolating table.
    ///
    /// # Panics
    ///
    /// Panics if a grid axis has fewer than 2 points or a range is empty.
    pub fn compile(
        source: M,
        vgs_range: (f64, f64),
        n_gs: usize,
        vds_range: (f64, f64),
        n_ds: usize,
    ) -> Self {
        let name = format!("{}-lut", source.name());
        let table = Lut2d::tabulate(vgs_range, n_gs, vds_range, n_ds, |vgs, vds| {
            (source.ids_per_um(vgs, vds, 0.0) / I_SCALE).asinh()
        });
        LutDevice {
            source,
            table,
            name,
        }
    }

    /// Compiles with the default grid used throughout the workspace:
    /// V_GS ∈ [−1.2, 1.2] (241 points), V_DS ∈ [−1.2, 1.2] (241 points) —
    /// 10 mV resolution, mirroring the paper's table density.
    pub fn compile_default(source: M) -> Self {
        LutDevice::compile(source, (-1.2, 1.2), 241, (-1.2, 1.2), 241)
    }

    /// The wrapped analytic model.
    pub fn source(&self) -> &M {
        &self.source
    }

    /// Number of stored samples.
    pub fn sample_count(&self) -> usize {
        self.table.x_axis().len() * self.table.y_axis().len()
    }
}

impl<M: DeviceModel> DeviceModel for LutDevice<M> {
    fn name(&self) -> &str {
        &self.name
    }

    fn polarity(&self) -> Polarity {
        self.source.polarity()
    }

    fn kind(&self) -> DeviceKind {
        self.source.kind()
    }

    fn ids_per_um(&self, vg: f64, vd: f64, vs: f64) -> f64 {
        let t = self.table.eval(vg - vs, vd - vs);
        t.sinh() * I_SCALE
    }

    fn conductances_per_um(&self, vg: f64, vd: f64, vs: f64) -> (f64, f64, f64) {
        // Analytic derivatives of the interpolant itself, replacing the
        // default trait implementation's three central finite differences
        // (six extra table evaluations per Newton stamp). With the stored
        // transform t(x, y) = asinh(I/I₀) at x = v_gs, y = v_ds:
        //   I = I₀·sinh t  ⇒  ∂I/∂x = I₀·cosh t · ∂t/∂x  (and likewise y).
        // The model is source-referenced, so g_s = −(g_m + g_ds).
        let (x, y) = (vg - vs, vd - vs);
        let t = self.table.eval(x, y);
        let scale = t.cosh() * I_SCALE;
        let gm = scale * self.table.d_dx(x, y);
        let gds = scale * self.table.d_dy(x, y);
        (gm, gds, -(gm + gds))
    }

    fn caps_per_um(&self, vg: f64, vd: f64, vs: f64) -> Caps {
        self.source.caps_per_um(vg, vd, vs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mosfet::Nmos;
    use crate::tfet::{NTfet, PTfet};

    /// Relative error between analytic and LUT current, guarded against
    /// division by ~zero with an absolute floor.
    fn rel_err(a: f64, b: f64) -> f64 {
        (a - b).abs() / a.abs().max(1e-18)
    }

    #[test]
    fn lut_matches_analytic_on_grid_nodes() {
        let analytic = NTfet::nominal();
        let lut = LutDevice::compile(analytic.clone(), (0.0, 1.0), 11, (0.0, 1.0), 11);
        // Node (0.5, 0.5) is on the grid: agreement should be to rounding.
        let a = analytic.ids_per_um(0.5, 0.5, 0.0);
        let l = lut.ids_per_um(0.5, 0.5, 0.0);
        assert!(rel_err(a, l) < 1e-9, "{a:e} vs {l:e}");
    }

    #[test]
    fn default_grid_interpolates_within_five_percent_in_on_region() {
        let analytic = NTfet::nominal();
        let lut = LutDevice::compile_default(analytic.clone());
        for &(vg, vd) in &[(0.8, 0.8), (0.6, 0.4), (0.73, 0.61), (1.0, 0.15)] {
            let a = analytic.ids_per_um(vg, vd, 0.0);
            let l = lut.ids_per_um(vg, vd, 0.0);
            assert!(rel_err(a, l) < 0.05, "({vg},{vd}): {a:e} vs {l:e}");
        }
    }

    #[test]
    fn lut_preserves_off_current_order_of_magnitude() {
        let analytic = NTfet::nominal();
        let lut = LutDevice::compile_default(analytic.clone());
        let a = analytic.ids_per_um(0.0, 1.0, 0.0);
        let l = lut.ids_per_um(0.0, 1.0, 0.0);
        assert!((a / l).abs().log10().abs() < 1.0, "{a:e} vs {l:e}");
    }

    #[test]
    fn lut_preserves_reverse_branch_sign_and_magnitude() {
        let analytic = NTfet::nominal();
        let lut = LutDevice::compile_default(analytic.clone());
        let a = analytic.ids_per_um(0.5, -0.8, 0.0);
        let l = lut.ids_per_um(0.5, -0.8, 0.0);
        assert!(a < 0.0 && l < 0.0);
        assert!((a / l).log10().abs() < 0.5, "{a:e} vs {l:e}");
    }

    #[test]
    fn lut_source_referenced_shift_invariance() {
        // ids depends only on (vg−vs, vd−vs); the LUT must honour that.
        let lut = LutDevice::compile_default(NTfet::nominal());
        let i1 = lut.ids_per_um(0.8, 0.8, 0.0);
        let i2 = lut.ids_per_um(1.0, 1.0, 0.2);
        assert!(rel_err(i1, i2) < 1e-12);
    }

    #[test]
    fn finer_grids_reduce_error() {
        let analytic = NTfet::nominal();
        let coarse = LutDevice::compile(analytic.clone(), (0.0, 1.2), 13, (0.0, 1.2), 13);
        let fine = LutDevice::compile(analytic.clone(), (0.0, 1.2), 241, (0.0, 1.2), 241);
        let mut err_coarse = 0.0f64;
        let mut err_fine = 0.0f64;
        for &(vg, vd) in &[(0.33, 0.47), (0.55, 0.81), (0.72, 0.29)] {
            let a = analytic.ids_per_um(vg, vd, 0.0);
            err_coarse = err_coarse.max(rel_err(a, coarse.ids_per_um(vg, vd, 0.0)));
            err_fine = err_fine.max(rel_err(a, fine.ids_per_um(vg, vd, 0.0)));
        }
        assert!(err_fine < err_coarse, "{err_fine} !< {err_coarse}");
    }

    #[test]
    fn works_for_p_type_and_mosfet_sources() {
        let p = LutDevice::compile_default(PTfet::nominal());
        assert!(p.ids_per_um(0.0, 0.0, 0.8) < -1e-7);
        assert_eq!(p.polarity(), Polarity::P);

        let m = LutDevice::compile_default(Nmos::nominal());
        assert!(m.ids_per_um(0.8, 0.8, 0.0) > 1e-6);
        assert_eq!(m.kind(), DeviceKind::Mosfet);
    }

    #[test]
    fn analytic_conductances_match_finite_difference_of_lut() {
        // Off-grid points (the bilinear interpolant is smooth inside a cell,
        // so central differences there are exact up to rounding).
        let lut = LutDevice::compile_default(NTfet::nominal());
        let h = 1e-5;
        for &(vg, vd) in &[(0.553, 0.447), (0.806, 0.791), (0.304, -0.386)] {
            let (gm, gds, gs) = lut.conductances_per_um(vg, vd, 0.0);
            let fd_gm =
                (lut.ids_per_um(vg + h, vd, 0.0) - lut.ids_per_um(vg - h, vd, 0.0)) / (2.0 * h);
            let fd_gds =
                (lut.ids_per_um(vg, vd + h, 0.0) - lut.ids_per_um(vg, vd - h, 0.0)) / (2.0 * h);
            let tol = |g: f64| 1e-5 * g.abs().max(1e-12);
            assert!(
                (gm - fd_gm).abs() < tol(fd_gm),
                "({vg},{vd}): gm {gm:e} vs {fd_gm:e}"
            );
            assert!(
                (gds - fd_gds).abs() < tol(fd_gds),
                "({vg},{vd}): gds {gds:e} vs {fd_gds:e}"
            );
            assert!((gs + gm + gds).abs() < 1e-18);
        }
    }

    #[test]
    fn metadata_forwarding() {
        let lut = LutDevice::compile_default(NTfet::nominal());
        assert_eq!(lut.name(), "ntfet-lut");
        assert_eq!(lut.sample_count(), 241 * 241);
        assert!(lut.caps_per_um(0.8, 0.0, 0.0).gate_total() > 0.0);
    }
}
