//! Process-wide cache of compiled LUT devices, keyed by process corner.
//!
//! Compiling a [`LutDevice`] on the default grid evaluates
//! the analytic model 241 × 241 ≈ 58 k times. A Monte-Carlo study draws a
//! fresh [`ProcessVariation`] per transistor per sample, so naively compiling
//! a table per instance would dwarf the simulation itself. This module
//! amortizes that cost: corners are quantized (tox ratio to 10⁻³, temperature
//! to 0.1 K — both far below any physically meaningful resolution, and well
//! below the LUT's own interpolation error), and each quantized corner is
//! compiled exactly once per process, shared behind an
//! `Arc<dyn DeviceModel>`.
//!
//! The table is built **from the quantized values**, so two variations that
//! collapse to the same key produce bit-identical devices regardless of which
//! one arrived first — a requirement for the workspace's determinism
//! guarantee (results must not depend on thread scheduling).

use crate::lut::LutDevice;
use crate::model::{DeviceKind, DeviceModel};
use crate::mosfet::{MosfetParams, Nmos, Pmos};
use crate::tfet::{NTfet, PTfet, TfetParams};
use crate::variation::ProcessVariation;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Quantization step for the oxide-thickness ratio (dimensionless).
const TOX_STEP: f64 = 1e-3;
/// Quantization step for temperature, in kelvin.
const TEMP_STEP: f64 = 0.1;

/// A process corner quantized onto the cache lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CornerKey {
    kind: DeviceKind,
    n_type: bool,
    /// `tox_ratio / TOX_STEP`, rounded.
    tox_q: i64,
    /// `temp_k / TEMP_STEP`, rounded.
    temp_q: i64,
}

impl CornerKey {
    fn new(kind: DeviceKind, n_type: bool, variation: ProcessVariation, temp_k: f64) -> Self {
        CornerKey {
            kind,
            n_type,
            tox_q: (variation.tox_ratio / TOX_STEP).round() as i64,
            temp_q: (temp_k / TEMP_STEP).round() as i64,
        }
    }

    /// The corner this key represents, reconstructed from the lattice — the
    /// values the cached device is actually compiled at.
    fn dequantize(&self) -> (ProcessVariation, f64) {
        let variation = ProcessVariation {
            tox_ratio: self.tox_q as f64 * TOX_STEP,
        };
        (variation, self.temp_q as f64 * TEMP_STEP)
    }
}

fn cache() -> &'static Mutex<HashMap<CornerKey, Arc<dyn DeviceModel>>> {
    static CACHE: OnceLock<Mutex<HashMap<CornerKey, Arc<dyn DeviceModel>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

fn compile_corner(key: &CornerKey) -> Arc<dyn DeviceModel> {
    let (variation, temp_k) = key.dequantize();
    match (key.kind, key.n_type) {
        (DeviceKind::Tfet, true) => {
            let params = variation
                .apply_tfet(&TfetParams::nominal())
                .at_temperature(temp_k);
            Arc::new(LutDevice::compile_default(NTfet::new(params)))
        }
        (DeviceKind::Tfet, false) => {
            let params = variation
                .apply_tfet(&TfetParams::nominal())
                .at_temperature(temp_k);
            Arc::new(LutDevice::compile_default(PTfet::new(params)))
        }
        (DeviceKind::Mosfet, true) => {
            let params = variation
                .apply_mosfet(&MosfetParams::nominal_32nm_lp())
                .at_temperature(temp_k);
            Arc::new(LutDevice::compile_default(Nmos::new(params)))
        }
        (DeviceKind::Mosfet, false) => {
            let params = variation
                .apply_mosfet(&MosfetParams::nominal_32nm_lp())
                .at_temperature(temp_k);
            Arc::new(LutDevice::compile_default(Pmos::new(params)))
        }
    }
}

/// Returns the shared compiled LUT device for the given corner, compiling it
/// on first request.
///
/// The corner is quantized before lookup (see the module docs), so nearby
/// variations share one table and repeated requests for the same corner are
/// an `Arc` clone. Compilation happens under the cache lock: concurrent
/// first requests for one corner still compile it exactly once.
pub fn shared_lut(
    kind: DeviceKind,
    n_type: bool,
    variation: ProcessVariation,
    temp_k: f64,
) -> Arc<dyn DeviceModel> {
    let key = CornerKey::new(kind, n_type, variation, temp_k);
    let mut map = cache().lock().expect("LUT cache poisoned");
    Arc::clone(map.entry(key).or_insert_with(|| compile_corner(&key)))
}

/// Number of distinct corners compiled so far in this process.
pub fn cached_corner_count() -> usize {
    cache().lock().expect("LUT cache poisoned").len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_corner_shares_one_table() {
        let a = shared_lut(DeviceKind::Tfet, true, ProcessVariation::nominal(), 300.0);
        let b = shared_lut(DeviceKind::Tfet, true, ProcessVariation::nominal(), 300.0);
        assert!(Arc::ptr_eq(&a, &b), "identical corners must share one Arc");
    }

    #[test]
    fn sub_quantum_variations_collapse_to_one_corner() {
        // 2e-4 is below the 1e-3 tox quantum: both requests land on the
        // same lattice point and must share a table.
        let a = shared_lut(
            DeviceKind::Tfet,
            true,
            ProcessVariation { tox_ratio: 1.0 },
            300.0,
        );
        let b = shared_lut(
            DeviceKind::Tfet,
            true,
            ProcessVariation { tox_ratio: 1.0002 },
            300.0,
        );
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn distinct_corners_get_distinct_tables() {
        let before = cached_corner_count();
        let a = shared_lut(
            DeviceKind::Tfet,
            true,
            ProcessVariation { tox_ratio: 1.05 },
            300.0,
        );
        let b = shared_lut(
            DeviceKind::Tfet,
            false,
            ProcessVariation { tox_ratio: 1.05 },
            300.0,
        );
        let c = shared_lut(
            DeviceKind::Tfet,
            true,
            ProcessVariation { tox_ratio: 1.05 },
            350.0,
        );
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert!(cached_corner_count() >= before.max(3));
    }

    #[test]
    fn cached_device_is_compiled_at_the_quantized_corner() {
        // Whichever of two sub-quantum-distinct variations arrives first,
        // the served device must be the lattice-point compile: its current
        // must match a direct compile at the quantized value exactly.
        let served = shared_lut(
            DeviceKind::Tfet,
            true,
            ProcessVariation { tox_ratio: 0.9502 },
            300.0,
        );
        let direct = LutDevice::compile_default(NTfet::new(
            ProcessVariation { tox_ratio: 0.95 }
                .apply_tfet(&TfetParams::nominal())
                .at_temperature(300.0),
        ));
        let (vg, vd) = (0.731, 0.412);
        assert_eq!(
            served.ids_per_um(vg, vd, 0.0),
            direct.ids_per_um(vg, vd, 0.0),
            "cache must compile from quantized corner values"
        );
    }

    #[test]
    fn mosfet_corners_are_cached_too() {
        let a = shared_lut(DeviceKind::Mosfet, true, ProcessVariation::nominal(), 300.0);
        let b = shared_lut(DeviceKind::Mosfet, true, ProcessVariation::nominal(), 300.0);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.kind(), DeviceKind::Mosfet);
        assert!(a.ids_per_um(0.8, 0.8, 0.0) > 0.0);
    }
}
