//! Compact device models for the `tfet-sram` workspace.
//!
//! The reproduced paper (Yang & Mohanram, DATE 2011) simulates its devices in
//! Sentaurus TCAD, extracts I-V and C-V surfaces into two-dimensional lookup
//! tables, and drives circuit simulation through a Verilog-A lookup-table
//! model. This crate rebuilds that stack without TCAD:
//!
//! * [`tfet`] — a physics-based analytical compact model of the paper's 32 nm
//!   Si tunneling FET: Kane band-to-band tunneling on the forward branch
//!   (steep sub-60 mV/dec swing, I_on = 1e-4 A/µm and I_off = 1e-17 A/µm at
//!   |V_DS| = 1 V), and a gated p-i-n diode on the reverse branch where the
//!   gate progressively loses control — the *unidirectional conduction*
//!   property the whole paper revolves around;
//! * [`mosfet`] — an EKV-style all-region MOSFET calibrated to 32 nm
//!   low-power PTM headline figures, the paper's 6T CMOS baseline;
//! * [`lut`] — lookup-table compilation of any model (the paper's own
//!   modeling methodology), with an `asinh` transform so currents spanning
//!   13+ decades interpolate accurately;
//! * [`variation`] — gate-oxide-thickness process variation (±5 %, per the
//!   paper's §4.3) mapped onto perturbed model parameters;
//! * [`calibration`] — figure-of-merit extraction (I_on, I_off, minimum
//!   subthreshold swing) used by tests to pin the models to the paper's
//!   numbers.
//!
//! # Conventions
//!
//! All models are *per micrometre of gate width*; the circuit layer scales by
//! device width. `ids(vg, vd, vs)` returns the conventional current flowing
//! **into the drain terminal** in amperes (SPICE convention), so a conducting
//! n-device with `vd > vs` reports a positive value and its p-type dual
//! reports the mirrored negative value.
//!
//! # Examples
//!
//! ```
//! use tfet_devices::tfet::NTfet;
//! use tfet_devices::model::DeviceModel;
//!
//! let n = NTfet::nominal();
//! let on = n.ids_per_um(1.0, 1.0, 0.0);
//! let off = n.ids_per_um(0.0, 1.0, 0.0);
//! assert!(on > 1e-5 && off < 1e-15, "steep-switching TFET");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod calibration;
pub mod consts;
pub mod lut;
pub mod model;
pub mod mosfet;
pub mod registry;
pub mod tfet;
pub mod variation;

pub use cache::shared_lut;
pub use lut::LutDevice;
pub use model::{Caps, DeviceKind, DeviceModel, Polarity};
pub use mosfet::{MosfetParams, Nmos, Pmos};
pub use registry::standard_models;
pub use tfet::{NTfet, PTfet, TfetParams};
pub use variation::{ProcessPoint, ProcessVariation, VariationError};
