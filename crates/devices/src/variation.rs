//! Gate-oxide-thickness process variation (paper §4.3).
//!
//! The paper restricts process variation to the gate-insulator thickness,
//! controlled to within ±5 %, arguing (with [Saurabh, TDMR'11]) that channel
//! length variation has negligible effect on TFETs and that random dopant
//! fluctuation is limited by the near-intrinsic channel. This module maps a
//! relative thickness draw onto perturbed model parameters:
//!
//! * **TFET** — a thicker insulator weakens the gate-to-tunnel-junction
//!   coupling, which (i) scales the Kane exponential factor up
//!   (`b_kane ∝ (t_ox/t_ox,nom)^½` to first order in the field dilution) and
//!   (ii) shifts the onset voltage slightly. This reproduces the dominant
//!   I_on sensitivity the TFET variability literature reports (~3 %/% t_ox).
//! * **MOSFET** — oxide thickness scales the specific current inversely
//!   (`C'_ox` dilution) and shifts the threshold.

use crate::mosfet::MosfetParams;
use crate::tfet::TfetParams;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A process parameter outside the validity range of the perturbative
/// variation model.
///
/// Scaled-sigma sampling deliberately pushes draws far into the tails; a
/// draw past the model's validity range is an expected, recoverable event
/// there — it must surface as a typed error the Monte-Carlo layer can
/// quarantine per-sample, never as a panic that poisons a worker pool.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VariationError {
    /// Which process parameter was out of range.
    pub parameter: &'static str,
    /// The offending value.
    pub value: f64,
    /// The symmetric validity bound: valid values satisfy `|value| < bound`.
    pub bound: f64,
}

impl fmt::Display for VariationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} deviation {} outside the perturbative range (|x| < {})",
            self.parameter, self.value, self.bound
        )
    }
}

impl std::error::Error for VariationError {}

/// Validity bound on relative t_ox deviation: `|dev| < 0.5`.
pub const TOX_DEVIATION_BOUND: f64 = 0.5;
/// Validity bound on additive threshold/onset shift: `|ΔV| < 0.3` V.
pub const VTH_SHIFT_BOUND: f64 = 0.3;
/// Validity bound on relative drive-strength (W/L) deviation: `|dev| < 0.5`.
pub const DRIVE_DEVIATION_BOUND: f64 = 0.5;

fn check_bound(parameter: &'static str, value: f64, bound: f64) -> Result<(), VariationError> {
    if value.is_finite() && value.abs() < bound {
        Ok(())
    } else {
        Err(VariationError {
            parameter,
            value,
            bound,
        })
    }
}

/// A sampled process point: relative gate-oxide thickness.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProcessVariation {
    /// `t_ox / t_ox,nominal`; 1.0 is the nominal process.
    pub tox_ratio: f64,
}

impl ProcessVariation {
    /// The nominal (unperturbed) process point.
    pub fn nominal() -> Self {
        ProcessVariation { tox_ratio: 1.0 }
    }

    /// Creates a variation from a relative thickness deviation, e.g.
    /// `from_deviation(0.05)` for +5 %.
    ///
    /// # Panics
    ///
    /// Panics if the deviation is not in `(-0.5, 0.5)` — the model is a
    /// small-signal perturbation, not valid for gross thickness changes.
    /// Samplers that can legitimately draw outside that range (scaled-sigma
    /// studies) must use [`ProcessVariation::try_from_deviation`] instead.
    pub fn from_deviation(dev: f64) -> Self {
        ProcessVariation::try_from_deviation(dev).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible counterpart of [`ProcessVariation::from_deviation`]: returns
    /// a typed [`VariationError`] instead of panicking when the deviation is
    /// outside the perturbative range `(-0.5, 0.5)`, so per-sample draws can
    /// be quarantined rather than killing a worker thread.
    pub fn try_from_deviation(dev: f64) -> Result<Self, VariationError> {
        check_bound("t_ox", dev, TOX_DEVIATION_BOUND)?;
        Ok(ProcessVariation {
            tox_ratio: 1.0 + dev,
        })
    }

    /// Relative deviation `t_ox/t_nom − 1`.
    pub fn deviation(&self) -> f64 {
        self.tox_ratio - 1.0
    }

    /// Applies the variation to a TFET parameter set.
    pub fn apply_tfet(&self, nominal: &TfetParams) -> TfetParams {
        let mut p = *nominal;
        // Field dilution: the tunneling field scales like the gate coupling,
        // so the exponent B/F grows with sqrt of the thickness ratio.
        p.b_kane = nominal.b_kane * self.tox_ratio.sqrt();
        // Weak electrostatic onset shift: 0.2 V per unit relative deviation
        // (10 mV at the ±5 % corner).
        p.v_onset = nominal.v_onset + 0.2 * self.deviation();
        p
    }

    /// Applies the variation to a MOSFET parameter set.
    pub fn apply_mosfet(&self, nominal: &MosfetParams) -> MosfetParams {
        let mut p = *nominal;
        // I_spec ∝ C'_ox ∝ 1/t_ox.
        p.i_spec = nominal.i_spec / self.tox_ratio;
        // Threshold shift with oxide thickness (depletion-charge term).
        p.v_th = nominal.v_th + 0.1 * self.deviation();
        p
    }
}

impl Default for ProcessVariation {
    fn default() -> Self {
        ProcessVariation::nominal()
    }
}

/// A multi-factor process point: gate-oxide thickness plus the Vth-mismatch
/// and geometry (drive-strength) factors the CMOS SRAM variability
/// literature treats as the dominant failure drivers.
///
/// The paper's §4.3 model is t_ox-only; [`ProcessPoint`] generalizes it for
/// rare-event yield studies while keeping the t_ox-only path untouched — a
/// point with `vth_shift == 0` and `drive_ratio == 1` applies *exactly* the
/// same parameter perturbation as its [`ProcessVariation`] alone, so the
/// paper-faithful default stays bit-identical.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProcessPoint {
    /// Gate-oxide thickness variation (the paper's §4.3 factor).
    pub tox: ProcessVariation,
    /// Additive threshold/onset shift in volts (random dopant fluctuation
    /// and work-function mismatch; also carries the common-mode image of a
    /// supply droop).
    pub vth_shift: f64,
    /// Multiplicative drive-strength ratio (W/L geometry mismatch); 1.0 is
    /// nominal.
    pub drive_ratio: f64,
}

impl ProcessPoint {
    /// The nominal (unperturbed) process point.
    pub fn nominal() -> Self {
        ProcessPoint {
            tox: ProcessVariation::nominal(),
            vth_shift: 0.0,
            drive_ratio: 1.0,
        }
    }

    /// Builds a process point from raw factor deviations, validating every
    /// factor against its perturbative bound: t_ox and drive deviations are
    /// relative (`|dev| < 0.5`), the threshold shift is absolute volts
    /// (`|ΔV| < 0.3`).
    ///
    /// Returns a typed [`VariationError`] naming the first offending factor;
    /// scaled-sigma studies route that error into their per-sample
    /// quarantine path.
    pub fn try_new(tox_dev: f64, vth_shift: f64, drive_dev: f64) -> Result<Self, VariationError> {
        let tox = ProcessVariation::try_from_deviation(tox_dev)?;
        check_bound("vth", vth_shift, VTH_SHIFT_BOUND)?;
        check_bound("drive", drive_dev, DRIVE_DEVIATION_BOUND)?;
        Ok(ProcessPoint {
            tox,
            vth_shift,
            drive_ratio: 1.0 + drive_dev,
        })
    }

    /// `true` when the point is exactly nominal.
    pub fn is_nominal(&self) -> bool {
        *self == ProcessPoint::nominal()
    }

    /// Applies all factors to a TFET parameter set: the t_ox mapping first,
    /// then the onset shift and the drive-strength scale on the Kane
    /// pre-factor (I_on ∝ A_kane to first order).
    pub fn apply_tfet(&self, nominal: &TfetParams) -> TfetParams {
        let mut p = self.tox.apply_tfet(nominal);
        p.v_onset += self.vth_shift;
        p.a_kane *= self.drive_ratio;
        p
    }

    /// Applies all factors to a MOSFET parameter set: the t_ox mapping, then
    /// the threshold shift and the drive-strength scale on the specific
    /// current (I_spec ∝ W/L).
    pub fn apply_mosfet(&self, nominal: &MosfetParams) -> MosfetParams {
        let mut p = self.tox.apply_mosfet(nominal);
        p.v_th += self.vth_shift;
        p.i_spec *= self.drive_ratio;
        p
    }
}

impl Default for ProcessPoint {
    fn default() -> Self {
        ProcessPoint::nominal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DeviceModel;
    use crate::mosfet::Nmos;
    use crate::tfet::NTfet;

    #[test]
    fn nominal_variation_is_identity() {
        let v = ProcessVariation::nominal();
        let t = TfetParams::nominal();
        assert_eq!(v.apply_tfet(&t), t);
        let m = MosfetParams::nominal_32nm_lp();
        assert_eq!(v.apply_mosfet(&m), m);
    }

    #[test]
    fn thicker_oxide_weakens_tfet_on_current() {
        let nom = NTfet::nominal();
        let thick =
            NTfet::new(ProcessVariation::from_deviation(0.05).apply_tfet(&TfetParams::nominal()));
        let thin =
            NTfet::new(ProcessVariation::from_deviation(-0.05).apply_tfet(&TfetParams::nominal()));
        let i_nom = nom.ids_per_um(0.8, 0.8, 0.0);
        let i_thick = thick.ids_per_um(0.8, 0.8, 0.0);
        let i_thin = thin.ids_per_um(0.8, 0.8, 0.0);
        assert!(i_thick < i_nom && i_nom < i_thin);
        // The ±5 % corner should move the on-current by single-digit to
        // low-double-digit percent — enough to spread WL_crit visibly but
        // not to break the device.
        let swing = (i_thin - i_thick) / i_nom;
        assert!((0.02..0.8).contains(&swing), "on-current swing {swing}");
    }

    #[test]
    fn thicker_oxide_weakens_mosfet() {
        let nom = Nmos::nominal();
        let thick = Nmos::new(
            ProcessVariation::from_deviation(0.05).apply_mosfet(&MosfetParams::nominal_32nm_lp()),
        );
        assert!(thick.ids_per_um(0.8, 0.8, 0.0) < nom.ids_per_um(0.8, 0.8, 0.0));
    }

    #[test]
    #[should_panic(expected = "perturbative")]
    fn gross_deviation_rejected() {
        ProcessVariation::from_deviation(0.9);
    }

    #[test]
    fn deviation_roundtrip() {
        let v = ProcessVariation::from_deviation(0.03);
        assert!((v.deviation() - 0.03).abs() < 1e-15);
    }

    #[test]
    fn try_from_deviation_returns_typed_error() {
        let e = ProcessVariation::try_from_deviation(0.9).unwrap_err();
        assert_eq!(e.parameter, "t_ox");
        assert_eq!(e.value, 0.9);
        assert_eq!(e.bound, TOX_DEVIATION_BOUND);
        assert!(format!("{e}").contains("perturbative"));
        assert!(ProcessVariation::try_from_deviation(f64::NAN).is_err());
        assert!(ProcessVariation::try_from_deviation(0.05).is_ok());
    }

    #[test]
    fn nominal_process_point_is_identity() {
        let p = ProcessPoint::nominal();
        assert!(p.is_nominal());
        let t = TfetParams::nominal();
        assert_eq!(p.apply_tfet(&t), t);
        let m = MosfetParams::nominal_32nm_lp();
        assert_eq!(p.apply_mosfet(&m), m);
    }

    #[test]
    fn tox_only_point_matches_process_variation_exactly() {
        // The multi-factor point with neutral vth/drive must be bit-identical
        // to the paper's t_ox-only mapping — this is what keeps every
        // existing figure byte-stable when the factor model is off.
        let p = ProcessPoint::try_new(0.04, 0.0, 0.0).unwrap();
        let v = ProcessVariation::from_deviation(0.04);
        assert_eq!(
            p.apply_tfet(&TfetParams::nominal()),
            v.apply_tfet(&TfetParams::nominal())
        );
        assert_eq!(
            p.apply_mosfet(&MosfetParams::nominal_32nm_lp()),
            v.apply_mosfet(&MosfetParams::nominal_32nm_lp())
        );
    }

    #[test]
    fn vth_shift_weakens_n_devices() {
        let nom = NTfet::nominal();
        let slow = NTfet::new(
            ProcessPoint::try_new(0.0, 0.05, 0.0)
                .unwrap()
                .apply_tfet(&TfetParams::nominal()),
        );
        assert!(slow.ids_per_um(0.8, 0.8, 0.0) < nom.ids_per_um(0.8, 0.8, 0.0));
        let m_nom = Nmos::nominal();
        let m_slow = Nmos::new(
            ProcessPoint::try_new(0.0, 0.05, 0.0)
                .unwrap()
                .apply_mosfet(&MosfetParams::nominal_32nm_lp()),
        );
        assert!(m_slow.ids_per_um(0.8, 0.8, 0.0) < m_nom.ids_per_um(0.8, 0.8, 0.0));
    }

    #[test]
    fn drive_ratio_scales_on_current() {
        let nom = NTfet::nominal();
        let strong = NTfet::new(
            ProcessPoint::try_new(0.0, 0.0, 0.2)
                .unwrap()
                .apply_tfet(&TfetParams::nominal()),
        );
        let i_nom = nom.ids_per_um(0.8, 0.8, 0.0);
        let i_strong = strong.ids_per_um(0.8, 0.8, 0.0);
        assert!(
            (i_strong / i_nom - 1.2).abs() < 0.05,
            "ratio {}",
            i_strong / i_nom
        );
    }

    #[test]
    fn process_point_rejects_each_factor_by_name() {
        assert_eq!(
            ProcessPoint::try_new(0.6, 0.0, 0.0).unwrap_err().parameter,
            "t_ox"
        );
        assert_eq!(
            ProcessPoint::try_new(0.0, 0.35, 0.0).unwrap_err().parameter,
            "vth"
        );
        assert_eq!(
            ProcessPoint::try_new(0.0, 0.0, -0.7).unwrap_err().parameter,
            "drive"
        );
    }
}
