//! Gate-oxide-thickness process variation (paper §4.3).
//!
//! The paper restricts process variation to the gate-insulator thickness,
//! controlled to within ±5 %, arguing (with [Saurabh, TDMR'11]) that channel
//! length variation has negligible effect on TFETs and that random dopant
//! fluctuation is limited by the near-intrinsic channel. This module maps a
//! relative thickness draw onto perturbed model parameters:
//!
//! * **TFET** — a thicker insulator weakens the gate-to-tunnel-junction
//!   coupling, which (i) scales the Kane exponential factor up
//!   (`b_kane ∝ (t_ox/t_ox,nom)^½` to first order in the field dilution) and
//!   (ii) shifts the onset voltage slightly. This reproduces the dominant
//!   I_on sensitivity the TFET variability literature reports (~3 %/% t_ox).
//! * **MOSFET** — oxide thickness scales the specific current inversely
//!   (`C'_ox` dilution) and shifts the threshold.

use crate::mosfet::MosfetParams;
use crate::tfet::TfetParams;
use serde::{Deserialize, Serialize};

/// A sampled process point: relative gate-oxide thickness.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProcessVariation {
    /// `t_ox / t_ox,nominal`; 1.0 is the nominal process.
    pub tox_ratio: f64,
}

impl ProcessVariation {
    /// The nominal (unperturbed) process point.
    pub fn nominal() -> Self {
        ProcessVariation { tox_ratio: 1.0 }
    }

    /// Creates a variation from a relative thickness deviation, e.g.
    /// `from_deviation(0.05)` for +5 %.
    ///
    /// # Panics
    ///
    /// Panics if the deviation is not in `(-0.5, 0.5)` — the model is a
    /// small-signal perturbation, not valid for gross thickness changes.
    pub fn from_deviation(dev: f64) -> Self {
        assert!(
            dev > -0.5 && dev < 0.5,
            "t_ox deviation {dev} outside the perturbative range"
        );
        ProcessVariation {
            tox_ratio: 1.0 + dev,
        }
    }

    /// Relative deviation `t_ox/t_nom − 1`.
    pub fn deviation(&self) -> f64 {
        self.tox_ratio - 1.0
    }

    /// Applies the variation to a TFET parameter set.
    pub fn apply_tfet(&self, nominal: &TfetParams) -> TfetParams {
        let mut p = *nominal;
        // Field dilution: the tunneling field scales like the gate coupling,
        // so the exponent B/F grows with sqrt of the thickness ratio.
        p.b_kane = nominal.b_kane * self.tox_ratio.sqrt();
        // Weak electrostatic onset shift: 0.2 V per unit relative deviation
        // (10 mV at the ±5 % corner).
        p.v_onset = nominal.v_onset + 0.2 * self.deviation();
        p
    }

    /// Applies the variation to a MOSFET parameter set.
    pub fn apply_mosfet(&self, nominal: &MosfetParams) -> MosfetParams {
        let mut p = *nominal;
        // I_spec ∝ C'_ox ∝ 1/t_ox.
        p.i_spec = nominal.i_spec / self.tox_ratio;
        // Threshold shift with oxide thickness (depletion-charge term).
        p.v_th = nominal.v_th + 0.1 * self.deviation();
        p
    }
}

impl Default for ProcessVariation {
    fn default() -> Self {
        ProcessVariation::nominal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DeviceModel;
    use crate::mosfet::Nmos;
    use crate::tfet::NTfet;

    #[test]
    fn nominal_variation_is_identity() {
        let v = ProcessVariation::nominal();
        let t = TfetParams::nominal();
        assert_eq!(v.apply_tfet(&t), t);
        let m = MosfetParams::nominal_32nm_lp();
        assert_eq!(v.apply_mosfet(&m), m);
    }

    #[test]
    fn thicker_oxide_weakens_tfet_on_current() {
        let nom = NTfet::nominal();
        let thick =
            NTfet::new(ProcessVariation::from_deviation(0.05).apply_tfet(&TfetParams::nominal()));
        let thin =
            NTfet::new(ProcessVariation::from_deviation(-0.05).apply_tfet(&TfetParams::nominal()));
        let i_nom = nom.ids_per_um(0.8, 0.8, 0.0);
        let i_thick = thick.ids_per_um(0.8, 0.8, 0.0);
        let i_thin = thin.ids_per_um(0.8, 0.8, 0.0);
        assert!(i_thick < i_nom && i_nom < i_thin);
        // The ±5 % corner should move the on-current by single-digit to
        // low-double-digit percent — enough to spread WL_crit visibly but
        // not to break the device.
        let swing = (i_thin - i_thick) / i_nom;
        assert!((0.02..0.8).contains(&swing), "on-current swing {swing}");
    }

    #[test]
    fn thicker_oxide_weakens_mosfet() {
        let nom = Nmos::nominal();
        let thick = Nmos::new(
            ProcessVariation::from_deviation(0.05).apply_mosfet(&MosfetParams::nominal_32nm_lp()),
        );
        assert!(thick.ids_per_um(0.8, 0.8, 0.0) < nom.ids_per_um(0.8, 0.8, 0.0));
    }

    #[test]
    #[should_panic(expected = "perturbative")]
    fn gross_deviation_rejected() {
        ProcessVariation::from_deviation(0.9);
    }

    #[test]
    fn deviation_roundtrip() {
        let v = ProcessVariation::from_deviation(0.03);
        assert!((v.deviation() - 0.03).abs() < 1e-15);
    }
}
