//! Model registry for SPICE-deck imports.
//!
//! Device cards in a deck name their compact model (`X… ntfet W=0.1`);
//! the importer resolves those names through a
//! `HashMap<String, Arc<dyn DeviceModel>>`. [`standard_models`] builds the
//! registry of this workspace's calibrated nominal models — the same names
//! `Circuit::to_spice` writes, so any exported deck re-imports against it.
//!
//! Imported devices are always *nominal*; process variation is applied by
//! the experiment layer after import (per-device, keyed by topology role),
//! exactly as it is for circuits built in Rust.

use crate::model::DeviceModel;
use crate::mosfet::{Nmos, Pmos};
use crate::tfet::{NTfet, PTfet};
use std::collections::HashMap;
use std::sync::Arc;

/// The workspace's standard compact models, keyed by the names that appear
/// on exported device cards: `ntfet`, `ptfet` (the paper's 32 nm Si TFET)
/// and `nmos`, `pmos` (the 32 nm low-power CMOS baseline).
pub fn standard_models() -> HashMap<String, Arc<dyn DeviceModel>> {
    let mut m: HashMap<String, Arc<dyn DeviceModel>> = HashMap::new();
    m.insert("ntfet".to_string(), Arc::new(NTfet::nominal()));
    m.insert("ptfet".to_string(), Arc::new(PTfet::nominal()));
    m.insert("nmos".to_string(), Arc::new(Nmos::nominal()));
    m.insert("pmos".to_string(), Arc::new(Pmos::nominal()));
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Polarity;

    #[test]
    fn registry_keys_match_model_names() {
        let reg = standard_models();
        assert_eq!(reg.len(), 4);
        for (key, model) in &reg {
            assert_eq!(key, model.name(), "registry key must match name()");
        }
        assert_eq!(reg["ntfet"].polarity(), Polarity::N);
        assert_eq!(reg["ptfet"].polarity(), Polarity::P);
        assert_eq!(reg["nmos"].polarity(), Polarity::N);
        assert_eq!(reg["pmos"].polarity(), Polarity::P);
    }
}
