//! Figure-of-merit extraction used to pin the device models to the paper.
//!
//! The paper states exact device targets (§2): on-current 1e-4 A/µm,
//! off-current 1e-17 A/µm at |V_DS| = 1 V, sub-60 mV/dec swing, leakage six
//! orders of magnitude below the 32 nm MOSFET. These extractors measure a
//! model the same way a characterization engineer would, and the crate tests
//! assert the targets, so any future model change that silently drifts from
//! the paper's device breaks the build.

use crate::model::{DeviceModel, Polarity};

/// Characterization result of a transfer sweep at fixed |V_DS|.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferFigures {
    /// Drive current at |V_GS| = |V_DS| = `v_max`, A/µm.
    pub i_on: f64,
    /// Leakage at V_GS = 0, |V_DS| = `v_max`, A/µm.
    pub i_off: f64,
    /// Minimum subthreshold swing observed over the sweep, V/decade.
    pub ss_min: f64,
    /// On/off ratio.
    pub on_off_ratio: f64,
}

/// Sweeps the transfer characteristic of `model` up to `v_max` (e.g. 1.0 V)
/// and extracts figures of merit. Polarity is handled internally: a p-type
/// device is swept with mirrored voltages.
///
/// # Panics
///
/// Panics if `v_max <= 0`.
pub fn characterize(model: &dyn DeviceModel, v_max: f64) -> TransferFigures {
    assert!(v_max > 0.0, "v_max must be positive");
    let sign = match model.polarity() {
        Polarity::N => 1.0,
        Polarity::P => -1.0,
    };
    // Current magnitude flowing in the forward direction at (vgs, vds=v_max).
    let ids = |vgs: f64| -> f64 { model.ids_per_um(sign * vgs, sign * v_max, 0.0).abs() };

    let i_on = ids(v_max);
    let i_off = ids(0.0);

    let mut ss_min = f64::INFINITY;
    let dv = 0.01;
    let steps = (v_max / dv) as usize;
    for k in 0..steps {
        let v = k as f64 * dv;
        let i1 = ids(v);
        let i2 = ids(v + dv);
        // Only count the region where the device is actually switching and
        // above the measurement floor.
        if i1 > 2.0 * i_off && i2 > i1 * 1.0001 {
            ss_min = ss_min.min(dv / (i2 / i1).log10());
        }
    }

    TransferFigures {
        i_on,
        i_off,
        ss_min,
        on_off_ratio: i_on / i_off,
    }
}

/// Paper targets for the TFET at |V_DS| = 1 V.
pub mod targets {
    /// On-current target, A/µm (paper §2: "on current of 1e-4 A/µm").
    pub const TFET_I_ON: f64 = 1e-4;
    /// Off-current target, A/µm (paper §2: "off current of 1e-17 A/µm").
    pub const TFET_I_OFF: f64 = 1e-17;
    /// Swing must beat the room-temperature MOSFET limit.
    pub const TFET_SS_MAX: f64 = 0.060;
    /// The MOSFET baseline leaks about six orders of magnitude more than
    /// the TFET (paper §2/§3: "6 orders of magnitude lower than the 32nm
    /// MOSFET").
    pub const LEAKAGE_GAP_ORDERS: f64 = 6.0;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mosfet::{Nmos, Pmos};
    use crate::tfet::{NTfet, PTfet};

    #[test]
    fn ntfet_meets_paper_targets() {
        let f = characterize(&NTfet::nominal(), 1.0);
        assert!(
            (f.i_on / targets::TFET_I_ON).log10().abs() < 0.5,
            "I_on = {:e}",
            f.i_on
        );
        assert!(
            (f.i_off / targets::TFET_I_OFF).log10().abs() < 0.5,
            "I_off = {:e}",
            f.i_off
        );
        assert!(f.ss_min < targets::TFET_SS_MAX, "SS = {}", f.ss_min);
        assert!(f.on_off_ratio > 1e12);
    }

    #[test]
    fn ptfet_characterization_mirrors_ntfet() {
        let n = characterize(&NTfet::nominal(), 1.0);
        let p = characterize(&PTfet::nominal(), 1.0);
        assert!((n.i_on - p.i_on).abs() / n.i_on < 1e-9);
        assert!((n.i_off - p.i_off).abs() / n.i_off < 1e-9);
    }

    #[test]
    fn leakage_gap_between_mosfet_and_tfet_is_about_six_orders() {
        let t = characterize(&NTfet::nominal(), 1.0);
        let m = characterize(&Nmos::nominal(), 1.0);
        let gap = (m.i_off / t.i_off).log10();
        assert!(
            (targets::LEAKAGE_GAP_ORDERS - 1.0..=targets::LEAKAGE_GAP_ORDERS + 1.5).contains(&gap),
            "leakage gap = {gap} orders"
        );
    }

    #[test]
    fn mosfet_swing_respects_thermionic_limit() {
        let n = characterize(&Nmos::nominal(), 1.0);
        let p = characterize(&Pmos::nominal(), 1.0);
        assert!(n.ss_min > 0.0599, "NMOS SS = {}", n.ss_min);
        assert!(p.ss_min > 0.0599, "PMOS SS = {}", p.ss_min);
    }

    #[test]
    fn tfet_and_mosfet_drive_currents_are_comparable() {
        // The paper finds comparable performance between the proposed TFET
        // SRAM and the CMOS cell; that requires comparable drive currents.
        let t = characterize(&NTfet::nominal(), 0.8);
        let m = characterize(&Nmos::nominal(), 0.8);
        let ratio = t.i_on / m.i_on;
        assert!((0.1..10.0).contains(&ratio), "drive ratio = {ratio}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn characterize_rejects_bad_vmax() {
        characterize(&NTfet::nominal(), 0.0);
    }
}
