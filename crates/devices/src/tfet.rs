//! Analytical compact model of the paper's 32 nm Si tunneling FET.
//!
//! # Physics captured
//!
//! A TFET is a gated p-i-n diode. For the n-type device (p⁺ source, n⁺
//! drain, near-intrinsic channel):
//!
//! * **Forward branch** (`v_ds ≥ 0`, conduction drain→source): the gate pulls
//!   the channel conduction band below the source valence band and carriers
//!   tunnel band-to-band. We model the tunneling generation with the Kane
//!   form `I ∝ F² · exp(−B/F)` driven by an effective junction field
//!   proportional to the smoothed gate overdrive, times a super-linear
//!   drain-saturation factor. This produces the sub-60 mV/dec swing and the
//!   13-decade on/off ratio the paper quotes (I_on = 1e-4 A/µm,
//!   I_off = 1e-17 A/µm at V_DS = 1 V).
//! * **Reverse branch** (`v_ds < 0`): the p-i-n body diode becomes forward
//!   biased. At small |V_DS| a residual gate-modulated (ambipolar) tunneling
//!   term dominates — the gate still has some control (paper Fig. 2b, low
//!   V_DS curves). At |V_DS| ≳ 0.6 V the exponential diode current takes
//!   over and the gate loses control entirely; by |V_DS| = 1 V the reverse
//!   current is within an order of magnitude of the forward on-current.
//!   This branch is what makes *outward* SRAM access transistors leak
//!   catastrophically during hold (§3 of the paper).
//!
//! Both branches and their first derivatives are continuous at `v_ds = 0`,
//! which the Newton solver requires.
//!
//! The default calibration ([`TfetParams::nominal`]) reproduces the paper's
//! headline figures; see `calibration.rs` tests for the pinned targets.

use crate::consts::{
    lim_exp, lim_exp_deriv, softplus, softplus_deriv, C_GATE_PER_UM, K_B, Q, TEMPERATURE,
};
use crate::model::{Caps, DeviceKind, DeviceModel, DualOf, Polarity};
use serde::{Deserialize, Serialize};

/// Parameter set for the analytical TFET model (n-type reference frame).
///
/// Construct via [`TfetParams::nominal`] and adjust fields as needed; all
/// fields are public because the struct is a passive parameter record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TfetParams {
    /// Kane prefactor, A/µm. Sets the absolute on-current scale.
    pub a_kane: f64,
    /// Kane exponential factor, V. Sets the swing steepness and on/off ratio.
    pub b_kane: f64,
    /// Gate work-function-tuned onset voltage, V: gate bias at which band
    /// overlap begins. The paper tunes the work function to hit its I_on /
    /// I_off targets; this is the equivalent knob.
    pub v_onset: f64,
    /// Smoothing width of the onset transition, V.
    pub w_onset: f64,
    /// Drain-to-channel electrostatic coupling (DIBL-like feed of V_DS into
    /// the tunneling field), dimensionless.
    pub gamma_d: f64,
    /// Drain-saturation voltage scale of the output characteristic, V.
    pub v_sat: f64,
    /// Exponent of the super-linear output-onset factor (TFETs show delayed
    /// saturation; 2 gives the characteristic quadratic onset).
    pub m_sat: f64,
    /// Off-state leakage conductance, S/µm. Pinned so the off current is
    /// 1e-17 A/µm at V_DS = 1 V (paper's TCAD result).
    pub g_off: f64,
    /// Reverse p-i-n diode saturation current, A/µm.
    pub i_s_diode: f64,
    /// Reverse diode ideality factor.
    pub n_diode: f64,
    /// Ambipolar (reverse gated-tunneling) current ratio relative to the
    /// forward branch, dimensionless.
    pub r_ambipolar: f64,
    /// Quench voltage of the ambipolar branch, V: under strong reverse bias
    /// the forward-biased p-i-n floods the channel with injected carriers
    /// and the gate's electrostatic control collapses exponentially on this
    /// scale (paper Fig. 2b: gate control at |V_DS| ≤ 0.4 V, none at 1 V).
    pub v_amb_quench: f64,
    /// Fraction of the channel capacitance assigned to the drain in the
    /// on-state (TFET inversion charge connects to the drain, so > 0.5).
    pub miller_skew: f64,
    /// Drain/source junction (diffusion + contact) capacitance to the
    /// substrate, F/µm.
    pub c_junction: f64,
    /// Gate-to-drain/source overlap fringe capacitance, F/µm.
    pub c_overlap: f64,
    /// Device temperature, K. Band-to-band tunneling is nearly
    /// temperature-independent (weak bandgap narrowing only) — the TFET's
    /// second headline advantage over thermionic MOSFETs — while the p-i-n
    /// body diode's saturation current carries the full `T³·exp(−E_g/kT)`
    /// dependence.
    pub temp_k: f64,
}

impl TfetParams {
    /// The nominal calibration matching the paper's device (§2):
    /// I_on = 1e-4 A/µm and I_off = 1e-17 A/µm at V_GS = V_DS = 1 V, minimum
    /// subthreshold swing below 60 mV/dec, reverse-bias gate-control loss
    /// above |V_DS| ≈ 0.6 V.
    pub fn nominal() -> Self {
        TfetParams {
            a_kane: 1.35e-3,
            b_kane: 2.6,
            v_onset: 0.04,
            w_onset: 0.03,
            gamma_d: 0.045,
            v_sat: 0.10,
            m_sat: 2.0,
            g_off: 1.0e-17,
            i_s_diode: 1.0e-20,
            n_diode: 1.0,
            r_ambipolar: 0.3,
            v_amb_quench: 0.2,
            miller_skew: 0.55,
            c_junction: 0.10 * C_GATE_PER_UM,
            c_overlap: 0.04 * C_GATE_PER_UM,
            temp_k: TEMPERATURE,
        }
    }

    /// The same calibration evaluated at a different temperature (builder
    /// style).
    pub fn at_temperature(mut self, temp_k: f64) -> Self {
        assert!(
            (200.0..=450.0).contains(&temp_k),
            "temperature {temp_k} K outside the model's validated range"
        );
        self.temp_k = temp_k;
        self
    }

    /// Thermal voltage kT/q at the device temperature, V.
    pub fn v_t(&self) -> f64 {
        K_B * self.temp_k / Q
    }

    /// Temperature factor on the tunneling generation: weak bandgap
    /// narrowing only, ≈ +4e-4 per kelvin — the physical basis of the
    /// TFET's flat leakage-vs-temperature behaviour.
    fn kane_temp_factor(&self) -> f64 {
        1.0 + 4.0e-4 * (self.temp_k - TEMPERATURE)
    }

    /// Temperature-scaled diode saturation current:
    /// `i_s ∝ T³ · exp(−E_g/kT)` referenced to 300 K (silicon E_g ≈ 1.12 eV).
    fn i_s_diode_t(&self) -> f64 {
        const EG_OVER_K: f64 = 1.12 * Q / K_B; // E_g/k_B in kelvin
        let t_ratio = self.temp_k / TEMPERATURE;
        self.i_s_diode
            * t_ratio.powi(3)
            * (-EG_OVER_K * (1.0 / self.temp_k - 1.0 / TEMPERATURE)).exp()
    }

    /// Band-to-band tunneling magnitude (A/µm) for smoothed gate overdrive
    /// `v_ov ≥ 0` (already includes drain coupling).
    fn kane(&self, v_ov: f64) -> f64 {
        if v_ov <= 1e-12 {
            return 0.0;
        }
        // lim_exp keeps extreme Newton iterates finite.
        self.kane_temp_factor() * self.a_kane * v_ov * v_ov * lim_exp(-self.b_kane / v_ov, 60.0)
    }

    /// Super-linear output saturation factor for `v_ds ≥ 0`; 0 at the origin,
    /// →1 in saturation, zero first derivative at the origin for `m_sat = 2`.
    fn sat(&self, v_ds: f64) -> f64 {
        debug_assert!(v_ds >= 0.0);
        (1.0 - (-v_ds / self.v_sat).exp()).powf(self.m_sat)
    }

    /// Derivative of the tunneling magnitude with respect to the overdrive:
    /// `d/dv [a·tf·v²·e^{−b/v}] = a·tf·(2v + b)·e^{−b/v}`.
    fn kane_deriv(&self, v_ov: f64) -> f64 {
        if v_ov <= 1e-12 {
            return 0.0;
        }
        self.kane_temp_factor()
            * self.a_kane
            * (2.0 * v_ov + self.b_kane)
            * lim_exp(-self.b_kane / v_ov, 60.0)
    }

    /// Derivative of [`TfetParams::sat`] with respect to `v_ds`.
    fn sat_deriv(&self, v_ds: f64) -> f64 {
        debug_assert!(v_ds >= 0.0);
        let e = (-v_ds / self.v_sat).exp();
        self.m_sat * (1.0 - e).powf(self.m_sat - 1.0) * e / self.v_sat
    }

    /// Forward-branch current (A/µm) for `v_gs`, `v_ds ≥ 0`.
    fn forward(&self, v_gs: f64, v_ds: f64) -> f64 {
        let v_ov = softplus(v_gs - self.v_onset + self.gamma_d * v_ds, self.w_onset);
        self.kane(v_ov) * self.sat(v_ds) + self.g_off * v_ds
    }

    /// Reverse-branch current magnitude (A/µm) for `v_gs` and reverse drain
    /// bias `v_r = −v_ds > 0`; flows source→drain.
    fn reverse(&self, v_gs: f64, v_r: f64) -> f64 {
        debug_assert!(v_r >= 0.0);
        // Forward-biased p-i-n body diode: gate-independent, dominant at
        // high reverse bias.
        let diode = self.i_s_diode_t() * (lim_exp(v_r / (self.n_diode * self.v_t()), 60.0) - 1.0);
        // Gate-modulated ambipolar tunneling: comparable to the forward
        // branch at small reverse bias (paper Fig. 2b — "much smaller …
        // except for V_DS close to 1 V or 0 V"), quenched exponentially as
        // the injected p-i-n carriers screen the gate at larger |V_DS|.
        let v_ov = softplus(v_gs - self.v_onset + self.gamma_d * v_r, self.w_onset);
        let gated =
            self.r_ambipolar * self.kane(v_ov) * self.sat(v_r) * (-v_r / self.v_amb_quench).exp();
        diode + gated + self.g_off * v_r
    }
}

impl Default for TfetParams {
    fn default() -> Self {
        TfetParams::nominal()
    }
}

/// The n-type Si tunneling FET (p⁺ source, n⁺ drain).
///
/// Forward conduction is drain→source (positive [`DeviceModel::ids_per_um`]
/// for `vd > vs`).
///
/// # Examples
///
/// ```
/// use tfet_devices::{NTfet, DeviceModel};
///
/// let t = NTfet::nominal();
/// // Unidirectional: reverse current at moderate bias is orders below
/// // forward current at the same |V|.
/// // (with the gate *inactive*, as an SRAM access device in standby)
/// let fwd = t.ids_per_um(0.8, 0.8, 0.0);
/// let rev = -t.ids_per_um(0.0, -0.4, 0.0);
/// assert!(fwd > 1e3 * rev);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NTfet {
    params: TfetParams,
}

impl NTfet {
    /// Creates an n-TFET with the given parameters.
    pub fn new(params: TfetParams) -> Self {
        NTfet { params }
    }

    /// The paper-calibrated nominal device.
    pub fn nominal() -> Self {
        NTfet::new(TfetParams::nominal())
    }

    /// The parameter record.
    pub fn params(&self) -> &TfetParams {
        &self.params
    }
}

impl DeviceModel for NTfet {
    fn name(&self) -> &str {
        "ntfet"
    }

    fn polarity(&self) -> Polarity {
        Polarity::N
    }

    fn kind(&self) -> DeviceKind {
        DeviceKind::Tfet
    }

    fn ids_per_um(&self, vg: f64, vd: f64, vs: f64) -> f64 {
        let v_gs = vg - vs;
        let v_ds = vd - vs;
        if v_ds >= 0.0 {
            self.params.forward(v_gs, v_ds)
        } else {
            // Reverse bias: the gated term sees the gate relative to the
            // *drain-side* junction now acting as the source of carriers;
            // referencing v_g to the more negative terminal (the drain)
            // keeps the gate influence physical at small reverse bias.
            let v_gd = vg - vd;
            -self.params.reverse(v_gd, -v_ds)
        }
    }

    fn conductances_per_um(&self, vg: f64, vd: f64, vs: f64) -> (f64, f64, f64) {
        let p = &self.params;
        let v_gs = vg - vs;
        let v_ds = vd - vs;
        if v_ds >= 0.0 {
            // Forward branch: I = K(v_ov)·S(v_ds) + g_off·v_ds with
            // v_ov = softplus(v_gs − v_onset + γ·v_ds).
            let u = v_gs - p.v_onset + p.gamma_d * v_ds;
            let v_ov = softplus(u, p.w_onset);
            let sig = softplus_deriv(u, p.w_onset);
            let k = p.kane(v_ov);
            let k_d = p.kane_deriv(v_ov);
            let s_f = p.sat(v_ds);
            let s_d = p.sat_deriv(v_ds);
            let gm = k_d * sig * s_f;
            let gds = k_d * sig * p.gamma_d * s_f + k * s_d + p.g_off;
            (gm, gds, -(gm + gds))
        } else {
            // Reverse branch: I = −F(v_gd, v_r) with v_gd = vg − vd,
            // v_r = vs − vd; F = diode(v_r) + gated(v_gd, v_r) + g_off·v_r.
            let v_gd = vg - vd;
            let v_r = -v_ds;
            let n_vt = p.n_diode * p.v_t();
            let d_r = p.i_s_diode_t() * lim_exp_deriv(v_r / n_vt, 60.0) / n_vt;
            let u = v_gd - p.v_onset + p.gamma_d * v_r;
            let v_ov = softplus(u, p.w_onset);
            let sig = softplus_deriv(u, p.w_onset);
            let k = p.kane(v_ov);
            let k_d = p.kane_deriv(v_ov);
            let s_f = p.sat(v_r);
            let s_d = p.sat_deriv(v_r);
            let q_f = (-v_r / p.v_amb_quench).exp();
            let g = p.r_ambipolar * k * s_f * q_f;
            let g_gd = p.r_ambipolar * k_d * sig * s_f * q_f;
            let g_r = p.r_ambipolar
                * (k_d * sig * p.gamma_d * s_f * q_f + k * s_d * q_f
                    - k * s_f * q_f / p.v_amb_quench);
            debug_assert!(g.is_finite());
            let f_gd = g_gd;
            let f_r = d_r + g_r + p.g_off;
            (-f_gd, f_gd + f_r, -f_r)
        }
    }

    fn caps_per_um(&self, vg: f64, vd: f64, vs: f64) -> Caps {
        let p = &self.params;
        let v_gs = vg - vs;
        let v_ds = vd - vs;
        // Channel-charge formation tracks the same smoothed overdrive as the
        // current: the gate capacitance rises from a fringe floor to the full
        // plate value as the device turns on.
        let v_ov = softplus(v_gs - p.v_onset + p.gamma_d * v_ds.max(0.0), p.w_onset);
        // Quadratic-in-occupancy turn-on keeps the off-state gate load near
        // the fringe floor; only a formed channel pays channel capacitance.
        // The on-state ceiling is ~30 % of the oxide plate value: at this
        // stack's 0.31 nm EOT the series semiconductor (quantum) capacitance
        // dominates C_gg, and the TFET inversion charge is further limited
        // by what the source tunnel junction can supply.
        let occupancy = v_ov / (v_ov + 0.15);
        let c_ch = C_GATE_PER_UM * (0.05 + 0.25 * occupancy * occupancy);
        // TFET Miller skew: in the on-state the inversion charge connects to
        // the drain, so C_gd dominates (opposite of a MOSFET in saturation).
        let cgd = c_ch * p.miller_skew + p.c_overlap;
        let cgs = c_ch * (1.0 - p.miller_skew) + p.c_overlap;
        Caps {
            cgs,
            cgd,
            cdb: p.c_junction,
            csb: p.c_junction,
        }
    }
}

/// The p-type Si tunneling FET (n⁺ source, p⁺ drain): the exact electrical
/// dual of [`NTfet`]. Forward conduction is source→drain and requires a
/// negative gate-source voltage.
///
/// # Examples
///
/// ```
/// use tfet_devices::{PTfet, DeviceModel, Polarity};
///
/// let p = PTfet::nominal();
/// assert_eq!(p.polarity(), Polarity::P);
/// // On at V_SG = V_SD = 0.8 V; current *out of* the drain terminal.
/// assert!(p.ids_per_um(0.0, 0.0, 0.8) < -1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct PTfet {
    dual: DualOf<NTfet>,
}

impl PTfet {
    /// Creates a p-TFET as the dual of an n-TFET parameter set.
    pub fn new(params: TfetParams) -> Self {
        PTfet {
            dual: DualOf::new(NTfet::new(params), "ptfet"),
        }
    }

    /// The paper-calibrated nominal device.
    pub fn nominal() -> Self {
        PTfet::new(TfetParams::nominal())
    }

    /// The underlying n-frame parameter record.
    pub fn params(&self) -> &TfetParams {
        self.dual.inner().params()
    }
}

impl DeviceModel for PTfet {
    fn name(&self) -> &str {
        self.dual.name()
    }
    fn polarity(&self) -> Polarity {
        self.dual.polarity()
    }
    fn kind(&self) -> DeviceKind {
        self.dual.kind()
    }
    fn ids_per_um(&self, vg: f64, vd: f64, vs: f64) -> f64 {
        self.dual.ids_per_um(vg, vd, vs)
    }
    fn caps_per_um(&self, vg: f64, vd: f64, vs: f64) -> Caps {
        self.dual.caps_per_um(vg, vd, vs)
    }
    fn conductances_per_um(&self, vg: f64, vd: f64, vs: f64) -> (f64, f64, f64) {
        self.dual.conductances_per_um(vg, vd, vs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const VDD: f64 = 0.8;

    #[test]
    fn on_and_off_currents_hit_paper_targets_at_1v() {
        let t = NTfet::nominal();
        let i_on = t.ids_per_um(1.0, 1.0, 0.0);
        let i_off = t.ids_per_um(0.0, 1.0, 0.0);
        // Paper: I_on = 1e-4 A/µm, I_off = 1e-17 A/µm (order of magnitude).
        assert!((3e-5..3e-4).contains(&i_on), "I_on = {i_on:e} out of range");
        assert!(
            (3e-18..3e-17).contains(&i_off),
            "I_off = {i_off:e} out of range"
        );
    }

    #[test]
    fn forward_current_increases_with_gate_voltage() {
        let t = NTfet::nominal();
        let mut prev = t.ids_per_um(0.0, VDD, 0.0);
        for i in 1..=20 {
            let vg = i as f64 * 0.05;
            let cur = t.ids_per_um(vg, VDD, 0.0);
            assert!(cur >= prev, "not monotone at vg={vg}");
            prev = cur;
        }
    }

    #[test]
    fn forward_current_increases_with_drain_voltage() {
        let t = NTfet::nominal();
        let mut prev = 0.0;
        for i in 0..=20 {
            let vd = i as f64 * 0.05;
            let cur = t.ids_per_um(VDD, vd, 0.0);
            assert!(cur >= prev, "not monotone at vd={vd}");
            prev = cur;
        }
    }

    #[test]
    fn zero_vds_means_zero_current() {
        let t = NTfet::nominal();
        for vg in [0.0, 0.4, 0.8, 1.2] {
            assert_eq!(t.ids_per_um(vg, 0.0, 0.0), 0.0);
        }
    }

    #[test]
    fn current_is_continuous_through_vds_zero() {
        let t = NTfet::nominal();
        for vg in [0.0, 0.5, 1.0] {
            let below = t.ids_per_um(vg, -1e-9, 0.0);
            let above = t.ids_per_um(vg, 1e-9, 0.0);
            assert!(
                (above - below).abs() < 1e-15,
                "discontinuity at vds=0, vg={vg}"
            );
        }
    }

    #[test]
    fn unidirectional_conduction_at_moderate_bias() {
        // The SRAM-relevant asymmetry: a *standby* (gate-inactive) device
        // must block reverse conduction at moderate bias by many orders,
        // while the same device conducts strongly forward when driven. With
        // the gate active the reverse (ambipolar + p-i-n) branch is
        // substantial — TFETs are not reverse-blocking diodes when driven —
        // but it still cannot *pull* a node past the diode drop the way
        // forward conduction can.
        let t = NTfet::nominal();
        let fwd = t.ids_per_um(VDD, VDD, 0.0);
        let rev_gate_low = -t.ids_per_um(0.0, -0.4, 0.0);
        assert!(rev_gate_low > 0.0);
        assert!(fwd / rev_gate_low > 1e3, "fwd={fwd:e} rev={rev_gate_low:e}");
        // Gate-active reverse conduction exists but stays below forward.
        let rev_gate_high = -t.ids_per_um(VDD, -0.4, 0.0);
        assert!(rev_gate_high < fwd, "rev={rev_gate_high:e} fwd={fwd:e}");
    }

    #[test]
    fn reverse_diode_dominates_at_high_reverse_bias() {
        // Fig. 2b: at |V_DS| = 1 V the current is gate-independent and large.
        let t = NTfet::nominal();
        let i_vg0 = -t.ids_per_um(0.0, -1.0, 0.0);
        let i_vg1 = -t.ids_per_um(1.0, -1.0, 0.0);
        assert!(i_vg0 > 1e-6, "diode current too small: {i_vg0:e}");
        // Gate changes the current by < 2x at full reverse bias.
        assert!(
            i_vg1 / i_vg0 < 2.0,
            "gate retains control: {i_vg1:e}/{i_vg0:e}"
        );
    }

    #[test]
    fn gate_controls_reverse_current_at_low_reverse_bias() {
        // Fig. 2b: at |V_DS| = 0.2 V the gated ambipolar term dominates, so
        // V_GS sweeps the current by orders of magnitude.
        let t = NTfet::nominal();
        let i_vg0 = -t.ids_per_um(0.0, -0.2, 0.0);
        let i_vg1 = -t.ids_per_um(1.2, -0.2, 0.0);
        assert!(
            i_vg1 / i_vg0 > 1e2,
            "gate lost control at low reverse bias: {i_vg1:e}/{i_vg0:e}"
        );
    }

    #[test]
    fn reverse_on_current_much_smaller_than_forward_except_near_1v() {
        let t = NTfet::nominal();
        // At mid reverse bias with the gate inactive, far below forward...
        let fwd_mid = t.ids_per_um(1.0, 0.5, 0.0);
        let rev_mid = -t.ids_per_um(0.0, -0.5, 0.0);
        assert!(fwd_mid / rev_mid > 1e3);
        // ...but at 1 V the diode catches up to within ~an order.
        let fwd_1v = t.ids_per_um(1.0, 1.0, 0.0);
        let rev_1v = -t.ids_per_um(1.0, -1.0, 0.0);
        assert!(fwd_1v / rev_1v < 30.0, "{fwd_1v:e} vs {rev_1v:e}");
    }

    #[test]
    fn currents_stay_finite_at_extreme_voltages() {
        let t = NTfet::nominal();
        for &(vg, vd, vs) in &[
            (10.0, 10.0, 0.0),
            (-10.0, -10.0, 0.0),
            (0.0, 100.0, -100.0),
            (50.0, -50.0, 0.0),
        ] {
            let i = t.ids_per_um(vg, vd, vs);
            assert!(i.is_finite(), "non-finite at ({vg},{vd},{vs})");
        }
    }

    #[test]
    fn ptfet_is_exact_mirror_of_ntfet() {
        let n = NTfet::nominal();
        let p = PTfet::nominal();
        for &(vg, vd, vs) in &[(0.0, 0.0, 0.8), (0.8, 0.4, 0.8), (0.3, 0.9, 0.1)] {
            let i_p = p.ids_per_um(vg, vd, vs);
            let i_n = n.ids_per_um(-vg, -vd, -vs);
            assert!((i_p + i_n).abs() <= 1e-24 + 1e-12 * i_n.abs());
        }
    }

    #[test]
    fn ptfet_conducts_source_to_drain_when_on() {
        let p = PTfet::nominal();
        // Source at VDD, drain low, gate low: V_SG = V_SD = VDD → on, current
        // out of the drain terminal (negative by convention).
        let i = p.ids_per_um(0.0, 0.0, VDD);
        assert!(i < -1e-7, "p-TFET should be strongly on, got {i:e}");
        // Gate at VDD: off.
        let i_off = p.ids_per_um(VDD, 0.0, VDD);
        assert!(i_off.abs() < 1e-15, "p-TFET should be off, got {i_off:e}");
    }

    #[test]
    fn subthreshold_swing_beats_mosfet_limit() {
        // Minimum swing over the decade band around turn-on must be below
        // 60 mV/dec (the paper quotes 52.8 mV/dec experimental and lower in
        // simulation).
        let t = NTfet::nominal();
        let mut min_ss = f64::INFINITY;
        let dv = 0.01;
        let mut vg = 0.1;
        while vg < 0.8 {
            let i1 = t.ids_per_um(vg, 1.0, 0.0);
            let i2 = t.ids_per_um(vg + dv, 1.0, 0.0);
            if i1 > 1e-16 && i2 > i1 {
                let ss = dv / (i2 / i1).log10();
                min_ss = min_ss.min(ss);
            }
            vg += dv;
        }
        assert!(min_ss < 0.060, "min SS = {min_ss} V/dec");
    }

    #[test]
    fn capacitances_are_positive_and_miller_skewed_when_on() {
        let t = NTfet::nominal();
        let c_on = t.caps_per_um(1.0, 0.05, 0.0);
        assert!(c_on.cgs > 0.0 && c_on.cgd > 0.0);
        assert!(
            c_on.cgd > 1.1 * c_on.cgs,
            "on-state cap must be drain-skewed"
        );
        let c_off = t.caps_per_um(0.0, 0.8, 0.0);
        assert!(c_off.gate_total() < c_on.gate_total());
    }

    #[test]
    fn width_normalization_sanity() {
        // Gate cap of a 0.1 µm device should be a fraction of a fF.
        let t = NTfet::nominal();
        let c = t.caps_per_um(0.8, 0.0, 0.0).gate_total() * 0.1;
        assert!(c > 1e-17 && c < 1e-15, "{c:e}");
    }
}
