//! Physical constants and geometry shared by the device models.
//!
//! The geometry matches the paper's device description (§2): 32 nm channel
//! length, 2 nm HfO₂ gate insulator with dielectric constant 25, 2 nm gate
//! underlap, 1e20 cm⁻³ source/drain doping and 1e15 cm⁻³ channel doping.

/// Elementary charge, C.
pub const Q: f64 = 1.602_176_634e-19;

/// Boltzmann constant, J/K.
pub const K_B: f64 = 1.380_649e-23;

/// Vacuum permittivity, F/m.
pub const EPS_0: f64 = 8.854_187_812_8e-12;

/// Simulation temperature, K (room temperature, as in the paper).
pub const TEMPERATURE: f64 = 300.0;

/// Thermal voltage kT/q at [`TEMPERATURE`], V (≈ 25.85 mV).
pub const V_T: f64 = K_B * TEMPERATURE / Q;

/// The theoretical MOSFET subthreshold-swing limit at room temperature,
/// V/decade (the "60 mV/dec" wall the paper's introduction cites).
pub const MOSFET_SS_LIMIT: f64 = 0.059_9;

/// Channel length of both the TFET and the MOSFET baseline, m (32 nm node).
pub const CHANNEL_LENGTH: f64 = 32e-9;

/// Gate insulator (HfO₂) physical thickness, m.
pub const T_OX: f64 = 2e-9;

/// HfO₂ relative dielectric constant used in the paper.
pub const EPS_R_HFO2: f64 = 25.0;

/// Gate-oxide capacitance per unit area, F/m².
pub const C_OX_AREAL: f64 = EPS_0 * EPS_R_HFO2 / T_OX;

/// Gate capacitance per micrometre of width for a 32 nm channel, F/µm.
///
/// `C_ox' · L · (1 µm)` — the plate capacitance of the full gate stack.
pub const C_GATE_PER_UM: f64 = C_OX_AREAL * CHANNEL_LENGTH * 1e-6;

/// Clamped exponential: exact `exp(x)` up to `x_max`, then continued
/// linearly (first-order) so that the function and its first derivative stay
/// finite and continuous.
///
/// Device equations contain `exp(v / V_T)` terms which overflow when a
/// Newton iterate wanders to a few volts; every exponential in this crate
/// goes through this guard (the same trick SPICE's diode limiting serves).
#[inline]
pub fn lim_exp(x: f64, x_max: f64) -> f64 {
    if x <= x_max {
        x.exp()
    } else {
        x_max.exp() * (1.0 + (x - x_max))
    }
}

/// Smooth softplus max(0, x) with transition width `w`:
/// `w · ln(1 + exp(x / w))`.
///
/// Used to clamp effective gate overdrive without introducing a derivative
/// discontinuity that would stall Newton iterations.
#[inline]
pub fn softplus(x: f64, w: f64) -> f64 {
    debug_assert!(w > 0.0);
    let u = x / w;
    if u > 35.0 {
        x // exp(-u) below double precision; identity is exact
    } else if u < -35.0 {
        0.0
    } else {
        w * (1.0 + u.exp()).ln()
    }
}

/// Derivative of [`softplus`] with respect to `x`: the logistic sigmoid
/// `1 / (1 + exp(−x/w))`.
#[inline]
pub fn softplus_deriv(x: f64, w: f64) -> f64 {
    debug_assert!(w > 0.0);
    let u = x / w;
    if u > 35.0 {
        1.0
    } else if u < -35.0 {
        0.0
    } else {
        1.0 / (1.0 + (-u).exp())
    }
}

/// Derivative of [`lim_exp`] with respect to `x`: `exp(min(x, x_max))` —
/// exactly the linear continuation's slope beyond the clamp.
#[inline]
pub fn lim_exp_deriv(x: f64, x_max: f64) -> f64 {
    x.min(x_max).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thermal_voltage_at_room_temperature() {
        assert!((V_T - 0.025852).abs() < 1e-5);
    }

    #[test]
    fn gate_capacitance_is_plate_value() {
        // eps0 * 25 / 2nm * 32nm * 1um ≈ 3.54 fF/µm
        assert!((C_GATE_PER_UM - 3.54e-15).abs() < 0.1e-15);
    }

    #[test]
    fn lim_exp_matches_exp_below_threshold() {
        for x in [-10.0, 0.0, 5.0, 29.9] {
            assert_eq!(lim_exp(x, 30.0), x.exp());
        }
    }

    #[test]
    fn lim_exp_is_linear_and_continuous_above_threshold() {
        let m = 30.0;
        let at = lim_exp(m, m);
        let just_above = lim_exp(m + 1e-9, m);
        assert!((just_above - at) / at < 1e-8);
        // Linear growth: slope equals exp(m).
        let slope = (lim_exp(m + 2.0, m) - lim_exp(m + 1.0, m)) / 1.0;
        assert!((slope - m.exp()).abs() / m.exp() < 1e-12);
        assert!(lim_exp(1000.0, m).is_finite());
    }

    #[test]
    fn softplus_limits() {
        assert_eq!(softplus(-10.0, 0.03), 0.0);
        assert_eq!(softplus(10.0, 0.03), 10.0);
        // At x = 0 the value is w·ln2.
        let w = 0.05;
        assert!((softplus(0.0, w) - w * 2f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn softplus_is_monotone_and_smooth() {
        let w = 0.03;
        let mut prev = softplus(-1.0, w);
        let mut x = -1.0;
        while x < 1.0 {
            x += 0.001;
            let cur = softplus(x, w);
            assert!(cur >= prev);
            prev = cur;
        }
    }
}
