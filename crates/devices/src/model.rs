//! The [`DeviceModel`] trait — the contract between device physics and the
//! circuit simulator.
//!
//! A model answers two questions at a terminal-voltage operating point:
//! what current flows into the drain ([`DeviceModel::ids_per_um`]), and what
//! small-signal capacitances load the terminals
//! ([`DeviceModel::caps_per_um`]). Everything is expressed per micrometre of
//! gate width; the circuit layer multiplies by the transistor's width.

use std::fmt::Debug;
use std::sync::Arc;

/// Channel polarity of a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Polarity {
    /// n-channel: conducts (drain current positive) for positive gate drive.
    N,
    /// p-channel: conducts for negative gate drive.
    P,
}

impl Polarity {
    /// The opposite polarity.
    pub fn flipped(self) -> Polarity {
        match self {
            Polarity::N => Polarity::P,
            Polarity::P => Polarity::N,
        }
    }
}

/// Broad technology class of a device, used for reporting and area models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// Tunneling FET (unidirectional conduction).
    Tfet,
    /// Conventional MOSFET (bidirectional conduction).
    Mosfet,
}

/// Small-signal terminal capacitances at an operating point, F per µm width.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Caps {
    /// Gate–source capacitance.
    pub cgs: f64,
    /// Gate–drain capacitance (the TFET's dominant, Miller-amplified term).
    pub cgd: f64,
    /// Drain–bulk/ground junction capacitance.
    pub cdb: f64,
    /// Source–bulk/ground junction capacitance.
    pub csb: f64,
}

impl Caps {
    /// Total capacitance seen from the gate terminal.
    pub fn gate_total(&self) -> f64 {
        self.cgs + self.cgd
    }
}

/// A compact transistor model evaluated at raw terminal voltages.
///
/// Implementations must be:
///
/// * **finite everywhere** — Newton iterates can visit absurd voltages, and
///   a NaN or infinity kills the solve (see `consts::lim_exp`);
/// * **continuous** in all arguments, ideally C¹, for Newton convergence;
/// * **per-µm normalized** — the circuit layer owns widths.
///
/// The trait is object-safe; the circuit crate stores `Arc<dyn DeviceModel>`.
pub trait DeviceModel: Debug + Send + Sync {
    /// Short human-readable model name (e.g. `"ntfet"`).
    fn name(&self) -> &str;

    /// Channel polarity.
    fn polarity(&self) -> Polarity;

    /// Technology class.
    fn kind(&self) -> DeviceKind;

    /// Conventional current flowing into the drain terminal, A per µm of
    /// width, at gate/drain/source potentials `vg`, `vd`, `vs` (volts,
    /// absolute node potentials).
    fn ids_per_um(&self, vg: f64, vd: f64, vs: f64) -> f64;

    /// Small-signal terminal capacitances at the operating point, F/µm.
    fn caps_per_um(&self, vg: f64, vd: f64, vs: f64) -> Caps;

    /// Transconductance ∂I_D/∂V_G, S/µm (central finite difference).
    ///
    /// Models with cheap analytic derivatives may override.
    fn gm_per_um(&self, vg: f64, vd: f64, vs: f64) -> f64 {
        let h = derivative_step();
        (self.ids_per_um(vg + h, vd, vs) - self.ids_per_um(vg - h, vd, vs)) / (2.0 * h)
    }

    /// Output conductance ∂I_D/∂V_D, S/µm.
    fn gds_per_um(&self, vg: f64, vd: f64, vs: f64) -> f64 {
        let h = derivative_step();
        (self.ids_per_um(vg, vd + h, vs) - self.ids_per_um(vg, vd - h, vs)) / (2.0 * h)
    }

    /// Source conductance ∂I_D/∂V_S, S/µm.
    fn gs_per_um(&self, vg: f64, vd: f64, vs: f64) -> f64 {
        let h = derivative_step();
        (self.ids_per_um(vg, vd, vs + h) - self.ids_per_um(vg, vd, vs - h)) / (2.0 * h)
    }

    /// All three small-signal conductances `(gm, gds, gs)` at once, S/µm —
    /// the quantity the Newton stamp actually needs. The default delegates
    /// to the individual methods (finite differences: 6 extra current
    /// evaluations); the in-tree analytical models override this with exact
    /// closed forms, which is the single largest speedup in the simulator's
    /// inner loop.
    fn conductances_per_um(&self, vg: f64, vd: f64, vs: f64) -> (f64, f64, f64) {
        (
            self.gm_per_um(vg, vd, vs),
            self.gds_per_um(vg, vd, vs),
            self.gs_per_um(vg, vd, vs),
        )
    }
}

/// Finite-difference voltage step used by the default derivative methods.
///
/// 0.5 mV: small against the ~26 mV thermal voltage that sets the sharpest
/// model curvature, large enough to stay clear of floating-point noise on
/// currents down to 1e-18 A.
#[inline]
pub fn derivative_step() -> f64 {
    5e-4
}

/// Blanket implementation so `Arc<dyn DeviceModel>` (and `&M`, `Box<M>`)
/// can be used wherever a model is expected.
impl<M: DeviceModel + ?Sized> DeviceModel for Arc<M> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn polarity(&self) -> Polarity {
        (**self).polarity()
    }
    fn kind(&self) -> DeviceKind {
        (**self).kind()
    }
    fn ids_per_um(&self, vg: f64, vd: f64, vs: f64) -> f64 {
        (**self).ids_per_um(vg, vd, vs)
    }
    fn caps_per_um(&self, vg: f64, vd: f64, vs: f64) -> Caps {
        (**self).caps_per_um(vg, vd, vs)
    }
    fn gm_per_um(&self, vg: f64, vd: f64, vs: f64) -> f64 {
        (**self).gm_per_um(vg, vd, vs)
    }
    fn gds_per_um(&self, vg: f64, vd: f64, vs: f64) -> f64 {
        (**self).gds_per_um(vg, vd, vs)
    }
    fn gs_per_um(&self, vg: f64, vd: f64, vs: f64) -> f64 {
        (**self).gs_per_um(vg, vd, vs)
    }
    fn conductances_per_um(&self, vg: f64, vd: f64, vs: f64) -> (f64, f64, f64) {
        (**self).conductances_per_um(vg, vd, vs)
    }
}

/// The p-type dual of an n-type model: every terminal voltage is negated and
/// the current mirrored. Physically exact for a symmetric technology and the
/// standard way to derive `PTfet`/`Pmos` from their n-type parameter sets.
#[derive(Debug, Clone)]
pub struct DualOf<M> {
    inner: M,
    name: String,
}

impl<M: DeviceModel> DualOf<M> {
    /// Wraps `inner`, exposing it as the opposite-polarity device under
    /// `name`.
    pub fn new(inner: M, name: impl Into<String>) -> Self {
        DualOf {
            inner,
            name: name.into(),
        }
    }

    /// The wrapped n-type model.
    pub fn inner(&self) -> &M {
        &self.inner
    }
}

impl<M: DeviceModel> DeviceModel for DualOf<M> {
    fn name(&self) -> &str {
        &self.name
    }

    fn polarity(&self) -> Polarity {
        self.inner.polarity().flipped()
    }

    fn kind(&self) -> DeviceKind {
        self.inner.kind()
    }

    fn ids_per_um(&self, vg: f64, vd: f64, vs: f64) -> f64 {
        -self.inner.ids_per_um(-vg, -vd, -vs)
    }

    fn caps_per_um(&self, vg: f64, vd: f64, vs: f64) -> Caps {
        // Capacitances are magnitudes; evaluate the mirror point.
        self.inner.caps_per_um(-vg, -vd, -vs)
    }

    fn conductances_per_um(&self, vg: f64, vd: f64, vs: f64) -> (f64, f64, f64) {
        // ids = −inner(−vg, −vd, −vs): the two sign flips cancel, so the
        // conductances are the inner model's at the mirrored point.
        self.inner.conductances_per_um(-vg, -vd, -vs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fake linear device for exercising trait plumbing:
    /// I = g·(vd − vs) + gm·vg.
    #[derive(Debug, Clone)]
    struct LinearDev {
        g: f64,
        gm: f64,
    }

    impl DeviceModel for LinearDev {
        fn name(&self) -> &str {
            "linear"
        }
        fn polarity(&self) -> Polarity {
            Polarity::N
        }
        fn kind(&self) -> DeviceKind {
            DeviceKind::Mosfet
        }
        fn ids_per_um(&self, vg: f64, vd: f64, vs: f64) -> f64 {
            self.g * (vd - vs) + self.gm * vg
        }
        fn caps_per_um(&self, _: f64, _: f64, _: f64) -> Caps {
            Caps {
                cgs: 1e-15,
                cgd: 2e-15,
                ..Caps::default()
            }
        }
    }

    #[test]
    fn finite_difference_derivatives_match_linear_model() {
        let d = LinearDev { g: 1e-3, gm: 2e-3 };
        assert!((d.gm_per_um(0.1, 0.2, 0.0) - 2e-3).abs() < 1e-9);
        assert!((d.gds_per_um(0.1, 0.2, 0.0) - 1e-3).abs() < 1e-9);
        assert!((d.gs_per_um(0.1, 0.2, 0.0) + 1e-3).abs() < 1e-9);
    }

    #[test]
    fn dual_negates_current_and_flips_polarity() {
        let n = LinearDev { g: 1e-3, gm: 0.0 };
        let p = DualOf::new(n.clone(), "linear-p");
        assert_eq!(p.polarity(), Polarity::P);
        // n at (0, +1, 0) conducts +1 mA; p at mirrored bias conducts −1 mA.
        let i_n = n.ids_per_um(0.0, 1.0, 0.0);
        let i_p = p.ids_per_um(0.0, -1.0, 0.0);
        assert!((i_n + i_p).abs() < 1e-18);
        assert_eq!(p.name(), "linear-p");
    }

    #[test]
    fn arc_dyn_model_forwards() {
        let d: Arc<dyn DeviceModel> = Arc::new(LinearDev { g: 1e-3, gm: 0.0 });
        assert_eq!(d.name(), "linear");
        assert!((d.ids_per_um(0.0, 1.0, 0.0) - 1e-3).abs() < 1e-18);
        assert!(d.caps_per_um(0.0, 0.0, 0.0).gate_total() > 0.0);
    }

    #[test]
    fn polarity_flip_is_involutive() {
        assert_eq!(Polarity::N.flipped().flipped(), Polarity::N);
        assert_eq!(Polarity::P.flipped(), Polarity::N);
    }
}
