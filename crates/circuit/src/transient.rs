//! Transient analysis with adaptive, LTE-controlled time stepping.
//!
//! Each step solves the full nonlinear system with Newton–Raphson, replacing
//! every capacitor (explicit and device) by its integration companion model:
//!
//! * **backward Euler** — `i = C/Δt·(v_{n+1} − v_n)`: L-stable, numerically
//!   damped; the default for the digital-style SRAM waveforms where spurious
//!   trapezoidal ringing would pollute noise-margin measurements;
//! * **trapezoidal** — `i = 2C/Δt·(v_{n+1} − v_n) − i_n`: second-order
//!   accurate, available for accuracy cross-checks (the integrator ablation
//!   bench compares both).
//!
//! Two step-control policies are available ([`StepControl`]):
//!
//! * **adaptive** (the default for [`TransientSpec::new`]) — every step is
//!   solved twice, once as a single step of `h` and once as two half steps
//!   with a midpoint re-linearization; the difference between the two
//!   solutions estimates the local truncation error. Steps whose error
//!   exceeds `ltol` are rejected and retried smaller; accepted steps grow
//!   toward `dt_max` on flat stretches. A breakpoint schedule harvested
//!   from every source waveform forces steps to land exactly on pulse
//!   edges, so no edge can be stepped over no matter how large the step
//!   has grown. SRAM metric transients are mostly flat digital plateaus,
//!   so the adaptive engine spends its (3× per-step) solve cost only where
//!   the waveform actually moves and skips nanoseconds of quiescence.
//! * **fixed** ([`TransientSpec::fixed`]) — the uniform grid
//!   `t_k = k·dt`, one solve per step; the reference path for accuracy
//!   regressions and the integrator-ablation bench.
//!
//! Both paths support [`StopEvent`] early exit: once armed, a node-voltage
//! difference crossing ends the run as soon as the outcome it encodes (an
//! SRAM cell committed to a flip, or back to its held state) is decided.
//!
//! Nonlinear device capacitances are re-evaluated at the start of every step
//! and held for the step (standard charge-conserving-enough linearization at
//! the small steps used here).

use crate::dc::{solve_op, NewtonOpts, SolverStrategy};
use crate::error::SimError;
use crate::latency::DeviceLatency;
use crate::mna::{CompanionCaps, Mna};
use crate::netlist::{Circuit, NodeId};
use crate::probe::{SolveStats, TransientResult};
use crate::workspace::{with_workspace, NewtonWorkspace};

/// Integration method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Integrator {
    /// First-order, L-stable backward Euler (default).
    #[default]
    BackwardEuler,
    /// Second-order trapezoidal rule.
    Trapezoidal,
}

/// Default per-step local-truncation-error tolerance, V. 0.5 mV on a
/// sub-volt rail matches the SPICE-conventional `reltol ≈ 1e-3` regime:
/// coarse enough that plateaus run at large steps, fine enough that the
/// paper's millivolt-scale metrics see accumulated errors well below their
/// assertion tolerances (the accuracy regression tests pin this).
const DEFAULT_LTOL: f64 = 5e-4;
/// Default `dt_min` as a fraction of the requested `dt`.
const DT_MIN_FRACTION: f64 = 0.125;
/// Default `dt_max` as a multiple of the requested `dt`.
const DT_MAX_FACTOR: f64 = 64.0;

/// Adaptive step-control parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveOpts {
    /// Smallest step the controller may take, s. A trial at this floor is
    /// accepted regardless of its error estimate (progress guarantee).
    pub dt_min: f64,
    /// Largest step the controller may grow to, s. Bounds how much of a
    /// quiet waveform a single backward-Euler step may smear.
    pub dt_max: f64,
    /// Per-step local-truncation-error tolerance on any node voltage, V.
    pub ltol: f64,
}

/// Time-step policy of a transient run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StepControl {
    /// Uniform grid at `dt`: one Newton solve per step, no error control.
    Fixed,
    /// Step-doubling LTE control within `[dt_min, dt_max]`, with steps
    /// landing exactly on source-waveform breakpoints.
    Adaptive(AdaptiveOpts),
}

/// Transient run controls.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientSpec {
    /// End time, s.
    pub t_stop: f64,
    /// Initial (adaptive) or fixed time step, s. Under adaptive control
    /// this seeds the controller and sets its default bounds
    /// (`dt_min = dt/8`, `dt_max = 64·dt`); under fixed control it is the
    /// uniform grid spacing and must resolve the fastest source edge.
    pub dt: f64,
    /// Integration method.
    pub integrator: Integrator,
    /// Step-control policy.
    pub control: StepControl,
    /// Linear-solve strategy for every Newton solve in the run (seeded from
    /// [`SolverStrategy::default()`], i.e. the process default).
    pub solver: SolverStrategy,
    /// Device-latency mode for every Newton solve in the run: bypass cache
    /// plus (for partitioned circuits) the quiescent-partition dormancy
    /// tier, or the full-evaluation baseline (seeded from
    /// [`DeviceLatency::default()`], i.e. the process default).
    pub latency: DeviceLatency,
}

impl TransientSpec {
    /// A backward-Euler spec with **adaptive** step control seeded at `dt`:
    /// LTE tolerance [`DEFAULT_LTOL` = 0.5 mV], step bounds
    /// `[dt/8, min(64·dt, t_stop)]`, and steps landing exactly on source
    /// edges.
    ///
    /// # Panics
    ///
    /// Panics if either duration is non-positive or `dt > t_stop`.
    pub fn new(t_stop: f64, dt: f64) -> Self {
        assert!(t_stop > 0.0 && dt > 0.0, "durations must be positive");
        assert!(dt <= t_stop, "dt must not exceed t_stop");
        TransientSpec {
            t_stop,
            dt,
            integrator: Integrator::default(),
            control: StepControl::Adaptive(AdaptiveOpts {
                dt_min: dt * DT_MIN_FRACTION,
                dt_max: (dt * DT_MAX_FACTOR).min(t_stop),
                ltol: DEFAULT_LTOL,
            }),
            solver: SolverStrategy::default(),
            latency: DeviceLatency::default(),
        }
    }

    /// A backward-Euler spec on the **fixed** uniform grid `t_k = k·dt` —
    /// the pre-adaptive engine, kept for accuracy references and for
    /// benches that sweep `dt` itself.
    ///
    /// # Panics
    ///
    /// Panics if either duration is non-positive or `dt > t_stop`.
    pub fn fixed(t_stop: f64, dt: f64) -> Self {
        assert!(t_stop > 0.0 && dt > 0.0, "durations must be positive");
        assert!(dt <= t_stop, "dt must not exceed t_stop");
        TransientSpec {
            t_stop,
            dt,
            integrator: Integrator::default(),
            control: StepControl::Fixed,
            solver: SolverStrategy::default(),
            latency: DeviceLatency::default(),
        }
    }

    /// Selects the integration method (builder style).
    pub fn with_integrator(mut self, integrator: Integrator) -> Self {
        self.integrator = integrator;
        self
    }

    /// Selects the linear-solve strategy (builder style). [`SolverStrategy::Dense`]
    /// is the bit-exact legacy cross-check path.
    pub fn with_solver(mut self, solver: SolverStrategy) -> Self {
        self.solver = solver;
        self
    }

    /// Selects the device-latency mode (builder style).
    /// [`DeviceLatency::Off`] is the full-evaluation baseline used to
    /// measure (and cross-check) the dormancy tier; setting it per-spec
    /// avoids racing the process-wide default from concurrent tests.
    pub fn with_device_latency(mut self, latency: DeviceLatency) -> Self {
        self.latency = latency;
        self
    }

    /// Overrides the adaptive LTE tolerance (no-op under fixed control).
    ///
    /// # Panics
    ///
    /// Panics if `ltol` is not positive.
    pub fn with_ltol(mut self, ltol: f64) -> Self {
        assert!(ltol > 0.0, "ltol must be positive");
        if let StepControl::Adaptive(ref mut a) = self.control {
            a.ltol = ltol;
        }
        self
    }

    /// Overrides the adaptive step bounds (no-op under fixed control).
    ///
    /// # Panics
    ///
    /// Panics if `dt_min` is not positive or exceeds `dt_max`.
    pub fn with_step_bounds(mut self, dt_min: f64, dt_max: f64) -> Self {
        assert!(
            dt_min > 0.0 && dt_min <= dt_max,
            "need 0 < dt_min <= dt_max"
        );
        if let StepControl::Adaptive(ref mut a) = self.control {
            a.dt_min = dt_min;
            a.dt_max = dt_max;
        }
        self
    }
}

/// How the transient obtains its initial state.
#[derive(Debug, Clone)]
pub enum InitialState {
    /// Solve the DC operating point at `t = 0`, seeded with voltage hints
    /// (hints pick the basin for bistable circuits).
    DcOp(Vec<(NodeId, f64)>),
    /// Use the given node voltages directly ("use initial conditions"):
    /// capacitors start charged to these values, no DC solve. Unlisted
    /// nodes start at 0 V.
    Uic(Vec<(NodeId, f64)>),
}

/// A condition that ends a transient run early once the outcome it encodes
/// is decided: after `t_arm`, the run stops at the first accepted step where
/// `V(a) − V(b)` exceeds `above` or falls below `below`.
///
/// The canonical use is an SRAM storage-node pair: once the differential has
/// committed past the regeneration threshold (either way), the remaining
/// settle time carries no information and the flip/no-flip verdict is
/// already determined.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StopEvent {
    /// Positive node of the monitored difference.
    pub a: NodeId,
    /// Negative node of the monitored difference.
    pub b: NodeId,
    /// Fire when `V(a) − V(b)` rises above this level, if set.
    pub above: Option<f64>,
    /// Fire when `V(a) − V(b)` falls below this level, if set.
    pub below: Option<f64>,
    /// Ignore the condition before this time, s — events must not trigger
    /// while the stimulus that decides them is still active.
    pub t_arm: f64,
}

impl StopEvent {
    /// Stop once `V(a) − V(b) > level` after `t_arm`.
    pub fn diff_above(a: NodeId, b: NodeId, level: f64, t_arm: f64) -> Self {
        StopEvent {
            a,
            b,
            above: Some(level),
            below: None,
            t_arm,
        }
    }

    /// Stop once `V(a) − V(b) < level` after `t_arm`.
    pub fn diff_below(a: NodeId, b: NodeId, level: f64, t_arm: f64) -> Self {
        StopEvent {
            a,
            b,
            above: None,
            below: Some(level),
            t_arm,
        }
    }

    /// Stop once `|V(a) − V(b)| > margin` after `t_arm` — the "outcome
    /// decided either way" form used for flip/no-flip write transients.
    pub fn decided(a: NodeId, b: NodeId, margin: f64, t_arm: f64) -> Self {
        StopEvent {
            a,
            b,
            above: Some(margin),
            below: Some(-margin),
            t_arm,
        }
    }
}

/// One capacitive branch with its instantaneous capacitance and (for
/// trapezoidal) its branch-current history.
#[derive(Debug, Clone)]
pub(crate) struct CapBranch {
    a: NodeId,
    b: NodeId,
    c: f64,
    i_prev: f64,
}

/// Fills `out` with the companion-model stamps of `branches` for one step
/// of `dt` from the state `x`.
fn build_companions(
    mna: &Mna<'_>,
    x: &[f64],
    branches: &[CapBranch],
    dt: f64,
    use_be: bool,
    out: &mut CompanionCaps,
) {
    out.entries.clear();
    for br in branches {
        let v_ab = mna.voltage_of(x, br.a) - mna.voltage_of(x, br.b);
        let (geq, ieq) = if use_be {
            let geq = br.c / dt;
            (geq, -geq * v_ab)
        } else {
            let geq = 2.0 * br.c / dt;
            (geq, -geq * v_ab - br.i_prev)
        };
        out.entries.push((br.a, br.b, geq, ieq));
    }
    out.touch();
}

/// Re-linearizes capacitances at the post-step state `x` into `out` and
/// derives each branch's current history from the companion stamps that
/// produced `x` (`i = geq·v_ab + ieq`).
fn relinearize(
    circuit: &Circuit,
    mna: &Mna<'_>,
    x: &[f64],
    companions: &CompanionCaps,
    out: &mut Vec<CapBranch>,
) {
    circuit.fill_cap_branches(|n| mna.voltage_of(x, n), out);
    for (nb, comp) in out.iter_mut().zip(&companions.entries) {
        let v_ab_new = mna.voltage_of(x, comp.0) - mna.voltage_of(x, comp.1);
        nb.i_prev = comp.2 * v_ab_new + comp.3;
    }
}

/// Assembles and submits a failure-forensics bundle for a transient that is
/// about to die: last accepted node voltages, device operating points at
/// that state, the residual-norm history of the failing Newton attempt and
/// the recent step-size trace. A no-op (one atomic load) unless tracing is
/// enabled, so the error path costs nothing by default and never masks the
/// original error.
fn capture_failure(
    mna: &Mna<'_>,
    ws: &NewtonWorkspace,
    result: Option<&TransientResult>,
    stage: &str,
    t: f64,
    h: f64,
    err: &SimError,
) {
    if !tfet_obs::enabled() {
        return;
    }
    use tfet_obs::Value;
    tfet_obs::counter("transient.failures", 1);
    let circuit = mna.circuit();
    let mut bundle = tfet_obs::forensics::Bundle::new("transient")
        .text("stage", stage)
        .text("error", err.to_string())
        .num("time", t)
        .num("step", h)
        .floats("residual_history", &ws.bufs.res_history)
        .field(
            "step_trace",
            Value::Arr(
                ws.step_trace
                    .to_vec()
                    .iter()
                    .map(|&(t, h)| Value::Arr(vec![Value::Num(t), Value::Num(h)]))
                    .collect(),
            ),
        );
    if let Some(res) = result {
        let volts: Vec<(String, f64)> = (0..circuit.node_count())
            .map(|i| {
                let node = NodeId(i);
                (circuit.node_name(node).to_string(), res.final_voltage(node))
            })
            .collect();
        bundle = bundle.named_nums("node_voltages", &volts);
        let devices = Value::Arr(
            circuit
                .transistors()
                .iter()
                .map(|m| {
                    let vg = res.final_voltage(m.g);
                    let vd = res.final_voltage(m.d);
                    let vs = res.final_voltage(m.s);
                    Value::Obj(vec![
                        ("name".into(), Value::text(m.name.clone())),
                        ("vg".into(), Value::Num(vg)),
                        ("vd".into(), Value::Num(vd)),
                        ("vs".into(), Value::Num(vs)),
                        ("ids".into(), Value::Num(m.ids(vg, vd, vs))),
                    ])
                })
                .collect(),
        );
        bundle = bundle.field("devices", devices);
    }
    tfet_obs::forensics::submit(&bundle);
}

/// The per-step rescue ladder, tried in order once a transient Newton solve
/// has failed outright (plain Newton *and* the g_min fallback inside
/// [`solve_op`]). Each rung is `(substeps, anchored)`: the failing step is
/// subdivided into that many backward-Euler substeps — the companion
/// conductance `C/Δt` grows with each halving, stiffening the Jacobian
/// diagonal exactly where the solve is struggling — and the final rung
/// additionally forces the anchored g_min continuation from `dc.rs` on every
/// substep, pinned to the last accepted state so a bistable cell cannot be
/// rescued into the wrong basin.
const RESCUE_RUNGS: &[(usize, bool)] = &[(2, false), (4, false), (8, true)];

/// Attempts to recover a failed step `t → t_new` by the [`RESCUE_RUNGS`]
/// ladder, starting every rung from the last accepted state `x_last` and
/// capacitor-branch set `ws.branches`.
///
/// On success the final substep's companion stamps are published into
/// `ws.companions` and the state at `t_new` is returned, so the caller's
/// ordinary accept path (re-linearize against `ws.companions`, record, push)
/// remains correct without modification. On failure the workspace's branch
/// buffers are untouched and `None` is returned — the caller's error path
/// sees exactly the state it would have without the ladder.
///
/// This is a cold path (it only runs when a step has already failed), so the
/// local clones and buffers here are deliberate: the hot path's
/// allocation-free invariant is preserved by never touching the workspace's
/// step scratch until a rung actually succeeds.
#[allow(clippy::too_many_arguments)] // solver-internal
fn rescue_step(
    circuit: &Circuit,
    mna: &Mna<'_>,
    ws: &mut NewtonWorkspace,
    x_last: Vec<f64>,
    t: f64,
    t_new: f64,
    opts: &NewtonOpts,
    stats: &mut SolveStats,
) -> Option<Vec<f64>> {
    let _s_rescue = tfet_obs::span("rescue");
    let branches0 = ws.branches.clone();
    let mut comps = CompanionCaps::default();
    let mut branches: Vec<CapBranch> = Vec::new();
    let mut branches_next: Vec<CapBranch> = Vec::new();
    for &(n_sub, anchored) in RESCUE_RUNGS {
        stats.rescue_attempts += 1;
        if tfet_obs::enabled() {
            tfet_obs::counter("transient.rescue_attempts", 1);
        }
        let h_sub = (t_new - t) / n_sub as f64;
        let mut x = x_last.clone();
        branches.clone_from(&branches0);
        let mut ok = true;
        for k in 1..=n_sub {
            // Land the last substep on t_new exactly (no accumulated
            // floating-point drift into the caller's time axis).
            let t_k = if k == n_sub {
                t_new
            } else {
                t + k as f64 * h_sub
            };
            // Backward Euler regardless of the run's integrator: the rescue
            // restarts from a state whose branch-current history just failed
            // to produce a solution, and BE is the standard L-stable restart
            // after such a discontinuity.
            build_companions(mna, &x, &branches, h_sub, true, &mut comps);
            let attempt = solve_op(
                mna,
                &mut ws.bufs,
                &mut ws.anchor,
                std::mem::take(&mut x),
                t_k,
                Some(&comps),
                opts,
                Some(t_k),
                anchored,
            );
            match attempt {
                Ok(v) => x = v,
                Err(_) => {
                    ok = false;
                    break;
                }
            }
            if k < n_sub {
                relinearize(circuit, mna, &x, &comps, &mut branches_next);
                std::mem::swap(&mut branches, &mut branches_next);
            }
        }
        if ok {
            stats.rescued_steps += 1;
            if tfet_obs::enabled() {
                tfet_obs::counter("transient.rescued_steps", 1);
            }
            std::mem::swap(&mut ws.companions, &mut comps);
            return Some(x);
        }
    }
    None
}

/// Whether any armed stop event fires on the state `x` at time `t`.
fn event_fired(events: &[StopEvent], mna: &Mna<'_>, x: &[f64], t: f64) -> bool {
    events.iter().any(|ev| {
        if t < ev.t_arm {
            return false;
        }
        let d = mna.voltage_of(x, ev.a) - mna.voltage_of(x, ev.b);
        ev.above.is_some_and(|th| d > th) || ev.below.is_some_and(|th| d < th)
    })
}

impl Circuit {
    /// Collects all capacitive branches at the given node voltages into
    /// `out` (cleared first; its capacity is reused across steps): explicit
    /// capacitors plus the four small-signal capacitances of every
    /// transistor (gate–source, gate–drain, drain–bulk, source–bulk, bulk
    /// tied to ground).
    fn fill_cap_branches(&self, volts: impl Fn(NodeId) -> f64, out: &mut Vec<CapBranch>) {
        out.clear();
        out.reserve(self.capacitors.len() + 4 * self.transistors.len());
        for c in &self.capacitors {
            out.push(CapBranch {
                a: c.a,
                b: c.b,
                c: c.farads,
                i_prev: 0.0,
            });
        }
        for m in &self.transistors {
            let caps = m.model.caps_per_um(volts(m.g), volts(m.d), volts(m.s));
            let w = m.width_um;
            for (a, b, c) in [
                (m.g, m.s, caps.cgs * w),
                (m.g, m.d, caps.cgd * w),
                (m.d, Circuit::GND, caps.cdb * w),
                (m.s, Circuit::GND, caps.csb * w),
            ] {
                if a != b && c > 0.0 {
                    out.push(CapBranch {
                        a,
                        b,
                        c,
                        i_prev: 0.0,
                    });
                }
            }
        }
    }

    /// Collects every source waveform's breakpoints in `(min_sep, t_stop)`
    /// into `out`: sorted, deduplicated to `min_sep` spacing. These are the
    /// times the adaptive engine must land on exactly.
    fn fill_breakpoints(&self, t_stop: f64, min_sep: f64, out: &mut Vec<f64>) {
        out.clear();
        for vs in &self.vsources {
            vs.wave.breakpoints_into(out);
        }
        for is in &self.isources {
            is.wave.breakpoints_into(out);
        }
        out.retain(|&t| t > min_sep && t < t_stop - 0.5 * min_sep);
        out.sort_unstable_by(|a, b| a.partial_cmp(b).expect("breakpoint times are finite"));
        out.dedup_by(|a, b| *a - *b < min_sep);
    }

    /// Runs a transient analysis.
    ///
    /// Node voltages for every node are recorded at every accepted step,
    /// starting with the initial state at `t = 0`. Solver scratch comes
    /// from a per-thread [`NewtonWorkspace`] that is reused across calls;
    /// use [`transient_with`](Circuit::transient_with) to supply one
    /// explicitly, or [`transient_events`](Circuit::transient_events) to
    /// add early-exit conditions.
    ///
    /// # Errors
    ///
    /// Propagates DC/Newton failures ([`SimError::NoConvergence`],
    /// [`SimError::SingularMatrix`], [`SimError::InvalidCircuit`]).
    pub fn transient(
        &self,
        spec: &TransientSpec,
        initial: &InitialState,
    ) -> Result<TransientResult, SimError> {
        self.transient_events(spec, initial, &[])
    }

    /// Runs a transient analysis with caller-owned solver scratch.
    ///
    /// Identical to [`transient`](Circuit::transient), but every Jacobian,
    /// residual, LU and companion-model buffer comes from `ws`, so the time
    /// loop performs **no per-step heap allocation** once the workspace is
    /// warm — the waveform store itself is pre-sized for the whole run.
    /// Holding one workspace across many runs (a Monte-Carlo worker's inner
    /// loop) eliminates per-sample allocation churn as well.
    ///
    /// # Errors
    ///
    /// Propagates DC/Newton failures ([`SimError::NoConvergence`],
    /// [`SimError::SingularMatrix`], [`SimError::InvalidCircuit`]).
    pub fn transient_with(
        &self,
        spec: &TransientSpec,
        initial: &InitialState,
        ws: &mut NewtonWorkspace,
    ) -> Result<TransientResult, SimError> {
        let mut result = self.transient_events_with(spec, initial, &[], ws)?;
        result.stats.circuit_builds = 1;
        Ok(result)
    }

    /// Runs a transient analysis that may end early on a [`StopEvent`].
    ///
    /// # Errors
    ///
    /// Propagates DC/Newton failures ([`SimError::NoConvergence`],
    /// [`SimError::SingularMatrix`], [`SimError::InvalidCircuit`]).
    pub fn transient_events(
        &self,
        spec: &TransientSpec,
        initial: &InitialState,
        events: &[StopEvent],
    ) -> Result<TransientResult, SimError> {
        let mut result =
            with_workspace(|ws| self.transient_events_with(spec, initial, events, ws))?;
        result.stats.circuit_builds = 1;
        Ok(result)
    }

    /// The full transient engine: caller-owned scratch plus early-exit
    /// events. All other transient entry points delegate here.
    ///
    /// # Errors
    ///
    /// Propagates DC/Newton failures ([`SimError::NoConvergence`],
    /// [`SimError::SingularMatrix`], [`SimError::InvalidCircuit`]).
    pub fn transient_events_with(
        &self,
        spec: &TransientSpec,
        initial: &InitialState,
        events: &[StopEvent],
        ws: &mut NewtonWorkspace,
    ) -> Result<TransientResult, SimError> {
        let _span = tfet_obs::span("transient");
        let mna = Mna::new(self)?;
        let n_v = mna.voltage_count();
        let opts = NewtonOpts {
            strategy: spec.solver,
            latency: spec.latency,
            ..NewtonOpts::default()
        };
        // Fresh run: device-bypass operating points and retained
        // factorizations from any previous run are stale by definition.
        ws.bufs.invalidate_caches();
        // Partition telemetry covers exactly one run: zero any accumulation
        // left by a previous transient on this workspace. (If the latency
        // state is built lazily later this run, it starts zeroed anyway.)
        if let Some(lat) = ws.bufs.latency.as_mut() {
            lat.reset_telemetry();
        }
        let solves0 = ws.bufs.newton_solves;
        let iters0 = ws.bufs.newton_iters;
        let refac0 = ws.bufs.jac_refactored;
        let reused0 = ws.bufs.jac_reused;
        let evals0 = ws.bufs.device_evals;
        let bypassed0 = ws.bufs.devices_bypassed;
        let analyses0 = ws.bufs.sparse_analyses;
        let ssolves0 = ws.bufs.sparse_solves;
        let dormant0 = ws.bufs.devices_dormant;
        let crefresh0 = ws.bufs.cells_refreshed;
        let grefresh0 = ws.bufs.guard_refreshes;
        ws.step_trace.clear();

        // --- Initial state -------------------------------------------------
        let mut x = match initial {
            InitialState::DcOp(hints) => match self.dc_state_with(&mna, hints, ws, spec.solver) {
                Ok(x) => x,
                Err(e) => {
                    capture_failure(&mna, ws, None, "initial-dc", 0.0, 0.0, &e);
                    return Err(e);
                }
            },
            InitialState::Uic(ics) => {
                // Pin node voltages; derive consistent branch currents by a
                // single Newton solve with enormous companion conductances
                // holding every node at its IC (equivalent to a Δt → 0 step).
                let mut x0 = vec![0.0; mna.unknown_count()];
                for &(node, v) in ics {
                    if !node.is_ground() {
                        x0[node.index() - 1] = v;
                    }
                }
                let mut hold = CompanionCaps::default();
                hold.entries.extend((1..=n_v).map(|i| {
                    let g_hold = 1e3; // siemens: overwhelms any device
                    (NodeId(i), Circuit::GND, g_hold, -g_hold * x0[i - 1])
                }));
                hold.touch();
                match solve_op(
                    &mna,
                    &mut ws.bufs,
                    &mut ws.anchor,
                    x0,
                    0.0,
                    Some(&hold),
                    &opts,
                    Some(0.0),
                    false,
                ) {
                    Ok(x) => x,
                    Err(e) => {
                        capture_failure(&mna, ws, None, "initial-uic", 0.0, 0.0, &e);
                        return Err(e);
                    }
                }
            }
        };

        // Pre-size the waveform store so recording never reallocates
        // mid-run: exact for the fixed grid, an estimate (initial-step
        // count plus breakpoints) for the adaptive path, whose whole point
        // is to take far fewer steps than that.
        let capacity = match spec.control {
            StepControl::Fixed => (spec.t_stop / spec.dt).round() as usize + 1,
            StepControl::Adaptive(a) => {
                self.fill_breakpoints(spec.t_stop, a.dt_min, &mut ws.breakpoints);
                (spec.t_stop / spec.dt).ceil() as usize + 2 * ws.breakpoints.len() + 9
            }
        };
        let mut result = TransientResult::with_capacity(self.node_count(), capacity);
        result.push(0.0, |node| mna.voltage_of(&x, node));

        self.fill_cap_branches(|n| mna.voltage_of(&x, n), &mut ws.branches);

        match spec.control {
            // --- Fixed uniform grid ---------------------------------------
            StepControl::Fixed => {
                let steps = (spec.t_stop / spec.dt).round() as usize;
                for step in 1..=steps {
                    let t_new = step as f64 * spec.dt;
                    // Trapezoidal needs a consistent branch-current history,
                    // which a UIC or DC start does not provide — so the first
                    // step is always backward Euler (the standard SPICE
                    // bootstrap).
                    let use_be = spec.integrator == Integrator::BackwardEuler || step == 1;
                    build_companions(&mna, &x, &ws.branches, spec.dt, use_be, &mut ws.companions);

                    // Newton solve for t_{n+1}, warm-started from t_n.
                    x = match solve_op(
                        &mna,
                        &mut ws.bufs,
                        &mut ws.anchor,
                        x,
                        t_new,
                        Some(&ws.companions),
                        &opts,
                        Some(t_new),
                        false,
                    ) {
                        Ok(v) => v,
                        Err(e) => {
                            ws.step_trace.record(t_new, -spec.dt);
                            // `solve_op` snapshotted the last accepted state
                            // into the anchor buffer before consuming it —
                            // recover it from there and try the rescue
                            // ladder before declaring the run dead.
                            let x_last = ws.anchor.clone();
                            let rescued = rescue_step(
                                self,
                                &mna,
                                ws,
                                x_last,
                                t_new - spec.dt,
                                t_new,
                                &opts,
                                &mut result.stats,
                            );
                            match rescued {
                                Some(v) => v,
                                None => {
                                    capture_failure(
                                        &mna,
                                        ws,
                                        Some(&result),
                                        "fixed-step",
                                        t_new,
                                        spec.dt,
                                        &e,
                                    );
                                    return Err(e);
                                }
                            }
                        }
                    };

                    // Update branch-current history and re-linearize
                    // capacitances at the new operating point
                    // (double-buffered: `branches_next` swaps with
                    // `branches`, reusing both allocations).
                    relinearize(self, &mna, &x, &ws.companions, &mut ws.branches_next);
                    std::mem::swap(&mut ws.branches, &mut ws.branches_next);

                    ws.step_trace.record(t_new, spec.dt);
                    result.push(t_new, |node| mna.voltage_of(&x, node));
                    result.stats.accepted_steps += 1;
                    if event_fired(events, &mna, &x, t_new) {
                        result.stats.early_exit = true;
                        break;
                    }
                }
            }

            // --- Adaptive step-doubling LTE control -----------------------
            StepControl::Adaptive(a) => {
                let mut grown_steps = 0u64;
                let mut newton_shrinks = 0u64;
                let mut t = 0.0;
                let mut h = spec.dt.clamp(a.dt_min, a.dt_max);
                let mut bp_idx = 0;
                let mut first_step = true;
                'time: while t < spec.t_stop {
                    // Skip breakpoints already reached, then clamp the
                    // controller's step so it lands exactly on the next one
                    // (and on t_stop).
                    while bp_idx < ws.breakpoints.len()
                        && ws.breakpoints[bp_idx] <= t + 0.5 * a.dt_min
                    {
                        bp_idx += 1;
                    }
                    let mut t_new = t + h;
                    if let Some(&bp) = ws.breakpoints.get(bp_idx) {
                        if t_new > bp - 0.5 * a.dt_min {
                            t_new = bp;
                        }
                    }
                    if t_new > spec.t_stop - 0.5 * a.dt_min {
                        t_new = spec.t_stop;
                    }
                    let mut h_try = t_new - t;

                    // Trial loop: attempt h_try, shrink on an LTE rejection
                    // or a Newton failure, accept at the floor regardless.
                    loop {
                        let use_be = spec.integrator == Integrator::BackwardEuler || first_step;
                        let t_mid = 0.5 * (t + t_new);
                        let mut trial_err: Option<SimError> = None;
                        let mut lte = f64::INFINITY;

                        // Coarse: one full step t -> t_new.
                        build_companions(&mna, &x, &ws.branches, h_try, use_be, &mut ws.companions);
                        ws.x_coarse.clear();
                        ws.x_coarse.extend_from_slice(&x);
                        match solve_op(
                            &mna,
                            &mut ws.bufs,
                            &mut ws.anchor,
                            std::mem::take(&mut ws.x_coarse),
                            t_new,
                            Some(&ws.companions),
                            &opts,
                            Some(t_new),
                            false,
                        ) {
                            Ok(v) => ws.x_coarse = v,
                            Err(e) => trial_err = Some(e),
                        }

                        // Fine: two half steps with a midpoint
                        // re-linearization of the nonlinear capacitances.
                        if trial_err.is_none() {
                            build_companions(
                                &mna,
                                &x,
                                &ws.branches,
                                0.5 * h_try,
                                use_be,
                                &mut ws.companions,
                            );
                            ws.x_fine.clear();
                            ws.x_fine.extend_from_slice(&x);
                            match solve_op(
                                &mna,
                                &mut ws.bufs,
                                &mut ws.anchor,
                                std::mem::take(&mut ws.x_fine),
                                t_mid,
                                Some(&ws.companions),
                                &opts,
                                Some(t_mid),
                                false,
                            ) {
                                Ok(v) => ws.x_fine = v,
                                Err(e) => trial_err = Some(e),
                            }
                        }
                        if trial_err.is_none() {
                            relinearize(
                                self,
                                &mna,
                                &ws.x_fine,
                                &ws.companions,
                                &mut ws.branches_mid,
                            );
                            build_companions(
                                &mna,
                                &ws.x_fine,
                                &ws.branches_mid,
                                0.5 * h_try,
                                use_be,
                                &mut ws.companions,
                            );
                            match solve_op(
                                &mna,
                                &mut ws.bufs,
                                &mut ws.anchor,
                                std::mem::take(&mut ws.x_fine),
                                t_new,
                                Some(&ws.companions),
                                &opts,
                                Some(t_new),
                                false,
                            ) {
                                Ok(v) => ws.x_fine = v,
                                Err(e) => trial_err = Some(e),
                            }
                        }
                        if trial_err.is_none() {
                            // LTE estimate: largest node-voltage disagreement
                            // between the coarse and fine solutions.
                            lte = ws.x_fine[..n_v]
                                .iter()
                                .zip(&ws.x_coarse[..n_v])
                                .fold(0.0f64, |m, (f, c)| m.max((f - c).abs()));
                        }

                        let at_floor = h_try <= a.dt_min * (1.0 + 1e-9);
                        if trial_err.is_none() && (lte <= a.ltol || at_floor) {
                            // Accept the fine solution (it carries the
                            // midpoint re-linearization).
                            std::mem::swap(&mut x, &mut ws.x_fine);
                            relinearize(self, &mna, &x, &ws.companions, &mut ws.branches_next);
                            std::mem::swap(&mut ws.branches, &mut ws.branches_next);
                            t = t_new;
                            first_step = false;
                            ws.step_trace.record(t, h_try);
                            result.push(t, |node| mna.voltage_of(&x, node));
                            result.stats.accepted_steps += 1;
                            // First-order controller: next step from this
                            // step's error, bounded growth/shrink.
                            let scale = if lte > 0.0 && lte.is_finite() {
                                (0.9 * (a.ltol / lte).sqrt()).clamp(0.2, 2.0)
                            } else {
                                2.0
                            };
                            if scale > 1.0 {
                                grown_steps += 1;
                            }
                            h = (h_try * scale).clamp(a.dt_min, a.dt_max);
                            if event_fired(events, &mna, &x, t) {
                                result.stats.early_exit = true;
                                break 'time;
                            }
                            break;
                        }

                        // Rejected: shrink and retry; at the floor a Newton
                        // failure is fatal (the LTE case was accepted above).
                        result.stats.rejected_steps += 1;
                        ws.step_trace.record(t_new, -h_try);
                        if trial_err.is_some() {
                            newton_shrinks += 1;
                        }
                        if at_floor {
                            let e = trial_err.expect("floor rejection implies Newton failure");
                            // Last resort below the controller's floor: the
                            // rescue ladder subdivides this step further than
                            // `dt_min` allows and, on its final rung, re-runs
                            // the g_min continuation anchored at the last
                            // accepted state.
                            let rescued = rescue_step(
                                self,
                                &mna,
                                ws,
                                x.clone(),
                                t,
                                t_new,
                                &opts,
                                &mut result.stats,
                            );
                            match rescued {
                                Some(v) => {
                                    x = v;
                                    relinearize(
                                        self,
                                        &mna,
                                        &x,
                                        &ws.companions,
                                        &mut ws.branches_next,
                                    );
                                    std::mem::swap(&mut ws.branches, &mut ws.branches_next);
                                    t = t_new;
                                    first_step = false;
                                    ws.step_trace.record(t, h_try);
                                    result.push(t, |node| mna.voltage_of(&x, node));
                                    result.stats.accepted_steps += 1;
                                    // Restart the controller at the floor:
                                    // whatever defeated Newton here is still
                                    // nearby, so re-grow from the bottom.
                                    h = a.dt_min;
                                    if event_fired(events, &mna, &x, t) {
                                        result.stats.early_exit = true;
                                        break 'time;
                                    }
                                    break;
                                }
                                None => {
                                    capture_failure(
                                        &mna,
                                        ws,
                                        Some(&result),
                                        "adaptive-floor",
                                        t_new,
                                        h_try,
                                        &e,
                                    );
                                    return Err(e);
                                }
                            }
                        }
                        let shrink = if trial_err.is_some() {
                            0.25
                        } else {
                            (0.9 * (a.ltol / lte).sqrt()).clamp(0.1, 0.5)
                        };
                        h_try = (h_try * shrink).max(a.dt_min);
                        t_new = t + h_try;
                    }
                }
                if tfet_obs::enabled() {
                    tfet_obs::counter("lte.accepted_steps", result.stats.accepted_steps);
                    tfet_obs::counter("lte.rejected_steps", result.stats.rejected_steps);
                    tfet_obs::counter("lte.grown_steps", grown_steps);
                    tfet_obs::counter("lte.newton_shrinks", newton_shrinks);
                }
            }
        }

        result.stats.newton_solves = ws.bufs.newton_solves - solves0;
        result.stats.newton_iters = ws.bufs.newton_iters - iters0;
        result.stats.jac_refactored = ws.bufs.jac_refactored - refac0;
        result.stats.jac_reused = ws.bufs.jac_reused - reused0;
        result.stats.device_evals = ws.bufs.device_evals - evals0;
        result.stats.devices_bypassed = ws.bufs.devices_bypassed - bypassed0;
        result.stats.devices_dormant = ws.bufs.devices_dormant - dormant0;
        result.stats.cells_refreshed = ws.bufs.cells_refreshed - crefresh0;
        result.stats.guard_refreshes = ws.bufs.guard_refreshes - grefresh0;
        result.stats.runs = 1;
        // Harvest this run's per-partition dormancy telemetry (zeroed at run
        // entry, accumulated serially in the decide phase — identical at any
        // thread count). Empty when the circuit registered no partitions.
        if let Some(lat) = ws.bufs.latency.as_ref() {
            result.partitions.clone_from(&lat.telemetry);
        }
        if tfet_obs::enabled() {
            tfet_obs::counter("transient.runs", 1);
            if result.stats.early_exit {
                tfet_obs::counter("transient.early_exits", 1);
            }
            tfet_obs::counter("newton.jac_refactored", result.stats.jac_refactored);
            tfet_obs::counter("newton.jac_reused", result.stats.jac_reused);
            tfet_obs::counter("devices.evals", result.stats.device_evals);
            tfet_obs::counter("devices.bypassed", result.stats.devices_bypassed);
            if result.stats.devices_dormant > 0 || result.stats.cells_refreshed > 0 {
                // Latency-tier counters only appear for partitioned
                // circuits, keeping unpartitioned reports byte-stable.
                tfet_obs::counter("devices.dormant", result.stats.devices_dormant);
                tfet_obs::counter("latency.cells_refreshed", result.stats.cells_refreshed);
                tfet_obs::counter("latency.guard_refreshes", result.stats.guard_refreshes);
            }
            if spec.solver == SolverStrategy::Sparse {
                // Symbolic analyses are per-worker warm-up (each thread's
                // workspace analyzes once per topology), so they live in the
                // scheduling-dependent `work` section, not `counters`.
                tfet_obs::work(
                    "solver.sparse_analyses",
                    ws.bufs.sparse_analyses - analyses0,
                );
                tfet_obs::counter(
                    "solver.sparse_refactorizations",
                    ws.bufs.jac_refactored - refac0,
                );
                tfet_obs::counter("solver.sparse_solves", ws.bufs.sparse_solves - ssolves0);
            }
        }
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waveform::Waveform;
    use std::sync::Arc;
    use tfet_devices::{NTfet, Nmos, PTfet, Pmos};

    #[test]
    fn rc_charging_matches_analytic() {
        // 1 kΩ · 1 pF = 1 ns time constant, driven by a fast step to 1 V.
        let mut c = Circuit::new();
        let inp = c.node("in");
        let out = c.node("out");
        c.vsource("V", inp, Circuit::GND, Waveform::step(0.0, 1.0, 0.0, 1e-12));
        c.resistor(inp, out, 1e3);
        c.capacitor(out, Circuit::GND, 1e-12);

        let res = c
            .transient(&TransientSpec::new(5e-9, 1e-12), &InitialState::Uic(vec![]))
            .unwrap();
        // After one time constant: 1 − e⁻¹ ≈ 0.632.
        let v_tau = res.voltage_at(out, 1e-9);
        assert!((v_tau - 0.632).abs() < 0.02, "v(τ) = {v_tau}");
        // Fully settled by 5τ.
        assert!((res.final_voltage(out) - 1.0).abs() < 0.01);
    }

    #[test]
    fn adaptive_matches_fixed_reference_on_rc() {
        // Pulse-driven RC: the adaptive engine must track the dense
        // fixed-step reference to half a percent of the 1 V swing
        // everywhere (default ltol = 0.5 mV/step accumulates to a few mV
        // over the fast edges).
        let build = || {
            let mut c = Circuit::new();
            let inp = c.node("in");
            let out = c.node("out");
            c.vsource(
                "V",
                inp,
                Circuit::GND,
                Waveform::pulse(0.0, 1.0, 0.5e-9, 2e-9, 50e-12),
            );
            c.resistor(inp, out, 1e3);
            c.capacitor(out, Circuit::GND, 0.2e-12);
            (c, out)
        };
        let (c_ref, out_ref) = build();
        let reference = c_ref
            .transient(
                &TransientSpec::fixed(4e-9, 0.5e-12),
                &InitialState::Uic(vec![]),
            )
            .unwrap();
        let (c_ad, out_ad) = build();
        let adaptive = c_ad
            .transient(&TransientSpec::new(4e-9, 2e-12), &InitialState::Uic(vec![]))
            .unwrap();

        let mut worst = 0.0f64;
        for k in 0..=400 {
            let t = k as f64 * 1e-11;
            worst = worst
                .max((adaptive.voltage_at(out_ad, t) - reference.voltage_at(out_ref, t)).abs());
        }
        assert!(worst < 5e-3, "max |adaptive − fixed| = {worst:e} V");
        // And it must be doing so with far fewer accepted steps.
        assert!(
            adaptive.stats.accepted_steps * 3 < reference.stats.accepted_steps,
            "adaptive {} vs fixed {} steps",
            adaptive.stats.accepted_steps,
            reference.stats.accepted_steps
        );
    }

    #[test]
    fn adaptive_lands_on_source_edges() {
        let mut c = Circuit::new();
        let inp = c.node("in");
        let out = c.node("out");
        c.vsource(
            "V",
            inp,
            Circuit::GND,
            Waveform::pulse(0.0, 1.0, 1e-9, 1e-9, 100e-12),
        );
        c.resistor(inp, out, 1e3);
        c.capacitor(out, Circuit::GND, 1e-12);
        let res = c
            .transient(
                &TransientSpec::new(4e-9, 10e-12),
                &InitialState::Uic(vec![]),
            )
            .unwrap();
        // The pulse corners must appear as recorded time points exactly.
        for edge in [1e-9, 1.1e-9, 1.9e-9, 2e-9] {
            assert!(
                res.times().iter().any(|&t| (t - edge).abs() < 1e-15),
                "no step lands on edge {edge:e}"
            );
        }
        // The run ends exactly at t_stop.
        assert!((res.times().last().unwrap() - 4e-9).abs() < 1e-15);
    }

    #[test]
    fn stop_event_ends_run_early() {
        let mut c = Circuit::new();
        let inp = c.node("in");
        let out = c.node("out");
        c.vsource("V", inp, Circuit::GND, Waveform::step(0.0, 1.0, 0.0, 1e-12));
        c.resistor(inp, out, 1e3);
        c.capacitor(out, Circuit::GND, 1e-12);
        let events = [StopEvent::diff_above(out, Circuit::GND, 0.5, 0.0)];
        for spec in [
            TransientSpec::new(20e-9, 1e-12),
            TransientSpec::fixed(20e-9, 10e-12),
        ] {
            let res = c
                .transient_events(&spec, &InitialState::Uic(vec![]), &events)
                .unwrap();
            assert!(res.stats.early_exit, "event must fire");
            let t_end = *res.times().last().unwrap();
            // v crosses 0.5 at τ·ln 2 ≈ 0.69 ns; the run must stop shortly
            // after, nowhere near the 20 ns horizon.
            assert!(t_end < 2e-9, "stopped at {t_end:e}");
            assert!(res.final_voltage(out) > 0.5);
        }
    }

    #[test]
    fn stop_event_respects_arming_time() {
        let mut c = Circuit::new();
        let inp = c.node("in");
        let out = c.node("out");
        c.vsource("V", inp, Circuit::GND, Waveform::step(0.0, 1.0, 0.0, 1e-12));
        c.resistor(inp, out, 1e3);
        c.capacitor(out, Circuit::GND, 1e-12);
        let events = [StopEvent::diff_above(out, Circuit::GND, 0.5, 5e-9)];
        let res = c
            .transient_events(
                &TransientSpec::new(20e-9, 1e-12),
                &InitialState::Uic(vec![]),
                &events,
            )
            .unwrap();
        assert!(res.stats.early_exit);
        assert!(
            *res.times().last().unwrap() >= 5e-9,
            "must not fire unarmed"
        );
    }

    #[test]
    fn solver_effort_counters_are_collected() {
        let mut c = Circuit::new();
        let inp = c.node("in");
        let out = c.node("out");
        c.vsource("V", inp, Circuit::GND, Waveform::step(0.0, 1.0, 0.0, 1e-12));
        c.resistor(inp, out, 1e3);
        c.capacitor(out, Circuit::GND, 1e-12);
        let res = c
            .transient(
                &TransientSpec::fixed(1e-9, 10e-12),
                &InitialState::Uic(vec![]),
            )
            .unwrap();
        assert_eq!(res.stats.accepted_steps, 100);
        assert_eq!(res.stats.rejected_steps, 0);
        // One solve per step plus the UIC initial solve (ladder retries
        // would only add more).
        assert!(res.stats.newton_solves >= 101, "{:?}", res.stats);
        assert!(res.stats.newton_iters >= res.stats.newton_solves);
        assert!(!res.stats.early_exit);
    }

    #[test]
    fn trapezoidal_is_more_accurate_than_be_on_rc() {
        let build = || {
            let mut c = Circuit::new();
            let inp = c.node("in");
            let out = c.node("out");
            c.vsource("V", inp, Circuit::GND, Waveform::step(0.0, 1.0, 0.0, 1e-12));
            c.resistor(inp, out, 1e3);
            c.capacitor(out, Circuit::GND, 1e-12);
            (c, out)
        };
        let exact = 1.0 - (-1.0f64).exp();
        // Deliberately coarse *fixed* step to expose the order difference
        // (the adaptive controller would shrink it away).
        let (c, out) = build();
        let be = c
            .transient(
                &TransientSpec::fixed(1e-9, 100e-12),
                &InitialState::Uic(vec![]),
            )
            .unwrap();
        let (c, out2) = build();
        let tr = c
            .transient(
                &TransientSpec::fixed(1e-9, 100e-12).with_integrator(Integrator::Trapezoidal),
                &InitialState::Uic(vec![]),
            )
            .unwrap();
        let err_be = (be.final_voltage(out) - exact).abs();
        let err_tr = (tr.final_voltage(out2) - exact).abs();
        assert!(err_tr < err_be, "trap {err_tr} !< BE {err_be}");
    }

    #[test]
    fn adaptive_trapezoidal_tracks_rc() {
        let mut c = Circuit::new();
        let inp = c.node("in");
        let out = c.node("out");
        c.vsource("V", inp, Circuit::GND, Waveform::step(0.0, 1.0, 0.0, 1e-12));
        c.resistor(inp, out, 1e3);
        c.capacitor(out, Circuit::GND, 1e-12);
        let res = c
            .transient(
                &TransientSpec::new(5e-9, 1e-12).with_integrator(Integrator::Trapezoidal),
                &InitialState::Uic(vec![]),
            )
            .unwrap();
        let v_tau = res.voltage_at(out, 1e-9);
        assert!((v_tau - 0.632).abs() < 0.02, "v(τ) = {v_tau}");
        assert!((res.final_voltage(out) - 1.0).abs() < 0.01);
    }

    #[test]
    fn uic_holds_capacitor_voltage() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.capacitor(a, Circuit::GND, 1e-15);
        c.resistor(a, Circuit::GND, 1e12); // 1 ms discharge: static here
        let res = c
            .transient(
                &TransientSpec::new(1e-9, 1e-11),
                &InitialState::Uic(vec![(a, 0.5)]),
            )
            .unwrap();
        assert!((res.voltage_at(a, 0.0) - 0.5).abs() < 1e-3);
        assert!((res.final_voltage(a) - 0.5).abs() < 1e-3);
    }

    #[test]
    fn cmos_inverter_switches_dynamically() {
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let inp = c.node("in");
        let out = c.node("out");
        c.vsource("VDD", vdd, Circuit::GND, Waveform::dc(0.8));
        c.vsource(
            "VIN",
            inp,
            Circuit::GND,
            Waveform::pulse(0.0, 0.8, 0.2e-9, 1.0e-9, 20e-12),
        );
        c.transistor("MP", Arc::new(Pmos::nominal()), out, inp, vdd, 0.2);
        c.transistor("MN", Arc::new(Nmos::nominal()), out, inp, Circuit::GND, 0.1);
        c.capacitor(out, Circuit::GND, 0.5e-15);

        let res = c
            .transient(
                &TransientSpec::new(2e-9, 2e-12),
                &InitialState::DcOp(vec![]),
            )
            .unwrap();
        // Output starts high (input low)...
        assert!(res.voltage_at(out, 0.1e-9) > 0.75);
        // ...falls when the input pulse arrives...
        assert!(res.voltage_at(out, 1.0e-9) < 0.05);
        // ...and recovers after the pulse.
        assert!(res.final_voltage(out) > 0.75);
        // The fall crossing is measurable.
        let t_fall = res
            .crossing(out, 0.4, false, 0.2e-9)
            .expect("output must cross half-rail");
        assert!(t_fall > 0.2e-9 && t_fall < 0.5e-9, "t_fall = {t_fall:e}");
    }

    #[test]
    fn tfet_inverter_switches_dynamically() {
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let inp = c.node("in");
        let out = c.node("out");
        c.vsource("VDD", vdd, Circuit::GND, Waveform::dc(0.8));
        c.vsource(
            "VIN",
            inp,
            Circuit::GND,
            Waveform::step(0.0, 0.8, 0.2e-9, 20e-12),
        );
        c.transistor("MP", Arc::new(PTfet::nominal()), out, inp, vdd, 0.1);
        c.transistor(
            "MN",
            Arc::new(NTfet::nominal()),
            out,
            inp,
            Circuit::GND,
            0.1,
        );
        c.capacitor(out, Circuit::GND, 0.2e-15);

        let res = c
            .transient(
                &TransientSpec::new(3e-9, 2e-12),
                &InitialState::DcOp(vec![]),
            )
            .unwrap();
        assert!(res.voltage_at(out, 0.1e-9) > 0.75);
        assert!(res.final_voltage(out) < 0.05);
    }

    #[test]
    fn energy_conservation_sanity_rc_discharge() {
        // A charged capacitor discharging through a resistor: the voltage
        // must decay monotonically and stay within [0, v0].
        let mut c = Circuit::new();
        let a = c.node("a");
        c.capacitor(a, Circuit::GND, 1e-12);
        c.resistor(a, Circuit::GND, 1e3);
        let res = c
            .transient(
                &TransientSpec::new(5e-9, 5e-12),
                &InitialState::Uic(vec![(a, 1.0)]),
            )
            .unwrap();
        let trace = res.trace(a);
        for w in trace.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "voltage must decay monotonically");
            assert!(w[1] >= -1e-9);
        }
        let v_tau = res.voltage_at(a, 1e-9);
        assert!((v_tau - (-1.0f64).exp()).abs() < 0.02);
    }

    /// A linear drain–source conductance whose reported derivatives have
    /// the wrong sign: the residual is honest, the Jacobian lies. Newton
    /// then converges only where something else dominates the diagonal —
    /// the companion conductance `C/Δt` or a large g_min rung — which makes
    /// the failure *step-size dependent*: exactly the regime the rescue
    /// ladder exists for. With `C/Δt = c` the iteration contracts iff
    /// `(g + c)/(c − g) < 2`, i.e. `c > 3g`, so the failing step size is
    /// chosen to sit below that threshold and the subdivided rescue substeps
    /// above it.
    #[derive(Debug)]
    struct WrongJacobianDev {
        g: f64,
    }

    impl tfet_devices::model::DeviceModel for WrongJacobianDev {
        fn name(&self) -> &str {
            "wrong-jacobian"
        }
        fn polarity(&self) -> tfet_devices::model::Polarity {
            tfet_devices::model::Polarity::N
        }
        fn kind(&self) -> tfet_devices::model::DeviceKind {
            tfet_devices::model::DeviceKind::Mosfet
        }
        fn ids_per_um(&self, _vg: f64, vd: f64, vs: f64) -> f64 {
            self.g * (vd - vs)
        }
        fn caps_per_um(&self, _vg: f64, _vd: f64, _vs: f64) -> tfet_devices::model::Caps {
            tfet_devices::model::Caps::default()
        }
        fn conductances_per_um(&self, _vg: f64, _vd: f64, _vs: f64) -> (f64, f64, f64) {
            // True values are (0, +g, −g); report the d/s pair negated.
            (0.0, -self.g, self.g)
        }
    }

    /// 1 pF discharging through a 1 mS wrong-Jacobian device: τ = 1 ns.
    fn sabotaged_rc() -> (Circuit, NodeId) {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.capacitor(a, Circuit::GND, 1e-12);
        c.transistor(
            "M",
            Arc::new(WrongJacobianDev { g: 1e-3 }),
            a,
            Circuit::GND,
            Circuit::GND,
            1.0,
        );
        (c, a)
    }

    #[test]
    fn rescue_ladder_salvages_wrong_jacobian_fixed_steps() {
        // dt = 0.8 ns puts C/Δt at 1.25g — divergent. The 2× rung stays
        // divergent (2.5g), the 4× rung contracts (5g > 3g), so every step
        // of the run must be rescued on the second rung. The arithmetic
        // assumes a fresh factorization every iteration, so pin the dense
        // strategy; sparse-mode escalation is covered by
        // tests/modified_newton.rs.
        let (c, a) = sabotaged_rc();
        let res = c
            .transient(
                &TransientSpec::fixed(4e-9, 0.8e-9).with_solver(SolverStrategy::Dense),
                &InitialState::Uic(vec![(a, 1.0)]),
            )
            .unwrap();
        assert_eq!(res.stats.accepted_steps, 5);
        assert_eq!(res.stats.rescued_steps, 5, "{:?}", res.stats);
        assert_eq!(res.stats.rescue_attempts, 10, "{:?}", res.stats);
        // The rescued run is still the physical RC discharge.
        assert!(res.voltage_at(a, 0.0) > 0.99);
        assert!(res.final_voltage(a) < 0.1, "v = {}", res.final_voltage(a));
        let v_tau = res.voltage_at(a, 1e-9);
        assert!((v_tau - (-1.0f64).exp()).abs() < 0.08, "v(τ) = {v_tau}");
    }

    #[test]
    fn rescue_ladder_salvages_adaptive_floor_failure() {
        // Pin the controller's floor at the divergent step size: every
        // trial fails at the floor and only the rescue ladder (which may
        // subdivide below dt_min) can make progress.
        let (c, a) = sabotaged_rc();
        let spec = TransientSpec::new(4e-9, 0.8e-9)
            .with_step_bounds(0.8e-9, 1.6e-9)
            .with_solver(SolverStrategy::Dense);
        let res = c
            .transient(&spec, &InitialState::Uic(vec![(a, 1.0)]))
            .unwrap();
        assert!(res.stats.rescued_steps >= 1, "{:?}", res.stats);
        assert!(res.stats.rejected_steps >= res.stats.rescued_steps);
        assert!(res.final_voltage(a) < 0.1, "v = {}", res.final_voltage(a));
    }

    #[test]
    fn unrescuable_step_failure_still_errors() {
        // dt = 4 ns: even the deepest rung (8 substeps, anchored g_min)
        // leaves C/Δt at 2g < 3g — nothing on the ladder contracts, so the
        // original error must surface unchanged.
        let (c, a) = sabotaged_rc();
        let err = c
            .transient(
                &TransientSpec::fixed(8e-9, 4e-9).with_solver(SolverStrategy::Dense),
                &InitialState::Uic(vec![(a, 1.0)]),
            )
            .unwrap_err();
        assert!(
            matches!(err, SimError::NoConvergence { .. }),
            "unexpected error: {err:?}"
        );
    }

    #[test]
    fn healthy_runs_never_touch_the_rescue_ladder() {
        let mut c = Circuit::new();
        let inp = c.node("in");
        let out = c.node("out");
        c.vsource("V", inp, Circuit::GND, Waveform::step(0.0, 1.0, 0.0, 1e-12));
        c.resistor(inp, out, 1e3);
        c.capacitor(out, Circuit::GND, 1e-12);
        for spec in [
            TransientSpec::new(5e-9, 1e-12),
            TransientSpec::fixed(5e-9, 10e-12),
        ] {
            let res = c.transient(&spec, &InitialState::Uic(vec![])).unwrap();
            assert_eq!(res.stats.rescue_attempts, 0);
            assert_eq!(res.stats.rescued_steps, 0);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dt_rejected() {
        TransientSpec::new(1e-9, 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dt_rejected_fixed() {
        TransientSpec::fixed(1e-9, 0.0);
    }
}
