//! Fixed-step transient analysis.
//!
//! Each step solves the full nonlinear system with Newton–Raphson, replacing
//! every capacitor (explicit and device) by its integration companion model:
//!
//! * **backward Euler** — `i = C/Δt·(v_{n+1} − v_n)`: L-stable, numerically
//!   damped; the default for the digital-style SRAM waveforms where spurious
//!   trapezoidal ringing would pollute noise-margin measurements;
//! * **trapezoidal** — `i = 2C/Δt·(v_{n+1} − v_n) − i_n`: second-order
//!   accurate, available for accuracy cross-checks (the integrator ablation
//!   bench compares both).
//!
//! Nonlinear device capacitances are re-evaluated at the start of every step
//! and held for the step (standard charge-conserving-enough linearization at
//! the small steps used here).

use crate::dc::{solve_op, NewtonOpts};
use crate::error::SimError;
use crate::mna::{CompanionCaps, Mna};
use crate::netlist::{Circuit, NodeId};
use crate::probe::TransientResult;
use crate::workspace::{with_workspace, NewtonWorkspace};

/// Integration method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Integrator {
    /// First-order, L-stable backward Euler (default).
    #[default]
    BackwardEuler,
    /// Second-order trapezoidal rule.
    Trapezoidal,
}

/// Transient run controls.
#[derive(Debug, Clone, Copy)]
pub struct TransientSpec {
    /// End time, s.
    pub t_stop: f64,
    /// Fixed time step, s. Must resolve the fastest source edge.
    pub dt: f64,
    /// Integration method.
    pub integrator: Integrator,
}

impl TransientSpec {
    /// A backward-Euler spec with the given stop time and step.
    ///
    /// # Panics
    ///
    /// Panics if either duration is non-positive or `dt > t_stop`.
    pub fn new(t_stop: f64, dt: f64) -> Self {
        assert!(t_stop > 0.0 && dt > 0.0, "durations must be positive");
        assert!(dt <= t_stop, "dt must not exceed t_stop");
        TransientSpec {
            t_stop,
            dt,
            integrator: Integrator::default(),
        }
    }

    /// Selects the integration method (builder style).
    pub fn with_integrator(mut self, integrator: Integrator) -> Self {
        self.integrator = integrator;
        self
    }
}

/// How the transient obtains its initial state.
#[derive(Debug, Clone)]
pub enum InitialState {
    /// Solve the DC operating point at `t = 0`, seeded with voltage hints
    /// (hints pick the basin for bistable circuits).
    DcOp(Vec<(NodeId, f64)>),
    /// Use the given node voltages directly ("use initial conditions"):
    /// capacitors start charged to these values, no DC solve. Unlisted
    /// nodes start at 0 V.
    Uic(Vec<(NodeId, f64)>),
}

/// One capacitive branch with its instantaneous capacitance and (for
/// trapezoidal) its branch-current history.
#[derive(Debug, Clone)]
pub(crate) struct CapBranch {
    a: NodeId,
    b: NodeId,
    c: f64,
    i_prev: f64,
}

impl Circuit {
    /// Collects all capacitive branches at the given node voltages into
    /// `out` (cleared first; its capacity is reused across steps): explicit
    /// capacitors plus the four small-signal capacitances of every
    /// transistor (gate–source, gate–drain, drain–bulk, source–bulk, bulk
    /// tied to ground).
    fn fill_cap_branches(&self, volts: impl Fn(NodeId) -> f64, out: &mut Vec<CapBranch>) {
        out.clear();
        out.reserve(self.capacitors.len() + 4 * self.transistors.len());
        for c in &self.capacitors {
            out.push(CapBranch {
                a: c.a,
                b: c.b,
                c: c.farads,
                i_prev: 0.0,
            });
        }
        for m in &self.transistors {
            let caps = m.model.caps_per_um(volts(m.g), volts(m.d), volts(m.s));
            let w = m.width_um;
            for (a, b, c) in [
                (m.g, m.s, caps.cgs * w),
                (m.g, m.d, caps.cgd * w),
                (m.d, Circuit::GND, caps.cdb * w),
                (m.s, Circuit::GND, caps.csb * w),
            ] {
                if a != b && c > 0.0 {
                    out.push(CapBranch {
                        a,
                        b,
                        c,
                        i_prev: 0.0,
                    });
                }
            }
        }
    }

    /// Runs a transient analysis.
    ///
    /// Node voltages for every node are recorded at every step, starting
    /// with the initial state at `t = 0`. Solver scratch comes from a
    /// per-thread [`NewtonWorkspace`] that is reused across calls; use
    /// [`transient_with`](Circuit::transient_with) to supply one
    /// explicitly.
    ///
    /// # Errors
    ///
    /// Propagates DC/Newton failures ([`SimError::NoConvergence`],
    /// [`SimError::SingularMatrix`], [`SimError::InvalidCircuit`]).
    pub fn transient(
        &self,
        spec: &TransientSpec,
        initial: &InitialState,
    ) -> Result<TransientResult, SimError> {
        with_workspace(|ws| self.transient_with(spec, initial, ws))
    }

    /// Runs a transient analysis with caller-owned solver scratch.
    ///
    /// Identical to [`transient`](Circuit::transient), but every Jacobian,
    /// residual, LU and companion-model buffer comes from `ws`, so the time
    /// loop performs **no per-step heap allocation** once the workspace is
    /// warm — the waveform store itself is pre-sized for the whole run.
    /// Holding one workspace across many runs (a Monte-Carlo worker's inner
    /// loop) eliminates per-sample allocation churn as well.
    ///
    /// # Errors
    ///
    /// Propagates DC/Newton failures ([`SimError::NoConvergence`],
    /// [`SimError::SingularMatrix`], [`SimError::InvalidCircuit`]).
    pub fn transient_with(
        &self,
        spec: &TransientSpec,
        initial: &InitialState,
        ws: &mut NewtonWorkspace,
    ) -> Result<TransientResult, SimError> {
        let mna = Mna::new(self)?;
        let n_v = mna.voltage_count();
        let opts = NewtonOpts::default();

        // --- Initial state -------------------------------------------------
        let mut x = match initial {
            InitialState::DcOp(hints) => self.dc_state_with(&mna, hints, ws)?,
            InitialState::Uic(ics) => {
                // Pin node voltages; derive consistent branch currents by a
                // single Newton solve with enormous companion conductances
                // holding every node at its IC (equivalent to a Δt → 0 step).
                let mut x0 = vec![0.0; mna.unknown_count()];
                for &(node, v) in ics {
                    if !node.is_ground() {
                        x0[node.index() - 1] = v;
                    }
                }
                let hold = CompanionCaps {
                    entries: (1..=n_v)
                        .map(|i| {
                            let g_hold = 1e3; // siemens: overwhelms any device
                            (NodeId(i), Circuit::GND, g_hold, -g_hold * x0[i - 1])
                        })
                        .collect(),
                };
                solve_op(
                    &mna,
                    &mut ws.bufs,
                    &mut ws.anchor,
                    x0,
                    0.0,
                    Some(&hold),
                    &opts,
                    Some(0.0),
                    false,
                )?
            }
        };

        let steps = (spec.t_stop / spec.dt).round() as usize;
        // Pre-sized for every step: recording never reallocates mid-run.
        let mut result = TransientResult::with_capacity(self.node_count(), steps + 1);
        result.push(0.0, |node| mna.voltage_of(&x, node));

        // --- Time stepping --------------------------------------------------
        self.fill_cap_branches(|n| mna.voltage_of(&x, n), &mut ws.branches);
        for step in 1..=steps {
            let t_new = step as f64 * spec.dt;

            // Companion models from the state at t_n.
            ws.companions.entries.clear();
            // Trapezoidal needs a consistent branch-current history, which a
            // UIC or DC start does not provide — so the first step is always
            // backward Euler (the standard SPICE bootstrap).
            let use_be = spec.integrator == Integrator::BackwardEuler || step == 1;
            for br in &ws.branches {
                let v_ab = mna.voltage_of(&x, br.a) - mna.voltage_of(&x, br.b);
                let (geq, ieq) = if use_be {
                    let geq = br.c / spec.dt;
                    (geq, -geq * v_ab)
                } else {
                    let geq = 2.0 * br.c / spec.dt;
                    (geq, -geq * v_ab - br.i_prev)
                };
                ws.companions.entries.push((br.a, br.b, geq, ieq));
            }

            // Newton solve for t_{n+1}, warm-started from t_n.
            x = solve_op(
                &mna,
                &mut ws.bufs,
                &mut ws.anchor,
                x,
                t_new,
                Some(&ws.companions),
                &opts,
                Some(t_new),
                false,
            )?;

            // Update branch-current history and re-linearize capacitances at
            // the new operating point (double-buffered: `branches_next`
            // swaps with `branches`, reusing both allocations).
            self.fill_cap_branches(|n| mna.voltage_of(&x, n), &mut ws.branches_next);
            for (nb, comp) in ws.branches_next.iter_mut().zip(&ws.companions.entries) {
                let v_ab_new = mna.voltage_of(&x, comp.0) - mna.voltage_of(&x, comp.1);
                nb.i_prev = comp.2 * v_ab_new + comp.3;
            }
            std::mem::swap(&mut ws.branches, &mut ws.branches_next);

            result.push(t_new, |node| mna.voltage_of(&x, node));
        }
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waveform::Waveform;
    use std::sync::Arc;
    use tfet_devices::{NTfet, Nmos, PTfet, Pmos};

    #[test]
    fn rc_charging_matches_analytic() {
        // 1 kΩ · 1 pF = 1 ns time constant, driven by a fast step to 1 V.
        let mut c = Circuit::new();
        let inp = c.node("in");
        let out = c.node("out");
        c.vsource("V", inp, Circuit::GND, Waveform::step(0.0, 1.0, 0.0, 1e-12));
        c.resistor(inp, out, 1e3);
        c.capacitor(out, Circuit::GND, 1e-12);

        let res = c
            .transient(&TransientSpec::new(5e-9, 1e-12), &InitialState::Uic(vec![]))
            .unwrap();
        // After one time constant: 1 − e⁻¹ ≈ 0.632.
        let v_tau = res.voltage_at(out, 1e-9);
        assert!((v_tau - 0.632).abs() < 0.02, "v(τ) = {v_tau}");
        // Fully settled by 5τ.
        assert!((res.final_voltage(out) - 1.0).abs() < 0.01);
    }

    #[test]
    fn trapezoidal_is_more_accurate_than_be_on_rc() {
        let build = || {
            let mut c = Circuit::new();
            let inp = c.node("in");
            let out = c.node("out");
            c.vsource("V", inp, Circuit::GND, Waveform::step(0.0, 1.0, 0.0, 1e-12));
            c.resistor(inp, out, 1e3);
            c.capacitor(out, Circuit::GND, 1e-12);
            (c, out)
        };
        let exact = 1.0 - (-1.0f64).exp();
        // Deliberately coarse step to expose the order difference.
        let (c, out) = build();
        let be = c
            .transient(
                &TransientSpec::new(1e-9, 100e-12),
                &InitialState::Uic(vec![]),
            )
            .unwrap();
        let (c, out2) = build();
        let tr = c
            .transient(
                &TransientSpec::new(1e-9, 100e-12).with_integrator(Integrator::Trapezoidal),
                &InitialState::Uic(vec![]),
            )
            .unwrap();
        let err_be = (be.final_voltage(out) - exact).abs();
        let err_tr = (tr.final_voltage(out2) - exact).abs();
        assert!(err_tr < err_be, "trap {err_tr} !< BE {err_be}");
    }

    #[test]
    fn uic_holds_capacitor_voltage() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.capacitor(a, Circuit::GND, 1e-15);
        c.resistor(a, Circuit::GND, 1e12); // 1 ms discharge: static here
        let res = c
            .transient(
                &TransientSpec::new(1e-9, 1e-11),
                &InitialState::Uic(vec![(a, 0.5)]),
            )
            .unwrap();
        assert!((res.voltage_at(a, 0.0) - 0.5).abs() < 1e-3);
        assert!((res.final_voltage(a) - 0.5).abs() < 1e-3);
    }

    #[test]
    fn cmos_inverter_switches_dynamically() {
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let inp = c.node("in");
        let out = c.node("out");
        c.vsource("VDD", vdd, Circuit::GND, Waveform::dc(0.8));
        c.vsource(
            "VIN",
            inp,
            Circuit::GND,
            Waveform::pulse(0.0, 0.8, 0.2e-9, 1.0e-9, 20e-12),
        );
        c.transistor("MP", Arc::new(Pmos::nominal()), out, inp, vdd, 0.2);
        c.transistor("MN", Arc::new(Nmos::nominal()), out, inp, Circuit::GND, 0.1);
        c.capacitor(out, Circuit::GND, 0.5e-15);

        let res = c
            .transient(
                &TransientSpec::new(2e-9, 2e-12),
                &InitialState::DcOp(vec![]),
            )
            .unwrap();
        // Output starts high (input low)...
        assert!(res.voltage_at(out, 0.1e-9) > 0.75);
        // ...falls when the input pulse arrives...
        assert!(res.voltage_at(out, 1.0e-9) < 0.05);
        // ...and recovers after the pulse.
        assert!(res.final_voltage(out) > 0.75);
        // The fall crossing is measurable.
        let t_fall = res
            .crossing(out, 0.4, false, 0.2e-9)
            .expect("output must cross half-rail");
        assert!(t_fall > 0.2e-9 && t_fall < 0.5e-9, "t_fall = {t_fall:e}");
    }

    #[test]
    fn tfet_inverter_switches_dynamically() {
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let inp = c.node("in");
        let out = c.node("out");
        c.vsource("VDD", vdd, Circuit::GND, Waveform::dc(0.8));
        c.vsource(
            "VIN",
            inp,
            Circuit::GND,
            Waveform::step(0.0, 0.8, 0.2e-9, 20e-12),
        );
        c.transistor("MP", Arc::new(PTfet::nominal()), out, inp, vdd, 0.1);
        c.transistor(
            "MN",
            Arc::new(NTfet::nominal()),
            out,
            inp,
            Circuit::GND,
            0.1,
        );
        c.capacitor(out, Circuit::GND, 0.2e-15);

        let res = c
            .transient(
                &TransientSpec::new(3e-9, 2e-12),
                &InitialState::DcOp(vec![]),
            )
            .unwrap();
        assert!(res.voltage_at(out, 0.1e-9) > 0.75);
        assert!(res.final_voltage(out) < 0.05);
    }

    #[test]
    fn energy_conservation_sanity_rc_discharge() {
        // A charged capacitor discharging through a resistor: the voltage
        // must decay monotonically and stay within [0, v0].
        let mut c = Circuit::new();
        let a = c.node("a");
        c.capacitor(a, Circuit::GND, 1e-12);
        c.resistor(a, Circuit::GND, 1e3);
        let res = c
            .transient(
                &TransientSpec::new(5e-9, 5e-12),
                &InitialState::Uic(vec![(a, 1.0)]),
            )
            .unwrap();
        let trace = res.trace(a);
        for w in trace.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "voltage must decay monotonically");
            assert!(w[1] >= -1e-9);
        }
        let v_tau = res.voltage_at(a, 1e-9);
        assert!((v_tau - (-1.0f64).exp()).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dt_rejected() {
        TransientSpec::new(1e-9, 0.0);
    }
}
