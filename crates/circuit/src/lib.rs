//! A small SPICE-class circuit simulator.
//!
//! The reproduced paper runs its SRAM experiments in a commercial SPICE
//! against a Verilog-A lookup-table device model. No SPICE engine exists in
//! the Rust ecosystem, so this crate implements the required subset from
//! scratch:
//!
//! * [`netlist`] — circuit construction: named nodes, resistors, capacitors,
//!   independent voltage/current sources with time-dependent waveforms, and
//!   three-terminal transistors bound to any
//!   [`tfet_devices::model::DeviceModel`];
//! * [`waveform`] — DC, piecewise-linear, and pulse stimuli;
//! * [`mna`] — modified nodal analysis assembly (Jacobian + residual stamps);
//! * [`dc`] — Newton–Raphson operating point with g_min stepping and
//!   per-iteration voltage-step limiting (the damping that tames the
//!   exponential TFET reverse diode);
//! * [`transient`] — backward-Euler or trapezoidal integration with a full
//!   Newton solve per step and nonlinear device capacitances re-linearized
//!   each step; adaptive step-doubling LTE control with a source-edge
//!   breakpoint schedule by default, a fixed uniform grid on request, and
//!   event-driven early exit ([`transient::StopEvent`]);
//! * [`probe`] — waveform post-processing: crossings, extrema, and the
//!   minimum-node-difference measurement behind the paper's DRNM metric;
//! * [`workspace`] — reusable Newton/LU/companion buffers
//!   ([`NewtonWorkspace`]) so repeated solves (sweeps, Monte-Carlo workers)
//!   run allocation-free after warm-up;
//! * [`compiled`] — the build-once/bind/run layer: a [`CompiledCircuit`]
//!   freezes topology and MNA pattern, typed binds swap stimuli and device
//!   models in place, and repeated runs reuse one owned workspace. Every
//!   run reports build/bind/run counters through [`SolveStats`].
//!
//! The default linear-solve path ([`SolverStrategy::Sparse`]) assembles the
//! Jacobian into a sparsity pattern frozen at compile time and factorizes it
//! with an analyze-once/refactorize-many sparse LU, layering modified-Newton
//! factorization reuse and device-evaluation bypass on top. The legacy dense
//! path ([`SolverStrategy::Dense`]) is retained byte-for-byte as a
//! cross-check: figure outputs must be bit-identical under either strategy
//! at default tolerances.
//!
//! For array-scale netlists the [`latency`] module adds a third tier:
//! circuits may register [`CellPartition`]s (one per bitcell), and the
//! sparse transient solver then skips assembly for whole cells whose
//! terminal nodes sit within tolerance of their last refresh point, with a
//! tight guard on shared wordline/bitline nodes force-refreshing a dormant
//! cell the moment an adjacent line moves. Large evaluation batches fan out
//! across threads deterministically (stamps merge serially in netlist
//! order), and [`DeviceLatency::Off`] provides the full-evaluation baseline
//! the identity gates diff against.
//!
//! # Examples
//!
//! A resistive divider:
//!
//! ```
//! use tfet_circuit::{Circuit, Waveform};
//!
//! let mut c = Circuit::new();
//! let vin = c.node("in");
//! let out = c.node("out");
//! c.vsource("V1", vin, Circuit::GND, Waveform::dc(1.0));
//! c.resistor(vin, out, 1e3);
//! c.resistor(out, Circuit::GND, 3e3);
//! let op = c.dc_op()?;
//! assert!((op.voltage(out) - 0.75).abs() < 1e-9);
//! # Ok::<(), tfet_circuit::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compiled;
pub mod dc;
pub mod error;
pub mod latency;
pub mod mna;
pub mod netlist;
pub mod probe;
pub mod spice;
pub mod transient;
pub mod waveform;
pub mod workspace;

pub use compiled::{CompiledCircuit, ParamHandle};
pub use dc::{DcResult, NewtonOpts, SolverStrategy};
pub use error::SimError;
pub use latency::{
    set_assembly_threads, CellPartition, DeviceLatency, GuardKind, PartitionTelemetry,
};
pub use netlist::{Circuit, NodeId, SourceId};
pub use probe::{SolveStats, TransientResult};
pub use spice::{DcSweep, Deck, DeckAnalysis, DeckRun, Subckt, SubcktCard};
pub use transient::{AdaptiveOpts, Integrator, StepControl, StopEvent, TransientSpec};
pub use waveform::Waveform;
pub use workspace::NewtonWorkspace;
