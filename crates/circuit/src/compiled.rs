//! Compiled circuits: build once, bind parameters, re-run.
//!
//! Every experiment in the SRAM pipeline — a WL_crit bisection, a
//! Monte-Carlo sample, an array operation — re-runs the *same topology*
//! with only stimulus waveforms or device bindings changed. Rebuilding the
//! netlist for each run re-interns every node, re-validates the MNA
//! pattern, and re-instantiates every device evaluator, all to arrive at a
//! structurally identical system.
//!
//! [`CompiledCircuit`] splits that work into three stages:
//!
//! 1. **compile** — [`CompiledCircuit::compile`] freezes a [`Circuit`]:
//!    node ordering, element storage order (which fixes the float summation
//!    order of the MNA stamps, and therefore bit-exact reproducibility) and
//!    the MNA sparsity pattern are validated once and never change again.
//! 2. **bind** — [`bind_wave`](CompiledCircuit::bind_wave) swaps a source
//!    stimulus behind a typed [`ParamHandle`], and
//!    [`bind_device`](CompiledCircuit::bind_device) swaps a transistor's
//!    model/width in place. Binds never add or remove elements, so the
//!    sparsity pattern and unknown ordering survive every rebind.
//! 3. **run** — [`run`](CompiledCircuit::run) executes the transient engine
//!    against the frozen form with the owned, reusable [`NewtonWorkspace`],
//!    so repeated runs perform no solver-scratch allocation.
//!
//! Because a run's numbers depend only on the circuit *state* (topology +
//! current bindings) and never on how that state was reached, re-running a
//! bound compiled circuit is bit-identical to a fresh build per call — the
//! determinism regression suite pins this.
//!
//! The savings are observable, not asserted: every [`TransientResult`]
//! reports `circuit_builds`, `param_binds` and `runs` in its
//! [`SolveStats`], and the counters aggregate under
//! `absorb`, so a seeded sweep can prove it compiled once and ran many
//! times.

use crate::dc::{DcResult, SolverStrategy};
use crate::error::SimError;
use crate::mna::Mna;
use crate::netlist::{Circuit, SourceId};
use crate::probe::{SolveStats, TransientResult};
use crate::transient::{InitialState, StopEvent, TransientSpec};
use crate::waveform::Waveform;
use crate::workspace::NewtonWorkspace;
use std::sync::Arc;
use tfet_devices::model::DeviceModel;

/// Typed handle to one bindable stimulus of a [`CompiledCircuit`].
///
/// Obtained from [`CompiledCircuit::param`]; passing it to
/// [`CompiledCircuit::bind_wave`] swaps the waveform of exactly the source
/// it was created for. Handles are plain indices into the frozen source
/// table, so they stay valid for the lifetime of the compiled circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamHandle {
    source: SourceId,
}

/// A circuit frozen for repeated execution: topology, node ordering and
/// MNA pattern fixed at compile time; stimuli and device bindings mutable
/// through typed binds; runs executed against an owned reusable
/// [`NewtonWorkspace`].
///
/// See the [module docs](self) for the compile/bind/run architecture.
#[derive(Debug)]
pub struct CompiledCircuit {
    circuit: Circuit,
    ws: NewtonWorkspace,
    /// Builds not yet attributed to a run (1 after compile, 0 after the
    /// first run reports it).
    pending_builds: u64,
    /// Binds applied since the last run, attributed to the next run.
    pending_binds: u64,
    /// Cumulative stats across every successful run of this compiled
    /// circuit (see [`lifetime_stats`](CompiledCircuit::lifetime_stats)).
    lifetime: SolveStats,
}

impl CompiledCircuit {
    /// Compiles a circuit: validates the netlist and MNA pattern once and
    /// freezes the topology. Counts one `circuit_builds` toward the first
    /// subsequent [`run`](CompiledCircuit::run).
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidCircuit`] for structurally bad netlists (no
    /// elements, no non-ground nodes).
    pub fn compile(circuit: Circuit) -> Result<Self, SimError> {
        let mut ws = NewtonWorkspace::new();
        {
            // Freeze the Jacobian sparsity pattern now: binds never change
            // topology, so every subsequent sparse run reuses this pattern
            // (and, after the first factorization, its symbolic analysis).
            let mna = Mna::new(&circuit)?;
            ws.bufs.ensure_sparse(&mna);
        }
        tfet_obs::work("compiled.compiles", 1);
        Ok(CompiledCircuit {
            circuit,
            ws,
            pending_builds: 1,
            pending_binds: 0,
            lifetime: SolveStats::default(),
        })
    }

    /// The frozen netlist (read-only; mutation goes through binds).
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// A typed handle to the stimulus of the given source.
    ///
    /// # Panics
    ///
    /// Panics if the source id does not belong to this circuit.
    pub fn param(&self, source: SourceId) -> ParamHandle {
        assert!(
            source.0 < self.circuit.vsource_count(),
            "stale source id for compiled circuit"
        );
        ParamHandle { source }
    }

    /// Binds a new stimulus waveform to a parameter — pulse widths, assist
    /// levels, drive targets. Never changes the sparsity pattern.
    pub fn bind_wave(&mut self, param: ParamHandle, wave: Waveform) {
        self.circuit.set_vsource_wave(param.source, wave);
        self.pending_binds += 1;
    }

    /// Binds a device model and gate width to the transistor at `index`
    /// (netlist insertion order) — how Monte-Carlo variation samples and β
    /// re-sizings reach a compiled cell. Terminals stay frozen, so the
    /// sparsity pattern is unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range or `width_um <= 0`.
    pub fn bind_device(&mut self, index: usize, model: Arc<dyn DeviceModel>, width_um: f64) {
        self.circuit.set_transistor_device(index, model, width_um);
        // The cached linearization (and any retained factorization) was
        // computed with the old model/width.
        self.ws.bufs.invalidate_caches();
        self.pending_binds += 1;
    }

    /// Runs the transient engine against the compiled form using the owned
    /// workspace. The result's [`SolveStats`] carry the
    /// compile (first run only) and the binds applied since the previous
    /// run, so aggregated stats expose the build/bind/run ratio.
    ///
    /// # Errors
    ///
    /// Propagates DC/Newton failures ([`SimError::NoConvergence`],
    /// [`SimError::SingularMatrix`]).
    pub fn run(
        &mut self,
        spec: &TransientSpec,
        initial: &InitialState,
        events: &[StopEvent],
    ) -> Result<TransientResult, SimError> {
        let mut result = self
            .circuit
            .transient_events_with(spec, initial, events, &mut self.ws)?;
        result.stats.circuit_builds = std::mem::take(&mut self.pending_builds);
        result.stats.param_binds = std::mem::take(&mut self.pending_binds);
        self.lifetime.absorb(&result.stats);
        if tfet_obs::enabled() {
            tfet_obs::counter("compiled.runs", 1);
            // Builds and binds are attributed per compiled instance; under a
            // thread-pool each worker compiles its own copy (fewer binds,
            // more builds), so both are scheduling-dependent `work` metrics,
            // not counters.
            tfet_obs::work("compiled.binds", result.stats.param_binds);
            tfet_obs::work("compiled.builds", result.stats.circuit_builds);
        }
        Ok(result)
    }

    /// Cumulative [`SolveStats`] across every successful
    /// [`run`](CompiledCircuit::run) of this compiled circuit.
    ///
    /// Where a result's [`TransientResult::stats`] are **per-run**
    /// (snapshot-differenced around that run alone), this accessor is the
    /// **lifetime** view: each run's per-run stats absorbed in order. Use it
    /// to prove a sweep compiled once and ran many times without collecting
    /// every intermediate result.
    pub fn lifetime_stats(&self) -> &SolveStats {
        &self.lifetime
    }

    /// Solves the DC operating point of the compiled form from voltage
    /// hints (the hints select the basin for bistable circuits), reusing
    /// the owned workspace. Build/bind counters stay pending for the next
    /// transient run — DC results carry no stats.
    ///
    /// # Errors
    ///
    /// Propagates Newton failures ([`SimError::NoConvergence`],
    /// [`SimError::SingularMatrix`]).
    pub fn dc_op(&mut self, guess: &[(crate::NodeId, f64)]) -> Result<DcResult, SimError> {
        tfet_obs::counter("compiled.dc_ops", 1);
        let mna = Mna::new(&self.circuit)?;
        let x = self
            .circuit
            .dc_state_with(&mna, guess, &mut self.ws, SolverStrategy::default())?;
        Ok(DcResult {
            x,
            n_v: mna.voltage_count(),
            source_volts: self
                .circuit
                .vsources
                .iter()
                .map(|v| v.wave.initial())
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::NodeId;
    use tfet_devices::NTfet;

    fn rc(level: f64) -> (Circuit, SourceId, NodeId) {
        let mut c = Circuit::new();
        let inp = c.node("in");
        let out = c.node("out");
        let v = c.vsource(
            "V",
            inp,
            Circuit::GND,
            Waveform::step(0.0, level, 0.0, 1e-12),
        );
        c.resistor(inp, out, 1e3);
        c.capacitor(out, Circuit::GND, 1e-12);
        (c, v, out)
    }

    #[test]
    fn rebind_and_rerun_matches_fresh_builds() {
        let spec = TransientSpec::new(3e-9, 2e-12);
        let initial = InitialState::Uic(vec![]);
        let (c, v, out) = rc(1.0);
        let mut compiled = CompiledCircuit::compile(c).unwrap();
        let h = compiled.param(v);

        for level in [1.0, 0.5, 1.0, 0.25] {
            compiled.bind_wave(h, Waveform::step(0.0, level, 0.0, 1e-12));
            let reused = compiled.run(&spec, &initial, &[]).unwrap();
            let (fresh_c, _, fresh_out) = rc(level);
            let fresh = fresh_c.transient(&spec, &initial).unwrap();
            assert_eq!(reused.times(), fresh.times(), "level {level}");
            assert_eq!(reused.trace(out), fresh.trace(fresh_out), "level {level}");
        }
    }

    #[test]
    fn build_bind_run_counters() {
        let spec = TransientSpec::new(1e-9, 2e-12);
        let initial = InitialState::Uic(vec![]);
        let (c, v, _) = rc(1.0);
        let mut compiled = CompiledCircuit::compile(c).unwrap();
        let h = compiled.param(v);

        let first = compiled.run(&spec, &initial, &[]).unwrap();
        assert_eq!(first.stats.circuit_builds, 1, "compile counted once");
        assert_eq!(first.stats.param_binds, 0);
        assert_eq!(first.stats.runs, 1);

        compiled.bind_wave(h, Waveform::step(0.0, 0.5, 0.0, 1e-12));
        compiled.bind_wave(h, Waveform::step(0.0, 0.7, 0.0, 1e-12));
        let second = compiled.run(&spec, &initial, &[]).unwrap();
        assert_eq!(second.stats.circuit_builds, 0, "no rebuild on re-run");
        assert_eq!(second.stats.param_binds, 2);
        assert_eq!(second.stats.runs, 1);

        // The plain convenience path reports rebuild-per-run.
        let (c2, _, _) = rc(1.0);
        let plain = c2.transient(&spec, &initial).unwrap();
        assert_eq!(plain.stats.circuit_builds, 1);
        assert_eq!(plain.stats.runs, 1);

        // Aggregation: 1 build, 2 binds, 3 runs across the compiled pair +
        // plain run.
        let mut total = first.stats;
        total.absorb(&second.stats);
        assert_eq!(
            (total.circuit_builds, total.param_binds, total.runs),
            (1, 2, 2)
        );
    }

    #[test]
    fn lifetime_stats_accumulate_while_results_stay_per_run() {
        let spec = TransientSpec::new(1e-9, 2e-12);
        let initial = InitialState::Uic(vec![]);
        let (c, v, _) = rc(1.0);
        let mut compiled = CompiledCircuit::compile(c).unwrap();
        let h = compiled.param(v);

        let first = compiled.run(&spec, &initial, &[]).unwrap();
        compiled.bind_wave(h, Waveform::step(0.0, 0.5, 0.0, 1e-12));
        let second = compiled.run(&spec, &initial, &[]).unwrap();

        // Each result is per-run: the second run's counters must not
        // include the first run's effort.
        assert_eq!(second.stats.runs, 1);
        assert!(
            second.stats.newton_solves < first.stats.newton_solves + second.stats.newton_solves
        );

        // The lifetime view is exactly the absorbed sum of the per-run
        // views.
        let mut expected = first.stats;
        expected.absorb(&second.stats);
        assert_eq!(*compiled.lifetime_stats(), expected);
        assert_eq!(compiled.lifetime_stats().runs, 2);
        assert_eq!(compiled.lifetime_stats().circuit_builds, 1);
        assert_eq!(compiled.lifetime_stats().param_binds, 1);
    }

    #[test]
    fn bind_device_swaps_model_in_place() {
        let mut c = Circuit::new();
        let d = c.node("d");
        let g = c.node("g");
        c.vsource("VD", d, Circuit::GND, Waveform::dc(0.8));
        c.vsource("VG", g, Circuit::GND, Waveform::dc(0.8));
        c.transistor("M", Arc::new(NTfet::nominal()), d, g, Circuit::GND, 0.1);
        let mut compiled = CompiledCircuit::compile(c).unwrap();
        compiled.bind_device(0, Arc::new(NTfet::nominal()), 0.2);
        assert_eq!(compiled.circuit().transistors()[0].width_um, 0.2);
        let op = compiled.dc_op(&[]).unwrap();
        assert!(op.total_power() > 0.0);
    }

    #[test]
    fn compile_rejects_empty_circuit() {
        assert!(CompiledCircuit::compile(Circuit::new()).is_err());
    }

    #[test]
    #[should_panic(expected = "stale source id")]
    fn stale_param_handle_rejected() {
        let (c, _, _) = rc(1.0);
        let compiled = CompiledCircuit::compile(c).unwrap();
        compiled.param(SourceId(99));
    }
}
