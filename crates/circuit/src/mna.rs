//! Modified nodal analysis: Jacobian and residual assembly.
//!
//! The unknown vector is `x = [v_1 … v_{N-1}, i_1 … i_M]`: the voltages of
//! every non-ground node followed by the branch currents of the `M`
//! independent voltage sources. The nonlinear system `f(x) = 0` collects a
//! KCL residual (sum of currents *leaving* the node) per node and a
//! branch-voltage constraint per source; [`Mna::assemble`] evaluates `f` and
//! its Jacobian at a candidate `x` so Newton–Raphson can iterate.

use crate::error::SimError;
use crate::netlist::{Circuit, NodeId};
use tfet_numerics::Matrix;

/// Linearized (companion-model) capacitor contributions for one transient
/// step: for each entry, a conductance `geq` between `a` and `b` plus a
/// constant current `ieq` flowing a→b, such that the branch current is
/// `i_ab = geq · (v_a − v_b) + ieq`.
///
/// The transient integrator builds these each step (backward Euler:
/// `geq = C/Δt`, `ieq = −geq·v_ab(t_n)`; trapezoidal: `geq = 2C/Δt`,
/// `ieq = −geq·v_ab(t_n) − i_ab(t_n)`).
#[derive(Debug, Clone, Default)]
pub struct CompanionCaps {
    /// `(a, b, geq, ieq)` per capacitor branch.
    pub entries: Vec<(NodeId, NodeId, f64, f64)>,
}

/// Assembled view of a circuit, ready for repeated Jacobian/residual
/// evaluation.
#[derive(Debug)]
pub struct Mna<'c> {
    circuit: &'c Circuit,
    /// Non-ground node count (voltage unknowns).
    n_v: usize,
    /// Total unknowns (`n_v` + voltage-source branch currents).
    n_x: usize,
}

impl<'c> Mna<'c> {
    /// Prepares the circuit for analysis.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidCircuit`] if the circuit has no elements
    /// or no non-ground nodes.
    pub fn new(circuit: &'c Circuit) -> Result<Self, SimError> {
        if circuit.element_count() == 0 {
            return Err(SimError::InvalidCircuit("circuit has no elements".into()));
        }
        let n_v = circuit.node_count() - 1;
        if n_v == 0 {
            return Err(SimError::InvalidCircuit(
                "circuit has no non-ground nodes".into(),
            ));
        }
        let n_x = n_v + circuit.vsource_count();
        Ok(Mna { circuit, n_v, n_x })
    }

    /// Number of unknowns.
    pub fn unknown_count(&self) -> usize {
        self.n_x
    }

    /// Number of voltage unknowns (non-ground nodes).
    pub fn voltage_count(&self) -> usize {
        self.n_v
    }

    /// The circuit under analysis.
    pub fn circuit(&self) -> &Circuit {
        self.circuit
    }

    /// Voltage of `node` in the unknown vector (0 for ground).
    #[inline]
    pub fn voltage_of(&self, x: &[f64], node: NodeId) -> f64 {
        if node.is_ground() {
            0.0
        } else {
            x[node.index() - 1]
        }
    }

    /// Row/column of a node's KCL equation, if it has one (ground doesn't).
    #[inline]
    fn row(&self, node: NodeId) -> Option<usize> {
        if node.is_ground() {
            None
        } else {
            Some(node.index() - 1)
        }
    }

    /// Unknown index of voltage source `k`'s branch current.
    #[inline]
    pub fn branch_index(&self, k: usize) -> usize {
        self.n_v + k
    }

    /// Adds `g` between nodes `a` and `b` into the Jacobian (standard
    /// two-terminal conductance stamp).
    fn stamp_conductance(&self, j: &mut Matrix, a: NodeId, b: NodeId, g: f64) {
        if let Some(ra) = self.row(a) {
            j.add(ra, ra, g);
            if let Some(rb) = self.row(b) {
                j.add(ra, rb, -g);
            }
        }
        if let Some(rb) = self.row(b) {
            j.add(rb, rb, g);
            if let Some(ra) = self.row(a) {
                j.add(rb, ra, -g);
            }
        }
    }

    /// Adds a current `i` flowing a→b into the residual.
    fn stamp_current(&self, f: &mut [f64], a: NodeId, b: NodeId, i: f64) {
        if let Some(ra) = self.row(a) {
            f[ra] += i;
        }
        if let Some(rb) = self.row(b) {
            f[rb] -= i;
        }
    }

    /// Evaluates the residual `f(x)` and Jacobian `J(x)` at time `t`.
    ///
    /// * `gmin` — convergence-aid conductance from every node toward its
    ///   anchor voltage (0 for the final, physical solve);
    /// * `anchor` — the voltages the g_min conductances pull toward. `None`
    ///   pulls toward ground; passing the solver's initial guess makes the
    ///   g_min ladder *basin-preserving* for bistable circuits (an SRAM
    ///   relaxed toward ground would forget which state it was asked to
    ///   hold and drift to the metastable point);
    /// * `caps` — companion-model capacitor branches for transient steps
    ///   (`None` for DC: capacitors are open circuits).
    ///
    /// `j` must be `n_x × n_x` and `f` of length `n_x`; both are cleared.
    ///
    /// # Panics
    ///
    /// Panics if `x`, `f`, `j` or `anchor` have the wrong dimensions.
    #[allow(clippy::too_many_arguments)] // solver-internal hot path; a config struct would obscure the MNA math
    pub fn assemble(
        &self,
        x: &[f64],
        t: f64,
        gmin: f64,
        anchor: Option<&[f64]>,
        caps: Option<&CompanionCaps>,
        j: &mut Matrix,
        f: &mut [f64],
    ) {
        assert_eq!(x.len(), self.n_x, "state vector length");
        assert_eq!(f.len(), self.n_x, "residual length");
        assert_eq!(j.rows(), self.n_x, "jacobian rows");
        j.clear();
        f.fill(0.0);

        // Resistors.
        for r in &self.circuit.resistors {
            let g = 1.0 / r.ohms;
            let i = g * (self.voltage_of(x, r.a) - self.voltage_of(x, r.b));
            self.stamp_conductance(j, r.a, r.b, g);
            self.stamp_current(f, r.a, r.b, i);
        }

        // Companion capacitors (transient only).
        if let Some(caps) = caps {
            for &(a, b, geq, ieq) in &caps.entries {
                let i = geq * (self.voltage_of(x, a) - self.voltage_of(x, b)) + ieq;
                self.stamp_conductance(j, a, b, geq);
                self.stamp_current(f, a, b, i);
            }
        }

        // Current sources.
        for s in &self.circuit.isources {
            self.stamp_current(f, s.from, s.to, s.wave.value(t));
        }

        // Transistors: nonlinear three-terminal stamps.
        for m in &self.circuit.transistors {
            let vg = self.voltage_of(x, m.g);
            let vd = self.voltage_of(x, m.d);
            let vs = self.voltage_of(x, m.s);
            let w = m.width_um;
            let i = w * m.model.ids_per_um(vg, vd, vs);
            let (gm_u, gds_u, gs_u) = m.model.conductances_per_um(vg, vd, vs);
            let (gm, gds, gss) = (w * gm_u, w * gds_u, w * gs_u);

            // Current i enters the drain terminal and leaves the source
            // terminal; the gate carries no DC current.
            self.stamp_current(f, m.d, m.s, i);
            if let Some(rd) = self.row(m.d) {
                if let Some(c) = self.row(m.g) {
                    j.add(rd, c, gm);
                }
                j.add(rd, rd, gds);
                if let Some(c) = self.row(m.s) {
                    j.add(rd, c, gss);
                }
            }
            if let Some(rs) = self.row(m.s) {
                if let Some(c) = self.row(m.g) {
                    j.add(rs, c, -gm);
                }
                if let Some(c) = self.row(m.d) {
                    j.add(rs, c, -gds);
                }
                j.add(rs, rs, -gss);
            }
        }

        // Voltage sources: branch current unknowns + branch equations.
        for (k, v) in self.circuit.vsources.iter().enumerate() {
            let bi = self.branch_index(k);
            let i_br = x[bi];
            // KCL: branch current leaves `plus`, enters `minus`.
            if let Some(rp) = self.row(v.plus) {
                f[rp] += i_br;
                j.add(rp, bi, 1.0);
            }
            if let Some(rm) = self.row(v.minus) {
                f[rm] -= i_br;
                j.add(rm, bi, -1.0);
            }
            // Branch equation: v_plus − v_minus = V(t).
            f[bi] = self.voltage_of(x, v.plus) - self.voltage_of(x, v.minus) - v.wave.value(t);
            if let Some(rp) = self.row(v.plus) {
                j.add(bi, rp, 1.0);
            }
            if let Some(rm) = self.row(v.minus) {
                j.add(bi, rm, -1.0);
            }
        }

        // g_min convergence aid: a conductance from every node toward its
        // anchor (ground when no anchor is given).
        if gmin > 0.0 {
            if let Some(anchor) = anchor {
                assert!(anchor.len() >= self.n_v, "anchor length");
            }
            for n in 0..self.n_v {
                j.add(n, n, gmin);
                let target = anchor.map_or(0.0, |a| a[n]);
                f[n] += gmin * (x[n] - target);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waveform::Waveform;

    #[test]
    fn divider_residual_is_zero_at_solution() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.vsource("V", a, Circuit::GND, Waveform::dc(1.0));
        c.resistor(a, b, 1e3);
        c.resistor(b, Circuit::GND, 1e3);
        let mna = Mna::new(&c).unwrap();
        assert_eq!(mna.unknown_count(), 3); // a, b, branch

        // Known solution: v_a = 1, v_b = 0.5, i_br = −0.5 mA.
        let x = vec![1.0, 0.5, -0.5e-3];
        let mut j = Matrix::zeros(3, 3);
        let mut f = vec![0.0; 3];
        mna.assemble(&x, 0.0, 0.0, None, None, &mut j, &mut f);
        for (k, r) in f.iter().enumerate() {
            assert!(r.abs() < 1e-12, "residual {k} = {r:e}");
        }
    }

    #[test]
    fn jacobian_matches_finite_difference_of_residual() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.vsource("V", a, Circuit::GND, Waveform::dc(0.8));
        c.resistor(a, b, 2e3);
        c.resistor(b, Circuit::GND, 5e3);
        let mna = Mna::new(&c).unwrap();
        let n = mna.unknown_count();
        let x = vec![0.7, 0.3, 1e-4];
        let mut j = Matrix::zeros(n, n);
        let mut f0 = vec![0.0; n];
        mna.assemble(&x, 0.0, 0.0, None, None, &mut j, &mut f0);

        let h = 1e-7;
        for col in 0..n {
            let mut xp = x.clone();
            xp[col] += h;
            let mut jp = Matrix::zeros(n, n);
            let mut fp = vec![0.0; n];
            mna.assemble(&xp, 0.0, 0.0, None, None, &mut jp, &mut fp);
            for row in 0..n {
                let fd = (fp[row] - f0[row]) / h;
                assert!(
                    (j[(row, col)] - fd).abs() < 1e-4 * j[(row, col)].abs().max(1.0),
                    "J[{row}][{col}] = {} vs FD {fd}",
                    j[(row, col)]
                );
            }
        }
    }

    #[test]
    fn empty_circuit_rejected() {
        let c = Circuit::new();
        assert!(matches!(Mna::new(&c), Err(SimError::InvalidCircuit(_))));
    }

    #[test]
    fn gmin_adds_diagonal_conductance() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.isource(Circuit::GND, a, Waveform::dc(1e-6));
        let mna = Mna::new(&c).unwrap();
        let mut j = Matrix::zeros(1, 1);
        let mut f = vec![0.0];
        // With gmin = 1e-3 and v_a = 1 mV, the node balances: 1 µA in,
        // 1 µA out through gmin.
        mna.assemble(&[1e-3], 0.0, 1e-3, None, None, &mut j, &mut f);
        assert!((f[0]).abs() < 1e-15);
        assert!((j[(0, 0)] - 1e-3).abs() < 1e-18);
    }

    #[test]
    fn companion_caps_stamp_like_conductances() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.resistor(a, Circuit::GND, 1e3);
        let mna = Mna::new(&c).unwrap();
        let caps = CompanionCaps {
            entries: vec![(a, Circuit::GND, 1e-3, -0.5e-3)],
        };
        let mut j = Matrix::zeros(1, 1);
        let mut f = vec![0.0];
        // v_a such that resistor + companion currents cancel:
        // v/1e3 + 1e-3·v − 0.5e-3 = 0 → v = 0.25.
        mna.assemble(&[0.25], 0.0, 0.0, None, Some(&caps), &mut j, &mut f);
        assert!(f[0].abs() < 1e-15, "f = {:e}", f[0]);
        assert!((j[(0, 0)] - 2e-3).abs() < 1e-18);
    }
}
