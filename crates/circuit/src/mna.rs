//! Modified nodal analysis: Jacobian and residual assembly.
//!
//! The unknown vector is `x = [v_1 … v_{N-1}, i_1 … i_M]`: the voltages of
//! every non-ground node followed by the branch currents of the `M`
//! independent voltage sources. The nonlinear system `f(x) = 0` collects a
//! KCL residual (sum of currents *leaving* the node) per node and a
//! branch-voltage constraint per source; [`Mna::assemble`] evaluates `f` and
//! its Jacobian at a candidate `x` so Newton–Raphson can iterate.

use crate::error::SimError;
use crate::latency::{assembly_threads, LatencyState, PAR_EVAL_MIN};
use crate::netlist::{Circuit, NodeId};
use tfet_numerics::{par_for_each_mut, GroupedIndices, Matrix, SparseMatrix, SparsityPattern};

/// Jacobian assembly target: dense [`Matrix`] or pattern-backed
/// [`SparseMatrix`]. The MNA stamps are target-generic so both solver
/// strategies share one assembly routine (and therefore one set of stamps to
/// keep correct).
pub(crate) trait JacTarget {
    /// Zeroes every stored value.
    fn clear(&mut self);
    /// Adds `v` at `(r, c)`.
    fn add(&mut self, r: usize, c: usize, v: f64);
}

impl JacTarget for Matrix {
    fn clear(&mut self) {
        Matrix::clear(self);
    }
    #[inline]
    fn add(&mut self, r: usize, c: usize, v: f64) {
        Matrix::add(self, r, c, v);
    }
}

impl JacTarget for SparseMatrix {
    fn clear(&mut self) {
        SparseMatrix::clear(self);
    }
    #[inline]
    fn add(&mut self, r: usize, c: usize, v: f64) {
        SparseMatrix::add(self, r, c, v);
    }
}

/// A value slice stamped through a borrowed [`SparsityPattern`] — lets the
/// shared MNA stamp helpers write into an auxiliary value array (the
/// incremental assembly's linear part) without owning a second matrix.
struct SliceJac<'a> {
    pattern: &'a SparsityPattern,
    values: &'a mut [f64],
}

impl JacTarget for SliceJac<'_> {
    fn clear(&mut self) {
        self.values.fill(0.0);
    }
    #[inline]
    fn add(&mut self, r: usize, c: usize, v: f64) {
        let slot = self
            .pattern
            .slot(r, c)
            .unwrap_or_else(|| panic!("stamp at ({r},{c}) outside sparsity pattern"));
        self.values[slot] += v;
    }
}

/// Sentinel for a transistor Jacobian slot that does not exist (terminal at
/// ground — no row/column).
const NO_SLOT: usize = usize::MAX;

/// Incremental sparse-Jacobian state for [`Mna::assemble_sparse_latent`].
///
/// The Jacobian of a mostly-dormant array barely changes between Newton
/// iterations: a dormant device's conductance entries are *constant* until
/// its cell refreshes, and the linear elements (resistors, companion-cap
/// conductances, voltage-source unit entries, g_min) change at most once per
/// transient step. This struct keeps the two parts as separate value arrays
/// over the same sparsity pattern:
///
/// * `lin_values` — the linear part, rebuilt only when its inputs change
///   (detected in O(1) via the companion list's mutation stamp and g_min),
///   and even then through cached slots: the static stamps (resistors,
///   voltage-source units) are precomputed once, and the per-branch
///   companion slots are reused while the branch membership is unchanged —
///   a rebuild is a `memcpy` plus one add per branch entry, no searches;
/// * `trans_values` — the transistor part, maintained by
///   subtract-old/add-new deltas through per-device precomputed slots
///   whenever a device is freshly evaluated.
///
/// The full matrix is composed per iteration as one O(nnz) vector add —
/// replacing O(devices) slot-searched stamps. Repeated subtract/add cycles
/// drift `trans_values` by at most a few ulps per refresh (the deltas are
/// exact floating-point values, not accumulated sums), far inside Newton's
/// convergence tolerance, and every mutation is serial in netlist order so
/// results stay independent of thread count.
#[derive(Debug, Default)]
pub(crate) struct IncrementalJac {
    /// Per-transistor slots `[(rd,cg),(rd,rd),(rd,cs),(rs,cg),(rs,cd),(rs,rs)]`,
    /// `NO_SLOT` where a terminal is ground.
    tslots: Vec<[usize; 6]>,
    /// The linearization currently stamped in `trans_values`, per device.
    stamped: Vec<DeviceLin>,
    /// Linear-part values (resistors, cap conductances, vsource units, gmin).
    lin_values: Vec<f64>,
    /// Transistor conductance values.
    trans_values: Vec<f64>,
    /// Bias-independent linear stamps (resistors, vsource units), built once.
    static_values: Vec<f64>,
    /// Diagonal slot per voltage node, for the g_min contribution.
    diag_slots: Vec<usize>,
    /// Per companion branch: slots `[(ra,ra),(ra,rb),(rb,rb),(rb,ra)]`,
    /// `NO_SLOT` where a terminal is ground.
    cap_slots: Vec<[usize; 4]>,
    /// The `(a, b)` membership `cap_slots` was computed for.
    cap_nodes: Vec<(NodeId, NodeId)>,
    /// Mutation stamp of the companion list `lin_values` was built from.
    lin_gen: u64,
    /// The g_min `lin_values` was built with.
    lin_gmin: f64,
    /// False until the first linear rebuild.
    lin_valid: bool,
}

impl IncrementalJac {
    /// Builds the per-device slot tables for `mna`'s circuit over `pattern`
    /// and zeroes both value arrays.
    pub(crate) fn build(mna: &Mna<'_>, pattern: &SparsityPattern) -> Self {
        let nnz = pattern.nnz();
        let slot = |r: Option<usize>, c: Option<usize>| match (r, c) {
            (Some(r), Some(c)) => pattern
                .slot(r, c)
                .unwrap_or_else(|| panic!("transistor slot ({r},{c}) outside sparsity pattern")),
            _ => NO_SLOT,
        };
        let tslots = mna
            .circuit
            .transistors
            .iter()
            .map(|m| {
                let rd = mna.row(m.d);
                let rs = mna.row(m.s);
                let cg = mna.row(m.g);
                [
                    slot(rd, cg),
                    slot(rd, rd),
                    slot(rd, rs),
                    slot(rs, cg),
                    slot(rs, rd),
                    slot(rs, rs),
                ]
            })
            .collect::<Vec<_>>();
        // Static linear stamps: bias-independent, computed once.
        let mut static_values = vec![0.0; nnz];
        {
            let mut j = SliceJac {
                pattern,
                values: &mut static_values,
            };
            for r in &mna.circuit.resistors {
                mna.stamp_conductance(&mut j, r.a, r.b, 1.0 / r.ohms);
            }
            for (k, v) in mna.circuit.vsources.iter().enumerate() {
                let bi = mna.branch_index(k);
                if let Some(rp) = mna.row(v.plus) {
                    j.add(rp, bi, 1.0);
                    j.add(bi, rp, 1.0);
                }
                if let Some(rm) = mna.row(v.minus) {
                    j.add(rm, bi, -1.0);
                    j.add(bi, rm, -1.0);
                }
            }
        }
        let diag_slots = (0..mna.n_v)
            .map(|n| {
                pattern
                    .slot(n, n)
                    .unwrap_or_else(|| panic!("diagonal ({n},{n}) outside sparsity pattern"))
            })
            .collect();
        IncrementalJac {
            stamped: vec![DeviceLin::default(); tslots.len()],
            tslots,
            lin_values: vec![0.0; nnz],
            trans_values: vec![0.0; nnz],
            static_values,
            diag_slots,
            cap_slots: Vec::new(),
            cap_nodes: Vec::new(),
            lin_gen: 0,
            lin_gmin: 0.0,
            lin_valid: false,
        }
    }

    /// Rebuilds `lin_values` iff the linear part's inputs changed: g_min, or
    /// the companion-cap branch list (detected by the list's mutation stamp
    /// — `ieq` moves every step but only enters the residual, and `geq`
    /// changes arrive together with a new stamp).
    ///
    /// The rebuild itself runs through cached slots: a copy of the static
    /// stamps, one signed add per companion-branch slot (slots recomputed
    /// only when the branch membership changed — capacitance branches are
    /// pruned at some biases), and the g_min diagonal. No slot searches on
    /// the steady path.
    fn refresh_linear(
        &mut self,
        mna: &Mna<'_>,
        gmin: f64,
        caps: &CompanionCaps,
        pattern: &SparsityPattern,
    ) {
        if self.lin_valid && self.lin_gmin == gmin && self.lin_gen == caps.generation() {
            return;
        }
        let same_membership = self.cap_nodes.len() == caps.entries.len()
            && self
                .cap_nodes
                .iter()
                .zip(&caps.entries)
                .all(|(n, e)| n.0 == e.0 && n.1 == e.1);
        if !same_membership {
            self.cap_nodes.clear();
            self.cap_slots.clear();
            let slot = |r: Option<usize>, c: Option<usize>| match (r, c) {
                (Some(r), Some(c)) => pattern
                    .slot(r, c)
                    .unwrap_or_else(|| panic!("companion slot ({r},{c}) outside sparsity pattern")),
                _ => NO_SLOT,
            };
            for &(a, b, _, _) in &caps.entries {
                let (ra, rb) = (mna.row(a), mna.row(b));
                self.cap_nodes.push((a, b));
                self.cap_slots
                    .push([slot(ra, ra), slot(ra, rb), slot(rb, rb), slot(rb, ra)]);
            }
        }
        self.lin_values.copy_from_slice(&self.static_values);
        for (slots, &(_, _, geq, _)) in self.cap_slots.iter().zip(&caps.entries) {
            // Even indices are diagonal (+geq), odd are off-diagonal (−geq).
            for (k, &s) in slots.iter().enumerate() {
                if s != NO_SLOT {
                    self.lin_values[s] += if k % 2 == 0 { geq } else { -geq };
                }
            }
        }
        if gmin > 0.0 {
            for &s in &self.diag_slots {
                self.lin_values[s] += gmin;
            }
        }
        self.lin_gen = caps.generation();
        self.lin_gmin = gmin;
        self.lin_valid = true;
    }

    /// Replaces device `idx`'s contribution in `trans_values`: subtracts the
    /// previously stamped linearization, adds `e`, records `e` as stamped.
    #[inline]
    fn restamp_device(&mut self, idx: usize, e: &DeviceLin) {
        let slots = self.tslots[idx];
        let old = self.stamped[idx];
        if old.valid {
            for (s, v) in slots
                .iter()
                .zip([old.gm, old.gds, old.gss, -old.gm, -old.gds, -old.gss])
            {
                if *s != NO_SLOT {
                    self.trans_values[*s] -= v;
                }
            }
        }
        for (s, v) in slots
            .iter()
            .zip([e.gm, e.gds, e.gss, -e.gm, -e.gds, -e.gss])
        {
            if *s != NO_SLOT {
                self.trans_values[*s] += v;
            }
        }
        self.stamped[idx] = *e;
    }

    /// Writes `lin_values + trans_values` into `jac`'s value storage.
    fn compose_into(&self, jac: &mut SparseMatrix) {
        let vals = jac.values_mut();
        for ((v, l), t) in vals
            .iter_mut()
            .zip(&self.lin_values)
            .zip(&self.trans_values)
        {
            *v = l + t;
        }
    }
}

/// Cached linearization of one transistor: the operating point of its last
/// full evaluation (width-scaled current and conductances at terminal
/// voltages `vg/vd/vs`).
///
/// When every terminal moved less than [`BYPASS_VTOL`] since that evaluation,
/// assembly *bypasses* the device model and stamps the first-order
/// extrapolation `i ≈ i₀ + gm·Δvg + gds·Δvd + gss·Δvs` instead. Because the
/// extrapolation carries the full first-order term, the bypass error is
/// *second* order in the movement — curvature · Δv², not conductance · Δv —
/// which is what makes a micro-volt window safe against nano-volt
/// tolerances (see [`BYPASS_VTOL`]).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct DeviceLin {
    pub valid: bool,
    pub vg: f64,
    pub vd: f64,
    pub vs: f64,
    pub i: f64,
    pub gm: f64,
    pub gds: f64,
    pub gss: f64,
}

/// Terminal-voltage movement below which a cached device linearization is
/// reused instead of re-evaluating the model.
///
/// 150 µV. The bypassed stamp is the cached *first-order* model, so its
/// error is second order: `½·∂²i/∂v²·Δv²`. TFET currents vary on a ~30 mV
/// characteristic scale, giving a worst-case relative current error of
/// `(150 µV / 30 mV)² / 2 ≈ 1.3·10⁻⁵` — equivalent to a voltage
/// perturbation of ~0.4 µV at the device's own transconductance, four
/// orders below the LTE budget and any rendered figure precision. Movement
/// itself is never masked: the extrapolated current still tracks the
/// terminals linearly, so an un-converged iterate keeps producing a
/// residual.
pub(crate) const BYPASS_VTOL: f64 = 150e-6;

/// Per-assembly effort breakdown of the transistor section: how many
/// devices were fully evaluated, served from the per-device bypass cache,
/// or skipped wholesale by the cell-dormancy tier — plus the tier's refresh
/// activity. The solver accumulates these into the workspace's monotone
/// counters, which [`SolveStats`](crate::SolveStats) snapshots per run.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct AssemblyStats {
    /// Full device-model evaluations.
    pub(crate) evals: u64,
    /// Stamps served from the per-device bypass cache (ungrouped devices).
    pub(crate) bypassed: u64,
    /// Stamps replayed for devices inside a dormant partition.
    pub(crate) dormant: u64,
    /// Partitions refreshed (all member devices re-evaluated) this assembly.
    pub(crate) cells_refreshed: u64,
    /// Refreshes forced specifically by guard-node movement while the
    /// partition's internal nodes were still quiet.
    pub(crate) guard_refreshes: u64,
}

/// Linearized (companion-model) capacitor contributions for one transient
/// step: for each entry, a conductance `geq` between `a` and `b` plus a
/// constant current `ieq` flowing a→b, such that the branch current is
/// `i_ab = geq · (v_a − v_b) + ieq`.
///
/// The transient integrator builds these each step (backward Euler:
/// `geq = C/Δt`, `ieq = −geq·v_ab(t_n)`; trapezoidal: `geq = 2C/Δt`,
/// `ieq = −geq·v_ab(t_n) − i_ab(t_n)`).
#[derive(Debug, Clone, Default)]
pub struct CompanionCaps {
    /// `(a, b, geq, ieq)` per capacitor branch.
    pub entries: Vec<(NodeId, NodeId, f64, f64)>,
    /// Mutation stamp, unique across all instances (see
    /// [`CompanionCaps::touch`]). Never-touched instances stay at 0.
    generation: u64,
}

impl CompanionCaps {
    /// Records that `entries` changed by taking a fresh globally-unique
    /// stamp. Two equal generations therefore always mean "the same list,
    /// unmutated" — which is what lets [`IncrementalJac::refresh_linear`]
    /// decide "nothing to do" in O(1) instead of comparing every branch.
    pub(crate) fn touch(&mut self) {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT: AtomicU64 = AtomicU64::new(1);
        self.generation = NEXT.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn generation(&self) -> u64 {
        self.generation
    }
}

/// Assembled view of a circuit, ready for repeated Jacobian/residual
/// evaluation.
#[derive(Debug)]
pub struct Mna<'c> {
    circuit: &'c Circuit,
    /// Non-ground node count (voltage unknowns).
    n_v: usize,
    /// Total unknowns (`n_v` + voltage-source branch currents).
    n_x: usize,
}

impl<'c> Mna<'c> {
    /// Prepares the circuit for analysis.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidCircuit`] if the circuit has no elements
    /// or no non-ground nodes.
    pub fn new(circuit: &'c Circuit) -> Result<Self, SimError> {
        if circuit.element_count() == 0 {
            return Err(SimError::InvalidCircuit("circuit has no elements".into()));
        }
        let n_v = circuit.node_count() - 1;
        if n_v == 0 {
            return Err(SimError::InvalidCircuit(
                "circuit has no non-ground nodes".into(),
            ));
        }
        let n_x = n_v + circuit.vsource_count();
        Ok(Mna { circuit, n_v, n_x })
    }

    /// Number of unknowns.
    pub fn unknown_count(&self) -> usize {
        self.n_x
    }

    /// Number of voltage unknowns (non-ground nodes).
    pub fn voltage_count(&self) -> usize {
        self.n_v
    }

    /// The circuit under analysis.
    pub fn circuit(&self) -> &Circuit {
        self.circuit
    }

    /// Voltage of `node` in the unknown vector (0 for ground).
    #[inline]
    pub fn voltage_of(&self, x: &[f64], node: NodeId) -> f64 {
        if node.is_ground() {
            0.0
        } else {
            x[node.index() - 1]
        }
    }

    /// Row/column of a node's KCL equation, if it has one (ground doesn't).
    #[inline]
    fn row(&self, node: NodeId) -> Option<usize> {
        if node.is_ground() {
            None
        } else {
            Some(node.index() - 1)
        }
    }

    /// Unknown index of voltage source `k`'s branch current.
    #[inline]
    pub fn branch_index(&self, k: usize) -> usize {
        self.n_v + k
    }

    /// Adds `g` between nodes `a` and `b` into the Jacobian (standard
    /// two-terminal conductance stamp).
    fn stamp_conductance<J: JacTarget>(&self, j: &mut J, a: NodeId, b: NodeId, g: f64) {
        if let Some(ra) = self.row(a) {
            j.add(ra, ra, g);
            if let Some(rb) = self.row(b) {
                j.add(ra, rb, -g);
            }
        }
        if let Some(rb) = self.row(b) {
            j.add(rb, rb, g);
            if let Some(ra) = self.row(a) {
                j.add(rb, ra, -g);
            }
        }
    }

    /// Adds a current `i` flowing a→b into the residual.
    fn stamp_current(&self, f: &mut [f64], a: NodeId, b: NodeId, i: f64) {
        if let Some(ra) = self.row(a) {
            f[ra] += i;
        }
        if let Some(rb) = self.row(b) {
            f[rb] -= i;
        }
    }

    /// Evaluates the residual `f(x)` and Jacobian `J(x)` at time `t`.
    ///
    /// * `gmin` — convergence-aid conductance from every node toward its
    ///   anchor voltage (0 for the final, physical solve);
    /// * `anchor` — the voltages the g_min conductances pull toward. `None`
    ///   pulls toward ground; passing the solver's initial guess makes the
    ///   g_min ladder *basin-preserving* for bistable circuits (an SRAM
    ///   relaxed toward ground would forget which state it was asked to
    ///   hold and drift to the metastable point);
    /// * `caps` — companion-model capacitor branches for transient steps
    ///   (`None` for DC: capacitors are open circuits).
    ///
    /// `j` must be `n_x × n_x` and `f` of length `n_x`; both are cleared.
    ///
    /// # Panics
    ///
    /// Panics if `x`, `f`, `j` or `anchor` have the wrong dimensions.
    #[allow(clippy::too_many_arguments)] // solver-internal hot path; a config struct would obscure the MNA math
    pub fn assemble(
        &self,
        x: &[f64],
        t: f64,
        gmin: f64,
        anchor: Option<&[f64]>,
        caps: Option<&CompanionCaps>,
        j: &mut Matrix,
        f: &mut [f64],
    ) {
        assert_eq!(j.rows(), self.n_x, "jacobian rows");
        self.assemble_into(x, t, gmin, anchor, caps, j, f, None);
    }

    /// Target-generic assembly with optional device-evaluation bypass.
    ///
    /// Like [`Mna::assemble`], but stamps into any [`JacTarget`] (dense or
    /// pattern-backed sparse). When `cache` is given, transistors whose
    /// terminal voltages all moved less than [`BYPASS_VTOL`] since their last
    /// full evaluation are stamped from the cached linearization instead of
    /// re-evaluating the device model (see [`DeviceLin`]); the cache is
    /// resized to the transistor count on entry, and entries are refreshed on
    /// every full evaluation. Partition-latency transient solves go through
    /// [`Mna::assemble_sparse_latent`] instead, which adds the cell-dormancy
    /// tier and incremental Jacobian maintenance on top of the same stamps.
    #[allow(clippy::too_many_arguments)] // solver-internal hot path; a config struct would obscure the MNA math
    pub(crate) fn assemble_into<J: JacTarget>(
        &self,
        x: &[f64],
        t: f64,
        gmin: f64,
        anchor: Option<&[f64]>,
        caps: Option<&CompanionCaps>,
        j: &mut J,
        f: &mut [f64],
        mut cache: Option<&mut Vec<DeviceLin>>,
    ) -> AssemblyStats {
        assert_eq!(x.len(), self.n_x, "state vector length");
        assert_eq!(f.len(), self.n_x, "residual length");
        j.clear();
        f.fill(0.0);

        // Resistors.
        for r in &self.circuit.resistors {
            let g = 1.0 / r.ohms;
            let i = g * (self.voltage_of(x, r.a) - self.voltage_of(x, r.b));
            self.stamp_conductance(j, r.a, r.b, g);
            self.stamp_current(f, r.a, r.b, i);
        }

        // Companion capacitors (transient only).
        if let Some(caps) = caps {
            for &(a, b, geq, ieq) in &caps.entries {
                let i = geq * (self.voltage_of(x, a) - self.voltage_of(x, b)) + ieq;
                self.stamp_conductance(j, a, b, geq);
                self.stamp_current(f, a, b, i);
            }
        }

        // Current sources.
        for s in &self.circuit.isources {
            self.stamp_current(f, s.from, s.to, s.wave.value(t));
        }

        // Transistors: nonlinear three-terminal stamps, with optional bypass
        // of the (expensive) model evaluation when the operating point is
        // within BYPASS_VTOL of the cached one.
        let mut stats = AssemblyStats::default();
        if let Some(c) = cache.as_deref_mut() {
            c.resize(self.circuit.transistors.len(), DeviceLin::default());
        }
        self.stamp_transistors_plain(x, cache, j, f, &mut stats);

        // Voltage sources: branch current unknowns + branch equations.
        for (k, v) in self.circuit.vsources.iter().enumerate() {
            let bi = self.branch_index(k);
            let i_br = x[bi];
            // KCL: branch current leaves `plus`, enters `minus`.
            if let Some(rp) = self.row(v.plus) {
                f[rp] += i_br;
                j.add(rp, bi, 1.0);
            }
            if let Some(rm) = self.row(v.minus) {
                f[rm] -= i_br;
                j.add(rm, bi, -1.0);
            }
            // Branch equation: v_plus − v_minus = V(t).
            f[bi] = self.voltage_of(x, v.plus) - self.voltage_of(x, v.minus) - v.wave.value(t);
            if let Some(rp) = self.row(v.plus) {
                j.add(bi, rp, 1.0);
            }
            if let Some(rm) = self.row(v.minus) {
                j.add(bi, rm, -1.0);
            }
        }

        // g_min convergence aid: a conductance from every node toward its
        // anchor (ground when no anchor is given).
        if gmin > 0.0 {
            if let Some(anchor) = anchor {
                assert!(anchor.len() >= self.n_v, "anchor length");
            }
            for n in 0..self.n_v {
                j.add(n, n, gmin);
                let target = anchor.map_or(0.0, |a| a[n]);
                f[n] += gmin * (x[n] - target);
            }
        }
        stats
    }

    /// The pre-latency transistor stamp loop: per-device decision (full
    /// evaluation or bypass-cache replay), serial in netlist order. Kept
    /// arithmetically untouched — every unpartitioned circuit, and every
    /// dense or latency-off solve, goes through here.
    fn stamp_transistors_plain<J: JacTarget>(
        &self,
        x: &[f64],
        mut cache: Option<&mut Vec<DeviceLin>>,
        j: &mut J,
        f: &mut [f64],
        stats: &mut AssemblyStats,
    ) {
        for (idx, m) in self.circuit.transistors.iter().enumerate() {
            let vg = self.voltage_of(x, m.g);
            let vd = self.voltage_of(x, m.d);
            let vs = self.voltage_of(x, m.s);
            let entry = cache.as_deref_mut().map(|c| &mut c[idx]);
            let (i, gm, gds, gss) = match entry {
                Some(e)
                    if e.valid
                        && (vg - e.vg).abs() < BYPASS_VTOL
                        && (vd - e.vd).abs() < BYPASS_VTOL
                        && (vs - e.vs).abs() < BYPASS_VTOL =>
                {
                    stats.bypassed += 1;
                    let i = e.i + e.gm * (vg - e.vg) + e.gds * (vd - e.vd) + e.gss * (vs - e.vs);
                    (i, e.gm, e.gds, e.gss)
                }
                entry => {
                    stats.evals += 1;
                    let w = m.width_um;
                    let i = w * m.model.ids_per_um(vg, vd, vs);
                    let (gm_u, gds_u, gs_u) = m.model.conductances_per_um(vg, vd, vs);
                    let (gm, gds, gss) = (w * gm_u, w * gds_u, w * gs_u);
                    if let Some(e) = entry {
                        *e = DeviceLin {
                            valid: true,
                            vg,
                            vd,
                            vs,
                            i,
                            gm,
                            gds,
                            gss,
                        };
                    }
                    (i, gm, gds, gss)
                }
            };

            // Current i enters the drain terminal and leaves the source
            // terminal; the gate carries no DC current.
            self.stamp_current(f, m.d, m.s, i);
            if let Some(rd) = self.row(m.d) {
                if let Some(c) = self.row(m.g) {
                    j.add(rd, c, gm);
                }
                j.add(rd, rd, gds);
                if let Some(c) = self.row(m.s) {
                    j.add(rd, c, gss);
                }
            }
            if let Some(rs) = self.row(m.s) {
                if let Some(c) = self.row(m.g) {
                    j.add(rs, c, -gm);
                }
                if let Some(c) = self.row(m.d) {
                    j.add(rs, c, -gds);
                }
                j.add(rs, rs, -gss);
            }
        }
    }

    /// The latency-tier transient assembly: the three-phase transistor path
    /// (decide / evaluate / stamp) on top of *incremental* sparse-Jacobian
    /// maintenance.
    ///
    /// 1. **decide** — re-evaluate dormancy per partition against the
    ///    refresh-point references ([`LatencyState::update_dormancy`]), then
    ///    mark each device: partition members evaluate iff their cell is not
    ///    dormant (a refreshed cell re-evaluates *all* its devices, so cache
    ///    entries and references always describe one coherent operating
    ///    point); ungrouped devices keep the per-device bypass test.
    /// 2. **evaluate** — run the marked device models, serially or fanned
    ///    across threads when the batch is large ([`PAR_EVAL_MIN`]). Each
    ///    evaluation writes only its own cache slot and depends only on `x`,
    ///    so the fan-out is embarrassingly parallel and bit-deterministic.
    /// 3. **stamp** — serial, in netlist order. The residual replay
    ///    `i = i₀ + gm·Δvg + gds·Δvd + gss·Δvs` is exact (Δv ≡ 0) for
    ///    freshly evaluated devices and second-order accurate for dormant or
    ///    bypassed ones. The *Jacobian*, however, is not re-stamped from
    ///    scratch: a device's conductance entries change only when its
    ///    linearization does, so only freshly evaluated devices touch the
    ///    matrix (subtract the previously stamped linearization, add the new
    ///    one, through per-device precomputed slots — no slot searches). The
    ///    full matrix is then composed as `linear part + transistor part`,
    ///    where the linear part (resistors, companion-capacitor
    ///    conductances, voltage-source unit entries, g_min diagonal) is
    ///    rebuilt only when its values actually change — at most once per
    ///    transient step, and only when device capacitances moved.
    ///
    /// On an array where >90 % of cells are dormant this turns the dominant
    /// per-iteration cost — thousands of slot-searched stamps for devices
    /// whose conductances have not changed — into a single O(nnz) vector
    /// add. The fixed serial order of every matrix mutation keeps results
    /// independent of thread count.
    #[allow(clippy::too_many_arguments)] // solver-internal hot path
    pub(crate) fn assemble_sparse_latent(
        &self,
        x: &[f64],
        t: f64,
        gmin: f64,
        anchor: Option<&[f64]>,
        caps: &CompanionCaps,
        jac: &mut SparseMatrix,
        inc: &mut IncrementalJac,
        f: &mut [f64],
        cache: &mut Vec<DeviceLin>,
        lat: &mut LatencyState,
    ) -> AssemblyStats {
        assert_eq!(x.len(), self.n_x, "state vector length");
        assert_eq!(f.len(), self.n_x, "residual length");
        f.fill(0.0);
        cache.resize(self.circuit.transistors.len(), DeviceLin::default());
        let mut stats = AssemblyStats::default();

        // Linear Jacobian part: rebuilt only when its values changed.
        {
            let _s = tfet_obs::span("lin");
            inc.refresh_linear(self, gmin, caps, jac.pattern());
        }

        // Residual contributions of the linear elements (same order as
        // `assemble_into`, so the two paths agree term for term).
        for r in &self.circuit.resistors {
            let g = 1.0 / r.ohms;
            let i = g * (self.voltage_of(x, r.a) - self.voltage_of(x, r.b));
            self.stamp_current(f, r.a, r.b, i);
        }
        for &(a, b, geq, ieq) in &caps.entries {
            let i = geq * (self.voltage_of(x, a) - self.voltage_of(x, b)) + ieq;
            self.stamp_current(f, a, b, i);
        }
        for s in &self.circuit.isources {
            self.stamp_current(f, s.from, s.to, s.wave.value(t));
        }

        // Phase 1: decide which devices need a fresh evaluation.
        let _s_decide = tfet_obs::span("decide");
        let (cells_refreshed, guard_refreshes) = lat.update_dormancy(x);
        stats.cells_refreshed += cells_refreshed;
        stats.guard_refreshes += guard_refreshes;
        let mut n_eval = 0usize;
        for (idx, m) in self.circuit.transistors.iter().enumerate() {
            let g = lat.owner.owner_of(idx);
            let eval = if g != GroupedIndices::UNGROUPED {
                if lat.dormant[g] {
                    stats.dormant += 1;
                    false
                } else {
                    true
                }
            } else {
                let e = &cache[idx];
                let vg = self.voltage_of(x, m.g);
                let vd = self.voltage_of(x, m.d);
                let vs = self.voltage_of(x, m.s);
                if e.valid
                    && (vg - e.vg).abs() < BYPASS_VTOL
                    && (vd - e.vd).abs() < BYPASS_VTOL
                    && (vs - e.vs).abs() < BYPASS_VTOL
                {
                    stats.bypassed += 1;
                    false
                } else {
                    true
                }
            };
            lat.eval_mask[idx] = eval;
            n_eval += eval as usize;
        }
        stats.evals += n_eval as u64;
        drop(_s_decide);
        let _s_eval = tfet_obs::span("eval");

        // Phase 2: evaluate marked devices (parallel when worthwhile).
        let eval_mask = &lat.eval_mask;
        let evaluate = |idx: usize, e: &mut DeviceLin| {
            let m = &self.circuit.transistors[idx];
            let vg = self.voltage_of(x, m.g);
            let vd = self.voltage_of(x, m.d);
            let vs = self.voltage_of(x, m.s);
            let w = m.width_um;
            let i = w * m.model.ids_per_um(vg, vd, vs);
            let (gm_u, gds_u, gs_u) = m.model.conductances_per_um(vg, vd, vs);
            *e = DeviceLin {
                valid: true,
                vg,
                vd,
                vs,
                i,
                gm: w * gm_u,
                gds: w * gds_u,
                gss: w * gs_u,
            };
        };
        let threads = assembly_threads();
        if n_eval >= PAR_EVAL_MIN && threads > 1 {
            par_for_each_mut(cache, Some(threads), |idx, e| {
                if eval_mask[idx] {
                    evaluate(idx, e);
                }
            });
        } else {
            for (idx, e) in cache.iter_mut().enumerate() {
                if eval_mask[idx] {
                    evaluate(idx, e);
                }
            }
        }

        drop(_s_eval);
        let _s_stamp = tfet_obs::span("stamp");
        // Phase 3: residual for every device; Jacobian deltas only for the
        // devices whose linearization changed this assembly.
        for (idx, m) in self.circuit.transistors.iter().enumerate() {
            let e = &cache[idx];
            let vg = self.voltage_of(x, m.g);
            let vd = self.voltage_of(x, m.d);
            let vs = self.voltage_of(x, m.s);
            let i = e.i + e.gm * (vg - e.vg) + e.gds * (vd - e.vd) + e.gss * (vs - e.vs);
            self.stamp_current(f, m.d, m.s, i);
            if lat.eval_mask[idx] {
                inc.restamp_device(idx, e);
            }
        }

        // Voltage sources: branch-current residuals (unit Jacobian entries
        // live in the linear part).
        for (k, v) in self.circuit.vsources.iter().enumerate() {
            let bi = self.branch_index(k);
            let i_br = x[bi];
            if let Some(rp) = self.row(v.plus) {
                f[rp] += i_br;
            }
            if let Some(rm) = self.row(v.minus) {
                f[rm] -= i_br;
            }
            f[bi] = self.voltage_of(x, v.plus) - self.voltage_of(x, v.minus) - v.wave.value(t);
        }

        // g_min residual (diagonal conductance is in the linear part).
        if gmin > 0.0 {
            if let Some(anchor) = anchor {
                assert!(anchor.len() >= self.n_v, "anchor length");
            }
            for n in 0..self.n_v {
                let target = anchor.map_or(0.0, |a| a[n]);
                f[n] += gmin * (x[n] - target);
            }
        }

        drop(_s_stamp);
        // Compose the full Jacobian: one vector add over the pattern.
        let _s = tfet_obs::span("compose");
        inc.compose_into(jac);
        stats
    }

    /// Visits every Jacobian coordinate `assemble` can ever touch —
    /// *structurally*, from the netlist alone, independent of bias.
    ///
    /// This over-approximates any single assembly: all four device
    /// capacitance branches (gs, gd, db, sb) are included even though
    /// `fill_cap_branches` drops zero-valued ones at a given bias, and the
    /// full diagonal is included (g_min, UIC hold branches, and the sparse
    /// engine's static pivoting all want it). Extra structural zeros are
    /// harmless — the sparse analysis pivots on actual values.
    pub(crate) fn for_each_jacobian_entry(&self, mut visit: impl FnMut(usize, usize)) {
        fn cond(mna: &Mna<'_>, a: NodeId, b: NodeId, visit: &mut dyn FnMut(usize, usize)) {
            if let Some(ra) = mna.row(a) {
                visit(ra, ra);
                if let Some(rb) = mna.row(b) {
                    visit(ra, rb);
                }
            }
            if let Some(rb) = mna.row(b) {
                visit(rb, rb);
                if let Some(ra) = mna.row(a) {
                    visit(rb, ra);
                }
            }
        }
        for r in &self.circuit.resistors {
            cond(self, r.a, r.b, &mut visit);
        }
        for c in &self.circuit.capacitors {
            cond(self, c.a, c.b, &mut visit);
        }
        for m in &self.circuit.transistors {
            for (a, b) in [
                (m.g, m.s),
                (m.g, m.d),
                (m.d, Circuit::GND),
                (m.s, Circuit::GND),
            ] {
                cond(self, a, b, &mut visit);
            }
            if let Some(rd) = self.row(m.d) {
                if let Some(c) = self.row(m.g) {
                    visit(rd, c);
                }
                visit(rd, rd);
                if let Some(c) = self.row(m.s) {
                    visit(rd, c);
                }
            }
            if let Some(rs) = self.row(m.s) {
                if let Some(c) = self.row(m.g) {
                    visit(rs, c);
                }
                if let Some(c) = self.row(m.d) {
                    visit(rs, c);
                }
                visit(rs, rs);
            }
        }
        for (k, v) in self.circuit.vsources.iter().enumerate() {
            let bi = self.branch_index(k);
            if let Some(rp) = self.row(v.plus) {
                visit(rp, bi);
                visit(bi, rp);
            }
            if let Some(rm) = self.row(v.minus) {
                visit(rm, bi);
                visit(bi, rm);
            }
        }
        for i in 0..self.n_x {
            visit(i, i);
        }
    }

    /// Collects [`Mna::for_each_jacobian_entry`] into a coordinate list
    /// (duplicates included; `SparsityPattern::from_entries` merges them).
    pub(crate) fn pattern_entries(&self) -> Vec<(usize, usize)> {
        let mut v = Vec::new();
        self.for_each_jacobian_entry(|r, c| v.push((r, c)));
        v
    }

    /// FNV-1a hash over the structural pattern (dimension + coordinates).
    ///
    /// Cheap (no allocation) and deterministic: the thread-local solver
    /// workspace keys its sparse state on this, so same-topology runs reuse
    /// the symbolic analysis and a topology change forces a rebuild.
    pub(crate) fn pattern_signature(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        mix(self.n_x as u64);
        self.for_each_jacobian_entry(|r, c| mix((r * self.n_x + c + 1) as u64));
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waveform::Waveform;

    #[test]
    fn divider_residual_is_zero_at_solution() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.vsource("V", a, Circuit::GND, Waveform::dc(1.0));
        c.resistor(a, b, 1e3);
        c.resistor(b, Circuit::GND, 1e3);
        let mna = Mna::new(&c).unwrap();
        assert_eq!(mna.unknown_count(), 3); // a, b, branch

        // Known solution: v_a = 1, v_b = 0.5, i_br = −0.5 mA.
        let x = vec![1.0, 0.5, -0.5e-3];
        let mut j = Matrix::zeros(3, 3);
        let mut f = vec![0.0; 3];
        mna.assemble(&x, 0.0, 0.0, None, None, &mut j, &mut f);
        for (k, r) in f.iter().enumerate() {
            assert!(r.abs() < 1e-12, "residual {k} = {r:e}");
        }
    }

    #[test]
    fn jacobian_matches_finite_difference_of_residual() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.vsource("V", a, Circuit::GND, Waveform::dc(0.8));
        c.resistor(a, b, 2e3);
        c.resistor(b, Circuit::GND, 5e3);
        let mna = Mna::new(&c).unwrap();
        let n = mna.unknown_count();
        let x = vec![0.7, 0.3, 1e-4];
        let mut j = Matrix::zeros(n, n);
        let mut f0 = vec![0.0; n];
        mna.assemble(&x, 0.0, 0.0, None, None, &mut j, &mut f0);

        let h = 1e-7;
        for col in 0..n {
            let mut xp = x.clone();
            xp[col] += h;
            let mut jp = Matrix::zeros(n, n);
            let mut fp = vec![0.0; n];
            mna.assemble(&xp, 0.0, 0.0, None, None, &mut jp, &mut fp);
            for row in 0..n {
                let fd = (fp[row] - f0[row]) / h;
                assert!(
                    (j[(row, col)] - fd).abs() < 1e-4 * j[(row, col)].abs().max(1.0),
                    "J[{row}][{col}] = {} vs FD {fd}",
                    j[(row, col)]
                );
            }
        }
    }

    #[test]
    fn empty_circuit_rejected() {
        let c = Circuit::new();
        assert!(matches!(Mna::new(&c), Err(SimError::InvalidCircuit(_))));
    }

    #[test]
    fn gmin_adds_diagonal_conductance() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.isource(Circuit::GND, a, Waveform::dc(1e-6));
        let mna = Mna::new(&c).unwrap();
        let mut j = Matrix::zeros(1, 1);
        let mut f = vec![0.0];
        // With gmin = 1e-3 and v_a = 1 mV, the node balances: 1 µA in,
        // 1 µA out through gmin.
        mna.assemble(&[1e-3], 0.0, 1e-3, None, None, &mut j, &mut f);
        assert!((f[0]).abs() < 1e-15);
        assert!((j[(0, 0)] - 1e-3).abs() < 1e-18);
    }

    #[test]
    fn companion_caps_stamp_like_conductances() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.resistor(a, Circuit::GND, 1e3);
        let mna = Mna::new(&c).unwrap();
        let mut caps = CompanionCaps::default();
        caps.entries.push((a, Circuit::GND, 1e-3, -0.5e-3));
        caps.touch();
        let mut j = Matrix::zeros(1, 1);
        let mut f = vec![0.0];
        // v_a such that resistor + companion currents cancel:
        // v/1e3 + 1e-3·v − 0.5e-3 = 0 → v = 0.25.
        mna.assemble(&[0.25], 0.0, 0.0, None, Some(&caps), &mut j, &mut f);
        assert!(f[0].abs() < 1e-15, "f = {:e}", f[0]);
        assert!((j[(0, 0)] - 2e-3).abs() < 1e-18);
    }
}
