//! Reusable solver buffers for repeated Newton solves.
//!
//! A transient run performs one damped Newton solve per time step, and a
//! Monte-Carlo study performs thousands of transient runs. Before this
//! module every Newton call allocated its Jacobian, residual and update
//! vectors, and every iteration allocated an LU factorization — hundreds of
//! small heap allocations per time step that dominated the profile for the
//! ≤ ~20-unknown SRAM systems this workspace solves.
//!
//! [`NewtonWorkspace`] owns all of those buffers plus the transient
//! integrator's companion-model scratch. One workspace serves any circuit
//! (buffers grow on demand and are reused thereafter), so a worker thread
//! sweeping Monte-Carlo samples performs O(1) allocations for the whole
//! sweep. Workers get one automatically through the crate-internal
//! thread-local (`with_workspace`); callers that want explicit control —
//! e.g. to hold buffers across many
//! [`transient_with`](crate::netlist::Circuit) calls — can own one
//! directly.

use crate::mna::CompanionCaps;
use crate::transient::CapBranch;
use std::cell::Cell;
use tfet_numerics::matrix::LuWorkspace;
use tfet_numerics::Matrix;

/// Buffers for one damped-Newton solve: Jacobian, residual, negated RHS,
/// update vector, and the LU factorization workspace — plus lifetime
/// counters of solver effort (solves started, iterations performed) that
/// the transient engine snapshots to report per-run statistics.
#[derive(Debug)]
pub(crate) struct SolverBufs {
    pub(crate) j: Matrix,
    pub(crate) f: Vec<f64>,
    pub(crate) rhs: Vec<f64>,
    pub(crate) dx: Vec<f64>,
    pub(crate) lu: LuWorkspace,
    /// Newton solves started since this workspace was created (monotone;
    /// consumers measure effort by differencing snapshots).
    pub(crate) newton_solves: u64,
    /// Newton iterations (Jacobian assemblies + LU factorizations) since
    /// this workspace was created.
    pub(crate) newton_iters: u64,
}

impl Default for SolverBufs {
    fn default() -> Self {
        SolverBufs {
            j: Matrix::zeros(0, 0),
            f: Vec::new(),
            rhs: Vec::new(),
            dx: Vec::new(),
            lu: LuWorkspace::default(),
            newton_solves: 0,
            newton_iters: 0,
        }
    }
}

impl SolverBufs {
    /// Sizes every buffer for an `n`-unknown system; a no-op when already
    /// at that size.
    pub(crate) fn ensure(&mut self, n: usize) {
        if self.f.len() != n {
            self.j = Matrix::zeros(n, n);
            self.f = vec![0.0; n];
            self.rhs = vec![0.0; n];
            self.dx = vec![0.0; n];
        }
    }
}

/// Reusable scratch space for DC and transient solves.
///
/// All buffers grow on first use and are retained across calls, so repeated
/// solves of same-sized circuits — the shape of every sweep and Monte-Carlo
/// loop in this workspace — run allocation-free after warm-up.
///
/// [`Circuit::transient`](crate::netlist::Circuit::transient) borrows a
/// thread-local workspace transparently;
/// [`Circuit::transient_with`](crate::netlist::Circuit::transient_with)
/// accepts one explicitly.
#[derive(Debug, Default)]
pub struct NewtonWorkspace {
    pub(crate) bufs: SolverBufs,
    /// Snapshot of the initial guess that the g_min ladder anchors to.
    pub(crate) anchor: Vec<f64>,
    /// Companion-model capacitor stamps for the current transient step.
    pub(crate) companions: CompanionCaps,
    /// Capacitive branches linearized at the start of the current step.
    pub(crate) branches: Vec<CapBranch>,
    /// Double buffer for re-linearizing branches at the end of a step.
    pub(crate) branches_next: Vec<CapBranch>,
    /// Branches re-linearized at the midpoint of an adaptive trial step.
    pub(crate) branches_mid: Vec<CapBranch>,
    /// Coarse (single full-step) solution of an adaptive trial step.
    pub(crate) x_coarse: Vec<f64>,
    /// Fine (two half-steps) solution of an adaptive trial step.
    pub(crate) x_fine: Vec<f64>,
    /// Sorted source-edge times for the adaptive breakpoint schedule.
    pub(crate) breakpoints: Vec<f64>,
}

impl NewtonWorkspace {
    /// Creates an empty workspace; buffers are sized on first use.
    pub fn new() -> Self {
        NewtonWorkspace::default()
    }
}

thread_local! {
    /// Per-thread workspace shared by every solve on this thread. Stored in
    /// a `Cell<Option<…>>` and *taken* for the duration of a solve: if a
    /// solve re-enters (a transient whose initial state runs a DC solve
    /// through the public API), the inner call finds the slot empty and
    /// works on a fresh temporary instead of aliasing the outer buffers.
    static WORKSPACE: Cell<Option<Box<NewtonWorkspace>>> = const { Cell::new(None) };
}

/// Runs `f` with this thread's reusable workspace.
pub(crate) fn with_workspace<R>(f: impl FnOnce(&mut NewtonWorkspace) -> R) -> R {
    WORKSPACE.with(|slot| {
        let mut ws = slot.take().unwrap_or_default();
        let out = f(&mut ws);
        slot.set(Some(ws));
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ensure_is_idempotent_at_fixed_size() {
        let mut bufs = SolverBufs::default();
        bufs.ensure(5);
        let ptr = bufs.f.as_ptr();
        bufs.ensure(5);
        assert_eq!(bufs.f.as_ptr(), ptr, "same-size ensure must not reallocate");
        bufs.ensure(7);
        assert_eq!(bufs.f.len(), 7);
        assert_eq!(bufs.j.rows(), 7);
    }

    #[test]
    fn thread_local_workspace_is_reentrant() {
        with_workspace(|outer| {
            outer.bufs.ensure(4);
            let outer_ptr = outer.bufs.f.as_ptr();
            // A nested borrow must get a distinct workspace, not panic or
            // alias the outer one.
            with_workspace(|inner| {
                inner.bufs.ensure(4);
                assert_ne!(inner.bufs.f.as_ptr(), outer_ptr);
            });
            outer.bufs.f[0] = 1.0;
        });
    }

    #[test]
    fn thread_local_workspace_persists_across_calls() {
        let first = with_workspace(|ws| {
            ws.bufs.ensure(6);
            ws.bufs.f.as_ptr() as usize
        });
        let second = with_workspace(|ws| ws.bufs.f.as_ptr() as usize);
        assert_eq!(first, second, "buffers must be reused between solves");
    }
}
