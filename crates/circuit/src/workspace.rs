//! Reusable solver buffers for repeated Newton solves.
//!
//! A transient run performs one damped Newton solve per time step, and a
//! Monte-Carlo study performs thousands of transient runs. Before this
//! module every Newton call allocated its Jacobian, residual and update
//! vectors, and every iteration allocated an LU factorization — hundreds of
//! small heap allocations per time step that dominated the profile for the
//! ≤ ~20-unknown SRAM systems this workspace solves.
//!
//! [`NewtonWorkspace`] owns all of those buffers plus the transient
//! integrator's companion-model scratch. One workspace serves any circuit
//! (buffers grow on demand and are reused thereafter), so a worker thread
//! sweeping Monte-Carlo samples performs O(1) allocations for the whole
//! sweep. Workers get one automatically through the crate-internal
//! thread-local (`with_workspace`); callers that want explicit control —
//! e.g. to hold buffers across many
//! [`transient_with`](crate::netlist::Circuit) calls — can own one
//! directly.

use crate::latency::{partition_signature, LatencyState};
use crate::mna::{CompanionCaps, DeviceLin, IncrementalJac, Mna};
use crate::transient::CapBranch;
use std::cell::Cell;
use tfet_numerics::matrix::LuWorkspace;
use tfet_numerics::{Matrix, SparseLu, SparseMatrix, SparsityPattern};

/// Fixed capacity of [`SolverBufs::res_history`], reserved once when the
/// buffers are first sized so per-iteration pushes can never reallocate
/// (the counting-allocator regression pins step-count-independent allocs).
/// Larger than the default Newton iteration limit (200), so a full history
/// is kept for any default-configured solve.
pub(crate) const RES_HISTORY_CAP: usize = 256;

/// Buffers for one damped-Newton solve: Jacobian, residual, negated RHS,
/// update vector, and the LU factorization workspace — plus lifetime
/// counters of solver effort (solves started, iterations performed) that
/// the transient engine snapshots to report per-run statistics.
#[derive(Debug)]
pub(crate) struct SolverBufs {
    pub(crate) j: Matrix,
    pub(crate) f: Vec<f64>,
    pub(crate) rhs: Vec<f64>,
    pub(crate) dx: Vec<f64>,
    /// Mat-vec scratch for the reused-factor consistency check
    /// ([`Self::sparse_update_consistent`]).
    pub(crate) scratch: Vec<f64>,
    pub(crate) lu: LuWorkspace,
    /// Newton solves started since this workspace was created (monotone;
    /// consumers measure effort by differencing snapshots).
    pub(crate) newton_solves: u64,
    /// Newton iterations (Jacobian assemblies + LU factorizations) since
    /// this workspace was created.
    pub(crate) newton_iters: u64,
    /// Residual infinity-norm after each iteration of the most recent
    /// Newton attempt (cleared per attempt; capped at
    /// [`RES_HISTORY_CAP`]). Feeds [`SimError::NoConvergence`]'s
    /// `residual_norm` and the failure-forensics bundle.
    ///
    /// [`SimError::NoConvergence`]: crate::SimError::NoConvergence
    pub(crate) res_history: Vec<f64>,
    /// Sparse solver state (pattern-backed Jacobian + factorization engine),
    /// built on first use under the sparse strategy and keyed on the MNA
    /// pattern signature so same-topology runs reuse the symbolic analysis.
    pub(crate) sparse: Option<SparseState>,
    /// Per-transistor linearization cache for device-evaluation bypass
    /// (sparse strategy only; invalidated at every run entry and rebind).
    pub(crate) device_cache: Vec<DeviceLin>,
    /// Quiescent-partition latency state, built on first sparse solve of a
    /// circuit with registered partitions and keyed on the combined
    /// topology + partition signature; `None` for unpartitioned circuits.
    pub(crate) latency: Option<LatencyState>,
    /// Jacobian factorizations performed (dense or sparse; monotone).
    pub(crate) jac_refactored: u64,
    /// Newton iterations that reused a previous factorization (monotone).
    pub(crate) jac_reused: u64,
    /// Full transistor model evaluations during assembly (monotone).
    pub(crate) device_evals: u64,
    /// Transistor stamps served from the bypass cache (monotone).
    pub(crate) devices_bypassed: u64,
    /// Sparse symbolic analyses performed (monotone).
    pub(crate) sparse_analyses: u64,
    /// Sparse triangular solves performed (monotone).
    pub(crate) sparse_solves: u64,
    /// Transistor stamps replayed for devices inside a dormant latency
    /// partition (monotone).
    pub(crate) devices_dormant: u64,
    /// Latency partitions refreshed — all member devices re-evaluated in
    /// one assembly (monotone).
    pub(crate) cells_refreshed: u64,
    /// Partition refreshes forced by guard-node movement alone (monotone).
    pub(crate) guard_refreshes: u64,
}

/// Sparse linear-solve state: the pattern-backed Jacobian the MNA stamps
/// into, the analyze-once/refactorize-many LU engine, and the validity flag
/// driving modified-Newton factorization reuse.
#[derive(Debug)]
pub(crate) struct SparseState {
    /// [`Mna::pattern_signature`] of the topology this state was built for.
    pub(crate) sig: u64,
    pub(crate) jac: SparseMatrix,
    pub(crate) lu: SparseLu,
    /// True while the stored factors correspond to a recent `gmin = 0`
    /// Jacobian of this topology — the precondition for modified-Newton
    /// reuse. Cleared at run entry, on rebind, after gmin-laddered solves,
    /// and on factorization failure.
    pub(crate) factor_valid: bool,
    /// Incremental assembly state for the latency-tier transient path
    /// ([`Mna::assemble_sparse_latent`]): linear/transistor value split and
    /// per-device stamp slots over `jac`'s pattern.
    pub(crate) inc: IncrementalJac,
}

impl Default for SolverBufs {
    fn default() -> Self {
        SolverBufs {
            j: Matrix::zeros(0, 0),
            f: Vec::new(),
            rhs: Vec::new(),
            dx: Vec::new(),
            scratch: Vec::new(),
            lu: LuWorkspace::default(),
            newton_solves: 0,
            newton_iters: 0,
            res_history: Vec::new(),
            sparse: None,
            device_cache: Vec::new(),
            latency: None,
            jac_refactored: 0,
            jac_reused: 0,
            device_evals: 0,
            devices_bypassed: 0,
            sparse_analyses: 0,
            sparse_solves: 0,
            devices_dormant: 0,
            cells_refreshed: 0,
            guard_refreshes: 0,
        }
    }
}

impl SolverBufs {
    /// Sizes every buffer for an `n`-unknown system; a no-op when already
    /// at that size.
    pub(crate) fn ensure(&mut self, n: usize) {
        if self.f.len() != n {
            self.j = Matrix::zeros(n, n);
            self.f = vec![0.0; n];
            self.rhs = vec![0.0; n];
            self.dx = vec![0.0; n];
            self.scratch = vec![0.0; n];
            if self.res_history.capacity() < RES_HISTORY_CAP {
                self.res_history
                    .reserve_exact(RES_HISTORY_CAP - self.res_history.len());
            }
        }
    }

    /// Invalidates every state-carrying cache: the device-bypass
    /// linearizations and the modified-Newton factor validity. Called at
    /// every run/DC entry and on parameter rebinds, so stale operating
    /// points or factors can never leak across runs or circuits.
    pub(crate) fn invalidate_caches(&mut self) {
        for e in &mut self.device_cache {
            e.valid = false;
        }
        if let Some(s) = &mut self.sparse {
            s.factor_valid = false;
        }
        if let Some(l) = &mut self.latency {
            l.invalidate();
        }
    }

    /// Ensures sparse state matching `mna`'s topology exists, building the
    /// pattern (allocating) only when the signature changed. Same-topology
    /// runs — every sweep and Monte-Carlo loop — hit the cheap signature
    /// check and keep their symbolic analysis.
    pub(crate) fn ensure_sparse(&mut self, mna: &Mna<'_>) {
        let sig = mna.pattern_signature();
        if self.sparse.as_ref().is_some_and(|s| s.sig == sig) {
            return;
        }
        let pattern = SparsityPattern::from_entries(mna.unknown_count(), &mna.pattern_entries());
        let inc = IncrementalJac::build(mna, &pattern);
        self.sparse = Some(SparseState {
            sig,
            jac: SparseMatrix::new(pattern),
            lu: SparseLu::new(),
            factor_valid: false,
            inc,
        });
    }

    /// Ensures latency-tier state matching `mna`'s circuit exists: `None`
    /// when the circuit registered no partitions (the overwhelmingly common
    /// case — a cheap emptiness check and no allocation), otherwise built
    /// or rebuilt only when the combined topology + partition signature
    /// changed, so same-topology runs (sweeps, bisection searches) keep
    /// their state across solves.
    pub(crate) fn ensure_latency(&mut self, mna: &Mna<'_>) {
        let parts = mna.circuit().latency_partitions();
        if parts.is_empty() {
            self.latency = None;
            return;
        }
        let sig = partition_signature(mna.pattern_signature(), parts);
        if self.latency.as_ref().is_some_and(|l| l.sig == sig) {
            return;
        }
        self.latency = Some(LatencyState::build(mna.circuit(), sig));
    }

    /// (Re)factorizes the sparse Jacobian currently held in
    /// [`SparseState::jac`]: symbolic analysis on first use (or as a one-shot
    /// pivot-order refresh after a refactorization failure), the zero-alloc
    /// numeric replay otherwise. `gmin_zero` gates whether the resulting
    /// factors are eligible for modified-Newton reuse.
    pub(crate) fn sparse_refactor(
        &mut self,
        gmin_zero: bool,
    ) -> Result<(), tfet_numerics::matrix::SolveError> {
        self.jac_refactored += 1;
        // No child spans for the analyze/replay split: each worker's
        // workspace analyzes lazily on first use, so the split is
        // scheduling-dependent — only the total (this span) belongs in the
        // deterministic span tree. `solver.sparse_analyses` lives in the
        // report's `work` section for the same reason.
        let _span = tfet_obs::span("refactor");
        let mut analyses = 0u64;
        let s = self.sparse.as_mut().expect("sparse state prepared");
        let r = if !s.lu.is_analyzed() {
            analyses += 1;
            s.lu.analyze(&s.jac)
        } else {
            match s.lu.refactorize(&s.jac) {
                Ok(()) => Ok(()),
                Err(_) => {
                    analyses += 1;
                    s.lu.analyze(&s.jac)
                }
            }
        };
        s.factor_valid = r.is_ok() && gmin_zero;
        self.sparse_analyses += analyses;
        r
    }

    /// Validates a Newton update computed from a *reused* factorization
    /// against the freshly assembled Jacobian: the linear solve is accepted
    /// only when `‖J·dx + f‖∞ ≤ 0.1·‖f‖∞`, i.e. the stale factor still
    /// solves the current system to within 10%. One sparse mat-vec — cheap
    /// relative to even a single device evaluation.
    ///
    /// This is what makes factor reuse *safe* rather than heuristic: a
    /// factor carried across a step-size change (companion `C/Δt` terms
    /// moved) or from a synthetic system (the UIC hold solve pins every
    /// node with a huge conductance) produces updates that pass the
    /// `|Δv| < v_tol` test vacuously while solving the wrong system. The
    /// check catches exactly that and forces a refactorization.
    pub(crate) fn sparse_update_consistent(&mut self) -> bool {
        let s = self.sparse.as_ref().expect("sparse state prepared");
        s.jac.mul_vec(&self.dx, &mut self.scratch);
        let mut err = 0.0f64;
        for (r, v) in self.scratch.iter().zip(&self.f) {
            err = err.max((r + v).abs());
        }
        let fmax = self.f.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        err <= 0.1 * fmax + 1e-30
    }
}

/// Number of `(time, step)` entries [`StepTrace`] retains.
pub(crate) const STEP_TRACE_CAP: usize = 64;

/// Fixed-size ring buffer of the transient engine's most recent step
/// attempts — `(target time, signed step)` with rejected trials carrying a
/// negative step. Recording is two stores and an index update, cheap enough
/// to stay on unconditionally; the buffer is only read (and only allocates,
/// via `to_vec`) on the failure-forensics path.
#[derive(Debug, Clone)]
pub(crate) struct StepTrace {
    entries: [(f64, f64); STEP_TRACE_CAP],
    head: usize,
    len: usize,
}

impl Default for StepTrace {
    fn default() -> Self {
        StepTrace {
            entries: [(0.0, 0.0); STEP_TRACE_CAP],
            head: 0,
            len: 0,
        }
    }
}

impl StepTrace {
    pub(crate) fn clear(&mut self) {
        self.head = 0;
        self.len = 0;
    }

    /// Records one step attempt: `h > 0` accepted, `h < 0` rejected at
    /// `|h|`.
    pub(crate) fn record(&mut self, t: f64, h: f64) {
        self.entries[self.head] = (t, h);
        self.head = (self.head + 1) % STEP_TRACE_CAP;
        self.len = (self.len + 1).min(STEP_TRACE_CAP);
    }

    /// The retained attempts in chronological order (oldest first).
    pub(crate) fn to_vec(&self) -> Vec<(f64, f64)> {
        let start = (self.head + STEP_TRACE_CAP - self.len) % STEP_TRACE_CAP;
        (0..self.len)
            .map(|i| self.entries[(start + i) % STEP_TRACE_CAP])
            .collect()
    }
}

/// Reusable scratch space for DC and transient solves.
///
/// All buffers grow on first use and are retained across calls, so repeated
/// solves of same-sized circuits — the shape of every sweep and Monte-Carlo
/// loop in this workspace — run allocation-free after warm-up.
///
/// [`Circuit::transient`](crate::netlist::Circuit::transient) borrows a
/// thread-local workspace transparently;
/// [`Circuit::transient_with`](crate::netlist::Circuit::transient_with)
/// accepts one explicitly.
#[derive(Debug, Default)]
pub struct NewtonWorkspace {
    pub(crate) bufs: SolverBufs,
    /// Snapshot of the initial guess that the g_min ladder anchors to.
    pub(crate) anchor: Vec<f64>,
    /// Companion-model capacitor stamps for the current transient step.
    pub(crate) companions: CompanionCaps,
    /// Capacitive branches linearized at the start of the current step.
    pub(crate) branches: Vec<CapBranch>,
    /// Double buffer for re-linearizing branches at the end of a step.
    pub(crate) branches_next: Vec<CapBranch>,
    /// Branches re-linearized at the midpoint of an adaptive trial step.
    pub(crate) branches_mid: Vec<CapBranch>,
    /// Coarse (single full-step) solution of an adaptive trial step.
    pub(crate) x_coarse: Vec<f64>,
    /// Fine (two half-steps) solution of an adaptive trial step.
    pub(crate) x_fine: Vec<f64>,
    /// Sorted source-edge times for the adaptive breakpoint schedule.
    pub(crate) breakpoints: Vec<f64>,
    /// Ring buffer of the most recent transient step attempts, read by the
    /// failure-forensics path.
    pub(crate) step_trace: StepTrace,
}

impl NewtonWorkspace {
    /// Creates an empty workspace; buffers are sized on first use.
    pub fn new() -> Self {
        NewtonWorkspace::default()
    }
}

thread_local! {
    /// Per-thread workspace shared by every solve on this thread. Stored in
    /// a `Cell<Option<…>>` and *taken* for the duration of a solve: if a
    /// solve re-enters (a transient whose initial state runs a DC solve
    /// through the public API), the inner call finds the slot empty and
    /// works on a fresh temporary instead of aliasing the outer buffers.
    static WORKSPACE: Cell<Option<Box<NewtonWorkspace>>> = const { Cell::new(None) };
}

/// Runs `f` with this thread's reusable workspace.
pub(crate) fn with_workspace<R>(f: impl FnOnce(&mut NewtonWorkspace) -> R) -> R {
    WORKSPACE.with(|slot| {
        let mut ws = slot.take().unwrap_or_default();
        let out = f(&mut ws);
        slot.set(Some(ws));
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ensure_is_idempotent_at_fixed_size() {
        let mut bufs = SolverBufs::default();
        bufs.ensure(5);
        let ptr = bufs.f.as_ptr();
        bufs.ensure(5);
        assert_eq!(bufs.f.as_ptr(), ptr, "same-size ensure must not reallocate");
        bufs.ensure(7);
        assert_eq!(bufs.f.len(), 7);
        assert_eq!(bufs.j.rows(), 7);
    }

    #[test]
    fn thread_local_workspace_is_reentrant() {
        with_workspace(|outer| {
            outer.bufs.ensure(4);
            let outer_ptr = outer.bufs.f.as_ptr();
            // A nested borrow must get a distinct workspace, not panic or
            // alias the outer one.
            with_workspace(|inner| {
                inner.bufs.ensure(4);
                assert_ne!(inner.bufs.f.as_ptr(), outer_ptr);
            });
            outer.bufs.f[0] = 1.0;
        });
    }

    #[test]
    fn step_trace_wraps_and_keeps_chronological_order() {
        let mut tr = StepTrace::default();
        assert!(tr.to_vec().is_empty());
        tr.record(1.0, 0.5);
        tr.record(2.0, -0.25);
        assert_eq!(tr.to_vec(), vec![(1.0, 0.5), (2.0, -0.25)]);
        // Overflow the ring: only the newest STEP_TRACE_CAP entries stay,
        // oldest first.
        for i in 0..STEP_TRACE_CAP {
            tr.record(i as f64, 1.0);
        }
        let v = tr.to_vec();
        assert_eq!(v.len(), STEP_TRACE_CAP);
        assert_eq!(v[0], (0.0, 1.0));
        assert_eq!(v[STEP_TRACE_CAP - 1], ((STEP_TRACE_CAP - 1) as f64, 1.0));
        tr.clear();
        assert!(tr.to_vec().is_empty());
    }

    #[test]
    fn thread_local_workspace_persists_across_calls() {
        let first = with_workspace(|ws| {
            ws.bufs.ensure(6);
            ws.bufs.f.as_ptr() as usize
        });
        let second = with_workspace(|ws| ws.bufs.f.as_ptr() as usize);
        assert_eq!(first, second, "buffers must be reused between solves");
    }
}
