//! Circuit construction: nodes and elements.
//!
//! A [`Circuit`] is a flat netlist of resistors, capacitors, independent
//! sources, and three-terminal transistors. Nodes are interned by name;
//! [`Circuit::GND`] is the reference node. The builder methods mirror a
//! SPICE deck line-for-line, so the SRAM cell generators in `tfet-sram`
//! read like netlists.

use crate::latency::CellPartition;
use crate::waveform::Waveform;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use tfet_devices::model::DeviceModel;

/// Identifier of a circuit node. `NodeId(0)` is ground.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// Index into the node table (0 = ground).
    pub fn index(self) -> usize {
        self.0
    }

    /// Whether this is the ground/reference node.
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }
}

/// Identifier of an independent voltage source, used to retrieve branch
/// currents and to swap stimulus waveforms between experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SourceId(pub(crate) usize);

/// A resistor between two nodes.
#[derive(Debug, Clone)]
pub struct Resistor {
    /// First terminal.
    pub a: NodeId,
    /// Second terminal.
    pub b: NodeId,
    /// Resistance, Ω (must be positive).
    pub ohms: f64,
}

/// A capacitor between two nodes.
#[derive(Debug, Clone)]
pub struct Capacitor {
    /// First terminal.
    pub a: NodeId,
    /// Second terminal.
    pub b: NodeId,
    /// Capacitance, F (must be positive).
    pub farads: f64,
}

/// An independent voltage source. The branch current unknown is defined as
/// flowing from `plus` through the source to `minus`.
#[derive(Debug, Clone)]
pub struct VSource {
    /// Source name (reporting only).
    pub name: String,
    /// Positive terminal.
    pub plus: NodeId,
    /// Negative terminal.
    pub minus: NodeId,
    /// Stimulus.
    pub wave: Waveform,
}

/// An independent current source driving current from `from` to `to`
/// through the source (i.e. it pushes current *into* node `to`).
#[derive(Debug, Clone)]
pub struct ISource {
    /// Node the current is pulled from.
    pub from: NodeId,
    /// Node the current is pushed into.
    pub to: NodeId,
    /// Stimulus, A.
    pub wave: Waveform,
}

/// A three-terminal transistor bound to a device model.
#[derive(Clone)]
pub struct Transistor {
    /// Instance name (reporting only).
    pub name: String,
    /// Device model (shared, per-µm normalized).
    pub model: Arc<dyn DeviceModel>,
    /// Drain node.
    pub d: NodeId,
    /// Gate node.
    pub g: NodeId,
    /// Source node.
    pub s: NodeId,
    /// Gate width, µm (must be positive).
    pub width_um: f64,
}

impl fmt::Debug for Transistor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Transistor")
            .field("name", &self.name)
            .field("model", &self.model.name())
            .field("d", &self.d)
            .field("g", &self.g)
            .field("s", &self.s)
            .field("width_um", &self.width_um)
            .finish()
    }
}

impl Transistor {
    /// Drain current of this instance (A) at the given node voltages.
    pub fn ids(&self, vg: f64, vd: f64, vs: f64) -> f64 {
        self.width_um * self.model.ids_per_um(vg, vd, vs)
    }
}

/// A complete netlist.
///
/// # Examples
///
/// See the crate-level example; the SRAM generators in `tfet-sram` are the
/// primary in-tree users.
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    node_names: Vec<String>,
    node_index: HashMap<String, NodeId>,
    /// Resistors.
    pub(crate) resistors: Vec<Resistor>,
    /// Capacitors.
    pub(crate) capacitors: Vec<Capacitor>,
    /// Voltage sources.
    pub(crate) vsources: Vec<VSource>,
    /// Current sources.
    pub(crate) isources: Vec<ISource>,
    /// Transistors.
    pub(crate) transistors: Vec<Transistor>,
    /// Quiescent-latency partitions (one per bitcell in an array netlist);
    /// empty for circuits that don't opt in.
    pub(crate) latency_partitions: Vec<CellPartition>,
}

impl Circuit {
    /// The ground / reference node.
    pub const GND: NodeId = NodeId(0);

    /// Creates an empty circuit (ground pre-registered as node `"0"`).
    pub fn new() -> Self {
        let mut c = Circuit {
            node_names: Vec::new(),
            node_index: HashMap::new(),
            resistors: Vec::new(),
            capacitors: Vec::new(),
            vsources: Vec::new(),
            isources: Vec::new(),
            transistors: Vec::new(),
            latency_partitions: Vec::new(),
        };
        let gnd = c.intern("0");
        debug_assert_eq!(gnd, Circuit::GND);
        c
    }

    fn intern(&mut self, name: &str) -> NodeId {
        if let Some(&id) = self.node_index.get(name) {
            return id;
        }
        let id = NodeId(self.node_names.len());
        self.node_names.push(name.to_string());
        self.node_index.insert(name.to_string(), id);
        id
    }

    /// Returns the node with the given name, creating it if new.
    /// `"0"` and `"gnd"` both refer to ground.
    pub fn node(&mut self, name: &str) -> NodeId {
        if name == "gnd" || name == "GND" {
            return Circuit::GND;
        }
        self.intern(name)
    }

    /// Looks up an existing node by name.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        if name == "gnd" || name == "GND" {
            return Some(Circuit::GND);
        }
        self.node_index.get(name).copied()
    }

    /// The name of a node.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this circuit.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.node_names[id.0]
    }

    /// Total number of nodes including ground.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// Adds a resistor.
    ///
    /// # Panics
    ///
    /// Panics if `ohms <= 0` or the terminals coincide.
    pub fn resistor(&mut self, a: NodeId, b: NodeId, ohms: f64) -> &mut Self {
        assert!(ohms > 0.0, "resistance must be positive");
        assert_ne!(a, b, "resistor terminals must differ");
        self.resistors.push(Resistor { a, b, ohms });
        self
    }

    /// Adds a capacitor.
    ///
    /// # Panics
    ///
    /// Panics if `farads <= 0` or the terminals coincide.
    pub fn capacitor(&mut self, a: NodeId, b: NodeId, farads: f64) -> &mut Self {
        assert!(farads > 0.0, "capacitance must be positive");
        assert_ne!(a, b, "capacitor terminals must differ");
        self.capacitors.push(Capacitor { a, b, farads });
        self
    }

    /// Adds an independent voltage source and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if the terminals coincide.
    pub fn vsource(&mut self, name: &str, plus: NodeId, minus: NodeId, wave: Waveform) -> SourceId {
        assert_ne!(plus, minus, "source terminals must differ");
        self.vsources.push(VSource {
            name: name.to_string(),
            plus,
            minus,
            wave,
        });
        SourceId(self.vsources.len() - 1)
    }

    /// Replaces the stimulus of an existing voltage source — how experiment
    /// drivers re-run one netlist under many waveforms.
    ///
    /// # Panics
    ///
    /// Panics if the id is stale.
    pub fn set_vsource_wave(&mut self, id: SourceId, wave: Waveform) {
        self.vsources[id.0].wave = wave;
    }

    /// The voltage source behind an id.
    pub fn vsource_info(&self, id: SourceId) -> &VSource {
        &self.vsources[id.0]
    }

    /// Number of voltage sources.
    pub fn vsource_count(&self) -> usize {
        self.vsources.len()
    }

    /// Adds an independent current source (pushes current into `to`).
    pub fn isource(&mut self, from: NodeId, to: NodeId, wave: Waveform) -> &mut Self {
        self.isources.push(ISource { from, to, wave });
        self
    }

    /// Adds a transistor.
    ///
    /// # Panics
    ///
    /// Panics if `width_um <= 0`.
    pub fn transistor(
        &mut self,
        name: &str,
        model: Arc<dyn DeviceModel>,
        d: NodeId,
        g: NodeId,
        s: NodeId,
        width_um: f64,
    ) -> &mut Self {
        assert!(width_um > 0.0, "transistor width must be positive");
        self.transistors.push(Transistor {
            name: name.to_string(),
            model,
            d,
            g,
            s,
            width_um,
        });
        self
    }

    /// The transistors in insertion order.
    pub fn transistors(&self) -> &[Transistor] {
        &self.transistors
    }

    /// Replaces the device model and gate width of an existing transistor —
    /// the device-bind primitive behind [`CompiledCircuit`]: a
    /// process-variation sample or a β re-sizing swaps the evaluator and
    /// width of a stamped instance while its terminals (and therefore the
    /// MNA sparsity pattern) stay frozen.
    ///
    /// [`CompiledCircuit`]: crate::CompiledCircuit
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range or `width_um <= 0`.
    pub fn set_transistor_device(
        &mut self,
        index: usize,
        model: Arc<dyn DeviceModel>,
        width_um: f64,
    ) {
        assert!(width_um > 0.0, "transistor width must be positive");
        let t = &mut self.transistors[index];
        t.model = model;
        t.width_um = width_um;
    }

    /// Registers quiescent-latency partitions — groups of transistors (one
    /// per bitcell) that the sparse transient solver may skip as a unit
    /// while every node in `watch`/`guard` stays within tolerance of the
    /// group's last refresh point (see [`crate::latency`]).
    ///
    /// Partitions are advisory: an empty registration (the default) leaves
    /// the solver on the plain per-device bypass path. For the dormancy
    /// decision to be sound, every terminal of every listed device must
    /// appear in that partition's `watch ∪ guard` or be ground.
    ///
    /// # Panics
    ///
    /// Panics if a device index is out of range, a device is claimed by two
    /// partitions, or a node does not belong to this circuit.
    pub fn set_latency_partitions(&mut self, partitions: Vec<CellPartition>) {
        let n_dev = self.transistors.len();
        let n_nodes = self.node_names.len();
        let mut owner = vec![false; n_dev];
        for (k, p) in partitions.iter().enumerate() {
            for &d in &p.devices {
                assert!(
                    d < n_dev,
                    "partition {k} references transistor {d}, but only {n_dev} exist"
                );
                assert!(
                    !std::mem::replace(&mut owner[d], true),
                    "transistor {d} claimed by more than one latency partition"
                );
            }
            for &n in p.watch.iter().chain(&p.guard) {
                assert!(
                    n.index() < n_nodes,
                    "partition {k} references a foreign node"
                );
            }
        }
        self.latency_partitions = partitions;
    }

    /// The registered quiescent-latency partitions (empty when none).
    pub fn latency_partitions(&self) -> &[CellPartition] {
        &self.latency_partitions
    }

    /// Number of elements of all types.
    pub fn element_count(&self) -> usize {
        self.resistors.len()
            + self.capacitors.len()
            + self.vsources.len()
            + self.isources.len()
            + self.transistors.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfet_devices::NTfet;

    #[test]
    fn ground_is_node_zero() {
        let mut c = Circuit::new();
        assert_eq!(c.node("gnd"), Circuit::GND);
        assert_eq!(c.node("0"), Circuit::GND);
        assert!(Circuit::GND.is_ground());
    }

    #[test]
    fn nodes_are_interned_by_name() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let a2 = c.node("a");
        let b = c.node("b");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(c.node_count(), 3); // gnd, a, b
        assert_eq!(c.node_name(a), "a");
        assert_eq!(c.find_node("b"), Some(b));
        assert_eq!(c.find_node("zz"), None);
    }

    #[test]
    fn builder_methods_chain_and_count() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.resistor(a, b, 100.0).capacitor(b, Circuit::GND, 1e-15);
        let v = c.vsource("V1", a, Circuit::GND, Waveform::dc(1.0));
        c.transistor("M1", Arc::new(NTfet::nominal()), a, b, Circuit::GND, 0.1);
        assert_eq!(c.element_count(), 4);
        assert_eq!(c.vsource_info(v).name, "V1");
        assert_eq!(c.transistors().len(), 1);
    }

    #[test]
    fn waveform_swap() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let v = c.vsource("V1", a, Circuit::GND, Waveform::dc(1.0));
        c.set_vsource_wave(v, Waveform::dc(0.5));
        assert_eq!(c.vsource_info(v).wave.value(0.0), 0.5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_resistor_rejected() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.resistor(a, Circuit::GND, 0.0);
    }

    #[test]
    #[should_panic(expected = "differ")]
    fn self_loop_capacitor_rejected() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.capacitor(a, a, 1e-15);
    }

    #[test]
    fn transistor_instance_scales_by_width() {
        let mut c = Circuit::new();
        let d = c.node("d");
        c.transistor("M1", Arc::new(NTfet::nominal()), d, d, Circuit::GND, 2.0);
        let t = &c.transistors()[0];
        let per_um = t.model.ids_per_um(1.0, 1.0, 0.0);
        assert!((t.ids(1.0, 1.0, 0.0) - 2.0 * per_um).abs() < 1e-20);
        assert!(format!("{t:?}").contains("ntfet"));
    }
}
