//! Time-dependent source stimuli.
//!
//! Every assist technique in the paper is, electrically, a reshaped source
//! waveform (a lowered supply during the write window, a raised ground
//! during the read window, …), so the waveform layer is where the §4 study
//! is ultimately expressed.

use tfet_numerics::Lut1d;

/// A source stimulus: value as a function of time.
#[derive(Debug, Clone, PartialEq)]
pub enum Waveform {
    /// Constant value.
    Dc(f64),
    /// Piecewise-linear interpolation through `(time, value)` breakpoints;
    /// clamps to the first/last value outside the range.
    Pwl(Lut1d),
}

impl Waveform {
    /// A constant source.
    pub fn dc(value: f64) -> Self {
        Waveform::Dc(value)
    }

    /// A piecewise-linear source through the given breakpoints.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two points are given or times are not strictly
    /// increasing.
    pub fn pwl(points: &[(f64, f64)]) -> Self {
        assert!(points.len() >= 2, "PWL needs at least two breakpoints");
        let times: Vec<f64> = points.iter().map(|p| p.0).collect();
        let values: Vec<f64> = points.iter().map(|p| p.1).collect();
        let lut = Lut1d::new(times, values).expect("PWL breakpoints must increase in time");
        Waveform::Pwl(lut)
    }

    /// A single pulse from `base` to `level`:
    ///
    /// ```text
    /// base ----+        +---- base
    ///          /¯¯¯¯¯¯¯¯\
    ///      t_start     t_start + width
    /// ```
    ///
    /// with linear edges of `t_edge` on each side. The pulse is *inside*
    /// `[t_start, t_start + width]`; edges eat into the plateau, matching
    /// how a wordline pulse of width `w` is normally specified.
    ///
    /// # Panics
    ///
    /// Panics if `width <= 2 * t_edge`, or any duration is non-positive.
    pub fn pulse(base: f64, level: f64, t_start: f64, width: f64, t_edge: f64) -> Self {
        assert!(t_edge > 0.0, "edge time must be positive");
        assert!(
            width > 2.0 * t_edge,
            "pulse width {width} must exceed both edges (2×{t_edge})"
        );
        assert!(t_start >= 0.0, "pulse must start at t >= 0");
        let eps = t_edge * 1e-6;
        Waveform::pwl(&[
            (0.0 - eps, base),
            (t_start.max(eps), base),
            (t_start + t_edge, level),
            (t_start + width - t_edge, level),
            (t_start + width, base),
        ])
    }

    /// A single linear step from `from` to `to` starting at `t_start`,
    /// lasting `t_edge`, and holding afterwards.
    ///
    /// # Panics
    ///
    /// Panics if `t_edge <= 0`.
    pub fn step(from: f64, to: f64, t_start: f64, t_edge: f64) -> Self {
        assert!(t_edge > 0.0, "edge time must be positive");
        let eps = t_edge * 1e-6;
        Waveform::pwl(&[
            (0.0 - eps, from),
            (t_start.max(eps), from),
            (t_start + t_edge, to),
        ])
    }

    /// Whether this stimulus is constant in time. Compiled experiments use
    /// this to skip rebinding sources whose waveform cannot depend on the
    /// swept parameter (an unassisted rail stays DC at every pulse width).
    pub fn is_dc(&self) -> bool {
        matches!(self, Waveform::Dc(_))
    }

    /// The stimulus value at time `t` (seconds).
    pub fn value(&self, t: f64) -> f64 {
        match self {
            Waveform::Dc(v) => *v,
            Waveform::Pwl(lut) => lut.eval(t),
        }
    }

    /// The value at `t = 0`, used as the DC level for initial operating
    /// points.
    pub fn initial(&self) -> f64 {
        self.value(0.0)
    }

    /// Breakpoint times (empty for DC) — the transient engine refines its
    /// step grid so edges land on steps exactly.
    pub fn breakpoints(&self) -> Vec<f64> {
        let mut out = Vec::new();
        self.breakpoints_into(&mut out);
        out
    }

    /// Appends this waveform's breakpoint times to `out` without allocating
    /// a fresh vector — the adaptive transient engine harvests every
    /// source's edges into one reusable schedule buffer per run.
    pub fn breakpoints_into(&self, out: &mut Vec<f64>) {
        if let Waveform::Pwl(lut) = self {
            out.extend_from_slice(lut.axis());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_is_constant() {
        let w = Waveform::dc(0.8);
        assert_eq!(w.value(0.0), 0.8);
        assert_eq!(w.value(1.0), 0.8);
        assert_eq!(w.initial(), 0.8);
        assert!(w.breakpoints().is_empty());
        assert!(w.is_dc());
    }

    #[test]
    fn pwl_interpolates_and_clamps() {
        let w = Waveform::pwl(&[(0.0, 0.0), (1e-9, 1.0)]);
        assert!(!w.is_dc());
        assert_eq!(w.value(-1.0), 0.0);
        assert!((w.value(0.5e-9) - 0.5).abs() < 1e-12);
        assert_eq!(w.value(2e-9), 1.0);
    }

    #[test]
    fn pulse_shape() {
        let w = Waveform::pulse(0.8, 0.0, 100e-12, 200e-12, 10e-12);
        assert_eq!(w.value(0.0), 0.8); // before
        assert_eq!(w.value(50e-12), 0.8); // before start
        assert!((w.value(110e-12) - 0.0).abs() < 1e-9); // after leading edge
        assert!((w.value(200e-12) - 0.0).abs() < 1e-9); // plateau
        assert!((w.value(285e-12) - 0.0).abs() < 1e-9); // before trailing edge
        assert_eq!(w.value(400e-12), 0.8); // after
                                           // Mid leading edge.
        assert!((w.value(105e-12) - 0.4).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "must exceed")]
    fn pulse_narrower_than_edges_rejected() {
        Waveform::pulse(0.0, 1.0, 0.0, 10e-12, 10e-12);
    }

    #[test]
    fn step_shape() {
        let w = Waveform::step(0.8, 0.56, 1e-9, 50e-12);
        assert_eq!(w.value(0.0), 0.8);
        assert!((w.value(1.025e-9) - 0.68).abs() < 1e-9);
        assert_eq!(w.value(2e-9), 0.56);
    }

    #[test]
    fn pulse_starting_at_zero_is_legal() {
        let w = Waveform::pulse(0.8, 0.0, 0.0, 100e-12, 10e-12);
        // Starts at base and immediately ramps.
        assert!(w.value(0.0) > 0.7);
        assert!((w.value(50e-12) - 0.0).abs() < 1e-9);
    }

    #[test]
    fn breakpoints_reported() {
        let w = Waveform::pulse(0.0, 1.0, 1e-9, 100e-12, 10e-12);
        let bp = w.breakpoints();
        assert_eq!(bp.len(), 5);
        assert!(bp.windows(2).all(|w| w[0] < w[1]));
    }
}
