//! Transient waveform storage and measurements.
//!
//! [`TransientResult`] holds every node voltage at every time point and
//! provides the measurements the SRAM metrics are built from: interpolated
//! values, threshold crossings, and windowed minimum node differences (the
//! paper's dynamic read noise margin is `min over the read window of
//! `V(q) − V(qb)`).

use crate::netlist::NodeId;

/// Solver-effort statistics of one transient run — always collected (a few
/// counter increments per step), so benches and tests can assert effort
/// reductions directly instead of inferring them from wall-clock noise.
///
/// # Per-run vs cumulative semantics
///
/// A [`TransientResult::stats`] is strictly **per-run**: the engine
/// snapshots the workspace's monotone effort counters at entry and stores
/// the difference at exit, so the numbers describe that run alone no matter
/// how many runs shared the workspace before it. Two views aggregate:
///
/// * [`absorb`](SolveStats::absorb) — caller-driven: sum any set of per-run
///   stats (a `WL_crit` search, a Monte-Carlo batch).
/// * [`CompiledCircuit::lifetime_stats`] — instance-driven: every
///   successful run of one compiled circuit, absorbed automatically.
///
/// `circuit_builds`/`param_binds` are attributed to the *next* run after
/// the compile/bind happens, so per-run values can be 0 while the lifetime
/// view still accounts for every build and bind exactly once.
///
/// [`CompiledCircuit::lifetime_stats`]: crate::CompiledCircuit::lifetime_stats
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Time steps accepted (recorded in the waveform store).
    pub accepted_steps: u64,
    /// Adaptive trial steps rejected by the local-truncation-error test
    /// or by a Newton failure at the attempted step size.
    pub rejected_steps: u64,
    /// Newton solves started, including the initial-state solve and both
    /// sides of every adaptive step-doubling comparison.
    pub newton_solves: u64,
    /// Newton iterations performed (each is one Jacobian assembly plus one
    /// LU factorization — the unit of solver work).
    pub newton_iters: u64,
    /// Circuits compiled for this run (netlist construction + MNA pattern
    /// derivation). The convenience entry points on [`Circuit`] count one
    /// build per run — rebuild-per-run semantics — while a
    /// [`CompiledCircuit`] counts its single compile on the first run only,
    /// so aggregated stats expose the build/run ratio directly.
    ///
    /// [`Circuit`]: crate::Circuit
    /// [`CompiledCircuit`]: crate::CompiledCircuit
    pub circuit_builds: u64,
    /// Parameter binds (waveform or device rebinds on a compiled circuit)
    /// applied since the previous run.
    pub param_binds: u64,
    /// Transient runs executed (1 per [`TransientResult`]; additive under
    /// [`absorb`](SolveStats::absorb)).
    pub runs: u64,
    /// Rescue-ladder rungs attempted after a terminal per-step Newton
    /// failure (each rung subdivides the failing step; see the transient
    /// module docs). Nonzero only when a step failed outright at its
    /// requested size.
    pub rescue_attempts: u64,
    /// Steps salvaged by the rescue ladder — accepted steps that would have
    /// aborted the run before the ladder existed.
    pub rescued_steps: u64,
    /// Jacobian factorizations performed. Dense strategy: one per Newton
    /// iteration by construction. Sparse strategy: only on cache-cold
    /// iterations and convergence stalls — `newton_iters − jac_refactored`
    /// is the modified-Newton saving.
    pub jac_refactored: u64,
    /// Newton iterations that reused a retained factorization instead of
    /// refactorizing (sparse strategy only; always 0 under dense).
    pub jac_reused: u64,
    /// Full transistor model evaluations during Jacobian/residual assembly.
    /// Dense strategy: `newton_iters × transistor_count` by construction.
    pub device_evals: u64,
    /// Transistor stamps served from the bypass cache instead of a model
    /// evaluation (sparse strategy only; always 0 under dense).
    pub devices_bypassed: u64,
    /// Transistor stamps replayed because their whole latency partition was
    /// dormant (sparse strategy with registered partitions and
    /// [`DeviceLatency::On`]; 0 otherwise).
    ///
    /// [`DeviceLatency::On`]: crate::DeviceLatency::On
    pub devices_dormant: u64,
    /// Latency partitions refreshed — every member device re-evaluated in
    /// one coherent assembly (see [`crate::latency`]).
    pub cells_refreshed: u64,
    /// The subset of `cells_refreshed` forced purely by guard-node movement
    /// (an adjacent wordline/bitline moved while the cell's own storage
    /// nodes were still quiet) — the counter proving the correctness guard
    /// fires.
    pub guard_refreshes: u64,
    /// Whether a stop event ended the run before `t_stop`.
    pub early_exit: bool,
}

impl SolveStats {
    /// Accumulates another run's counters into this one (`early_exit` ORs),
    /// for callers aggregating effort across many transients — e.g. one
    /// `WL_crit` search.
    pub fn absorb(&mut self, other: &SolveStats) {
        self.accepted_steps += other.accepted_steps;
        self.rejected_steps += other.rejected_steps;
        self.newton_solves += other.newton_solves;
        self.newton_iters += other.newton_iters;
        self.circuit_builds += other.circuit_builds;
        self.param_binds += other.param_binds;
        self.runs += other.runs;
        self.rescue_attempts += other.rescue_attempts;
        self.rescued_steps += other.rescued_steps;
        self.jac_refactored += other.jac_refactored;
        self.jac_reused += other.jac_reused;
        self.device_evals += other.device_evals;
        self.devices_bypassed += other.devices_bypassed;
        self.devices_dormant += other.devices_dormant;
        self.cells_refreshed += other.cells_refreshed;
        self.guard_refreshes += other.guard_refreshes;
        self.early_exit |= other.early_exit;
    }
}

/// Recorded node-voltage waveforms of a transient run.
///
/// Samples are stored in one flat row-major buffer (`node_count` voltages
/// per time point) so that recording a step never allocates: the transient
/// loop pre-sizes the buffer for the whole run and each push is a plain
/// append into reserved capacity.
#[derive(Debug, Clone)]
pub struct TransientResult {
    times: Vec<f64>,
    /// Flattened `[step][node_index]` voltages, including ground at node
    /// index 0 (always 0.0); the row stride is `node_count`.
    data: Vec<f64>,
    node_count: usize,
    /// Solver-effort counters for **this run only** (snapshot-differenced
    /// around the run, never cumulative across a shared workspace); see the
    /// [`SolveStats`] docs for the aggregated views.
    pub stats: SolveStats,
    /// Per-partition dormancy telemetry for this run, indexed like the
    /// circuit's registered [`CellPartition`](crate::CellPartition) list
    /// (empty when the circuit has no partitions). Accumulated serially in
    /// the latency tier's decide phase, so bit-identical at any
    /// device-evaluation thread count.
    pub partitions: Vec<crate::latency::PartitionTelemetry>,
}

impl TransientResult {
    pub(crate) fn with_capacity(node_count: usize, steps: usize) -> Self {
        TransientResult {
            times: Vec::with_capacity(steps),
            data: Vec::with_capacity(steps * node_count),
            node_count,
            stats: SolveStats::default(),
            partitions: Vec::new(),
        }
    }

    pub(crate) fn push(&mut self, t: f64, volts: impl Fn(NodeId) -> f64) {
        self.times.push(t);
        self.data
            .extend((0..self.node_count).map(|i| volts(NodeId(i))));
    }

    /// The voltage row recorded at step `k`.
    #[inline]
    fn row(&self, k: usize) -> &[f64] {
        &self.data[k * self.node_count..(k + 1) * self.node_count]
    }

    /// The time axis, s.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Number of recorded points.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// The waveform of one node as a vector aligned with [`times`].
    ///
    /// [`times`]: TransientResult::times
    pub fn trace(&self, node: NodeId) -> Vec<f64> {
        let idx = node.index();
        (0..self.len()).map(|k| self.row(k)[idx]).collect()
    }

    /// Linearly interpolated node voltage at time `t` (clamped to the run).
    ///
    /// # Panics
    ///
    /// Panics if the result is empty.
    pub fn voltage_at(&self, node: NodeId, t: f64) -> f64 {
        assert!(!self.is_empty(), "empty transient result");
        let idx = node.index();
        if t <= self.times[0] {
            return self.row(0)[idx];
        }
        if t >= *self.times.last().expect("nonempty") {
            return self.row(self.len() - 1)[idx];
        }
        let k = self.times.partition_point(|&x| x <= t) - 1;
        let (t0, t1) = (self.times[k], self.times[k + 1]);
        let (v0, v1) = (self.row(k)[idx], self.row(k + 1)[idx]);
        let u = (t - t0) / (t1 - t0);
        v0 * (1.0 - u) + v1 * u
    }

    /// The node voltage at the final time point.
    ///
    /// # Panics
    ///
    /// Panics if the result is empty.
    pub fn final_voltage(&self, node: NodeId) -> f64 {
        assert!(!self.is_empty(), "empty transient result");
        self.row(self.len() - 1)[node.index()]
    }

    /// The first time ≥ `t_after` at which the node crosses `level` in the
    /// given direction (linear interpolation between samples), or `None`.
    pub fn crossing(&self, node: NodeId, level: f64, rising: bool, t_after: f64) -> Option<f64> {
        let idx = node.index();
        for k in 0..self.times.len().saturating_sub(1) {
            if self.times[k + 1] < t_after {
                continue;
            }
            let (v0, v1) = (self.row(k)[idx], self.row(k + 1)[idx]);
            let crossed = if rising {
                v0 < level && v1 >= level
            } else {
                v0 > level && v1 <= level
            };
            if crossed {
                let u = (level - v0) / (v1 - v0);
                let t = self.times[k] + u * (self.times[k + 1] - self.times[k]);
                if t >= t_after {
                    return Some(t);
                }
            }
        }
        None
    }

    /// Minimum of `V(a) − V(b)` over the window `[t_from, t_to]` — the
    /// primitive behind the paper's dynamic read noise margin.
    ///
    /// # Panics
    ///
    /// Panics if the result is empty or the window selects no samples.
    pub fn min_difference(&self, a: NodeId, b: NodeId, t_from: f64, t_to: f64) -> f64 {
        let (ia, ib) = (a.index(), b.index());
        let mut min = f64::INFINITY;
        for (k, &t) in self.times.iter().enumerate() {
            if t < t_from || t > t_to {
                continue;
            }
            let row = self.row(k);
            min = min.min(row[ia] - row[ib]);
        }
        assert!(
            min.is_finite(),
            "window [{t_from:e}, {t_to:e}] selects no samples"
        );
        min
    }

    /// Maximum voltage of a node over the whole run.
    ///
    /// # Panics
    ///
    /// Panics if the result is empty.
    pub fn max_voltage(&self, node: NodeId) -> f64 {
        let idx = node.index();
        (0..self.len())
            .map(|k| self.row(k)[idx])
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Minimum voltage of a node over the whole run.
    ///
    /// # Panics
    ///
    /// Panics if the result is empty.
    pub fn min_voltage(&self, node: NodeId) -> f64 {
        let idx = node.index();
        (0..self.len())
            .map(|k| self.row(k)[idx])
            .fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_result() -> TransientResult {
        // Node 1 ramps 0→1 V over 10 ns; node 2 stays at 0.25 V.
        let mut r = TransientResult::with_capacity(3, 11);
        for k in 0..=10 {
            let t = k as f64 * 1e-9;
            r.push(t, |n| match n.index() {
                1 => k as f64 * 0.1,
                2 => 0.25,
                _ => 0.0,
            });
        }
        r
    }

    #[test]
    fn interpolation_between_samples() {
        let r = ramp_result();
        let n1 = NodeId(1);
        assert!((r.voltage_at(n1, 2.5e-9) - 0.25).abs() < 1e-12);
        assert_eq!(r.voltage_at(n1, -1.0), 0.0);
        assert_eq!(r.voltage_at(n1, 1.0), 1.0);
        assert_eq!(r.final_voltage(n1), 1.0);
        assert_eq!(r.len(), 11);
        assert!(!r.is_empty());
    }

    #[test]
    fn crossing_detection_rising_and_falling() {
        let r = ramp_result();
        let n1 = NodeId(1);
        let t = r.crossing(n1, 0.55, true, 0.0).unwrap();
        assert!((t - 5.5e-9).abs() < 1e-12);
        // No falling crossing on a rising ramp.
        assert_eq!(r.crossing(n1, 0.5, false, 0.0), None);
        // t_after skips early crossings.
        assert_eq!(r.crossing(n1, 0.15, true, 5e-9), None);
    }

    #[test]
    fn min_difference_over_window() {
        let r = ramp_result();
        let (n1, n2) = (NodeId(1), NodeId(2));
        // v1 − v2 over the full run dips to −0.25 at t = 0.
        assert!((r.min_difference(n1, n2, 0.0, 10e-9) + 0.25).abs() < 1e-12);
        // Over the tail window the minimum is at t = 5 ns: 0.5 − 0.25.
        assert!((r.min_difference(n1, n2, 5e-9, 10e-9) - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "selects no samples")]
    fn empty_window_panics() {
        let r = ramp_result();
        r.min_difference(NodeId(1), NodeId(2), 20e-9, 30e-9);
    }

    #[test]
    fn extrema() {
        let r = ramp_result();
        assert_eq!(r.max_voltage(NodeId(1)), 1.0);
        assert_eq!(r.min_voltage(NodeId(1)), 0.0);
        assert_eq!(r.max_voltage(NodeId(2)), 0.25);
    }

    #[test]
    fn ground_trace_is_zero() {
        let r = ramp_result();
        assert!(r.trace(NodeId(0)).iter().all(|&v| v == 0.0));
    }
}
