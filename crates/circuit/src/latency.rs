//! Quiescent-partition device latency: cell-level dormancy tiers for
//! array-scale transients, plus deterministic parallel device evaluation.
//!
//! A bitcell array transient is dominated by devices that do nothing: during
//! a write, every row but one holds its state at sub-µV drift, yet a naive
//! Newton loop re-evaluates all R×C×6 transistor models each iteration. The
//! PR-6 per-device bypass already skips a model call when a device's own
//! terminals sit still; this module generalizes it to a **partition tier**:
//! the netlist registers groups of devices (one [`CellPartition`] per
//! bitcell) together with the nodes whose movement matters to them, and
//! assembly skips *the whole cell* — decision per cell, not per device —
//! while every terminal stays within tolerance of the cell's last refresh
//! point.
//!
//! Two node lists drive the decision, with different tolerances:
//!
//! * `watch` — the cell-internal storage nodes, checked at the proven
//!   per-device bypass window (`BYPASS_VTOL`, 150 µV);
//! * `guard` — the shared wordline/bitline/rail nodes, checked at
//!   [`GUARD_VTOL`] (16 × 150 µV = 2.4 mV; see its doc for why the replay's
//!   second-order error lets this sit looser than the watch window). When an
//!   adjacent line moves past it — a wordline rising toward a dormant cell, a
//!   bitline discharging beside it — the guard trips and the cell is
//!   force-refreshed *before* any stamp is produced from stale
//!   linearizations.
//!
//! Dormant cells are stamped from their cached first-order linearizations
//! (the same replay as the per-device bypass, so the error stays second
//! order in the movement); refreshed cells re-evaluate **all** their devices
//! at once, which re-anchors both the cache and the reference point the next
//! dormancy decision compares against. Drift therefore accumulates against a
//! fixed refresh point and can never creep past tolerance unnoticed.
//!
//! Orthogonally, the module owns the process-wide knobs for this tier:
//! [`DeviceLatency`] (the on/off switch, mirrored per-call in
//! [`NewtonOpts`](crate::NewtonOpts) and
//! [`TransientSpec`](crate::TransientSpec) so tests can compare both modes
//! without racing a global), and [`set_assembly_threads`] for the
//! deterministic parallel device-evaluation fan-out (per-device results are
//! pure and merged serially in fixed netlist order, so thread count changes
//! wall-clock only, never bits).

use crate::mna::BYPASS_VTOL;
use crate::netlist::{Circuit, NodeId};
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use tfet_numerics::GroupedIndices;

/// Whether the quiescent-partition latency tier (and the per-device bypass
/// cache beneath it) is active for a solve.
///
/// `Off` is the clean full-evaluation baseline: every transistor model is
/// evaluated on every Newton iteration, exactly like the dense reference
/// path. The figure CSV identity gate in `scripts/check.sh` diffs the two
/// modes byte-for-byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceLatency {
    /// Dormancy tier + device bypass active (default).
    On,
    /// Full device evaluation every iteration (cross-check baseline).
    Off,
}

/// Process-wide default latency mode (0 = On, 1 = Off), consulted by
/// `DeviceLatency::default()` and therefore by every option struct built
/// with `..Default::default()`.
static DEFAULT_LATENCY: AtomicU8 = AtomicU8::new(0);

impl DeviceLatency {
    /// Sets the process-wide default latency mode.
    ///
    /// Intended for binary startup (the `figures --latency-off` cross-check
    /// flag) — flipping it mid-run races against concurrently built option
    /// structs, so don't. Tests should set the per-spec field
    /// ([`TransientSpec::with_device_latency`]) instead.
    ///
    /// [`TransientSpec::with_device_latency`]: crate::TransientSpec::with_device_latency
    pub fn set_process_default(mode: DeviceLatency) {
        DEFAULT_LATENCY.store(mode as u8, Ordering::Relaxed);
    }

    /// The current process-wide default latency mode.
    pub fn process_default() -> DeviceLatency {
        match DEFAULT_LATENCY.load(Ordering::Relaxed) {
            1 => DeviceLatency::Off,
            _ => DeviceLatency::On,
        }
    }
}

impl Default for DeviceLatency {
    fn default() -> Self {
        DeviceLatency::process_default()
    }
}

/// Movement tolerance on `guard` nodes — the shared wordline/bitline/rail
/// nodes adjacent to a partition. A dormant cell's devices are still
/// *replayed* from their cached linearization, which is first-order exact in
/// every terminal voltage including the shared lines — the guard only bounds
/// the *second-order* replay error, so it can be far looser than the Newton
/// tolerance. 2.4 mV keeps that error below ~0.3 % of the (leakage-level)
/// current of a dormant device while letting a floating bitline drift
/// through half-select leakage for a full nanosecond without refresh churn.
/// A real stimulus edge (0.1–1 V in tens of ps) still crosses it within a
/// fraction of one time step, force-refreshing the cell before the
/// disturbance reaches amplitudes where the cached linearization degrades.
pub const GUARD_VTOL: f64 = 16.0 * BYPASS_VTOL;

/// Minimum full device evaluations in one assembly before the evaluation
/// loop fans out across threads. Below this, scoped-thread spawn overhead
/// (~10 µs) exceeds the model-evaluation work; single-cell circuits (≤ 7
/// devices) never come close, so the parallel path is exercised only by
/// array-scale netlists.
pub const PAR_EVAL_MIN: usize = 192;

/// Worker-thread override for parallel device evaluation (0 = auto).
static ASSEMBLY_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Sets the worker-thread count for parallel device evaluation during
/// assembly. `0` restores the default: available parallelism clamped by
/// `RAYON_NUM_THREADS`, resolved per solve. Evaluation results are merged
/// serially in fixed netlist order, so any setting produces bit-identical
/// solutions — this knob trades wall-clock only.
pub fn set_assembly_threads(n: usize) {
    ASSEMBLY_THREADS.store(n, Ordering::Relaxed);
}

/// The resolved worker-thread count for parallel device evaluation.
pub(crate) fn assembly_threads() -> usize {
    match ASSEMBLY_THREADS.load(Ordering::Relaxed) {
        0 => tfet_numerics::parallel::default_threads(),
        n => n,
    }
}

/// Classification of a guard node, used to *attribute* a guard-forced
/// refresh to the physical line that tripped it. Purely observational: the
/// dormancy decision treats every guard node identically; the kind only
/// labels the [`PartitionTelemetry`] trip counters so an array run can
/// report "this cell was woken N times by its wordline, M times by a
/// bitline".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[repr(u8)]
pub enum GuardKind {
    /// A row-select wordline adjacent to the cell.
    Wordline = 0,
    /// A column bitline (either polarity) adjacent to the cell.
    Bitline = 1,
    /// A supply/ground rail feeding the cell.
    Rail = 2,
    /// Anything the netlist builder did not classify.
    #[default]
    Other = 3,
}

impl GuardKind {
    /// Number of kinds (size of per-kind counter arrays).
    pub const COUNT: usize = 4;

    /// All kinds, in counter-array order.
    pub const ALL: [GuardKind; GuardKind::COUNT] = [
        GuardKind::Wordline,
        GuardKind::Bitline,
        GuardKind::Rail,
        GuardKind::Other,
    ];

    /// Stable lowercase label used in telemetry metric names.
    pub fn label(self) -> &'static str {
        match self {
            GuardKind::Wordline => "wordline",
            GuardKind::Bitline => "bitline",
            GuardKind::Rail => "rail",
            GuardKind::Other => "other",
        }
    }
}

/// Per-partition dormancy telemetry, accumulated over one run by the
/// dormancy-decision pass (`LatencyState::update_dormancy`, which runs
/// serially inside the Newton loop, so every count is bit-identical at any
/// device-evaluation thread count).
///
/// `decisions` counts dormancy decisions (one per assembly); `dormant` the
/// subset where the whole cell was replayed from cache, so
/// `dormant / decisions` is the cell's dormancy duty cycle. Refreshes are
/// split by cause: `cold` (no trustworthy refresh point yet — run entry or
/// invalidation), `watch` (the cell's own storage nodes moved), and guard
/// trips attributed per [`GuardKind`] (internal nodes quiet, an adjacent
/// line moved). One guard-forced refresh can trip several kinds at once —
/// e.g. a write edge moving wordline and bitline within one step — so the
/// kind counters can sum to more than the refresh count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PartitionTelemetry {
    /// Dormancy decisions taken for this partition (one per assembly).
    pub decisions: u64,
    /// Decisions where the partition stayed dormant (replayed from cache).
    pub dormant: u64,
    /// Decisions that refreshed the partition (all devices re-evaluated).
    pub refreshes: u64,
    /// Refreshes because the partition had no trustworthy refresh point.
    pub cold_refreshes: u64,
    /// Refreshes because a partition-internal watch node moved.
    pub watch_refreshes: u64,
    /// Guard-forced refreshes attributed per tripping [`GuardKind`]
    /// (indexed by `GuardKind as usize`; one refresh may trip several).
    pub guard_trips: [u64; GuardKind::COUNT],
}

impl PartitionTelemetry {
    /// Total guard-forced refreshes (refreshes that were neither cold nor
    /// watch-caused), regardless of which kinds tripped.
    pub fn guard_refreshes(&self) -> u64 {
        self.refreshes - self.cold_refreshes - self.watch_refreshes
    }

    /// Guard trips attributed to one kind.
    pub fn trips(&self, kind: GuardKind) -> u64 {
        self.guard_trips[kind as usize]
    }
}

/// One latency partition: a group of devices (typically the six transistors
/// of one bitcell) refreshed and skipped as a unit, plus the nodes whose
/// movement governs the decision.
///
/// Registered on a [`Circuit`] via
/// [`set_latency_partitions`](Circuit::set_latency_partitions). Every
/// terminal of every listed device must appear in `watch ∪ guard` (or be
/// ground) for the dormancy decision to be sound; the builder in
/// `tfet-core` lists the storage nodes as `watch` and the shared
/// wordline/bitline/rail nodes as `guard`.
#[derive(Debug, Clone, Default)]
pub struct CellPartition {
    /// Transistor indices (netlist insertion order) in this partition.
    pub devices: Vec<usize>,
    /// Partition-internal nodes, checked at the 150 µV bypass tolerance.
    pub watch: Vec<NodeId>,
    /// Shared/adjacent nodes, checked at the tight [`GUARD_VTOL`] so any
    /// disturbance force-refreshes the partition immediately.
    pub guard: Vec<NodeId>,
    /// Telemetry classification of each `guard` entry (parallel vector;
    /// entries beyond its length default to [`GuardKind::Other`]). Has no
    /// effect on the dormancy decision itself.
    pub guard_kinds: Vec<GuardKind>,
}

/// Per-workspace runtime state of the latency tier: device→partition
/// ownership, flattened watch/guard node rows with their refresh-point
/// reference voltages, and the per-iteration dormancy scratch.
#[derive(Debug)]
pub(crate) struct LatencyState {
    /// Combined topology + partition signature this state was built for.
    pub(crate) sig: u64,
    /// Device index → partition ownership (CSR both ways).
    pub(crate) owner: GroupedIndices,
    /// `watch_off[p]..watch_off[p + 1]` indexes `watch_rows`/`watch_ref`.
    watch_off: Vec<usize>,
    /// Unknown-vector rows of (non-ground) watch nodes, all partitions.
    watch_rows: Vec<usize>,
    /// Watch-node voltages at each partition's last refresh.
    watch_ref: Vec<f64>,
    /// `guard_off[p]..guard_off[p + 1]` indexes `guard_rows`/`guard_ref`.
    guard_off: Vec<usize>,
    /// Unknown-vector rows of (non-ground) guard nodes, all partitions.
    guard_rows: Vec<usize>,
    /// Guard-node voltages at each partition's last refresh.
    guard_ref: Vec<f64>,
    /// Telemetry kind of each `guard_rows` entry (same ground filtering).
    guard_kind: Vec<GuardKind>,
    /// Per-partition dormancy telemetry, accumulated since the last
    /// [`reset_telemetry`](LatencyState::reset_telemetry).
    pub(crate) telemetry: Vec<PartitionTelemetry>,
    /// Whether partition `p` has a trustworthy refresh point (cache entries
    /// and reference voltages from one coherent evaluation).
    pub(crate) fresh: Vec<bool>,
    /// Per-iteration dormancy verdicts (scratch, rewritten each assembly).
    pub(crate) dormant: Vec<bool>,
    /// Per-device evaluation decisions (scratch, rewritten each assembly).
    pub(crate) eval_mask: Vec<bool>,
}

/// FNV-1a over the partition definitions, mixed into the MNA pattern
/// signature so a partition change (not just a topology change) rebuilds
/// the latency state.
pub(crate) fn partition_signature(base: u64, parts: &[CellPartition]) -> u64 {
    let mut h = base;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    mix(parts.len() as u64);
    for p in parts {
        for &d in &p.devices {
            mix(d as u64 + 1);
        }
        mix(u64::MAX);
        for &n in &p.watch {
            mix(n.index() as u64 + 1);
        }
        mix(u64::MAX - 1);
        for (i, &n) in p.guard.iter().enumerate() {
            mix(n.index() as u64 + 1);
            mix(p.guard_kinds.get(i).copied().unwrap_or_default() as u64 + 1);
        }
        mix(u64::MAX - 2);
    }
    h
}

impl LatencyState {
    /// Builds the runtime state for a circuit's registered partitions.
    pub(crate) fn build(circuit: &Circuit, sig: u64) -> LatencyState {
        let parts = circuit.latency_partitions();
        let groups: Vec<Vec<usize>> = parts.iter().map(|p| p.devices.clone()).collect();
        let owner = GroupedIndices::from_groups(circuit.transistors().len(), &groups);
        let mut watch_off = Vec::with_capacity(parts.len() + 1);
        let mut watch_rows = Vec::new();
        let mut guard_off = Vec::with_capacity(parts.len() + 1);
        let mut guard_rows = Vec::new();
        let mut guard_kind = Vec::new();
        watch_off.push(0);
        guard_off.push(0);
        for p in parts {
            // Ground is fixed at 0 V by definition: it can never move, so
            // it contributes nothing to a dormancy decision.
            watch_rows.extend(
                p.watch
                    .iter()
                    .filter(|n| !n.is_ground())
                    .map(|n| n.index() - 1),
            );
            for (i, n) in p.guard.iter().enumerate() {
                if !n.is_ground() {
                    guard_rows.push(n.index() - 1);
                    guard_kind.push(p.guard_kinds.get(i).copied().unwrap_or_default());
                }
            }
            watch_off.push(watch_rows.len());
            guard_off.push(guard_rows.len());
        }
        let watch_ref = vec![0.0; watch_rows.len()];
        let guard_ref = vec![0.0; guard_rows.len()];
        LatencyState {
            sig,
            owner,
            watch_off,
            watch_rows,
            watch_ref,
            guard_off,
            guard_rows,
            guard_ref,
            guard_kind,
            telemetry: vec![PartitionTelemetry::default(); parts.len()],
            fresh: vec![false; parts.len()],
            dormant: vec![false; parts.len()],
            eval_mask: vec![false; circuit.transistors().len()],
        }
    }

    /// Invalidates every refresh point (run entry, rebind): no partition may
    /// claim dormancy until it has re-evaluated once under the new state.
    pub(crate) fn invalidate(&mut self) {
        self.fresh.fill(false);
    }

    /// Zeroes the per-partition telemetry so the next harvest covers exactly
    /// one run (called at transient entry).
    pub(crate) fn reset_telemetry(&mut self) {
        self.telemetry.fill(PartitionTelemetry::default());
    }

    /// Re-decides dormancy for every partition at the candidate state `x`
    /// and refreshes the reference voltages of every non-dormant partition.
    ///
    /// Returns `(cells_refreshed, guard_refreshes)`: total partitions
    /// refreshed this call, and the subset refreshed *specifically because a
    /// guard node moved* while the internal watch nodes were still quiet —
    /// the counter the fault-injection test asserts on.
    ///
    /// Also accumulates the per-partition [`PartitionTelemetry`]: every call
    /// is one decision per partition, classified as dormant or as a refresh
    /// with its cause (cold / watch / guard, the latter attributed per
    /// tripping [`GuardKind`]). This runs serially regardless of the
    /// device-evaluation thread count, so telemetry is bit-identical across
    /// thread counts by construction.
    pub(crate) fn update_dormancy(&mut self, x: &[f64]) -> (u64, u64) {
        let mut cells_refreshed = 0u64;
        let mut guard_refreshes = 0u64;
        for p in 0..self.fresh.len() {
            let (w0, w1) = (self.watch_off[p], self.watch_off[p + 1]);
            let (g0, g1) = (self.guard_off[p], self.guard_off[p + 1]);
            let fresh = self.fresh[p];
            let watch_quiet = fresh
                && self.watch_rows[w0..w1]
                    .iter()
                    .zip(&self.watch_ref[w0..w1])
                    .all(|(&r, v)| (x[r] - v).abs() < BYPASS_VTOL);
            let guard_quiet = fresh
                && self.guard_rows[g0..g1]
                    .iter()
                    .zip(&self.guard_ref[g0..g1])
                    .all(|(&r, v)| (x[r] - v).abs() < GUARD_VTOL);
            let dormant = watch_quiet && guard_quiet;
            self.dormant[p] = dormant;
            let tel = &mut self.telemetry[p];
            tel.decisions += 1;
            if dormant {
                tel.dormant += 1;
            } else {
                tel.refreshes += 1;
                if !fresh {
                    tel.cold_refreshes += 1;
                } else if !watch_quiet {
                    tel.watch_refreshes += 1;
                } else {
                    guard_refreshes += 1;
                    // Attribute the trip: count each guard *kind* with at
                    // least one node past tolerance, once per refresh. This
                    // scan runs only on the (rare) guard-forced refresh, so
                    // the dormant fast path stays two early-exit passes.
                    let mut tripped = [false; GuardKind::COUNT];
                    for ((&r, v), &k) in self.guard_rows[g0..g1]
                        .iter()
                        .zip(&self.guard_ref[g0..g1])
                        .zip(&self.guard_kind[g0..g1])
                    {
                        if (x[r] - v).abs() >= GUARD_VTOL {
                            tripped[k as usize] = true;
                        }
                    }
                    for (count, hit) in self.telemetry[p].guard_trips.iter_mut().zip(tripped) {
                        *count += u64::from(hit);
                    }
                }
                cells_refreshed += 1;
                for (r, v) in self.watch_rows[w0..w1]
                    .iter()
                    .zip(&mut self.watch_ref[w0..w1])
                {
                    *v = x[*r];
                }
                for (r, v) in self.guard_rows[g0..g1]
                    .iter()
                    .zip(&mut self.guard_ref[g0..g1])
                {
                    *v = x[*r];
                }
                self.fresh[p] = true;
            }
        }
        (cells_refreshed, guard_refreshes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_default_starts_on() {
        // Flipping the global here would race sibling tests that build
        // specs with `..Default::default()`; the `figures --latency-off`
        // gate in scripts/check.sh exercises `set_process_default` at
        // binary startup, where it is defined to be safe.
        assert_eq!(DeviceLatency::process_default(), DeviceLatency::On);
        assert_eq!(DeviceLatency::default(), DeviceLatency::On);
    }

    #[test]
    fn assembly_threads_override_and_auto() {
        set_assembly_threads(3);
        assert_eq!(assembly_threads(), 3);
        set_assembly_threads(0);
        assert!(assembly_threads() >= 1);
    }

    #[test]
    fn partition_signature_tracks_content() {
        let a = vec![CellPartition {
            devices: vec![0, 1],
            watch: vec![NodeId(1)],
            guard: vec![NodeId(2)],
            guard_kinds: vec![GuardKind::Wordline],
        }];
        let mut b = a.clone();
        b[0].guard = vec![NodeId(3)];
        let mut c = a.clone();
        c[0].guard_kinds = vec![GuardKind::Bitline];
        let sa = partition_signature(7, &a);
        assert_eq!(sa, partition_signature(7, &a), "deterministic");
        assert_ne!(sa, partition_signature(7, &b), "guard change detected");
        assert_ne!(sa, partition_signature(7, &c), "kind change detected");
        assert_ne!(sa, partition_signature(8, &a), "base mixed in");
    }

    #[test]
    fn telemetry_guard_refresh_accounting() {
        let mut t = PartitionTelemetry {
            decisions: 10,
            dormant: 6,
            refreshes: 4,
            cold_refreshes: 1,
            watch_refreshes: 1,
            guard_trips: [0; GuardKind::COUNT],
        };
        t.guard_trips[GuardKind::Wordline as usize] = 2;
        t.guard_trips[GuardKind::Bitline as usize] = 1;
        assert_eq!(t.guard_refreshes(), 2);
        assert_eq!(t.trips(GuardKind::Wordline), 2);
        assert_eq!(t.trips(GuardKind::Rail), 0);
        assert_eq!(GuardKind::ALL[GuardKind::Rail as usize], GuardKind::Rail);
        assert_eq!(GuardKind::Other.label(), "other");
    }
}
