//! Newton–Raphson DC operating-point analysis.
//!
//! The solver iterates `J(x_k) Δx = −f(x_k)` with per-iteration voltage-step
//! limiting (the damping that keeps the exponential TFET reverse-diode and
//! subthreshold branches from overshooting), declaring convergence when the
//! *undamped* update falls below tolerance. If plain Newton fails from the
//! given guess, it falls back to g_min stepping: solve with a large
//! artificial conductance to ground, then relax it toward zero, carrying the
//! solution forward.
//!
//! Bistable circuits (an SRAM cell in hold!) have multiple operating points;
//! the initial guess selects the basin, which is exactly how the SRAM layer
//! sets the stored state before a hold-power measurement.

use crate::error::SimError;
use crate::latency::DeviceLatency;
use crate::mna::{CompanionCaps, Mna};
use crate::netlist::{Circuit, NodeId, SourceId};
use crate::workspace::{with_workspace, NewtonWorkspace, SolverBufs};
use std::sync::atomic::{AtomicU8, Ordering};

/// Linear-solve strategy for the Newton loop.
///
/// `Sparse` is the production path: pattern-backed sparse LU with
/// modified-Newton factorization reuse and device-evaluation bypass.
/// `Dense` is the legacy per-iteration dense-LU path, kept byte-for-byte as
/// a cross-check — the figure CSVs must come out bit-identical either way
/// (enforced by `scripts/check.sh`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolverStrategy {
    /// Sparse LU + modified Newton + device bypass (default).
    Sparse,
    /// Dense LU, full refactorization and device evaluation every iteration.
    Dense,
}

/// Process-wide default strategy (0 = Sparse, 1 = Dense), consulted by
/// `SolverStrategy::default()` and therefore by every option struct built
/// with `..Default::default()`.
static DEFAULT_STRATEGY: AtomicU8 = AtomicU8::new(0);

impl SolverStrategy {
    /// Sets the process-wide default strategy.
    ///
    /// Intended for binary startup (the `figures --dense` cross-check flag)
    /// — flipping it mid-run races against concurrently built option
    /// structs, so don't.
    pub fn set_process_default(s: SolverStrategy) {
        DEFAULT_STRATEGY.store(s as u8, Ordering::Relaxed);
    }

    /// The current process-wide default strategy.
    pub fn process_default() -> SolverStrategy {
        match DEFAULT_STRATEGY.load(Ordering::Relaxed) {
            1 => SolverStrategy::Dense,
            _ => SolverStrategy::Sparse,
        }
    }
}

impl Default for SolverStrategy {
    fn default() -> Self {
        SolverStrategy::process_default()
    }
}

/// Newton iteration controls.
#[derive(Debug, Clone, Copy)]
pub struct NewtonOpts {
    /// Maximum iterations before declaring failure.
    pub max_iter: usize,
    /// Convergence tolerance on the largest voltage update, V.
    pub v_tol: f64,
    /// Damping: the largest voltage change applied in one iteration, V.
    pub v_step_max: f64,
    /// Linear-solve strategy (see [`SolverStrategy`]).
    pub strategy: SolverStrategy,
    /// Device-latency mode: `On` enables the bypass cache and (for
    /// partitioned circuits) the quiescent-partition dormancy tier during
    /// transient solves; `Off` is the full-evaluation baseline (see
    /// [`DeviceLatency`]).
    pub latency: DeviceLatency,
}

impl Default for NewtonOpts {
    fn default() -> Self {
        NewtonOpts {
            max_iter: 200,
            // 20 nV: far below any measurement in this workspace (metrics
            // live at mV scale) yet loose enough that the near-quadratic
            // TFET output-onset region cannot trap the iteration in a
            // numerical limit cycle.
            v_tol: 2e-8,
            v_step_max: 0.3,
            strategy: SolverStrategy::default(),
            latency: DeviceLatency::default(),
        }
    }
}

/// The g_min relaxation ladder used when plain Newton fails. Ends at zero so
/// the final solution is physical — essential here because TFET hold
/// currents (1e-17 A) are smaller than a conventional simulator's
/// residual g_min would inject.
const GMIN_LADDER: &[f64] = &[1e-2, 1e-4, 1e-6, 1e-8, 1e-10, 1e-12, 0.0];

/// Runs damped Newton at fixed `t`/`gmin`/`caps` from `x0`, using (and
/// reusing) the buffers in `bufs` — a steady-state call allocates nothing.
///
/// Dispatches on [`NewtonOpts::strategy`]: the legacy dense loop
/// (refactorize + fully re-evaluate every iteration) or the sparse
/// modified-Newton loop (factorization reuse + device bypass).
///
/// Returns the converged state, or the pair `(best_state, error)` on
/// failure so ladders can continue from partial progress.
#[allow(clippy::too_many_arguments)] // solver-internal
pub(crate) fn newton(
    mna: &Mna<'_>,
    bufs: &mut SolverBufs,
    x: Vec<f64>,
    t: f64,
    gmin: f64,
    anchor: Option<&[f64]>,
    caps: Option<&CompanionCaps>,
    opts: &NewtonOpts,
    time_label: Option<f64>,
) -> Result<Vec<f64>, (Vec<f64>, SimError)> {
    match opts.strategy {
        SolverStrategy::Dense => {
            newton_dense(mna, bufs, x, t, gmin, anchor, caps, opts, time_label)
        }
        SolverStrategy::Sparse => {
            newton_sparse(mna, bufs, x, t, gmin, anchor, caps, opts, time_label)
        }
    }
}

/// The legacy dense-LU Newton loop: assemble, factorize, and solve every
/// iteration. Kept arithmetically untouched as the cross-check reference.
#[allow(clippy::too_many_arguments)] // solver-internal
fn newton_dense(
    mna: &Mna<'_>,
    bufs: &mut SolverBufs,
    mut x: Vec<f64>,
    t: f64,
    gmin: f64,
    anchor: Option<&[f64]>,
    caps: Option<&CompanionCaps>,
    opts: &NewtonOpts,
    time_label: Option<f64>,
) -> Result<Vec<f64>, (Vec<f64>, SimError)> {
    let n = mna.unknown_count();
    let n_v = mna.voltage_count();
    bufs.ensure(n);
    bufs.newton_solves += 1;
    bufs.res_history.clear();
    let _span = tfet_obs::span("newton");

    let mut last_delta = f64::INFINITY;
    let mut last_residual = f64::INFINITY;
    for iter in 0..opts.max_iter {
        bufs.newton_iters += 1;
        let stats = mna.assemble_into(&x, t, gmin, anchor, caps, &mut bufs.j, &mut bufs.f, None);
        bufs.device_evals += stats.evals;
        // Residual infinity-norm: convergence is decided on |Δv| below, but
        // the history is what a post-mortem of a failed solve needs. The
        // pushes reuse reserved capacity (see `RES_HISTORY_CAP`), so the
        // hot path stays allocation-free.
        last_residual = bufs.f.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        if bufs.res_history.len() < bufs.res_history.capacity() {
            bufs.res_history.push(last_residual);
        }
        bufs.jac_refactored += 1;
        if let Err(e) = bufs.lu.factorize(&bufs.j) {
            tfet_obs::record_u64("newton.iters_per_solve", iter as u64 + 1);
            return Err((x, SimError::from_solve(e, time_label)));
        }
        for (r, v) in bufs.rhs.iter_mut().zip(&bufs.f) {
            *r = -v;
        }
        bufs.lu.solve_into(&bufs.rhs, &mut bufs.dx);
        let dx = &bufs.dx;

        // Undamped voltage-update magnitude decides convergence.
        let max_dv = dx[..n_v].iter().fold(0.0f64, |m, d| m.max(d.abs()));
        if !max_dv.is_finite() {
            tfet_obs::record_u64("newton.iters_per_solve", iter as u64 + 1);
            return Err((
                x,
                SimError::NoConvergence {
                    time: time_label,
                    iterations: iter,
                    last_delta: f64::INFINITY,
                    residual_norm: last_residual,
                },
            ));
        }
        // Damping factor limits voltage moves; branch currents follow suit
        // so the iterate stays near the linearization.
        let scale = if max_dv > opts.v_step_max {
            opts.v_step_max / max_dv
        } else {
            1.0
        };
        for (xi, di) in x.iter_mut().zip(dx) {
            *xi += scale * di;
        }
        last_delta = max_dv;
        if max_dv < opts.v_tol {
            tfet_obs::record_u64("newton.iters_per_solve", iter as u64 + 1);
            return Ok(x);
        }
    }
    tfet_obs::record_u64("newton.iters_per_solve", opts.max_iter as u64);
    tfet_obs::counter("newton.failures", 1);
    Err((
        x,
        SimError::NoConvergence {
            time: time_label,
            iterations: opts.max_iter,
            last_delta,
            residual_norm: last_residual,
        },
    ))
}

/// The sparse modified-Newton loop.
///
/// Per iteration it assembles into the pattern-backed sparse Jacobian (with
/// device-evaluation bypass) and, when a valid factorization from an earlier
/// iteration or step is available and `gmin == 0`, *reuses* it instead of
/// refactorizing. A reused factor that stops contracting the update —
/// `|Δv| ≥ v_tol` and shrinking by less than ~1.4× versus the previous
/// chord iteration (the first iteration of a solve is exempt, so a factor
/// carried across transient steps gets one chord probe before it can be
/// declared stale) — triggers a full refactorization at the current iterate
/// and an immediate re-solve, bounded to once per iteration; gmin-laddered
/// solves (the PR-5 rescue path, untouched above this function) always refactorize
/// and never publish their factors for reuse.
///
/// Convergence is declared on the same undamped `|Δv| < v_tol` test as the
/// dense loop, with one extra safeguard: a convergence claim produced by a
/// *reused* factor is only accepted after a mat-vec consistency check
/// against the freshly assembled Jacobian
/// ([`SolverBufs::sparse_update_consistent`]) — an inconsistent factor
/// triggers refactorization and a re-solve of the same right-hand side.
/// Together the stall guard and the consistency check bound how stale a
/// factor can get in both failure directions (divergence and false
/// convergence).
#[allow(clippy::too_many_arguments)] // solver-internal
fn newton_sparse(
    mna: &Mna<'_>,
    bufs: &mut SolverBufs,
    mut x: Vec<f64>,
    t: f64,
    gmin: f64,
    anchor: Option<&[f64]>,
    caps: Option<&CompanionCaps>,
    opts: &NewtonOpts,
    time_label: Option<f64>,
) -> Result<Vec<f64>, (Vec<f64>, SimError)> {
    let n = mna.unknown_count();
    let n_v = mna.voltage_count();
    bufs.ensure(n);
    bufs.ensure_sparse(mna);
    bufs.ensure_latency(mna);
    bufs.newton_solves += 1;
    bufs.res_history.clear();
    let _span = tfet_obs::span("newton");

    // Factor reuse is only sound for the physical (gmin = 0) system: ladder
    // rungs perturb the diagonal, so their factors are never kept.
    let allow_reuse = gmin == 0.0;
    let mut last_delta = f64::INFINITY;
    let mut last_residual = f64::INFINITY;
    // Starting at ∞ (not zero) exempts the *first* chord iteration from the
    // stall guard: on a fixed transient grid the companion conductances are
    // constant and the previous step's factorization is a near-exact
    // preconditioner, so even steps whose first update is large contract
    // geometrically under chord iteration. A guard primed at zero would
    // refactorize every moving step — ruinous at array scale, where one
    // LU factorization outweighs dozens of triangular solves and the
    // latency tier has already made per-iteration assembly cheap. A factor
    // that really is stale still trips the 0.7-contraction guard below on
    // the second iteration, after exactly one wasted triangular solve.
    let mut prev_max_dv = f64::INFINITY;
    for iter in 0..opts.max_iter {
        bufs.newton_iters += 1;
        {
            let _span = tfet_obs::span("assemble");
            let s = bufs.sparse.as_mut().expect("ensure_sparse ran");
            // Device bypass (and the partition tier above it) is a
            // transient-only optimization: those solves are LTE-controlled,
            // so the (second-order) extrapolation error stays far inside
            // the step-acceptance budget. DC operating points are solved
            // with full evaluations — they are rare, and they anchor
            // accuracy contracts (VTC sweeps, SNM extraction) at the Newton
            // tolerance itself. `DeviceLatency::Off` disables both layers,
            // giving the clean full-evaluation baseline the figure-identity
            // gate compares against. Partitioned circuits additionally get
            // incremental Jacobian maintenance (`assemble_sparse_latent`).
            let use_cache = caps.is_some() && opts.latency == DeviceLatency::On;
            let stats = match (use_cache, bufs.latency.as_mut(), caps) {
                (true, Some(lat), Some(caps)) => mna.assemble_sparse_latent(
                    &x,
                    t,
                    gmin,
                    anchor,
                    caps,
                    &mut s.jac,
                    &mut s.inc,
                    &mut bufs.f,
                    &mut bufs.device_cache,
                    lat,
                ),
                _ => {
                    let cache = if use_cache {
                        Some(&mut bufs.device_cache)
                    } else {
                        None
                    };
                    mna.assemble_into(&x, t, gmin, anchor, caps, &mut s.jac, &mut bufs.f, cache)
                }
            };
            bufs.device_evals += stats.evals;
            bufs.devices_bypassed += stats.bypassed;
            bufs.devices_dormant += stats.dormant;
            bufs.cells_refreshed += stats.cells_refreshed;
            bufs.guard_refreshes += stats.guard_refreshes;
        }
        last_residual = bufs.f.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        if bufs.res_history.len() < bufs.res_history.capacity() {
            bufs.res_history.push(last_residual);
        }

        let reused = allow_reuse
            && bufs
                .sparse
                .as_ref()
                .is_some_and(|s| s.factor_valid && s.lu.is_factored());
        if reused {
            bufs.jac_reused += 1;
        } else if let Err(e) = bufs.sparse_refactor(allow_reuse) {
            tfet_obs::record_u64("newton.iters_per_solve", iter as u64 + 1);
            return Err((x, SimError::from_solve(e, time_label)));
        }
        let mut solved_with_reuse = reused;
        for (r, v) in bufs.rhs.iter_mut().zip(&bufs.f) {
            *r = -v;
        }
        {
            let _span = tfet_obs::span("trisolve");
            let s = bufs.sparse.as_mut().expect("ensure_sparse ran");
            s.lu.solve_into(&bufs.rhs, &mut bufs.dx);
        }
        bufs.sparse_solves += 1;
        let mut max_dv = bufs.dx[..n_v].iter().fold(0.0f64, |m, d| m.max(d.abs()));

        // Stall guard: a reused factor whose update has stopped shrinking
        // (contraction worse than ~1.4× per chord iteration) gets replaced
        // by a fresh factorization of the *already assembled* current
        // Jacobian, and the step is re-solved within this same iteration.
        // The threshold trades chord iterations against refactorizations:
        // chord iterations whose terminal movement sits inside the bypass
        // window cost no device evaluations, so tolerating a slower but
        // still geometric contraction is cheaper than refactoring.
        if reused && max_dv.is_finite() && max_dv >= opts.v_tol && max_dv > 0.7 * prev_max_dv {
            if let Err(e) = bufs.sparse_refactor(allow_reuse) {
                tfet_obs::record_u64("newton.iters_per_solve", iter as u64 + 1);
                return Err((x, SimError::from_solve(e, time_label)));
            }
            {
                let s = bufs.sparse.as_mut().expect("ensure_sparse ran");
                s.lu.solve_into(&bufs.rhs, &mut bufs.dx);
            }
            bufs.sparse_solves += 1;
            max_dv = bufs.dx[..n_v].iter().fold(0.0f64, |m, d| m.max(d.abs()));
            solved_with_reuse = false;
        }

        // A convergence claim backed by a reused factor must also be backed
        // by the *current* Jacobian: verify `J·Δx ≈ −f` with one mat-vec and
        // refactorize + re-solve when the stale factor no longer solves the
        // assembled system (e.g. after a step-size change, or after the UIC
        // hold solve's artificially pinned system). Without this, a factor
        // with an inflated diagonal yields `Δv ≈ 0` and Newton "converges"
        // instantly without moving — a frozen waveform, not a solution.
        if solved_with_reuse
            && max_dv.is_finite()
            && max_dv < opts.v_tol
            && !bufs.sparse_update_consistent()
        {
            if let Err(e) = bufs.sparse_refactor(allow_reuse) {
                tfet_obs::record_u64("newton.iters_per_solve", iter as u64 + 1);
                return Err((x, SimError::from_solve(e, time_label)));
            }
            {
                let s = bufs.sparse.as_mut().expect("ensure_sparse ran");
                s.lu.solve_into(&bufs.rhs, &mut bufs.dx);
            }
            bufs.sparse_solves += 1;
            max_dv = bufs.dx[..n_v].iter().fold(0.0f64, |m, d| m.max(d.abs()));
        }
        prev_max_dv = max_dv;

        if !max_dv.is_finite() {
            tfet_obs::record_u64("newton.iters_per_solve", iter as u64 + 1);
            return Err((
                x,
                SimError::NoConvergence {
                    time: time_label,
                    iterations: iter,
                    last_delta: f64::INFINITY,
                    residual_norm: last_residual,
                },
            ));
        }
        let scale = if max_dv > opts.v_step_max {
            opts.v_step_max / max_dv
        } else {
            1.0
        };
        for (xi, di) in x.iter_mut().zip(&bufs.dx) {
            *xi += scale * di;
        }
        last_delta = max_dv;
        if max_dv < opts.v_tol {
            tfet_obs::record_u64("newton.iters_per_solve", iter as u64 + 1);
            return Ok(x);
        }
    }
    tfet_obs::record_u64("newton.iters_per_solve", opts.max_iter as u64);
    tfet_obs::counter("newton.failures", 1);
    Err((
        x,
        SimError::NoConvergence {
            time: time_label,
            iterations: opts.max_iter,
            last_delta,
            residual_norm: last_residual,
        },
    ))
}

/// Full operating-point solve with g_min-stepping fallback.
///
/// With `anchored = true` the plain-Newton fast path is skipped and the
/// solve follows the g_min continuation pinned to the initial guess from
/// the start. Callers that picked a guess to *select an operating point* of
/// a multistable circuit need this: a bare Newton iteration is free to
/// converge to any solution — including the SRAM cell's metastable point —
/// no matter how suggestive the starting point was.
#[allow(clippy::too_many_arguments)] // solver-internal
pub(crate) fn solve_op(
    mna: &Mna<'_>,
    bufs: &mut SolverBufs,
    anchor_buf: &mut Vec<f64>,
    x0: Vec<f64>,
    t: f64,
    caps: Option<&CompanionCaps>,
    opts: &NewtonOpts,
    time_label: Option<f64>,
    anchored: bool,
) -> Result<Vec<f64>, SimError> {
    // Snapshot the initial guess into the reusable anchor buffer: the plain
    // Newton fast path needs it to restart on failure, the g_min ladder
    // needs it as the basin-preserving anchor. Copying into the retained
    // buffer keeps the hot path (fast-path success, the outcome of nearly
    // every transient step) allocation-free.
    anchor_buf.clear();
    anchor_buf.extend_from_slice(&x0);
    let mut x = x0;
    if !anchored {
        // Fast path: plain Newton from the guess.
        match newton(mna, bufs, x, t, 0.0, None, caps, opts, time_label) {
            Ok(x) => return Ok(x),
            Err((best, _)) => {
                // Reuse the returned vector; restart the ladder from the
                // original guess.
                tfet_obs::counter("newton.gmin_ladders", 1);
                x = best;
                x.copy_from_slice(anchor_buf);
            }
        }
    }
    // g_min ladder, carrying the state forward. The ladder conductances
    // anchor every node to the *initial guess*, not to ground — for a
    // bistable circuit this keeps the solve in the basin the caller chose.
    let mut last_err = None;
    for &gmin in GMIN_LADDER {
        match newton(
            mna,
            bufs,
            x.clone(),
            t,
            gmin,
            Some(anchor_buf),
            caps,
            opts,
            time_label,
        ) {
            Ok(next) => x = next,
            Err((best, e)) => {
                // Keep partial progress; a failure mid-ladder can still
                // position the final rung to converge.
                x = best;
                last_err = Some(e);
            }
        }
        if gmin == 0.0 {
            // Final rung must succeed cleanly.
            return match last_err.take() {
                None => Ok(x),
                Some(e) => Err(e),
            };
        }
        last_err = None;
    }
    unreachable!("gmin ladder ends at 0.0")
}

/// A converged DC operating point.
#[derive(Debug, Clone)]
pub struct DcResult {
    pub(crate) x: Vec<f64>,
    pub(crate) n_v: usize,
    /// `(plus, minus, value)` per source at the solve time, for power
    /// accounting.
    pub(crate) source_volts: Vec<f64>,
}

impl DcResult {
    /// Node voltage, V.
    pub fn voltage(&self, node: NodeId) -> f64 {
        if node.is_ground() {
            0.0
        } else {
            self.x[node.index() - 1]
        }
    }

    /// Branch current of a voltage source, A — defined flowing from the
    /// `plus` terminal *through the source* to `minus` (so a battery
    /// delivering power reports a negative branch current).
    pub fn source_current(&self, id: SourceId) -> f64 {
        self.x[self.n_v + id.0]
    }

    /// Power delivered *by* the source to the circuit, W.
    pub fn power_delivered(&self, id: SourceId) -> f64 {
        -self.source_volts[id.0] * self.source_current(id)
    }

    /// Total power delivered by all sources, W — the circuit's static
    /// dissipation at this operating point.
    pub fn total_power(&self) -> f64 {
        (0..self.source_volts.len())
            .map(|k| -self.source_volts[k] * self.x[self.n_v + k])
            .sum()
    }

    /// The raw unknown vector (voltages then branch currents) — the seed for
    /// a subsequent transient.
    pub fn state(&self) -> &[f64] {
        &self.x
    }
}

impl Circuit {
    /// Solves the DC operating point with all sources at their `t = 0`
    /// values and a zero initial guess.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidCircuit`] for structurally bad netlists,
    /// [`SimError::SingularMatrix`] / [`SimError::NoConvergence`] when the
    /// solve fails.
    pub fn dc_op(&self) -> Result<DcResult, SimError> {
        self.dc_op_with_guess(&[])
    }

    /// Solves the DC operating point starting from voltage hints.
    ///
    /// For bistable circuits the hints select the operating point: seed the
    /// storage nodes with the intended state and Newton converges into that
    /// basin.
    pub fn dc_op_with_guess(&self, guess: &[(NodeId, f64)]) -> Result<DcResult, SimError> {
        let mna = Mna::new(self)?;
        let x =
            with_workspace(|ws| self.dc_state_with(&mna, guess, ws, SolverStrategy::default()))?;
        Ok(DcResult {
            x,
            n_v: mna.voltage_count(),
            source_volts: self.vsources.iter().map(|v| v.wave.initial()).collect(),
        })
    }

    /// Solves for the raw DC state vector using the caller's workspace —
    /// the allocation-free core behind [`dc_op_with_guess`] that the
    /// transient integrator also uses for its initial operating point.
    ///
    /// [`dc_op_with_guess`]: Circuit::dc_op_with_guess
    pub(crate) fn dc_state_with(
        &self,
        mna: &Mna<'_>,
        guess: &[(NodeId, f64)],
        ws: &mut NewtonWorkspace,
        strategy: SolverStrategy,
    ) -> Result<Vec<f64>, SimError> {
        // Fresh solve entry: whatever the workspace cached (device operating
        // points, a factorization) belongs to some earlier run.
        ws.bufs.invalidate_caches();
        let mut x0 = vec![0.0; mna.unknown_count()];
        for &(node, v) in guess {
            if !node.is_ground() {
                x0[node.index() - 1] = v;
            }
        }
        // Pre-seed source nodes with their stimulus value: a free, large
        // step toward the solution.
        for vs in &self.vsources {
            if vs.minus.is_ground() && !vs.plus.is_ground() {
                x0[vs.plus.index() - 1] = vs.wave.initial();
            }
        }
        let opts = NewtonOpts {
            strategy,
            ..NewtonOpts::default()
        };
        // An explicit guess means the caller is selecting among operating
        // points: follow the anchored continuation so the basin survives.
        let anchored = !guess.is_empty();
        solve_op(
            mna,
            &mut ws.bufs,
            &mut ws.anchor,
            x0,
            0.0,
            None,
            &opts,
            None,
            anchored,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waveform::Waveform;
    use std::sync::Arc;
    use tfet_devices::{NTfet, Nmos, PTfet, Pmos};

    #[test]
    fn resistive_divider() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        let v = c.vsource("V", a, Circuit::GND, Waveform::dc(1.0));
        c.resistor(a, b, 1e3);
        c.resistor(b, Circuit::GND, 3e3);
        let op = c.dc_op().unwrap();
        assert!((op.voltage(b) - 0.75).abs() < 1e-9);
        // Current: 1 V / 4 kΩ = 0.25 mA delivered.
        assert!((op.source_current(v) + 0.25e-3).abs() < 1e-9);
        assert!((op.power_delivered(v) - 0.25e-3).abs() < 1e-9);
        assert!((op.total_power() - 0.25e-3).abs() < 1e-9);
    }

    #[test]
    fn floating_node_through_gmin() {
        // A current source into a node whose only path is another current
        // source would be singular; with a resistor it converges plainly.
        let mut c = Circuit::new();
        let a = c.node("a");
        c.isource(Circuit::GND, a, Waveform::dc(1e-6));
        c.resistor(a, Circuit::GND, 1e6);
        let op = c.dc_op().unwrap();
        assert!((op.voltage(a) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn nmos_inverter_logic_levels() {
        // Resistive-load NMOS inverter.
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let inp = c.node("in");
        let out = c.node("out");
        c.vsource("VDD", vdd, Circuit::GND, Waveform::dc(0.8));
        let vin = c.vsource("VIN", inp, Circuit::GND, Waveform::dc(0.0));
        c.resistor(vdd, out, 1e6);
        c.transistor("M1", Arc::new(Nmos::nominal()), out, inp, Circuit::GND, 1.0);

        let op = c.dc_op().unwrap();
        assert!(op.voltage(out) > 0.75, "input low → output high");

        c.set_vsource_wave(vin, Waveform::dc(0.8));
        let op = c.dc_op().unwrap();
        assert!(op.voltage(out) < 0.1, "input high → output low");
    }

    #[test]
    fn cmos_inverter_rail_to_rail() {
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let inp = c.node("in");
        let out = c.node("out");
        c.vsource("VDD", vdd, Circuit::GND, Waveform::dc(0.8));
        let vin = c.vsource("VIN", inp, Circuit::GND, Waveform::dc(0.0));
        c.transistor("MP", Arc::new(Pmos::nominal()), out, inp, vdd, 0.2);
        c.transistor("MN", Arc::new(Nmos::nominal()), out, inp, Circuit::GND, 0.1);

        let op = c.dc_op().unwrap();
        assert!(op.voltage(out) > 0.79, "out = {}", op.voltage(out));

        c.set_vsource_wave(vin, Waveform::dc(0.8));
        let op = c.dc_op().unwrap();
        assert!(op.voltage(out) < 0.01, "out = {}", op.voltage(out));
    }

    #[test]
    fn tfet_inverter_rail_to_rail_with_tiny_static_power() {
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let inp = c.node("in");
        let out = c.node("out");
        let v = c.vsource("VDD", vdd, Circuit::GND, Waveform::dc(0.8));
        c.vsource("VIN", inp, Circuit::GND, Waveform::dc(0.0));
        c.transistor("MP", Arc::new(PTfet::nominal()), out, inp, vdd, 0.1);
        c.transistor(
            "MN",
            Arc::new(NTfet::nominal()),
            out,
            inp,
            Circuit::GND,
            0.1,
        );

        let op = c.dc_op().unwrap();
        assert!(op.voltage(out) > 0.79, "out = {}", op.voltage(out));
        // Static power set by the off nTFET: ~1e-17 A × 0.8 V × 0.1 µm.
        let p = op.power_delivered(v);
        assert!(p > 0.0 && p < 1e-16, "static power = {p:e} W");
    }

    #[test]
    fn bistable_latch_follows_guess() {
        // Cross-coupled CMOS inverters: two stable points; the guess picks.
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let q = c.node("q");
        let qb = c.node("qb");
        c.vsource("VDD", vdd, Circuit::GND, Waveform::dc(0.8));
        c.transistor("MP1", Arc::new(Pmos::nominal()), q, qb, vdd, 0.2);
        c.transistor("MN1", Arc::new(Nmos::nominal()), q, qb, Circuit::GND, 0.1);
        c.transistor("MP2", Arc::new(Pmos::nominal()), qb, q, vdd, 0.2);
        c.transistor("MN2", Arc::new(Nmos::nominal()), qb, q, Circuit::GND, 0.1);

        let op = c.dc_op_with_guess(&[(q, 0.8), (qb, 0.0)]).unwrap();
        assert!(op.voltage(q) > 0.7 && op.voltage(qb) < 0.1);

        let op = c.dc_op_with_guess(&[(q, 0.0), (qb, 0.8)]).unwrap();
        assert!(op.voltage(q) < 0.1 && op.voltage(qb) > 0.7);
    }

    #[test]
    fn series_sources_and_kvl() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.vsource("V1", a, Circuit::GND, Waveform::dc(0.5));
        c.vsource("V2", b, a, Waveform::dc(0.25));
        c.resistor(b, Circuit::GND, 1e3);
        let op = c.dc_op().unwrap();
        assert!((op.voltage(b) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn empty_circuit_errors() {
        let c = Circuit::new();
        assert!(matches!(c.dc_op(), Err(SimError::InvalidCircuit(_))));
    }
}
