//! SPICE-deck interchange.
//!
//! The circuits in this workspace are built programmatically, but the EDA
//! world speaks SPICE decks. This module provides:
//!
//! * [`Circuit::to_spice`] — export any in-memory circuit as a SPICE-format
//!   netlist (element cards, PWL sources, transistors as `X` subcircuit
//!   calls naming their compact model), suitable for inspection, diffing,
//!   or replaying in an external simulator that has equivalent models;
//! * [`Circuit::from_spice`] — parse the same dialect back, resolving
//!   transistor models through a caller-supplied registry;
//! * [`Deck::parse`] — the full deck reader: `.subckt`/`.ends` definitions
//!   with hierarchical `X` instantiation (flattened onto dotted node
//!   names), `.param` constants, `.ic`/`.nodeset` initial conditions, and
//!   `.tran`/`.dc` analysis cards that drive the existing
//!   [`TransientSpec`]/DC paths.
//!
//! # Dialect
//!
//! Element and card names are case-insensitive; node names are
//! case-sensitive (`0`, `gnd` and `GND` all denote global ground). Values
//! accept SPICE engineering suffixes (`1.2u`, `10meg`, `5p`, optionally
//! followed by unit letters as in `20fF`) in addition to plain floats.
//! Malformed cards are rejected with a typed [`SimError::SpiceParse`]
//! carrying the 1-based line and column of the offending token.
//!
//! | Card | Form |
//! |------|------|
//! | resistor | `R<name> <a> <b> <ohms>` |
//! | capacitor | `C<name> <a> <b> <farads>` |
//! | v-source | `V<name> <plus> <minus> DC <v>` or `PWL(t1 v1 t2 v2 …)` |
//! | i-source | `I<name> <from> <to> DC <a>` or `PWL(…)` |
//! | device | `X<name> <d> <g> <s> <model> W=<µm>` |
//! | subckt call | `X<name> <n1> … <nk> <subckt>` |
//! | definition | `.subckt <name> <p1> … <pk>` … `.ends` |
//! | constants | `.param <name>=<value> …` (referenced bare or as `{name}`) |
//! | initial | `.ic v(<node>)=<v> …`, `.nodeset v(<node>)=<v> …` |
//! | analysis | `.tran <tstep> <tstop>`, `.dc [<src> <start> <stop> <step>]`, `.op` |
//! | comments | `*` lines; `+` continues the previous card |
//!
//! # Round-trip guarantee
//!
//! Exporting any built circuit with [`Circuit::to_spice`] and re-importing
//! the text yields a structurally identical circuit whose re-export is
//! **byte-identical** (values print with 7 significant digits, which
//! decimal→`f64`→decimal round-trips exactly). [`Deck::to_spice`] extends
//! the same guarantee to full decks in canonical form: `.param` constants
//! are inlined, elements keep their card order, and `serialize(parse(d))`
//! is a fixed point.

use crate::compiled::CompiledCircuit;
use crate::dc::DcResult;
use crate::error::SimError;
use crate::netlist::Circuit;
use crate::probe::TransientResult;
use crate::transient::{InitialState, TransientSpec};
use crate::waveform::Waveform;
use crate::NodeId;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;
use tfet_devices::model::DeviceModel;

/// Maximum subcircuit-call nesting depth accepted by the flattener; deeper
/// hierarchies (or definition cycles) are rejected.
const MAX_SUBCKT_DEPTH: usize = 8;

// ---------------------------------------------------------------------------
// Export
// ---------------------------------------------------------------------------

impl Circuit {
    /// Renders the circuit as a SPICE-format deck.
    ///
    /// Transistors appear as `X<name> <d> <g> <s> <model> W=<µm>` calls;
    /// the model names are this workspace's compact-model names
    /// (`ntfet`, `ptfet`, `nmos`, `pmos`, or LUT variants).
    pub fn to_spice(&self, title: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, ".title {title}");
        let _ = writeln!(out, "* exported by tfet-circuit");
        self.write_cards(&mut out);
        let _ = writeln!(out, ".end");
        out
    }

    /// Writes the element cards (no `.title`/`.end` framing) in the fixed
    /// class order the importer preserves: R, C, V, I, X.
    pub(crate) fn write_cards(&self, out: &mut String) {
        let node = |id| self.node_name(id).to_string();

        for (k, r) in self.resistors.iter().enumerate() {
            let _ = writeln!(out, "R{k} {} {} {:.6e}", node(r.a), node(r.b), r.ohms);
        }
        for (k, c) in self.capacitors.iter().enumerate() {
            let _ = writeln!(out, "C{k} {} {} {:.6e}", node(c.a), node(c.b), c.farads);
        }
        for v in &self.vsources {
            let _ = write!(out, "V{} {} {} ", v.name, node(v.plus), node(v.minus));
            write_wave(out, &v.wave);
        }
        for (k, i) in self.isources.iter().enumerate() {
            let _ = write!(out, "I{k} {} {} ", node(i.from), node(i.to));
            write_wave(out, &i.wave);
        }
        for t in &self.transistors {
            let _ = writeln!(
                out,
                "X{} {} {} {} {} W={:.4}",
                t.name,
                node(t.d),
                node(t.g),
                node(t.s),
                t.model.name(),
                t.width_um
            );
        }
    }
}

/// Writes a source specification (`DC <v>` or `PWL(…)`) plus newline.
fn write_wave(out: &mut String, wave: &Waveform) {
    match wave {
        Waveform::Dc(val) => {
            let _ = writeln!(out, "DC {val:.6e}");
        }
        Waveform::Pwl(lut) => {
            let _ = write!(out, "PWL(");
            for (i, (&t, &val)) in lut.axis().iter().zip(lut.values()).enumerate() {
                if i > 0 {
                    let _ = write!(out, " ");
                }
                let _ = write!(out, "{t:.6e} {val:.6e}");
            }
            let _ = writeln!(out, ")");
        }
    }
}

// ---------------------------------------------------------------------------
// Deck model
// ---------------------------------------------------------------------------

/// One card inside a `.subckt` body. Node references are names local to the
/// definition: port names, `0`/`gnd` for global ground, or internal nodes.
#[derive(Debug, Clone, PartialEq)]
pub enum SubcktCard {
    /// `R<name> a b ohms`
    Resistor {
        /// Instance name (without the leading `R`).
        name: String,
        /// First terminal.
        a: String,
        /// Second terminal.
        b: String,
        /// Resistance, Ω.
        ohms: f64,
    },
    /// `C<name> a b farads`
    Capacitor {
        /// Instance name (without the leading `C`).
        name: String,
        /// First terminal.
        a: String,
        /// Second terminal.
        b: String,
        /// Capacitance, F.
        farads: f64,
    },
    /// `X<name> d g s model W=<µm>` — a transistor naming a compact model.
    Device {
        /// Instance name (without the leading `X`).
        name: String,
        /// Drain node.
        d: String,
        /// Gate node.
        g: String,
        /// Source node.
        s: String,
        /// Compact-model name (resolved through the registry on import).
        model: String,
        /// Gate width, µm.
        width_um: f64,
    },
    /// `X<name> n1 … nk subname` — a nested subcircuit call.
    Call {
        /// Instance name (without the leading `X`).
        name: String,
        /// Connection nodes, one per port of the target.
        nodes: Vec<String>,
        /// Name of the called subcircuit.
        subckt: String,
    },
}

/// A parsed `.subckt` definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Subckt {
    /// Definition name (as written; looked up case-insensitively).
    pub name: String,
    /// Port (terminal) names, in declaration order.
    pub ports: Vec<String>,
    /// Body cards, in declaration order.
    pub cards: Vec<SubcktCard>,
}

/// A transistor of a flattened subcircuit (see [`Subckt::flatten`]).
#[derive(Debug, Clone, PartialEq)]
pub struct FlatDevice {
    /// Dotted instance name (`inner.MPU_L` for nested calls).
    pub name: String,
    /// Drain node name (port name, ground, or dotted internal).
    pub d: String,
    /// Gate node name.
    pub g: String,
    /// Source node name.
    pub s: String,
    /// Compact-model name.
    pub model: String,
    /// Gate width, µm.
    pub width_um: f64,
}

/// A resistor or capacitor of a flattened subcircuit.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatTwoTerminal {
    /// Dotted instance name.
    pub name: String,
    /// First terminal.
    pub a: String,
    /// Second terminal.
    pub b: String,
    /// Element value (Ω or F).
    pub value: f64,
}

/// A subcircuit with every nested call expanded: only primitive elements
/// remain, wired to port names, ground, or dotted internal node names.
#[derive(Debug, Clone, Default)]
pub struct FlatSubckt {
    /// Flattened transistors, in card order (outer cards first, then each
    /// nested call's cards at its position).
    pub devices: Vec<FlatDevice>,
    /// Flattened resistors.
    pub resistors: Vec<FlatTwoTerminal>,
    /// Flattened capacitors.
    pub capacitors: Vec<FlatTwoTerminal>,
}

impl Subckt {
    /// Expands every nested [`SubcktCard::Call`] (resolved against `all`,
    /// case-insensitively) into primitive elements. Internal nodes and
    /// instance names of a nested call `Xinner` become `inner.<name>`;
    /// ground stays global.
    ///
    /// # Errors
    ///
    /// [`SimError::SpiceParse`] (position 0:0 — definitions have no single
    /// source location after parsing) on unknown targets, port-count
    /// mismatches, or nesting deeper than 8 levels (which also catches
    /// definition cycles).
    pub fn flatten(&self, all: &[Subckt]) -> Result<FlatSubckt, SimError> {
        let mut flat = FlatSubckt::default();
        self.flatten_into(all, "", 0, &mut flat)?;
        Ok(flat)
    }

    fn flatten_into(
        &self,
        all: &[Subckt],
        prefix: &str,
        depth: usize,
        out: &mut FlatSubckt,
    ) -> Result<(), SimError> {
        if depth > MAX_SUBCKT_DEPTH {
            return Err(def_err(format!(
                "subcircuit nesting exceeds {MAX_SUBCKT_DEPTH} levels expanding `{}` (recursive definition?)",
                self.name
            )));
        }
        let reach = |n: &str| -> String {
            if is_ground_name(n) {
                n.to_string()
            } else {
                format!("{prefix}{n}")
            }
        };
        for card in &self.cards {
            match card {
                SubcktCard::Resistor { name, a, b, ohms } => out.resistors.push(FlatTwoTerminal {
                    name: format!("{prefix}{name}"),
                    a: reach(a),
                    b: reach(b),
                    value: *ohms,
                }),
                SubcktCard::Capacitor { name, a, b, farads } => {
                    out.capacitors.push(FlatTwoTerminal {
                        name: format!("{prefix}{name}"),
                        a: reach(a),
                        b: reach(b),
                        value: *farads,
                    })
                }
                SubcktCard::Device {
                    name,
                    d,
                    g,
                    s,
                    model,
                    width_um,
                } => out.devices.push(FlatDevice {
                    name: format!("{prefix}{name}"),
                    d: reach(d),
                    g: reach(g),
                    s: reach(s),
                    model: model.clone(),
                    width_um: *width_um,
                }),
                SubcktCard::Call {
                    name,
                    nodes,
                    subckt,
                } => {
                    let target = find_subckt(all, subckt).ok_or_else(|| {
                        def_err(format!(
                            "`{}` calls unknown subcircuit `{subckt}`",
                            self.name
                        ))
                    })?;
                    if nodes.len() != target.ports.len() {
                        return Err(def_err(format!(
                            "call `X{name}` connects {} nodes but `{}` has {} ports",
                            nodes.len(),
                            target.name,
                            target.ports.len()
                        )));
                    }
                    // Expand the callee into a scratch set, then rewrite its
                    // port references to this call's nodes and hoist.
                    let mut inner = FlatSubckt::default();
                    target.flatten_into(all, &format!("{prefix}{name}."), depth + 1, &mut inner)?;
                    let map: HashMap<String, &str> = target
                        .ports
                        .iter()
                        .enumerate()
                        .map(|(k, p)| (format!("{prefix}{name}.{p}"), nodes[k].as_str()))
                        .collect();
                    let rewrite = |n: String| -> String {
                        match map.get(&n) {
                            Some(outer) => reach(outer),
                            None => n,
                        }
                    };
                    for r in inner.resistors {
                        out.resistors.push(FlatTwoTerminal {
                            a: rewrite(r.a),
                            b: rewrite(r.b),
                            ..r
                        });
                    }
                    for c in inner.capacitors {
                        out.capacitors.push(FlatTwoTerminal {
                            a: rewrite(c.a),
                            b: rewrite(c.b),
                            ..c
                        });
                    }
                    for dv in inner.devices {
                        out.devices.push(FlatDevice {
                            d: rewrite(dv.d),
                            g: rewrite(dv.g),
                            s: rewrite(dv.s),
                            ..dv
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

/// A `.dc` sweep specification: step the named source and solve the
/// operating point at each value.
#[derive(Debug, Clone, PartialEq)]
pub struct DcSweep {
    /// Name of the swept voltage source (as on its `V` card).
    pub source: String,
    /// First value, V.
    pub start: f64,
    /// Last value, V.
    pub stop: f64,
    /// Increment, V (sign must point from `start` toward `stop`).
    pub step: f64,
}

/// An analysis request imported from a deck card.
#[derive(Debug, Clone, PartialEq)]
pub enum DeckAnalysis {
    /// `.tran <tstep> <tstop>` — a transient over `[0, t_stop]` with the
    /// requested (initial) step.
    Tran {
        /// Requested time step, s.
        dt: f64,
        /// End time, s.
        t_stop: f64,
    },
    /// `.dc` / `.op` — a DC operating point, optionally swept.
    Dc {
        /// `Some` for the 4-argument sweep form.
        sweep: Option<DcSweep>,
    },
}

impl DeckAnalysis {
    /// The [`TransientSpec`] a `.tran` card drives (adaptive stepping with
    /// the card's step as the initial/maximum-resolution step), `None` for
    /// DC analyses.
    pub fn transient_spec(&self) -> Option<TransientSpec> {
        match self {
            DeckAnalysis::Tran { dt, t_stop } => Some(TransientSpec::new(*t_stop, *dt)),
            DeckAnalysis::Dc { .. } => None,
        }
    }
}

/// The result of executing one [`DeckAnalysis`] (see [`Deck::run`]).
#[derive(Debug)]
pub enum DeckRun {
    /// A `.tran` result.
    Tran(TransientResult),
    /// A point `.dc`/`.op` result.
    Dc(DcResult),
    /// A swept `.dc` result: `(source value, operating point)` per step.
    DcSweep(Vec<(f64, DcResult)>),
}

/// A fully parsed SPICE deck: the flattened top-level circuit, the
/// (unexpanded) subcircuit definitions, initial conditions, and analysis
/// requests.
#[derive(Debug, Clone)]
pub struct Deck {
    /// `.title`, if present.
    pub title: Option<String>,
    /// The top-level circuit (subcircuit calls already flattened).
    pub circuit: Circuit,
    /// `.subckt` definitions, in source order.
    pub subckts: Vec<Subckt>,
    /// Analyses, in source order.
    pub analyses: Vec<DeckAnalysis>,
    /// `.ic` assignments (exact initial node voltages → UIC transient).
    pub ic: Vec<(NodeId, f64)>,
    /// `.nodeset` assignments (DC convergence hints).
    pub nodeset: Vec<(NodeId, f64)>,
}

impl Default for Deck {
    /// An empty deck around an empty circuit (ground pre-registered, like
    /// [`Circuit::new`]).
    fn default() -> Self {
        Deck {
            title: None,
            circuit: Circuit::new(),
            subckts: Vec::new(),
            analyses: Vec::new(),
            ic: Vec::new(),
            nodeset: Vec::new(),
        }
    }
}

impl Deck {
    /// Parses a deck. `models` resolves the compact-model names on device
    /// cards (see [`Circuit::from_spice`]).
    ///
    /// # Errors
    ///
    /// [`SimError::SpiceParse`] with the offending line and column on any
    /// malformed card, unknown model, or unresolved reference.
    pub fn parse(
        text: &str,
        models: &HashMap<String, Arc<dyn DeviceModel>>,
    ) -> Result<Deck, SimError> {
        Parser::new(models).parse(text)
    }

    /// Finds a subcircuit definition by name, case-insensitively.
    pub fn find_subckt(&self, name: &str) -> Option<&Subckt> {
        find_subckt(&self.subckts, name)
    }

    /// The initial state the deck's cards request: exact `.ic` voltages
    /// (UIC) when present, otherwise a DC operating point seeded by the
    /// `.nodeset` hints.
    pub fn initial_state(&self) -> InitialState {
        if self.ic.is_empty() {
            InitialState::DcOp(self.nodeset.clone())
        } else {
            InitialState::Uic(self.ic.clone())
        }
    }

    /// Executes every analysis card against the imported circuit, in card
    /// order, through the existing compiled-transient and DC paths.
    ///
    /// # Errors
    ///
    /// Simulation failures; [`SimError::InvalidCircuit`] if a `.dc` sweep
    /// names an unknown source.
    pub fn run(&self) -> Result<Vec<DeckRun>, SimError> {
        let mut out = Vec::new();
        for a in &self.analyses {
            match a {
                DeckAnalysis::Tran { .. } => {
                    let spec = a.transient_spec().expect("Tran has a spec");
                    let mut compiled = CompiledCircuit::compile(self.circuit.clone())?;
                    out.push(DeckRun::Tran(compiled.run(
                        &spec,
                        &self.initial_state(),
                        &[],
                    )?));
                }
                DeckAnalysis::Dc { sweep: None } => {
                    out.push(DeckRun::Dc(self.circuit.dc_op_with_guess(&self.nodeset)?));
                }
                DeckAnalysis::Dc { sweep: Some(sw) } => {
                    let id = self
                        .circuit
                        .vsources
                        .iter()
                        .position(|v| v.name.eq_ignore_ascii_case(&sw.source))
                        .map(crate::SourceId)
                        .ok_or_else(|| {
                            SimError::InvalidCircuit(format!(
                                ".dc sweeps unknown source `{}`",
                                sw.source
                            ))
                        })?;
                    let mut points = Vec::new();
                    let n = ((sw.stop - sw.start) / sw.step).floor() as usize;
                    for k in 0..=n {
                        let v = sw.start + sw.step * k as f64;
                        let mut c = self.circuit.clone();
                        c.set_vsource_wave(id, Waveform::dc(v));
                        points.push((v, c.dc_op_with_guess(&self.nodeset)?));
                    }
                    out.push(DeckRun::DcSweep(points));
                }
            }
        }
        Ok(out)
    }

    /// Serializes the deck in canonical form: `.title`, subcircuit
    /// definitions, top-level cards (class order R, C, V, I, X), `.ic`,
    /// `.nodeset`, analyses, `.end`. `.param` constants are inlined, so
    /// `parse → to_spice` is a fixed point on canonical decks.
    pub fn to_spice(&self) -> String {
        let mut out = String::new();
        if let Some(t) = &self.title {
            let _ = writeln!(out, ".title {t}");
        }
        for sub in &self.subckts {
            let _ = write!(out, ".subckt {}", sub.name);
            for p in &sub.ports {
                let _ = write!(out, " {p}");
            }
            let _ = writeln!(out);
            for card in &sub.cards {
                match card {
                    SubcktCard::Resistor { name, a, b, ohms } => {
                        let _ = writeln!(out, "R{name} {a} {b} {ohms:.6e}");
                    }
                    SubcktCard::Capacitor { name, a, b, farads } => {
                        let _ = writeln!(out, "C{name} {a} {b} {farads:.6e}");
                    }
                    SubcktCard::Device {
                        name,
                        d,
                        g,
                        s,
                        model,
                        width_um,
                    } => {
                        let _ = writeln!(out, "X{name} {d} {g} {s} {model} W={width_um:.4}");
                    }
                    SubcktCard::Call {
                        name,
                        nodes,
                        subckt,
                    } => {
                        let _ = write!(out, "X{name}");
                        for n in nodes {
                            let _ = write!(out, " {n}");
                        }
                        let _ = writeln!(out, " {subckt}");
                    }
                }
            }
            let _ = writeln!(out, ".ends");
        }
        self.circuit.write_cards(&mut out);
        for (node, v) in &self.ic {
            let _ = writeln!(out, ".ic v({})={v:.6e}", self.circuit.node_name(*node));
        }
        for (node, v) in &self.nodeset {
            let _ = writeln!(out, ".nodeset v({})={v:.6e}", self.circuit.node_name(*node));
        }
        for a in &self.analyses {
            match a {
                DeckAnalysis::Tran { dt, t_stop } => {
                    let _ = writeln!(out, ".tran {dt:.6e} {t_stop:.6e}");
                }
                DeckAnalysis::Dc { sweep: None } => {
                    let _ = writeln!(out, ".dc");
                }
                DeckAnalysis::Dc { sweep: Some(sw) } => {
                    // `source` is the stripped vsource name; re-add the `V`
                    // type char the parser removes so the card round-trips.
                    let _ = writeln!(
                        out,
                        ".dc V{} {:.6e} {:.6e} {:.6e}",
                        sw.source, sw.start, sw.stop, sw.step
                    );
                }
            }
        }
        let _ = writeln!(out, ".end");
        out
    }
}

impl Circuit {
    /// Parses a deck in the dialect produced by [`Circuit::to_spice`] and
    /// returns the flattened top-level circuit, discarding any subcircuit
    /// definitions that are never instantiated and any analysis cards (use
    /// [`Deck::parse`] to keep them).
    ///
    /// `models` maps model names (as they appear on `X` device cards) to
    /// device models; every device card's model must be present.
    ///
    /// # Errors
    ///
    /// [`SimError::SpiceParse`] on any malformed card or unknown model.
    pub fn from_spice(
        deck: &str,
        models: &HashMap<String, Arc<dyn DeviceModel>>,
    ) -> Result<Circuit, SimError> {
        Ok(Deck::parse(deck, models)?.circuit)
    }
}

// ---------------------------------------------------------------------------
// Lexing
// ---------------------------------------------------------------------------

/// A token with its 1-based source position.
#[derive(Debug, Clone)]
struct Tok {
    text: String,
    line: usize,
    col: usize,
}

/// A logical card: one source line plus its `+` continuations.
#[derive(Debug, Clone)]
struct Card {
    toks: Vec<Tok>,
}

impl Card {
    fn kind(&self) -> char {
        self.toks[0]
            .text
            .chars()
            .next()
            .expect("tokens are nonempty")
            .to_ascii_uppercase()
    }

    /// Position of token `k`, clamped to the last token (for "missing
    /// token" errors).
    fn at(&self, k: usize) -> (usize, usize) {
        let t = &self.toks[k.min(self.toks.len() - 1)];
        (t.line, t.col)
    }

    fn err(&self, k: usize, msg: impl Into<String>) -> SimError {
        let (line, col) = self.at(k);
        SimError::SpiceParse {
            line,
            col,
            msg: msg.into(),
        }
    }
}

/// Splits deck text into logical cards, tracking token positions and
/// folding `+` continuation lines into the preceding card.
fn lex(text: &str) -> Result<Vec<Card>, SimError> {
    let mut cards: Vec<Card> = Vec::new();
    for (ln, raw) in text.lines().enumerate() {
        let line_no = ln + 1;
        let trimmed = raw.trim_start();
        if trimmed.is_empty() || trimmed.starts_with('*') {
            continue;
        }
        let continuation = trimmed.starts_with('+');
        let body = if continuation {
            // Skip the '+' marker itself.
            let plus_at = raw.find('+').expect("continuation has a +");
            &raw[plus_at + 1..]
        } else {
            raw
        };
        let offset = raw.len() - body.len();
        let mut toks = Vec::new();
        let mut start: Option<usize> = None;
        for (i, ch) in body.char_indices().chain([(body.len(), ' ')]) {
            if ch.is_whitespace() {
                if let Some(s) = start.take() {
                    toks.push(Tok {
                        text: body[s..i].to_string(),
                        line: line_no,
                        col: offset + s + 1,
                    });
                }
            } else if start.is_none() {
                start = Some(i);
            }
        }
        if continuation {
            match cards.last_mut() {
                Some(card) => card.toks.extend(toks),
                None => {
                    return Err(SimError::SpiceParse {
                        line: line_no,
                        col: 1,
                        msg: "continuation line with no preceding card".into(),
                    })
                }
            }
        } else if !toks.is_empty() {
            cards.push(Card { toks });
        }
    }
    Ok(cards)
}

// ---------------------------------------------------------------------------
// Number parsing
// ---------------------------------------------------------------------------

/// Parses a SPICE value: a float, optionally with an engineering suffix
/// (`f p n u m k meg g t mil`, case-insensitive) and trailing unit letters
/// (`20fF`, `10pF`). Returns `None` for malformed or non-finite values.
pub fn parse_spice_number(tok: &str) -> Option<f64> {
    let finite = |v: f64| if v.is_finite() { Some(v) } else { None };
    // Fast path: a plain float (covers the exporter's `1.000000e-15`).
    // `parse::<f64>` also accepts "inf"/"NaN", which SPICE does not.
    if tok
        .chars()
        .next()
        .is_some_and(|c| c.is_ascii_digit() || c == '+' || c == '-' || c == '.')
    {
        if let Ok(v) = tok.parse::<f64>() {
            return finite(v);
        }
    } else {
        return None;
    }
    let lower = tok.to_ascii_lowercase();
    // Longest numeric prefix, then a recognized suffix.
    let split = (1..=lower.len())
        .rev()
        .find(|&i| lower.is_char_boundary(i) && lower[..i].parse::<f64>().is_ok())?;
    let val: f64 = lower[..split].parse().ok()?;
    let rest = &lower[split..];
    let (mult, tail) = if let Some(t) = rest.strip_prefix("meg") {
        (1e6, t)
    } else if let Some(t) = rest.strip_prefix("mil") {
        (25.4e-6, t)
    } else {
        let m = match rest.as_bytes().first()? {
            b'f' => 1e-15,
            b'p' => 1e-12,
            b'n' => 1e-9,
            b'u' => 1e-6,
            b'm' => 1e-3,
            b'k' => 1e3,
            b'g' => 1e9,
            b't' => 1e12,
            _ => return None,
        };
        (m, &rest[1..])
    };
    // Trailing unit letters ("F", "Hz") are ignored, anything else is
    // malformed.
    if !tail.chars().all(|ch| ch.is_ascii_alphabetic()) {
        return None;
    }
    finite(val * mult)
}

fn is_ground_name(n: &str) -> bool {
    n == "0" || n == "gnd" || n == "GND"
}

fn find_subckt<'a>(all: &'a [Subckt], name: &str) -> Option<&'a Subckt> {
    all.iter().find(|s| s.name.eq_ignore_ascii_case(name))
}

/// Position-less definition error (used by the flattener, which operates on
/// already-parsed definitions).
fn def_err(msg: String) -> SimError {
    SimError::SpiceParse {
        line: 0,
        col: 0,
        msg,
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    models: &'a HashMap<String, Arc<dyn DeviceModel>>,
    params: HashMap<String, f64>,
}

impl<'a> Parser<'a> {
    fn new(models: &'a HashMap<String, Arc<dyn DeviceModel>>) -> Self {
        Parser {
            models,
            params: HashMap::new(),
        }
    }

    /// Resolves a value token: `{name}` or bare `.param` reference, else a
    /// suffixed number.
    fn value(&self, card: &Card, k: usize) -> Result<f64, SimError> {
        let tok = &card.toks[k].text;
        self.value_text(card, k, tok)
    }

    /// Like [`Parser::value`] but for an embedded slice of a token (the
    /// `<w>` of `W=<w>`); errors still point at token `k`.
    fn value_text(&self, card: &Card, k: usize, text: &str) -> Result<f64, SimError> {
        let inner = text
            .strip_prefix('{')
            .and_then(|s| s.strip_suffix('}'))
            .unwrap_or(text);
        if let Some(&v) = self.params.get(&inner.to_ascii_lowercase()) {
            return Ok(v);
        }
        parse_spice_number(inner).ok_or_else(|| {
            card.err(
                k,
                format!("`{text}` is not a number (or a defined .param name)"),
            )
        })
    }

    fn parse(mut self, text: &str) -> Result<Deck, SimError> {
        let cards = lex(text)?;

        // Pass 0: `.param` constants are global (forward references work,
        // last definition wins) — collect them before anything else.
        for card in &cards {
            if card.toks[0].text.eq_ignore_ascii_case(".param") {
                self.parse_param(card)?;
            }
        }

        // Pass 1: split subckt definitions from top-level cards.
        let mut subckts: Vec<Subckt> = Vec::new();
        let mut top: Vec<&Card> = Vec::new();
        let mut current: Option<Subckt> = None;
        for card in &cards {
            let tok0 = card.toks[0].text.to_ascii_lowercase();
            if tok0 == ".subckt" {
                if current.is_some() {
                    return Err(card.err(0, "nested .subckt definitions are not supported"));
                }
                if card.toks.len() < 3 {
                    return Err(card.err(0, "expected .subckt NAME PORT1 [PORT2 …]"));
                }
                let name = card.toks[1].text.clone();
                if find_subckt(&subckts, &name).is_some() {
                    return Err(card.err(1, format!("duplicate .subckt `{name}`")));
                }
                current = Some(Subckt {
                    name,
                    ports: card.toks[2..].iter().map(|t| t.text.clone()).collect(),
                    cards: Vec::new(),
                });
            } else if tok0 == ".ends" {
                match current.take() {
                    Some(sub) => subckts.push(sub),
                    None => return Err(card.err(0, ".ends without a matching .subckt")),
                }
            } else if let Some(sub) = current.as_mut() {
                let parsed = self.parse_subckt_card(card)?;
                sub.cards.push(parsed);
            } else {
                top.push(card);
            }
        }
        if let Some(sub) = current {
            return Err(def_err(format!(
                ".subckt `{}` is never closed with .ends",
                sub.name
            )));
        }
        // Validate every definition expands (catches unknown call targets,
        // port-count mismatches, and cycles) before any instantiation.
        for sub in &subckts {
            sub.flatten(&subckts)?;
        }

        // Pass 2: top-level cards in order.
        let mut deck = Deck {
            subckts,
            ..Deck::default()
        };
        // `.ic`/`.nodeset` reference nodes that may be created by later
        // element cards; resolve after the circuit is complete.
        let mut ic_raw: Vec<(usize, usize, String, f64)> = Vec::new();
        let mut nodeset_raw: Vec<(usize, usize, String, f64)> = Vec::new();
        for card in top {
            let tok0 = &card.toks[0].text;
            if let Some(dot) = tok0.strip_prefix('.') {
                match dot.to_ascii_lowercase().as_str() {
                    "title" => {
                        deck.title = Some(
                            card.toks[1..]
                                .iter()
                                .map(|t| t.text.as_str())
                                .collect::<Vec<_>>()
                                .join(" "),
                        );
                    }
                    "end" => break,
                    "param" => {} // handled in pass 0
                    "ic" => self.parse_assignments(card, &mut ic_raw)?,
                    "nodeset" => self.parse_assignments(card, &mut nodeset_raw)?,
                    "tran" => {
                        if card.toks.len() != 3 {
                            return Err(card.err(0, "expected .tran TSTEP TSTOP"));
                        }
                        let dt = self.value(card, 1)?;
                        let t_stop = self.value(card, 2)?;
                        if dt <= 0.0 || t_stop < dt {
                            return Err(card.err(1, "need 0 < TSTEP <= TSTOP"));
                        }
                        deck.analyses.push(DeckAnalysis::Tran { dt, t_stop });
                    }
                    "dc" | "op" => {
                        if card.toks.len() == 1 {
                            deck.analyses.push(DeckAnalysis::Dc { sweep: None });
                        } else if card.toks.len() == 5 {
                            let start = self.value(card, 2)?;
                            let stop = self.value(card, 3)?;
                            let step = self.value(card, 4)?;
                            if step == 0.0 || (stop - start) * step < 0.0 {
                                return Err(card.err(4, "sweep step must move START toward STOP"));
                            }
                            deck.analyses.push(DeckAnalysis::Dc {
                                sweep: Some(DcSweep {
                                    source: strip_type_char(&card.toks[1].text),
                                    start,
                                    stop,
                                    step,
                                }),
                            });
                        } else {
                            return Err(card.err(0, "expected .dc or .dc SRC START STOP STEP"));
                        }
                    }
                    other => {
                        return Err(card.err(0, format!("unsupported card `.{other}`")));
                    }
                }
            } else {
                self.parse_element(card, &mut deck)?;
            }
        }

        for (line, col, name, v) in ic_raw {
            let node = deck.circuit.find_node(&name).ok_or(SimError::SpiceParse {
                line,
                col,
                msg: format!(".ic/.nodeset references unknown node `{name}`"),
            })?;
            deck.ic.push((node, v));
        }
        for (line, col, name, v) in nodeset_raw {
            let node = deck.circuit.find_node(&name).ok_or(SimError::SpiceParse {
                line,
                col,
                msg: format!(".ic/.nodeset references unknown node `{name}`"),
            })?;
            deck.nodeset.push((node, v));
        }
        Ok(deck)
    }

    fn parse_param(&mut self, card: &Card) -> Result<(), SimError> {
        if card.toks.len() < 2 {
            return Err(card.err(0, "expected .param NAME=VALUE …"));
        }
        for k in 1..card.toks.len() {
            let tok = &card.toks[k].text;
            let (name, val) = tok
                .split_once('=')
                .ok_or_else(|| card.err(k, format!("`{tok}` is not NAME=VALUE")))?;
            if name.is_empty() {
                return Err(card.err(k, "empty .param name"));
            }
            let v = self.value_text(card, k, val)?;
            self.params.insert(name.to_ascii_lowercase(), v);
        }
        Ok(())
    }

    /// Parses `v(<node>)=<value>` assignments on an `.ic`/`.nodeset` card.
    fn parse_assignments(
        &self,
        card: &Card,
        out: &mut Vec<(usize, usize, String, f64)>,
    ) -> Result<(), SimError> {
        if card.toks.len() < 2 {
            return Err(card.err(0, "expected v(NODE)=VALUE …"));
        }
        for k in 1..card.toks.len() {
            let tok = &card.toks[k].text;
            let lower = tok.to_ascii_lowercase();
            let bad = || card.err(k, format!("`{tok}` is not v(NODE)=VALUE"));
            let rest = lower.strip_prefix("v(").ok_or_else(bad)?;
            let close = rest.find(")=").ok_or_else(bad)?;
            // Node names are case-sensitive: slice the original token.
            let name = tok[2..2 + close].to_string();
            if name.is_empty() {
                return Err(bad());
            }
            let v = self.value_text(card, k, &tok[2 + close + 2..])?;
            let (line, col) = card.at(k);
            out.push((line, col, name, v));
        }
        Ok(())
    }

    fn parse_element(&self, card: &Card, deck: &mut Deck) -> Result<(), SimError> {
        let c = &mut deck.circuit;
        let toks = &card.toks;
        match card.kind() {
            'R' | 'C' => {
                if toks.len() != 4 {
                    return Err(card.err(0, "expected NAME A B VALUE"));
                }
                let a = c.node(&toks[1].text);
                let b = c.node(&toks[2].text);
                let val = self.value(card, 3)?;
                if a == b {
                    return Err(card.err(2, "element terminals must differ"));
                }
                if val <= 0.0 {
                    return Err(card.err(3, format!("element value must be positive, got {val}")));
                }
                if card.kind() == 'R' {
                    c.resistor(a, b, val);
                } else {
                    c.capacitor(a, b, val);
                }
            }
            'V' => {
                if toks.len() < 4 {
                    return Err(card.err(0, "expected NAME P M DC/PWL…"));
                }
                let plus = c.node(&toks[1].text);
                let minus = c.node(&toks[2].text);
                if plus == minus {
                    return Err(card.err(2, "source terminals must differ"));
                }
                let name = strip_type_char(&toks[0].text);
                let wave = self.parse_wave_toks(card, 3)?;
                c.vsource(&name, plus, minus, wave);
            }
            'I' => {
                if toks.len() < 4 {
                    return Err(card.err(0, "expected NAME FROM TO DC/PWL…"));
                }
                let from = c.node(&toks[1].text);
                let to = c.node(&toks[2].text);
                let wave = self.parse_wave_toks(card, 3)?;
                c.isource(from, to, wave);
            }
            'X' => {
                if let Some((d, g, s, model, w)) = self.x_device_form(card)? {
                    let d = c.node(&d);
                    let g = c.node(&g);
                    let s = c.node(&s);
                    let m = self.lookup_model(card, 4, &model)?;
                    c.transistor(&strip_type_char(&toks[0].text), m, d, g, s, w);
                } else {
                    self.stamp_call(card, deck)?;
                }
            }
            other => {
                return Err(card.err(0, format!("unsupported card type `{other}`")));
            }
        }
        Ok(())
    }

    /// If the `X` card is the 6-token device form (`… MODEL W=<w>`),
    /// returns its fields; `None` means it should be read as a subcircuit
    /// call.
    #[allow(clippy::type_complexity)] // one-shot destructuring helper
    fn x_device_form(
        &self,
        card: &Card,
    ) -> Result<Option<(String, String, String, String, f64)>, SimError> {
        let toks = &card.toks;
        let last = &toks[toks.len() - 1].text;
        if !last.len().gt(&2) || !last[..2].eq_ignore_ascii_case("w=") {
            return Ok(None);
        }
        if toks.len() != 6 {
            return Err(card.err(0, "expected NAME D G S MODEL W=<µm>"));
        }
        let w = self.value_text(card, 5, &last[2..])?;
        if w <= 0.0 {
            return Err(card.err(5, format!("device width must be positive, got {w}")));
        }
        Ok(Some((
            toks[1].text.clone(),
            toks[2].text.clone(),
            toks[3].text.clone(),
            toks[4].text.clone(),
            w,
        )))
    }

    fn lookup_model(
        &self,
        card: &Card,
        k: usize,
        name: &str,
    ) -> Result<Arc<dyn DeviceModel>, SimError> {
        self.models
            .get(name)
            .cloned()
            .ok_or_else(|| card.err(k, format!("unknown model `{name}`")))
    }

    /// Flattens a top-level subcircuit call into the deck's circuit with
    /// `<inst>.`-prefixed internal nodes and instance names.
    fn stamp_call(&self, card: &Card, deck: &mut Deck) -> Result<(), SimError> {
        let toks = &card.toks;
        if toks.len() < 3 {
            return Err(card.err(0, "expected NAME NODE… SUBCKT"));
        }
        let sub_name = &toks[toks.len() - 1].text;
        let Some(sub) = find_subckt(&deck.subckts, sub_name) else {
            return Err(card.err(
                toks.len() - 1,
                format!("unknown subcircuit or malformed device card: `{sub_name}` is not a defined .subckt (device cards end in W=<µm>)"),
            ));
        };
        let nodes: Vec<&str> = toks[1..toks.len() - 1]
            .iter()
            .map(|t| t.text.as_str())
            .collect();
        if nodes.len() != sub.ports.len() {
            return Err(card.err(
                1,
                format!(
                    "call connects {} nodes but `{}` has {} ports",
                    nodes.len(),
                    sub.name,
                    sub.ports.len()
                ),
            ));
        }
        let inst = strip_type_char(&toks[0].text);
        let flat = sub.flatten(&deck.subckts).map_err(|e| match e {
            SimError::SpiceParse { msg, .. } => card.err(0, msg),
            other => other,
        })?;
        let port_of: HashMap<&str, &str> = sub
            .ports
            .iter()
            .enumerate()
            .map(|(k, p)| (p.as_str(), nodes[k]))
            .collect();
        fn resolve(c: &mut Circuit, port_of: &HashMap<&str, &str>, inst: &str, n: &str) -> NodeId {
            if is_ground_name(n) {
                Circuit::GND
            } else if let Some(outer) = port_of.get(n) {
                c.node(outer)
            } else {
                c.node(&format!("{inst}.{n}"))
            }
        }
        let c = &mut deck.circuit;
        for r in &flat.resistors {
            let a = resolve(c, &port_of, &inst, &r.a);
            let b = resolve(c, &port_of, &inst, &r.b);
            // Port binding can alias two formally distinct subckt nodes
            // onto one outer node; catch it before the circuit asserts.
            if a == b {
                return Err(card.err(
                    0,
                    format!(
                        "call shorts both terminals of `{}.{}` together",
                        inst, r.name
                    ),
                ));
            }
            c.resistor(a, b, r.value);
        }
        for cap in &flat.capacitors {
            let a = resolve(c, &port_of, &inst, &cap.a);
            let b = resolve(c, &port_of, &inst, &cap.b);
            if a == b {
                return Err(card.err(
                    0,
                    format!(
                        "call shorts both terminals of `{}.{}` together",
                        inst, cap.name
                    ),
                ));
            }
            c.capacitor(a, b, cap.value);
        }
        for dv in &flat.devices {
            let m = self.lookup_model(card, toks.len() - 1, &dv.model)?;
            let c = &mut deck.circuit;
            let d = resolve(c, &port_of, &inst, &dv.d);
            let g = resolve(c, &port_of, &inst, &dv.g);
            let s = resolve(c, &port_of, &inst, &dv.s);
            c.transistor(&format!("{inst}.{}", dv.name), m, d, g, s, dv.width_um);
        }
        Ok(())
    }

    /// Parses a card inside a `.subckt` body (only R/C/X are meaningful in
    /// a cell definition).
    fn parse_subckt_card(&self, card: &Card) -> Result<SubcktCard, SimError> {
        let toks = &card.toks;
        match card.kind() {
            'R' | 'C' => {
                if toks.len() != 4 {
                    return Err(card.err(0, "expected NAME A B VALUE"));
                }
                let name = strip_type_char(&toks[0].text);
                let a = toks[1].text.clone();
                let b = toks[2].text.clone();
                let val = self.value(card, 3)?;
                if a == b {
                    return Err(card.err(2, "element terminals must differ"));
                }
                if val <= 0.0 {
                    return Err(card.err(3, format!("element value must be positive, got {val}")));
                }
                Ok(if card.kind() == 'R' {
                    SubcktCard::Resistor {
                        name,
                        a,
                        b,
                        ohms: val,
                    }
                } else {
                    SubcktCard::Capacitor {
                        name,
                        a,
                        b,
                        farads: val,
                    }
                })
            }
            'X' => {
                if let Some((d, g, s, model, w)) = self.x_device_form(card)? {
                    Ok(SubcktCard::Device {
                        name: strip_type_char(&toks[0].text),
                        d,
                        g,
                        s,
                        model,
                        width_um: w,
                    })
                } else {
                    if toks.len() < 3 {
                        return Err(card.err(0, "expected NAME NODE… SUBCKT"));
                    }
                    Ok(SubcktCard::Call {
                        name: strip_type_char(&toks[0].text),
                        nodes: toks[1..toks.len() - 1]
                            .iter()
                            .map(|t| t.text.clone())
                            .collect(),
                        subckt: toks[toks.len() - 1].text.clone(),
                    })
                }
            }
            other => Err(card.err(
                0,
                format!("card type `{other}` is not supported inside .subckt (only R, C, X)"),
            )),
        }
    }

    /// Parses the source spec starting at token `k0`: `DC <v>` or
    /// `PWL(t1 v1 …)` (possibly split across tokens).
    fn parse_wave_toks(&self, card: &Card, k0: usize) -> Result<Waveform, SimError> {
        let toks = &card.toks;
        let first = &toks[k0].text;
        if first.eq_ignore_ascii_case("dc") {
            if toks.len() != k0 + 2 {
                return Err(card.err(k0, "expected DC VALUE"));
            }
            return Ok(Waveform::dc(self.value(card, k0 + 1)?));
        }
        let joined: String = toks[k0..]
            .iter()
            .map(|t| t.text.as_str())
            .collect::<Vec<_>>()
            .join(" ");
        let lower = joined.to_ascii_lowercase();
        let bad = |why: &str| card.err(k0, format!("bad source spec `{joined}`: {why}"));
        if !lower.starts_with("pwl(") {
            return Err(bad("expected DC <v> or PWL(t1 v1 …)"));
        }
        let body = joined[4..]
            .strip_suffix(')')
            .ok_or_else(|| bad("missing closing `)`"))?;
        let mut nums = Vec::new();
        for t in body.split_whitespace() {
            nums.push(parse_spice_number(t).ok_or_else(|| bad(&format!("`{t}` is not a number")))?);
        }
        if nums.len() < 4 || !nums.len().is_multiple_of(2) {
            return Err(bad("need an even count of at least 4 numbers"));
        }
        let points: Vec<(f64, f64)> = nums.chunks(2).map(|p| (p[0], p[1])).collect();
        if !points.windows(2).all(|w| w[0].0 < w[1].0) {
            return Err(bad("PWL times must be strictly increasing"));
        }
        Ok(Waveform::pwl(&points))
    }
}

/// Drops the single leading element-type character (`V`, `X`, `R`, `C`,
/// `I`) from a card name, preserving the rest verbatim (`VVDD` → `VDD`).
fn strip_type_char(name: &str) -> String {
    let mut chars = name.chars();
    chars.next();
    chars.as_str().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfet_devices::{NTfet, PTfet};

    fn registry() -> HashMap<String, Arc<dyn DeviceModel>> {
        let mut m: HashMap<String, Arc<dyn DeviceModel>> = HashMap::new();
        m.insert("ntfet".into(), Arc::new(NTfet::nominal()));
        m.insert("ptfet".into(), Arc::new(PTfet::nominal()));
        m
    }

    fn sample_circuit() -> Circuit {
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let inp = c.node("in");
        let out = c.node("out");
        c.vsource("VDD", vdd, Circuit::GND, Waveform::dc(0.8));
        c.vsource(
            "VIN",
            inp,
            Circuit::GND,
            Waveform::pwl(&[(0.0, 0.0), (1e-9, 0.8)]),
        );
        c.resistor(out, Circuit::GND, 1e6);
        c.capacitor(out, Circuit::GND, 1e-15);
        c.transistor("MP", Arc::new(PTfet::nominal()), out, inp, vdd, 0.1);
        c.transistor(
            "MN",
            Arc::new(NTfet::nominal()),
            out,
            inp,
            Circuit::GND,
            0.1,
        );
        c
    }

    #[test]
    fn export_contains_all_cards() {
        let deck = sample_circuit().to_spice("inverter");
        assert!(deck.starts_with(".title inverter"));
        assert!(deck.contains("VVDD vdd 0 DC 8.000000e-1"));
        assert!(deck.contains("PWL(0.000000e0 0.000000e0 1.000000e-9 8.000000e-1)"));
        assert!(deck.contains("R0 out 0 1.000000e6"));
        assert!(deck.contains("C0 out 0 1.000000e-15"));
        assert!(deck.contains("XMP out in vdd ptfet W=0.1000"));
        assert!(deck.contains("XMN out in 0 ntfet W=0.1000"));
        assert!(deck.trim_end().ends_with(".end"));
    }

    #[test]
    fn roundtrip_preserves_behaviour() {
        let original = sample_circuit();
        let deck = original.to_spice("rt");
        let parsed = Circuit::from_spice(&deck, &registry()).unwrap();

        assert_eq!(parsed.element_count(), original.element_count());
        // Behavioural check: identical DC operating points.
        let out_o = original.find_node("out").unwrap();
        let out_p = parsed.find_node("out").unwrap();
        let vo = original.dc_op().unwrap().voltage(out_o);
        let vp = parsed.dc_op().unwrap().voltage(out_p);
        assert!((vo - vp).abs() < 1e-9, "{vo} vs {vp}");
    }

    #[test]
    fn roundtrip_is_byte_identical() {
        let deck = sample_circuit().to_spice("rt");
        let parsed = Circuit::from_spice(&deck, &registry()).unwrap();
        assert_eq!(parsed.to_spice("rt"), deck);
    }

    #[test]
    fn source_names_survive_one_roundtrip() {
        // `VVDD` must re-import as source `VDD`, not `DD` (the old parser
        // stripped every leading V).
        let deck = sample_circuit().to_spice("names");
        let parsed = Circuit::from_spice(&deck, &registry()).unwrap();
        assert!(parsed.vsources.iter().any(|v| v.name == "VDD"));
        assert!(parsed.vsources.iter().any(|v| v.name == "VIN"));
        assert!(parsed.transistors().iter().any(|t| t.name == "MP"));
    }

    #[test]
    fn pwl_current_sources_roundtrip() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.resistor(a, Circuit::GND, 1e3);
        c.isource(Circuit::GND, a, Waveform::pwl(&[(0.0, 0.0), (1e-9, 1e-6)]));
        let deck = c.to_spice("ipwl");
        assert!(deck.contains("I0 0 a PWL(0.000000e0 0.000000e0 1.000000e-9 1.000000e-6)"));
        let parsed = Circuit::from_spice(&deck, &registry()).unwrap();
        assert_eq!(parsed.to_spice("ipwl"), deck);
    }

    #[test]
    fn engineering_suffixes_parse() {
        for (tok, expect) in [
            ("1.2u", 1.2e-6),
            ("10meg", 10e6),
            ("5p", 5e-12),
            ("20fF", 20e-15),
            ("3k", 3e3),
            ("2.5n", 2.5e-9),
            ("1m", 1e-3),
            ("4g", 4e9),
            ("1t", 1e12),
            ("7MEG", 7e6),
            ("1mil", 25.4e-6),
            ("-3.3u", -3.3e-6),
            ("1e-9", 1e-9),
            ("8.000000e-1", 0.8),
        ] {
            let got = parse_spice_number(tok).unwrap_or_else(|| panic!("{tok} must parse"));
            assert!(
                (got - expect).abs() <= 1e-12 * expect.abs().max(1e-30),
                "{tok}: {got} != {expect}"
            );
        }
        for tok in ["notanumber", "1.2.3", "1x", "u", "inf", "nan", "1e"] {
            assert!(parse_spice_number(tok).is_none(), "{tok} must be rejected");
        }
    }

    #[test]
    fn cards_are_case_insensitive() {
        let deck = "r1 a 0 10K\nc1 a 0 20fF\nvIN a 0 dc 0.8\n.END\n";
        let c = Circuit::from_spice(deck, &registry()).unwrap();
        assert_eq!(c.element_count(), 3);
        assert!((c.resistors[0].ohms - 10e3).abs() < 1e-9);
        assert!((c.capacitors[0].farads - 20e-15).abs() < 1e-27);
        assert!(c.vsources.iter().any(|v| v.name == "IN"));
    }

    #[test]
    fn parse_errors_carry_line_and_column() {
        let deck = ".title x\nR1 a 0 100\nC1 a 0 notanumber\n";
        let err = Circuit::from_spice(deck, &registry()).unwrap_err();
        match err {
            SimError::SpiceParse { line, col, ref msg } => {
                assert_eq!(line, 3, "{err}");
                assert_eq!(col, 8, "{err}");
                assert!(msg.contains("notanumber"));
            }
            other => panic!("expected SpiceParse, got {other:?}"),
        }
    }

    #[test]
    fn parser_rejects_unknown_model() {
        let deck = "Xbad a b c mystery W=0.1\n.end\n";
        let err = Circuit::from_spice(deck, &registry()).unwrap_err();
        assert!(err.to_string().contains("unknown model"));
    }

    #[test]
    fn parser_rejects_malformed_cards() {
        for deck in [
            "R1 a 0\n",
            "Vx a 0 SIN 1\n",
            "I1 a 0 DC\n",
            "Qx a b c\n",
            "C1 a 0 notanumber\n",
            "Xbad a b c ntfet W=-0.1\n",
            ".tran 1p\n",
            ".ic q=0.8\n",
        ] {
            let err = Circuit::from_spice(deck, &registry());
            assert!(
                matches!(err, Err(SimError::SpiceParse { .. })),
                "must reject {deck:?}, got {err:?}"
            );
        }
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let deck = "* a comment\n\n.title x\nR1 a 0 100\n.end\n";
        let c = Circuit::from_spice(deck, &registry()).unwrap();
        assert_eq!(c.element_count(), 1);
    }

    #[test]
    fn continuation_lines_join() {
        let deck = "Vp a 0 PWL(0 0\n+ 1n 0.8\n+ 2n 0)\n.end\n";
        let c = Circuit::from_spice(deck, &registry()).unwrap();
        assert_eq!(c.vsource_count(), 1);
        match &c.vsources[0].wave {
            Waveform::Pwl(lut) => assert_eq!(lut.axis().len(), 3),
            w => panic!("expected PWL, got {w:?}"),
        }
    }

    #[test]
    fn pwl_rejects_bad_shapes() {
        for deck in [
            "Vx a 0 PWL(0 1 2)\n",    // odd count
            "Vx a 0 PWL(0 1)\n",      // too few
            "Vx a 0 PWL(1n 0 0 1)\n", // non-increasing
            "Vx a 0 PWL(0 1 1n 2\n",  // unclosed
            "Vx a 0 garbage\n",       // unknown spec
        ] {
            assert!(
                matches!(
                    Circuit::from_spice(deck, &registry()),
                    Err(SimError::SpiceParse { .. })
                ),
                "must reject {deck:?}"
            );
        }
    }

    const INVERTER_SUBCKT: &str = "\
.title hier
.subckt inv in out vdd
XMP out in vdd ptfet W=0.1000
XMN out in 0 ntfet W=0.1000
.ends
Xu1 a y vdd1 inv
VVDD vdd1 0 DC 8.000000e-1
VVIN a 0 DC 0.000000e0
R0 y 0 1.000000e6
.end
";

    #[test]
    fn subckt_call_flattens_with_dotted_names() {
        let deck = Deck::parse(INVERTER_SUBCKT, &registry()).unwrap();
        assert_eq!(deck.subckts.len(), 1);
        assert_eq!(deck.circuit.transistors().len(), 2);
        let names: Vec<&str> = deck
            .circuit
            .transistors()
            .iter()
            .map(|t| t.name.as_str())
            .collect();
        assert_eq!(names, vec!["u1.MP", "u1.MN"]);
        // Ports map to outer nodes; output voltage ≈ VDD for input low.
        let y = deck.circuit.find_node("y").unwrap();
        let op = deck.circuit.dc_op().unwrap();
        assert!(
            op.voltage(y) > 0.7,
            "inverter output high: {}",
            op.voltage(y)
        );
    }

    #[test]
    fn nested_subckt_calls_flatten_two_levels() {
        let deck_text = "\
.subckt inv in out vdd
XMP out in vdd ptfet W=0.1000
XMN out in 0 ntfet W=0.1000
.ends
.subckt buf in out vdd
Xa in mid vdd inv
Xb mid out vdd inv
.ends
Xu b y vr buf
VVDD vr 0 DC 8.000000e-1
VVB b 0 DC 0.000000e0
R0 y 0 1.000000e6
.end
";
        let deck = Deck::parse(deck_text, &registry()).unwrap();
        assert_eq!(deck.circuit.transistors().len(), 4);
        // The buffer's internal node carries a two-level dotted name.
        assert!(deck.circuit.find_node("u.mid").is_some());
        assert!(deck.circuit.find_node("u.a.nonexistent").is_none());
        let op = deck.circuit.dc_op().unwrap();
        let y = deck.circuit.find_node("y").unwrap();
        assert!(
            op.voltage(y) < 0.05,
            "buffer of low is low: {}",
            op.voltage(y)
        );
    }

    #[test]
    fn recursive_subckt_is_rejected() {
        let deck_text = "\
.subckt a x
Xq x b
.ends
.subckt b x
Xq x a
.ends
Xtop n a
.end
";
        let err = Deck::parse(deck_text, &registry()).unwrap_err();
        assert!(err.to_string().contains("nesting"), "{err}");
    }

    #[test]
    fn param_constants_resolve() {
        let deck_text = "\
.param wacc=0.1 cbit=20f
Xm a g 0 ntfet W={wacc}
C1 a 0 cbit
.end
";
        let deck = Deck::parse(deck_text, &registry()).unwrap();
        assert!((deck.circuit.transistors()[0].width_um - 0.1).abs() < 1e-12);
        assert!((deck.circuit.capacitors[0].farads - 20e-15).abs() < 1e-27);
    }

    #[test]
    fn analysis_and_ic_cards_import() {
        let deck_text = "\
R1 a b 1.000000e3
C1 b 0 1.000000e-12
VIN a 0 DC 8.000000e-1
.ic v(b)=0.000000e0
.nodeset v(a)=8.000000e-1
.tran 1.000000e-11 5.000000e-9
.dc
.end
";
        let deck = Deck::parse(deck_text, &registry()).unwrap();
        assert_eq!(deck.analyses.len(), 2);
        let spec = deck.analyses[0].transient_spec().unwrap();
        assert!((spec.t_stop - 5e-9).abs() < 1e-21);
        assert!(matches!(deck.initial_state(), InitialState::Uic(ref v) if v.len() == 1));
        let runs = deck.run().unwrap();
        assert_eq!(runs.len(), 2);
        match (&runs[0], &runs[1]) {
            (DeckRun::Tran(tr), DeckRun::Dc(op)) => {
                let b = deck.circuit.find_node("b").unwrap();
                // RC charges from the .ic value toward the source.
                assert!(tr.final_voltage(b) > 0.75);
                assert!((op.voltage(b) - 0.8).abs() < 1e-6);
            }
            other => panic!("unexpected runs {other:?}"),
        }
    }

    #[test]
    fn dc_sweep_runs() {
        let deck_text = "\
R1 a b 1.000000e3
R2 b 0 1.000000e3
VIN a 0 DC 0.000000e0
.dc VIN 0 0.8 0.4
.end
";
        let deck = Deck::parse(deck_text, &registry()).unwrap();
        let runs = deck.run().unwrap();
        match &runs[0] {
            DeckRun::DcSweep(pts) => {
                assert_eq!(pts.len(), 3);
                let b = deck.circuit.find_node("b").unwrap();
                assert!((pts[2].0 - 0.8).abs() < 1e-12);
                assert!((pts[2].1.voltage(b) - 0.4).abs() < 1e-6);
            }
            other => panic!("expected sweep, got {other:?}"),
        }
    }

    #[test]
    fn deck_serialization_is_a_fixed_point() {
        let deck = Deck::parse(INVERTER_SUBCKT, &registry()).unwrap();
        let text = deck.to_spice();
        let again = Deck::parse(&text, &registry()).unwrap();
        assert_eq!(again.to_spice(), text);
        // The canonical form keeps the definition but flattens the
        // top-level call onto dotted instance names.
        assert!(text.contains(".subckt inv in out vdd"));
        assert!(text.contains("Xu1.MP y a vdd1 ptfet W=0.1000"));
        assert!(text.contains("Xu1.MN y a 0 ntfet W=0.1000"));
    }

    #[test]
    fn unused_subckt_ports_mismatch_is_rejected() {
        let deck_text = "\
.subckt inv in out vdd
XMN out in 0 ntfet W=0.1
.ends
Xu a y inv
.end
";
        let err = Deck::parse(deck_text, &registry()).unwrap_err();
        assert!(err.to_string().contains("ports"), "{err}");
    }
}
