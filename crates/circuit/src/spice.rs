//! SPICE-deck interchange.
//!
//! The circuits in this workspace are built programmatically, but the EDA
//! world speaks SPICE decks. This module provides:
//!
//! * [`Circuit::to_spice`] — export any in-memory circuit as a SPICE-format
//!   netlist (element cards, PWL sources, transistors as `X` subcircuit
//!   calls naming their compact model), suitable for inspection, diffing,
//!   or replaying in an external simulator that has equivalent models;
//! * [`Circuit::from_spice`] — parse the same dialect back, resolving
//!   transistor models through a caller-supplied registry.
//!
//! The dialect is deliberately small and fully round-trippable: `R`, `C`,
//! `V` (DC and PWL), `I` (DC), `X` (three-terminal device), `*` comments,
//! `.title`/`.end` cards.

use crate::error::SimError;
use crate::netlist::Circuit;
use crate::waveform::Waveform;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;
use tfet_devices::model::DeviceModel;

impl Circuit {
    /// Renders the circuit as a SPICE-format deck.
    ///
    /// Transistors appear as `X<name> <d> <g> <s> <model> W=<µm>` calls;
    /// the model names are this workspace's compact-model names
    /// (`ntfet`, `ptfet`, `nmos`, `pmos`, or LUT variants).
    pub fn to_spice(&self, title: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, ".title {title}");
        let _ = writeln!(out, "* exported by tfet-circuit");

        let node = |id| self.node_name(id).to_string();

        for (k, r) in self.resistors.iter().enumerate() {
            let _ = writeln!(out, "R{k} {} {} {:.6e}", node(r.a), node(r.b), r.ohms);
        }
        for (k, c) in self.capacitors.iter().enumerate() {
            let _ = writeln!(out, "C{k} {} {} {:.6e}", node(c.a), node(c.b), c.farads);
        }
        for v in &self.vsources {
            let _ = write!(out, "V{} {} {} ", v.name, node(v.plus), node(v.minus));
            match &v.wave {
                Waveform::Dc(val) => {
                    let _ = writeln!(out, "DC {val:.6e}");
                }
                Waveform::Pwl(lut) => {
                    let _ = write!(out, "PWL(");
                    for (i, (&t, &val)) in lut.axis().iter().zip(lut.values()).enumerate() {
                        if i > 0 {
                            let _ = write!(out, " ");
                        }
                        let _ = write!(out, "{t:.6e} {val:.6e}");
                    }
                    let _ = writeln!(out, ")");
                }
            }
        }
        for (k, i) in self.isources.iter().enumerate() {
            match &i.wave {
                Waveform::Dc(val) => {
                    let _ = writeln!(out, "I{k} {} {} DC {val:.6e}", node(i.from), node(i.to));
                }
                Waveform::Pwl(_) => {
                    let _ = writeln!(
                        out,
                        "* I{k}: PWL current source omitted (unsupported in export)"
                    );
                }
            }
        }
        for t in &self.transistors {
            let _ = writeln!(
                out,
                "X{} {} {} {} {} W={:.4}",
                t.name,
                node(t.d),
                node(t.g),
                node(t.s),
                t.model.name(),
                t.width_um
            );
        }
        let _ = writeln!(out, ".end");
        out
    }

    /// Parses a deck in the dialect produced by [`Circuit::to_spice`].
    ///
    /// `models` maps model names (as they appear on `X` cards) to device
    /// models; every `X` card's model must be present.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidCircuit`] on any malformed card or unknown model.
    pub fn from_spice(
        deck: &str,
        models: &HashMap<String, Arc<dyn DeviceModel>>,
    ) -> Result<Circuit, SimError> {
        let mut c = Circuit::new();
        let bad =
            |line: &str, why: &str| SimError::InvalidCircuit(format!("bad card `{line}`: {why}"));
        let parse_f = |tok: &str, line: &str| -> Result<f64, SimError> {
            tok.parse::<f64>()
                .map_err(|_| bad(line, &format!("`{tok}` is not a number")))
        };

        for raw in deck.lines() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('*') {
                continue;
            }
            let lower = line.to_ascii_lowercase();
            if lower.starts_with(".title") || lower.starts_with(".end") {
                continue;
            }
            let toks: Vec<&str> = line.split_whitespace().collect();
            let kind = line.chars().next().expect("nonempty").to_ascii_uppercase();
            match kind {
                'R' | 'C' => {
                    if toks.len() != 4 {
                        return Err(bad(line, "expected NAME A B VALUE"));
                    }
                    let a = c.node(toks[1]);
                    let b = c.node(toks[2]);
                    let val = parse_f(toks[3], line)?;
                    if kind == 'R' {
                        c.resistor(a, b, val);
                    } else {
                        c.capacitor(a, b, val);
                    }
                }
                'V' => {
                    if toks.len() < 4 {
                        return Err(bad(line, "expected NAME P M DC/PWL…"));
                    }
                    let plus = c.node(toks[1]);
                    let minus = c.node(toks[2]);
                    let name = toks[0].trim_start_matches(['V', 'v']);
                    let spec = toks[3..].join(" ");
                    let wave = parse_wave(&spec).ok_or_else(|| bad(line, "bad source spec"))?;
                    c.vsource(name, plus, minus, wave);
                }
                'I' => {
                    if toks.len() != 5 || !toks[3].eq_ignore_ascii_case("DC") {
                        return Err(bad(line, "expected NAME FROM TO DC VALUE"));
                    }
                    let from = c.node(toks[1]);
                    let to = c.node(toks[2]);
                    let val = parse_f(toks[4], line)?;
                    c.isource(from, to, Waveform::dc(val));
                }
                'X' => {
                    if toks.len() != 6 || !toks[5].to_ascii_uppercase().starts_with("W=") {
                        return Err(bad(line, "expected NAME D G S MODEL W=<µm>"));
                    }
                    let d = c.node(toks[1]);
                    let g = c.node(toks[2]);
                    let s = c.node(toks[3]);
                    let model = models
                        .get(toks[4])
                        .ok_or_else(|| bad(line, &format!("unknown model `{}`", toks[4])))?
                        .clone();
                    let w = parse_f(&toks[5][2..], line)?;
                    let name = toks[0].trim_start_matches(['X', 'x']);
                    c.transistor(name, model, d, g, s, w);
                }
                other => {
                    return Err(bad(line, &format!("unsupported card type `{other}`")));
                }
            }
        }
        Ok(c)
    }
}

/// Parses `DC <v>` or `PWL(t1 v1 t2 v2 …)`.
fn parse_wave(spec: &str) -> Option<Waveform> {
    let spec = spec.trim();
    if let Some(rest) = spec
        .strip_prefix("DC ")
        .or_else(|| spec.strip_prefix("dc "))
    {
        return rest.trim().parse::<f64>().ok().map(Waveform::dc);
    }
    let body = spec
        .strip_prefix("PWL(")
        .or_else(|| spec.strip_prefix("pwl("))?
        .strip_suffix(')')?;
    let nums: Vec<f64> = body
        .split_whitespace()
        .map(|t| t.parse::<f64>())
        .collect::<Result<_, _>>()
        .ok()?;
    if nums.len() < 4 || !nums.len().is_multiple_of(2) {
        return None;
    }
    let points: Vec<(f64, f64)> = nums.chunks(2).map(|p| (p[0], p[1])).collect();
    Some(Waveform::pwl(&points))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfet_devices::{NTfet, PTfet};

    fn registry() -> HashMap<String, Arc<dyn DeviceModel>> {
        let mut m: HashMap<String, Arc<dyn DeviceModel>> = HashMap::new();
        m.insert("ntfet".into(), Arc::new(NTfet::nominal()));
        m.insert("ptfet".into(), Arc::new(PTfet::nominal()));
        m
    }

    fn sample_circuit() -> Circuit {
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let inp = c.node("in");
        let out = c.node("out");
        c.vsource("VDD", vdd, Circuit::GND, Waveform::dc(0.8));
        c.vsource(
            "VIN",
            inp,
            Circuit::GND,
            Waveform::pwl(&[(0.0, 0.0), (1e-9, 0.8)]),
        );
        c.resistor(out, Circuit::GND, 1e6);
        c.capacitor(out, Circuit::GND, 1e-15);
        c.transistor("MP", Arc::new(PTfet::nominal()), out, inp, vdd, 0.1);
        c.transistor(
            "MN",
            Arc::new(NTfet::nominal()),
            out,
            inp,
            Circuit::GND,
            0.1,
        );
        c
    }

    #[test]
    fn export_contains_all_cards() {
        let deck = sample_circuit().to_spice("inverter");
        assert!(deck.starts_with(".title inverter"));
        assert!(deck.contains("VVDD vdd 0 DC 8.000000e-1"));
        assert!(deck.contains("PWL(0.000000e0 0.000000e0 1.000000e-9 8.000000e-1)"));
        assert!(deck.contains("R0 out 0 1.000000e6"));
        assert!(deck.contains("C0 out 0 1.000000e-15"));
        assert!(deck.contains("XMP out in vdd ptfet W=0.1000"));
        assert!(deck.contains("XMN out in 0 ntfet W=0.1000"));
        assert!(deck.trim_end().ends_with(".end"));
    }

    #[test]
    fn roundtrip_preserves_behaviour() {
        let original = sample_circuit();
        let deck = original.to_spice("rt");
        let parsed = Circuit::from_spice(&deck, &registry()).unwrap();

        assert_eq!(parsed.element_count(), original.element_count());
        // Behavioural check: identical DC operating points.
        let out_o = original.find_node("out").unwrap();
        let out_p = parsed.find_node("out").unwrap();
        let vo = original.dc_op().unwrap().voltage(out_o);
        let vp = parsed.dc_op().unwrap().voltage(out_p);
        assert!((vo - vp).abs() < 1e-9, "{vo} vs {vp}");
    }

    #[test]
    fn parser_rejects_unknown_model() {
        let deck = "Xbad a b c mystery W=0.1\n.end\n";
        let err = Circuit::from_spice(deck, &registry()).unwrap_err();
        assert!(err.to_string().contains("unknown model"));
    }

    #[test]
    fn parser_rejects_malformed_cards() {
        for deck in [
            "R1 a 0\n",
            "Vx a 0 SIN 1\n",
            "I1 a 0 DC\n",
            "Qx a b c\n",
            "C1 a 0 notanumber\n",
        ] {
            assert!(
                Circuit::from_spice(deck, &registry()).is_err(),
                "must reject {deck:?}"
            );
        }
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let deck = "* a comment\n\n.title x\nR1 a 0 100\n.end\n";
        let c = Circuit::from_spice(deck, &registry()).unwrap();
        assert_eq!(c.element_count(), 1);
    }

    #[test]
    fn pwl_parse_rejects_odd_counts() {
        assert!(parse_wave("PWL(0 1 2)").is_none());
        assert!(parse_wave("PWL(0 1)").is_none());
        assert!(parse_wave("DC 0.5").is_some());
        assert!(parse_wave("garbage").is_none());
    }
}
