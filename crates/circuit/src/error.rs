//! Simulator error type.

use std::fmt;
use tfet_numerics::matrix::SolveError;

/// Errors raised by DC and transient analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The MNA matrix became singular (floating node, or a source loop).
    SingularMatrix {
        /// Simulation time at which it happened, seconds (`None` for DC).
        time: Option<f64>,
    },
    /// Newton–Raphson failed to converge within the iteration limit, even
    /// after g_min stepping.
    NoConvergence {
        /// Simulation time at which it happened, seconds (`None` for DC).
        time: Option<f64>,
        /// Iterations performed at the final attempt.
        iterations: usize,
        /// Largest voltage update magnitude at the final iteration, V.
        last_delta: f64,
        /// Residual infinity-norm `|f(x)|_inf` at the final iteration —
        /// how far the last iterate was from satisfying KCL, A. Infinity
        /// when the iterate itself became non-finite.
        residual_norm: f64,
    },
    /// The circuit is structurally invalid (e.g. zero-valued resistor,
    /// transistor width ≤ 0, empty circuit).
    InvalidCircuit(String),
    /// A SPICE deck failed to parse. `line` and `col` are 1-based positions
    /// of the offending token in the deck text (for continuation lines the
    /// position refers to the physical line the token appears on).
    SpiceParse {
        /// 1-based line number of the offending token.
        line: usize,
        /// 1-based column of the offending token.
        col: usize,
        /// What went wrong.
        msg: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::SingularMatrix { time: Some(t) } => {
                write!(f, "singular MNA matrix at t = {t:e} s")
            }
            SimError::SingularMatrix { time: None } => {
                write!(f, "singular MNA matrix in DC analysis")
            }
            SimError::NoConvergence {
                time,
                iterations,
                last_delta,
                residual_norm,
            } => {
                match time {
                    Some(t) => write!(f, "no convergence at t = {t:e} s")?,
                    None => write!(f, "no convergence in DC analysis")?,
                }
                write!(
                    f,
                    " after {iterations} iterations (last |Δv| = {last_delta:e} V, \
                     residual |f|∞ = {residual_norm:e} A)"
                )
            }
            SimError::InvalidCircuit(msg) => write!(f, "invalid circuit: {msg}"),
            SimError::SpiceParse { line, col, msg } => {
                write!(f, "spice parse error at line {line}, column {col}: {msg}")
            }
        }
    }
}

impl std::error::Error for SimError {}

impl SimError {
    pub(crate) fn from_solve(err: SolveError, time: Option<f64>) -> Self {
        match err {
            SolveError::Singular { .. } => SimError::SingularMatrix { time },
            SolveError::DimensionMismatch { expected, got } => SimError::InvalidCircuit(format!(
                "internal dimension mismatch: expected {expected}, got {got}"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SimError::SingularMatrix { time: Some(1e-9) };
        assert!(e.to_string().contains("1e-9"));
        let e = SimError::NoConvergence {
            time: None,
            iterations: 200,
            last_delta: 0.5,
            residual_norm: 2.5e-3,
        };
        assert!(e.to_string().contains("200"));
        assert!(e.to_string().contains("2.5e-3"));
        let e = SimError::InvalidCircuit("no elements".into());
        assert!(e.to_string().contains("no elements"));
        let e = SimError::SpiceParse {
            line: 12,
            col: 7,
            msg: "`1.2x` is not a number".into(),
        };
        assert!(e.to_string().contains("line 12"));
        assert!(e.to_string().contains("column 7"));
        assert!(e.to_string().contains("1.2x"));
    }

    #[test]
    fn solve_error_conversion() {
        let e = SimError::from_solve(SolveError::Singular { step: 3 }, Some(2e-12));
        assert_eq!(e, SimError::SingularMatrix { time: Some(2e-12) });
    }
}
