//! Property-based tests for the circuit simulator.

use proptest::prelude::*;
use std::sync::Arc;
use tfet_circuit::transient::InitialState;
use tfet_circuit::{Circuit, DcSweep, Deck, DeckAnalysis, NodeId, Subckt, SubcktCard};
use tfet_circuit::{TransientSpec, Waveform};
use tfet_devices::{standard_models, NTfet, Nmos, PTfet, Pmos};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Resistive ladder: the solved node voltages must satisfy KCL at every
    /// interior node to solver tolerance.
    #[test]
    fn ladder_satisfies_kcl(
        rs in prop::collection::vec(10.0f64..1e5, 3..8),
        v_in in 0.1f64..2.0,
    ) {
        let mut c = Circuit::new();
        let top = c.node("n0");
        c.vsource("V", top, Circuit::GND, Waveform::dc(v_in));
        let mut prev = top;
        let mut nodes = vec![top];
        for (k, &r) in rs.iter().enumerate() {
            let n = c.node(&format!("n{}", k + 1));
            c.resistor(prev, n, r);
            nodes.push(n);
            prev = n;
        }
        c.resistor(prev, Circuit::GND, 1e3);
        let op = c.dc_op().unwrap();

        // Interior nodes: current in = current out.
        for k in 1..nodes.len() {
            let v = op.voltage(nodes[k]);
            let v_up = op.voltage(nodes[k - 1]);
            let i_in = (v_up - v) / rs[k - 1];
            let i_out = if k < rs.len() {
                (v - op.voltage(nodes[k + 1])) / rs[k]
            } else {
                v / 1e3
            };
            prop_assert!((i_in - i_out).abs() < 1e-6 * i_in.abs().max(1e-12),
                "KCL violated at node {k}: {i_in:e} vs {i_out:e}");
        }
    }

    /// Voltage divider with arbitrary positive resistors solves exactly.
    #[test]
    fn divider_is_exact(r1 in 1.0f64..1e6, r2 in 1.0f64..1e6, v in 0.01f64..10.0) {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.vsource("V", a, Circuit::GND, Waveform::dc(v));
        c.resistor(a, b, r1);
        c.resistor(b, Circuit::GND, r2);
        let op = c.dc_op().unwrap();
        let expect = v * r2 / (r1 + r2);
        prop_assert!((op.voltage(b) - expect).abs() < 1e-7 * v);
    }

    /// A CMOS inverter's DC output is always inside the rails and
    /// monotone (non-increasing) in the input voltage.
    #[test]
    fn cmos_inverter_vtc_is_monotone(vdd in 0.5f64..1.0) {
        let mut c = Circuit::new();
        let vdd_n = c.node("vdd");
        let inp = c.node("in");
        let out = c.node("out");
        c.vsource("VDD", vdd_n, Circuit::GND, Waveform::dc(vdd));
        let vin = c.vsource("VIN", inp, Circuit::GND, Waveform::dc(0.0));
        c.transistor("MP", Arc::new(Pmos::nominal()), out, inp, vdd_n, 0.2);
        c.transistor("MN", Arc::new(Nmos::nominal()), out, inp, Circuit::GND, 0.1);

        let mut prev = f64::INFINITY;
        for k in 0..=10 {
            let vg = vdd * k as f64 / 10.0;
            c.set_vsource_wave(vin, Waveform::dc(vg));
            let op = c.dc_op().unwrap();
            let vo = op.voltage(out);
            prop_assert!(vo >= -1e-6 && vo <= vdd + 1e-6, "rail violation: {vo}");
            prop_assert!(vo <= prev + 1e-6, "VTC not monotone at vin={vg}");
            prev = vo;
        }
    }

    /// The TFET inverter obeys the same structural properties.
    #[test]
    fn tfet_inverter_vtc_is_monotone(vdd in 0.5f64..0.9) {
        let mut c = Circuit::new();
        let vdd_n = c.node("vdd");
        let inp = c.node("in");
        let out = c.node("out");
        c.vsource("VDD", vdd_n, Circuit::GND, Waveform::dc(vdd));
        let vin = c.vsource("VIN", inp, Circuit::GND, Waveform::dc(0.0));
        c.transistor("MP", Arc::new(PTfet::nominal()), out, inp, vdd_n, 0.1);
        c.transistor("MN", Arc::new(NTfet::nominal()), out, inp, Circuit::GND, 0.1);

        let mut prev = f64::INFINITY;
        for k in 0..=8 {
            let vg = vdd * k as f64 / 8.0;
            c.set_vsource_wave(vin, Waveform::dc(vg));
            let op = c.dc_op().unwrap();
            let vo = op.voltage(out);
            prop_assert!(vo >= -1e-6 && vo <= vdd + 1e-6);
            prop_assert!(vo <= prev + 1e-6);
            prev = vo;
        }
    }

    /// RC transient: the output never overshoots the driving step and ends
    /// within tolerance of it, for arbitrary R, C in a sane range.
    #[test]
    fn rc_step_response_is_bounded_and_settles(
        r_kohm in 0.5f64..10.0,
        c_ff in 10.0f64..1000.0,
        v in 0.2f64..1.2,
    ) {
        let r = r_kohm * 1e3;
        let cap = c_ff * 1e-15;
        let tau = r * cap;
        let mut c = Circuit::new();
        let inp = c.node("in");
        let out = c.node("out");
        c.vsource("V", inp, Circuit::GND, Waveform::step(0.0, v, 0.0, tau / 100.0));
        c.resistor(inp, out, r);
        c.capacitor(out, Circuit::GND, cap);
        let res = c
            .transient(&TransientSpec::new(8.0 * tau, tau / 50.0), &InitialState::Uic(vec![]))
            .unwrap();
        let out_trace = res.trace(out);
        for &vo in &out_trace {
            prop_assert!(vo >= -1e-9 && vo <= v * (1.0 + 1e-6));
        }
        prop_assert!((res.final_voltage(out) - v).abs() < 0.01 * v);
    }

    /// Power accounting: in a divider the delivered source power equals the
    /// resistive dissipation.
    #[test]
    fn power_balances_dissipation(r1 in 10.0f64..1e5, r2 in 10.0f64..1e5, v in 0.1f64..5.0) {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        let src = c.vsource("V", a, Circuit::GND, Waveform::dc(v));
        c.resistor(a, b, r1);
        c.resistor(b, Circuit::GND, r2);
        let op = c.dc_op().unwrap();
        let i = v / (r1 + r2);
        let dissipated = i * i * (r1 + r2);
        prop_assert!((op.power_delivered(src) - dissipated).abs() < 1e-6 * dissipated);
    }
}

// ---------------------------------------------------------------------------
// Deck round-trip properties
// ---------------------------------------------------------------------------

/// Quantizes through the serializer's `{:.6e}` so generated values are
/// representable in deck text (7 significant digits survive a parse
/// exactly).
fn q6(x: f64) -> f64 {
    format!("{x:.6e}").parse().expect("q6 round-trips")
}

/// Quantizes through the device-width formatter `{:.4}`.
fn q4(x: f64) -> f64 {
    format!("{x:.4}").parse().expect("q4 round-trips")
}

const MODEL_NAMES: [&str; 4] = ["ntfet", "ptfet", "nmos", "pmos"];

/// A random `.subckt` definition over ports `p0..`, internal nodes `n0..n2`,
/// and ground. May call any earlier definition (so nesting depth is bounded
/// by the number of definitions, ≤ 2 here).
///
/// Two-terminal cards always get distinct terminals and call bindings are
/// injective over non-ground nodes: an injective ground-free binding chain
/// can never alias two distinct terminals onto one node, so every generated
/// hierarchy flattens without shorts.
fn random_subckt(rng: &mut TestRng, idx: usize, earlier: &[Subckt]) -> Subckt {
    let n_ports = 2 + rng.below(3);
    let ports: Vec<String> = (0..n_ports).map(|k| format!("p{k}")).collect();
    // Three internal nodes keep the ground-free pool (≥ 5) large enough to
    // bind any earlier definition's ports (≤ 4) without replacement.
    let mut bindable = ports.clone();
    bindable.extend((0..3).map(|k| format!("n{k}")));
    let mut wired = bindable.clone();
    wired.push("0".to_string());
    let pick = |rng: &mut TestRng| wired[rng.below(wired.len())].clone();
    let distinct_pair = |rng: &mut TestRng| {
        let a = rng.below(wired.len());
        let mut b = rng.below(wired.len());
        while b == a {
            b = rng.below(wired.len());
        }
        (wired[a].clone(), wired[b].clone())
    };

    let mut cards = Vec::new();
    for k in 0..1 + rng.below(4) {
        let variants = if earlier.is_empty() { 3 } else { 4 };
        let card = match rng.below(variants) {
            0 => {
                let (a, b) = distinct_pair(rng);
                SubcktCard::Resistor {
                    name: format!("r{k}"),
                    a,
                    b,
                    ohms: q6(10.0 + rng.unit_f64() * 1e5),
                }
            }
            1 => {
                let (a, b) = distinct_pair(rng);
                SubcktCard::Capacitor {
                    name: format!("c{k}"),
                    a,
                    b,
                    farads: q6(1e-16 + rng.unit_f64() * 1e-13),
                }
            }
            2 => SubcktCard::Device {
                name: format!("d{k}"),
                d: pick(rng),
                g: pick(rng),
                s: pick(rng),
                model: MODEL_NAMES[rng.below(4)].to_string(),
                width_um: q4(0.05 + rng.unit_f64()),
            },
            _ => {
                let target = &earlier[rng.below(earlier.len())];
                let mut avail = bindable.clone();
                SubcktCard::Call {
                    name: format!("u{k}"),
                    nodes: (0..target.ports.len())
                        .map(|_| avail.swap_remove(rng.below(avail.len())))
                        .collect(),
                    subckt: target.name.clone(),
                }
            }
        };
        cards.push(card);
    }
    Subckt {
        name: format!("sub{idx}"),
        ports,
        cards,
    }
}

fn random_wave(rng: &mut TestRng) -> Waveform {
    if rng.below(2) == 0 {
        Waveform::dc(q6(rng.unit_f64()))
    } else {
        let mut t = 0.0;
        let points: Vec<(f64, f64)> = (0..2 + rng.below(3))
            .map(|_| {
                t += 1e-10 + rng.unit_f64() * 1e-9;
                (q6(t), q6(rng.unit_f64()))
            })
            .collect();
        Waveform::pwl(&points)
    }
}

/// A random deck: element soup at top level, up to two (possibly nested)
/// subckt definitions, `.ic`/`.nodeset` entries, and analysis cards.
fn random_deck(rng: &mut TestRng) -> Deck {
    let mut subckts: Vec<Subckt> = Vec::new();
    for idx in 0..rng.below(3) {
        let sub = random_subckt(rng, idx, &subckts);
        subckts.push(sub);
    }

    let mut c = Circuit::new();
    let mut pool: Vec<NodeId> = vec![Circuit::GND];
    for k in 0..3 + rng.below(3) {
        pool.push(c.node(&format!("n{k}")));
    }
    let distinct_pair = |rng: &mut TestRng| {
        let a = rng.below(pool.len());
        let mut b = rng.below(pool.len());
        while b == a {
            b = rng.below(pool.len());
        }
        (pool[a], pool[b])
    };
    let mut vsource_names = Vec::new();
    // Only nodes an element card mentions exist in the exported text, so
    // `.ic`/`.nodeset` may reference exactly these.
    let mut used: Vec<NodeId> = Vec::new();
    for k in 0..2 + rng.below(5) {
        match rng.below(5) {
            0 => {
                let (a, b) = distinct_pair(rng);
                c.resistor(a, b, q6(10.0 + rng.unit_f64() * 1e5));
                used.extend([a, b]);
            }
            1 => {
                let (a, b) = distinct_pair(rng);
                c.capacitor(a, b, q6(1e-16 + rng.unit_f64() * 1e-13));
                used.extend([a, b]);
            }
            2 => {
                let (p, m) = distinct_pair(rng);
                let name = format!("v{k}");
                c.vsource(&name, p, m, random_wave(rng));
                vsource_names.push(name);
                used.extend([p, m]);
            }
            3 => {
                let (f, t) = distinct_pair(rng);
                c.isource(f, t, random_wave(rng));
                used.extend([f, t]);
            }
            _ => {
                let model: Arc<dyn tfet_devices::model::DeviceModel> = match rng.below(4) {
                    0 => Arc::new(NTfet::nominal()),
                    1 => Arc::new(PTfet::nominal()),
                    2 => Arc::new(Nmos::nominal()),
                    _ => Arc::new(Pmos::nominal()),
                };
                let d = pool[rng.below(pool.len())];
                let g = pool[rng.below(pool.len())];
                let s = pool[rng.below(pool.len())];
                c.transistor(&format!("m{k}"), model, d, g, s, q4(0.05 + rng.unit_f64()));
                used.extend([d, g, s]);
            }
        }
    }

    let settable: Vec<NodeId> = {
        let mut v = used;
        v.retain(|n| !n.is_ground());
        v.dedup();
        v
    };
    let mut ic = Vec::new();
    let mut nodeset = Vec::new();
    if !settable.is_empty() {
        for _ in 0..rng.below(3) {
            ic.push((settable[rng.below(settable.len())], q6(rng.unit_f64())));
        }
        for _ in 0..rng.below(3) {
            nodeset.push((settable[rng.below(settable.len())], q6(rng.unit_f64())));
        }
    }

    let mut analyses = Vec::new();
    for _ in 0..rng.below(3) {
        analyses.push(match rng.below(3) {
            0 => DeckAnalysis::Tran {
                dt: q6(1e-12 + rng.unit_f64() * 4e-12),
                t_stop: q6(1e-10 + rng.unit_f64() * 1e-9),
            },
            1 => DeckAnalysis::Dc { sweep: None },
            _ => {
                if vsource_names.is_empty() {
                    DeckAnalysis::Dc { sweep: None }
                } else {
                    DeckAnalysis::Dc {
                        sweep: Some(DcSweep {
                            source: vsource_names[rng.below(vsource_names.len())].clone(),
                            start: 0.0,
                            stop: q6(0.1 + rng.unit_f64()),
                            step: q6(0.01 + rng.unit_f64() * 0.05),
                        }),
                    }
                }
            }
        });
    }

    Deck {
        title: Some(format!("random deck {}", rng.below(1 << 30))),
        subckts,
        ic,
        nodeset,
        analyses,
        circuit: c,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Export → import → export is byte-identical for arbitrary decks:
    /// elements with DC/PWL stimulus, nested subckt definitions, initial
    /// conditions, and analysis cards.
    #[test]
    fn random_deck_roundtrips_byte_exactly(seed in 0u32..1_000_000) {
        let mut rng = TestRng::deterministic(seed);
        let deck = random_deck(&mut rng);
        let text = deck.to_spice();
        let reparsed = match Deck::parse(&text, &standard_models()) {
            Ok(d) => d,
            Err(e) => return Err(TestCaseError::fail(format!("exported deck fails to parse: {e}\n{text}"))),
        };
        prop_assert_eq!(reparsed.to_spice(), text, "re-export differs for:\n{}", text);
    }

    /// A hierarchical call at top level flattens on import, and the
    /// flattened export is itself a serializer fixed point.
    #[test]
    fn flattened_calls_reach_a_fixed_point(seed in 0u32..1_000_000) {
        let mut rng = TestRng::deterministic(seed);
        let mut subckts: Vec<Subckt> = Vec::new();
        for idx in 0..1 + rng.below(2) {
            let sub = random_subckt(&mut rng, idx, &subckts);
            subckts.push(sub);
        }
        let target = subckts[rng.below(subckts.len())].clone();
        let lib = Deck { subckts, ..Deck::default() };
        let mut text = lib.to_spice();
        let end = text.rfind(".end").expect("deck ends with .end");
        text.truncate(end);
        let nodes: Vec<String> = (0..target.ports.len()).map(|k| format!("t{k}")).collect();
        text.push_str(&format!("Xcall {} {}\n.end\n", nodes.join(" "), target.name));

        let models = standard_models();
        let flat = match Deck::parse(&text, &models) {
            Ok(d) => d.to_spice(),
            Err(e) => return Err(TestCaseError::fail(format!("call deck fails to parse: {e}\n{text}"))),
        };
        let again = match Deck::parse(&flat, &models) {
            Ok(d) => d.to_spice(),
            Err(e) => return Err(TestCaseError::fail(format!("flattened deck fails to parse: {e}\n{flat}"))),
        };
        prop_assert_eq!(again, flat, "flat form is not a fixed point");
    }
}

/// A 3-stage TFET ring oscillator must oscillate — an end-to-end shakeout of
/// DC + transient + device caps with no external stimulus but the supply.
#[test]
fn tfet_ring_oscillator_oscillates() {
    let mut c = Circuit::new();
    let vdd = c.node("vdd");
    c.vsource("VDD", vdd, Circuit::GND, Waveform::dc(0.8));
    let stages = 3;
    let nodes: Vec<_> = (0..stages).map(|k| c.node(&format!("s{k}"))).collect();
    for k in 0..stages {
        let inp = nodes[k];
        let out = nodes[(k + 1) % stages];
        c.transistor(
            &format!("MP{k}"),
            Arc::new(PTfet::nominal()),
            out,
            inp,
            vdd,
            0.1,
        );
        c.transistor(
            &format!("MN{k}"),
            Arc::new(NTfet::nominal()),
            out,
            inp,
            Circuit::GND,
            0.1,
        );
        c.capacitor(out, Circuit::GND, 0.1e-15);
    }
    // Break symmetry with an asymmetric initial condition. The TFET ring is
    // slow (~14 ns period): the strongly Miller-skewed C_gd couples stages
    // and the steep-but-late turn-on gives weak mid-rail drive, so the run
    // must span several periods.
    let res = c
        .transient(
            &TransientSpec::new(100e-9, 20e-12),
            &InitialState::Uic(vec![(nodes[0], 0.8)]),
        )
        .unwrap();
    let n0 = nodes[0];
    // Count rising crossings of half-rail after the startup transient.
    let mut crossings = 0;
    let mut t_search = 20e-9;
    while let Some(t) = res.crossing(n0, 0.4, true, t_search) {
        crossings += 1;
        t_search = t + 10e-12;
        if crossings > 100 {
            break;
        }
    }
    assert!(
        crossings >= 2,
        "ring must oscillate, saw {crossings} crossings"
    );
}
