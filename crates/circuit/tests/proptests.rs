//! Property-based tests for the circuit simulator.

use proptest::prelude::*;
use std::sync::Arc;
use tfet_circuit::transient::InitialState;
use tfet_circuit::{Circuit, TransientSpec, Waveform};
use tfet_devices::{NTfet, Nmos, PTfet, Pmos};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Resistive ladder: the solved node voltages must satisfy KCL at every
    /// interior node to solver tolerance.
    #[test]
    fn ladder_satisfies_kcl(
        rs in prop::collection::vec(10.0f64..1e5, 3..8),
        v_in in 0.1f64..2.0,
    ) {
        let mut c = Circuit::new();
        let top = c.node("n0");
        c.vsource("V", top, Circuit::GND, Waveform::dc(v_in));
        let mut prev = top;
        let mut nodes = vec![top];
        for (k, &r) in rs.iter().enumerate() {
            let n = c.node(&format!("n{}", k + 1));
            c.resistor(prev, n, r);
            nodes.push(n);
            prev = n;
        }
        c.resistor(prev, Circuit::GND, 1e3);
        let op = c.dc_op().unwrap();

        // Interior nodes: current in = current out.
        for k in 1..nodes.len() {
            let v = op.voltage(nodes[k]);
            let v_up = op.voltage(nodes[k - 1]);
            let i_in = (v_up - v) / rs[k - 1];
            let i_out = if k < rs.len() {
                (v - op.voltage(nodes[k + 1])) / rs[k]
            } else {
                v / 1e3
            };
            prop_assert!((i_in - i_out).abs() < 1e-6 * i_in.abs().max(1e-12),
                "KCL violated at node {k}: {i_in:e} vs {i_out:e}");
        }
    }

    /// Voltage divider with arbitrary positive resistors solves exactly.
    #[test]
    fn divider_is_exact(r1 in 1.0f64..1e6, r2 in 1.0f64..1e6, v in 0.01f64..10.0) {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.vsource("V", a, Circuit::GND, Waveform::dc(v));
        c.resistor(a, b, r1);
        c.resistor(b, Circuit::GND, r2);
        let op = c.dc_op().unwrap();
        let expect = v * r2 / (r1 + r2);
        prop_assert!((op.voltage(b) - expect).abs() < 1e-7 * v);
    }

    /// A CMOS inverter's DC output is always inside the rails and
    /// monotone (non-increasing) in the input voltage.
    #[test]
    fn cmos_inverter_vtc_is_monotone(vdd in 0.5f64..1.0) {
        let mut c = Circuit::new();
        let vdd_n = c.node("vdd");
        let inp = c.node("in");
        let out = c.node("out");
        c.vsource("VDD", vdd_n, Circuit::GND, Waveform::dc(vdd));
        let vin = c.vsource("VIN", inp, Circuit::GND, Waveform::dc(0.0));
        c.transistor("MP", Arc::new(Pmos::nominal()), out, inp, vdd_n, 0.2);
        c.transistor("MN", Arc::new(Nmos::nominal()), out, inp, Circuit::GND, 0.1);

        let mut prev = f64::INFINITY;
        for k in 0..=10 {
            let vg = vdd * k as f64 / 10.0;
            c.set_vsource_wave(vin, Waveform::dc(vg));
            let op = c.dc_op().unwrap();
            let vo = op.voltage(out);
            prop_assert!(vo >= -1e-6 && vo <= vdd + 1e-6, "rail violation: {vo}");
            prop_assert!(vo <= prev + 1e-6, "VTC not monotone at vin={vg}");
            prev = vo;
        }
    }

    /// The TFET inverter obeys the same structural properties.
    #[test]
    fn tfet_inverter_vtc_is_monotone(vdd in 0.5f64..0.9) {
        let mut c = Circuit::new();
        let vdd_n = c.node("vdd");
        let inp = c.node("in");
        let out = c.node("out");
        c.vsource("VDD", vdd_n, Circuit::GND, Waveform::dc(vdd));
        let vin = c.vsource("VIN", inp, Circuit::GND, Waveform::dc(0.0));
        c.transistor("MP", Arc::new(PTfet::nominal()), out, inp, vdd_n, 0.1);
        c.transistor("MN", Arc::new(NTfet::nominal()), out, inp, Circuit::GND, 0.1);

        let mut prev = f64::INFINITY;
        for k in 0..=8 {
            let vg = vdd * k as f64 / 8.0;
            c.set_vsource_wave(vin, Waveform::dc(vg));
            let op = c.dc_op().unwrap();
            let vo = op.voltage(out);
            prop_assert!(vo >= -1e-6 && vo <= vdd + 1e-6);
            prop_assert!(vo <= prev + 1e-6);
            prev = vo;
        }
    }

    /// RC transient: the output never overshoots the driving step and ends
    /// within tolerance of it, for arbitrary R, C in a sane range.
    #[test]
    fn rc_step_response_is_bounded_and_settles(
        r_kohm in 0.5f64..10.0,
        c_ff in 10.0f64..1000.0,
        v in 0.2f64..1.2,
    ) {
        let r = r_kohm * 1e3;
        let cap = c_ff * 1e-15;
        let tau = r * cap;
        let mut c = Circuit::new();
        let inp = c.node("in");
        let out = c.node("out");
        c.vsource("V", inp, Circuit::GND, Waveform::step(0.0, v, 0.0, tau / 100.0));
        c.resistor(inp, out, r);
        c.capacitor(out, Circuit::GND, cap);
        let res = c
            .transient(&TransientSpec::new(8.0 * tau, tau / 50.0), &InitialState::Uic(vec![]))
            .unwrap();
        let out_trace = res.trace(out);
        for &vo in &out_trace {
            prop_assert!(vo >= -1e-9 && vo <= v * (1.0 + 1e-6));
        }
        prop_assert!((res.final_voltage(out) - v).abs() < 0.01 * v);
    }

    /// Power accounting: in a divider the delivered source power equals the
    /// resistive dissipation.
    #[test]
    fn power_balances_dissipation(r1 in 10.0f64..1e5, r2 in 10.0f64..1e5, v in 0.1f64..5.0) {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        let src = c.vsource("V", a, Circuit::GND, Waveform::dc(v));
        c.resistor(a, b, r1);
        c.resistor(b, Circuit::GND, r2);
        let op = c.dc_op().unwrap();
        let i = v / (r1 + r2);
        let dissipated = i * i * (r1 + r2);
        prop_assert!((op.power_delivered(src) - dissipated).abs() < 1e-6 * dissipated);
    }
}

/// A 3-stage TFET ring oscillator must oscillate — an end-to-end shakeout of
/// DC + transient + device caps with no external stimulus but the supply.
#[test]
fn tfet_ring_oscillator_oscillates() {
    let mut c = Circuit::new();
    let vdd = c.node("vdd");
    c.vsource("VDD", vdd, Circuit::GND, Waveform::dc(0.8));
    let stages = 3;
    let nodes: Vec<_> = (0..stages).map(|k| c.node(&format!("s{k}"))).collect();
    for k in 0..stages {
        let inp = nodes[k];
        let out = nodes[(k + 1) % stages];
        c.transistor(
            &format!("MP{k}"),
            Arc::new(PTfet::nominal()),
            out,
            inp,
            vdd,
            0.1,
        );
        c.transistor(
            &format!("MN{k}"),
            Arc::new(NTfet::nominal()),
            out,
            inp,
            Circuit::GND,
            0.1,
        );
        c.capacitor(out, Circuit::GND, 0.1e-15);
    }
    // Break symmetry with an asymmetric initial condition. The TFET ring is
    // slow (~14 ns period): the strongly Miller-skewed C_gd couples stages
    // and the steep-but-late turn-on gives weak mid-rail drive, so the run
    // must span several periods.
    let res = c
        .transient(
            &TransientSpec::new(100e-9, 20e-12),
            &InitialState::Uic(vec![(nodes[0], 0.8)]),
        )
        .unwrap();
    let n0 = nodes[0];
    // Count rising crossings of half-rail after the startup transient.
    let mut crossings = 0;
    let mut t_search = 20e-9;
    while let Some(t) = res.crossing(n0, 0.4, true, t_search) {
        crossings += 1;
        t_search = t + 10e-12;
        if crossings > 100 {
            break;
        }
    }
    assert!(
        crossings >= 2,
        "ring must oscillate, saw {crossings} crossings"
    );
}
