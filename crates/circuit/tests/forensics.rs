//! End-to-end failure forensics: a transient that dies must leave a
//! diagnostic bundle behind (and must not when tracing is off).
//!
//! Tracing and the diagnostics directory are process-global, so the tests
//! serialize on one lock (this file is its own test binary).

use std::path::PathBuf;
use std::sync::Mutex;
use tfet_circuit::transient::InitialState;
use tfet_circuit::{Circuit, SimError, TransientSpec, Waveform};

static LOCK: Mutex<()> = Mutex::new(());

fn hold() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tfet-forensics-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Two ideal sources pinning the same node to different voltages: the two
/// branch rows of the MNA matrix are identical, so the very first solve of
/// the initial DC operating point dies on a singular factorization — a
/// reliable fatal path through `capture_failure`.
fn conflicted_circuit() -> Circuit {
    let mut c = Circuit::new();
    let a = c.node("a");
    c.vsource("V1", a, Circuit::GND, Waveform::dc(1.0));
    c.vsource("V2", a, Circuit::GND, Waveform::dc(0.0));
    c.resistor(a, Circuit::GND, 1e3);
    c
}

fn run_fatal() -> SimError {
    let c = conflicted_circuit();
    let spec = TransientSpec::fixed(1e-11, 1e-12);
    c.transient(&spec, &InitialState::DcOp(vec![]))
        .expect_err("conflicting sources must not simulate")
}

#[test]
fn fatal_transient_writes_a_diagnostic_bundle() {
    let _guard = hold();
    let dir = scratch_dir("fatal");
    tfet_obs::forensics::set_dir(&dir);
    tfet_obs::reset();
    tfet_obs::enable();
    let err = run_fatal();
    tfet_obs::disable();
    tfet_obs::forensics::set_dir(tfet_obs::forensics::DEFAULT_DIR);

    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("diagnostics directory must exist")
        .map(|e| e.unwrap().path())
        .collect();
    files.sort();
    assert_eq!(
        files.len(),
        1,
        "exactly one bundle per fatal run: {files:?}"
    );
    let contents = std::fs::read_to_string(&files[0]).unwrap();
    assert!(contents.starts_with(r#"{"schema":"tfet-obs.diagnostic","version":4"#));
    assert!(
        contents.contains(r#""stage":"initial-dc""#),
        "bundle must name the failing stage: {contents}"
    );
    assert!(
        contents.contains(&format!(r#""error":"{err}""#)),
        "bundle must carry the solver error: {contents}"
    );
    assert!(contents.contains(r#""step_trace""#));
    assert!(contents.contains(r#""residual_history""#));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn disabled_tracing_writes_no_bundle() {
    let _guard = hold();
    let dir = scratch_dir("disabled");
    tfet_obs::forensics::set_dir(&dir);
    tfet_obs::reset();
    tfet_obs::disable();
    run_fatal();
    tfet_obs::forensics::set_dir(tfet_obs::forensics::DEFAULT_DIR);
    assert!(
        !dir.exists(),
        "disabled tracing must not create the diagnostics directory"
    );
}

#[test]
fn newton_no_convergence_error_is_structured() {
    // Satellite regression: the error carries iteration count and the last
    // residual norm so forensics (and users) see how the solve died.
    let e = SimError::NoConvergence {
        time: Some(1e-12),
        iterations: 200,
        last_delta: 0.5,
        residual_norm: 3.25,
    };
    let msg = e.to_string();
    assert!(msg.contains("200"), "iterations in message: {msg}");
    assert!(msg.contains("3.25e0"), "residual norm in message: {msg}");
}
